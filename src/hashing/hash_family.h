#ifndef SBF_HASHING_HASH_FAMILY_H_
#define SBF_HASHING_HASH_FAMILY_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "hashing/hash.h"

namespace sbf {

// A seedable family of k hash functions h_1..h_k mapping 64-bit keys into
// {0..m-1}. Two filters built with the same (k, m, seed, kind) use
// identical functions — the precondition for SBF union and multiplication
// (Section 2.2) and for shipping filters between "sites" in Bloomjoins.
//
// Two constructions are provided:
//  * kModuloMultiply — the paper's experimental setup (Section 6.1):
//    H_i(v) = floor(m * (alpha_i * v mod 1)), alpha_i random in [0,1).
//  * kDoubleMix — Kirsch–Mitzenmacher double hashing over two independent
//    64-bit mixers: h_i = (g1 + i*g2) mod m. One multiply cheaper per probe
//    and with provably Bloom-equivalent behaviour.
class HashFamily {
 public:
  enum class Kind { kModuloMultiply, kDoubleMix };

  // Upper bound on k. Lets every caller keep position buffers on the
  // stack (uint64_t[kMaxK]) — no filter hot path allocates per operation.
  static constexpr uint32_t kMaxK = 64;

  HashFamily(uint32_t k, uint64_t m, uint64_t seed,
             Kind kind = Kind::kModuloMultiply);

  [[nodiscard]] uint32_t k() const noexcept { return k_; }
  [[nodiscard]] uint64_t m() const noexcept { return m_; }
  [[nodiscard]] uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] Kind kind() const noexcept { return kind_; }

  // True iff `other` produces identical positions for every key.
  [[nodiscard]] bool Compatible(const HashFamily& other) const noexcept;

  // Returns h_i(key), 0 <= i < k.
  [[nodiscard]] uint64_t Position(uint64_t key, uint32_t i) const noexcept;

  // Fills `out[0..k)` with the k positions for `key`. `out` must have room
  // for k entries (k <= kMaxK, so a stack array always suffices). The
  // common fast path for filter operations.
  void Positions(uint64_t key, uint64_t* out) const noexcept;

  // Convenience for string keys: fingerprints then hashes.
  void PositionsForBytes(std::string_view key, uint64_t* out) const {
    Positions(Fingerprint64(key), out);
  }

  // The per-key mixing round shared by all k functions of a
  // kModuloMultiply family. SIMD kernels hoist this one scalar round and
  // derive all k in-block lanes from it with vector multiply-shifts;
  // Positions(key)[i] == mm_[i](MixedKey(key)) for that kind.
  [[nodiscard]] uint64_t MixedKey(uint64_t key) const noexcept {
    return Mix64((key ^ seed_) + 0x9E3779B97F4A7C15ull);
  }

  // Copies the k fixed-point multipliers alpha_i into out[0..k) and
  // returns true, or returns false for kDoubleMix families (which have no
  // multiplier representation). `out` must have room for k entries.
  bool FillModuloMultiplyAlphas(uint64_t* out) const noexcept;

 private:
  uint32_t k_;
  uint64_t m_;
  uint64_t seed_;
  Kind kind_;
  std::vector<ModuloMultiplyHash> mm_;  // kModuloMultiply only
  uint64_t mix_seed1_ = 0;              // kDoubleMix only
  uint64_t mix_seed2_ = 0;
};

}  // namespace sbf

#endif  // SBF_HASHING_HASH_FAMILY_H_
