#include "hashing/hash_family.h"

#include "util/check.h"
#include "util/random.h"

namespace sbf {

HashFamily::HashFamily(uint32_t k, uint64_t m, uint64_t seed, Kind kind)
    : k_(k), m_(m), seed_(seed), kind_(kind) {
  SBF_CHECK_MSG(k >= 1 && k <= kMaxK, "hash family needs 1 <= k <= 64");
  SBF_CHECK_MSG(m >= 1, "hash family needs m >= 1");
  uint64_t sm = seed ^ 0xA0761D6478BD642Full;
  if (kind_ == Kind::kModuloMultiply) {
    mm_.reserve(k_);
    for (uint32_t i = 0; i < k_; ++i) {
      mm_.emplace_back(SplitMix64(sm), m_);
    }
  } else {
    mix_seed1_ = SplitMix64(sm);
    mix_seed2_ = SplitMix64(sm);
  }
}

bool HashFamily::Compatible(const HashFamily& other) const noexcept {
  return k_ == other.k_ && m_ == other.m_ && seed_ == other.seed_ &&
         kind_ == other.kind_;
}

bool HashFamily::FillModuloMultiplyAlphas(uint64_t* out) const noexcept {
  if (kind_ != Kind::kModuloMultiply) return false;
  for (uint32_t i = 0; i < k_; ++i) out[i] = mm_[i].alpha_fixed();
  return true;
}

uint64_t HashFamily::Position(uint64_t key, uint32_t i) const noexcept {
  SBF_DCHECK(i < k_);
  if (kind_ == Kind::kModuloMultiply) {
    // Keys are mixed first so that structured inputs (0,1,2,...) exercise
    // the full 64-bit domain, matching the random-value assumption in the
    // paper's analysis. The golden-ratio offset keeps key == seed (whose
    // XOR is 0, a fixed point of Mix64) from degenerating.
    return mm_[i](Mix64((key ^ seed_) + 0x9E3779B97F4A7C15ull));
  }
  const uint64_t g1 = Mix64((key ^ mix_seed1_) + 0x9E3779B97F4A7C15ull);
  const uint64_t g2 = Mix64((key ^ mix_seed2_) + 0x9E3779B97F4A7C15ull) | 1ull;
  // 128-bit product so i*g2 cannot wrap; matches the batch Positions path.
  const uint64_t step = (static_cast<__uint128_t>(i) * (g2 % m_)) % m_;
  return (g1 % m_ + step) % m_;
}

void HashFamily::Positions(uint64_t key, uint64_t* out) const noexcept {
  if (kind_ == Kind::kModuloMultiply) {
    const uint64_t mixed = Mix64((key ^ seed_) + 0x9E3779B97F4A7C15ull);
    for (uint32_t i = 0; i < k_; ++i) out[i] = mm_[i](mixed);
    return;
  }
  const uint64_t g1 = Mix64((key ^ mix_seed1_) + 0x9E3779B97F4A7C15ull);
  const uint64_t g2 = Mix64((key ^ mix_seed2_) + 0x9E3779B97F4A7C15ull) | 1ull;
  uint64_t h = g1 % m_;
  const uint64_t step = g2 % m_;
  for (uint32_t i = 0; i < k_; ++i) {
    out[i] = h;
    h += step;
    if (h >= m_) h -= m_;
  }
}

}  // namespace sbf
