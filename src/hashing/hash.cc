#include "hashing/hash.h"

#include <bit>
#include <cstring>

namespace sbf {
namespace {

constexpr uint64_t kPrime1 = 0x9E3779B185EBCA87ull;
constexpr uint64_t kPrime2 = 0xC2B2AE3D27D4EB4Full;
constexpr uint64_t kPrime3 = 0x165667B19E3779F9ull;
constexpr uint64_t kPrime4 = 0x85EBCA77C2B2AE63ull;
constexpr uint64_t kPrime5 = 0x27D4EB2F165667C5ull;

uint64_t Load64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint32_t Load32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t Round(uint64_t acc, uint64_t input) {
  acc += input * kPrime2;
  acc = std::rotl(acc, 31);
  return acc * kPrime1;
}

uint64_t MergeRound(uint64_t acc, uint64_t val) {
  acc ^= Round(0, val);
  return acc * kPrime1 + kPrime4;
}

}  // namespace

uint64_t Mix64(uint64_t v) {
  v ^= v >> 33;
  v *= 0xFF51AFD7ED558CCDull;
  v ^= v >> 33;
  v *= 0xC4CEB9FE1A85EC53ull;
  v ^= v >> 33;
  return v;
}

uint64_t Fingerprint64(std::string_view bytes, uint64_t seed) {
  const char* p = bytes.data();
  const char* end = p + bytes.size();
  uint64_t h;

  if (bytes.size() >= 32) {
    uint64_t v1 = seed + kPrime1 + kPrime2;
    uint64_t v2 = seed + kPrime2;
    uint64_t v3 = seed;
    uint64_t v4 = seed - kPrime1;
    do {
      v1 = Round(v1, Load64(p));
      v2 = Round(v2, Load64(p + 8));
      v3 = Round(v3, Load64(p + 16));
      v4 = Round(v4, Load64(p + 24));
      p += 32;
    } while (p + 32 <= end);
    h = std::rotl(v1, 1) + std::rotl(v2, 7) + std::rotl(v3, 12) +
        std::rotl(v4, 18);
    h = MergeRound(h, v1);
    h = MergeRound(h, v2);
    h = MergeRound(h, v3);
    h = MergeRound(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += bytes.size();
  while (p + 8 <= end) {
    h ^= Round(0, Load64(p));
    h = std::rotl(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<uint64_t>(Load32(p)) * kPrime1;
    h = std::rotl(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(*p)) * kPrime5;
    h = std::rotl(h, 11) * kPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

}  // namespace sbf
