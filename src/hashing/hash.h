#ifndef SBF_HASHING_HASH_H_
#define SBF_HASHING_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sbf {

// 64-bit finalizing mixer (Murmur3 fmix64 variant). Bijective, so distinct
// keys never collide at this stage.
uint64_t Mix64(uint64_t v);

// Hashes an arbitrary byte string to a 64-bit fingerprint
// (xxHash64-inspired construction, dependency-free). Used to map string
// keys into the integer universe U that the filter hash families consume.
uint64_t Fingerprint64(std::string_view bytes, uint64_t seed = 0);

// The paper's modulo/multiply hash (Section 6.1): given a value v, its hash
// is H(v) = ceil(m * (alpha * v mod 1)) for alpha drawn uniformly at random
// from [0,1). We represent alpha in 64-bit fixed point (alpha = a / 2^64),
// so (alpha * v mod 1) is the low 64 bits of a*v re-read as a fraction and
// the final range reduction is a 128-bit multiply-shift.
class ModuloMultiplyHash {
 public:
  // `alpha_fixed` is the fixed-point numerator a (must be odd for full
  // period; the factory below guarantees this).
  ModuloMultiplyHash(uint64_t alpha_fixed, uint64_t range)
      : alpha_(alpha_fixed | 1ull), range_(range) {}

  uint64_t range() const { return range_; }

  // The (oddified) fixed-point numerator a. Exposed so SIMD block kernels
  // can rerun the multiply-shift round vectorially: for a power-of-two
  // range 2^b the position is exactly (a * v) >> (64 - b), bit-identical
  // to operator() because multiplying the 64-bit fraction by 2^b and
  // keeping the high word is the same as dropping the low 64-b bits.
  uint64_t alpha_fixed() const { return alpha_; }

  uint64_t operator()(uint64_t v) const {
    const uint64_t frac = alpha_ * v;  // a*v mod 2^64 == (alpha*v mod 1)<<64
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(frac) * range_) >> 64);
  }

 private:
  uint64_t alpha_;
  uint64_t range_;
};

}  // namespace sbf

#endif  // SBF_HASHING_HASH_H_
