#include "bitstream/elias.h"

#include "util/bits.h"
#include "util/check.h"

namespace sbf {
namespace {

// Writes the L-bit binary representation of n, MSB first.
void WriteBinaryMsbFirst(uint64_t n, uint32_t bits, BitWriter* writer) {
  for (uint32_t i = bits; i-- > 0;) {
    writer->WriteBit((n >> i) & 1ull);
  }
}

uint64_t ReadBinaryMsbFirst(uint32_t bits, BitReader* reader) {
  uint64_t v = 0;
  for (uint32_t i = 0; i < bits; ++i) {
    v = (v << 1) | static_cast<uint64_t>(reader->ReadBit());
  }
  return v;
}

}  // namespace

void EliasGammaEncode(uint64_t n, BitWriter* writer) {
  SBF_DCHECK(n >= 1);
  const uint32_t len = FloorLog2(n) + 1;
  writer->WriteZeros(len - 1);
  WriteBinaryMsbFirst(n, len, writer);
}

uint64_t EliasGammaDecode(BitReader* reader) {
  uint32_t zeros = 0;
  while (!reader->ReadBit()) ++zeros;
  // The leading 1 just consumed is the MSB of the value.
  uint64_t v = 1;
  if (zeros > 0) {
    v = (v << zeros) | ReadBinaryMsbFirst(zeros, reader);
  }
  return v;
}

uint32_t EliasGammaLength(uint64_t n) {
  SBF_DCHECK(n >= 1);
  return 2 * FloorLog2(n) + 1;
}

void EliasDeltaEncode(uint64_t n, BitWriter* writer) {
  SBF_DCHECK(n >= 1);
  const uint32_t len = FloorLog2(n) + 1;
  EliasGammaEncode(len, writer);
  if (len > 1) {
    WriteBinaryMsbFirst(n & LowMask(len - 1), len - 1, writer);
  }
}

uint64_t EliasDeltaDecode(BitReader* reader) {
  const uint32_t len = static_cast<uint32_t>(EliasGammaDecode(reader));
  uint64_t v = 1;
  if (len > 1) {
    v = (v << (len - 1)) | ReadBinaryMsbFirst(len - 1, reader);
  }
  return v;
}

uint32_t EliasDeltaLength(uint64_t n) {
  SBF_DCHECK(n >= 1);
  const uint32_t len = FloorLog2(n) + 1;  // floor(log2 n) + 1
  return EliasGammaLength(len) + (len - 1);
}

}  // namespace sbf
