#include "bitstream/rank_select.h"

#include <bit>

#if defined(__BMI2__)
#include <immintrin.h>
#endif

#include "util/check.h"

namespace sbf {
namespace {

// Position (0-indexed from LSB) of the j-th set bit within a word,
// 0-indexed. Precondition: popcount(word) > j.
uint32_t SelectInWord(uint64_t word, uint32_t j) {
#if defined(__BMI2__)
  // PDEP deposits the (j+1)-th mask bit of `word` at the j-th set-bit
  // position; tzcnt of the result is the answer in two instructions.
  return static_cast<uint32_t>(
      std::countr_zero(_pdep_u64(uint64_t{1} << j, word)));
#else
  // Skip whole bytes by popcount before bit-walking the final byte: at most
  // 7 byte steps + 7 clears instead of up to 63 clear-lowest-set steps.
  uint32_t base = 0;
  for (uint32_t pc = std::popcount(word & 0xFF); j >= pc;
       pc = std::popcount(word & 0xFF)) {
    j -= pc;
    word >>= 8;
    base += 8;
  }
  uint64_t byte = word & 0xFF;
  for (uint32_t i = 0; i < j; ++i) byte &= byte - 1;  // clear j lowest ones
  return base + static_cast<uint32_t>(std::countr_zero(byte));
#endif
}

}  // namespace

RankSelect::RankSelect(const BitVector* bits) : bits_(bits) {
  const size_t num_words = bits_->size_words();
  const size_t num_supers = num_words / kBlocksPerSuper + 1;
  superblocks_.resize(num_supers);
  blocks_.resize(num_words + 1);

  uint64_t total = 0;
  uint64_t in_super = 0;
  for (size_t w = 0; w <= num_words; ++w) {
    if (w % kBlocksPerSuper == 0) {
      superblocks_[w / kBlocksPerSuper] = total;
      in_super = 0;
    }
    if (w < blocks_.size()) blocks_[w] = static_cast<uint16_t>(in_super);
    if (w < num_words) {
      const uint32_t pc = std::popcount(bits_->words()[w]);
      total += pc;
      in_super += pc;
    }
  }
  num_ones_ = total;
}

size_t RankSelect::Rank1(size_t pos) const noexcept {
  SBF_DCHECK(pos <= bits_->size_bits());
  const size_t word = pos >> 6;
  size_t r = superblocks_[word / kBlocksPerSuper] + blocks_[word];
  const uint32_t rem = pos & 63;
  if (rem != 0) {
    r += std::popcount(bits_->words()[word] & LowMask(rem));
  }
  return r;
}

size_t RankSelect::Select1(size_t j) const noexcept {
  SBF_DCHECK(j < num_ones_);
  // Binary search over superblocks for the last one with rank <= j.
  size_t lo = 0, hi = superblocks_.size() - 1;
  while (lo < hi) {
    const size_t mid = (lo + hi + 1) / 2;
    if (superblocks_[mid] <= j) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  const size_t remaining = j - superblocks_[lo];

  // Walk the block directory instead of popcounting bit words: the <= 8
  // uint16_t relative ranks of this superblock sit in one cache line, and
  // within a superblock they are monotone, so the target word is the last
  // one whose prefix rank is <= remaining. Branch-free accumulation — no
  // data-dependent branches for the predictor to miss on random j.
  const size_t first_word = lo * kBlocksPerSuper;
  const size_t end_word =
      std::min(first_word + kBlocksPerSuper, bits_->size_words());
  size_t word = first_word;
  for (size_t w = first_word + 1; w < end_word; ++w) {
    word += blocks_[w] <= remaining;
  }
  SBF_DCHECK(word < bits_->size_words());
  return word * 64 + SelectInWord(bits_->words()[word],
                                  static_cast<uint32_t>(remaining - blocks_[word]));
}


Status RankSelect::CheckInvariants() const {
  if (bits_ == nullptr) {
    // Default-constructed directory: nothing to audit.
    if (!superblocks_.empty() || !blocks_.empty() || num_ones_ != 0) {
      return Status::FailedPrecondition(
          "rank/select: directory entries without an underlying vector");
    }
    return Status::Ok();
  }
  const size_t num_words = bits_->size_words();
  if (superblocks_.size() != num_words / kBlocksPerSuper + 1 ||
      blocks_.size() != num_words + 1) {
    return Status::FailedPrecondition(
        "rank/select: directory sizes disagree with the vector");
  }
  // Full recount: replay the construction sweep and compare every cached
  // rank against what the words actually hold.
  uint64_t total = 0;
  uint64_t in_super = 0;
  for (size_t w = 0; w <= num_words; ++w) {
    if (w % kBlocksPerSuper == 0) {
      if (superblocks_[w / kBlocksPerSuper] != total) {
        return Status::FailedPrecondition(
            "rank/select: superblock rank disagrees with a recount");
      }
      in_super = 0;
    }
    if (blocks_[w] != in_super) {
      return Status::FailedPrecondition(
          "rank/select: block rank disagrees with a recount");
    }
    if (w < num_words) {
      const uint32_t pc = std::popcount(bits_->words()[w]);
      total += pc;
      in_super += pc;
    }
  }
  if (num_ones_ != total) {
    return Status::FailedPrecondition(
        "rank/select: cached one-count disagrees with a recount");
  }
  return Status::Ok();
}

}  // namespace sbf
