#include "bitstream/rank_select.h"

#include <bit>

#include "util/check.h"

namespace sbf {
namespace {

// Position (0-indexed from LSB) of the j-th set bit within a word,
// 0-indexed. Precondition: popcount(word) > j.
uint32_t SelectInWord(uint64_t word, uint32_t j) {
  for (uint32_t i = 0; i < j; ++i) word &= word - 1;  // clear j lowest ones
  return static_cast<uint32_t>(std::countr_zero(word));
}

}  // namespace

RankSelect::RankSelect(const BitVector* bits) : bits_(bits) {
  const size_t num_words = bits_->size_words();
  const size_t num_supers = num_words / kBlocksPerSuper + 1;
  superblocks_.resize(num_supers);
  blocks_.resize(num_words + 1);

  uint64_t total = 0;
  uint64_t in_super = 0;
  for (size_t w = 0; w <= num_words; ++w) {
    if (w % kBlocksPerSuper == 0) {
      superblocks_[w / kBlocksPerSuper] = total;
      in_super = 0;
    }
    if (w < blocks_.size()) blocks_[w] = static_cast<uint16_t>(in_super);
    if (w < num_words) {
      const uint32_t pc = std::popcount(bits_->words()[w]);
      total += pc;
      in_super += pc;
    }
  }
  num_ones_ = total;
}

size_t RankSelect::Rank1(size_t pos) const {
  SBF_DCHECK(pos <= bits_->size_bits());
  const size_t word = pos >> 6;
  size_t r = superblocks_[word / kBlocksPerSuper] + blocks_[word];
  const uint32_t rem = pos & 63;
  if (rem != 0) {
    r += std::popcount(bits_->words()[word] & LowMask(rem));
  }
  return r;
}

size_t RankSelect::Select1(size_t j) const {
  SBF_DCHECK(j < num_ones_);
  // Binary search over superblocks for the last one with rank <= j.
  size_t lo = 0, hi = superblocks_.size() - 1;
  while (lo < hi) {
    const size_t mid = (lo + hi + 1) / 2;
    if (superblocks_[mid] <= j) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  size_t remaining = j - superblocks_[lo];

  // Scan blocks within the superblock.
  const size_t first_word = lo * kBlocksPerSuper;
  const size_t end_word =
      std::min(first_word + kBlocksPerSuper, bits_->size_words());
  size_t word = first_word;
  for (size_t w = first_word; w < end_word; ++w) {
    const uint32_t pc = std::popcount(bits_->words()[w]);
    if (remaining < pc) {
      word = w;
      break;
    }
    remaining -= pc;
    word = w + 1;
  }
  SBF_DCHECK(word < bits_->size_words());
  return word * 64 +
         SelectInWord(bits_->words()[word], static_cast<uint32_t>(remaining));
}

}  // namespace sbf
