#include "bitstream/bit_vector.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace sbf {

void BitVector::Resize(size_t num_bits) {
  const size_t words = CeilDiv(num_bits, 64);
  words_.resize(words, 0);
  // Clear any bits beyond the new logical end so PopCount and comparisons
  // stay exact after a shrink.
  if (num_bits < num_bits_ && (num_bits & 63) != 0 && !words_.empty()) {
    words_[num_bits >> 6] &= LowMask(num_bits & 63);
  }
  num_bits_ = num_bits;
}

void BitVector::Clear() { std::fill(words_.begin(), words_.end(), 0ull); }

void BitVector::ShiftRangeRight(size_t begin, size_t end, size_t shift) {
  SBF_DCHECK(begin <= end);
  SBF_DCHECK(end + shift <= num_bits_);
  if (shift == 0 || begin == end) return;
  // Copy backwards in <=64-bit chunks so overlapping ranges are safe.
  size_t remaining = end - begin;
  size_t src = end;
  while (remaining > 0) {
    const uint32_t chunk = static_cast<uint32_t>(std::min<size_t>(remaining, 64));
    src -= chunk;
    const uint64_t v = GetBits(src, chunk);
    SetBits(src + shift, chunk, v);
    remaining -= chunk;
  }
}

void BitVector::ShiftRangeLeft(size_t begin, size_t end, size_t shift) {
  SBF_DCHECK(begin <= end);
  SBF_DCHECK(shift <= begin);
  if (shift == 0 || begin == end) return;
  // Copy forwards in <=64-bit chunks so overlapping ranges are safe.
  size_t src = begin;
  size_t remaining = end - begin;
  while (remaining > 0) {
    const uint32_t chunk = static_cast<uint32_t>(std::min<size_t>(remaining, 64));
    const uint64_t v = GetBits(src, chunk);
    SetBits(src - shift, chunk, v);
    src += chunk;
    remaining -= chunk;
  }
}

void BitVector::CopyFrom(const BitVector& src, size_t src_pos, size_t dst_pos,
                         size_t len) {
  SBF_DCHECK(this != &src);
  SBF_DCHECK(src_pos + len <= src.num_bits_);
  SBF_DCHECK(dst_pos + len <= num_bits_);
  while (len > 0) {
    const uint32_t chunk = static_cast<uint32_t>(std::min<size_t>(len, 64));
    SetBits(dst_pos, chunk, src.GetBits(src_pos, chunk));
    src_pos += chunk;
    dst_pos += chunk;
    len -= chunk;
  }
}

size_t BitVector::PopCount() const noexcept {
  size_t total = 0;
  for (uint64_t w : words_) total += static_cast<size_t>(std::popcount(w));
  return total;
}

}  // namespace sbf
