#ifndef SBF_BITSTREAM_BIT_VECTOR_H_
#define SBF_BITSTREAM_BIT_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/aligned_alloc.h"
#include "util/bits.h"
#include "util/check.h"

namespace sbf {

// Growable bit array with arbitrary-width bit-field access. This is the
// base storage for every compact structure in the library: the SBF counter
// arrays, the string-array index offset vectors, and the encoded streams.
//
// Bit order is LSB-first: logical bit i lives in word i/64 at bit i%64, and
// a field read with GetBits(pos, w) has logical bit `pos` as its least
// significant bit. All positions are in bits.
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(size_t num_bits) { Resize(num_bits); }

  [[nodiscard]] size_t size_bits() const noexcept { return num_bits_; }
  [[nodiscard]] size_t size_words() const noexcept { return words_.size(); }
  // Total allocated storage in bits (whole words).
  [[nodiscard]] size_t capacity_bits() const noexcept {
    return words_.size() * 64;
  }

  // Grows or shrinks to `num_bits`; new bits are zero.
  void Resize(size_t num_bits);
  // Sets every bit to zero without changing the size.
  void Clear();

  [[nodiscard]] bool GetBit(size_t pos) const noexcept {
    SBF_DCHECK(pos < num_bits_);
    return (words_[pos >> 6] >> (pos & 63)) & 1ull;
  }

  void SetBit(size_t pos, bool value) noexcept {
    SBF_DCHECK(pos < num_bits_);
    const uint64_t mask = 1ull << (pos & 63);
    if (value) {
      words_[pos >> 6] |= mask;
    } else {
      words_[pos >> 6] &= ~mask;
    }
  }

  // Reads a `width`-bit field starting at `pos` (width 0..64). Inline: this
  // is the innermost probe of every counter backing, and the batched filter
  // kernels rely on it folding into their (devirtualized) loops.
  [[nodiscard]] uint64_t GetBits(size_t pos, uint32_t width) const noexcept {
    SBF_DCHECK(width <= 64);
    if (width == 0) return 0;
    SBF_DCHECK(pos + width <= num_bits_);
    const size_t word = pos >> 6;
    const uint32_t offset = pos & 63;
    uint64_t value = words_[word] >> offset;
    if (offset + width > 64) {
      value |= words_[word + 1] << (64 - offset);
    }
    return value & LowMask(width);
  }

  // Writes the low `width` bits of `value` at `pos` (width 0..64). Bits of
  // `value` above `width` must be zero.
  void SetBits(size_t pos, uint32_t width, uint64_t value) noexcept {
    SBF_DCHECK(width <= 64);
    if (width == 0) return;
    SBF_DCHECK(pos + width <= num_bits_);
    SBF_DCHECK((value & ~LowMask(width)) == 0);
    const size_t word = pos >> 6;
    const uint32_t offset = pos & 63;
    const uint64_t mask = LowMask(width);
    words_[word] = (words_[word] & ~(mask << offset)) | (value << offset);
    if (offset + width > 64) {
      const uint32_t spill = offset + width - 64;
      const uint64_t hi_mask = LowMask(spill);
      words_[word + 1] =
          (words_[word + 1] & ~hi_mask) | (value >> (64 - offset));
    }
  }

  // Moves the bit range [begin, end) to [begin+shift, end+shift); the
  // vacated bits keep their previous values (callers overwrite them).
  // Ranges may overlap. Used when a widening counter pushes its neighbors
  // toward a slack region (paper Section 4.4).
  void ShiftRangeRight(size_t begin, size_t end, size_t shift);

  // Moves the bit range [begin, end) to [begin-shift, end-shift).
  void ShiftRangeLeft(size_t begin, size_t end, size_t shift);

  // Copies `len` bits from `src` starting at `src_pos` into this vector at
  // `dst_pos`. The vectors must be distinct objects.
  void CopyFrom(const BitVector& src, size_t src_pos, size_t dst_pos,
                size_t len);

  // Number of set bits in the whole vector.
  [[nodiscard]] size_t PopCount() const noexcept;

  [[nodiscard]] const uint64_t* words() const noexcept {
    return words_.data();
  }
  [[nodiscard]] uint64_t* mutable_words() noexcept { return words_.data(); }

  bool operator==(const BitVector& other) const {
    return num_bits_ == other.num_bits_ && words_ == other.words_;
  }

 private:
  size_t num_bits_ = 0;
  // Cache-line aligned: bit 0 of word 0 starts a 64-byte line, so any
  // 512-bit block at a 512-bit-aligned bit offset occupies exactly one
  // line (the blocked SBF layout and its SIMD kernels depend on this).
  std::vector<uint64_t, AlignedAllocator<uint64_t, kCacheLineBytes>> words_;
};

}  // namespace sbf

#endif  // SBF_BITSTREAM_BIT_VECTOR_H_
