#ifndef SBF_BITSTREAM_RANK_SELECT_H_
#define SBF_BITSTREAM_RANK_SELECT_H_

#include <cstdint>
#include <vector>

#include "bitstream/bit_vector.h"
#include "util/status.h"

namespace sbf {

// Static rank/select directory over a BitVector snapshot.
//
// The paper uses rank to translate subgroup indices into offset-vector
// slots when lookup-table-handled subgroups are skipped (Section 4.7.1),
// and notes that the classic select solutions [Jac89, Mun96] solve the
// static variable-length access problem. Rank answers in O(1) with o(N)
// extra bits (two-level directory: 512-bit superblocks with absolute
// counts + 64-bit blocks with 9-bit relative counts); select binary-
// searches the superblock directory, walks the superblock's block ranks
// (one cache line of uint16_t, branch-free), then selects within a single
// word — O(log N) worst case dominated by the binary search.
class RankSelect {
 public:
  RankSelect() = default;
  // Builds the directory; `bits` must outlive this object.
  explicit RankSelect(const BitVector* bits);

  // Number of set bits in [0, pos). pos may equal size_bits().
  [[nodiscard]] size_t Rank1(size_t pos) const noexcept;
  // Number of zero bits in [0, pos).
  [[nodiscard]] size_t Rank0(size_t pos) const noexcept {
    return pos - Rank1(pos);
  }

  // Position of the j-th set bit, 0-indexed (Select1(0) = first set bit).
  // Precondition: j < Rank1(size_bits()).
  [[nodiscard]] size_t Select1(size_t j) const noexcept;

  [[nodiscard]] size_t num_ones() const noexcept { return num_ones_; }

  // Directory overhead in bits (excludes the underlying vector).
  [[nodiscard]] size_t OverheadBits() const noexcept {
    return (superblocks_.size() * sizeof(uint64_t) +
            blocks_.size() * sizeof(uint16_t)) *
           8;
  }

  // Audits the two-level directory against a full recount of the
  // underlying vector: every superblock's absolute rank, every block's
  // relative rank, and the cached total must match what the words say.
  [[nodiscard]] Status CheckInvariants() const;

 private:
  static constexpr size_t kBitsPerBlock = 64;
  static constexpr size_t kBlocksPerSuper = 8;  // 512 bits per superblock

  const BitVector* bits_ = nullptr;
  std::vector<uint64_t> superblocks_;  // absolute rank at superblock start
  std::vector<uint16_t> blocks_;       // rank relative to superblock start
  size_t num_ones_ = 0;
};

}  // namespace sbf

#endif  // SBF_BITSTREAM_RANK_SELECT_H_
