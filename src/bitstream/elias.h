#ifndef SBF_BITSTREAM_ELIAS_H_
#define SBF_BITSTREAM_ELIAS_H_

#include <cstdint>

#include "bitstream/bit_writer.h"

namespace sbf {

// Elias universal codes [Eli75], the prefix-free integer codes the paper
// uses for compact serial counter storage (Section 4.5).
//
// Gamma code of n >= 1: (L-1) zero bits, then the L-bit binary
// representation of n MSB-first, where L = floor(log2 n) + 1.
// Length: 2*floor(log2 n) + 1 bits.
//
// Delta code of n >= 1: gamma code of L, then the low L-1 bits of n
// (the leading 1 is implied). Length: floor(log2 n) +
// 2*floor(log2(floor(log2 n)+1)) + 1 bits — the paper's L2(n).
//
// Neither code represents 0; the counter layers encode c as code(c+1), as
// the paper prescribes ("when encoding n, we actually encode n+1").

// Appends the gamma code of n (n >= 1).
void EliasGammaEncode(uint64_t n, BitWriter* writer);
// Decodes one gamma codeword at the reader's position.
uint64_t EliasGammaDecode(BitReader* reader);
// Code length in bits without encoding.
uint32_t EliasGammaLength(uint64_t n);

// Appends the delta code of n (n >= 1).
void EliasDeltaEncode(uint64_t n, BitWriter* writer);
// Decodes one delta codeword at the reader's position.
uint64_t EliasDeltaDecode(BitReader* reader);
// Code length in bits without encoding; this is the paper's
// L2(n) = floor(log2 n) + 2*floor(log2(floor(log2 n)+1)) + 1.
uint32_t EliasDeltaLength(uint64_t n);

}  // namespace sbf

#endif  // SBF_BITSTREAM_ELIAS_H_
