#include "bitstream/steps_code.h"

#include "bitstream/elias.h"
#include "util/check.h"

namespace sbf {

StepsCode::StepsCode(std::vector<uint32_t> step_widths)
    : step_widths_(std::move(step_widths)) {
  SBF_CHECK_MSG(!step_widths_.empty(), "steps code needs at least one step");
  uint64_t base = 0;
  bases_.reserve(step_widths_.size());
  for (uint32_t w : step_widths_) {
    SBF_CHECK_MSG(w < 63, "step width too large");
    bases_.push_back(base);
    base += 1ull << w;
  }
  escape_base_ = base;
}

void StepsCode::Encode(uint64_t value, BitWriter* writer) const {
  for (size_t j = 0; j < step_widths_.size(); ++j) {
    const uint64_t capacity = 1ull << step_widths_[j];
    if (value < bases_[j] + capacity) {
      writer->WriteBit(false);
      writer->WriteBits(value - bases_[j], step_widths_[j]);
      return;
    }
    writer->WriteBit(true);
  }
  EliasDeltaEncode(value - escape_base_ + 1, writer);
}

uint64_t StepsCode::Decode(BitReader* reader) const {
  for (size_t j = 0; j < step_widths_.size(); ++j) {
    if (!reader->ReadBit()) {
      return bases_[j] + reader->ReadBits(step_widths_[j]);
    }
  }
  return escape_base_ + EliasDeltaDecode(reader) - 1;
}

uint32_t StepsCode::Length(uint64_t value) const {
  for (size_t j = 0; j < step_widths_.size(); ++j) {
    const uint64_t capacity = 1ull << step_widths_[j];
    if (value < bases_[j] + capacity) {
      return static_cast<uint32_t>(j + 1) + step_widths_[j];
    }
  }
  return static_cast<uint32_t>(step_widths_.size()) +
         EliasDeltaLength(value - escape_base_ + 1);
}

}  // namespace sbf
