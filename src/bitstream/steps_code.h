#ifndef SBF_BITSTREAM_STEPS_CODE_H_
#define SBF_BITSTREAM_STEPS_CODE_H_

#include <cstdint>
#include <vector>

#include "bitstream/bit_writer.h"

namespace sbf {

// The paper's "steps" method (Section 4.5): a Huffman-like prefix code that
// spends very few bits on the small counters that dominate real data sets,
// escaping to an Elias code for large values.
//
// A configuration is a list of step widths [w_1, ..., w_s]. The codeword
// for value v >= 0 is built step by step: at step j a continuation bit 0
// means "v lies in this step" and is followed by w_j payload bits encoding
// v - base_j, where base_j is the total capacity of earlier steps and step
// j holds 2^{w_j} values. A continuation bit 1 advances to the next step;
// after the last step, the Elias delta code of (v - base_end + 1) follows.
//
// The paper's example "0 -> '0', 1 -> '10', else '11' + Elias" is the
// configuration {0, 0}. The Figure 10 configurations "1,2" and "2,3" are
// {1, 2} and {2, 3}.
class StepsCode {
 public:
  explicit StepsCode(std::vector<uint32_t> step_widths);

  const std::vector<uint32_t>& step_widths() const { return step_widths_; }

  // Appends the codeword for `value` (any value >= 0).
  void Encode(uint64_t value, BitWriter* writer) const;

  // Decodes one codeword at the reader's position.
  uint64_t Decode(BitReader* reader) const;

  // Codeword length in bits without encoding.
  uint32_t Length(uint64_t value) const;

 private:
  std::vector<uint32_t> step_widths_;
  std::vector<uint64_t> bases_;  // bases_[j] = first value of step j
  uint64_t escape_base_;         // first value encoded via Elias escape
};

}  // namespace sbf

#endif  // SBF_BITSTREAM_STEPS_CODE_H_
