#ifndef SBF_BITSTREAM_BIT_WRITER_H_
#define SBF_BITSTREAM_BIT_WRITER_H_

#include <cstdint>

#include "bitstream/bit_vector.h"

namespace sbf {

// Append-only cursor over a BitVector, used to build encoded streams
// (Elias / steps coded counter groups). Grows the underlying vector on
// demand in word-sized steps.
class BitWriter {
 public:
  explicit BitWriter(BitVector* out) : out_(out), pos_(out->size_bits()) {}

  // Positioned writer: starts writing (overwriting) at `pos`. Used to
  // re-encode a counter group in place inside its slack-padded region.
  BitWriter(BitVector* out, size_t pos) : out_(out), pos_(pos) {
    SBF_DCHECK(pos <= out->size_bits());
  }

  size_t position() const { return pos_; }

  void WriteBit(bool bit) {
    EnsureRoom(1);
    out_->SetBit(pos_++, bit);
  }

  // Appends the low `width` bits of `value`, LSB first in the stream.
  void WriteBits(uint64_t value, uint32_t width) {
    EnsureRoom(width);
    out_->SetBits(pos_, width, value & LowMask(width));
    pos_ += width;
  }

  // Appends `count` zero bits. Writes them explicitly so positioned
  // (overwriting) writers stay correct.
  void WriteZeros(uint32_t count) {
    EnsureRoom(count);
    uint32_t remaining = count;
    while (remaining > 0) {
      const uint32_t chunk = remaining > 64 ? 64 : remaining;
      out_->SetBits(pos_, chunk, 0);
      pos_ += chunk;
      remaining -= chunk;
    }
  }

  // Truncates the vector to exactly the written length.
  void Finish() { out_->Resize(pos_); }

 private:
  void EnsureRoom(uint32_t bits) {
    if (pos_ + bits > out_->size_bits()) {
      out_->Resize(((pos_ + bits) * 2) + 64);
    }
  }

  BitVector* out_;
  size_t pos_;
};

// Sequential reading cursor over a BitVector.
class BitReader {
 public:
  explicit BitReader(const BitVector* in, size_t pos = 0)
      : in_(in), pos_(pos) {}

  size_t position() const { return pos_; }
  void Seek(size_t pos) { pos_ = pos; }
  bool AtEnd() const { return pos_ >= in_->size_bits(); }

  bool ReadBit() { return in_->GetBit(pos_++); }

  uint64_t ReadBits(uint32_t width) {
    const uint64_t v = in_->GetBits(pos_, width);
    pos_ += width;
    return v;
  }

 private:
  const BitVector* in_;
  size_t pos_;
};

}  // namespace sbf

#endif  // SBF_BITSTREAM_BIT_WRITER_H_
