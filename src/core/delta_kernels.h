#ifndef SBF_CORE_DELTA_KERNELS_H_
#define SBF_CORE_DELTA_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "hashing/hash.h"
#include "util/check.h"

namespace sbf {

// Allocation-free open-addressed accumulation kernels for the epoch-merged
// delta-buffer write path (core/delta_buffer.h). A delta map aggregates a
// thread's buffered (key -> net occurrence count) updates for one shard;
// the epoch merge drains it into the shard's counters. Both operations run
// on the insert hot path, so — like core/batch_kernels.h — this header is
// linted allocation-free (scripts/sbf_lint.py kernel-allocations rule):
// storage is owned by the caller and viewed through raw pointers.

// View over one shard's delta-map storage: `capacity_mask + 1` slots of
// parallel arrays (key, two's-complement net count, occupancy byte). The
// capacity must be a power of two. Nets are uint64_t with wrapping
// arithmetic so buffered removes (negative nets) share the mod-2^64
// discipline of the lock-free counter path.
struct DeltaMapView {
  uint64_t* keys;
  uint64_t* nets;
  uint8_t* used;
  uint64_t capacity_mask;
};

// Accumulates `delta` (wrapping; pass ~count + 1 for a remove of `count`)
// onto `key`'s net, inserting the key with linear probing if absent.
// `*size` counts live slots. Returns false when the map has no free slot
// for a new key — the caller must merge the map and retry (which cannot
// fail again: a drained map is empty).
inline bool DeltaAccumulate(const DeltaMapView& map, uint64_t key,
                            uint64_t delta, uint32_t* size) {
  SBF_DCHECK(map.capacity_mask > 0);
  uint64_t at = Mix64(key) & map.capacity_mask;
  for (uint64_t probes = 0; probes <= map.capacity_mask; ++probes) {
    if (map.used[at] == 0) {
      map.used[at] = 1;
      map.keys[at] = key;
      map.nets[at] = delta;
      ++*size;
      return true;
    }
    if (map.keys[at] == key) {
      map.nets[at] += delta;
      return true;
    }
    at = (at + 1) & map.capacity_mask;
  }
  return false;
}

// Drains every live entry: calls `apply(key, net)` for each slot whose net
// is nonzero (an insert cancelled by a buffered remove nets to zero and is
// skipped — nothing to apply), clears the map, and returns the number of
// applied entries. Iteration is in slot order, which makes single-buffer
// merges deterministic for a deterministic insertion history.
template <typename ApplyFn>
inline uint32_t DeltaDrain(const DeltaMapView& map, ApplyFn&& apply) {
  uint32_t applied = 0;
  for (uint64_t at = 0; at <= map.capacity_mask; ++at) {
    if (map.used[at] == 0) continue;
    map.used[at] = 0;
    if (map.nets[at] != 0) {
      apply(map.keys[at], map.nets[at]);
      ++applied;
    }
  }
  return applied;
}

}  // namespace sbf

#endif  // SBF_CORE_DELTA_KERNELS_H_
