#include "core/bloom_filter.h"

#include <cmath>
#include <cstring>

namespace sbf {
namespace {

constexpr uint32_t kMaxK = 64;
constexpr uint32_t kWireMagic = 0x53424621;  // "SBF!"

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint64_t ReadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

BloomFilter::BloomFilter(uint64_t m, uint32_t k, uint64_t seed,
                         HashFamily::Kind kind)
    : m_(m), hash_(k, m, seed, kind), bits_(m) {
  SBF_CHECK_MSG(m >= 1, "Bloom filter needs m >= 1");
  SBF_CHECK_MSG(k >= 1 && k <= kMaxK, "Bloom filter needs 1 <= k <= 64");
}

uint32_t BloomFilter::OptimalK(uint64_t m, uint64_t n) {
  if (n == 0) return 1;
  const double k = std::log(2.0) * static_cast<double>(m) /
                   static_cast<double>(n);
  const auto rounded = static_cast<uint32_t>(std::lround(k));
  return std::max(1u, std::min(rounded, kMaxK));
}

BloomFilter BloomFilter::WithBitsPerKey(uint64_t n, double bits_per_key,
                                        uint64_t seed) {
  const auto m = static_cast<uint64_t>(
      std::ceil(bits_per_key * static_cast<double>(std::max<uint64_t>(n, 1))));
  return BloomFilter(std::max<uint64_t>(m, 1), OptimalK(m, n), seed);
}

void BloomFilter::Add(uint64_t key) {
  uint64_t positions[kMaxK];
  hash_.Positions(key, positions);
  for (uint32_t i = 0; i < hash_.k(); ++i) bits_.SetBit(positions[i], true);
  ++num_added_;
}

bool BloomFilter::Contains(uint64_t key) const {
  uint64_t positions[kMaxK];
  hash_.Positions(key, positions);
  for (uint32_t i = 0; i < hash_.k(); ++i) {
    if (!bits_.GetBit(positions[i])) return false;
  }
  return true;
}

double BloomFilter::FillRatio() const {
  return static_cast<double>(bits_.PopCount()) / static_cast<double>(m_);
}

double BloomFilter::TheoreticalFpRate(uint64_t m, uint32_t k, uint64_t n) {
  if (n == 0) return 0.0;
  const double gamma = static_cast<double>(k) * static_cast<double>(n) /
                       static_cast<double>(m);
  return std::pow(1.0 - std::exp(-gamma), k);
}

Status BloomFilter::UnionWith(const BloomFilter& other) {
  if (!hash_.Compatible(other.hash_)) {
    return Status::FailedPrecondition(
        "Bloom filter union requires identical (m, k, seed, kind)");
  }
  for (size_t w = 0; w < bits_.size_words(); ++w) {
    bits_.mutable_words()[w] |= other.bits_.words()[w];
  }
  num_added_ += other.num_added_;
  return Status::Ok();
}

std::vector<uint8_t> BloomFilter::Serialize() const {
  std::vector<uint8_t> out;
  AppendU64(&out, kWireMagic);
  AppendU64(&out, m_);
  AppendU64(&out, hash_.k());
  AppendU64(&out, hash_.seed());
  AppendU64(&out, hash_.kind() == HashFamily::Kind::kModuloMultiply ? 0 : 1);
  AppendU64(&out, num_added_);
  for (size_t w = 0; w < bits_.size_words(); ++w) {
    AppendU64(&out, bits_.words()[w]);
  }
  return out;
}

StatusOr<BloomFilter> BloomFilter::Deserialize(
    const std::vector<uint8_t>& bytes) {
  constexpr size_t kHeader = 6 * 8;
  if (bytes.size() < kHeader) {
    return Status::DataLoss("Bloom filter message truncated");
  }
  const uint8_t* p = bytes.data();
  if (ReadU64(p) != kWireMagic) {
    return Status::DataLoss("bad Bloom filter magic");
  }
  const uint64_t m = ReadU64(p + 8);
  const uint64_t k = ReadU64(p + 16);
  const uint64_t seed = ReadU64(p + 24);
  const uint64_t kind = ReadU64(p + 32);
  const uint64_t count = ReadU64(p + 40);
  if (m < 1 || k < 1 || k > kMaxK || kind > 1) {
    return Status::DataLoss("bad Bloom filter header");
  }
  // Validate the payload size before allocating m bits, so a corrupted
  // header cannot trigger a huge allocation.
  const size_t words = CeilDiv(m, 64);
  if (bytes.size() != kHeader + words * 8) {
    return Status::DataLoss("Bloom filter payload size mismatch");
  }
  BloomFilter filter(m, static_cast<uint32_t>(k), seed,
                     kind == 0 ? HashFamily::Kind::kModuloMultiply
                               : HashFamily::Kind::kDoubleMix);
  for (size_t w = 0; w < words; ++w) {
    filter.bits_.mutable_words()[w] = ReadU64(p + kHeader + w * 8);
  }
  filter.num_added_ = count;
  return filter;
}

}  // namespace sbf
