#include "core/bloom_filter.h"

#include <cmath>
#include <cstring>

#include "util/fault_injection.h"
#include "util/audit.h"

namespace sbf {
namespace {

constexpr uint32_t kMaxK = 64;

}  // namespace

BloomFilter::BloomFilter(uint64_t m, uint32_t k, uint64_t seed,
                         HashFamily::Kind kind)
    : m_(m), hash_(k, m, seed, kind), bits_(m) {
  SBF_CHECK_MSG(m >= 1, "Bloom filter needs m >= 1");
  SBF_CHECK_MSG(k >= 1 && k <= kMaxK, "Bloom filter needs 1 <= k <= 64");
  SBF_AUDIT_INVARIANTS(*this);
}

uint32_t BloomFilter::OptimalK(uint64_t m, uint64_t n) {
  if (n == 0) return 1;
  const double k = std::log(2.0) * static_cast<double>(m) /
                   static_cast<double>(n);
  const auto rounded = static_cast<uint32_t>(std::lround(k));
  return std::max(1u, std::min(rounded, kMaxK));
}

BloomFilter BloomFilter::WithBitsPerKey(uint64_t n, double bits_per_key,
                                        uint64_t seed) {
  const auto m = static_cast<uint64_t>(
      std::ceil(bits_per_key * static_cast<double>(std::max<uint64_t>(n, 1))));
  return BloomFilter(std::max<uint64_t>(m, 1), OptimalK(m, n), seed);
}

void BloomFilter::Add(uint64_t key) {
  uint64_t positions[kMaxK];
  hash_.Positions(key, positions);
  for (uint32_t i = 0; i < hash_.k(); ++i) bits_.SetBit(positions[i], true);
  ++num_added_;
}

bool BloomFilter::Contains(uint64_t key) const {
  uint64_t positions[kMaxK];
  hash_.Positions(key, positions);
  for (uint32_t i = 0; i < hash_.k(); ++i) {
    if (!bits_.GetBit(positions[i])) return false;
  }
  return true;
}

double BloomFilter::FillRatio() const {
  return static_cast<double>(bits_.PopCount()) / static_cast<double>(m_);
}

double BloomFilter::TheoreticalFpRate(uint64_t m, uint32_t k, uint64_t n) {
  if (n == 0) return 0.0;
  const double gamma = static_cast<double>(k) * static_cast<double>(n) /
                       static_cast<double>(m);
  return std::pow(1.0 - std::exp(-gamma), k);
}

Status BloomFilter::UnionWith(const BloomFilter& other) {
  if (!hash_.Compatible(other.hash_)) {
    return Status::FailedPrecondition(
        "Bloom filter union requires identical (m, k, seed, kind)");
  }
  for (size_t w = 0; w < bits_.size_words(); ++w) {
    bits_.mutable_words()[w] |= other.bits_.words()[w];
  }
  num_added_ += other.num_added_;
  popcount_bound_intact_ &= other.popcount_bound_intact_;
  SBF_AUDIT_INVARIANTS(*this);
  return Status::Ok();
}

Status BloomFilter::ExpandTo(uint64_t new_m) {
  if (new_m == m_) return Status::Ok();
  if (new_m < m_ || new_m % m_ != 0) {
    return Status::InvalidArgument(
        "ExpandTo needs new_m to be a multiple of the current m");
  }
  if (fault::ShouldFailAllocation()) {
    return Status::ResourceExhausted("Bloom filter expansion allocation failed");
  }
  const uint64_t c = new_m / m_;
  BitVector next(new_m);
  for (uint64_t i = 0; i < m_; ++i) {
    if (!bits_.GetBit(i)) continue;
    for (uint64_t rep = 0; rep < c; ++rep) {
      const uint64_t p = hash_.kind() == HashFamily::Kind::kModuloMultiply
                             ? i * c + rep
                             : i + rep * m_;
      next.SetBit(p, true);
    }
  }
  hash_ = HashFamily(hash_.k(), new_m, hash_.seed(), hash_.kind());
  bits_ = std::move(next);
  m_ = new_m;
  // Replication set up to c bits per original Add, so the population
  // bound ones <= k * num_added no longer holds for this filter.
  popcount_bound_intact_ = false;
  SBF_AUDIT_INVARIANTS(*this);
  return Status::Ok();
}

std::vector<uint8_t> BloomFilter::Serialize() const {
  SBF_AUDIT_INVARIANTS(*this);
  wire::Writer payload;
  payload.PutVarint(m_);
  payload.PutVarint(hash_.k());
  payload.PutU8(hash_.kind() == HashFamily::Kind::kModuloMultiply ? 0 : 1);
  payload.PutU64(hash_.seed());
  payload.PutVarint(num_added_);
  payload.PutWords(bits_.words(), bits_.size_words());
  return wire::SealFrame(wire::kMagicBloomFilter, wire::kFormatVersion,
                         std::move(payload));
}

StatusOr<BloomFilter> BloomFilter::Deserialize(wire::ByteSpan bytes) {
  auto reader = wire::OpenFrame(bytes, wire::kMagicBloomFilter,
                                wire::kFormatVersion, "Bloom filter");
  if (!reader.ok()) return reader.status();
  wire::Reader& in = reader.value();
  const uint64_t m = in.ReadVarint();
  const uint64_t k = in.ReadVarint();
  const uint8_t kind = in.ReadU8();
  const uint64_t seed = in.ReadU64();
  const uint64_t count = in.ReadVarint();
  if (!in.ok()) return in.status();
  if (m < 1 || k < 1 || k > kMaxK || kind > 1) {
    return Status::DataLoss("bad Bloom filter header");
  }
  // Validate the payload size before allocating m bits, so a corrupted
  // header cannot trigger a huge allocation.
  if (m > in.remaining() * 8) {
    return Status::DataLoss("Bloom filter bit array truncated");
  }
  const size_t words = CeilDiv(m, 64);
  if (in.remaining() != words * 8) {
    return Status::DataLoss("Bloom filter payload size mismatch");
  }
  BloomFilter filter(m, static_cast<uint32_t>(k), seed,
                     kind == 0 ? HashFamily::Kind::kModuloMultiply
                               : HashFamily::Kind::kDoubleMix);
  in.ReadWords(filter.bits_.mutable_words(), words);
  Status status = in.ExpectEnd("Bloom filter");
  if (!status.ok()) return status;
  if (m % 64 != 0 && (filter.bits_.words()[words - 1] >> (m % 64)) != 0) {
    return Status::DataLoss("Bloom filter has set padding bits");
  }
  filter.num_added_ = count;
  // No expansion provenance on the wire: the population bound cannot be
  // re-armed on a loaded filter.
  filter.popcount_bound_intact_ = false;
  SBF_AUDIT_INVARIANTS(filter);
  return filter;
}


Status BloomFilter::CheckInvariants() const {
  if (m_ < 1) {
    return Status::FailedPrecondition("Bloom filter: m < 1");
  }
  if (hash_.m() != m_ || hash_.k() < 1 || hash_.k() > HashFamily::kMaxK) {
    return Status::FailedPrecondition(
        "Bloom filter: hash family disagrees with m/k");
  }
  if (bits_.size_bits() != m_) {
    return Status::FailedPrecondition(
        "Bloom filter: bit array size disagrees with m");
  }
  if (m_ % 64 != 0 && (bits_.words()[m_ / 64] >> (m_ % 64)) != 0) {
    return Status::FailedPrecondition(
        "Bloom filter: set bits in the tail padding");
  }
  // Each Add sets at most k bits, so the population can never exceed
  // k * num_added (the bound is vacuous once num_added >= m, where the
  // product could also overflow — skip it there).
  const size_t ones = bits_.PopCount();
  if (popcount_bound_intact_ && num_added_ <= m_ &&
      ones > num_added_ * hash_.k()) {
    return Status::FailedPrecondition(
        "Bloom filter: more set bits than k * num_added can explain");
  }
  return Status::Ok();
}

}  // namespace sbf
