#ifndef SBF_CORE_ANALYSIS_H_
#define SBF_CORE_ANALYSIS_H_

#include <cstdint>
#include <vector>

namespace sbf {

// Closed-form error models from the paper, used to print analytic curves
// (Figures 1 and 4) and paper-vs-measured comparisons.

// The classic Bloom error E_b ~ (1 - e^{-gamma})^k, gamma = nk/m
// (Section 2.1).
double BloomErrorRate(double gamma, uint32_t k);
double BloomErrorRateFor(uint64_t n, uint64_t m, uint32_t k);

// Exact form E_b = (1 - (1 - 1/m)^{kn})^k.
double BloomErrorRateExact(uint64_t n, uint64_t m, uint32_t k);

// Probability that a counter is stepped over by at least two items
// (Section 2.3's E'): 1 - (1-1/m)^{Nk} - Nk(1/m)(1-1/m)^{Nk-1}.
double DoubleStepProbability(uint64_t total_items, uint64_t m, uint32_t k);

// Expected relative error of the i-th most frequent item (1-indexed) under
// a Zipfian distribution of skew z with n distinct items and k hash
// functions, *given* a Bloom error occurred — the paper's Equation (1):
//
//   E(RE_i^z) < i^z * k / (n-k)^k * sum_{j} j^{k-z-1}
//
// This is the curve family of Figure 1.
double ZipfExpectedRelativeError(uint64_t i, uint64_t n, uint32_t k, double z);

// Mean expected relative error over all items (Equation (2)):
//   E(RE^z) < k (n+1)^{k+1} / (n (k-z) (z+1) (n-k)^k),  valid for z < k.
double ZipfMeanRelativeErrorBound(uint64_t n, uint32_t k, double z);
// Skew minimizing Equation (2): (k-1)/2 (the paper prints (k+1)/2, which
// does not extremize its own formula; see the .cc note).
double ZipfOptimalSkew(uint32_t k);

// Tail bound P(RE_i > T) <= k (i / ((n-k) T^{1/z}))^k (Section 2.3).
double ZipfRelativeErrorTailBound(uint64_t i, uint64_t n, uint32_t k, double z,
                                  double threshold);

// Iceberg-query error model (Section 5.2): for a frequency distribution
// where `d[f]` is the fraction of distinct items having frequency f
// (0 <= f < d.size()), the expected rate of items wrongly reported above
// threshold T is
//
//   E = sum_{f=0}^{T-1} d[f] * (1 - e^{-(kn/m) * D_f})^k,
//   D_f = sum_{i >= T-f} d[i],
//
// the Figure 4 curve.
double IcebergErrorRate(const std::vector<double>& d, double gamma, uint32_t k,
                        uint64_t threshold);

// Frequency histogram d(f) of a Zipfian multiset: n distinct items, total
// M occurrences, skew z. d[f] = fraction of items with frequency exactly f.
std::vector<double> ZipfFrequencyPmf(uint64_t n, uint64_t total, double z);

}  // namespace sbf

#endif  // SBF_CORE_ANALYSIS_H_
