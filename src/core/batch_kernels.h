#ifndef SBF_CORE_BATCH_KERNELS_H_
#define SBF_CORE_BATCH_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "hashing/hash_family.h"

namespace sbf {

// Keys hashed ahead of the probe cursor in the batched pipelines. At W = 8
// the prefetches of key i+8 have the latency of ~8 keys' worth of hashing
// and probing (>= 100ns at k = 5) to complete — comfortably above DRAM
// latency — while the position ring stays a 4 KiB stack array
// (W * kMaxK * 8 bytes). Larger windows showed no further gain and start
// evicting the probes' own lines on small L1s (see DESIGN.md "Hot path &
// batching").
inline constexpr size_t kBatchWindow = 8;

// Two-stage software pipeline shared by every batched filter kernel
// (tentpole of the batching PR):
//
//   stage 1 (hash):  compute the k positions of key i+W and issue a
//                    prefetch for each position's backing words;
//   stage 2 (probe): read/update the counters of key i, whose prefetch
//                    was issued W keys ago and has had time to complete.
//
// `cv` is the *concrete* (final) counter vector so the probe functor's
// Get/Set/Increment calls devirtualize and inline. `pos_of(key, out)`
// fills out[0..k) (pure — it never reads counters, so hashing ahead of
// in-order probing preserves exact scalar semantics even for duplicate
// keys). `prefetch(cv, pos)` hints the backing words of one key's
// positions. `probe(cv, pos, i)` performs the actual per-key operation,
// in input order.
template <typename CV, typename PosFn, typename PrefetchFn, typename ProbeFn>
inline void BatchPipeline(CV& cv, const uint64_t* keys, size_t n,
                          PosFn&& pos_of, PrefetchFn&& prefetch,
                          ProbeFn&& probe) {
  uint64_t ring[kBatchWindow][HashFamily::kMaxK];
  const size_t head = n < kBatchWindow ? n : kBatchWindow;
  for (size_t i = 0; i < head; ++i) {
    pos_of(keys[i], ring[i]);
    prefetch(cv, ring[i]);
  }
  for (size_t i = 0; i < n; ++i) {
    uint64_t* pos = ring[i % kBatchWindow];
    probe(cv, pos, i);
    // The slot just probed is the one key i+W lands in.
    const size_t ahead = i + kBatchWindow;
    if (ahead < n) {
      pos_of(keys[ahead], pos);
      prefetch(cv, pos);
    }
  }
}

// Branch-free minimum over the k counters at pos[0..k): the conditional
// moves this compiles to keep the probe loop free of the data-dependent
// early-exit branch of the scalar Estimate (mispredicted half the time on
// mixed known/unknown query sets). Result is identical to the scalar
// early-exit min.
template <typename CV>
inline uint64_t BranchFreeMin(const CV& cv, const uint64_t* pos, uint32_t k) {
  uint64_t min_value = cv.Get(pos[0]);
  for (uint32_t j = 1; j < k; ++j) {
    const uint64_t v = cv.Get(pos[j]);
    min_value = v < min_value ? v : min_value;
  }
  return min_value;
}

// Early-exit minimum: same value as BranchFreeMin, but stops at the first
// zero counter. The right probe for backings whose Get is a scan (compact,
// serial-scan): there a skipped probe saves far more than a mispredicted
// branch costs, and on sparse filters most queries hit a zero early.
template <typename CV>
inline uint64_t EarlyExitMin(const CV& cv, const uint64_t* pos, uint32_t k) {
  uint64_t min_value = cv.Get(pos[0]);
  for (uint32_t j = 1; j < k && min_value != 0; ++j) {
    const uint64_t v = cv.Get(pos[j]);
    min_value = v < min_value ? v : min_value;
  }
  return min_value;
}

// Minimal Increase probe over the k counters at pos[0..k) — the paper's
// Section 3.2 batch form, shared by the scalar Insert, the batched insert
// pipelines, and the SIMD kernels' exact fallback path. Lifts every
// counter below m_x + count up to it; the lift target saturates at 2^64
// (a mod-2^64 wrap would *lower* counters and break the one-sided
// guarantee), tallying the clamp. Narrower backings clamp again, and
// tally, inside Set.
template <typename CV>
inline void MinimalIncreaseProbe(CV& cv, const uint64_t* pos, uint32_t k,
                                 uint64_t count) {
  uint64_t values[HashFamily::kMaxK];
  uint64_t min_value = ~uint64_t{0};
  for (uint32_t j = 0; j < k; ++j) {
    values[j] = cv.Get(pos[j]);
    min_value = values[j] < min_value ? values[j] : min_value;
  }
  uint64_t target = min_value + count;
  if (count > ~uint64_t{0} - min_value) {
    target = ~uint64_t{0};
    cv.MergeSaturationStats({/*saturation_clamps=*/1, 0});
  }
  for (uint32_t j = 0; j < k; ++j) {
    if (values[j] < target) cv.Set(pos[j], target);
  }
}

// Stage-1 prefetch functor: one PrefetchCounter hint per position.
struct PrefetchEachPosition {
  uint32_t k;
  template <typename CV>
  void operator()(const CV& cv, const uint64_t* pos) const {
    for (uint32_t j = 0; j < k; ++j) cv.PrefetchCounter(pos[j]);
  }
};

// Counting-sorts `keys` by destination shard into caller-provided scratch
// (ConcurrentSbf's batch grouping step, hoisted here so the sort runs
// allocation-free over reusable buffers). After the call,
// `grouped[starts[s] .. starts[s+1])` holds the keys routed to shard s in
// stable input order, and `order[i]` is the original index of `grouped[i]`
// (for scattering batch results back to input order). `shard_of(key)` must
// return a shard index < num_shards. Scratch sizes: grouped, order and
// shard_scratch hold n entries; starts holds num_shards + 1;
// cursor_scratch holds num_shards.
template <typename ShardFn>
inline void CountingSortByShard(const uint64_t* keys, size_t n,
                                uint32_t num_shards, ShardFn&& shard_of,
                                uint64_t* grouped, uint32_t* order,
                                size_t* starts, uint32_t* shard_scratch,
                                size_t* cursor_scratch) {
  for (uint32_t s = 0; s <= num_shards; ++s) starts[s] = 0;
  for (size_t i = 0; i < n; ++i) {
    shard_scratch[i] = shard_of(keys[i]);
    ++starts[shard_scratch[i] + 1];
  }
  for (uint32_t s = 0; s < num_shards; ++s) starts[s + 1] += starts[s];
  for (uint32_t s = 0; s < num_shards; ++s) cursor_scratch[s] = starts[s];
  for (size_t i = 0; i < n; ++i) {
    const size_t at = cursor_scratch[shard_scratch[i]]++;
    grouped[at] = keys[i];
    order[at] = static_cast<uint32_t>(i);
  }
}

}  // namespace sbf

#endif  // SBF_CORE_BATCH_KERNELS_H_
