#ifndef SBF_CORE_FREQUENCY_FILTER_H_
#define SBF_CORE_FREQUENCY_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/health.h"
#include "util/status.h"

namespace sbf {

// Common interface of every multiplicity-estimating filter in the library
// (SBF under Minimum Selection / Minimal Increase, Recurring Minimum,
// Trapping Recurring Minimum). Lets the experiment harness and the
// sliding-window wrapper treat the paper's algorithms uniformly.
//
// All estimates are one-sided upper bounds under insert-only workloads:
// Estimate(x) >= f_x. Minimal Increase loses this guarantee once Remove is
// used (the false negatives the paper's Figure 8 demonstrates).
class FrequencyFilter {
 public:
  virtual ~FrequencyFilter() = default;

  // Records `count` additional occurrences of `key`.
  virtual void Insert(uint64_t key, uint64_t count = 1) = 0;

  // Removes `count` occurrences of `key`. Callers must only remove
  // occurrences previously inserted (the sliding-window contract: data
  // leaving the window is available for deletion).
  virtual void Remove(uint64_t key, uint64_t count = 1) = 0;

  // Estimated multiplicity of `key`.
  [[nodiscard]] virtual uint64_t Estimate(uint64_t key) const = 0;

  // --- batch API ---------------------------------------------------------
  //
  // Batched point operations. The defaults are plain loops, so every
  // filter gets a *correct* batch API for free; the hot frontends
  // (SpectralBloomFilter, BlockedSbf, CountingBloomFilter, ConcurrentSbf)
  // override them with hash-ahead + software-prefetch pipelines that hide
  // the k random counter reads behind useful work. Overrides must be
  // *exactly* equivalent to the default loops (same estimates, same final
  // counter state) — the batch-equals-scalar differential tests enforce
  // this for every backing and policy.

  // Records `count` additional occurrences of each of keys[0..n).
  virtual void InsertBatch(const uint64_t* keys, size_t n,
                           uint64_t count = 1) {
    for (size_t i = 0; i < n; ++i) Insert(keys[i], count);
  }

  // Fills out[i] = Estimate(keys[i]) for i in [0, n).
  virtual void EstimateBatch(const uint64_t* keys, size_t n,
                             uint64_t* out) const {
    for (size_t i = 0; i < n; ++i) out[i] = Estimate(keys[i]);
  }

  // Vector conveniences over the pointer forms above.
  void InsertBatch(const std::vector<uint64_t>& keys, uint64_t count = 1) {
    InsertBatch(keys.data(), keys.size(), count);
  }
  [[nodiscard]] std::vector<uint64_t> EstimateBatch(
      const std::vector<uint64_t>& keys) const {
    std::vector<uint64_t> out(keys.size());
    EstimateBatch(keys.data(), keys.size(), out.data());
    return out;
  }

  // Spectral membership test: is f_key >= threshold (with the filter's
  // one-sided error)? Threshold 1 is plain Bloom membership.
  [[nodiscard]] bool Contains(uint64_t key, uint64_t threshold = 1) const {
    return Estimate(key) >= threshold;
  }

  // Live health snapshot: fill ratio, estimated current FPR from observed
  // occupancy, saturation tallies, and a traffic-light verdict. The
  // default is an empty kHealthy snapshot; counter-backed frontends
  // override it with a real occupancy scan (O(m)).
  [[nodiscard]] virtual FilterHealth Health() const { return FilterHealth{}; }

  // Total memory footprint in bits, including all auxiliary structures.
  [[nodiscard]] virtual size_t MemoryUsageBits() const = 0;

  // Algorithm name for experiment tables ("MS", "MI", "RM", ...).
  [[nodiscard]] virtual std::string Name() const = 0;

  // Complete self-describing wire frame (io/wire.h): every frontend is
  // persistable and shippable. io/filter_codec.h reconstructs any
  // frontend from its frame by dispatching on the frame magic.
  [[nodiscard]] virtual std::vector<uint8_t> Serialize() const = 0;

  // Structural self-check of the paper's layout/counter invariants for
  // this filter (the SBF_AUDIT validator layer; see DESIGN.md §7). Always
  // compiled — `sbf_tool audit` runs it on deserialized frames in any
  // build — and additionally invoked at API boundaries in -DSBF_AUDIT
  // builds via SBF_AUDIT_INVARIANTS. Returns OK or a FailedPrecondition
  // naming the violated invariant.
  [[nodiscard]] virtual Status CheckInvariants() const { return Status::Ok(); }
};

}  // namespace sbf

#endif  // SBF_CORE_FREQUENCY_FILTER_H_
