#ifndef SBF_CORE_FREQUENCY_FILTER_H_
#define SBF_CORE_FREQUENCY_FILTER_H_

#include <cstdint>
#include <string>

namespace sbf {

// Common interface of every multiplicity-estimating filter in the library
// (SBF under Minimum Selection / Minimal Increase, Recurring Minimum,
// Trapping Recurring Minimum). Lets the experiment harness and the
// sliding-window wrapper treat the paper's algorithms uniformly.
//
// All estimates are one-sided upper bounds under insert-only workloads:
// Estimate(x) >= f_x. Minimal Increase loses this guarantee once Remove is
// used (the false negatives the paper's Figure 8 demonstrates).
class FrequencyFilter {
 public:
  virtual ~FrequencyFilter() = default;

  // Records `count` additional occurrences of `key`.
  virtual void Insert(uint64_t key, uint64_t count = 1) = 0;

  // Removes `count` occurrences of `key`. Callers must only remove
  // occurrences previously inserted (the sliding-window contract: data
  // leaving the window is available for deletion).
  virtual void Remove(uint64_t key, uint64_t count = 1) = 0;

  // Estimated multiplicity of `key`.
  virtual uint64_t Estimate(uint64_t key) const = 0;

  // Spectral membership test: is f_key >= threshold (with the filter's
  // one-sided error)? Threshold 1 is plain Bloom membership.
  bool Contains(uint64_t key, uint64_t threshold = 1) const {
    return Estimate(key) >= threshold;
  }

  // Total memory footprint in bits, including all auxiliary structures.
  virtual size_t MemoryUsageBits() const = 0;

  // Algorithm name for experiment tables ("MS", "MI", "RM", ...).
  virtual std::string Name() const = 0;
};

}  // namespace sbf

#endif  // SBF_CORE_FREQUENCY_FILTER_H_
