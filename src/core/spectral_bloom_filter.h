#ifndef SBF_CORE_SPECTRAL_BLOOM_FILTER_H_
#define SBF_CORE_SPECTRAL_BLOOM_FILTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/frequency_filter.h"
#include "core/sbf_policy.h"
#include "hashing/hash_family.h"
#include "sai/counter_vector.h"
#include "util/health.h"
#include "util/status.h"

namespace sbf {

// Configuration of a SpectralBloomFilter.
struct SbfOptions {
  uint64_t m = 0;  // number of counters (required)
  uint32_t k = 5;  // number of hash functions
  SbfPolicy policy = SbfPolicy::kMinimumSelection;
  // Counter storage. kCompact is the paper's N + o(N) + O(m) structure;
  // kFixed64 trades memory for raw speed.
  CounterBacking backing = CounterBacking::kCompact;
  uint64_t seed = 0;
  HashFamily::Kind hash_kind = HashFamily::Kind::kModuloMultiply;
  // Verdict thresholds for Health() / ExpandIfDegraded(). Process-local
  // tuning — not serialized; deserialized filters use the defaults.
  HealthThresholds health;
};

// Validates an SbfOptions: m >= 1 and 1 <= k <= 64. Returns OK or an
// InvalidArgument describing the violation. The SpectralBloomFilter
// constructor enforces this with a fatal check *before* any member is
// built; recoverable callers (deserializers, config loaders) can call it
// themselves first.
Status ValidateSbfOptions(const SbfOptions& options);

// The Spectral Bloom Filter (paper Section 2.2): a Bloom filter whose bit
// vector is replaced by a vector of m counters C, supporting multiplicity
// estimates over dynamic multi-sets.
//
// For every key x, Estimate(x) >= f_x, and Estimate(x) != f_x happens with
// probability at most E_b ~ (1 - e^{-kn/m})^k (Claim 1) — one-sided errors
// only, so threshold queries f_x >= T produce false positives but never
// false negatives (under Minimum Selection, or Minimal Increase without
// deletions).
class SpectralBloomFilter final : public FrequencyFilter {
 public:
  explicit SpectralBloomFilter(SbfOptions options);
  // Convenience: m counters, k hashes, default policy/backing.
  SpectralBloomFilter(uint64_t m, uint32_t k);

  SpectralBloomFilter(const SpectralBloomFilter& other);
  SpectralBloomFilter& operator=(const SpectralBloomFilter& other);
  SpectralBloomFilter(SpectralBloomFilter&&) = default;
  SpectralBloomFilter& operator=(SpectralBloomFilter&&) = default;

  // --- FrequencyFilter ---------------------------------------------------

  void Insert(uint64_t key, uint64_t count = 1) override;
  // Deletes `count` previously inserted occurrences by decrementing the
  // key's counters. Under Minimal Increase this may create false negatives
  // (counters clamp at zero) — the paper's Section 3.2 caveat, reproduced
  // deliberately so the Figure 8/9 experiments can demonstrate it.
  void Remove(uint64_t key, uint64_t count = 1) override;
  // The Minimum Selection estimate m_x (minimal counter).
  [[nodiscard]] uint64_t Estimate(uint64_t key) const override;
  [[nodiscard]] size_t MemoryUsageBits() const override;
  [[nodiscard]] std::string Name() const override;

  // Batched point ops: hash-ahead + software-prefetch pipeline over the
  // concrete backing (see core/batch_kernels.h). Exactly equivalent to a
  // loop of the scalar ops, for every backing and policy.
  void InsertBatch(const uint64_t* keys, size_t n,
                   uint64_t count = 1) override;
  void EstimateBatch(const uint64_t* keys, size_t n,
                     uint64_t* out) const override;
  using FrequencyFilter::EstimateBatch;
  using FrequencyFilter::InsertBatch;

  // Applies aggregated (key, occurrence count) inserts — a drained
  // delta-buffer epoch — in one position-clustered pass: all k*n counter
  // positions are hashed up front, clustered by decoded span, and the
  // increments applied through a DecodeView, so each touched counter
  // group is decoded and written back at most once instead of once per
  // probe. Counter values and estimates come out exactly as a loop of
  // Insert(key, count) under Minimum Selection (clamped increments
  // commute); clamp-tally attribution can differ for increments that
  // straddle the clamp boundary, since the apply order is the clustered
  // one. Minimal Increase updates are order-dependent, and the fixed
  // backings' inline Increment beats any buffering — both fall back to
  // the scalar Insert loop (which keeps its fault-injection flip site;
  // the clustered path skips it). Cold-path helper for ConcurrentSbf's
  // shard flush; may allocate.
  void ApplyAddBatch(const std::pair<uint64_t, uint64_t>* entries, size_t n);

  // Convenience wrappers for string keys.
  void InsertBytes(std::string_view key, uint64_t count = 1) {
    Insert(Fingerprint64(key), count);
  }
  [[nodiscard]] uint64_t EstimateBytes(std::string_view key) const {
    return Estimate(Fingerprint64(key));
  }

  // --- introspection -----------------------------------------------------

  [[nodiscard]] uint64_t m() const noexcept { return options_.m; }
  [[nodiscard]] uint32_t k() const noexcept { return options_.k; }
  [[nodiscard]] const SbfOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] const HashFamily& hash() const noexcept { return hash_; }
  [[nodiscard]] const CounterVector& counters() const noexcept {
    return *counters_;
  }
  [[nodiscard]] CounterVector& mutable_counters() noexcept {
    return *counters_;
  }

  // Net number of item occurrences currently represented (inserts minus
  // removes); the N of the unbiased estimator (Section 3.1).
  [[nodiscard]] uint64_t total_items() const noexcept {
    return total_items_;
  }
  // Overrides the accounting directly. Frontends that lift counters out of
  // band (Trapping RM's MoveToSecondary, the algebra kernels, sharded
  // snapshots) use this — after which the Minimum Selection sum identity
  // sum(C) >= k * total_items no longer holds, so the call also retires
  // that audit rule for this filter (see CheckInvariants()).
  void set_total_items(uint64_t n) {
    total_items_ = n;
    sum_identity_intact_ = false;
  }

  // Values of the key's k counters, in hash order (the paper's v_x).
  [[nodiscard]] std::vector<uint64_t> CounterValues(uint64_t key) const;
  // True if the minimal counter value occurs in two or more of the key's
  // counters — the Recurring Minimum predicate R_x (Section 3.3).
  [[nodiscard]] bool HasRecurringMinimum(uint64_t key) const;

  // A fresh, empty filter with identical parameters (same hash functions).
  [[nodiscard]] SpectralBloomFilter CloneEmpty() const;

  // --- lifecycle: health & online expansion ------------------------------

  // Live health snapshot computed from observed counter occupancy: fill
  // ratio, estimated current FPR (Section 2.1 formula on live state),
  // saturated-counter share, clamp tallies, and a verdict against
  // options().health. O(m) scan.
  [[nodiscard]] FilterHealth Health() const override;

  // Clamp-event tallies of the counter backing (see SaturationStats).
  [[nodiscard]] const SaturationStats& saturation() const noexcept {
    return counters_->saturation();
  }

  // Grows the filter to `new_m` counters in place, without the original
  // keys: both hash families derive each probe from a key digest that is
  // independent of m, so for new_m = c * m every old counter has a known
  // preimage set of c new positions (multiply-shift: [i*c, (i+1)*c);
  // double-mix: {i + j*m}). Replicating old counter i's value across its
  // preimage set makes every key read exactly the counter values it read
  // before — estimates are preserved bit-for-bit — while keys inserted
  // *after* the expansion spread over the full new_m, restoring the error
  // bound going forward. Requires new_m to be a positive multiple of m;
  // fails with a clean Status (filter untouched) on bad arguments or
  // allocation failure.
  Status ExpandTo(uint64_t new_m);

  // Doubles m when Health() is kDegraded or kSaturated. Returns whether an
  // expansion happened.
  StatusOr<bool> ExpandIfDegraded();

  // Gamma = nk/m for a given number of distinct keys n.
  [[nodiscard]] double Gamma(uint64_t n_distinct) const noexcept {
    return static_cast<double>(n_distinct) * k() / static_cast<double>(m());
  }

  // --- serialization -----------------------------------------------------

  // 'SBsf' wire frame (io/wire.h): {varint m, varint k, u8 policy,
  // u8 backing, u8 hash kind, u64 seed, varint total items, embedded
  // counter backing frame}. With a compact backing the counters travel
  // Elias-delta coded in ~N bits — the compressed message the distributed
  // applications of Section 5 exchange.
  [[nodiscard]] std::vector<uint8_t> Serialize() const override;
  static StatusOr<SpectralBloomFilter> Deserialize(wire::ByteSpan bytes);

  // Audits options vs. the live hash family and counter backing (size,
  // concrete type, hash range); in -DSBF_AUDIT builds the counter
  // backing's own layout validator runs too.
  Status CheckInvariants() const override;

 private:
  SbfOptions options_;
  HashFamily hash_;
  std::unique_ptr<CounterVector> counters_;
  uint64_t total_items_ = 0;
  // True while every update went through Insert/Remove/ExpandTo, where the
  // sum identity is provable. Cleared by set_total_items() and on
  // Deserialize (the wire frame carries no provenance). Process-local,
  // never serialized.
  bool sum_identity_intact_ = true;
};

}  // namespace sbf

#endif  // SBF_CORE_SPECTRAL_BLOOM_FILTER_H_
