#ifndef SBF_CORE_ESTIMATORS_H_
#define SBF_CORE_ESTIMATORS_H_

#include <cstdint>

#include "core/spectral_bloom_filter.h"

namespace sbf {

// Alternative estimators over an SBF's counters (paper Section 3.1).

// The unbiased probabilistic estimator (Lemma 3):
//
//   f_bar(x) = (v_bar_x - kN/m) / (1 - k/m)
//
// where v_bar_x is the mean of x's k counters and N the total number of
// items in the filter. E[f_bar(x)] = f_x, but the variance is high and the
// estimate can be negative or below the true count (false negatives) —
// useful for aggregates, poor for individual queries, exactly as the
// paper's discussion concludes.
double UnbiasedEstimate(const SpectralBloomFilter& filter, uint64_t key);

// UnbiasedEstimate clamped to [0, MinimumSelection estimate]: never worse
// than the one-sided bounds that are certain.
double ClampedUnbiasedEstimate(const SpectralBloomFilter& filter,
                               uint64_t key);

// Variance-boosted estimator (Section 3.1.1): partitions the k counters
// into `groups` groups, averages (bias-corrected) within each group, and
// returns the median of the group means [AMS99]. `groups` must be >= 1;
// counters are split as evenly as possible. With groups == 1 this is
// UnbiasedEstimate.
double BoostedUnbiasedEstimate(const SpectralBloomFilter& filter,
                               uint64_t key, uint32_t groups);

// The hybrid suggested in Section 3.1's discussion: trust the minimum when
// the item has a recurring minimum (probably accurate) and fall back to
// the clamped unbiased estimator only in suspected-error cases.
double HybridRmUnbiasedEstimate(const SpectralBloomFilter& filter,
                                uint64_t key);

}  // namespace sbf

#endif  // SBF_CORE_ESTIMATORS_H_
