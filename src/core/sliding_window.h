#ifndef SBF_CORE_SLIDING_WINDOW_H_
#define SBF_CORE_SLIDING_WINDOW_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/frequency_filter.h"
#include "io/wire.h"
#include "util/status.h"

namespace sbf {

// Sliding-window maintenance over any FrequencyFilter (paper Section 2.2
// and the Figure 9 experiment): the window retains the most recent
// `window_size` item occurrences; as new data arrives, out-of-window items
// are explicitly deleted — the data-warehouse scenario where expiring data
// is available for deletion.
//
// Under Minimum Selection or Recurring Minimum the window estimates stay
// one-sided; under Minimal Increase deletions produce the false negatives
// the paper demonstrates.
class SlidingWindowFilter {
 public:
  // Takes ownership of `filter`; `window_size` is in item occurrences.
  SlidingWindowFilter(std::unique_ptr<FrequencyFilter> filter,
                      size_t window_size);

  // Pushes one occurrence of `key` into the window, evicting (deleting)
  // the oldest occurrences beyond the window size.
  void Push(uint64_t key);

  // Estimated multiplicity of `key` within the current window.
  [[nodiscard]] uint64_t Estimate(uint64_t key) const {
    return filter_->Estimate(key);
  }
  [[nodiscard]] bool Contains(uint64_t key, uint64_t threshold = 1) const {
    return filter_->Contains(key, threshold);
  }

  [[nodiscard]] size_t window_size() const noexcept { return window_size_; }
  [[nodiscard]] size_t current_fill() const noexcept {
    return window_.size();
  }
  [[nodiscard]] const FrequencyFilter& filter() const noexcept {
    return *filter_;
  }
  [[nodiscard]] std::string Name() const {
    return filter_->Name() + "-window";
  }

  // 'SBsw' wire frame (io/wire.h): {varint window size, varint fill, the
  // in-window keys oldest first, embedded inner-filter frame}. The inner
  // filter is restored polymorphically (io/filter_codec.h) — any frontend
  // round-trips — and the window contents are restored verbatim, not
  // re-inserted.
  [[nodiscard]] std::vector<uint8_t> Serialize() const;
  static StatusOr<SlidingWindowFilter> Deserialize(wire::ByteSpan bytes);

  // Audits the window bookkeeping (fill <= window size) and delegates to
  // the inner filter's validator.
  [[nodiscard]] Status CheckInvariants() const;

 private:
  std::unique_ptr<FrequencyFilter> filter_;
  size_t window_size_;
  std::deque<uint64_t> window_;
};

}  // namespace sbf

#endif  // SBF_CORE_SLIDING_WINDOW_H_
