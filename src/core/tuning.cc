#include "core/tuning.h"

#include <algorithm>
#include <cmath>

#include "core/analysis.h"
#include "util/check.h"

namespace sbf {
namespace {

constexpr double kLn2 = 0.6931471805599453;

}  // namespace

SbfSizing SizeForError(uint64_t n_distinct, double target_error) {
  SBF_CHECK_MSG(n_distinct >= 1, "need n >= 1");
  SBF_CHECK_MSG(target_error > 0.0 && target_error < 1.0,
                "target error must be in (0, 1)");
  // At the optimal point the error is (1/2)^k = 0.6185^{m/n}:
  //   m/n = ln(e) / ln(0.6185) = -ln(e) / (ln 2)^2.
  const double bits_per_key = -std::log(target_error) / (kLn2 * kLn2);
  SbfSizing sizing;
  sizing.m = static_cast<uint64_t>(
      std::ceil(bits_per_key * static_cast<double>(n_distinct)));
  sizing.m = std::max<uint64_t>(sizing.m, 1);
  sizing.k = std::max<uint32_t>(
      1, static_cast<uint32_t>(std::lround(kLn2 * bits_per_key)));
  sizing.gamma =
      static_cast<double>(n_distinct) * sizing.k / static_cast<double>(sizing.m);
  sizing.expected_error = BloomErrorRate(sizing.gamma, sizing.k);
  return sizing;
}

SbfSizing SizeForBudget(uint64_t n_distinct, uint64_t m) {
  SBF_CHECK_MSG(n_distinct >= 1 && m >= 1, "need n, m >= 1");
  SbfSizing best;
  best.m = m;
  best.expected_error = 1.0;
  // Evaluate the model around the analytic optimum and pick the best
  // integer k (the curve is flat near the optimum, so +-2 suffices; we
  // sweep a wider band for robustness at tiny m/n).
  const double optimal_k =
      kLn2 * static_cast<double>(m) / static_cast<double>(n_distinct);
  const uint32_t lo =
      static_cast<uint32_t>(std::max(1.0, std::floor(optimal_k) - 3));
  const uint32_t hi =
      static_cast<uint32_t>(std::max(2.0, std::ceil(optimal_k) + 3));
  for (uint32_t k = lo; k <= std::min(hi, 64u); ++k) {
    const double gamma =
        static_cast<double>(n_distinct) * k / static_cast<double>(m);
    const double error = BloomErrorRate(gamma, k);
    if (error < best.expected_error) {
      best.k = k;
      best.gamma = gamma;
      best.expected_error = error;
    }
  }
  return best;
}

SbfOptions RecommendOptions(uint64_t n_distinct, double target_error,
                            SbfPolicy policy) {
  const SbfSizing sizing = SizeForError(n_distinct, target_error);
  SbfOptions options;
  options.m = sizing.m;
  options.k = sizing.k;
  options.policy = policy;
  options.backing = CounterBacking::kCompact;
  return options;
}

double ExpectedErrorRate(const SbfOptions& options, uint64_t n_distinct) {
  const double gamma = static_cast<double>(n_distinct) * options.k /
                       static_cast<double>(options.m);
  return BloomErrorRate(gamma, options.k);
}

}  // namespace sbf
