#ifndef SBF_CORE_TUNING_H_
#define SBF_CORE_TUNING_H_

#include <cstdint>

#include "core/spectral_bloom_filter.h"

namespace sbf {

// Parameter sizing helpers built on the Section 2.1 error model:
//
//   E_b ~ (1 - e^{-nk/m})^k,  minimized at k = ln 2 * m / n,
//
// so adopters can say "n keys, 1% error" instead of picking m and k by
// hand.

struct SbfSizing {
  uint64_t m = 0;
  uint32_t k = 0;
  // The error rate the model predicts for this sizing.
  double expected_error = 0.0;
  double gamma = 0.0;  // nk/m
};

// Smallest (m, k) achieving `target_error` for n distinct keys at the
// optimal operating point (m = -n ln e / (ln 2)^2, k = ln 2 * m / n).
SbfSizing SizeForError(uint64_t n_distinct, double target_error);

// Best k (and resulting expected error) for a fixed memory budget of m
// counters and n distinct keys.
SbfSizing SizeForBudget(uint64_t n_distinct, uint64_t m);

// Ready-to-use options for `n` distinct keys at `target_error`, with the
// given policy; counters use the compact backing.
SbfOptions RecommendOptions(uint64_t n_distinct, double target_error,
                            SbfPolicy policy = SbfPolicy::kMinimumSelection);

// Expected estimate-error probability of an existing configuration after
// n distinct keys have been inserted.
double ExpectedErrorRate(const SbfOptions& options, uint64_t n_distinct);

}  // namespace sbf

#endif  // SBF_CORE_TUNING_H_
