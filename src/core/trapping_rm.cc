#include "core/trapping_rm.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/bits.h"
#include "util/check.h"
#include "util/audit.h"

namespace sbf {
namespace {

constexpr uint32_t kMaxK = 64;

SbfOptions MakeSbfOptions(const RecurringMinimumOptions& options, uint64_t m,
                          uint64_t seed) {
  SbfOptions sbf;
  sbf.m = m;
  sbf.k = options.k;
  sbf.policy = SbfPolicy::kMinimumSelection;
  sbf.backing = options.backing;
  sbf.seed = seed;
  sbf.hash_kind = options.hash_kind;
  return sbf;
}

bool SameSbfOptions(const SbfOptions& a, const SbfOptions& b) {
  return a.m == b.m && a.k == b.k && a.policy == b.policy &&
         a.backing == b.backing && a.seed == b.seed &&
         a.hash_kind == b.hash_kind;
}

}  // namespace

TrappingRmSbf::TrappingRmSbf(RecurringMinimumOptions options)
    : options_(options),
      primary_(MakeSbfOptions(options, options.primary_m, options.seed)),
      secondary_(MakeSbfOptions(options, options.secondary_m,
                                options.seed ^ 0x5EC07DA21ULL)),
      traps_(options.primary_m) {
  SBF_CHECK_MSG(options.primary_m >= 1 && options.secondary_m >= 1,
                "TRM needs primary_m and secondary_m >= 1");
  SBF_AUDIT_INVARIANTS(*this);
}

void TrappingRmSbf::FireTrapsHitBy(uint64_t key, const uint64_t* positions) {
  for (uint32_t i = 0; i < options_.k; ++i) {
    const uint64_t position = positions[i];
    if (!traps_.GetBit(position)) continue;
    const auto owner = trap_owner_.find(position);
    if (owner == trap_owner_.end() || owner->second == key) continue;

    // A different item stepped on the trap: its frequency contaminated the
    // value the trapped item transferred to the secondary SBF. Compensate
    // by reducing the trapped item's secondary counters by the stepping
    // item's estimated frequency — but never below the trapped item's
    // *current primary minimum*, a certain upper bound on its count: only
    // provable excess is removed, so the compensation can never create a
    // false negative (the paper's literal rule can over-correct when the
    // stepping item grew after the transfer).
    const uint64_t trapped_key = owner->second;
    const uint64_t stepping_estimate = primary_.Estimate(key);
    const uint64_t trapped_primary_min = primary_.Estimate(trapped_key);
    uint64_t secondary_positions[kMaxK];
    secondary_.hash().Positions(trapped_key, secondary_positions);
    uint64_t secondary_min = ~0ull;
    for (uint32_t j = 0; j < options_.k; ++j) {
      secondary_min = std::min(
          secondary_min, secondary_.counters().Get(secondary_positions[j]));
    }
    const uint64_t provable_excess = secondary_min > trapped_primary_min
                                         ? secondary_min - trapped_primary_min
                                         : 0;
    const uint64_t reduce = std::min(stepping_estimate, provable_excess);
    if (reduce > 0) {
      for (uint32_t j = 0; j < options_.k; ++j) {
        // Clamp per position: duplicate hash positions would otherwise be
        // decremented twice.
        const uint64_t current =
            secondary_.counters().Get(secondary_positions[j]);
        const uint64_t delta = std::min(current, reduce);
        if (delta > 0) {
          secondary_.mutable_counters().Decrement(secondary_positions[j],
                                                  delta);
        }
      }
    }
    traps_.SetBit(position, false);
    trap_owner_.erase(owner);
    ++traps_fired_;
  }
}

void TrappingRmSbf::MoveToSecondary(uint64_t key,
                                    const uint64_t* primary_positions) {
  const uint64_t primary_min = primary_.Estimate(key);
  uint64_t secondary_positions[kMaxK];
  secondary_.hash().Positions(key, secondary_positions);
  for (uint32_t i = 0; i < options_.k; ++i) {
    const uint64_t value = secondary_.counters().Get(secondary_positions[i]);
    if (value < primary_min) {
      secondary_.mutable_counters().Set(secondary_positions[i], primary_min);
    }
  }
  secondary_.set_total_items(secondary_.total_items() + primary_min);

  // Arm the trap on the single minimal primary counter.
  uint64_t min_value = ~0ull;
  uint64_t min_position = primary_positions[0];
  for (uint32_t i = 0; i < options_.k; ++i) {
    const uint64_t value = primary_.counters().Get(primary_positions[i]);
    if (value < min_value) {
      min_value = value;
      min_position = primary_positions[i];
    }
  }
  traps_.SetBit(min_position, true);
  trap_owner_[min_position] = key;
}

void TrappingRmSbf::Insert(uint64_t key, uint64_t count) {
  uint64_t positions[kMaxK];
  primary_.hash().Positions(key, positions);
  primary_.Insert(key, count);
  FireTrapsHitBy(key, positions);
  // Tracked items receive every insert in the secondary as well (see
  // RecurringMinimumSbf::Insert).
  if (secondary_.Estimate(key) > 0) {
    secondary_.Insert(key, count);
    return;
  }
  if (primary_.HasRecurringMinimum(key)) return;
  MoveToSecondary(key, positions);
}

void TrappingRmSbf::Remove(uint64_t key, uint64_t count) {
  primary_.Remove(key, count);
  // See RecurringMinimumSbf::Remove — the absorption check accounts for
  // repeated positions.
  uint64_t positions[kMaxK];
  secondary_.hash().Positions(key, positions);
  bool can_absorb = true;
  for (uint32_t i = 0; i < options_.k && can_absorb; ++i) {
    uint64_t multiplicity = 0;
    for (uint32_t j = 0; j < options_.k; ++j) {
      multiplicity += (positions[j] == positions[i]);
    }
    can_absorb =
        secondary_.counters().Get(positions[i]) >= count * multiplicity;
  }
  if (can_absorb) secondary_.Remove(key, count);
}

uint64_t TrappingRmSbf::Estimate(uint64_t key) const {
  const uint64_t primary_min = primary_.Estimate(key);
  if (primary_.HasRecurringMinimum(key)) return primary_min;
  const uint64_t secondary_estimate = secondary_.Estimate(key);
  if (secondary_estimate > 0) {
    return std::min(primary_min, secondary_estimate);
  }
  return primary_min;
}

size_t TrappingRmSbf::MemoryUsageBits() const {
  // Traps are one bit per primary counter; the owner table L costs two
  // 64-bit words per armed trap.
  return primary_.MemoryUsageBits() + secondary_.MemoryUsageBits() +
         traps_.capacity_bits() + trap_owner_.size() * 128;
}

std::vector<uint8_t> TrappingRmSbf::Serialize() const {
  SBF_AUDIT_INVARIANTS(*this);
  wire::Writer payload;
  payload.PutVarint(options_.primary_m);
  payload.PutVarint(options_.secondary_m);
  payload.PutVarint(options_.k);
  payload.PutU8(static_cast<uint8_t>(options_.backing));
  payload.PutU8(options_.hash_kind == HashFamily::Kind::kModuloMultiply ? 0
                                                                        : 1);
  payload.PutU64(options_.seed);
  payload.PutVarint(traps_fired_);
  payload.PutFrame(primary_.Serialize());
  payload.PutFrame(secondary_.Serialize());
  payload.PutWords(traps_.words(), traps_.size_words());
  // The owner table is an unordered map in memory; sorting by position
  // makes the wire bytes canonical (re-serialization is byte-identical).
  std::vector<std::pair<uint64_t, uint64_t>> owners(trap_owner_.begin(),
                                                    trap_owner_.end());
  std::sort(owners.begin(), owners.end());
  payload.PutVarint(owners.size());
  for (const auto& [position, item] : owners) {
    payload.PutVarint(position);
    payload.PutU64(item);
  }
  return wire::SealFrame(wire::kMagicTrappingRm, wire::kFormatVersion,
                         std::move(payload));
}

StatusOr<TrappingRmSbf> TrappingRmSbf::Deserialize(wire::ByteSpan bytes) {
  auto reader = wire::OpenFrame(bytes, wire::kMagicTrappingRm,
                                wire::kFormatVersion, "TRM filter");
  if (!reader.ok()) return reader.status();
  wire::Reader& in = reader.value();
  RecurringMinimumOptions options;
  options.primary_m = in.ReadVarint();
  options.secondary_m = in.ReadVarint();
  const uint64_t k = in.ReadVarint();
  const uint8_t backing = in.ReadU8();
  const uint8_t kind = in.ReadU8();
  options.seed = in.ReadU64();
  const uint64_t traps_fired = in.ReadVarint();
  if (!in.ok()) return in.status();
  if (options.primary_m < 1 || options.secondary_m < 1 || k < 1 ||
      k > kMaxK ||
      backing > static_cast<uint8_t>(CounterBacking::kSerialScan) ||
      kind > 1) {
    return Status::DataLoss("bad TRM filter header");
  }
  options.k = static_cast<uint32_t>(k);
  options.backing = static_cast<CounterBacking>(backing);
  options.hash_kind = kind == 0 ? HashFamily::Kind::kModuloMultiply
                                : HashFamily::Kind::kDoubleMix;

  const wire::ByteSpan primary_frame = in.ReadFrameSpan();
  const wire::ByteSpan secondary_frame = in.ReadFrameSpan();
  if (!in.ok()) return in.status();
  auto primary = SpectralBloomFilter::Deserialize(primary_frame);
  if (!primary.ok()) return primary.status();
  auto secondary = SpectralBloomFilter::Deserialize(secondary_frame);
  if (!secondary.ok()) return secondary.status();
  if (!SameSbfOptions(primary.value().options(),
                      MakeSbfOptions(options, options.primary_m,
                                     options.seed)) ||
      !SameSbfOptions(secondary.value().options(),
                      MakeSbfOptions(options, options.secondary_m,
                                     options.seed ^ 0x5EC07DA21ULL))) {
    return Status::DataLoss("TRM embedded SBFs inconsistent with header");
  }

  // primary_m is validated against the (self-bounded) embedded primary
  // frame above, so the trap allocations below are bounded by the message.
  const uint64_t trap_words = CeilDiv(options.primary_m, 64);
  if (trap_words * 8 > in.remaining()) {
    return Status::DataLoss("TRM trap bits truncated");
  }
  TrappingRmSbf filter(options);
  filter.primary_ = std::move(primary).value();
  filter.secondary_ = std::move(secondary).value();
  filter.traps_fired_ = traps_fired;
  in.ReadWords(filter.traps_.mutable_words(),
               static_cast<size_t>(trap_words));
  if (!in.ok()) return in.status();
  if (options.primary_m % 64 != 0 &&
      (filter.traps_.words()[trap_words - 1] >> (options.primary_m % 64)) !=
          0) {
    return Status::DataLoss("TRM trap bits have set padding");
  }

  const uint64_t owner_count = in.ReadVarint();
  if (!in.ok()) return in.status();
  uint64_t previous = 0;
  for (uint64_t i = 0; i < owner_count; ++i) {
    const uint64_t position = in.ReadVarint();
    const uint64_t item = in.ReadU64();
    if (!in.ok()) return in.status();
    // Strictly increasing positions keep the encoding canonical and make
    // duplicates impossible; every owner must sit on an armed trap.
    if (position >= options.primary_m || (i > 0 && position <= previous)) {
      return Status::DataLoss("TRM owner table corrupt");
    }
    if (!filter.traps_.GetBit(position)) {
      return Status::DataLoss("TRM owner entry without an armed trap");
    }
    filter.trap_owner_.emplace(position, item);
    previous = position;
  }
  // Armed traps and owner entries are created and cleared together, so a
  // valid message has exactly one owner per set trap bit.
  if (filter.traps_.PopCount() != owner_count) {
    return Status::DataLoss("TRM trap bits disagree with owner table");
  }
  Status status = in.ExpectEnd("TRM filter");
  if (!status.ok()) return status;
  SBF_AUDIT_INVARIANTS(filter);
  return filter;
}


Status TrappingRmSbf::CheckInvariants() const {
  if (options_.primary_m < 1 || options_.secondary_m < 1) {
    return Status::FailedPrecondition("TRM: primary_m/secondary_m < 1");
  }
  if (!SameSbfOptions(primary_.options(),
                      MakeSbfOptions(options_, options_.primary_m,
                                     options_.seed)) ||
      !SameSbfOptions(secondary_.options(),
                      MakeSbfOptions(options_, options_.secondary_m,
                                     options_.seed ^ 0x5EC07DA21ULL))) {
    return Status::FailedPrecondition(
        "TRM: embedded SBF options disagree with the TRM options");
  }
  if (traps_.size_bits() != options_.primary_m) {
    return Status::FailedPrecondition(
        "TRM: trap bit vector size disagrees with primary m");
  }
  // The owner table and the trap bits are two views of the same set: one
  // owner entry per armed trap, every entry on an armed in-range position.
  if (traps_.PopCount() != trap_owner_.size()) {
    return Status::FailedPrecondition(
        "TRM: armed trap count disagrees with the owner table size");
  }
  for (const auto& [position, owner] : trap_owner_) {
    (void)owner;
    if (position >= options_.primary_m) {
      return Status::FailedPrecondition(
          "TRM: trap owner entry on an out-of-range position");
    }
    if (!traps_.GetBit(position)) {
      return Status::FailedPrecondition(
          "TRM: trap owner entry on a disarmed trap");
    }
  }
  Status status = primary_.CheckInvariants();
  if (!status.ok()) return status;
  return secondary_.CheckInvariants();
}

}  // namespace sbf
