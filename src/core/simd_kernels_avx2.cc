#include "core/simd_kernels.h"

// AVX2 block kernels. This translation unit is compiled with -mavx2 (see
// src/CMakeLists.txt); its functions are only ever reached through the
// dispatch table after a runtime __builtin_cpu_supports("avx2") check, so
// executing them on a non-AVX2 CPU is impossible by construction.
//
// Techniques (DESIGN.md "SIMD block kernels"):
//   * the whole 64-byte block is loaded as two 256-bit vectors and lanes
//     are SELECTED, never gathered: the k in-block offsets collapse into a
//     lane bitmask (k scalar multiply-shifts, ~3 uops each), the bitmask
//     broadcasts against per-lane bit constants, and a compare + blend
//     keeps the selected lanes. On a single cache line this beats
//     vpgatherqq soundly — the gather's per-element latency buys nothing
//     when every element is already in one L1 line;
//   * unsigned 64-bit min/compare built from signed compares with the
//     sign bit flipped (AVX2 has no unsigned 64-bit compare);
//   * Minimum Selection multiplicities accumulated as one byte per lane
//     packed in a uint64 (lane's byte += 1), then widened back to vector
//     lanes (cvtepu8) for the multiply-add — duplicates among the k
//     probes get their exact multiple in one pass.

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstring>

namespace sbf::simd {
namespace {

constexpr int64_t kSignBit = static_cast<int64_t>(0x8000000000000000ull);

inline __m256i Mul64Lo(__m256i a, __m256i b) {
  // Low 64 bits of a*b per lane: lo(a)*lo(b) + ((lo(a)*hi(b) +
  // hi(a)*lo(b)) << 32). mul_epu32 multiplies the even 32-bit lanes.
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross = _mm256_add_epi64(
      _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
      _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

// a >u b per 64-bit lane (all-ones / all-zeros).
inline __m256i CmpGtU64(__m256i a, __m256i b) {
  const __m256i bias = _mm256_set1_epi64x(kSignBit);
  return _mm256_cmpgt_epi64(_mm256_xor_si256(a, bias),
                            _mm256_xor_si256(b, bias));
}

inline __m256i MinU64(__m256i a, __m256i b) {
  return _mm256_blendv_epi8(a, b, CmpGtU64(a, b));
}

inline __m256i MaxU64(__m256i a, __m256i b) {
  return _mm256_blendv_epi8(a, b, CmpGtU64(b, a));
}

inline __m128i MinU64x2(__m128i a, __m128i b) {
  const __m128i bias = _mm_set1_epi64x(kSignBit);
  const __m128i gt =
      _mm_cmpgt_epi64(_mm_xor_si128(a, bias), _mm_xor_si128(b, bias));
  return _mm_blendv_epi8(a, b, gt);
}

inline uint64_t HorizontalMinU64(__m256i v) {
  __m128i m = MinU64x2(_mm256_castsi256_si128(v),
                       _mm256_extracti128_si256(v, 1));
  m = MinU64x2(m, _mm_unpackhi_epi64(m, m));
  return static_cast<uint64_t>(_mm_cvtsi128_si64(m));
}

inline uint32_t HorizontalMinU32(__m128i v) {
  __m128i m = _mm_min_epu32(v, _mm_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 3, 2)));
  m = _mm_min_epu32(m, _mm_shuffle_epi32(m, _MM_SHUFFLE(2, 3, 0, 1)));
  return static_cast<uint32_t>(_mm_cvtsi128_si32(m));
}

inline uint32_t ScalarLane64(uint64_t alpha, uint64_t mixed) {
  return static_cast<uint32_t>((alpha * mixed) >> kLaneShift64);
}

inline uint32_t ScalarLane32(uint64_t alpha, uint64_t mixed) {
  return static_cast<uint32_t>((alpha * mixed) >> kLaneShift32);
}

inline uint32_t GetLane32(const uint64_t* block, uint32_t lane) {
  return static_cast<uint32_t>(block[lane >> 1] >> ((lane & 1u) * 32));
}

// Lane-selection bitmasks: bit `lane` of the scalar-accumulated mask,
// broadcast against per-lane bit constants. A selected lane compares
// all-ones.
inline uint32_t SelectionMask64(const uint64_t* alphas, uint32_t k,
                                uint64_t mixed) {
  uint32_t sel = 0;
  for (uint32_t j = 0; j < k; ++j) {
    sel |= 1u << ScalarLane64(alphas[j], mixed);
  }
  return sel;
}

inline uint32_t SelectionMask32(const uint64_t* alphas, uint32_t k,
                                uint64_t mixed) {
  uint32_t sel = 0;
  for (uint32_t j = 0; j < k; ++j) {
    sel |= 1u << ScalarLane32(alphas[j], mixed);
  }
  return sel;
}

struct Selected64 {
  __m256i lo;  // lanes 0..3, all-ones where selected
  __m256i hi;  // lanes 4..7
};

inline Selected64 ExpandSelection64(uint32_t sel) {
  const __m256i vsel = _mm256_set1_epi64x(static_cast<int64_t>(sel));
  const __m256i bits_lo = _mm256_set_epi64x(8, 4, 2, 1);
  const __m256i bits_hi = _mm256_set_epi64x(128, 64, 32, 16);
  return {_mm256_cmpeq_epi64(_mm256_and_si256(vsel, bits_lo), bits_lo),
          _mm256_cmpeq_epi64(_mm256_and_si256(vsel, bits_hi), bits_hi)};
}

struct Selected32 {
  __m256i lo;  // lanes 0..7
  __m256i hi;  // lanes 8..15
};

inline Selected32 ExpandSelection32(uint32_t sel) {
  const __m256i vsel = _mm256_set1_epi32(static_cast<int32_t>(sel));
  const __m256i bits_lo = _mm256_set_epi32(128, 64, 32, 16, 8, 4, 2, 1);
  const __m256i bits_hi = _mm256_slli_epi32(bits_lo, 8);
  return {_mm256_cmpeq_epi32(_mm256_and_si256(vsel, bits_lo), bits_lo),
          _mm256_cmpeq_epi32(_mm256_and_si256(vsel, bits_hi), bits_hi)};
}

// always_inline: Min64Body/Min32Body are the shared flesh of both the
// per-block kernel (address-taken for the dispatch table, which stops GCC
// inlining it into loops) and the batch kernels, whose whole point is
// keeping this body — and its vector constants — inside the loop body.
[[gnu::always_inline]] inline uint64_t Min64Body(const uint64_t* block,
                                                 const uint64_t* alphas,
                                                 uint32_t k, uint64_t mixed) {
  const Selected64 s = ExpandSelection64(SelectionMask64(alphas, k, mixed));
  const __m256i ones = _mm256_set1_epi64x(-1);
  const __m256i b_lo =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block));
  const __m256i b_hi =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block + 4));
  // Unselected lanes become all-ones, neutral for the min reduction.
  const __m256i c_lo = _mm256_blendv_epi8(ones, b_lo, s.lo);
  const __m256i c_hi = _mm256_blendv_epi8(ones, b_hi, s.hi);
  return HorizontalMinU64(MinU64(c_lo, c_hi));
}

[[gnu::always_inline]] inline uint64_t Min32Body(const uint64_t* block,
                                                 const uint64_t* alphas,
                                                 uint32_t k, uint64_t mixed) {
  const Selected32 s = ExpandSelection32(SelectionMask32(alphas, k, mixed));
  const __m256i ones = _mm256_set1_epi32(-1);
  const __m256i b0 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block));
  const __m256i b1 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block + 4));
  const __m256i c0 = _mm256_blendv_epi8(ones, b0, s.lo);
  const __m256i c1 = _mm256_blendv_epi8(ones, b1, s.hi);
  const __m256i mn = _mm256_min_epu32(c0, c1);
  const __m128i mn128 = _mm_min_epu32(_mm256_castsi256_si128(mn),
                                      _mm256_extracti128_si256(mn, 1));
  return HorizontalMinU32(mn128);
}

uint64_t Avx2BlockedMin64(const uint64_t* block, const uint64_t* alphas,
                          uint32_t k, uint64_t mixed) {
  return Min64Body(block, alphas, k, mixed);
}

uint64_t Avx2BlockedMin32(const uint64_t* block, const uint64_t* alphas,
                          uint32_t k, uint64_t mixed) {
  return Min32Body(block, alphas, k, mixed);
}

// Per-lane multiplicities for the 8-lane geometry, packed one byte per
// lane into a uint64 (k <= 64 keeps every byte below 65 — no carries).
inline uint64_t Multiplicities64(const uint64_t* alphas, uint32_t k,
                                 uint64_t mixed) {
  uint64_t packed = 0;
  for (uint32_t j = 0; j < k; ++j) {
    packed += uint64_t{1} << (ScalarLane64(alphas[j], mixed) * 8);
  }
  return packed;
}

int Avx2BlockedAdd64(uint64_t* block, const uint64_t* alphas, uint32_t k,
                     uint64_t mixed, uint64_t count) {
  if (count > kSimdSafeCount64) return 0;
  const uint64_t packed = Multiplicities64(alphas, k, mixed);
  const __m128i mbytes = _mm_cvtsi64_si128(static_cast<int64_t>(packed));
  const __m256i vcount = _mm256_set1_epi64x(static_cast<int64_t>(count));
  const __m256i d_lo = Mul64Lo(_mm256_cvtepu8_epi64(mbytes), vcount);
  const __m256i d_hi =
      Mul64Lo(_mm256_cvtepu8_epi64(_mm_srli_si128(mbytes, 4)), vcount);
  const __m256i b_lo =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block));
  const __m256i b_hi =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block + 4));
  const __m256i s_lo = _mm256_add_epi64(b_lo, d_lo);
  const __m256i s_hi = _mm256_add_epi64(b_hi, d_hi);
  // A wrapped lane means the scalar path would clamp: reject untouched.
  const __m256i wrapped =
      _mm256_or_si256(CmpGtU64(b_lo, s_lo), CmpGtU64(b_hi, s_hi));
  if (!_mm256_testz_si256(wrapped, wrapped)) return 0;
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(block), s_lo);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(block + 4), s_hi);
  return 1;
}

int Avx2BlockedLift64(uint64_t* block, const uint64_t* alphas, uint32_t k,
                      uint64_t mixed, uint64_t count) {
  // One selection mask drives both halves of Minimal Increase: the min
  // reduction and the masked lift to max(value, min + count).
  const Selected64 s = ExpandSelection64(SelectionMask64(alphas, k, mixed));
  const __m256i ones = _mm256_set1_epi64x(-1);
  const __m256i b_lo =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block));
  const __m256i b_hi =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block + 4));
  const __m256i c_lo = _mm256_blendv_epi8(ones, b_lo, s.lo);
  const __m256i c_hi = _mm256_blendv_epi8(ones, b_hi, s.hi);
  const uint64_t min_value = HorizontalMinU64(MinU64(c_lo, c_hi));
  if (count > ~uint64_t{0} - min_value) return 0;
  const __m256i target =
      _mm256_set1_epi64x(static_cast<int64_t>(min_value + count));
  // Selected lanes rise to max(value, target); unselected keep value.
  const __m256i n_lo = _mm256_blendv_epi8(b_lo, MaxU64(b_lo, target), s.lo);
  const __m256i n_hi = _mm256_blendv_epi8(b_hi, MaxU64(b_hi, target), s.hi);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(block), n_lo);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(block + 4), n_hi);
  return 1;
}

// Per-lane multiplicities for the 16-lane geometry: two packed uint64s
// (lanes 0..7 and 8..15), one byte per lane.
struct Mult32 {
  uint64_t lo;
  uint64_t hi;
};

inline Mult32 Multiplicities32(const uint64_t* alphas, uint32_t k,
                               uint64_t mixed) {
  Mult32 m{0, 0};
  for (uint32_t j = 0; j < k; ++j) {
    const uint32_t lane = ScalarLane32(alphas[j], mixed);
    // Branchless split: lanes land 50/50 in either half, so an if here
    // mispredicts nearly every probe.
    const uint64_t inc = uint64_t{1} << ((lane & 7u) * 8);
    const uint64_t in_hi = 0 - static_cast<uint64_t>(lane >> 3);
    m.lo += inc & ~in_hi;
    m.hi += inc & in_hi;
  }
  return m;
}

int Avx2BlockedAdd32(uint64_t* block, const uint64_t* alphas, uint32_t k,
                     uint64_t mixed, uint64_t count) {
  if (count > kSimdSafeCount32) return 0;
  const Mult32 m = Multiplicities32(alphas, k, mixed);
  const __m128i mbytes = _mm_set_epi64x(static_cast<int64_t>(m.hi),
                                        static_cast<int64_t>(m.lo));
  const __m256i vcount = _mm256_set1_epi32(static_cast<int32_t>(count));
  // mult <= 64 and count < 2^26, so the 32-bit product cannot wrap.
  const __m256i d0 = _mm256_mullo_epi32(_mm256_cvtepu8_epi32(mbytes), vcount);
  const __m256i d1 = _mm256_mullo_epi32(
      _mm256_cvtepu8_epi32(_mm_srli_si128(mbytes, 8)), vcount);
  const __m256i b0 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block));
  const __m256i b1 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block + 4));
  const __m256i s0 = _mm256_add_epi32(b0, d0);
  const __m256i s1 = _mm256_add_epi32(b1, d1);
  // No-wrap per lane: unsigned sum >= addend. (Lanes load in index order:
  // the backing packs counter 2i in the low half of word i, which
  // little-endian memory presents as ascending 32-bit lanes.)
  const __m256i ok0 = _mm256_cmpeq_epi32(_mm256_max_epu32(s0, b0), s0);
  const __m256i ok1 = _mm256_cmpeq_epi32(_mm256_max_epu32(s1, b1), s1);
  if (_mm256_movemask_epi8(_mm256_and_si256(ok0, ok1)) != -1) return 0;
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(block), s0);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(block + 4), s1);
  return 1;
}

int Avx2BlockedLift32(uint64_t* block, const uint64_t* alphas, uint32_t k,
                      uint64_t mixed, uint64_t count) {
  const Selected32 s = ExpandSelection32(SelectionMask32(alphas, k, mixed));
  const __m256i ones = _mm256_set1_epi32(-1);
  const __m256i b0 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block));
  const __m256i b1 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block + 4));
  const __m256i c0 = _mm256_blendv_epi8(ones, b0, s.lo);
  const __m256i c1 = _mm256_blendv_epi8(ones, b1, s.hi);
  const __m256i mn = _mm256_min_epu32(c0, c1);
  const __m128i mn128 = _mm_min_epu32(_mm256_castsi256_si128(mn),
                                      _mm256_extracti128_si256(mn, 1));
  const uint64_t min_value = HorizontalMinU32(mn128);
  if (count > ~uint64_t{0} - min_value) return 0;
  const uint64_t target = min_value + count;
  if (target > 0xFFFFFFFFull) return 0;
  const __m256i vtarget = _mm256_set1_epi32(static_cast<int32_t>(target));
  const __m256i n0 = _mm256_blendv_epi8(b0, _mm256_max_epu32(b0, vtarget), s.lo);
  const __m256i n1 = _mm256_blendv_epi8(b1, _mm256_max_epu32(b1, vtarget), s.hi);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(block), n0);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(block + 4), n1);
  return 1;
}

// Batch mins: the whole chunk loops inside this TU, so the selection-bit
// constants and the all-ones vector stay in registers across keys and
// there is no per-key indirect call.
// Batch mins. Measured on AVX2 hardware, the vector min bodies above LOSE
// to k direct lane loads + cmov here: with k ~ 5 probes against one
// L1-resident cache line, mask expansion + blend + a horizontal reduce
// (or a 4-key transposed reduce — also tried) costs more than the loads
// it saves, while the lane-index multiply-shift chain is identical either
// way. So the throughput path is the scalar-load body, specialized per k
// so the probe loop fully unrolls; the vector bodies stay on the
// per-block entry points where MI insert reuses their selection masks.
template <uint32_t K>
void BatchMin64K(const uint64_t* words, const uint64_t* bases,
                 const uint64_t* mixes, size_t n, const uint64_t* alphas,
                 uint64_t* out) {
  for (size_t i = 0; i < n; ++i) {
    const uint64_t* block = words + bases[i];
    const uint64_t mixed = mixes[i];
    uint64_t min_value = block[ScalarLane64(alphas[0], mixed)];
    for (uint32_t j = 1; j < K; ++j) {
      const uint64_t v = block[ScalarLane64(alphas[j], mixed)];
      min_value = v < min_value ? v : min_value;
    }
    out[i] = min_value;
  }
}

// x86 is little-endian, so 32-bit lane i of the packed block is simply
// the 4-byte load at byte offset 4*i — no word extract needed. memcpy
// keeps it aliasing-clean; GCC emits one mov.
[[gnu::always_inline]] inline uint32_t Load32(const uint64_t* block,
                                              uint32_t lane) {
  uint32_t v;
  std::memcpy(&v, reinterpret_cast<const char*>(block) + 4 * lane, 4);
  return v;
}

template <uint32_t K>
void BatchMin32K(const uint64_t* words, const uint64_t* bases,
                 const uint64_t* mixes, size_t n, const uint64_t* alphas,
                 uint64_t* out) {
  for (size_t i = 0; i < n; ++i) {
    const uint64_t* block = words + bases[i];
    const uint64_t mixed = mixes[i];
    uint32_t min_value = Load32(block, ScalarLane32(alphas[0], mixed));
    for (uint32_t j = 1; j < K; ++j) {
      const uint32_t v = Load32(block, ScalarLane32(alphas[j], mixed));
      min_value = v < min_value ? v : min_value;
    }
    out[i] = min_value;
  }
}

void Avx2BatchMin64(const uint64_t* words, const uint64_t* bases,
                    const uint64_t* mixes, size_t n,
                    const uint64_t* alphas, uint32_t k, uint64_t* out) {
  switch (k) {
    case 3: return BatchMin64K<3>(words, bases, mixes, n, alphas, out);
    case 4: return BatchMin64K<4>(words, bases, mixes, n, alphas, out);
    case 5: return BatchMin64K<5>(words, bases, mixes, n, alphas, out);
    case 6: return BatchMin64K<6>(words, bases, mixes, n, alphas, out);
    case 7: return BatchMin64K<7>(words, bases, mixes, n, alphas, out);
    default:
      for (size_t i = 0; i < n; ++i) {
        out[i] = Min64Body(words + bases[i], alphas, k, mixes[i]);
      }
  }
}

void Avx2BatchMin32(const uint64_t* words, const uint64_t* bases,
                    const uint64_t* mixes, size_t n,
                    const uint64_t* alphas, uint32_t k, uint64_t* out) {
  switch (k) {
    case 3: return BatchMin32K<3>(words, bases, mixes, n, alphas, out);
    case 4: return BatchMin32K<4>(words, bases, mixes, n, alphas, out);
    case 5: return BatchMin32K<5>(words, bases, mixes, n, alphas, out);
    case 6: return BatchMin32K<6>(words, bases, mixes, n, alphas, out);
    case 7: return BatchMin32K<7>(words, bases, mixes, n, alphas, out);
    default:
      for (size_t i = 0; i < n; ++i) {
        out[i] = Min32Body(words + bases[i], alphas, k, mixes[i]);
      }
  }
}

uint64_t Avx2GatherMin64(const uint64_t* words, const uint64_t* pos,
                         uint32_t k) {
  __m256i best = _mm256_set1_epi64x(-1);
  uint32_t j = 0;
  for (; j + 4 <= k; j += 4) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pos + j));
    best = MinU64(best, _mm256_i64gather_epi64(
                            reinterpret_cast<const long long*>(words), idx, 8));
  }
  uint64_t min_value = HorizontalMinU64(best);
  for (; j < k; ++j) {
    const uint64_t v = words[pos[j]];
    min_value = v < min_value ? v : min_value;
  }
  return min_value;
}

uint64_t Avx2GatherMin32(const uint64_t* words, const uint64_t* pos,
                         uint32_t k) {
  __m128i best = _mm_set1_epi32(-1);
  uint32_t j = 0;
  for (; j + 4 <= k; j += 4) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pos + j));
    best = _mm_min_epu32(best, _mm256_i64gather_epi32(
                                   reinterpret_cast<const int*>(words), idx, 4));
  }
  uint32_t min_value = HorizontalMinU32(best);
  for (; j < k; ++j) {
    const uint64_t p = pos[j];
    const uint32_t v =
        static_cast<uint32_t>(words[p >> 1] >> ((p & 1u) * 32));
    min_value = v < min_value ? v : min_value;
  }
  return min_value;
}

constexpr BlockKernels kAvx2Table = {
    Avx2BlockedMin64, Avx2BlockedMin32,
    Avx2BlockedAdd64, Avx2BlockedAdd32,
    Avx2BlockedLift64, Avx2BlockedLift32,
    Avx2GatherMin64, Avx2GatherMin32,
    Avx2BatchMin64, Avx2BatchMin32,
    Isa::kAvx2, /*enabled=*/true,
};

}  // namespace

namespace internal {
const BlockKernels* Avx2KernelTable() noexcept { return &kAvx2Table; }
}  // namespace internal

}  // namespace sbf::simd

#else  // !defined(__AVX2__)

namespace sbf::simd::internal {
const BlockKernels* Avx2KernelTable() noexcept { return nullptr; }
}  // namespace sbf::simd::internal

#endif
