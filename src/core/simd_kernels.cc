#include "core/simd_kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace sbf::simd {
namespace {

// TSan does not instrument vector loads/stores: letting an intrinsic
// kernel run under it would hide exactly the races the tsan CI legs
// exist to catch, so sanitized builds pin the scalar reference.
#if defined(__SANITIZE_THREAD__)
constexpr bool kTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kTsan = true;
#else
constexpr bool kTsan = false;
#endif
#else
constexpr bool kTsan = false;
#endif

const BlockKernels* TableFor(Isa isa) noexcept {
  switch (isa) {
    case Isa::kDisabled:
      return internal::DisabledKernelTable();
    case Isa::kGeneric:
      return internal::GenericKernelTable();
    case Isa::kSse2:
      return internal::Sse2KernelTable();
    case Isa::kAvx2:
      return internal::Avx2KernelTable();
  }
  return nullptr;
}

bool CpuSupports(Isa isa) noexcept {
  if (isa == Isa::kDisabled || isa == Isa::kGeneric) return true;
  if (kTsan) return false;
  if (TableFor(isa) == nullptr) return false;  // compiled out of this build
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  switch (isa) {
    case Isa::kSse2:
      return __builtin_cpu_supports("sse2") != 0;
    case Isa::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    default:
      return false;
  }
#else
  return false;
#endif
}

// Detection order for the initial resolve: programmatic ForceIsa() calls
// come later and always win; here the env override is consulted first,
// then the best supported tier.
const BlockKernels* Resolve() noexcept {
  const char* force = std::getenv("SBF_FORCE_ISA");
  if (force != nullptr) {
    Isa wanted = Isa::kGeneric;
    bool recognized = true;
    if (std::strcmp(force, "off") == 0 ||
        std::strcmp(force, "disabled") == 0) {
      wanted = Isa::kDisabled;
    } else if (std::strcmp(force, "generic") == 0) {
      wanted = Isa::kGeneric;
    } else if (std::strcmp(force, "sse2") == 0) {
      wanted = Isa::kSse2;
    } else if (std::strcmp(force, "avx2") == 0) {
      wanted = Isa::kAvx2;
    } else {
      recognized = false;  // unknown value: fall through to detection
    }
    if (recognized) {
      return TableFor(CpuSupports(wanted) ? wanted : BestSupportedIsa());
    }
  }
  return TableFor(BestSupportedIsa());
}

std::atomic<const BlockKernels*> g_active{nullptr};

}  // namespace

Isa BestSupportedIsa() noexcept {
  if (CpuSupports(Isa::kAvx2)) return Isa::kAvx2;
  if (CpuSupports(Isa::kSse2)) return Isa::kSse2;
  return Isa::kGeneric;
}

bool IsaSupported(Isa isa) noexcept { return CpuSupports(isa); }

const BlockKernels& Active() noexcept {
  const BlockKernels* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    table = Resolve();
    // Another thread may resolve concurrently; both arrive at the same
    // table, so either store winning is fine.
    g_active.store(table, std::memory_order_release);
  }
  return *table;
}

void ForceIsa(Isa isa) noexcept {
  const Isa effective = CpuSupports(isa) ? isa : BestSupportedIsa();
  g_active.store(TableFor(effective), std::memory_order_release);
}

const char* IsaName(Isa isa) noexcept {
  switch (isa) {
    case Isa::kDisabled:
      return "disabled";
    case Isa::kGeneric:
      return "generic";
    case Isa::kSse2:
      return "sse2";
    case Isa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

}  // namespace sbf::simd
