#include "core/simd_kernels.h"

// Portable scalar reference kernels — the semantic ground truth every
// vector variant is differentially tested against. Each function here IS
// the contract: identical lane selection (one multiply-shift round per
// probe), identical min/add/lift results, and identical accept/reject
// predicates (simd_kernels.h, saturation contract).

namespace sbf::simd {
namespace {

constexpr uint32_t kMaxProbes = 64;  // HashFamily::kMaxK

inline uint32_t Lane64(uint64_t alpha, uint64_t mixed) {
  // (alpha * mixed) * 8 >> 64 == high 3 bits of the 64-bit fraction.
  return static_cast<uint32_t>((alpha * mixed) >> kLaneShift64);
}

inline uint32_t Lane32(uint64_t alpha, uint64_t mixed) {
  return static_cast<uint32_t>((alpha * mixed) >> kLaneShift32);
}

// 32-bit counter lanes packed two per backing word, low half first
// (matches FixedWidthCounterVector's LSB-first bit layout).
inline uint32_t GetLane32(const uint64_t* block, uint32_t lane) {
  return static_cast<uint32_t>(block[lane >> 1] >> ((lane & 1u) * 32));
}

inline void SetLane32(uint64_t* block, uint32_t lane, uint32_t value) {
  const uint32_t shift = (lane & 1u) * 32;
  block[lane >> 1] =
      (block[lane >> 1] & ~(uint64_t{0xFFFFFFFF} << shift)) |
      (uint64_t{value} << shift);
}

// always_inline bodies shared by the per-block kernels (address-taken for
// the dispatch table, which makes GCC keep them out-of-line) and the
// batch kernels, where the call-per-key overhead would dominate.
[[gnu::always_inline]] inline uint64_t Min64Body(const uint64_t* block,
                                                 const uint64_t* alphas,
                                                 uint32_t k, uint64_t mixed) {
  uint64_t min_value = ~uint64_t{0};
  for (uint32_t j = 0; j < k; ++j) {
    const uint64_t v = block[Lane64(alphas[j], mixed)];
    min_value = v < min_value ? v : min_value;
  }
  return min_value;
}

[[gnu::always_inline]] inline uint64_t Min32Body(const uint64_t* block,
                                                 const uint64_t* alphas,
                                                 uint32_t k, uint64_t mixed) {
  uint32_t min_value = ~uint32_t{0};
  for (uint32_t j = 0; j < k; ++j) {
    const uint32_t v = GetLane32(block, Lane32(alphas[j], mixed));
    min_value = v < min_value ? v : min_value;
  }
  return min_value;
}

uint64_t GenericBlockedMin64(const uint64_t* block, const uint64_t* alphas,
                             uint32_t k, uint64_t mixed) {
  return Min64Body(block, alphas, k, mixed);
}

uint64_t GenericBlockedMin32(const uint64_t* block, const uint64_t* alphas,
                             uint32_t k, uint64_t mixed) {
  return Min32Body(block, alphas, k, mixed);
}

int GenericBlockedAdd64(uint64_t* block, const uint64_t* alphas, uint32_t k,
                        uint64_t mixed, uint64_t count) {
  if (count > kSimdSafeCount64) return 0;
  uint8_t mult[kBlockLanes64] = {};
  for (uint32_t j = 0; j < k; ++j) ++mult[Lane64(alphas[j], mixed)];
  uint64_t sum[kBlockLanes64];
  for (uint32_t lane = 0; lane < kBlockLanes64; ++lane) {
    // mult <= 64 and count <= 2^57, so the product itself cannot wrap;
    // only the final add can, and that is exactly the clamp case.
    sum[lane] = block[lane] + mult[lane] * count;
    if (sum[lane] < block[lane]) return 0;
  }
  for (uint32_t lane = 0; lane < kBlockLanes64; ++lane) block[lane] = sum[lane];
  return 1;
}

int GenericBlockedAdd32(uint64_t* block, const uint64_t* alphas, uint32_t k,
                        uint64_t mixed, uint64_t count) {
  if (count > kSimdSafeCount32) return 0;
  uint8_t mult[kBlockLanes32] = {};
  for (uint32_t j = 0; j < k; ++j) ++mult[Lane32(alphas[j], mixed)];
  uint32_t sum[kBlockLanes32];
  for (uint32_t lane = 0; lane < kBlockLanes32; ++lane) {
    const uint64_t wide =
        uint64_t{GetLane32(block, lane)} + mult[lane] * count;
    if (wide > 0xFFFFFFFFull) return 0;
    sum[lane] = static_cast<uint32_t>(wide);
  }
  for (uint32_t lane = 0; lane < kBlockLanes32; ++lane) {
    SetLane32(block, lane, sum[lane]);
  }
  return 1;
}

int GenericBlockedLift64(uint64_t* block, const uint64_t* alphas, uint32_t k,
                         uint64_t mixed, uint64_t count) {
  uint32_t lanes[kMaxProbes];
  uint64_t min_value = ~uint64_t{0};
  for (uint32_t j = 0; j < k; ++j) {
    lanes[j] = Lane64(alphas[j], mixed);
    const uint64_t v = block[lanes[j]];
    min_value = v < min_value ? v : min_value;
  }
  // A wrapping lift target saturates (and tallies) in the scalar path.
  if (count > ~uint64_t{0} - min_value) return 0;
  const uint64_t target = min_value + count;
  for (uint32_t j = 0; j < k; ++j) {
    if (block[lanes[j]] < target) block[lanes[j]] = target;
  }
  return 1;
}

int GenericBlockedLift32(uint64_t* block, const uint64_t* alphas, uint32_t k,
                         uint64_t mixed, uint64_t count) {
  uint32_t lanes[kMaxProbes];
  uint64_t min_value = ~uint64_t{0};
  for (uint32_t j = 0; j < k; ++j) {
    lanes[j] = Lane32(alphas[j], mixed);
    const uint64_t v = GetLane32(block, lanes[j]);
    min_value = v < min_value ? v : min_value;
  }
  if (count > ~uint64_t{0} - min_value) return 0;
  const uint64_t target = min_value + count;
  // A target past the 32-bit max would clamp (and tally) per lifted lane.
  if (target > 0xFFFFFFFFull) return 0;
  const uint32_t target32 = static_cast<uint32_t>(target);
  for (uint32_t j = 0; j < k; ++j) {
    if (GetLane32(block, lanes[j]) < target32) {
      SetLane32(block, lanes[j], target32);
    }
  }
  return 1;
}

void GenericBatchMin64(const uint64_t* words, const uint64_t* bases,
                       const uint64_t* mixes, size_t n,
                       const uint64_t* alphas, uint32_t k, uint64_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = Min64Body(words + bases[i], alphas, k, mixes[i]);
  }
}

void GenericBatchMin32(const uint64_t* words, const uint64_t* bases,
                       const uint64_t* mixes, size_t n,
                       const uint64_t* alphas, uint32_t k, uint64_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = Min32Body(words + bases[i], alphas, k, mixes[i]);
  }
}

uint64_t GenericGatherMin64(const uint64_t* words, const uint64_t* pos,
                            uint32_t k) {
  uint64_t min_value = ~uint64_t{0};
  for (uint32_t j = 0; j < k; ++j) {
    const uint64_t v = words[pos[j]];
    min_value = v < min_value ? v : min_value;
  }
  return min_value;
}

uint64_t GenericGatherMin32(const uint64_t* words, const uint64_t* pos,
                            uint32_t k) {
  uint32_t min_value = ~uint32_t{0};
  for (uint32_t j = 0; j < k; ++j) {
    const uint64_t p = pos[j];
    const uint32_t v =
        static_cast<uint32_t>(words[p >> 1] >> ((p & 1u) * 32));
    min_value = v < min_value ? v : min_value;
  }
  return min_value;
}

constexpr BlockKernels kGenericTable = {
    GenericBlockedMin64, GenericBlockedMin32,
    GenericBlockedAdd64, GenericBlockedAdd32,
    GenericBlockedLift64, GenericBlockedLift32,
    GenericGatherMin64, GenericGatherMin32,
    GenericBatchMin64, GenericBatchMin32,
    Isa::kGeneric, /*enabled=*/true,
};

constexpr BlockKernels kDisabledTable = {
    GenericBlockedMin64, GenericBlockedMin32,
    GenericBlockedAdd64, GenericBlockedAdd32,
    GenericBlockedLift64, GenericBlockedLift32,
    GenericGatherMin64, GenericGatherMin32,
    GenericBatchMin64, GenericBatchMin32,
    Isa::kDisabled, /*enabled=*/false,
};

}  // namespace

namespace internal {

const BlockKernels* GenericKernelTable() noexcept { return &kGenericTable; }
const BlockKernels* DisabledKernelTable() noexcept { return &kDisabledTable; }

}  // namespace internal
}  // namespace sbf::simd
