#ifndef SBF_CORE_SBF_ALGEBRA_H_
#define SBF_CORE_SBF_ALGEBRA_H_

#include <cstdint>
#include <vector>

#include "core/spectral_bloom_filter.h"
#include "util/status.h"

namespace sbf {

// Multi-set algebra over SBFs (paper Section 2.2, "Distributed processing"
// and "Queries over joins of sets"). All operations require the operands
// to have identical parameters and hash functions.

// dst <- dst + src (pointwise counter addition): the SBF of the multiset
// union. This is how a relation partitioned across sites is merged.
Status UnionInto(SpectralBloomFilter* dst, const SpectralBloomFilter& src);

// Pointwise counter product: an SBF representing the join of the two
// multisets on the filtered attribute. For a key x present in both sides
// with frequencies f and g, the estimate of the product filter upper-
// bounds f*g — the number of join result tuples contributed by x.
StatusOr<SpectralBloomFilter> Multiply(const SpectralBloomFilter& a,
                                       const SpectralBloomFilter& b);

// Keys from `candidates` whose estimated multiplicity is >= threshold.
// One-sided: contains every key whose true multiplicity passes the
// threshold plus a small fraction of false positives (Section 5.2's
// ad-hoc iceberg primitive).
std::vector<uint64_t> FilterByThreshold(const SpectralBloomFilter& filter,
                                        const std::vector<uint64_t>& candidates,
                                        uint64_t threshold);

}  // namespace sbf

#endif  // SBF_CORE_SBF_ALGEBRA_H_
