#include "core/blocked_sbf.h"

#include <algorithm>

#include "core/batch_kernels.h"
#include "core/simd_kernels.h"
#include "sai/compact_counter_vector.h"
#include "sai/fixed_counter_vector.h"
#include "sai/serial_scan_counter_vector.h"
#include "util/bits.h"
#include "util/check.h"
#include "util/fault_injection.h"
#include "util/prefetch.h"
#include "util/random.h"
#include "util/audit.h"

namespace sbf {
namespace {

constexpr uint32_t kMaxK = 64;

uint64_t BlockAlpha(uint64_t seed) {
  uint64_t sm = seed ^ 0xB10CEDull;
  return SplitMix64(sm);
}

// A 64-byte block is 8 backing words in both SIMD geometries (8 x 64-bit
// or 16 x 32-bit counters), so the ring's block base is a word index.
constexpr uint64_t kSimdWordsPerBlock = 8;

// Exact scalar fallbacks for keys the SIMD kernels reject (a saturation
// clamp could fire — simd_kernels.h contract). They re-derive the k
// absolute positions from the cached alphas, in probe order, and run the
// same clamping ops the scalar paths run.
template <uint32_t kShift, uint64_t kCountersPerWord>
void ScalarMsFallback(FixedWidthCounterVector& cv, const uint64_t* alphas,
                      uint32_t k, uint64_t word_base, uint64_t mixed,
                      uint64_t count) {
  const uint64_t base = word_base * kCountersPerWord;
  for (uint32_t j = 0; j < k; ++j) {
    cv.Increment(base + ((alphas[j] * mixed) >> kShift), count);
  }
}

template <uint32_t kShift, uint64_t kCountersPerWord>
void ScalarMiFallback(FixedWidthCounterVector& cv, const uint64_t* alphas,
                      uint32_t k, uint64_t word_base, uint64_t mixed,
                      uint64_t count) {
  uint64_t pos[HashFamily::kMaxK];
  const uint64_t base = word_base * kCountersPerWord;
  for (uint32_t j = 0; j < k; ++j) {
    pos[j] = base + ((alphas[j] * mixed) >> kShift);
  }
  MinimalIncreaseProbe(cv, pos, k, count);
}

}  // namespace

Status ValidateBlockedSbfOptions(const BlockedSbfOptions& options) {
  if (options.m < 1) {
    return Status::InvalidArgument("blocked SBF needs m >= 1");
  }
  if (options.block_size < 1 || options.block_size > options.m) {
    return Status::InvalidArgument("block size must be in [1, m]");
  }
  if (options.m % options.block_size != 0) {
    return Status::InvalidArgument("m must be a multiple of block_size");
  }
  if (options.k < 1 || options.k > kMaxK) {
    return Status::InvalidArgument("need 1 <= k <= 64");
  }
  return Status::Ok();
}

BlockedSbf::BlockedSbf(BlockedSbfOptions options)
    : options_(options),
      num_blocks_(CeilDiv(options.m, std::max<uint64_t>(options.block_size, 1))),
      block_hash_(BlockAlpha(options.seed), num_blocks_),
      within_block_(options.k, std::max<uint64_t>(options.block_size, 1),
                    options.seed ^ 0x17735Bull, options.hash_kind),
      counters_(MakeCounterVector(options.backing, options.m)) {
  const Status status = ValidateBlockedSbfOptions(options_);
  SBF_CHECK_MSG(status.ok(), status.message().c_str());
  ResolveSimdShape();
  SBF_AUDIT_INVARIANTS(*this);
}

void BlockedSbf::ResolveSimdShape() {
  simd_shape_ = SimdShape::kNone;
  if (options_.hash_kind != HashFamily::Kind::kModuloMultiply) return;
  if (options_.backing == CounterBacking::kFixed64 &&
      options_.block_size == simd::kBlockLanes64) {
    simd_shape_ = SimdShape::kBlock64x8;
  } else if (options_.backing == CounterBacking::kFixed32 &&
             options_.block_size == simd::kBlockLanes32) {
    simd_shape_ = SimdShape::kBlock32x16;
  }
  if (simd_shape_ != SimdShape::kNone) {
    within_block_.FillModuloMultiplyAlphas(simd_alphas_);
  }
}

void BlockedSbf::Positions(uint64_t key, uint64_t* out) const {
  const uint64_t base = BlockOf(key) * options_.block_size;
  within_block_.Positions(key, out);
  for (uint32_t i = 0; i < options_.k; ++i) out[i] += base;
}

void BlockedSbf::Insert(uint64_t key, uint64_t count) {
  uint64_t positions[kMaxK];
  Positions(key, positions);
  if (options_.policy == SbfPolicy::kMinimumSelection) {
    for (uint32_t i = 0; i < options_.k; ++i) {
      counters_->Increment(positions[i], count);
    }
  } else {
    MinimalIncreaseProbe(*counters_, positions, options_.k, count);
  }
}

void BlockedSbf::Remove(uint64_t key, uint64_t count) {
  uint64_t positions[kMaxK];
  Positions(key, positions);
  if (options_.policy == SbfPolicy::kMinimumSelection) {
    for (uint32_t i = 0; i < options_.k; ++i) {
      counters_->Decrement(positions[i], count);
    }
  } else {
    // Under Minimal Increase counters may hold less than the number of
    // deletions of the keys mapped onto them; clamping at zero is what
    // makes deletions unsound for MI (same caveat as SpectralBloomFilter).
    for (uint32_t i = 0; i < options_.k; ++i) {
      const uint64_t v = counters_->Get(positions[i]);
      counters_->Set(positions[i], v >= count ? v - count : 0);
    }
  }
}

uint64_t BlockedSbf::Estimate(uint64_t key) const {
  uint64_t positions[kMaxK];
  Positions(key, positions);
  uint64_t min_value = counters_->Get(positions[0]);
  for (uint32_t i = 1; i < options_.k; ++i) {
    min_value = std::min(min_value, counters_->Get(positions[i]));
    if (min_value == 0) break;
  }
  return min_value;
}

namespace {

// Stage-1 prefetch for the blocked layout: every probe of a key lands in
// its block, so instead of one hint per position it suffices to touch the
// block's cache line(s) once. For fixed-width backings with block_size
// sized to one or two lines this is the whole block.
template <typename CV>
struct PrefetchBlock {
  uint32_t k;
  void operator()(const CV& cv, const uint64_t* pos) const {
    cv.PrefetchCounter(pos[0]);
  }
};

template <>
struct PrefetchBlock<FixedWidthCounterVector> {
  uint32_t k;
  uint64_t block_size;
  void operator()(const FixedWidthCounterVector& cv,
                  const uint64_t* pos) const {
    // Positions are block-relative offsets plus the block base (a multiple
    // of block_size), so the base — and with it the block's first backing
    // word — is recovered from any one position. One line covers the whole
    // block in the cache-line-sized configurations; hint a second line for
    // larger blocks.
    const uint64_t base = pos[0] / block_size * block_size;
    const uint64_t* first = cv.words() + (base * cv.width_bits() >> 6);
    SBF_PREFETCH(first);
    if (block_size * cv.width_bits() > 512) SBF_PREFETCH(first + 8);
  }
};

}  // namespace

void BlockedSbf::EstimateBatch(const uint64_t* keys, size_t n,
                               uint64_t* out) const {
  const uint32_t k = options_.k;
  const simd::BlockKernels& kn = simd::Active();
  if (kn.enabled && simd_shape_ != SimdShape::kNone) {
    // Two passes per chunk: a hash pass derives every key's {block word
    // base, mixed key} and prefetches its cache line, then ONE batch
    // kernel call reduces the whole chunk — the per-key indirect call and
    // the kernel's vector-constant setup stay out of the hot loop, and
    // the hash pass doubles as a chunk-deep prefetch window.
    const auto& cv = static_cast<const FixedWidthCounterVector&>(*counters_);
    const uint64_t* words = cv.words();
    constexpr size_t kChunk = 64;
    uint64_t bases[kChunk];
    uint64_t mixes[kChunk];
    const auto batch_min = simd_shape_ == SimdShape::kBlock64x8
                               ? kn.batch_min64
                               : kn.batch_min32;
    for (size_t at = 0; at < n; at += kChunk) {
      const size_t len = n - at < kChunk ? n - at : kChunk;
      for (size_t i = 0; i < len; ++i) {
        const uint64_t key = keys[at + i];
        bases[i] = BlockOf(key) * kSimdWordsPerBlock;
        mixes[i] = within_block_.MixedKey(key);
        SBF_PREFETCH(words + bases[i]);
      }
      batch_min(words, bases, mixes, len, simd_alphas_, k, out + at);
    }
    return;
  }
  // Positions functor: one multiply-shift round routes the key to its
  // block, the within-block family (one more mix + k multiply-shifts)
  // yields the k in-block offsets.
  const auto pos_of = [this, k](uint64_t key, uint64_t* pos) {
    const uint64_t base = BlockOf(key) * options_.block_size;
    within_block_.Positions(key, pos);
    for (uint32_t j = 0; j < k; ++j) pos[j] += base;
  };
  // Branch-free min for fixed-width backings, early-exit min for the
  // scan-based ones (their Get is the dominant cost; see batch_kernels.h).
  const auto probe_free = [k, out](const auto& cv, const uint64_t* pos,
                                   size_t i) {
    out[i] = BranchFreeMin(cv, pos, k);
  };
  const auto probe_exit = [k, out](const auto& cv, const uint64_t* pos,
                                   size_t i) {
    out[i] = EarlyExitMin(cv, pos, k);
  };
  switch (options_.backing) {
    case CounterBacking::kFixed64:
    case CounterBacking::kFixed32: {
      const auto& cv = static_cast<const FixedWidthCounterVector&>(*counters_);
      BatchPipeline(cv, keys, n, pos_of,
                    PrefetchBlock<FixedWidthCounterVector>{
                        k, options_.block_size},
                    probe_free);
      return;
    }
    case CounterBacking::kCompact:
      BatchPipeline(static_cast<const CompactCounterVector&>(*counters_),
                    keys, n, pos_of, PrefetchBlock<CompactCounterVector>{k},
                    probe_exit);
      return;
    case CounterBacking::kSerialScan:
      BatchPipeline(static_cast<const SerialScanCounterVector&>(*counters_),
                    keys, n, pos_of,
                    PrefetchBlock<SerialScanCounterVector>{k}, probe_exit);
      return;
  }
}

void BlockedSbf::InsertBatch(const uint64_t* keys, size_t n, uint64_t count) {
  const uint32_t k = options_.k;
  const simd::BlockKernels& kn = simd::Active();
  if (kn.enabled && simd_shape_ != SimdShape::kNone) {
    auto& cv = static_cast<FixedWidthCounterVector&>(*counters_);
    uint64_t* words = cv.mutable_words();
    const uint64_t* alphas = simd_alphas_;
    const auto pos_of = [this](uint64_t key, uint64_t* pos) {
      pos[0] = BlockOf(key) * kSimdWordsPerBlock;
      pos[1] = within_block_.MixedKey(key);
    };
    const auto prefetch = [words](const FixedWidthCounterVector&,
                                  const uint64_t* pos) {
      SBF_PREFETCH(words + pos[0]);
    };
    const bool ms = options_.policy == SbfPolicy::kMinimumSelection;
    // The kernels return 0 — having written nothing — whenever a
    // saturation clamp could fire; those keys rerun the exact scalar
    // clamping path (simd_kernels.h saturation contract).
    if (simd_shape_ == SimdShape::kBlock64x8) {
      const auto probe = [&kn, words, alphas, k, count, ms, &cv](
                             FixedWidthCounterVector&, const uint64_t* pos,
                             size_t) {
        const int ok =
            ms ? kn.blocked_add64(words + pos[0], alphas, k, pos[1], count)
               : kn.blocked_lift64(words + pos[0], alphas, k, pos[1], count);
        if (!ok) {
          if (ms) {
            ScalarMsFallback<simd::kLaneShift64, 1>(cv, alphas, k, pos[0],
                                                    pos[1], count);
          } else {
            ScalarMiFallback<simd::kLaneShift64, 1>(cv, alphas, k, pos[0],
                                                    pos[1], count);
          }
        }
      };
      BatchPipeline(cv, keys, n, pos_of, prefetch, probe);
    } else {
      const auto probe = [&kn, words, alphas, k, count, ms, &cv](
                             FixedWidthCounterVector&, const uint64_t* pos,
                             size_t) {
        const int ok =
            ms ? kn.blocked_add32(words + pos[0], alphas, k, pos[1], count)
               : kn.blocked_lift32(words + pos[0], alphas, k, pos[1], count);
        if (!ok) {
          if (ms) {
            ScalarMsFallback<simd::kLaneShift32, 2>(cv, alphas, k, pos[0],
                                                    pos[1], count);
          } else {
            ScalarMiFallback<simd::kLaneShift32, 2>(cv, alphas, k, pos[0],
                                                    pos[1], count);
          }
        }
      };
      BatchPipeline(cv, keys, n, pos_of, prefetch, probe);
    }
    return;
  }
  const auto pos_of = [this, k](uint64_t key, uint64_t* pos) {
    const uint64_t base = BlockOf(key) * options_.block_size;
    within_block_.Positions(key, pos);
    for (uint32_t j = 0; j < k; ++j) pos[j] += base;
  };
  const auto probe_ms = [k, count](auto& cv, const uint64_t* pos, size_t) {
    for (uint32_t j = 0; j < k; ++j) cv.Increment(pos[j], count);
  };
  const auto probe_mi = [k, count](auto& cv, const uint64_t* pos, size_t) {
    MinimalIncreaseProbe(cv, pos, k, count);
  };
  const bool ms = options_.policy == SbfPolicy::kMinimumSelection;
  const auto run = [&](auto& cv, auto prefetch) {
    if (ms) {
      BatchPipeline(cv, keys, n, pos_of, prefetch, probe_ms);
    } else {
      BatchPipeline(cv, keys, n, pos_of, prefetch, probe_mi);
    }
  };
  switch (options_.backing) {
    case CounterBacking::kFixed64:
    case CounterBacking::kFixed32:
      run(static_cast<FixedWidthCounterVector&>(*counters_),
          PrefetchBlock<FixedWidthCounterVector>{k, options_.block_size});
      return;
    case CounterBacking::kCompact:
      run(static_cast<CompactCounterVector&>(*counters_),
          PrefetchBlock<CompactCounterVector>{k});
      return;
    case CounterBacking::kSerialScan:
      run(static_cast<SerialScanCounterVector&>(*counters_),
          PrefetchBlock<SerialScanCounterVector>{k});
      return;
  }
}

FilterHealth BlockedSbf::Health() const {
  FilterHealth health;
  health.counters = options_.m;
  const OccupancyCounts occupancy = counters_->ScanOccupancy();
  health.nonzero_counters = occupancy.nonzero;
  health.saturated_counters = occupancy.saturated;
  health.saturation_clamps = counters_->saturation().saturation_clamps;
  health.underflow_clamps = counters_->saturation().underflow_clamps;
  FinalizeHealth(options_.k, HealthThresholds{}, &health);
  return health;
}

Status BlockedSbf::ExpandTo(uint64_t new_m) {
  if (new_m == options_.m) return Status::Ok();
  if (new_m < options_.m || new_m % options_.m != 0) {
    return Status::InvalidArgument(
        "ExpandTo needs new_m to be a multiple of the current m");
  }
  if (fault::ShouldFailAllocation()) {
    return Status::ResourceExhausted("blocked SBF expansion allocation failed");
  }
  const uint64_t c = new_m / options_.m;
  const uint64_t bs = options_.block_size;
  std::unique_ptr<CounterVector> next =
      MakeCounterVector(options_.backing, new_m);
  // Old block b owns new blocks [b*c, (b+1)*c): replicate the whole block
  // (within-block offsets are unchanged).
  for (uint64_t b = 0; b < num_blocks_; ++b) {
    for (uint64_t off = 0; off < bs; ++off) {
      const uint64_t value = counters_->Get(b * bs + off);
      if (value == 0) continue;
      for (uint64_t rep = 0; rep < c; ++rep) {
        next->Set((b * c + rep) * bs + off, value);
      }
    }
  }
  next->MergeSaturationStats(counters_->saturation());
  num_blocks_ *= c;
  block_hash_ = ModuloMultiplyHash(BlockAlpha(options_.seed), num_blocks_);
  counters_ = std::move(next);
  options_.m = new_m;
  SBF_AUDIT_INVARIANTS(*this);
  return Status::Ok();
}

uint64_t BlockedSbf::BlockLoad(uint64_t b) const {
  SBF_DCHECK(b < num_blocks_);
  uint64_t load = 0;
  const uint64_t base = b * options_.block_size;
  constexpr uint64_t kChunk = 256;
  uint64_t values[kChunk];
  for (uint64_t off = 0; off < options_.block_size; off += kChunk) {
    const uint64_t len = std::min(kChunk, options_.block_size - off);
    counters_->DecodeBlock(base + off, len, values);
    for (uint64_t j = 0; j < len; ++j) load += values[j];
  }
  return load;
}

std::vector<uint8_t> BlockedSbf::Serialize() const {
  SBF_AUDIT_INVARIANTS(*this);
  // Minimum Selection keeps the legacy 'SBbk' frame byte-for-byte (every
  // blob written before the policy option existed was MS); Minimal
  // Increase uses 'SBb2', which adds the policy byte.
  const bool v2 = options_.policy == SbfPolicy::kMinimalIncrease;
  wire::Writer payload;
  payload.PutVarint(options_.m);
  payload.PutVarint(options_.block_size);
  payload.PutVarint(options_.k);
  payload.PutU8(static_cast<uint8_t>(options_.backing));
  payload.PutU8(options_.hash_kind == HashFamily::Kind::kModuloMultiply ? 0
                                                                        : 1);
  if (v2) {
    payload.PutU8(
        options_.policy == SbfPolicy::kMinimumSelection ? 0 : 1);
  }
  payload.PutU64(options_.seed);
  payload.PutFrame(counters_->Serialize());
  return wire::SealFrame(v2 ? wire::kMagicBlockedSbf2 : wire::kMagicBlockedSbf,
                         wire::kFormatVersion, std::move(payload));
}

StatusOr<BlockedSbf> BlockedSbf::Deserialize(wire::ByteSpan bytes) {
  const bool v2 = wire::PeekMagic(bytes) == wire::kMagicBlockedSbf2;
  auto reader = wire::OpenFrame(
      bytes, v2 ? wire::kMagicBlockedSbf2 : wire::kMagicBlockedSbf,
      wire::kFormatVersion, "blocked SBF");
  if (!reader.ok()) return reader.status();
  wire::Reader& in = reader.value();
  BlockedSbfOptions options;
  options.m = in.ReadVarint();
  options.block_size = in.ReadVarint();
  const uint64_t k = in.ReadVarint();
  const uint8_t backing = in.ReadU8();
  const uint8_t kind = in.ReadU8();
  const uint8_t policy = v2 ? in.ReadU8() : 0;
  options.seed = in.ReadU64();
  if (!in.ok()) return in.status();
  if (k > kMaxK ||
      backing > static_cast<uint8_t>(CounterBacking::kSerialScan) ||
      kind > 1 || policy > 1) {
    return Status::DataLoss("bad blocked SBF header");
  }
  options.k = static_cast<uint32_t>(k);
  options.policy = policy == 0 ? SbfPolicy::kMinimumSelection
                               : SbfPolicy::kMinimalIncrease;
  options.backing = static_cast<CounterBacking>(backing);
  options.hash_kind = kind == 0 ? HashFamily::Kind::kModuloMultiply
                                : HashFamily::Kind::kDoubleMix;
  const Status valid = ValidateBlockedSbfOptions(options);
  if (!valid.ok()) return Status::DataLoss(valid.message());

  const wire::ByteSpan counter_frame = in.ReadFrameSpan();
  if (!in.ok()) return in.status();
  Status status = in.ExpectEnd("blocked SBF");
  if (!status.ok()) return status;
  // Deserialize the counter frame before building the filter: the frame
  // bounds its own allocations, and size/backing mismatches must never
  // reach the devirtualized batch kernels.
  auto cv = DeserializeCounterVector(counter_frame);
  if (!cv.ok()) return cv.status();
  if (cv.value()->size() != options.m) {
    return Status::DataLoss("blocked SBF counter vector size disagrees with m");
  }
  if (!MatchesBacking(*cv.value(), options.backing)) {
    return Status::DataLoss("blocked SBF counter vector backing mismatch");
  }

  BlockedSbf filter(options);
  filter.counters_ = std::move(cv).value();
  SBF_AUDIT_INVARIANTS(filter);
  return filter;
}


Status BlockedSbf::CheckInvariants() const {
  Status status = ValidateBlockedSbfOptions(options_);
  if (!status.ok()) return status;
  if (num_blocks_ != options_.m / options_.block_size) {
    return Status::FailedPrecondition(
        "blocked SBF: num_blocks disagrees with m / block_size");
  }
  if (block_hash_.range() != num_blocks_) {
    return Status::FailedPrecondition(
        "blocked SBF: block router range disagrees with num_blocks");
  }
  if (within_block_.k() != options_.k ||
      within_block_.m() != options_.block_size) {
    return Status::FailedPrecondition(
        "blocked SBF: within-block hash family disagrees with options");
  }
  if (counters_ == nullptr || counters_->size() != options_.m) {
    return Status::FailedPrecondition(
        "blocked SBF: counter vector missing or size disagrees with m");
  }
  if (!MatchesBacking(*counters_, options_.backing)) {
    return Status::FailedPrecondition(
        "blocked SBF: counter vector backing disagrees with options");
  }
  return counters_->CheckInvariants();
}

}  // namespace sbf
