#include "core/blocked_sbf.h"

#include <algorithm>

#include "util/bits.h"
#include "util/check.h"
#include "util/random.h"

namespace sbf {
namespace {

constexpr uint32_t kMaxK = 64;

uint64_t BlockAlpha(uint64_t seed) {
  uint64_t sm = seed ^ 0xB10CEDull;
  return SplitMix64(sm);
}

}  // namespace

BlockedSbf::BlockedSbf(BlockedSbfOptions options)
    : options_(options),
      num_blocks_(CeilDiv(options.m, std::max<uint64_t>(options.block_size, 1))),
      block_hash_(BlockAlpha(options.seed), num_blocks_),
      within_block_(options.k, std::max<uint64_t>(options.block_size, 1),
                    options.seed ^ 0x17735Bull, options.hash_kind),
      counters_(MakeCounterVector(options.backing, options.m)) {
  SBF_CHECK_MSG(options_.m >= 1, "blocked SBF needs m >= 1");
  SBF_CHECK_MSG(options_.block_size >= 1 && options_.block_size <= options_.m,
                "block size must be in [1, m]");
  SBF_CHECK_MSG(options_.m % options_.block_size == 0,
                "m must be a multiple of block_size");
  SBF_CHECK_MSG(options_.k >= 1 && options_.k <= kMaxK, "need 1 <= k <= 64");
}

void BlockedSbf::Positions(uint64_t key, uint64_t* out) const {
  const uint64_t base = BlockOf(key) * options_.block_size;
  within_block_.Positions(key, out);
  for (uint32_t i = 0; i < options_.k; ++i) out[i] += base;
}

void BlockedSbf::Insert(uint64_t key, uint64_t count) {
  uint64_t positions[kMaxK];
  Positions(key, positions);
  for (uint32_t i = 0; i < options_.k; ++i) {
    counters_->Increment(positions[i], count);
  }
}

void BlockedSbf::Remove(uint64_t key, uint64_t count) {
  uint64_t positions[kMaxK];
  Positions(key, positions);
  for (uint32_t i = 0; i < options_.k; ++i) {
    counters_->Decrement(positions[i], count);
  }
}

uint64_t BlockedSbf::Estimate(uint64_t key) const {
  uint64_t positions[kMaxK];
  Positions(key, positions);
  uint64_t min_value = counters_->Get(positions[0]);
  for (uint32_t i = 1; i < options_.k; ++i) {
    min_value = std::min(min_value, counters_->Get(positions[i]));
    if (min_value == 0) break;
  }
  return min_value;
}

uint64_t BlockedSbf::BlockLoad(uint64_t b) const {
  SBF_DCHECK(b < num_blocks_);
  uint64_t load = 0;
  const uint64_t base = b * options_.block_size;
  for (uint64_t i = 0; i < options_.block_size; ++i) {
    load += counters_->Get(base + i);
  }
  return load;
}

}  // namespace sbf
