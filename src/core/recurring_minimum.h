#ifndef SBF_CORE_RECURRING_MINIMUM_H_
#define SBF_CORE_RECURRING_MINIMUM_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/bloom_filter.h"
#include "core/frequency_filter.h"
#include "core/spectral_bloom_filter.h"

namespace sbf {

// Configuration of the Recurring Minimum filter. The paper's experiments
// use a secondary SBF of half the primary size (Table 1) and, for fair
// method comparisons, charge both SBFs against one total budget
// (Section 6.1: "the RM algorithm used m as an overall storage size").
struct RecurringMinimumOptions {
  uint64_t primary_m = 0;    // counters in the primary SBF (required)
  uint64_t secondary_m = 0;  // counters in the secondary SBF (required)
  uint32_t k = 5;
  CounterBacking backing = CounterBacking::kCompact;
  uint64_t seed = 0;
  HashFamily::Kind hash_kind = HashFamily::Kind::kModuloMultiply;
  // Enables the marker Bloom filter B_f refinement (Section 3.3): a plain
  // Bloom filter of primary_m bits recording the items that were moved to
  // the secondary SBF, consulted first on insert and lookup.
  bool use_marker_filter = false;
};

// The Recurring Minimum algorithm (paper Section 3.3).
//
// Observation: an item suffering a Bloom error rarely has a *recurring*
// minimum among its k counters. Items with a single minimum — the
// suspected-error minority (~20% of items at gamma = 0.7) — are tracked in
// a smaller secondary SBF with far better parameters, shrinking the
// overall error by an order of magnitude (Table 1: 18x at gamma = 0.7)
// while, unlike Minimal Increase, still supporting deletions and updates.
class RecurringMinimumSbf final : public FrequencyFilter {
 public:
  explicit RecurringMinimumSbf(RecurringMinimumOptions options);

  // Splits a total budget of `total_m` counters between primary and
  // secondary (the fair-comparison configuration of Section 6.1, where
  // both SBFs charge against one total). The 4:1 split empirically
  // minimizes the overall error of this implementation.
  static RecurringMinimumSbf WithTotalBudget(uint64_t total_m, uint32_t k,
                                             uint64_t seed = 0);

  // --- FrequencyFilter ---------------------------------------------------

  // Insert: bump the primary; if the item now has a single minimum, track
  // it in the secondary SBF (first move initializes the secondary counters
  // up to the primary minimum).
  void Insert(uint64_t key, uint64_t count = 1) override;

  // Delete: reverse of insert — decrease primary; if the item has a single
  // minimum (or is marked in B_f), decrease the secondary too unless one
  // of its counters there is already 0.
  void Remove(uint64_t key, uint64_t count = 1) override;

  // Lookup: recurring minimum in the primary -> primary minimum;
  // otherwise the secondary's estimate if it knows the item (> 0), else
  // the primary minimum.
  [[nodiscard]] uint64_t Estimate(uint64_t key) const override;

  [[nodiscard]] size_t MemoryUsageBits() const override;
  [[nodiscard]] std::string Name() const override { return "RM"; }

  // --- introspection -----------------------------------------------------

  [[nodiscard]] const SpectralBloomFilter& primary() const noexcept {
    return primary_;
  }
  [[nodiscard]] const SpectralBloomFilter& secondary() const noexcept {
    return secondary_;
  }
  [[nodiscard]] const std::optional<BloomFilter>& marker() const noexcept {
    return marker_;
  }
  // Items currently routed through the secondary SBF (move events).
  [[nodiscard]] size_t moved_to_secondary() const noexcept {
    return moved_to_secondary_;
  }

  // Live health: the primary SBF's snapshot (every lookup probes it, so
  // its occupancy governs the Bloom error), with the secondary's clamp
  // tallies folded in and its verdict escalated if worse.
  [[nodiscard]] FilterHealth Health() const override;

  // Combined clamp-event tallies of both SBFs.
  [[nodiscard]] SaturationStats saturation() const;

  // Expands both SBFs in place (each new size a positive multiple of the
  // current one; see SpectralBloomFilter::ExpandTo). Counter values — and
  // with them minima and the recurring-minimum predicate — are preserved
  // exactly, so every estimate survives the expansion bit-for-bit. The
  // marker Bloom filter grows with the primary (its frame is pinned to
  // primary_m on the wire). The expansion is transactional: copies are
  // expanded first and committed together, so on any failure — bad
  // arguments, allocation — a clean Status returns and the filter is
  // untouched.
  Status ExpandTo(uint64_t new_primary_m, uint64_t new_secondary_m);

  // 'SBrm' wire frame (io/wire.h): {options, varint moved count, embedded
  // primary and secondary SBF frames, embedded marker BF frame when the
  // marker is enabled}. The embedded frames must agree with the options
  // (derived seeds included) or deserialization rejects the message.
  [[nodiscard]] std::vector<uint8_t> Serialize() const override;
  static StatusOr<RecurringMinimumSbf> Deserialize(wire::ByteSpan bytes);

  // Audits the two-SBF split: options coherence (sizes, derived seeds),
  // the marker filter present iff enabled and sized to primary_m, and
  // moved_to_secondary() == 0 implying an all-zero secondary. Both
  // embedded SBFs' own validators run as part of the sweep.
  Status CheckInvariants() const override;

 private:
  bool MarkedInSecondary(uint64_t key) const;

  RecurringMinimumOptions options_;
  SpectralBloomFilter primary_;
  SpectralBloomFilter secondary_;
  std::optional<BloomFilter> marker_;
  size_t moved_to_secondary_ = 0;
};

}  // namespace sbf

#endif  // SBF_CORE_RECURRING_MINIMUM_H_
