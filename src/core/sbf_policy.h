#ifndef SBF_CORE_SBF_POLICY_H_
#define SBF_CORE_SBF_POLICY_H_

namespace sbf {

// Insert/lookup heuristic of a spectral filter (shared by
// SpectralBloomFilter and BlockedSbf).
enum class SbfPolicy {
  // Minimum Selection (paper Section 2.2): every insert increments all k
  // counters; the estimate is the minimal counter m_x. Error probability
  // equals the classic Bloom error; supports deletions and updates.
  kMinimumSelection,
  // Minimal Increase (Section 3.2): an insert only raises counters that
  // equal the current minimum — the fewest increments that preserve
  // m_x >= f_x. Substantially more accurate (error cut by ~k for uniform
  // data, Claim 5), but deletions introduce false negatives.
  kMinimalIncrease,
};

}  // namespace sbf

#endif  // SBF_CORE_SBF_POLICY_H_
