#ifndef SBF_CORE_COUNTING_BLOOM_FILTER_H_
#define SBF_CORE_COUNTING_BLOOM_FILTER_H_

#include <cstdint>
#include <string>

#include "core/frequency_filter.h"
#include "hashing/hash_family.h"
#include "sai/fixed_counter_vector.h"

namespace sbf {

// The counting Bloom filter of Fan, Cao, Almeida & Broder [FCAB98]
// (paper Section 1.1.3): each bit of the classic filter is replaced by a
// small fixed-width counter (4 bits in the original, enough for sets by a
// probabilistic urn argument) so that deletions become possible.
//
// This is the baseline the SBF improves on: with 4-bit saturating counters
// it supports set membership with deletions, but it cannot represent the
// multiplicities of a multi-set — "items may easily appear hundreds and
// thousands of times" — because counters clamp at 15 and saturated
// counters become sticky (never decremented) to preserve one-sided error.
class CountingBloomFilter final : public FrequencyFilter {
 public:
  CountingBloomFilter(uint64_t m, uint32_t k, uint32_t counter_bits = 4,
                      uint64_t seed = 0,
                      HashFamily::Kind kind = HashFamily::Kind::kModuloMultiply);

  void Insert(uint64_t key, uint64_t count = 1) override;
  void Remove(uint64_t key, uint64_t count = 1) override;

  // Minimum of the key's counters — an upper bound on its multiplicity
  // *clamped to the counter range*, which is why this structure is a
  // membership filter, not a spectral one.
  [[nodiscard]] uint64_t Estimate(uint64_t key) const override;

  // Batched ops via the hash-ahead + prefetch pipeline; the counter vector
  // is a concrete member, so the probe loop is fully inlined. Equivalent
  // to a loop of the scalar ops, including saturation behaviour.
  void InsertBatch(const uint64_t* keys, size_t n,
                   uint64_t count = 1) override;
  void EstimateBatch(const uint64_t* keys, size_t n,
                     uint64_t* out) const override;
  using FrequencyFilter::EstimateBatch;
  using FrequencyFilter::InsertBatch;

  [[nodiscard]] size_t MemoryUsageBits() const override {
    return counters_.MemoryUsageBits();
  }
  [[nodiscard]] std::string Name() const override { return "CBF"; }

  [[nodiscard]] uint64_t m() const noexcept { return m_; }
  [[nodiscard]] uint32_t k() const noexcept { return hash_.k(); }
  [[nodiscard]] const HashFamily& hash() const noexcept { return hash_; }
  [[nodiscard]] uint64_t max_count() const noexcept {
    return counters_.max_value();
  }
  // Counters pinned at the maximum (candidates for overestimation).
  [[nodiscard]] size_t SaturatedCount() const noexcept {
    return counters_.SaturatedCount();
  }

  // Live health snapshot. With 4-bit sticky counters saturation is the
  // designed overflow policy, so heavy use is expected to report
  // kSaturated — the signal to move to a wider width or a real SBF.
  [[nodiscard]] FilterHealth Health() const override;

  // Clamp-event tallies of the counter vector.
  [[nodiscard]] const SaturationStats& saturation() const noexcept {
    return counters_.saturation();
  }

  // 'SBcb' wire frame (io/wire.h): {varint m, varint k, u8 kind, u64 seed,
  // varint counter width, embedded fixed-width counter frame}.
  [[nodiscard]] std::vector<uint8_t> Serialize() const override;

  // Audits m vs. the counter vector and the hash family's range.
  Status CheckInvariants() const override;
  static StatusOr<CountingBloomFilter> Deserialize(wire::ByteSpan bytes);

 private:
  uint64_t m_;
  HashFamily hash_;
  FixedWidthCounterVector counters_;
};

}  // namespace sbf

#endif  // SBF_CORE_COUNTING_BLOOM_FILTER_H_
