#ifndef SBF_CORE_BLOCKED_SBF_H_
#define SBF_CORE_BLOCKED_SBF_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/frequency_filter.h"
#include "core/sbf_policy.h"
#include "hashing/hash_family.h"
#include "sai/counter_vector.h"

namespace sbf {

// Configuration of a BlockedSbf.
struct BlockedSbfOptions {
  uint64_t m = 0;            // total counters (required)
  uint64_t block_size = 0;   // counters per block (required)
  uint32_t k = 5;            // probes within the chosen block
  CounterBacking backing = CounterBacking::kCompact;
  uint64_t seed = 0;
  HashFamily::Kind hash_kind = HashFamily::Kind::kModuloMultiply;
  // Minimum Selection or Minimal Increase, with the same semantics (and
  // the same deletion caveat under MI) as SpectralBloomFilter.
  SbfPolicy policy = SbfPolicy::kMinimumSelection;
};

// Validates a BlockedSbfOptions: m >= 1, block_size in [1, m] dividing m,
// and 1 <= k <= 64. The constructor enforces this fatally; recoverable
// callers (deserializers, config loaders) can check first.
Status ValidateBlockedSbfOptions(const BlockedSbfOptions& options);

// The external-memory SBF of Section 2.2 ("External memory SBF"),
// following the multi-level hashing scheme of Manber & Wu [MW94]: a first
// hash function maps each key to one block of `block_size` counters, and
// the k filter hashes probe *within that block only*. Every operation
// therefore touches a single block — one disk page / cache line region —
// instead of up to k random locations.
//
// The cost is a mild accuracy loss from segmenting the hash domain
// (per-block load varies around the mean), which [MW94]'s analysis — and
// the bench_ablation_blocked experiment — shows to be negligible once
// blocks are reasonably large.
class BlockedSbf final : public FrequencyFilter {
 public:
  explicit BlockedSbf(BlockedSbfOptions options);

  void Insert(uint64_t key, uint64_t count = 1) override;
  void Remove(uint64_t key, uint64_t count = 1) override;
  [[nodiscard]] uint64_t Estimate(uint64_t key) const override;
  [[nodiscard]] size_t MemoryUsageBits() const noexcept override {
    return counters_->MemoryUsageBits();
  }
  [[nodiscard]] std::string Name() const override {
    return options_.policy == SbfPolicy::kMinimumSelection ? "blocked-MS"
                                                           : "blocked-MI";
  }

  // Batched ops. Because all k probes of a key land in one block, stage 1
  // of the pipeline prefetches the block's cache line(s) once and stage 2
  // runs the branch-free single-block kernel: with a fixed-width backing
  // and block_size sized to one or two cache lines, the k in-block offsets
  // come out of one multiply-shift round over the mixed key and the min is
  // taken with conditional moves — no data-dependent branches.
  //
  // For the single-cache-line geometries — fixed64 with block_size 8 or
  // fixed32 with block_size 16, under kModuloMultiply hashing — stage 2
  // instead runs the SIMD block kernels (core/simd_kernels.h): the ring
  // slot carries {block word base, mixed key} and the active ISA variant
  // derives the lanes, takes the min, and applies the MS add / MI lift
  // vectorially, falling back to the exact scalar path per key whenever a
  // saturation clamp could fire.
  void InsertBatch(const uint64_t* keys, size_t n,
                   uint64_t count = 1) override;
  void EstimateBatch(const uint64_t* keys, size_t n,
                     uint64_t* out) const override;
  using FrequencyFilter::EstimateBatch;
  using FrequencyFilter::InsertBatch;

  [[nodiscard]] uint64_t m() const noexcept { return options_.m; }
  [[nodiscard]] uint64_t block_size() const noexcept {
    return options_.block_size;
  }
  [[nodiscard]] uint64_t num_blocks() const noexcept { return num_blocks_; }
  [[nodiscard]] uint32_t k() const noexcept { return options_.k; }

  // Block index a key maps to (every operation touches exactly this one
  // block — the locality property the scheme exists for).
  [[nodiscard]] uint64_t BlockOf(uint64_t key) const noexcept {
    return block_hash_(Mix64(key));
  }

  // Counters currently stored in block b (for load-skew diagnostics).
  [[nodiscard]] uint64_t BlockLoad(uint64_t b) const;

  // Live health snapshot (occupancy scan + verdict; thresholds are the
  // defaults — BlockedSbfOptions carries no tuning knobs).
  [[nodiscard]] FilterHealth Health() const override;

  // Clamp-event tallies of the counter backing.
  [[nodiscard]] const SaturationStats& saturation() const noexcept {
    return counters_->saturation();
  }

  // Grows to new_m counters (a positive multiple of m) keeping block_size:
  // the block hash is multiply-shift over num_blocks, so old block b's
  // keys land in new blocks [b*c, (b+1)*c) while their within-block
  // offsets (range block_size, unchanged) stay put. Replicating each old
  // block across its c successor blocks preserves every estimate exactly.
  // Fails with a clean Status (filter untouched) on bad arguments or
  // allocation failure.
  Status ExpandTo(uint64_t new_m);

  // Wire frames (io/wire.h). Minimum Selection filters keep the legacy
  // 'SBbk' frame byte-for-byte: {varint m, varint block_size, varint k,
  // u8 backing, u8 hash kind, u64 seed, embedded counter backing frame}.
  // Minimal Increase filters use 'SBb2', which carries a u8 policy byte
  // between the hash kind and the seed. Deserialize accepts both.
  [[nodiscard]] std::vector<uint8_t> Serialize() const override;
  static StatusOr<BlockedSbf> Deserialize(wire::ByteSpan bytes);

  // Audits the block geometry (m = num_blocks * block_size), options vs.
  // the live hash family and counter backing; in -DSBF_AUDIT builds the
  // backing's own layout validator runs too.
  Status CheckInvariants() const override;

 private:
  // Geometry eligible for the SIMD block kernels, resolved once at
  // construction (simd_kernels.h: one 64-byte block, power-of-two block
  // size, multiply-shift within-block hashing).
  enum class SimdShape : uint8_t { kNone, kBlock64x8, kBlock32x16 };

  void Positions(uint64_t key, uint64_t* out) const;
  void ResolveSimdShape();

  BlockedSbfOptions options_;
  uint64_t num_blocks_;
  ModuloMultiplyHash block_hash_;
  HashFamily within_block_;  // k functions with range block_size
  std::unique_ptr<CounterVector> counters_;
  SimdShape simd_shape_ = SimdShape::kNone;
  // Within-block fixed-point multipliers, cached for the kernels (valid
  // only when simd_shape_ != kNone).
  uint64_t simd_alphas_[HashFamily::kMaxK] = {};
};

}  // namespace sbf

#endif  // SBF_CORE_BLOCKED_SBF_H_
