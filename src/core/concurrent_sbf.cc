#include "core/concurrent_sbf.h"

#include <algorithm>
#include <mutex>

#include "core/batch_kernels.h"
#include "core/sbf_algebra.h"
#include "hashing/hash.h"
#include "sai/fixed_counter_vector.h"
#include "util/bits.h"
#include "util/check.h"
#include "util/prefetch.h"

namespace sbf {
namespace {

constexpr uint32_t kMaxK = 64;
constexpr uint32_t kMaxShards = 4096;
constexpr uint64_t kSeedSalt = 0x5BF5AA17C0DEull;
constexpr uint64_t kRouterSalt = 0x5BF707E2D811ull;

// Relaxed atomic load from a logically-const counter word. atomic_ref of a
// const type is C++26; the const_cast is sound because the referenced word
// is always backed by a mutable BitVector.
uint64_t AtomicLoad(const uint64_t& word) {
  return std::atomic_ref<uint64_t>(const_cast<uint64_t&>(word))
      .load(std::memory_order_relaxed);
}

bool SameShardOptions(const SbfOptions& a, const SbfOptions& b) {
  return a.m == b.m && a.k == b.k && a.policy == b.policy &&
         a.backing == b.backing && a.seed == b.seed &&
         a.hash_kind == b.hash_kind;
}

bool SameOptions(const ConcurrentSbfOptions& a, const ConcurrentSbfOptions& b) {
  return a.m == b.m && a.k == b.k && a.policy == b.policy &&
         a.backing == b.backing && a.seed == b.seed &&
         a.hash_kind == b.hash_kind && a.num_shards == b.num_shards;
}

// Groups `keys` by destination shard: [starts[s], starts[s+1]) of `grouped`
// are (stably) the keys routed to shard s, ready to feed the per-shard
// batch kernels as one contiguous slice; `order` holds the original index
// of each grouped key, for scattering results back into input order.
void GroupByShard(const ConcurrentSbf& filter, const uint64_t* keys, size_t n,
                  std::vector<uint64_t>* grouped, std::vector<uint32_t>* order,
                  std::vector<size_t>* starts) {
  const uint32_t num_shards = filter.num_shards();
  std::vector<uint32_t> shard_of(n);
  starts->assign(num_shards + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    shard_of[i] = filter.ShardOf(keys[i]);
    ++(*starts)[shard_of[i] + 1];
  }
  for (uint32_t s = 0; s < num_shards; ++s) (*starts)[s + 1] += (*starts)[s];
  grouped->resize(n);
  order->resize(n);
  std::vector<size_t> cursor(starts->begin(), starts->end() - 1);
  for (size_t i = 0; i < n; ++i) {
    const size_t at = cursor[shard_of[i]]++;
    (*grouped)[at] = keys[i];
    (*order)[at] = static_cast<uint32_t>(i);
  }
}

// Counter-word view of a shard's kFixed64 backing for the lock-free
// pipelines: counter i is word i, accessed with relaxed atomics.
struct AtomicWordView {
  uint64_t* words;
};

}  // namespace

SbfOptions ShardOptions(const ConcurrentSbfOptions& options, uint32_t index) {
  SbfOptions shard;
  shard.m = CeilDiv(options.m, options.num_shards);
  shard.k = options.k;
  shard.policy = options.policy;
  shard.backing = options.backing;
  shard.hash_kind = options.hash_kind;
  // Decorrelated per-shard hash functions: shards are independent filters.
  shard.seed = Mix64(options.seed ^ (kSeedSalt + index));
  return shard;
}

ConcurrentSbf::ConcurrentSbf(ConcurrentSbfOptions options)
    : options_(options),
      shard_m_(CeilDiv(options.m, std::max<uint32_t>(options.num_shards, 1))),
      router_salt_(Mix64(options.seed ^ kRouterSalt)),
      lock_free_(options.backing == CounterBacking::kFixed64 &&
                 options.policy == SbfPolicy::kMinimumSelection),
      metrics_(options.num_shards) {
  SBF_CHECK_MSG(options_.m >= 1, "ConcurrentSbf needs m >= 1");
  SBF_CHECK_MSG(
      options_.num_shards >= 1 && options_.num_shards <= kMaxShards,
      "ConcurrentSbf needs 1 <= num_shards <= 4096");
  shards_.reserve(options_.num_shards);
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(ShardOptions(options_, s)));
  }
}

uint32_t ConcurrentSbf::ShardOf(uint64_t key) const {
  // Mixing before the modulo keeps the router independent of the per-shard
  // hash families (which consume the raw key).
  return static_cast<uint32_t>(Mix64(key ^ router_salt_) %
                               options_.num_shards);
}

uint64_t* ConcurrentSbf::ShardWords(Shard& s) {
  // Only valid for the kFixed64 backing, where counter i is word i.
  auto& fixed =
      static_cast<FixedWidthCounterVector&>(s.filter.mutable_counters());
  return fixed.mutable_words();
}

const uint64_t* ConcurrentSbf::ShardWords(const Shard& s) {
  return static_cast<const FixedWidthCounterVector&>(s.filter.counters())
      .words();
}

void ConcurrentSbf::InsertLockFree(Shard& s, uint64_t key, uint64_t count) {
  uint64_t positions[kMaxK];
  s.filter.hash().Positions(key, positions);
  uint64_t* words = ShardWords(s);
  const uint32_t k = options_.k;
  for (uint32_t i = 0; i < k; ++i) {
    std::atomic_ref<uint64_t>(words[positions[i]])
        .fetch_add(count, std::memory_order_relaxed);
  }
  s.net_items.fetch_add(count, std::memory_order_relaxed);
}

void ConcurrentSbf::RemoveLockFree(Shard& s, uint64_t key, uint64_t count) {
  uint64_t positions[kMaxK];
  s.filter.hash().Positions(key, positions);
  uint64_t* words = ShardWords(s);
  const uint32_t k = options_.k;
  for (uint32_t i = 0; i < k; ++i) {
    std::atomic_ref<uint64_t>(words[positions[i]])
        .fetch_sub(count, std::memory_order_relaxed);
  }
  s.net_items.fetch_sub(count, std::memory_order_relaxed);
}

uint64_t ConcurrentSbf::EstimateLockFree(const Shard& s, uint64_t key) const {
  uint64_t positions[kMaxK];
  s.filter.hash().Positions(key, positions);
  const uint64_t* words = ShardWords(s);
  uint64_t min_value = ~0ull;
  for (uint32_t i = 0; i < options_.k; ++i) {
    min_value = std::min(min_value, AtomicLoad(words[positions[i]]));
    if (min_value == 0) break;
  }
  return min_value;
}

void ConcurrentSbf::InsertLockFreeBatch(Shard& s, const uint64_t* keys,
                                        size_t n, uint64_t count) {
  const HashFamily& hash = s.filter.hash();
  const uint32_t k = options_.k;
  AtomicWordView view{ShardWords(s)};
  BatchPipeline(
      view, keys, n,
      [&hash](uint64_t key, uint64_t* pos) { hash.Positions(key, pos); },
      [k](const AtomicWordView& v, const uint64_t* pos) {
        for (uint32_t j = 0; j < k; ++j) SBF_PREFETCH_WRITE(v.words + pos[j]);
      },
      [k, count](AtomicWordView& v, const uint64_t* pos, size_t) {
        for (uint32_t j = 0; j < k; ++j) {
          std::atomic_ref<uint64_t>(v.words[pos[j]])
              .fetch_add(count, std::memory_order_relaxed);
        }
      });
  s.net_items.fetch_add(n * count, std::memory_order_relaxed);
}

void ConcurrentSbf::EstimateLockFreeBatch(const Shard& s,
                                          const uint64_t* keys, size_t n,
                                          uint64_t* out) const {
  const HashFamily& hash = s.filter.hash();
  const uint32_t k = options_.k;
  AtomicWordView view{const_cast<uint64_t*>(ShardWords(s))};
  BatchPipeline(
      view, keys, n,
      [&hash](uint64_t key, uint64_t* pos) { hash.Positions(key, pos); },
      [k](const AtomicWordView& v, const uint64_t* pos) {
        for (uint32_t j = 0; j < k; ++j) SBF_PREFETCH(v.words + pos[j]);
      },
      [k, out](const AtomicWordView& v, const uint64_t* pos, size_t i) {
        uint64_t min_value = AtomicLoad(v.words[pos[0]]);
        for (uint32_t j = 1; j < k; ++j) {
          const uint64_t value = AtomicLoad(v.words[pos[j]]);
          min_value = value < min_value ? value : min_value;
        }
        out[i] = min_value;
      });
}

void ConcurrentSbf::Insert(uint64_t key, uint64_t count) {
  const uint32_t s = ShardOf(key);
  Shard& shard = *shards_[s];
  if (lock_free_) {
    InsertLockFree(shard, key, count);
  } else {
    std::unique_lock lock(shard.mu);
    shard.filter.Insert(key, count);
  }
  metrics_.RecordInsert(s, 1);
}

void ConcurrentSbf::Remove(uint64_t key, uint64_t count) {
  const uint32_t s = ShardOf(key);
  Shard& shard = *shards_[s];
  if (lock_free_) {
    RemoveLockFree(shard, key, count);
  } else {
    std::unique_lock lock(shard.mu);
    shard.filter.Remove(key, count);
  }
  metrics_.RecordRemove(s, 1);
}

uint64_t ConcurrentSbf::Estimate(uint64_t key) const {
  const uint32_t s = ShardOf(key);
  const Shard& shard = *shards_[s];
  metrics_.RecordEstimate(s, 1);
  if (lock_free_) return EstimateLockFree(shard, key);
  std::shared_lock lock(shard.mu);
  return shard.filter.Estimate(key);
}

void ConcurrentSbf::InsertBatch(const uint64_t* keys, size_t n,
                                uint64_t count) {
  if (n == 0) return;
  std::vector<uint64_t> grouped;
  std::vector<uint32_t> order;
  std::vector<size_t> starts;
  GroupByShard(*this, keys, n, &grouped, &order, &starts);
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    const size_t begin = starts[s], end = starts[s + 1];
    if (begin == end) continue;
    Shard& shard = *shards_[s];
    if (lock_free_) {
      InsertLockFreeBatch(shard, grouped.data() + begin, end - begin, count);
    } else {
      std::unique_lock lock(shard.mu);
      shard.filter.InsertBatch(grouped.data() + begin, end - begin, count);
    }
    metrics_.RecordInsert(s, end - begin);
    metrics_.RecordBatch(s);
  }
}

void ConcurrentSbf::EstimateBatch(const uint64_t* keys, size_t n,
                                  uint64_t* out) const {
  if (n == 0) return;
  std::vector<uint64_t> grouped;
  std::vector<uint32_t> order;
  std::vector<size_t> starts;
  GroupByShard(*this, keys, n, &grouped, &order, &starts);
  std::vector<uint64_t> shard_out(n);
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    const size_t begin = starts[s], end = starts[s + 1];
    if (begin == end) continue;
    const Shard& shard = *shards_[s];
    metrics_.RecordEstimate(s, end - begin);
    metrics_.RecordBatch(s);
    if (lock_free_) {
      EstimateLockFreeBatch(shard, grouped.data() + begin, end - begin,
                            shard_out.data() + begin);
    } else {
      std::shared_lock lock(shard.mu);
      shard.filter.EstimateBatch(grouped.data() + begin, end - begin,
                                 shard_out.data() + begin);
    }
  }
  for (size_t i = 0; i < n; ++i) out[order[i]] = shard_out[i];
}

Status ConcurrentSbf::Merge(const ConcurrentSbf& other) {
  if (this == &other) {
    return Status::FailedPrecondition("ConcurrentSbf self-merge not supported");
  }
  if (!SameOptions(options_, other.options_)) {
    return Status::FailedPrecondition(
        "ConcurrentSbf merge requires identical options (shards, m, k, seed, "
        "policy, backing)");
  }
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    Shard& dst = *shards_[s];
    const Shard& src = *other.shards_[s];
    // std::scoped_lock's deadlock-avoidance handles concurrent A.Merge(B)
    // and B.Merge(A).
    std::scoped_lock locks(dst.mu, src.mu);
    if (lock_free_) {
      // Atomic pointwise add so the merge is race-free against concurrent
      // lock-free inserters on either operand.
      uint64_t* dst_words = ShardWords(dst);
      const uint64_t* src_words = ShardWords(src);
      for (uint64_t i = 0; i < shard_m_; ++i) {
        const uint64_t add = AtomicLoad(src_words[i]);
        if (add > 0) {
          std::atomic_ref<uint64_t>(dst_words[i])
              .fetch_add(add, std::memory_order_relaxed);
        }
      }
      dst.net_items.fetch_add(
          src.net_items.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    } else {
      const Status status = UnionInto(&dst.filter, src.filter);
      if (!status.ok()) return status;
    }
  }
  return Status::Ok();
}

SpectralBloomFilter ConcurrentSbf::SnapshotShard(size_t i) const {
  const Shard& shard = *shards_[i];
  if (lock_free_) {
    SpectralBloomFilter snap = shard.filter.CloneEmpty();
    const uint64_t* words = ShardWords(shard);
    for (uint64_t j = 0; j < shard_m_; ++j) {
      const uint64_t v = AtomicLoad(words[j]);
      if (v > 0) snap.mutable_counters().Set(j, v);
    }
    snap.set_total_items(shard.net_items.load(std::memory_order_relaxed));
    return snap;
  }
  std::shared_lock lock(shard.mu);
  return shard.filter;
}

uint64_t ConcurrentSbf::TotalItems() const {
  uint64_t total = 0;
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    const Shard& shard = *shards_[s];
    if (lock_free_) {
      total += shard.net_items.load(std::memory_order_relaxed);
    } else {
      std::shared_lock lock(shard.mu);
      total += shard.filter.total_items();
    }
  }
  return total;
}

size_t ConcurrentSbf::MemoryUsageBits() const {
  size_t total = 0;
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    const Shard& shard = *shards_[s];
    if (lock_free_) {
      total += shard.filter.MemoryUsageBits();
    } else {
      std::shared_lock lock(shard.mu);
      total += shard.filter.MemoryUsageBits();
    }
  }
  return total;
}

std::string ConcurrentSbf::Name() const {
  std::string name = "CSBF-";
  name += options_.policy == SbfPolicy::kMinimumSelection ? "MS" : "MI";
  name += "/";
  name += CounterBackingName(options_.backing);
  name += "[S=" + std::to_string(options_.num_shards) + "]";
  return name;
}

std::vector<uint8_t> ConcurrentSbf::Serialize() const {
  wire::Writer payload;
  payload.PutVarint(options_.num_shards);
  payload.PutVarint(options_.m);
  payload.PutU64(options_.seed);
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    payload.PutFrame(SnapshotShard(s).Serialize());
  }
  return wire::SealFrame(wire::kMagicShardedSbf, wire::kFormatVersion,
                         std::move(payload));
}

StatusOr<ConcurrentSbf> ConcurrentSbf::Deserialize(wire::ByteSpan bytes) {
  auto reader = wire::OpenFrame(bytes, wire::kMagicShardedSbf,
                                wire::kFormatVersion, "sharded SBF");
  if (!reader.ok()) return reader.status();
  wire::Reader& in = reader.value();
  const uint64_t num_shards = in.ReadVarint();
  const uint64_t total_m = in.ReadVarint();
  const uint64_t seed = in.ReadU64();
  if (!in.ok()) return in.status();
  if (num_shards < 1 || num_shards > kMaxShards) {
    return Status::DataLoss("bad sharded SBF shard count");
  }
  if (total_m < 1) return Status::DataLoss("bad sharded SBF m");

  // Peel the embedded per-shard frames.
  std::vector<SpectralBloomFilter> shard_filters;
  shard_filters.reserve(num_shards);
  for (uint64_t s = 0; s < num_shards; ++s) {
    const wire::ByteSpan blob = in.ReadFrameSpan();
    if (!in.ok()) {
      return Status::DataLoss("sharded SBF truncated at shard " +
                              std::to_string(s));
    }
    auto shard = SpectralBloomFilter::Deserialize(blob);
    if (!shard.ok()) return shard.status();
    shard_filters.push_back(std::move(shard).value());
  }
  Status status = in.ExpectEnd("sharded SBF");
  if (!status.ok()) return status;

  // Reconstruct the frontend options from the header + shard 0, then check
  // every shard against the options it must have been built with. This
  // catches blob reordering, shard-count tampering and mixed-backing blobs.
  ConcurrentSbfOptions options;
  options.num_shards = static_cast<uint32_t>(num_shards);
  options.m = total_m;
  options.seed = seed;
  options.k = shard_filters[0].k();
  options.policy = shard_filters[0].options().policy;
  options.backing = shard_filters[0].options().backing;
  options.hash_kind = shard_filters[0].options().hash_kind;
  for (uint64_t s = 0; s < num_shards; ++s) {
    if (!SameShardOptions(shard_filters[s].options(),
                          ShardOptions(options, static_cast<uint32_t>(s)))) {
      return Status::DataLoss("sharded SBF shard " + std::to_string(s) +
                              " inconsistent with header");
    }
  }

  ConcurrentSbf filter(options);
  for (uint64_t s = 0; s < num_shards; ++s) {
    Shard& shard = *filter.shards_[s];
    shard.filter = std::move(shard_filters[s]);
    if (filter.lock_free_) {
      shard.net_items.store(shard.filter.total_items(),
                            std::memory_order_relaxed);
      shard.filter.set_total_items(0);
    }
  }
  return filter;
}

}  // namespace sbf
