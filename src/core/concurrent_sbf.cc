#include "core/concurrent_sbf.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "core/batch_kernels.h"
#include "core/sbf_algebra.h"
#include "hashing/hash.h"
#include "sai/fixed_counter_vector.h"
#include "util/bits.h"
#include "util/check.h"
#include "util/fault_injection.h"
#include "util/health.h"
#include "util/prefetch.h"
#include "util/audit.h"
#include "util/thread_annotations.h"

namespace sbf {
namespace {

constexpr uint32_t kMaxK = 64;
constexpr uint32_t kMaxShards = 4096;
constexpr uint64_t kSeedSalt = 0x5BF5AA17C0DEull;
constexpr uint64_t kRouterSalt = 0x5BF707E2D811ull;
// Counters migrated per exclusive-lock acquisition on the locked expansion
// path: small enough that readers interleave between chunks.
constexpr uint64_t kMigrateChunk = 256;
// Keys routed per delta-batch chunk before the per-shard pending tallies
// are published (amortizes the shared fetch_adds over the chunk).
constexpr size_t kDeltaBatchChunk = 512;
// The epoch staleness clock is consulted once per this many buffered ops.
constexpr uint64_t kClockCheckMask = 63;
// Per-thread delta storage is clamped to this many bytes by shrinking the
// per-shard map capacity (a 4096-shard filter would otherwise cost ~70 MiB
// per writing thread at the default capacity).
constexpr size_t kMaxDeltaBytesPerThread = 4u << 20;
// Bytes per delta-map slot: key + net + occupancy byte.
constexpr size_t kDeltaSlotBytes = 2 * sizeof(uint64_t) + 1;

// Relaxed atomic load from a logically-const counter word. atomic_ref of a
// const type is C++26; the const_cast is sound because the referenced word
// is always backed by a mutable BitVector.
uint64_t AtomicLoad(const uint64_t& word) {
  return std::atomic_ref<uint64_t>(const_cast<uint64_t&>(word))
      .load(std::memory_order_relaxed);
}

bool SameShardOptions(const SbfOptions& a, const SbfOptions& b) {
  return a.m == b.m && a.k == b.k && a.policy == b.policy &&
         a.backing == b.backing && a.seed == b.seed &&
         a.hash_kind == b.hash_kind;
}

bool SameOptions(const ConcurrentSbfOptions& a, const ConcurrentSbfOptions& b) {
  return a.m == b.m && a.k == b.k && a.policy == b.policy &&
         a.backing == b.backing && a.seed == b.seed &&
         a.hash_kind == b.hash_kind && a.num_shards == b.num_shards;
}

// Old counter i's rep'th preimage position after a c-fold expansion — the
// same correspondence SpectralBloomFilter::ExpandTo relies on (multiply-
// shift partitions the new range into consecutive runs of c; double-mix
// replicates residues mod the old size).
uint64_t FoldPosition(HashFamily::Kind kind, uint64_t old_m, uint64_t c,
                      uint64_t i, uint64_t rep) {
  return kind == HashFamily::Kind::kModuloMultiply ? i * c + rep
                                                   : i + rep * old_m;
}

// Groups `keys` by destination shard (CountingSortByShard kernel over
// per-call scratch): [starts[s], starts[s+1]) of `grouped` are (stably)
// the keys routed to shard s, ready to feed the per-shard batch kernels as
// one contiguous slice; `order` holds the original index of each grouped
// key, for scattering results back into input order.
void GroupByShard(const ConcurrentSbf& filter, const uint64_t* keys, size_t n,
                  std::vector<uint64_t>* grouped, std::vector<uint32_t>* order,
                  std::vector<size_t>* starts) {
  const uint32_t num_shards = filter.num_shards();
  grouped->resize(n);
  order->resize(n);
  starts->resize(num_shards + 1);
  std::vector<uint32_t> shard_scratch(n);
  std::vector<size_t> cursor_scratch(num_shards);
  CountingSortByShard(
      keys, n, num_shards,
      [&filter](uint64_t key) { return filter.ShardOf(key); },
      grouped->data(), order->data(), starts->data(), shard_scratch.data(),
      cursor_scratch.data());
}

// Counter-word view of a filter's kFixed64 backing for the lock-free
// pipelines: counter i is word i, accessed with relaxed atomics.
struct AtomicWordView {
  uint64_t* words;
};

// Magnitude/sign split of a two's-complement net occurrence count.
bool NetIsAdd(uint64_t net) { return static_cast<int64_t>(net) >= 0; }
uint64_t NetMagnitude(uint64_t net) {
  return NetIsAdd(net) ? net : ~net + 1;
}

}  // namespace

SbfOptions ShardOptions(const ConcurrentSbfOptions& options, uint32_t index) {
  SbfOptions shard;
  shard.m = CeilDiv(options.m, options.num_shards);
  shard.k = options.k;
  shard.policy = options.policy;
  shard.backing = options.backing;
  shard.hash_kind = options.hash_kind;
  // Decorrelated per-shard hash functions: shards are independent filters.
  // The seed does not depend on m, so expansion keeps each shard's family.
  shard.seed = Mix64(options.seed ^ (kSeedSalt + index));
  return shard;
}

ConcurrentSbf::ConcurrentSbf(ConcurrentSbfOptions options)
    : options_(options),
      shard_m_(CeilDiv(options.m, std::max<uint32_t>(options.num_shards, 1))),
      router_salt_(Mix64(options.seed ^ kRouterSalt)),
      lock_free_(options.backing == CounterBacking::kFixed64 &&
                 options.policy == SbfPolicy::kMinimumSelection),
      delta_active_(options.delta.enabled &&
                    options.policy == SbfPolicy::kMinimumSelection),
      metrics_(options.num_shards) {
  SBF_CHECK_MSG(options_.m >= 1, "ConcurrentSbf needs m >= 1");
  SBF_CHECK_MSG(
      options_.num_shards >= 1 && options_.num_shards <= kMaxShards,
      "ConcurrentSbf needs 1 <= num_shards <= 4096");
  shards_.reserve(options_.num_shards);
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(ShardOptions(options_, s)));
  }
  if (delta_active_) {
    // Sanitize the delta tuning: power-of-two capacity, clamped so one
    // thread's buffers stay within kMaxDeltaBytesPerThread, merge
    // threshold within capacity.
    DeltaBufferOptions& delta = options_.delta;
    uint32_t capacity = 2;
    while (capacity < delta.capacity && capacity < (1u << 30)) capacity <<= 1;
    while (capacity > 2 &&
           static_cast<size_t>(capacity) * options_.num_shards *
                   kDeltaSlotBytes >
               kMaxDeltaBytesPerThread) {
      capacity >>= 1;
    }
    delta.capacity = capacity;
    delta.merge_keys = std::max<uint32_t>(
        1, std::min(delta.merge_keys, std::max<uint32_t>(1, capacity / 2)));
    registry_ = std::make_shared<DeltaRegistry>();
    util::MutexLock lock(registry_->mu);
    registry_->owner = this;
  }
}

ConcurrentSbf::~ConcurrentSbf() { DetachRegistry(); }

ConcurrentSbf::ConcurrentSbf(ConcurrentSbf&& other) noexcept
    : options_(std::move(other.options_)),
      shard_m_(other.shard_m_),
      router_salt_(other.router_salt_),
      lock_free_(other.lock_free_),
      delta_active_(other.delta_active_),
      shards_(std::move(other.shards_)),
      metrics_(std::move(other.metrics_)),
      registry_(std::move(other.registry_)) {
  other.delta_active_ = false;
  if (registry_ != nullptr) {
    // Buffered deltas reference keys, not positions, so they stay valid
    // across the move; only the drain target changes.
    util::MutexLock lock(registry_->mu);
    registry_->owner = this;
  }
}

ConcurrentSbf& ConcurrentSbf::operator=(ConcurrentSbf&& other) noexcept {
  if (this == &other) return *this;
  DetachRegistry();
  options_ = std::move(other.options_);
  shard_m_ = other.shard_m_;
  router_salt_ = other.router_salt_;
  lock_free_ = other.lock_free_;
  delta_active_ = other.delta_active_;
  shards_ = std::move(other.shards_);
  metrics_ = std::move(other.metrics_);
  registry_ = std::move(other.registry_);
  other.delta_active_ = false;
  if (registry_ != nullptr) {
    util::MutexLock lock(registry_->mu);
    registry_->owner = this;
  }
  return *this;
}

void ConcurrentSbf::DetachRegistry() {
  if (registry_ == nullptr) return;
  FlushAllBuffers();
  {
    util::MutexLock lock(registry_->mu);
    registry_->owner = nullptr;
  }
  registry_.reset();
}

uint32_t ConcurrentSbf::ShardOf(uint64_t key) const noexcept {
  // Mixing before the modulo keeps the router independent of the per-shard
  // hash families (which consume the raw key).
  return static_cast<uint32_t>(Mix64(key ^ router_salt_) %
                               options_.num_shards);
}

uint64_t* ConcurrentSbf::FilterWords(SpectralBloomFilter& f) {
  // Only valid for the kFixed64 backing, where counter i is word i.
  auto& fixed = static_cast<FixedWidthCounterVector&>(f.mutable_counters());
  return fixed.mutable_words();
}

const uint64_t* ConcurrentSbf::FilterWords(const SpectralBloomFilter& f) {
  return static_cast<const FixedWidthCounterVector&>(f.counters()).words();
}

void ConcurrentSbf::AtomicApply(SpectralBloomFilter& filter, uint64_t key,
                                uint64_t count, bool add) {
  uint64_t positions[kMaxK];
  filter.hash().Positions(key, positions);
  uint64_t* words = FilterWords(filter);
  const uint32_t k = options_.k;
  for (uint32_t i = 0; i < k; ++i) {
    std::atomic_ref<uint64_t> word(words[positions[i]]);
    if (add) {
      word.fetch_add(count, std::memory_order_relaxed);
    } else {
      word.fetch_sub(count, std::memory_order_relaxed);
    }
  }
}

uint64_t ConcurrentSbf::CombinedEstimate(const SpectralBloomFilter& live,
                                         const SpectralBloomFilter& pending,
                                         uint64_t key,
                                         bool atomic_reads) const {
  // Probe j of the old family corresponds to probe j of the new one (same
  // seed, rebuilt range), so the per-probe sum live[old_j] + pending[new_j]
  // bounds the key's true pre-window + in-window count from above, and the
  // min over j is exactly the estimate a single merged filter would give.
  uint64_t old_pos[kMaxK];
  uint64_t new_pos[kMaxK];
  live.hash().Positions(key, old_pos);
  pending.hash().Positions(key, new_pos);
  const uint32_t k = options_.k;
  uint64_t min_value = ~0ull;
  if (atomic_reads) {
    const uint64_t* live_words = FilterWords(live);
    const uint64_t* pending_words = FilterWords(pending);
    for (uint32_t j = 0; j < k; ++j) {
      const uint64_t sum = AtomicLoad(live_words[old_pos[j]]) +
                           AtomicLoad(pending_words[new_pos[j]]);
      min_value = std::min(min_value, sum);
    }
  } else {
    for (uint32_t j = 0; j < k; ++j) {
      const uint64_t sum = live.counters().Get(old_pos[j]) +
                           pending.counters().Get(new_pos[j]);
      min_value = std::min(min_value, sum);
    }
  }
  return min_value;
}

void ConcurrentSbf::InsertLockFree(Shard& s, uint64_t key, uint64_t count) {
  // Dekker handshake with ExpandShard: our seq-cst refcount increment and
  // pending load pair with the migrator's seq-cst pending publish and
  // refcount drain (DESIGN.md §11, "window handshake" — both seq-cst sites
  // are on sbf_analyze's allowlist). Either we observe the window (and
  // write only pending), or the migrator observes our increment and waits
  // before freezing live.
  s.live_writers.fetch_add(1, std::memory_order_seq_cst);
  SpectralBloomFilter* pending = s.pending_ptr.load(std::memory_order_seq_cst);
  if (pending != nullptr) {
    // Relaxed exit: this branch wrote nothing to live, so there is nothing
    // to publish — the decrement only releases the migrator's drain spin,
    // which re-reads live_writers seq-cst.
    s.live_writers.fetch_sub(1, std::memory_order_relaxed);
    AtomicApply(*pending, key, count, /*add=*/true);
  } else {
    AtomicApply(*s.live_ptr.load(std::memory_order_acquire), key, count,
                /*add=*/true);
    // Release exit: publishes the counter stores above to the migrator,
    // whose seq-cst live_writers spin (ExpandShard) is the matching read —
    // the fold must observe every drained writer's counters.
    s.live_writers.fetch_sub(1, std::memory_order_release);
  }
  s.net_items.fetch_add(count, std::memory_order_relaxed);
}

void ConcurrentSbf::RemoveLockFree(Shard& s, uint64_t key, uint64_t count) {
  // Counter updates are mod-2^64 fetch_sub, so a remove landing in pending
  // while its paired insert went to live still cancels exactly once the
  // fold adds the two filters together (the lock-free Remove contract:
  // only remove previously inserted occurrences).
  // Same handshake and exit orders as InsertLockFree (relaxed when only
  // pending was written, release to publish live-counter stores to the
  // migrator's seq-cst drain spin).
  s.live_writers.fetch_add(1, std::memory_order_seq_cst);
  SpectralBloomFilter* pending = s.pending_ptr.load(std::memory_order_seq_cst);
  if (pending != nullptr) {
    s.live_writers.fetch_sub(1, std::memory_order_relaxed);
    AtomicApply(*pending, key, count, /*add=*/false);
  } else {
    AtomicApply(*s.live_ptr.load(std::memory_order_acquire), key, count,
                /*add=*/false);
    s.live_writers.fetch_sub(1, std::memory_order_release);
  }
  s.net_items.fetch_sub(count, std::memory_order_relaxed);
}

uint64_t ConcurrentSbf::EstimateLockFree(const Shard& s, uint64_t key) const {
  // Pending before live: if we observe the window closed (pending null
  // reading the migrator's clearing store), the subsequent live load is
  // coherence-ordered after the swap and sees the folded filter — the
  // window's content is never missed. Observing pending while live has
  // already swapped reads the same filter twice: a transient, one-sided
  // (over) estimate.
  const SpectralBloomFilter* pending =
      s.pending_ptr.load(std::memory_order_acquire);
  const SpectralBloomFilter* live = s.live_ptr.load(std::memory_order_acquire);
  if (pending != nullptr) {
    return CombinedEstimate(*live, *pending, key, /*atomic_reads=*/true);
  }
  uint64_t positions[kMaxK];
  live->hash().Positions(key, positions);
  const uint64_t* words = FilterWords(*live);
  uint64_t min_value = ~0ull;
  for (uint32_t i = 0; i < options_.k; ++i) {
    min_value = std::min(min_value, AtomicLoad(words[positions[i]]));
    if (min_value == 0) break;
  }
  return min_value;
}

void ConcurrentSbf::InsertLockFreeBatch(Shard& s, const uint64_t* keys,
                                        size_t n, uint64_t count) {
  // One window check covers the whole shard slice; holding the refcount
  // across the batch just extends the migrator's drain by one pipeline.
  // Same handshake/exit orders as InsertLockFree.
  s.live_writers.fetch_add(1, std::memory_order_seq_cst);
  SpectralBloomFilter* pending = s.pending_ptr.load(std::memory_order_seq_cst);
  SpectralBloomFilter* target;
  if (pending != nullptr) {
    s.live_writers.fetch_sub(1, std::memory_order_relaxed);
    target = pending;
  } else {
    target = s.live_ptr.load(std::memory_order_acquire);
  }
  const HashFamily& hash = target->hash();
  const uint32_t k = options_.k;
  AtomicWordView view{FilterWords(*target)};
  BatchPipeline(
      view, keys, n,
      [&hash](uint64_t key, uint64_t* pos) { hash.Positions(key, pos); },
      [k](const AtomicWordView& v, const uint64_t* pos) {
        for (uint32_t j = 0; j < k; ++j) SBF_PREFETCH_WRITE(v.words + pos[j]);
      },
      [k, count](AtomicWordView& v, const uint64_t* pos, size_t) {
        for (uint32_t j = 0; j < k; ++j) {
          std::atomic_ref<uint64_t>(v.words[pos[j]])
              .fetch_add(count, std::memory_order_relaxed);
        }
      });
  if (pending == nullptr) {
    s.live_writers.fetch_sub(1, std::memory_order_release);
  }
  s.net_items.fetch_add(n * count, std::memory_order_relaxed);
}

void ConcurrentSbf::EstimateLockFreeBatch(const Shard& s,
                                          const uint64_t* keys, size_t n,
                                          uint64_t* out) const {
  const SpectralBloomFilter* pending =
      s.pending_ptr.load(std::memory_order_acquire);
  const SpectralBloomFilter* live = s.live_ptr.load(std::memory_order_acquire);
  if (pending != nullptr) {
    // Dual-write window: per-key combined probes (the window is short;
    // pipelining the two-filter gather is not worth the code).
    for (size_t i = 0; i < n; ++i) {
      out[i] = CombinedEstimate(*live, *pending, keys[i],
                                /*atomic_reads=*/true);
    }
    return;
  }
  const HashFamily& hash = live->hash();
  const uint32_t k = options_.k;
  AtomicWordView view{const_cast<uint64_t*>(FilterWords(*live))};
  BatchPipeline(
      view, keys, n,
      [&hash](uint64_t key, uint64_t* pos) { hash.Positions(key, pos); },
      [k](const AtomicWordView& v, const uint64_t* pos) {
        for (uint32_t j = 0; j < k; ++j) SBF_PREFETCH(v.words + pos[j]);
      },
      [k, out](const AtomicWordView& v, const uint64_t* pos, size_t i) {
        uint64_t min_value = AtomicLoad(v.words[pos[0]]);
        for (uint32_t j = 1; j < k; ++j) {
          const uint64_t value = AtomicLoad(v.words[pos[j]]);
          min_value = value < min_value ? value : min_value;
        }
        out[i] = min_value;
      });
}

// --- delta-buffer plumbing -------------------------------------------------

DeltaSet& ConcurrentSbf::CallerDeltaSet() {
  return *ThreadDeltaSet(registry_, options_.num_shards, options_.delta);
}

bool ConcurrentSbf::ShouldMergeEpoch(
    const DeltaSet& set, const DeltaSet::ShardState& state) const {
  const DeltaBufferOptions& opt = set.options();
  if (state.size >= opt.merge_keys) return true;
  if (opt.max_epoch_micros > 0 && state.epoch_open &&
      (state.ops_since_merge & kClockCheckMask) == 0) {
    const auto age = std::chrono::steady_clock::now() - state.epoch_start;
    if (age >= std::chrono::microseconds(opt.max_epoch_micros)) return true;
  }
  return false;
}

void ConcurrentSbf::BufferDelta(DeltaSet& set, uint32_t shard_index,
                                uint64_t key, uint64_t count, bool remove) {
  DeltaSet::ShardState& state = set.state(shard_index);
  const uint64_t delta = remove ? ~count + 1 : count;
  if (!DeltaAccumulate(set.map(shard_index), key, delta, &state.size)) {
    // Map full: merge this shard's epoch and retry against the now-empty
    // map (cannot fail twice). The op being buffered is not yet in the map
    // nor in pending_contrib, so the forced merge's bookkeeping balances.
    MergeShardDelta(set, shard_index);
    const bool ok =
        DeltaAccumulate(set.map(shard_index), key, delta, &state.size);
    SBF_DCHECK(ok);
    (void)ok;
  }
  if (!remove) {
    // Publish before returning: a completed insert is covered by the
    // pending tally until the merge moves it into the counters.
    shards_[shard_index]->pending_ops.fetch_add(count,
                                                std::memory_order_relaxed);
    state.pending_contrib += count;
  }
  state.net_ops += delta;
  if (!state.epoch_open) {
    state.epoch_open = true;
    if (set.options().max_epoch_micros > 0) {
      state.epoch_start = std::chrono::steady_clock::now();
    }
  }
  ++state.ops_since_merge;
  if (ShouldMergeEpoch(set, state)) MergeShardDelta(set, shard_index);
}

void ConcurrentSbf::MergeShardDelta(DeltaSet& set, uint32_t shard_index) {
  DeltaSet::ShardState& state = set.state(shard_index);
  Shard& s = *shards_[shard_index];
  if (state.size > 0) {
    metrics_.RecordDeltaBufferedPeak(shard_index, state.size);
    uint32_t applied = 0;
    if (lock_free_) {
      // One expansion-window handshake covers the whole drain (the same
      // protocol as InsertLockFreeBatch).
      s.live_writers.fetch_add(1, std::memory_order_seq_cst);
      SpectralBloomFilter* pending =
          s.pending_ptr.load(std::memory_order_seq_cst);
      if (pending != nullptr) {
        s.live_writers.fetch_sub(1, std::memory_order_relaxed);
      }
      SpectralBloomFilter* target =
          pending != nullptr ? pending
                             : s.live_ptr.load(std::memory_order_acquire);
      applied = DeltaDrain(
          set.map(shard_index), [this, target](uint64_t key, uint64_t net) {
            AtomicApply(*target, key, NetMagnitude(net), NetIsAdd(net));
          });
      if (pending == nullptr) {
        s.live_writers.fetch_sub(1, std::memory_order_release);
      }
      s.net_items.fetch_add(state.net_ops, std::memory_order_relaxed);
    } else {
      util::WriterMutexLock lock(s.mu);
      SpectralBloomFilter& f = s.pending ? *s.pending : *s.live;
      // Gather-then-apply: the epoch's adds go through the filter's
      // decoded-view bulk path (position-sorted, each touched counter
      // group decoded and written back once) instead of k probes per key.
      // Buffered nets on this path are add-only — Remove() flushes and
      // applies directly on clamped backings — so the remove arm is
      // defensive only.
      std::vector<std::pair<uint64_t, uint64_t>> adds;
      applied =
          DeltaDrain(set.map(shard_index), [&adds, &f](uint64_t key,
                                                       uint64_t net) {
            if (NetIsAdd(net)) {
              adds.emplace_back(key, net);
            } else {
              f.Remove(key, NetMagnitude(net));
            }
          });
      f.ApplyAddBatch(adds.data(), adds.size());
    }
    state.size = 0;
    metrics_.RecordDeltaMerge(shard_index, applied);
  }
  // Release the pending tally only after the counters carry the deltas
  // (release pairs with the readers' acquire): a reader that observes the
  // lowered tally also observes the applied counters, so estimates never
  // dip below flushed + buffered.
  if (state.pending_contrib > 0) {
    s.pending_ops.fetch_sub(state.pending_contrib,
                            std::memory_order_release);
    state.pending_contrib = 0;
  }
  state.net_ops = 0;
  state.ops_since_merge = 0;
  state.epoch_open = false;
}

void ConcurrentSbf::ApplyNetDelta(Shard& s, uint64_t key, uint64_t net) {
  SBF_DCHECK(lock_free_);
  const bool add = NetIsAdd(net);
  const uint64_t magnitude = NetMagnitude(net);
  // Same handshake/exit orders as InsertLockFree.
  s.live_writers.fetch_add(1, std::memory_order_seq_cst);
  SpectralBloomFilter* pending =
      s.pending_ptr.load(std::memory_order_seq_cst);
  if (pending != nullptr) {
    s.live_writers.fetch_sub(1, std::memory_order_relaxed);
    AtomicApply(*pending, key, magnitude, add);
  } else {
    AtomicApply(*s.live_ptr.load(std::memory_order_acquire), key, magnitude,
                add);
    s.live_writers.fetch_sub(1, std::memory_order_release);
  }
}

void ConcurrentSbf::DrainOwnShard(uint32_t shard_index) const {
  DeltaSet* set = ThreadDeltaSetIfExists(registry_.get());
  if (set == nullptr) return;
  auto* self = const_cast<ConcurrentSbf*>(this);
  util::MutexLock lock(set->mu);
  DeltaSet::ShardState& state = set->state(shard_index);
  if (state.size > 0 || state.pending_contrib > 0) {
    self->MergeShardDelta(*set, shard_index);
  }
}

void ConcurrentSbf::DrainOwnAll() const {
  DeltaSet* set = ThreadDeltaSetIfExists(registry_.get());
  if (set == nullptr) return;
  auto* self = const_cast<ConcurrentSbf*>(this);
  util::MutexLock lock(set->mu);
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    DeltaSet::ShardState& state = set->state(s);
    if (state.size > 0 || state.pending_contrib > 0) {
      self->MergeShardDelta(*set, s);
    }
  }
}

void ConcurrentSbf::DrainDeltaSet(DeltaSet& set) {
  util::MutexLock lock(set.mu);
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    DeltaSet::ShardState& state = set.state(s);
    if (state.size > 0 || state.pending_contrib > 0) {
      MergeShardDelta(set, s);
    }
  }
}

void ConcurrentSbf::FlushAllBuffers() {
  if (!delta_active_ || registry_ == nullptr) return;
  util::MutexLock registry_lock(registry_->mu);
  // The canonical cross-thread drain: per shard, gather every thread's
  // buffered entries, aggregate per key and apply in ascending key order —
  // the flushed image is independent of which thread buffered which ops
  // (Minimum Selection increments commute). Cold path; may allocate.
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  for (uint32_t shard_index = 0; shard_index < options_.num_shards;
       ++shard_index) {
    entries.clear();
    uint64_t contrib = 0;
    uint64_t net_ops = 0;
    for (const std::shared_ptr<DeltaSet>& set : registry_->sets) {
      util::MutexLock set_lock(set->mu);
      DeltaSet::ShardState& state = set->state(shard_index);
      if (state.size > 0) {
        metrics_.RecordDeltaBufferedPeak(shard_index, state.size);
        DeltaDrain(set->map(shard_index),
                   [&entries](uint64_t key, uint64_t net) {
                     entries.emplace_back(key, net);
                   });
        state.size = 0;
      }
      // Transfer the tally responsibility to this drain; the shard's
      // pending_ops itself stays raised until the counters are updated.
      contrib += state.pending_contrib;
      net_ops += state.net_ops;
      state.pending_contrib = 0;
      state.net_ops = 0;
      state.ops_since_merge = 0;
      state.epoch_open = false;
    }
    if (entries.empty() && contrib == 0) continue;
    std::sort(entries.begin(), entries.end());
    Shard& s = *shards_[shard_index];
    uint64_t applied = 0;
    if (lock_free_) {
      for (size_t i = 0; i < entries.size();) {
        const uint64_t key = entries[i].first;
        uint64_t net = 0;
        for (; i < entries.size() && entries[i].first == key; ++i) {
          net += entries[i].second;
        }
        if (net == 0) continue;
        ApplyNetDelta(s, key, net);
        ++applied;
      }
      s.net_items.fetch_add(net_ops, std::memory_order_relaxed);
    } else {
      // Locked path: net per key, then one decoded-view bulk apply on the
      // target filter — each counter group the drain touches is decoded
      // and written back once, which is where the compact backing's flush
      // cost used to go (a width re-scan per probe). Nets here are
      // add-only (Remove() flushes and applies directly on this path);
      // the remove arm is defensive.
      util::WriterMutexLock lock(s.mu);
      SpectralBloomFilter& f = s.pending ? *s.pending : *s.live;
      std::vector<std::pair<uint64_t, uint64_t>> adds;
      adds.reserve(entries.size());
      for (size_t i = 0; i < entries.size();) {
        const uint64_t key = entries[i].first;
        uint64_t net = 0;
        for (; i < entries.size() && entries[i].first == key; ++i) {
          net += entries[i].second;
        }
        if (net == 0) continue;
        if (NetIsAdd(net)) {
          adds.emplace_back(key, net);
        } else {
          f.Remove(key, NetMagnitude(net));
        }
        ++applied;
      }
      f.ApplyAddBatch(adds.data(), adds.size());
    }
    if (!entries.empty()) {
      metrics_.RecordDeltaMerge(shard_index, applied);
    }
    if (contrib > 0) {
      s.pending_ops.fetch_sub(contrib, std::memory_order_release);
    }
  }
}

void ConcurrentSbf::Flush() { FlushAllBuffers(); }

uint64_t ConcurrentSbf::PendingDeltaOps() const noexcept {
  uint64_t total = 0;
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    total += shards_[s]->pending_ops.load(std::memory_order_relaxed);
  }
  return total;
}

// --- point & batch ops -----------------------------------------------------

void ConcurrentSbf::Insert(uint64_t key, uint64_t count) {
  const uint32_t s = ShardOf(key);
  if (delta_active_) {
    DeltaSet& set = CallerDeltaSet();
    util::MutexLock lock(set.mu);
    BufferDelta(set, s, key, count, /*remove=*/false);
    metrics_.RecordInsert(s, 1);
    return;
  }
  Shard& shard = *shards_[s];
  if (lock_free_) {
    InsertLockFree(shard, key, count);
  } else {
    util::WriterMutexLock lock(shard.mu);
    (shard.pending ? *shard.pending : *shard.live).Insert(key, count);
  }
  metrics_.RecordInsert(s, 1);
}

void ConcurrentSbf::Remove(uint64_t key, uint64_t count) {
  const uint32_t s = ShardOf(key);
  if (delta_active_) {
    if (lock_free_) {
      // Buffered removes never raise the pending tally (an unapplied
      // remove only over-reports — the safe direction). Counter updates
      // wrap mod 2^64, so a remove merged before the insert it cancels
      // (buffered by another thread) still nets out exactly.
      DeltaSet& set = CallerDeltaSet();
      util::MutexLock lock(set.mu);
      BufferDelta(set, s, key, count, /*remove=*/true);
      metrics_.RecordRemove(s, 1);
      return;
    }
    // Clamped backings make removes order-sensitive: a remove applied
    // before the insert it cancels clamps at zero and the occurrences are
    // lost. Flushing every buffer first restores the caller's ordering
    // ("only remove previously inserted occurrences" — such inserts are
    // by then either applied or in a buffer the flush gathers), so the
    // direct remove below never clamps. Removes are the rare op on every
    // workload this path serves; inserts stay buffered.
    Flush();
  }
  Shard& shard = *shards_[s];
  if (lock_free_) {
    RemoveLockFree(shard, key, count);
  } else {
    util::WriterMutexLock lock(shard.mu);
    // During a window the pre-window occurrences live in the old filter;
    // removing them from pending clamps at zero (tallied) and leaves a
    // benign one-sided overestimate that the fold does not disturb.
    (shard.pending ? *shard.pending : *shard.live).Remove(key, count);
  }
  metrics_.RecordRemove(s, 1);
}

uint64_t ConcurrentSbf::Estimate(uint64_t key) const {
  const uint32_t s = ShardOf(key);
  const Shard& shard = *shards_[s];
  metrics_.RecordEstimate(s, 1);
  if (delta_active_) {
    // Read-your-writes: the calling thread's own buffers for this shard
    // are merged first, so single-threaded use is exactly a plain SBF.
    DrainOwnShard(s);
    // Acquire the pending tally BEFORE probing: pairs with the merge's
    // release decrement, so a reader that sees the lowered tally also sees
    // the applied counters — the estimate never dips below the flushed +
    // buffered frequency (other threads' buffered ops are covered by the
    // tally, a one-sided overestimate until their epoch merges).
    const uint64_t pending = shard.pending_ops.load(std::memory_order_acquire);
    uint64_t base;
    if (lock_free_) {
      base = EstimateLockFree(shard, key);
    } else {
      util::ReaderMutexLock lock(shard.mu);
      base = shard.pending
                 ? CombinedEstimate(*shard.live, *shard.pending, key,
                                    /*atomic_reads=*/false)
                 : shard.live->Estimate(key);
    }
    return base + pending;
  }
  if (lock_free_) return EstimateLockFree(shard, key);
  util::ReaderMutexLock lock(shard.mu);
  if (shard.pending) {
    return CombinedEstimate(*shard.live, *shard.pending, key,
                            /*atomic_reads=*/false);
  }
  return shard.live->Estimate(key);
}

void ConcurrentSbf::InsertBatch(const uint64_t* keys, size_t n,
                                uint64_t count) {
  if (n == 0) return;
  if (delta_active_) {
    // Accumulate into the calling thread's maps; the shared per-shard
    // pending tallies are published once per shard per chunk rather than
    // per key (the buffered ops only need to be covered by the tally by
    // the time InsertBatch returns — mid-chunk they are not yet completed
    // inserts). A chunk's forced mid-accumulation merge may apply entries
    // whose tally is still unpublished; the later publish then transiently
    // over-covers (the safe direction) until the next merge rebalances.
    DeltaSet& set = CallerDeltaSet();
    util::MutexLock lock(set.mu);
    uint64_t* chunk_pending = set.batch_pending();
    uint32_t* touched = set.batch_touched();
    size_t at = 0;
    while (at < n) {
      const size_t chunk_end = std::min(n, at + kDeltaBatchChunk);
      uint32_t num_touched = 0;
      for (size_t i = at; i < chunk_end; ++i) {
        const uint32_t s = ShardOf(keys[i]);
        DeltaSet::ShardState& state = set.state(s);
        if (!DeltaAccumulate(set.map(s), keys[i], count, &state.size)) {
          MergeShardDelta(set, s);
          const bool ok =
              DeltaAccumulate(set.map(s), keys[i], count, &state.size);
          SBF_DCHECK(ok);
          (void)ok;
        }
        if (chunk_pending[s] == 0) touched[num_touched++] = s;
        chunk_pending[s] += count;
      }
      for (uint32_t t = 0; t < num_touched; ++t) {
        const uint32_t s = touched[t];
        Shard& shard = *shards_[s];
        DeltaSet::ShardState& state = set.state(s);
        const uint64_t occurrences = chunk_pending[s];
        const uint64_t group_keys = count > 0 ? occurrences / count : 0;
        chunk_pending[s] = 0;
        shard.pending_ops.fetch_add(occurrences, std::memory_order_relaxed);
        state.pending_contrib += occurrences;
        state.net_ops += occurrences;
        state.ops_since_merge += group_keys;
        if (!state.epoch_open) {
          state.epoch_open = true;
          if (set.options().max_epoch_micros > 0) {
            state.epoch_start = std::chrono::steady_clock::now();
          }
        }
        metrics_.RecordInsert(s, group_keys);
        metrics_.RecordBatch(s);
        if (ShouldMergeEpoch(set, state)) MergeShardDelta(set, s);
      }
      at = chunk_end;
    }
    return;
  }
  std::vector<uint64_t> grouped;
  std::vector<uint32_t> order;
  std::vector<size_t> starts;
  GroupByShard(*this, keys, n, &grouped, &order, &starts);
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    const size_t begin = starts[s], end = starts[s + 1];
    if (begin == end) continue;
    Shard& shard = *shards_[s];
    if (lock_free_) {
      InsertLockFreeBatch(shard, grouped.data() + begin, end - begin, count);
    } else {
      util::WriterMutexLock lock(shard.mu);
      (shard.pending ? *shard.pending : *shard.live)
          .InsertBatch(grouped.data() + begin, end - begin, count);
    }
    metrics_.RecordInsert(s, end - begin);
    metrics_.RecordBatch(s);
  }
}

void ConcurrentSbf::EstimateBatch(const uint64_t* keys, size_t n,
                                  uint64_t* out) const {
  if (n == 0) return;
  std::vector<uint64_t> grouped;
  std::vector<uint32_t> order;
  std::vector<size_t> starts;
  GroupByShard(*this, keys, n, &grouped, &order, &starts);
  std::vector<uint64_t> shard_out(n);
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    const size_t begin = starts[s], end = starts[s + 1];
    if (begin == end) continue;
    const Shard& shard = *shards_[s];
    metrics_.RecordEstimate(s, end - begin);
    metrics_.RecordBatch(s);
    uint64_t pending = 0;
    if (delta_active_) {
      DrainOwnShard(s);
      pending = shard.pending_ops.load(std::memory_order_acquire);
    }
    if (lock_free_) {
      EstimateLockFreeBatch(shard, grouped.data() + begin, end - begin,
                            shard_out.data() + begin);
    } else {
      util::ReaderMutexLock lock(shard.mu);
      if (shard.pending) {
        for (size_t i = begin; i < end; ++i) {
          shard_out[i] = CombinedEstimate(*shard.live, *shard.pending,
                                          grouped[i], /*atomic_reads=*/false);
        }
      } else {
        shard.live->EstimateBatch(grouped.data() + begin, end - begin,
                                  shard_out.data() + begin);
      }
    }
    if (pending > 0) {
      for (size_t i = begin; i < end; ++i) shard_out[i] += pending;
    }
  }
  for (size_t i = 0; i < n; ++i) out[order[i]] = shard_out[i];
}

Status ConcurrentSbf::Merge(const ConcurrentSbf& other) {
  if (this == &other) {
    return Status::FailedPrecondition("ConcurrentSbf self-merge not supported");
  }
  if (!SameOptions(options_, other.options_)) {
    return Status::FailedPrecondition(
        "ConcurrentSbf merge requires identical options (shards, m, k, seed, "
        "policy, backing)");
  }
  // Mid-epoch deltas buffered against either operand must be observed:
  // drain both sides before the pointwise add (Flush only mutates counter
  // state, which is what Merge reads — logically const for `other`).
  const_cast<ConcurrentSbf&>(other).Flush();
  Flush();
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    Shard& dst = *shards_[s];
    const Shard& src = *other.shards_[s];
    // The pair guard's std::scoped_lock deadlock-avoidance handles
    // concurrent A.Merge(B) and B.Merge(A).
    util::SharedMutexLockPair locks(dst.mu, src.mu);
    if (lock_free_) {
      // Atomic pointwise add so the merge is race-free against concurrent
      // lock-free inserters on either operand.
      uint64_t* dst_words = FilterWords(*dst.live);
      const uint64_t* src_words = FilterWords(*src.live);
      for (uint64_t i = 0; i < shard_m_; ++i) {
        const uint64_t add = AtomicLoad(src_words[i]);
        if (add > 0) {
          std::atomic_ref<uint64_t>(dst_words[i])
              .fetch_add(add, std::memory_order_relaxed);
        }
      }
      dst.net_items.fetch_add(
          src.net_items.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    } else {
      const Status status = UnionInto(dst.live.get(), *src.live);
      if (!status.ok()) return status;
    }
  }
  SBF_AUDIT_INVARIANTS(*this);
  return Status::Ok();
}

SpectralBloomFilter ConcurrentSbf::SnapshotShard(size_t i) const {
  const_cast<ConcurrentSbf*>(this)->Flush();
  const Shard& shard = *shards_[i];
  if (lock_free_) {
    const SpectralBloomFilter& live =
        *shard.live_ptr.load(std::memory_order_acquire);
    SpectralBloomFilter snap = live.CloneEmpty();
    const uint64_t* words = FilterWords(live);
    const uint64_t m = live.m();
    for (uint64_t j = 0; j < m; ++j) {
      const uint64_t v = AtomicLoad(words[j]);
      if (v > 0) snap.mutable_counters().Set(j, v);
    }
    snap.set_total_items(shard.net_items.load(std::memory_order_relaxed));
    return snap;
  }
  util::ReaderMutexLock lock(shard.mu);
  return *shard.live;
}

uint64_t ConcurrentSbf::TotalItems() const {
  const_cast<ConcurrentSbf*>(this)->Flush();
  uint64_t total = 0;
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    const Shard& shard = *shards_[s];
    if (lock_free_) {
      total += shard.net_items.load(std::memory_order_relaxed);
    } else {
      util::ReaderMutexLock lock(shard.mu);
      total += shard.live->total_items();
      if (shard.pending) total += shard.pending->total_items();
    }
  }
  return total;
}

size_t ConcurrentSbf::MemoryUsageBits() const {
  size_t total = 0;
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    const Shard& shard = *shards_[s];
    if (lock_free_) {
      total += shard.live_ptr.load(std::memory_order_acquire)
                   ->MemoryUsageBits();
    } else {
      util::ReaderMutexLock lock(shard.mu);
      total += shard.live->MemoryUsageBits();
    }
  }
  if (registry_ != nullptr) {
    util::MutexLock lock(registry_->mu);
    for (const std::shared_ptr<DeltaSet>& set : registry_->sets) {
      util::MutexLock set_lock(set->mu);
      total += set->MemoryBits();
    }
  }
  return total;
}

std::string ConcurrentSbf::Name() const {
  std::string name = "CSBF-";
  name += options_.policy == SbfPolicy::kMinimumSelection ? "MS" : "MI";
  name += "/";
  name += CounterBackingName(options_.backing);
  name += "[S=" + std::to_string(options_.num_shards) + "]";
  if (delta_active_) name += "+delta";
  return name;
}

FilterHealth ConcurrentSbf::Health() const {
  // The fill scan must observe mid-epoch inserts (the latent-bug fix this
  // PR pins with a regression test): drain all buffers first, then report
  // anything re-buffered by racing writers in pending_delta_ops.
  const_cast<ConcurrentSbf*>(this)->Flush();
  FilterHealth health;
  health.shard_fill.reserve(options_.num_shards);
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    const Shard& shard = *shards_[s];
    uint64_t m = 0;
    OccupancyCounts counts;
    SaturationStats stats;
    if (lock_free_) {
      const SpectralBloomFilter& live =
          *shard.live_ptr.load(std::memory_order_acquire);
      m = live.m();
      const uint64_t* words = FilterWords(live);
      for (uint64_t j = 0; j < m; ++j) {
        const uint64_t v = AtomicLoad(words[j]);
        counts.nonzero += v > 0;
        counts.saturated += v == ~0ull;
      }
      stats = live.counters().saturation();
    } else {
      util::ReaderMutexLock lock(shard.mu);
      m = shard.live->m();
      counts = shard.live->counters().ScanOccupancy();
      stats = shard.live->counters().saturation();
    }
    health.counters += m;
    health.nonzero_counters += counts.nonzero;
    health.saturated_counters += counts.saturated;
    health.saturation_clamps += stats.saturation_clamps;
    health.underflow_clamps += stats.underflow_clamps;
    health.shard_fill.push_back(
        m == 0 ? 0.0
               : static_cast<double>(counts.nonzero) / static_cast<double>(m));
  }
  health.pending_delta_ops = PendingDeltaOps();
  FinalizeHealth(options_.k, options_.health, &health);
  return health;
}

SaturationStats ConcurrentSbf::saturation() const {
  SaturationStats stats;
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    const Shard& shard = *shards_[s];
    if (lock_free_) {
      stats += shard.live_ptr.load(std::memory_order_acquire)
                   ->counters()
                   .saturation();
    } else {
      util::ReaderMutexLock lock(shard.mu);
      stats += shard.live->counters().saturation();
    }
  }
  return stats;
}

void ConcurrentSbf::ExpandShard(Shard& shard,
                                std::unique_ptr<SpectralBloomFilter> pending) {
  const uint64_t new_m = pending->m();
  const HashFamily::Kind kind = options_.hash_kind;
  if (lock_free_) {
    // Lock-free readers/writers never touch shard.mu, so taking it here is
    // uncontended — it exists to serialize against other whole-filter
    // operations (Merge, snapshots) and to keep the unique_ptr swaps below
    // provable under thread-safety analysis.
    util::WriterMutexLock lock(shard.mu);
    const uint64_t old_m = shard.live->m();
    const uint64_t c = new_m / old_m;
    // Open the window: new writers divert to pending, then drain writers
    // that loaded a null pending and still target live (the seq-cst pair
    // of InsertLockFree/RemoveLockFree; both sides are on sbf_analyze's
    // allowlist — DESIGN.md §11 "window handshake").
    shard.pending = std::move(pending);
    shard.pending_ptr.store(shard.pending.get(), std::memory_order_seq_cst);
    while (shard.live_writers.load(std::memory_order_seq_cst) != 0) {
      std::this_thread::yield();
    }
    // live is now frozen for writers; fold-add it into pending while
    // readers keep combining both filters. fetch_add tolerates the
    // concurrent window writes landing in pending.
    const uint64_t* old_words = FilterWords(*shard.live);
    uint64_t* new_words = FilterWords(*shard.pending);
    for (uint64_t i = 0; i < old_m; ++i) {
      const uint64_t v = AtomicLoad(old_words[i]);
      if (v == 0) continue;
      for (uint64_t rep = 0; rep < c; ++rep) {
        std::atomic_ref<uint64_t>(new_words[FoldPosition(kind, old_m, c, i,
                                                         rep)])
            .fetch_add(v, std::memory_order_relaxed);
      }
    }
    shard.pending->mutable_counters().MergeSaturationStats(
        shard.live->counters().saturation());
    // Swap live first, clear pending second: a reader that still observes
    // the window combines the new filter with itself (a transient, one-
    // sided overestimate); a reader that observes it closed is coherence-
    // ordered after the swap and sees the folded filter. The old filter is
    // retired, not freed — unsynchronized readers may still hold it.
    shard.retired.push_back(std::move(shard.live));
    shard.live = std::move(shard.pending);
    shard.live_ptr.store(shard.live.get(), std::memory_order_release);
    shard.pending_ptr.store(nullptr, std::memory_order_release);
    return;
  }
  // Locked path: the window opens under the exclusive lock; migration runs
  // in short chunks so readers interleave between lock acquisitions.
  uint64_t old_m = 0;
  {
    util::WriterMutexLock lock(shard.mu);
    old_m = shard.live->m();
    shard.pending = std::move(pending);
  }
  const uint64_t c = new_m / old_m;
  for (uint64_t start = 0; start < old_m; start += kMigrateChunk) {
    util::WriterMutexLock lock(shard.mu);
    const uint64_t end = std::min(old_m, start + kMigrateChunk);
    for (uint64_t i = start; i < end; ++i) {
      const uint64_t v = shard.live->counters().Get(i);
      if (v == 0) continue;
      for (uint64_t rep = 0; rep < c; ++rep) {
        shard.pending->mutable_counters().Increment(
            FoldPosition(kind, old_m, c, i, rep), v);
      }
    }
  }
  util::WriterMutexLock lock(shard.mu);
  shard.pending->set_total_items(shard.pending->total_items() +
                                 shard.live->total_items());
  shard.pending->mutable_counters().MergeSaturationStats(
      shard.live->counters().saturation());
  shard.retired.push_back(std::move(shard.live));
  shard.live = std::move(shard.pending);
  shard.live_ptr.store(shard.live.get(), std::memory_order_release);
}

Status ConcurrentSbf::ExpandTo(uint64_t new_m) {
  if (new_m == options_.m) return Status::Ok();
  if (new_m < options_.m || new_m % options_.m != 0) {
    return Status::InvalidArgument(
        "ExpandTo needs new_m to be a multiple of the current m");
  }
  const uint64_t c = new_m / options_.m;
  const uint64_t new_shard_m = CeilDiv(new_m, options_.num_shards);
  if (new_shard_m != c * shard_m_) {
    // Rounding would desynchronize per-shard sizes from the fold factor
    // (and from what Deserialize derives). Guaranteed to hold when m is a
    // multiple of num_shards.
    return Status::InvalidArgument(
        "ExpandTo needs per-shard sizes to scale by the same factor as m "
        "(pick m divisible by num_shards)");
  }
  // Drain buffered deltas into the pre-expansion counters so the fold
  // migrates them; deltas buffered by racing writers during the expansion
  // re-hash at merge time and land through the window protocol.
  Flush();
  // Allocate every shard's pending filter up front — the only fallible
  // step — so a failure returns with the filter fully unexpanded rather
  // than half-migrated.
  std::vector<std::unique_ptr<SpectralBloomFilter>> pendings;
  pendings.reserve(options_.num_shards);
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    if (fault::ShouldFailAllocation()) {
      return Status::ResourceExhausted(
          "ConcurrentSbf expansion allocation failed at shard " +
          std::to_string(s));
    }
    SbfOptions shard_options = ShardOptions(options_, s);
    shard_options.m = new_shard_m;
    pendings.push_back(std::make_unique<SpectralBloomFilter>(shard_options));
  }
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    ExpandShard(*shards_[s], std::move(pendings[s]));
  }
  options_.m = new_m;
  shard_m_ = new_shard_m;
  SBF_AUDIT_INVARIANTS(*this);
  return Status::Ok();
}

StatusOr<bool> ConcurrentSbf::ExpandIfDegraded() {
  if (Health().state == HealthState::kHealthy) return false;
  Status status = ExpandTo(options_.m * 2);
  if (!status.ok()) return status;
  return true;
}

std::vector<uint8_t> ConcurrentSbf::Serialize() const {
  const_cast<ConcurrentSbf*>(this)->Flush();
  SBF_AUDIT_INVARIANTS(*this);
  wire::Writer payload;
  payload.PutVarint(options_.num_shards);
  payload.PutVarint(options_.m);
  payload.PutU64(options_.seed);
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    payload.PutFrame(SnapshotShard(s).Serialize());
  }
  return wire::SealFrame(wire::kMagicShardedSbf, wire::kFormatVersion,
                         std::move(payload));
}

StatusOr<ConcurrentSbf> ConcurrentSbf::Deserialize(wire::ByteSpan bytes) {
  auto reader = wire::OpenFrame(bytes, wire::kMagicShardedSbf,
                                wire::kFormatVersion, "sharded SBF");
  if (!reader.ok()) return reader.status();
  wire::Reader& in = reader.value();
  const uint64_t num_shards = in.ReadVarint();
  const uint64_t total_m = in.ReadVarint();
  const uint64_t seed = in.ReadU64();
  if (!in.ok()) return in.status();
  if (num_shards < 1 || num_shards > kMaxShards) {
    return Status::DataLoss("bad sharded SBF shard count");
  }
  if (total_m < 1) return Status::DataLoss("bad sharded SBF m");

  // Peel the embedded per-shard frames.
  std::vector<SpectralBloomFilter> shard_filters;
  shard_filters.reserve(num_shards);
  for (uint64_t s = 0; s < num_shards; ++s) {
    const wire::ByteSpan blob = in.ReadFrameSpan();
    if (!in.ok()) {
      return Status::DataLoss("sharded SBF truncated at shard " +
                              std::to_string(s));
    }
    auto shard = SpectralBloomFilter::Deserialize(blob);
    if (!shard.ok()) return shard.status();
    shard_filters.push_back(std::move(shard).value());
  }
  Status status = in.ExpectEnd("sharded SBF");
  if (!status.ok()) return status;

  // Reconstruct the frontend options from the header + shard 0, then check
  // every shard against the options it must have been built with. This
  // catches blob reordering, shard-count tampering and mixed-backing blobs.
  ConcurrentSbfOptions options;
  options.num_shards = static_cast<uint32_t>(num_shards);
  options.m = total_m;
  options.seed = seed;
  options.k = shard_filters[0].k();
  options.policy = shard_filters[0].options().policy;
  options.backing = shard_filters[0].options().backing;
  options.hash_kind = shard_filters[0].options().hash_kind;
  for (uint64_t s = 0; s < num_shards; ++s) {
    if (!SameShardOptions(shard_filters[s].options(),
                          ShardOptions(options, static_cast<uint32_t>(s)))) {
      return Status::DataLoss("sharded SBF shard " + std::to_string(s) +
                              " inconsistent with header");
    }
  }

  ConcurrentSbf filter(options);
  for (uint64_t s = 0; s < num_shards; ++s) {
    Shard& shard = *filter.shards_[s];
    // `filter` is not yet shared, but the lock keeps the guarded access
    // provable (and is free).
    util::WriterMutexLock lock(shard.mu);
    // Assign through the stable live object so live_ptr stays valid.
    *shard.live = std::move(shard_filters[s]);
    if (filter.lock_free_) {
      shard.net_items.store(shard.live->total_items(),
                            std::memory_order_relaxed);
      shard.live->set_total_items(0);
    }
  }
  SBF_AUDIT_INVARIANTS(filter);
  return filter;
}


Status ConcurrentSbf::CheckInvariants() const {
  if (shards_.size() != options_.num_shards || options_.num_shards < 1) {
    return Status::FailedPrecondition(
        "concurrent SBF: shard count disagrees with options");
  }
  if (shard_m_ != CeilDiv(options_.m, options_.num_shards)) {
    return Status::FailedPrecondition(
        "concurrent SBF: per-shard size disagrees with m / num_shards");
  }
  if (metrics_.num_shards() != options_.num_shards) {
    return Status::FailedPrecondition(
        "concurrent SBF: metrics shard count disagrees with options");
  }
  if (delta_active_) {
    if (registry_ == nullptr) {
      return Status::FailedPrecondition(
          "concurrent SBF: delta buffering active but registry missing");
    }
    util::MutexLock lock(registry_->mu);
    if (registry_->owner != this) {
      return Status::FailedPrecondition(
          "concurrent SBF: delta registry owner link broken");
    }
  }
  for (uint32_t i = 0; i < options_.num_shards; ++i) {
    const Shard& shard = *shards_[i];
    // Audit requires quiescence, so the shared lock is uncontended; it
    // makes the live/pending reads provable.
    util::ReaderMutexLock lock(shard.mu);
    if (shard.live == nullptr) {
      return Status::FailedPrecondition(
          "concurrent SBF: shard has no live filter");
    }
    if (shard.pending != nullptr ||
        shard.pending_ptr.load(std::memory_order_acquire) != nullptr) {
      return Status::FailedPrecondition(
          "concurrent SBF: shard caught inside an expansion window (audit "
          "requires quiescence)");
    }
    if (shard.live_ptr.load(std::memory_order_acquire) != shard.live.get()) {
      return Status::FailedPrecondition(
          "concurrent SBF: shard live pointer mirror out of sync");
    }
    if (!SameShardOptions(shard.live->options(), ShardOptions(options_, i))) {
      return Status::FailedPrecondition(
          "concurrent SBF: shard filter options disagree with the derived "
          "per-shard options");
    }
    const Status status = shard.live->CheckInvariants();
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

}  // namespace sbf
