#include "core/sliding_window.h"

#include "util/check.h"

namespace sbf {

SlidingWindowFilter::SlidingWindowFilter(
    std::unique_ptr<FrequencyFilter> filter, size_t window_size)
    : filter_(std::move(filter)), window_size_(window_size) {
  SBF_CHECK_MSG(filter_ != nullptr, "sliding window needs a filter");
  SBF_CHECK_MSG(window_size_ >= 1, "window size must be >= 1");
}

void SlidingWindowFilter::Push(uint64_t key) {
  filter_->Insert(key);
  window_.push_back(key);
  while (window_.size() > window_size_) {
    filter_->Remove(window_.front());
    window_.pop_front();
  }
}

}  // namespace sbf
