#include "core/sliding_window.h"

#include "io/filter_codec.h"
#include "util/check.h"
#include "util/audit.h"

namespace sbf {

SlidingWindowFilter::SlidingWindowFilter(
    std::unique_ptr<FrequencyFilter> filter, size_t window_size)
    : filter_(std::move(filter)), window_size_(window_size) {
  SBF_CHECK_MSG(filter_ != nullptr, "sliding window needs a filter");
  SBF_CHECK_MSG(window_size_ >= 1, "window size must be >= 1");
}

void SlidingWindowFilter::Push(uint64_t key) {
  filter_->Insert(key);
  window_.push_back(key);
  while (window_.size() > window_size_) {
    filter_->Remove(window_.front());
    window_.pop_front();
  }
}

std::vector<uint8_t> SlidingWindowFilter::Serialize() const {
  SBF_AUDIT_INVARIANTS(*this);
  wire::Writer payload;
  payload.PutVarint(window_size_);
  payload.PutVarint(window_.size());
  for (const uint64_t key : window_) payload.PutU64(key);
  payload.PutFrame(filter_->Serialize());
  return wire::SealFrame(wire::kMagicSlidingWindow, wire::kFormatVersion,
                         std::move(payload));
}

StatusOr<SlidingWindowFilter> SlidingWindowFilter::Deserialize(
    wire::ByteSpan bytes) {
  auto reader = wire::OpenFrame(bytes, wire::kMagicSlidingWindow,
                                wire::kFormatVersion, "sliding window");
  if (!reader.ok()) return reader.status();
  wire::Reader& in = reader.value();
  const uint64_t window_size = in.ReadVarint();
  const uint64_t fill = in.ReadVarint();
  if (!in.ok()) return in.status();
  if (window_size < 1) {
    return Status::DataLoss("sliding window size must be >= 1");
  }
  // Each in-window key occupies 8 payload bytes, so this bounds the deque
  // allocation by the actual message size.
  if (fill > window_size || fill > in.remaining() / 8) {
    return Status::DataLoss("sliding window fill out of range");
  }
  std::deque<uint64_t> window;
  for (uint64_t i = 0; i < fill; ++i) window.push_back(in.ReadU64());
  const wire::ByteSpan filter_frame = in.ReadFrameSpan();
  if (!in.ok()) return in.status();
  Status status = in.ExpectEnd("sliding window");
  if (!status.ok()) return status;

  auto inner = DeserializeFilter(filter_frame);
  if (!inner.ok()) return inner.status();
  SlidingWindowFilter filter(std::move(inner).value(),
                             static_cast<size_t>(window_size));
  filter.window_ = std::move(window);
  SBF_AUDIT_INVARIANTS(filter);
  return filter;
}


Status SlidingWindowFilter::CheckInvariants() const {
  if (filter_ == nullptr) {
    return Status::FailedPrecondition("sliding window: no inner filter");
  }
  if (window_size_ < 1) {
    return Status::FailedPrecondition("sliding window: window size < 1");
  }
  if (window_.size() > window_size_) {
    return Status::FailedPrecondition(
        "sliding window: retained occurrences exceed the window size");
  }
  return filter_->CheckInvariants();
}

}  // namespace sbf
