#ifndef SBF_CORE_CONCURRENT_SBF_H_
#define SBF_CORE_CONCURRENT_SBF_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/delta_buffer.h"
#include "core/frequency_filter.h"
#include "core/spectral_bloom_filter.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace sbf {

// Configuration of a ConcurrentSbf. Mirrors SbfOptions plus the shard
// count; `m` is the TOTAL counter budget, split evenly across shards
// (each shard gets ceil(m / num_shards) counters).
struct ConcurrentSbfOptions {
  uint64_t m = 0;           // total counters across all shards (required)
  uint32_t k = 5;           // hash functions per shard
  SbfPolicy policy = SbfPolicy::kMinimumSelection;
  CounterBacking backing = CounterBacking::kCompact;
  uint64_t seed = 0;        // base seed; per-shard seeds are derived
  HashFamily::Kind hash_kind = HashFamily::Kind::kModuloMultiply;
  uint32_t num_shards = 8;  // S independent shards (required >= 1)
  // Verdict thresholds for Health() / ExpandIfDegraded(). Process-local
  // tuning — not serialized.
  HealthThresholds health;
  // Epoch-merged thread-local write buffering (effective only under
  // Minimum Selection; see DeltaBufferOptions). Process-local tuning —
  // not serialized.
  DeltaBufferOptions delta;
};

// Thread-safe sharded frontend over the Spectral Bloom Filter: keys are
// hash-partitioned across S independent shards, each a SpectralBloomFilter
// with its own CounterVector and hash family. Because the partition is by
// key, every key's k counters live in exactly one shard, so each shard is
// a complete SBF over its key subset and the paper's one-sided guarantee
// (Estimate(x) >= f_x, Claims 1/4) holds shard-locally and therefore
// globally.
//
// Synchronization model (see DESIGN.md "Concurrency model"):
//
//  * kFixed64 backing + Minimum Selection: LOCK-FREE. 64-bit counters are
//    word-aligned, so Insert/Remove are relaxed std::atomic_ref
//    fetch_add/fetch_sub and Estimate is a relaxed load. Counters are
//    monotone non-decreasing under insert-only load, so a concurrent
//    Estimate is always >= the frequency of all *completed* inserts; exact
//    totals require quiescence (e.g. joining writers first).
//  * Every other backing/policy combination: striped per-shard
//    std::shared_mutex (writers exclusive, readers shared). The compact
//    backing's push-to-slack expansion moves neighbouring counters, so
//    locking finer than a shard is unsound; throughput scales by raising
//    num_shards, which is exactly the striping knob.
//
// Delta-buffered writes (DESIGN.md "Delta-buffered concurrency"): under
// Minimum Selection (whose increments commute), inserts accumulate into
// per-thread, per-shard open-addressed delta maps and are merged into the
// shard counters on an epoch boundary — a size threshold, a staleness
// threshold, or an explicit Flush(). Removes are buffered too on the
// lock-free backing (its counters wrap mod 2^64, so merge order cannot
// lose occurrences); on clamped backings a remove flushes all buffers and
// then applies directly, because a remove merged ahead of the insert it
// cancels would clamp at zero. Each shard keeps a pending-op tally
// that is raised before an insert is buffered and lowered (release-
// ordered) only after the merge applies it, and readers return
// shard_min + pending, so estimates never under-report completed inserts
// even mid-epoch — the same one-sided dual-write discipline as ExpandTo's
// expansion window. The calling thread's own buffers are drained before it
// estimates, so single-threaded use remains exactly a plain SBF; thread
// exit drains that thread's buffers, so after a join no deltas are
// outstanding. Whole-filter operations (Serialize, Merge, Health,
// TotalItems, snapshots, expansion) force a full Flush() first. Minimal
// Increase reads counters before lifting them — its updates do not
// commute — so MI filters always bypass the buffers and take the direct
// path.
//
// Memory ordering: counter atomics are std::memory_order_relaxed; the
// pending-op tallies pair an acquire read with a release decrement. The
// filter promises per-counter atomicity and one-sided monotonicity, not
// cross-counter snapshot consistency — the same semantics the one-sided
// error analysis needs. Callers wanting exact equality with a serial
// reference (tests, Serialize) must quiesce writers first; thread join
// provides the needed happens-before edge.
class ConcurrentSbf final : public FrequencyFilter {
 public:
  explicit ConcurrentSbf(ConcurrentSbfOptions options);
  ~ConcurrentSbf() override;

  // Moves drain the source's buffered deltas first (cheap when none are
  // outstanding) and re-point its delta registry; like all whole-filter
  // operations they require external synchronization.
  ConcurrentSbf(ConcurrentSbf&& other) noexcept;
  ConcurrentSbf& operator=(ConcurrentSbf&& other) noexcept;

  // --- FrequencyFilter (thread-safe) -------------------------------------

  void Insert(uint64_t key, uint64_t count = 1) override;
  // Same contract as SpectralBloomFilter::Remove: only remove occurrences
  // previously inserted. Under Minimal Increase deletions may create false
  // negatives (the paper's Section 3.2 caveat).
  void Remove(uint64_t key, uint64_t count = 1) override;
  [[nodiscard]] uint64_t Estimate(uint64_t key) const override;
  [[nodiscard]] size_t MemoryUsageBits() const override;
  [[nodiscard]] std::string Name() const override;

  // --- batch API ----------------------------------------------------------

  // Batched ops (FrequencyFilter overrides; the vector conveniences come
  // from the base class). Keys are grouped by destination shard first so
  // each shard's lock is taken once per batch and its keys run through the
  // per-shard hash-ahead + prefetch kernels (SpectralBloomFilter::
  // InsertBatch/EstimateBatch under the lock, windowed atomic pipelines on
  // the lock-free path). On the delta path, batched inserts accumulate
  // into the calling thread's buffers with the pending tally published
  // once per shard per chunk. EstimateBatch fills `out` in input order.
  void InsertBatch(const uint64_t* keys, size_t n,
                   uint64_t count = 1) override;
  void EstimateBatch(const uint64_t* keys, size_t n,
                     uint64_t* out) const override;
  using FrequencyFilter::EstimateBatch;
  using FrequencyFilter::InsertBatch;

  // --- algebra ------------------------------------------------------------

  // Pointwise counter addition of `other` into this filter (multiset
  // union), shard by shard via the sbf_algebra UnionInto. Requires
  // identical options (shards, m, k, seeds, policy, backing). Flushes both
  // operands' delta buffers first so mid-epoch state is never missed. Safe
  // against concurrent operations on both operands; self-merge is rejected.
  Status Merge(const ConcurrentSbf& other);

  // --- serialization ------------------------------------------------------

  // 'SBcs' wire frame (io/wire.h): {varint num_shards, varint m, u64 seed,
  // embedded per-shard SpectralBloomFilter frames}, so distributed
  // consumers (Bloomjoin, iceberg sites) can exchange sharded filters or
  // peel individual shards. Drains all delta buffers, then takes a
  // per-shard snapshot; concurrent writers make the snapshot a valid
  // interleaving, not a point-in-time image. Delta tuning is process-local
  // and not serialized.
  [[nodiscard]] std::vector<uint8_t> Serialize() const override;
  static StatusOr<ConcurrentSbf> Deserialize(wire::ByteSpan bytes);

  // Audits the sharding layout: shard count and per-shard options (sizes,
  // derived seeds, policy, backing) against options_, no shard caught
  // mid-expansion, the delta registry's ownership link, and every shard
  // filter's own validator. Requires quiescence, like Serialize().
  Status CheckInvariants() const override;

  // --- introspection -------------------------------------------------------

  [[nodiscard]] const ConcurrentSbfOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] uint32_t num_shards() const noexcept {
    return options_.num_shards;
  }
  [[nodiscard]] uint64_t shard_m() const noexcept { return shard_m_; }
  // True when Insert/Remove/Estimate run without taking any lock.
  [[nodiscard]] bool IsLockFree() const noexcept { return lock_free_; }
  // True when writes go through the epoch-merged delta buffers (Minimum
  // Selection with options().delta.enabled).
  [[nodiscard]] bool IsDeltaBuffered() const noexcept {
    return delta_active_;
  }

  // Shard index for a key (the routing function; exposed for tests).
  [[nodiscard]] uint32_t ShardOf(uint64_t key) const noexcept;

  // Net inserted occurrences across all shards. Drains delta buffers
  // first. Exact only when quiescent.
  [[nodiscard]] uint64_t TotalItems() const;

  // Occurrences buffered-or-merging across all shards right now (the sum
  // of the per-shard pending tallies). Zero when quiescent and flushed.
  [[nodiscard]] uint64_t PendingDeltaOps() const noexcept;

  // Drains every thread's buffered deltas into the shard counters (the
  // explicit epoch boundary). Buffered updates are aggregated per key and
  // applied in ascending key order, so the flushed state is independent of
  // which threads buffered which ops. Safe under concurrent writers —
  // their new ops simply start the next epoch. No-op when delta buffering
  // is inactive.
  void Flush();

  // Read-only view of one shard's filter. Caller must guarantee quiescence
  // and a prior Flush() (no concurrent writers or expansion) while holding
  // the reference. The quiescence contract replaces the shard lock here —
  // a capability the analysis cannot express (DESIGN.md §11), hence the
  // explicit opt-out.
  [[nodiscard]] const SpectralBloomFilter& shard(size_t i) const
      SBF_NO_THREAD_SAFETY_ANALYSIS {
    return *shards_[i]->live;
  }

  // A consistent copy of shard i (locks the shard; lock-free counters are
  // read atomically). Drains delta buffers first. Safe under concurrent
  // writers.
  [[nodiscard]] SpectralBloomFilter SnapshotShard(size_t i) const;

  // Per-shard operation counters (inserts/removes/estimates/batches plus
  // delta-epoch merge tallies).
  [[nodiscard]] const ShardMetrics& metrics() const noexcept {
    return metrics_;
  }

  // Internal: drains one registered DeltaSet into the shard counters.
  // Called by the thread-exit hook in core/delta_buffer.cc (under the
  // registry mutex) — use Flush() instead.
  void DrainDeltaSet(DeltaSet& set);

  // --- lifecycle: health & online expansion --------------------------------

  // Live health snapshot across all shards: global fill/FPR, summed clamp
  // tallies, plus per-shard fill ratios and their max/mean skew (a skewed
  // router or key distribution degrades one shard long before the global
  // fill shows it). Drains delta buffers first so mid-epoch inserts are
  // visible to the fill scan; ops buffered by still-racing writers after
  // the drain are reported in FilterHealth::pending_delta_ops. Safe under
  // concurrent writers on the lock-free path (counters are read
  // atomically); on the locked path each shard is scanned under its shared
  // lock.
  [[nodiscard]] FilterHealth Health() const override;

  // Combined clamp-event tallies of all shards. The lock-free fast path
  // updates 64-bit counters with raw atomics and cannot clamp (nor tally),
  // so nonzero values only appear for the locked backings.
  [[nodiscard]] SaturationStats saturation() const;

  // Grows the filter to `new_m` total counters, shard at a time, without
  // blocking readers. Drains delta buffers first (buffered keys re-hash at
  // merge time, so deltas buffered *during* the expansion land at the
  // key's new positions via the window protocol). Per shard the protocol
  // opens a dual-write window:
  //
  //   1. An empty `pending` filter of the new shard size is published
  //      (all shards' pendings are allocated up front, so a failed
  //      allocation returns ResourceExhausted with the filter fully
  //      unexpanded).
  //   2. Writers that observe the window route their updates to `pending`
  //      only, at the key's new-size hash positions; in-flight writers
  //      still targeting `live` are drained (lock-free path: a seq-cst
  //      writer refcount; locked path: the shard's exclusive lock).
  //   3. `live` — now frozen — is fold-added into `pending`: old counter
  //      i's value is added onto its c preimage positions (the same
  //      position correspondence as SpectralBloomFilter::ExpandTo), in
  //      chunks, so locked-path readers interleave between chunks and
  //      lock-free readers are never blocked at all.
  //   4. `pending` becomes `live`; the old filter is retired but kept
  //      alive so unsynchronized lock-free readers can finish against it.
  //
  // Readers inside a window combine both filters per probe
  // (min_j of live[old_j] + pending[new_j]), which never under-reports;
  // during step 3 a probe may transiently double-count a migrated chunk —
  // a one-sided (over) error, gone when the window closes. With quiescent
  // windows the result is bit-identical to expanding each shard serially.
  //
  // Requires new_m to be a multiple of m that keeps per-shard sizes exact
  // multiples (always true when m divides evenly into shards). Merge() and
  // Serialize() require quiescence while an expansion is in progress.
  Status ExpandTo(uint64_t new_m);

  // Doubles m when Health() is kDegraded or kSaturated. Returns whether an
  // expansion happened.
  StatusOr<bool> ExpandIfDegraded();

 private:
  // Per-shard state, laid out so that independently-written hot fields sit
  // on their own cache lines: with S threads hammering S different shards,
  // the only coherence traffic should be the counters those shards
  // actually share (none). The alignas(64) on the struct itself keeps
  // heap-allocated shards line-aligned; each member group below is one
  // 64-byte line. The counter arrays themselves are separate heap
  // allocations owned by the shard's SpectralBloomFilter, so two shards
  // never share a counter line either.
  struct alignas(64) Shard {
    explicit Shard(const SbfOptions& o)
        : live(std::make_unique<SpectralBloomFilter>(o)),
          live_ptr(live.get()) {}
    // -- line 0: read-mostly routing state (filter pointers) --------------
    // The serving filter. Lock-free readers/writers go through the atomic
    // mirror `live_ptr`; the unique_ptrs are only touched by the expansion
    // path and whole-filter operations, all under `mu` (quiescence-contract
    // readers like ConcurrentSbf::shard() opt out explicitly).
    std::unique_ptr<SpectralBloomFilter> live SBF_GUARDED_BY(mu);
    // Non-null only inside an expansion's dual-write window.
    std::unique_ptr<SpectralBloomFilter> pending SBF_GUARDED_BY(mu);
    std::atomic<SpectralBloomFilter*> live_ptr;
    std::atomic<SpectralBloomFilter*> pending_ptr{nullptr};
    // -- line 1: lock-free writer drain refcount (hot on every un-buffered
    // lock-free write; the expansion drain barrier, see ExpandTo step 2) --
    alignas(64) mutable std::atomic<uint32_t> live_writers{0};
    // -- line 2: net item tally for the lock-free path, where
    // filter.total_items() is bypassed and stays zero ---------------------
    alignas(64) std::atomic<uint64_t> net_items{0};
    // -- line 3: occurrences buffered in delta maps (or being merged) but
    // not yet applied to the counters. Raised before an insert is
    // buffered; lowered with release order only after the merge applies
    // it. Readers acquire-load it and add it to the shard minimum. --------
    alignas(64) mutable std::atomic<uint64_t> pending_ops{0};
    // -- line 4: the shard lock (locked path writers/readers; guards the
    // unique_ptrs) --------------------------------------------------------
    alignas(64) mutable util::SharedMutex mu;
    // -- cold: replaced filters, kept alive for lock-free readers that
    // loaded the old pointer; bounded by the number of expansions ---------
    std::vector<std::unique_ptr<SpectralBloomFilter>> retired
        SBF_GUARDED_BY(mu);
  };
  static_assert(alignof(util::SharedMutex) <= 64,
                "Shard line map assumes <=64-byte mutex alignment");

  // Raw 64-bit counter words of a filter's kFixed64 backing (counter i is
  // exactly word i), the substrate of the atomic fast path.
  static uint64_t* FilterWords(SpectralBloomFilter& f);
  static const uint64_t* FilterWords(const SpectralBloomFilter& f);

  void InsertLockFree(Shard& s, uint64_t key, uint64_t count);
  void RemoveLockFree(Shard& s, uint64_t key, uint64_t count);
  uint64_t EstimateLockFree(const Shard& s, uint64_t key) const;
  // Windowed (prefetch-pipelined) forms over a shard-local key slice.
  void InsertLockFreeBatch(Shard& s, const uint64_t* keys, size_t n,
                           uint64_t count);
  void EstimateLockFreeBatch(const Shard& s, const uint64_t* keys, size_t n,
                             uint64_t* out) const;
  // Applies count at the key's positions in `filter` with relaxed atomic
  // adds (negative deltas wrap — the lock-free Remove contract).
  void AtomicApply(SpectralBloomFilter& filter, uint64_t key, uint64_t count,
                   bool add);
  // Per-probe combined estimate across a dual-write window.
  uint64_t CombinedEstimate(const SpectralBloomFilter& live,
                            const SpectralBloomFilter& pending, uint64_t key,
                            bool atomic_reads) const;
  void ExpandShard(Shard& shard, std::unique_ptr<SpectralBloomFilter> pending);

  // --- delta-buffer plumbing (active iff delta_active_) -------------------
  // The calling thread's DeltaSet, created on first use.
  DeltaSet& CallerDeltaSet();
  // Buffers one op into the calling thread's map for `shard_index`;
  // publishes the pending tally for inserts and merges on an epoch
  // boundary.
  void BufferDelta(DeltaSet& set, uint32_t shard_index, uint64_t key,
                   uint64_t count, bool remove) SBF_REQUIRES(set.mu);
  // Epoch merge: drains `set`'s map for one shard into the shard counters
  // and releases its pending-tally contribution. Allocation-free (the
  // epoch-merge hot path).
  void MergeShardDelta(DeltaSet& set, uint32_t shard_index)
      SBF_REQUIRES(set.mu);
  // Applies one aggregated (key, net) delta to a shard with the atomic
  // apply, honouring any expansion window. Lock-free configurations only —
  // the locked-path flush applies nets through the decoded-view bulk path
  // under the shard lock instead.
  void ApplyNetDelta(Shard& s, uint64_t key, uint64_t net);
  // Drains the calling thread's buffers for one shard / all shards (the
  // read-your-writes half of the discipline; cheap no-ops when empty).
  void DrainOwnShard(uint32_t shard_index) const;
  void DrainOwnAll() const;
  // True when `state` crossed an epoch boundary (size or staleness).
  bool ShouldMergeEpoch(const DeltaSet& set,
                        const DeltaSet::ShardState& state) const;
  // Cross-thread canonical drain (the body of Flush()).
  void FlushAllBuffers();
  // Detaches registry_ from this instance (drain + null owner); used by
  // the destructor and move operations.
  void DetachRegistry();

  ConcurrentSbfOptions options_;
  uint64_t shard_m_ = 0;      // counters per shard
  uint64_t router_salt_ = 0;  // shard-routing hash salt (derived from seed)
  bool lock_free_ = false;
  bool delta_active_ = false;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable ShardMetrics metrics_;
  // Non-null iff delta_active_: every writing thread's buffered deltas.
  std::shared_ptr<DeltaRegistry> registry_;
};

// Per-shard SbfOptions for shard `index` of a sharded filter with the
// given options (exposed for tests and for Deserialize validation).
SbfOptions ShardOptions(const ConcurrentSbfOptions& options, uint32_t index);

}  // namespace sbf

#endif  // SBF_CORE_CONCURRENT_SBF_H_
