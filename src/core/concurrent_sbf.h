#ifndef SBF_CORE_CONCURRENT_SBF_H_
#define SBF_CORE_CONCURRENT_SBF_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/frequency_filter.h"
#include "core/spectral_bloom_filter.h"
#include "util/metrics.h"
#include "util/status.h"

namespace sbf {

// Configuration of a ConcurrentSbf. Mirrors SbfOptions plus the shard
// count; `m` is the TOTAL counter budget, split evenly across shards
// (each shard gets ceil(m / num_shards) counters).
struct ConcurrentSbfOptions {
  uint64_t m = 0;           // total counters across all shards (required)
  uint32_t k = 5;           // hash functions per shard
  SbfPolicy policy = SbfPolicy::kMinimumSelection;
  CounterBacking backing = CounterBacking::kCompact;
  uint64_t seed = 0;        // base seed; per-shard seeds are derived
  HashFamily::Kind hash_kind = HashFamily::Kind::kModuloMultiply;
  uint32_t num_shards = 8;  // S independent shards (required >= 1)
};

// Thread-safe sharded frontend over the Spectral Bloom Filter: keys are
// hash-partitioned across S independent shards, each a SpectralBloomFilter
// with its own CounterVector and hash family. Because the partition is by
// key, every key's k counters live in exactly one shard, so each shard is
// a complete SBF over its key subset and the paper's one-sided guarantee
// (Estimate(x) >= f_x, Claims 1/4) holds shard-locally and therefore
// globally.
//
// Synchronization model (see DESIGN.md "Concurrency model"):
//
//  * kFixed64 backing + Minimum Selection: LOCK-FREE. 64-bit counters are
//    word-aligned, so Insert/Remove are relaxed std::atomic_ref
//    fetch_add/fetch_sub and Estimate is a relaxed load. Counters are
//    monotone non-decreasing under insert-only load, so a concurrent
//    Estimate is always >= the frequency of all *completed* inserts; exact
//    totals require quiescence (e.g. joining writers first).
//  * Every other backing/policy combination: striped per-shard
//    std::shared_mutex (writers exclusive, readers shared). The compact
//    backing's push-to-slack expansion moves neighbouring counters, so
//    locking finer than a shard is unsound; throughput scales by raising
//    num_shards, which is exactly the striping knob.
//
// Memory ordering: all atomics are std::memory_order_relaxed. The filter
// promises per-counter atomicity and monotonicity, not cross-counter
// snapshot consistency — the same semantics the one-sided error analysis
// needs. Callers wanting exact equality with a serial reference (tests,
// Serialize) must quiesce writers first; thread join provides the needed
// happens-before edge.
class ConcurrentSbf final : public FrequencyFilter {
 public:
  explicit ConcurrentSbf(ConcurrentSbfOptions options);

  ConcurrentSbf(ConcurrentSbf&&) = default;
  ConcurrentSbf& operator=(ConcurrentSbf&&) = default;

  // --- FrequencyFilter (thread-safe) -------------------------------------

  void Insert(uint64_t key, uint64_t count = 1) override;
  // Same contract as SpectralBloomFilter::Remove: only remove occurrences
  // previously inserted. Under Minimal Increase deletions may create false
  // negatives (the paper's Section 3.2 caveat).
  void Remove(uint64_t key, uint64_t count = 1) override;
  uint64_t Estimate(uint64_t key) const override;
  size_t MemoryUsageBits() const override;
  std::string Name() const override;

  // --- batch API ----------------------------------------------------------

  // Batched ops (FrequencyFilter overrides; the vector conveniences come
  // from the base class). Keys are grouped by destination shard first so
  // each shard's lock is taken once per batch and its keys run through the
  // per-shard hash-ahead + prefetch kernels (SpectralBloomFilter::
  // InsertBatch/EstimateBatch under the lock, windowed atomic pipelines on
  // the lock-free path). EstimateBatch fills `out` in input order.
  void InsertBatch(const uint64_t* keys, size_t n,
                   uint64_t count = 1) override;
  void EstimateBatch(const uint64_t* keys, size_t n,
                     uint64_t* out) const override;
  using FrequencyFilter::EstimateBatch;
  using FrequencyFilter::InsertBatch;

  // --- algebra ------------------------------------------------------------

  // Pointwise counter addition of `other` into this filter (multiset
  // union), shard by shard via the sbf_algebra UnionInto. Requires
  // identical options (shards, m, k, seeds, policy, backing). Safe against
  // concurrent operations on both operands; self-merge is rejected.
  Status Merge(const ConcurrentSbf& other);

  // --- serialization ------------------------------------------------------

  // 'SBcs' wire frame (io/wire.h): {varint num_shards, varint m, u64 seed,
  // embedded per-shard SpectralBloomFilter frames}, so distributed
  // consumers (Bloomjoin, iceberg sites) can exchange sharded filters or
  // peel individual shards. Takes a per-shard snapshot; concurrent writers
  // make the snapshot a valid interleaving, not a point-in-time image.
  std::vector<uint8_t> Serialize() const override;
  static StatusOr<ConcurrentSbf> Deserialize(wire::ByteSpan bytes);

  // --- introspection -------------------------------------------------------

  const ConcurrentSbfOptions& options() const { return options_; }
  uint32_t num_shards() const { return options_.num_shards; }
  uint64_t shard_m() const { return shard_m_; }
  // True when Insert/Remove/Estimate run without taking any lock.
  bool IsLockFree() const { return lock_free_; }

  // Shard index for a key (the routing function; exposed for tests).
  uint32_t ShardOf(uint64_t key) const;

  // Net inserted occurrences across all shards. Exact only when quiescent.
  uint64_t TotalItems() const;

  // Read-only view of one shard's filter. Caller must guarantee quiescence
  // (no concurrent writers) while holding the reference.
  const SpectralBloomFilter& shard(size_t i) const { return shards_[i]->filter; }

  // A consistent copy of shard i (locks the shard; lock-free counters are
  // read atomically). Safe under concurrent writers.
  SpectralBloomFilter SnapshotShard(size_t i) const;

  // Per-shard operation counters (inserts/removes/estimates/batches).
  const ShardMetrics& metrics() const { return metrics_; }

 private:
  struct Shard {
    explicit Shard(const SbfOptions& o) : filter(o) {}
    SpectralBloomFilter filter;
    mutable std::shared_mutex mu;
    // Net item count for the lock-free path, where filter.total_items()
    // is bypassed and stays zero.
    std::atomic<uint64_t> net_items{0};
  };

  // Raw 64-bit counter words of a shard's kFixed64 backing (counter i is
  // exactly word i), the substrate of the atomic fast path.
  static uint64_t* ShardWords(Shard& s);
  static const uint64_t* ShardWords(const Shard& s);

  void InsertLockFree(Shard& s, uint64_t key, uint64_t count);
  void RemoveLockFree(Shard& s, uint64_t key, uint64_t count);
  uint64_t EstimateLockFree(const Shard& s, uint64_t key) const;
  // Windowed (prefetch-pipelined) forms over a shard-local key slice.
  void InsertLockFreeBatch(Shard& s, const uint64_t* keys, size_t n,
                           uint64_t count);
  void EstimateLockFreeBatch(const Shard& s, const uint64_t* keys, size_t n,
                             uint64_t* out) const;

  ConcurrentSbfOptions options_;
  uint64_t shard_m_ = 0;      // counters per shard
  uint64_t router_salt_ = 0;  // shard-routing hash salt (derived from seed)
  bool lock_free_ = false;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable ShardMetrics metrics_;
};

// Per-shard SbfOptions for shard `index` of a sharded filter with the
// given options (exposed for tests and for Deserialize validation).
SbfOptions ShardOptions(const ConcurrentSbfOptions& options, uint32_t index);

}  // namespace sbf

#endif  // SBF_CORE_CONCURRENT_SBF_H_
