#ifndef SBF_CORE_CONCURRENT_SBF_H_
#define SBF_CORE_CONCURRENT_SBF_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/frequency_filter.h"
#include "core/spectral_bloom_filter.h"
#include "util/metrics.h"
#include "util/status.h"

namespace sbf {

// Configuration of a ConcurrentSbf. Mirrors SbfOptions plus the shard
// count; `m` is the TOTAL counter budget, split evenly across shards
// (each shard gets ceil(m / num_shards) counters).
struct ConcurrentSbfOptions {
  uint64_t m = 0;           // total counters across all shards (required)
  uint32_t k = 5;           // hash functions per shard
  SbfPolicy policy = SbfPolicy::kMinimumSelection;
  CounterBacking backing = CounterBacking::kCompact;
  uint64_t seed = 0;        // base seed; per-shard seeds are derived
  HashFamily::Kind hash_kind = HashFamily::Kind::kModuloMultiply;
  uint32_t num_shards = 8;  // S independent shards (required >= 1)
  // Verdict thresholds for Health() / ExpandIfDegraded(). Process-local
  // tuning — not serialized.
  HealthThresholds health;
};

// Thread-safe sharded frontend over the Spectral Bloom Filter: keys are
// hash-partitioned across S independent shards, each a SpectralBloomFilter
// with its own CounterVector and hash family. Because the partition is by
// key, every key's k counters live in exactly one shard, so each shard is
// a complete SBF over its key subset and the paper's one-sided guarantee
// (Estimate(x) >= f_x, Claims 1/4) holds shard-locally and therefore
// globally.
//
// Synchronization model (see DESIGN.md "Concurrency model"):
//
//  * kFixed64 backing + Minimum Selection: LOCK-FREE. 64-bit counters are
//    word-aligned, so Insert/Remove are relaxed std::atomic_ref
//    fetch_add/fetch_sub and Estimate is a relaxed load. Counters are
//    monotone non-decreasing under insert-only load, so a concurrent
//    Estimate is always >= the frequency of all *completed* inserts; exact
//    totals require quiescence (e.g. joining writers first).
//  * Every other backing/policy combination: striped per-shard
//    std::shared_mutex (writers exclusive, readers shared). The compact
//    backing's push-to-slack expansion moves neighbouring counters, so
//    locking finer than a shard is unsound; throughput scales by raising
//    num_shards, which is exactly the striping knob.
//
// Memory ordering: all atomics are std::memory_order_relaxed. The filter
// promises per-counter atomicity and monotonicity, not cross-counter
// snapshot consistency — the same semantics the one-sided error analysis
// needs. Callers wanting exact equality with a serial reference (tests,
// Serialize) must quiesce writers first; thread join provides the needed
// happens-before edge.
class ConcurrentSbf final : public FrequencyFilter {
 public:
  explicit ConcurrentSbf(ConcurrentSbfOptions options);

  ConcurrentSbf(ConcurrentSbf&&) = default;
  ConcurrentSbf& operator=(ConcurrentSbf&&) = default;

  // --- FrequencyFilter (thread-safe) -------------------------------------

  void Insert(uint64_t key, uint64_t count = 1) override;
  // Same contract as SpectralBloomFilter::Remove: only remove occurrences
  // previously inserted. Under Minimal Increase deletions may create false
  // negatives (the paper's Section 3.2 caveat).
  void Remove(uint64_t key, uint64_t count = 1) override;
  [[nodiscard]] uint64_t Estimate(uint64_t key) const override;
  [[nodiscard]] size_t MemoryUsageBits() const override;
  [[nodiscard]] std::string Name() const override;

  // --- batch API ----------------------------------------------------------

  // Batched ops (FrequencyFilter overrides; the vector conveniences come
  // from the base class). Keys are grouped by destination shard first so
  // each shard's lock is taken once per batch and its keys run through the
  // per-shard hash-ahead + prefetch kernels (SpectralBloomFilter::
  // InsertBatch/EstimateBatch under the lock, windowed atomic pipelines on
  // the lock-free path). EstimateBatch fills `out` in input order.
  void InsertBatch(const uint64_t* keys, size_t n,
                   uint64_t count = 1) override;
  void EstimateBatch(const uint64_t* keys, size_t n,
                     uint64_t* out) const override;
  using FrequencyFilter::EstimateBatch;
  using FrequencyFilter::InsertBatch;

  // --- algebra ------------------------------------------------------------

  // Pointwise counter addition of `other` into this filter (multiset
  // union), shard by shard via the sbf_algebra UnionInto. Requires
  // identical options (shards, m, k, seeds, policy, backing). Safe against
  // concurrent operations on both operands; self-merge is rejected.
  Status Merge(const ConcurrentSbf& other);

  // --- serialization ------------------------------------------------------

  // 'SBcs' wire frame (io/wire.h): {varint num_shards, varint m, u64 seed,
  // embedded per-shard SpectralBloomFilter frames}, so distributed
  // consumers (Bloomjoin, iceberg sites) can exchange sharded filters or
  // peel individual shards. Takes a per-shard snapshot; concurrent writers
  // make the snapshot a valid interleaving, not a point-in-time image.
  [[nodiscard]] std::vector<uint8_t> Serialize() const override;
  static StatusOr<ConcurrentSbf> Deserialize(wire::ByteSpan bytes);

  // Audits the sharding layout: shard count and per-shard options (sizes,
  // derived seeds, policy, backing) against options_, no shard caught
  // mid-expansion, and every shard filter's own validator. Requires
  // quiescence, like Serialize().
  Status CheckInvariants() const override;

  // --- introspection -------------------------------------------------------

  [[nodiscard]] const ConcurrentSbfOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] uint32_t num_shards() const noexcept {
    return options_.num_shards;
  }
  [[nodiscard]] uint64_t shard_m() const noexcept { return shard_m_; }
  // True when Insert/Remove/Estimate run without taking any lock.
  [[nodiscard]] bool IsLockFree() const noexcept { return lock_free_; }

  // Shard index for a key (the routing function; exposed for tests).
  [[nodiscard]] uint32_t ShardOf(uint64_t key) const noexcept;

  // Net inserted occurrences across all shards. Exact only when quiescent.
  [[nodiscard]] uint64_t TotalItems() const;

  // Read-only view of one shard's filter. Caller must guarantee quiescence
  // (no concurrent writers or expansion) while holding the reference.
  [[nodiscard]] const SpectralBloomFilter& shard(size_t i) const {
    return *shards_[i]->live;
  }

  // A consistent copy of shard i (locks the shard; lock-free counters are
  // read atomically). Safe under concurrent writers.
  [[nodiscard]] SpectralBloomFilter SnapshotShard(size_t i) const;

  // Per-shard operation counters (inserts/removes/estimates/batches).
  [[nodiscard]] const ShardMetrics& metrics() const noexcept {
    return metrics_;
  }

  // --- lifecycle: health & online expansion --------------------------------

  // Live health snapshot across all shards: global fill/FPR, summed clamp
  // tallies, plus per-shard fill ratios and their max/mean skew (a skewed
  // router or key distribution degrades one shard long before the global
  // fill shows it). Safe under concurrent writers on the lock-free path
  // (counters are read atomically); on the locked path each shard is
  // scanned under its shared lock.
  [[nodiscard]] FilterHealth Health() const override;

  // Combined clamp-event tallies of all shards. The lock-free fast path
  // updates 64-bit counters with raw atomics and cannot clamp (nor tally),
  // so nonzero values only appear for the locked backings.
  [[nodiscard]] SaturationStats saturation() const;

  // Grows the filter to `new_m` total counters, shard at a time, without
  // blocking readers. Per shard the protocol opens a dual-write window:
  //
  //   1. An empty `pending` filter of the new shard size is published
  //      (all shards' pendings are allocated up front, so a failed
  //      allocation returns ResourceExhausted with the filter fully
  //      unexpanded).
  //   2. Writers that observe the window route their updates to `pending`
  //      only, at the key's new-size hash positions; in-flight writers
  //      still targeting `live` are drained (lock-free path: a seq-cst
  //      writer refcount; locked path: the shard's exclusive lock).
  //   3. `live` — now frozen — is fold-added into `pending`: old counter
  //      i's value is added onto its c preimage positions (the same
  //      position correspondence as SpectralBloomFilter::ExpandTo), in
  //      chunks, so locked-path readers interleave between chunks and
  //      lock-free readers are never blocked at all.
  //   4. `pending` becomes `live`; the old filter is retired but kept
  //      alive so unsynchronized lock-free readers can finish against it.
  //
  // Readers inside a window combine both filters per probe
  // (min_j of live[old_j] + pending[new_j]), which never under-reports;
  // during step 3 a probe may transiently double-count a migrated chunk —
  // a one-sided (over) error, gone when the window closes. With quiescent
  // windows the result is bit-identical to expanding each shard serially.
  //
  // Requires new_m to be a multiple of m that keeps per-shard sizes exact
  // multiples (always true when m divides evenly into shards). Merge() and
  // Serialize() require quiescence while an expansion is in progress.
  Status ExpandTo(uint64_t new_m);

  // Doubles m when Health() is kDegraded or kSaturated. Returns whether an
  // expansion happened.
  StatusOr<bool> ExpandIfDegraded();

 private:
  struct Shard {
    explicit Shard(const SbfOptions& o)
        : live(std::make_unique<SpectralBloomFilter>(o)),
          live_ptr(live.get()) {}
    // The serving filter. Lock-free readers/writers go through the atomic
    // mirror `live_ptr`; the unique_ptrs are only touched by the expansion
    // path (under `mu`) and by whole-filter operations.
    std::unique_ptr<SpectralBloomFilter> live;
    // Non-null only inside an expansion's dual-write window.
    std::unique_ptr<SpectralBloomFilter> pending;
    std::atomic<SpectralBloomFilter*> live_ptr;
    std::atomic<SpectralBloomFilter*> pending_ptr{nullptr};
    // Lock-free writers that may still be updating `live` (the expansion
    // drain barrier; see ExpandTo step 2).
    mutable std::atomic<uint32_t> live_writers{0};
    mutable std::shared_mutex mu;
    // Net item count for the lock-free path, where filter.total_items()
    // is bypassed and stays zero.
    std::atomic<uint64_t> net_items{0};
    // Replaced filters, kept alive for lock-free readers that loaded the
    // old pointer; bounded by the number of expansions.
    std::vector<std::unique_ptr<SpectralBloomFilter>> retired;
  };

  // Raw 64-bit counter words of a filter's kFixed64 backing (counter i is
  // exactly word i), the substrate of the atomic fast path.
  static uint64_t* FilterWords(SpectralBloomFilter& f);
  static const uint64_t* FilterWords(const SpectralBloomFilter& f);

  void InsertLockFree(Shard& s, uint64_t key, uint64_t count);
  void RemoveLockFree(Shard& s, uint64_t key, uint64_t count);
  uint64_t EstimateLockFree(const Shard& s, uint64_t key) const;
  // Windowed (prefetch-pipelined) forms over a shard-local key slice.
  void InsertLockFreeBatch(Shard& s, const uint64_t* keys, size_t n,
                           uint64_t count);
  void EstimateLockFreeBatch(const Shard& s, const uint64_t* keys, size_t n,
                             uint64_t* out) const;
  // Applies count at the key's positions in `filter` with relaxed atomic
  // adds (negative deltas wrap — the lock-free Remove contract).
  void AtomicApply(SpectralBloomFilter& filter, uint64_t key, uint64_t count,
                   bool add);
  // Per-probe combined estimate across a dual-write window.
  uint64_t CombinedEstimate(const SpectralBloomFilter& live,
                            const SpectralBloomFilter& pending, uint64_t key,
                            bool atomic_reads) const;
  void ExpandShard(Shard& shard, std::unique_ptr<SpectralBloomFilter> pending);

  ConcurrentSbfOptions options_;
  uint64_t shard_m_ = 0;      // counters per shard
  uint64_t router_salt_ = 0;  // shard-routing hash salt (derived from seed)
  bool lock_free_ = false;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable ShardMetrics metrics_;
};

// Per-shard SbfOptions for shard `index` of a sharded filter with the
// given options (exposed for tests and for Deserialize validation).
SbfOptions ShardOptions(const ConcurrentSbfOptions& options, uint32_t index);

}  // namespace sbf

#endif  // SBF_CORE_CONCURRENT_SBF_H_
