#include "core/analysis.h"

#include <cmath>

#include "util/check.h"

namespace sbf {

double BloomErrorRate(double gamma, uint32_t k) {
  SBF_DCHECK(gamma >= 0.0);
  return std::pow(1.0 - std::exp(-gamma), static_cast<double>(k));
}

double BloomErrorRateFor(uint64_t n, uint64_t m, uint32_t k) {
  const double gamma = static_cast<double>(n) * k / static_cast<double>(m);
  return BloomErrorRate(gamma, k);
}

double BloomErrorRateExact(uint64_t n, uint64_t m, uint32_t k) {
  const double p_zero =
      std::pow(1.0 - 1.0 / static_cast<double>(m),
               static_cast<double>(k) * static_cast<double>(n));
  return std::pow(1.0 - p_zero, static_cast<double>(k));
}

double DoubleStepProbability(uint64_t total_items, uint64_t m, uint32_t k) {
  const double trials =
      static_cast<double>(total_items) * static_cast<double>(k);
  const double q = 1.0 - 1.0 / static_cast<double>(m);
  const double p_none = std::pow(q, trials);
  const double p_one = trials * (1.0 / static_cast<double>(m)) *
                       std::pow(q, trials - 1.0);
  return 1.0 - p_none - p_one;
}

double ZipfExpectedRelativeError(uint64_t i, uint64_t n, uint32_t k,
                                 double z) {
  SBF_CHECK_MSG(n > k, "need n > k");
  // S_z = sum_{j=1..n} j^{k-z-1}, computed exactly (Equation (1) keeps the
  // sum; the closed form in the paper is only an integral bound).
  const double exponent = static_cast<double>(k) - z - 1.0;
  double s = 0.0;
  for (uint64_t j = 1; j <= n; ++j) {
    s += std::pow(static_cast<double>(j), exponent);
  }
  // k / (n-k)^k computed in log space to avoid overflow for large n, k.
  const double log_coeff =
      std::log(static_cast<double>(k)) -
      static_cast<double>(k) * std::log(static_cast<double>(n - k));
  return std::pow(static_cast<double>(i), z) * std::exp(log_coeff) * s;
}

double ZipfMeanRelativeErrorBound(uint64_t n, uint32_t k, double z) {
  SBF_CHECK_MSG(n > k, "need n > k");
  SBF_CHECK_MSG(z < static_cast<double>(k), "bound requires z < k");
  const double dn = static_cast<double>(n);
  const double dk = static_cast<double>(k);
  const double log_value = std::log(dk) + (dk + 1.0) * std::log(dn + 1.0) -
                           std::log(dn) - std::log(dk - z) -
                           std::log(z + 1.0) - dk * std::log(dn - dk);
  return std::exp(log_value);
}

double ZipfOptimalSkew(uint32_t k) {
  // Equation (2) is proportional to 1 / ((k - z)(z + 1)), whose maximizing
  // denominator sits at z = (k-1)/2. (The paper prints z_min = (k+1)/2,
  // which does not extremize its own expression — an apparent typo; the
  // derivative of (k-z)(z+1) vanishes at (k-1)/2.)
  return (static_cast<double>(k) - 1.0) / 2.0;
}

double ZipfRelativeErrorTailBound(uint64_t i, uint64_t n, uint32_t k, double z,
                                  double threshold) {
  SBF_CHECK_MSG(n > k, "need n > k");
  SBF_CHECK_MSG(threshold > 0.0 && z > 0.0, "need T > 0, z > 0");
  const double base = static_cast<double>(i) /
                      (static_cast<double>(n - k) *
                       std::pow(threshold, 1.0 / z));
  return static_cast<double>(k) * std::pow(base, static_cast<double>(k));
}

double IcebergErrorRate(const std::vector<double>& d, double gamma, uint32_t k,
                        uint64_t threshold) {
  if (threshold == 0) return 0.0;
  // Suffix sums D_f = sum_{i >= T-f} d[i].
  std::vector<double> suffix(d.size() + 1, 0.0);
  for (size_t i = d.size(); i-- > 0;) {
    suffix[i] = suffix[i + 1] + d[i];
  }
  auto suffix_at = [&](uint64_t from) {
    return from >= suffix.size() ? 0.0 : suffix[from];
  };

  double total = 0.0;
  const uint64_t upper = std::min<uint64_t>(threshold, d.size());
  for (uint64_t f = 0; f < upper; ++f) {
    const double heavy_fraction = suffix_at(threshold - f);
    const double error =
        std::pow(1.0 - std::exp(-gamma * heavy_fraction),
                 static_cast<double>(k));
    total += d[f] * error;
  }
  return total;
}

std::vector<double> ZipfFrequencyPmf(uint64_t n, uint64_t total, double z) {
  SBF_CHECK_MSG(n >= 1, "need n >= 1");
  // Normalization constant of p_i = c / i^z.
  double harmonic = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    harmonic += std::pow(static_cast<double>(i), -z);
  }
  const double c = 1.0 / harmonic;

  // Expected frequency of rank i, rounded to the nearest integer; build
  // the histogram of frequencies.
  uint64_t max_freq = 0;
  std::vector<uint64_t> freqs(n);
  for (uint64_t i = 1; i <= n; ++i) {
    const double expected =
        static_cast<double>(total) * c / std::pow(static_cast<double>(i), z);
    freqs[i - 1] = static_cast<uint64_t>(std::llround(expected));
    max_freq = std::max(max_freq, freqs[i - 1]);
  }
  std::vector<double> pmf(max_freq + 1, 0.0);
  for (uint64_t f : freqs) pmf[f] += 1.0 / static_cast<double>(n);
  return pmf;
}

}  // namespace sbf
