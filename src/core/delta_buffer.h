#ifndef SBF_CORE_DELTA_BUFFER_H_
#define SBF_CORE_DELTA_BUFFER_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/delta_kernels.h"
#include "util/thread_annotations.h"

namespace sbf {

class ConcurrentSbf;

// Tuning for ConcurrentSbf's epoch-merged thread-local write path. Inserts
// accumulate into per-thread, per-shard open-addressed delta maps
// (core/delta_kernels.h) and are merged into the shard counters on an
// epoch boundary: a size threshold, a wall-clock threshold, or an explicit
// ConcurrentSbf::Flush(). Process-local tuning — never serialized.
struct DeltaBufferOptions {
  // Master switch. The delta path additionally requires Minimum Selection:
  // Minimal Increase reads the current minimum before lifting counters, so
  // its updates are order-dependent and cannot be buffered commutatively —
  // MI filters always take the direct path regardless of this flag.
  bool enabled = true;
  // Slots per (thread, shard) map. Must be a power of two.
  uint32_t capacity = 1024;
  // Merge a shard's map once it holds this many distinct keys. Keeping it
  // at or below capacity/2 keeps linear-probe chains short.
  uint32_t merge_keys = 512;
  // Merge a shard's map once its oldest buffered op is this stale (bounds
  // how long a counter under-states its flushed-plus-buffered value; the
  // pending-op tally keeps estimates one-sided regardless). 0 disables the
  // clock check; the clock is consulted once every 64 buffered ops.
  uint32_t max_epoch_micros = 2000;
};

// One thread's buffered deltas against one ConcurrentSbf: a delta map per
// shard plus the per-shard epoch bookkeeping the merge needs. Storage for
// all shards lives in three flat arrays so a DeltaSet is two allocations
// regardless of shard count. Jointly owned by the writing thread's TLS
// holder and the filter's DeltaRegistry; `mu` serializes the owning
// thread's accumulation against cross-thread Flush().
class DeltaSet {
 public:
  DeltaSet(uint32_t num_shards, const DeltaBufferOptions& options);

  struct ShardState {
    uint32_t size = 0;             // live slots in this shard's map
    // Occurrences published to the shard's pending-op tally but not yet
    // merged into its counters (subtracted, release-ordered, after the
    // merge applies them).
    uint64_t pending_contrib = 0;
    // Net occurrence count (two's-complement) buffered since the last
    // merge; folded into the shard's net-item tally at merge time.
    uint64_t net_ops = 0;
    // Ops buffered since the last merge (cadence for the clock check).
    uint64_t ops_since_merge = 0;
    std::chrono::steady_clock::time_point epoch_start{};
    bool epoch_open = false;
  };

  [[nodiscard]] DeltaMapView map(uint32_t shard) noexcept SBF_REQUIRES(mu) {
    const size_t base = static_cast<size_t>(shard) * options_.capacity;
    return DeltaMapView{keys_.data() + base, nets_.data() + base,
                        used_.data() + base, options_.capacity - 1};
  }
  [[nodiscard]] ShardState& state(uint32_t shard) noexcept SBF_REQUIRES(mu) {
    return states_[shard];
  }
  [[nodiscard]] uint32_t num_shards() const noexcept { return num_shards_; }
  [[nodiscard]] const DeltaBufferOptions& options() const noexcept {
    return options_;
  }
  // Per-shard scratch for batched accumulation (occurrences not yet
  // published to the shard's pending tally) and the list of shards the
  // current chunk touched; preallocated so the batch path never allocates.
  [[nodiscard]] uint64_t* batch_pending() noexcept SBF_REQUIRES(mu) {
    return batch_pending_.data();
  }
  [[nodiscard]] uint32_t* batch_touched() noexcept SBF_REQUIRES(mu) {
    return batch_touched_.data();
  }

  // Storage footprint in bits (for ConcurrentSbf::MemoryUsageBits). The
  // vector geometry is fixed at construction, but the contents are guarded,
  // so callers take `mu` (registry mu -> set mu order).
  [[nodiscard]] size_t MemoryBits() const noexcept SBF_REQUIRES(mu);

  // Taken by the owning thread around every accumulate/merge (uncontended
  // in steady state) and by cross-thread Flush()/thread-exit drains.
  mutable util::Mutex mu;

 private:
  uint32_t num_shards_;
  DeltaBufferOptions options_;
  std::vector<uint64_t> keys_ SBF_GUARDED_BY(mu);   // num_shards * capacity
  std::vector<uint64_t> nets_ SBF_GUARDED_BY(mu);   // num_shards * capacity
  std::vector<uint8_t> used_ SBF_GUARDED_BY(mu);    // num_shards * capacity
  std::vector<ShardState> states_ SBF_GUARDED_BY(mu);
  std::vector<uint64_t> batch_pending_ SBF_GUARDED_BY(mu);   // num_shards
  std::vector<uint32_t> batch_touched_ SBF_GUARDED_BY(mu);   // num_shards
};

// Every thread's DeltaSet for one ConcurrentSbf. The filter holds the
// registry via shared_ptr; each writing thread's TLS holder keeps a
// weak_ptr, so thread exit can find live filters to drain into and filter
// destruction orphans the TLS entries harmlessly. Lock order is always
// registry mu -> set mu -> shard locks (DESIGN.md §11).
class DeltaRegistry {
 public:
  util::Mutex mu;
  // The filter to drain into; nulled (under mu) by ~ConcurrentSbf and
  // updated by its move operations.
  ConcurrentSbf* owner SBF_GUARDED_BY(mu) = nullptr;
  std::vector<std::shared_ptr<DeltaSet>> sets SBF_GUARDED_BY(mu);
};

// Returns the calling thread's DeltaSet for `registry`, creating and
// registering it on first use. The pointer stays valid for the thread's
// lifetime (the TLS holder co-owns it).
DeltaSet* ThreadDeltaSet(const std::shared_ptr<DeltaRegistry>& registry,
                         uint32_t num_shards,
                         const DeltaBufferOptions& options);

// Lookup-only variant for read paths: the calling thread's DeltaSet for
// `registry`, or nullptr if this thread never wrote through it.
DeltaSet* ThreadDeltaSetIfExists(const DeltaRegistry* registry) noexcept;

}  // namespace sbf

#endif  // SBF_CORE_DELTA_BUFFER_H_
