#include "core/delta_buffer.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "core/concurrent_sbf.h"
#include "util/check.h"
#include "util/thread_annotations.h"

namespace sbf {
namespace {

// One thread's handle on one filter's registry. Entries are matched by
// registry address but validated through the weak_ptr, so an address
// reused by a later filter never aliases a stale entry.
struct TlsEntry {
  std::weak_ptr<DeltaRegistry> registry;
  std::shared_ptr<DeltaSet> set;
};

struct TlsHolder {
  std::vector<TlsEntry> entries;

  DeltaSet* Find(const DeltaRegistry* key) noexcept {
    for (size_t i = 0; i < entries.size();) {
      const std::shared_ptr<DeltaRegistry> registry = entries[i].registry.lock();
      if (registry == nullptr) {  // filter died; prune lazily
        entries[i] = std::move(entries.back());
        entries.pop_back();
        continue;
      }
      if (registry.get() == key) return entries[i].set.get();
      ++i;
    }
    return nullptr;
  }

  // Thread exit: drain this thread's buffered deltas into every filter
  // that is still alive, then unregister. Without this, ops buffered by a
  // short-lived writer thread would only surface at the next Flush().
  ~TlsHolder() {
    for (TlsEntry& entry : entries) {
      const std::shared_ptr<DeltaRegistry> registry = entry.registry.lock();
      if (registry == nullptr) continue;
      util::MutexLock lock(registry->mu);
      if (registry->owner != nullptr) {
        registry->owner->DrainDeltaSet(*entry.set);
      }
      auto& sets = registry->sets;
      const auto it = std::find(sets.begin(), sets.end(), entry.set);
      if (it != sets.end()) {
        *it = std::move(sets.back());
        sets.pop_back();
      }
    }
  }
};

thread_local TlsHolder tls_holder;

}  // namespace

DeltaSet::DeltaSet(uint32_t num_shards, const DeltaBufferOptions& options)
    : num_shards_(num_shards), options_(options) {
  SBF_CHECK_MSG(num_shards >= 1, "DeltaSet: need at least one shard");
  SBF_CHECK_MSG(options.capacity >= 2 &&
                    (options.capacity & (options.capacity - 1)) == 0,
                "DeltaSet: capacity must be a power of two >= 2");
  SBF_CHECK_MSG(
      options.merge_keys >= 1 && options.merge_keys <= options.capacity,
      "DeltaSet: merge_keys must be in [1, capacity]");
  const size_t slots = static_cast<size_t>(num_shards) * options.capacity;
  keys_.resize(slots, 0);
  nets_.resize(slots, 0);
  used_.resize(slots, 0);
  states_.resize(num_shards);
  batch_pending_.resize(num_shards, 0);
  batch_touched_.resize(num_shards, 0);
}

size_t DeltaSet::MemoryBits() const noexcept {
  const size_t slots = keys_.size();
  return 8 * (slots * (sizeof(uint64_t) * 2 + sizeof(uint8_t)) +
              states_.size() * sizeof(ShardState) +
              batch_pending_.size() * sizeof(uint64_t) +
              batch_touched_.size() * sizeof(uint32_t));
}

DeltaSet* ThreadDeltaSet(const std::shared_ptr<DeltaRegistry>& registry,
                         uint32_t num_shards,
                         const DeltaBufferOptions& options) {
  if (DeltaSet* found = tls_holder.Find(registry.get())) return found;
  auto set = std::make_shared<DeltaSet>(num_shards, options);
  {
    util::MutexLock lock(registry->mu);
    registry->sets.push_back(set);
  }
  tls_holder.entries.push_back(TlsEntry{registry, set});
  return tls_holder.entries.back().set.get();
}

DeltaSet* ThreadDeltaSetIfExists(const DeltaRegistry* registry) noexcept {
  return tls_holder.Find(registry);
}

}  // namespace sbf
