#ifndef SBF_CORE_BLOOM_FILTER_H_
#define SBF_CORE_BLOOM_FILTER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "bitstream/bit_vector.h"
#include "hashing/hash_family.h"
#include "io/wire.h"
#include "util/status.h"

namespace sbf {

// The classic Bloom filter [Blo70] (paper Section 2.1): a bit vector of m
// bits and k hash functions supporting approximate membership with
// one-sided (false-positive) error
//
//   E_b = (1 - (1 - 1/m)^{kn})^k  ~  (1 - e^{-kn/m})^k,
//
// minimized at k = ln 2 * m/n. Used standalone as the baseline structure,
// and inside the Recurring Minimum algorithm as the marker filter B_f.
class BloomFilter {
 public:
  BloomFilter(uint64_t m, uint32_t k, uint64_t seed = 0,
              HashFamily::Kind kind = HashFamily::Kind::kModuloMultiply);

  // The error-optimal number of hash functions for m bits and n keys:
  // round(ln 2 * m / n), at least 1.
  static uint32_t OptimalK(uint64_t m, uint64_t n);

  // Builds a filter sized for `n` keys at `bits_per_key` bits each with the
  // optimal k.
  static BloomFilter WithBitsPerKey(uint64_t n, double bits_per_key,
                                    uint64_t seed = 0);

  void Add(uint64_t key);
  void AddBytes(std::string_view key) { Add(Fingerprint64(key)); }

  // True if `key` may be in the set; false means certainly absent.
  [[nodiscard]] bool Contains(uint64_t key) const;
  [[nodiscard]] bool ContainsBytes(std::string_view key) const {
    return Contains(Fingerprint64(key));
  }

  [[nodiscard]] uint64_t m() const noexcept { return m_; }
  [[nodiscard]] uint32_t k() const noexcept { return hash_.k(); }
  [[nodiscard]] size_t num_added() const noexcept { return num_added_; }
  [[nodiscard]] const HashFamily& hash() const noexcept { return hash_; }

  // Fraction of bits currently set.
  [[nodiscard]] double FillRatio() const;
  // Analytic false-positive rate after n insertions: (1 - e^{-kn/m})^k.
  static double TheoreticalFpRate(uint64_t m, uint32_t k, uint64_t n);
  // Analytic FP rate at the current load.
  [[nodiscard]] double ExpectedFpRate() const {
    return TheoreticalFpRate(m_, k(), num_added_);
  }

  // Bitwise union with a filter built with compatible parameters; the
  // result represents the union of the two key sets.
  Status UnionWith(const BloomFilter& other);

  // Grows the filter to new_m bits (a positive multiple of m) without the
  // original keys: both hash kinds locate old bit i's possible new
  // positions exactly (multiply-shift: [i*c, (i+1)*c); double-mix:
  // {i + j*m}), so replicating each set bit across its preimage set
  // preserves every membership answer, while keys added afterwards use the
  // full new range. Fails with a clean Status (filter untouched) on bad
  // arguments or allocation failure.
  Status ExpandTo(uint64_t new_m);

  // 'SBbf' wire frame (io/wire.h): {varint m, varint k, u8 kind, u64 seed,
  // varint count, raw bit words}. The paper stresses that distributed
  // applications ship filters as messages (Section 4.7.1); serialization
  // round-trips exactly.
  [[nodiscard]] std::vector<uint8_t> Serialize() const;
  static StatusOr<BloomFilter> Deserialize(wire::ByteSpan bytes);

  [[nodiscard]] size_t MemoryUsageBits() const noexcept {
    return bits_.capacity_bits();
  }

  // Audits m vs. the backing vector's size and zeroed tail padding.
  [[nodiscard]] Status CheckInvariants() const;

 private:
  uint64_t m_;
  HashFamily hash_;
  BitVector bits_;
  size_t num_added_ = 0;
  // True while the population bound ones <= k * num_added is provable:
  // every set bit came from an Add (or a union of such filters). ExpandTo
  // replicates bits without touching num_added, and a loaded frame carries
  // no expansion provenance — both retire the bound. Process-local, never
  // serialized.
  bool popcount_bound_intact_ = true;
};

}  // namespace sbf

#endif  // SBF_CORE_BLOOM_FILTER_H_
