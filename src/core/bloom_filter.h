#ifndef SBF_CORE_BLOOM_FILTER_H_
#define SBF_CORE_BLOOM_FILTER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "bitstream/bit_vector.h"
#include "hashing/hash_family.h"
#include "io/wire.h"
#include "util/status.h"

namespace sbf {

// The classic Bloom filter [Blo70] (paper Section 2.1): a bit vector of m
// bits and k hash functions supporting approximate membership with
// one-sided (false-positive) error
//
//   E_b = (1 - (1 - 1/m)^{kn})^k  ~  (1 - e^{-kn/m})^k,
//
// minimized at k = ln 2 * m/n. Used standalone as the baseline structure,
// and inside the Recurring Minimum algorithm as the marker filter B_f.
class BloomFilter {
 public:
  BloomFilter(uint64_t m, uint32_t k, uint64_t seed = 0,
              HashFamily::Kind kind = HashFamily::Kind::kModuloMultiply);

  // The error-optimal number of hash functions for m bits and n keys:
  // round(ln 2 * m / n), at least 1.
  static uint32_t OptimalK(uint64_t m, uint64_t n);

  // Builds a filter sized for `n` keys at `bits_per_key` bits each with the
  // optimal k.
  static BloomFilter WithBitsPerKey(uint64_t n, double bits_per_key,
                                    uint64_t seed = 0);

  void Add(uint64_t key);
  void AddBytes(std::string_view key) { Add(Fingerprint64(key)); }

  // True if `key` may be in the set; false means certainly absent.
  bool Contains(uint64_t key) const;
  bool ContainsBytes(std::string_view key) const {
    return Contains(Fingerprint64(key));
  }

  uint64_t m() const { return m_; }
  uint32_t k() const { return hash_.k(); }
  size_t num_added() const { return num_added_; }
  const HashFamily& hash() const { return hash_; }

  // Fraction of bits currently set.
  double FillRatio() const;
  // Analytic false-positive rate after n insertions: (1 - e^{-kn/m})^k.
  static double TheoreticalFpRate(uint64_t m, uint32_t k, uint64_t n);
  // Analytic FP rate at the current load.
  double ExpectedFpRate() const { return TheoreticalFpRate(m_, k(), num_added_); }

  // Bitwise union with a filter built with compatible parameters; the
  // result represents the union of the two key sets.
  Status UnionWith(const BloomFilter& other);

  // Grows the filter to new_m bits (a positive multiple of m) without the
  // original keys: both hash kinds locate old bit i's possible new
  // positions exactly (multiply-shift: [i*c, (i+1)*c); double-mix:
  // {i + j*m}), so replicating each set bit across its preimage set
  // preserves every membership answer, while keys added afterwards use the
  // full new range. Fails with a clean Status (filter untouched) on bad
  // arguments or allocation failure.
  Status ExpandTo(uint64_t new_m);

  // 'SBbf' wire frame (io/wire.h): {varint m, varint k, u8 kind, u64 seed,
  // varint count, raw bit words}. The paper stresses that distributed
  // applications ship filters as messages (Section 4.7.1); serialization
  // round-trips exactly.
  std::vector<uint8_t> Serialize() const;
  static StatusOr<BloomFilter> Deserialize(wire::ByteSpan bytes);

  size_t MemoryUsageBits() const { return bits_.capacity_bits(); }

 private:
  uint64_t m_;
  HashFamily hash_;
  BitVector bits_;
  size_t num_added_ = 0;
};

}  // namespace sbf

#endif  // SBF_CORE_BLOOM_FILTER_H_
