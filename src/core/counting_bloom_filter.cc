#include "core/counting_bloom_filter.h"

#include <algorithm>

#include "core/batch_kernels.h"
#include "util/check.h"

namespace sbf {
namespace {
constexpr uint32_t kMaxK = 64;
}  // namespace

CountingBloomFilter::CountingBloomFilter(uint64_t m, uint32_t k,
                                         uint32_t counter_bits, uint64_t seed,
                                         HashFamily::Kind kind)
    : m_(m),
      hash_(k, m, seed, kind),
      counters_(m, counter_bits, /*sticky_saturation=*/true) {
  SBF_CHECK_MSG(k >= 1 && k <= kMaxK, "counting BF needs 1 <= k <= 64");
}

void CountingBloomFilter::Insert(uint64_t key, uint64_t count) {
  uint64_t positions[kMaxK];
  hash_.Positions(key, positions);
  for (uint32_t i = 0; i < hash_.k(); ++i) {
    counters_.Increment(positions[i], count);
  }
}

void CountingBloomFilter::Remove(uint64_t key, uint64_t count) {
  uint64_t positions[kMaxK];
  hash_.Positions(key, positions);
  for (uint32_t i = 0; i < hash_.k(); ++i) {
    // Saturated counters stay put (sticky); others must hold the count.
    counters_.Decrement(positions[i], count);
  }
}

uint64_t CountingBloomFilter::Estimate(uint64_t key) const {
  uint64_t positions[kMaxK];
  hash_.Positions(key, positions);
  uint64_t min_value = counters_.Get(positions[0]);
  for (uint32_t i = 1; i < hash_.k(); ++i) {
    min_value = std::min(min_value, counters_.Get(positions[i]));
  }
  return min_value;
}

void CountingBloomFilter::InsertBatch(const uint64_t* keys, size_t n,
                                      uint64_t count) {
  const uint32_t k = hash_.k();
  BatchPipeline(
      counters_, keys, n,
      [this](uint64_t key, uint64_t* pos) { hash_.Positions(key, pos); },
      PrefetchEachPosition{k},
      [k, count](FixedWidthCounterVector& cv, const uint64_t* pos, size_t) {
        // Increment clamps at max_value (sticky saturation), exactly as the
        // scalar Insert does.
        for (uint32_t j = 0; j < k; ++j) cv.Increment(pos[j], count);
      });
}

void CountingBloomFilter::EstimateBatch(const uint64_t* keys, size_t n,
                                        uint64_t* out) const {
  const uint32_t k = hash_.k();
  BatchPipeline(
      counters_, keys, n,
      [this](uint64_t key, uint64_t* pos) { hash_.Positions(key, pos); },
      PrefetchEachPosition{k},
      [k, out](const FixedWidthCounterVector& cv, const uint64_t* pos,
               size_t i) { out[i] = BranchFreeMin(cv, pos, k); });
}

}  // namespace sbf
