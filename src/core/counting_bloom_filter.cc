#include "core/counting_bloom_filter.h"

#include <algorithm>

#include "core/batch_kernels.h"
#include "util/check.h"
#include "util/audit.h"

namespace sbf {
namespace {
constexpr uint32_t kMaxK = 64;
}  // namespace

CountingBloomFilter::CountingBloomFilter(uint64_t m, uint32_t k,
                                         uint32_t counter_bits, uint64_t seed,
                                         HashFamily::Kind kind)
    : m_(m),
      hash_(k, m, seed, kind),
      counters_(m, counter_bits, /*sticky_saturation=*/true) {
  SBF_CHECK_MSG(k >= 1 && k <= kMaxK, "counting BF needs 1 <= k <= 64");
  SBF_AUDIT_INVARIANTS(*this);
}

void CountingBloomFilter::Insert(uint64_t key, uint64_t count) {
  uint64_t positions[kMaxK];
  hash_.Positions(key, positions);
  for (uint32_t i = 0; i < hash_.k(); ++i) {
    counters_.Increment(positions[i], count);
  }
}

void CountingBloomFilter::Remove(uint64_t key, uint64_t count) {
  uint64_t positions[kMaxK];
  hash_.Positions(key, positions);
  for (uint32_t i = 0; i < hash_.k(); ++i) {
    // Saturated counters stay put (sticky); others clamp at zero if asked
    // to remove more than they hold (the clamp is tallied in saturation()).
    counters_.Decrement(positions[i], count);
  }
}

FilterHealth CountingBloomFilter::Health() const {
  FilterHealth health;
  health.counters = m_;
  const OccupancyCounts occupancy = counters_.ScanOccupancy();
  health.nonzero_counters = occupancy.nonzero;
  health.saturated_counters = occupancy.saturated;
  health.saturation_clamps = counters_.saturation().saturation_clamps;
  health.underflow_clamps = counters_.saturation().underflow_clamps;
  FinalizeHealth(hash_.k(), HealthThresholds{}, &health);
  return health;
}

uint64_t CountingBloomFilter::Estimate(uint64_t key) const {
  uint64_t positions[kMaxK];
  hash_.Positions(key, positions);
  uint64_t min_value = counters_.Get(positions[0]);
  for (uint32_t i = 1; i < hash_.k(); ++i) {
    min_value = std::min(min_value, counters_.Get(positions[i]));
  }
  return min_value;
}

void CountingBloomFilter::InsertBatch(const uint64_t* keys, size_t n,
                                      uint64_t count) {
  const uint32_t k = hash_.k();
  BatchPipeline(
      counters_, keys, n,
      [this](uint64_t key, uint64_t* pos) { hash_.Positions(key, pos); },
      PrefetchEachPosition{k},
      [k, count](FixedWidthCounterVector& cv, const uint64_t* pos, size_t) {
        // Increment clamps at max_value (sticky saturation), exactly as the
        // scalar Insert does.
        for (uint32_t j = 0; j < k; ++j) cv.Increment(pos[j], count);
      });
}

void CountingBloomFilter::EstimateBatch(const uint64_t* keys, size_t n,
                                        uint64_t* out) const {
  const uint32_t k = hash_.k();
  BatchPipeline(
      counters_, keys, n,
      [this](uint64_t key, uint64_t* pos) { hash_.Positions(key, pos); },
      PrefetchEachPosition{k},
      [k, out](const FixedWidthCounterVector& cv, const uint64_t* pos,
               size_t i) { out[i] = BranchFreeMin(cv, pos, k); });
}

std::vector<uint8_t> CountingBloomFilter::Serialize() const {
  SBF_AUDIT_INVARIANTS(*this);
  wire::Writer payload;
  payload.PutVarint(m_);
  payload.PutVarint(hash_.k());
  payload.PutU8(hash_.kind() == HashFamily::Kind::kModuloMultiply ? 0 : 1);
  payload.PutU64(hash_.seed());
  payload.PutVarint(counters_.width_bits());
  payload.PutFrame(counters_.Serialize());
  return wire::SealFrame(wire::kMagicCountingBloom, wire::kFormatVersion,
                         std::move(payload));
}

StatusOr<CountingBloomFilter> CountingBloomFilter::Deserialize(
    wire::ByteSpan bytes) {
  auto reader = wire::OpenFrame(bytes, wire::kMagicCountingBloom,
                                wire::kFormatVersion, "counting BF");
  if (!reader.ok()) return reader.status();
  wire::Reader& in = reader.value();
  const uint64_t m = in.ReadVarint();
  const uint64_t k = in.ReadVarint();
  const uint8_t kind = in.ReadU8();
  const uint64_t seed = in.ReadU64();
  const uint64_t counter_bits = in.ReadVarint();
  if (!in.ok()) return in.status();
  if (m < 1 || k < 1 || k > kMaxK || kind > 1 || counter_bits < 1 ||
      counter_bits > 64) {
    return Status::DataLoss("bad counting BF header");
  }
  const wire::ByteSpan counter_frame = in.ReadFrameSpan();
  if (!in.ok()) return in.status();
  Status status = in.ExpectEnd("counting BF");
  if (!status.ok()) return status;

  // The counter frame is deserialized before the filter is constructed and
  // must agree with the header exactly — the FCAB98 semantics hinge on the
  // sticky-saturating fixed-width configuration.
  auto cv = DeserializeCounterVector(counter_frame);
  if (!cv.ok()) return cv.status();
  auto* fixed = dynamic_cast<FixedWidthCounterVector*>(cv.value().get());
  if (fixed == nullptr || fixed->size() != m ||
      fixed->width_bits() != counter_bits || !fixed->sticky_saturation()) {
    return Status::DataLoss("counting BF counter vector mismatch");
  }

  CountingBloomFilter filter(m, static_cast<uint32_t>(k),
                             static_cast<uint32_t>(counter_bits), seed,
                             kind == 0 ? HashFamily::Kind::kModuloMultiply
                                       : HashFamily::Kind::kDoubleMix);
  filter.counters_ = std::move(*fixed);
  SBF_AUDIT_INVARIANTS(filter);
  return filter;
}


Status CountingBloomFilter::CheckInvariants() const {
  if (m_ < 1) {
    return Status::FailedPrecondition("counting BF: m < 1");
  }
  if (hash_.m() != m_) {
    return Status::FailedPrecondition(
        "counting BF: hash family range disagrees with m");
  }
  if (counters_.size() != m_) {
    return Status::FailedPrecondition(
        "counting BF: counter vector size disagrees with m");
  }
  if (!counters_.sticky_saturation()) {
    return Status::FailedPrecondition(
        "counting BF: counters must use sticky saturation [FCAB98]");
  }
  return counters_.CheckInvariants();
}

}  // namespace sbf
