#ifndef SBF_CORE_SIMD_KERNELS_H_
#define SBF_CORE_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

// SIMD block kernels for the cache-line blocked SBF layouts (DESIGN.md
// "SIMD block kernels").
//
// A blocked filter with a fixed-width backing and a 64-byte block —
// 8 x 64-bit counters or 16 x 32-bit counters — can run a whole Estimate
// or Insert against one cache line of counter words. These kernels do
// that vectorially:
//
//   * the k in-block lanes are derived from ONE multiply-shift round:
//     the within-block hash family (hashing/hash_family.h, kModuloMultiply)
//     computes lane_j = (alpha_j * mixed) * B >> 64, which for the
//     power-of-two block sizes here is exactly (alpha_j * mixed) >> 61
//     (B = 8) or >> 60 (B = 16) — bit-identical to HashFamily::Positions;
//   * Estimate takes the min of the selected lanes with vector
//     compare/min reductions;
//   * Minimum Selection Insert adds count * multiplicity per lane (lanes
//     selected more than once — duplicates are legal — get their exact
//     multiple) with a vector multiply + add;
//   * Minimal Increase Insert lifts every selected lane below
//     min + count up to it with a vector compare + blend.
//
// Saturation contract (PR 4 semantics). The scalar paths clamp at the
// backing's MaxValue() and tally SaturationStats per clamp event. The
// vector kernels do NOT reproduce the tallies; instead each mutating
// kernel returns 1 only when it can prove no clamp event would occur and
// its result is bit-identical to the scalar op. It returns 0 — having
// written NOTHING — whenever a clamp could fire, and the caller must rerun
// that key through the exact scalar path (which clamps and tallies). The
// accept/reject predicate is part of the contract and must be identical
// across ISA variants, or saturation tallies would differ by ISA:
//
//   add64:  reject iff count > kSimdSafeCount64, or any selected lane's
//           value + multiplicity*count wraps 2^64.
//   add32:  reject iff count > kSimdSafeCount32, or any selected lane's
//           value + multiplicity*count exceeds 2^32 - 1.
//   lift64: reject iff count > 2^64 - 1 - min (the scalar path saturates
//           the lift target at 2^64 - 1 and tallies one clamp).
//   lift32: reject as lift64, or if min + count > 2^32 - 1 (the scalar
//           Set would clamp and tally per lifted lane).
//
// Dispatch. The active kernel table is resolved once, lazily, from CPU
// detection (generic < SSE2 < AVX2); the SBF_FORCE_ISA environment
// variable ("generic", "sse2", "avx2", "off") overrides detection, and
// ForceIsa() overrides both (the test hook for differential suites).
// Under ThreadSanitizer the generic table is pinned: TSan does not
// instrument vector loads/stores, so an intrinsic path would hide the
// races the tsan CI legs exist to catch. All variants are bit-identical;
// every entry point below is pinned to the scalar reference by
// tests/simd_differential_test.cc (enforced by scripts/sbf_lint.py's
// simd-differential rule).

namespace sbf::simd {

enum class Isa : uint8_t {
  kDisabled = 0,  // kernels off: callers take the legacy scalar pipelines
  kGeneric = 1,   // portable scalar reference (the semantic ground truth)
  kSse2 = 2,      // x86-64 baseline vectors
  kAvx2 = 3,      // 256-bit vectors + gathers
};

// Largest per-op count the Minimum Selection add kernels accept. With
// k <= 64 probes a lane's multiplicity is at most 64 = 2^6, so bounding
// count keeps multiplicity*count itself from wrapping before the add's
// own overflow check runs.
inline constexpr uint64_t kSimdSafeCount64 = uint64_t{1} << 57;
inline constexpr uint64_t kSimdSafeCount32 = 0xFFFFFFFFull >> 6;

// One cache line of counters: lane counts and the multiply-shift amounts
// for the two SIMD-eligible geometries.
inline constexpr uint32_t kBlockLanes64 = 8;    // 8 x u64 = 64 bytes
inline constexpr uint32_t kBlockLanes32 = 16;   // 16 x u32 = 64 bytes
inline constexpr uint32_t kLaneShift64 = 61;    // lane = alpha*mixed >> 61
inline constexpr uint32_t kLaneShift32 = 60;    // lane = alpha*mixed >> 60

// A resolved table of kernel entry points. `block` always points at the
// block's first backing word (8 contiguous uint64_t; 32-bit counters are
// packed two per word, counter lane i in bits [32*(i&1), 32*(i&1)+32) of
// word i/2). `alphas[0..k)` are the within-block family's fixed-point
// multipliers (HashFamily::FillModuloMultiplyAlphas) and `mixed` is
// HashFamily::MixedKey(key). No alignment is required of `block`; the
// blocked layouts happen to hand in cache-line-aligned bases
// (util/aligned_alloc.h) but tests may pass stack arrays.
struct BlockKernels {
  // Estimate: min of the k selected lanes of one block.
  uint64_t (*blocked_min64)(const uint64_t* block, const uint64_t* alphas,
                            uint32_t k, uint64_t mixed);
  uint64_t (*blocked_min32)(const uint64_t* block, const uint64_t* alphas,
                            uint32_t k, uint64_t mixed);
  // Minimum Selection insert: lane += multiplicity * count. Returns 1 on
  // success, 0 (nothing written) if the caller must take the scalar
  // clamping path — see the saturation contract above.
  int (*blocked_add64)(uint64_t* block, const uint64_t* alphas, uint32_t k,
                       uint64_t mixed, uint64_t count);
  int (*blocked_add32)(uint64_t* block, const uint64_t* alphas, uint32_t k,
                       uint64_t mixed, uint64_t count);
  // Minimal Increase insert: selected lanes below min + count are raised
  // to it. Same 1/0 contract as the add kernels.
  int (*blocked_lift64)(uint64_t* block, const uint64_t* alphas, uint32_t k,
                        uint64_t mixed, uint64_t count);
  int (*blocked_lift32)(uint64_t* block, const uint64_t* alphas, uint32_t k,
                        uint64_t mixed, uint64_t count);
  // Non-blocked gathered min over absolute counter indices pos[0..k) —
  // the SpectralBloomFilter EstimateBatch probe on fixed backings.
  // `words` is the backing word array; for gather_min32 counter i is the
  // 32-bit lane i of that array (two per word).
  uint64_t (*gather_min64)(const uint64_t* words, const uint64_t* pos,
                           uint32_t k);
  uint64_t (*gather_min32)(const uint64_t* words, const uint64_t* pos,
                           uint32_t k);
  // Whole-batch blocked Estimate: out[i] = blocked_minNN(words + bases[i],
  // alphas, k, mixes[i]) for i in [0, n). One call per chunk keeps the
  // per-key dispatch (indirect call, vector-constant setup) out of the
  // hot loop; implementations must be bit-identical to looping the
  // per-block kernel.
  void (*batch_min64)(const uint64_t* words, const uint64_t* bases,
                      const uint64_t* mixes, size_t n,
                      const uint64_t* alphas, uint32_t k, uint64_t* out);
  void (*batch_min32)(const uint64_t* words, const uint64_t* bases,
                      const uint64_t* mixes, size_t n,
                      const uint64_t* alphas, uint32_t k, uint64_t* out);

  Isa isa = Isa::kDisabled;
  // False only for the kDisabled table: callers must then use their legacy
  // scalar pipelines (the entry points above still work — they point at
  // the generic reference — so kernel-level tests can always call them).
  bool enabled = false;
};

// The resolved table. First call performs detection + env override and
// caches; later calls are one atomic load.
[[nodiscard]] const BlockKernels& Active() noexcept;

// Pins the active table to `isa` for the rest of the process (or until the
// next call). Testing hook for the differential suites; requesting an
// unsupported ISA falls back to the best supported one.
void ForceIsa(Isa isa) noexcept;

// Best ISA this build + host supports (kGeneric when vectors are compiled
// out or the CPU lacks them; never kDisabled).
[[nodiscard]] Isa BestSupportedIsa() noexcept;

// True if `isa` can execute on this build + host (kDisabled and kGeneric
// always can).
[[nodiscard]] bool IsaSupported(Isa isa) noexcept;

[[nodiscard]] const char* IsaName(Isa isa) noexcept;

namespace internal {
// Per-TU tables; nullptr when the ISA is compiled out of this build.
const BlockKernels* GenericKernelTable() noexcept;
const BlockKernels* Sse2KernelTable() noexcept;
const BlockKernels* Avx2KernelTable() noexcept;
const BlockKernels* DisabledKernelTable() noexcept;
}  // namespace internal

}  // namespace sbf::simd

#endif  // SBF_CORE_SIMD_KERNELS_H_
