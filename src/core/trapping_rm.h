#ifndef SBF_CORE_TRAPPING_RM_H_
#define SBF_CORE_TRAPPING_RM_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "bitstream/bit_vector.h"
#include "core/frequency_filter.h"
#include "core/recurring_minimum.h"
#include "core/spectral_bloom_filter.h"

namespace sbf {

// The Trapping Recurring Minimum algorithm (paper Section 3.3.1), a
// refinement of Recurring Minimum that tackles the *late detection* error:
// an item x recognized as single-minimum only after all its counters were
// already contaminated transfers an inflated value to the secondary SBF.
//
// Each primary counter has a one-bit "trap"; a lookup table L maps a set
// trap to the item that armed it. When an item is moved to the secondary
// SBF, the trap on its minimal counter is armed. If a *different* item
// later steps on that trap, the trapped item's secondary value is reduced
// by the stepping item's estimated frequency — compensating the
// contamination that was baked into the transferred value — and the trap
// is cleared.
//
// The paper notes two uncovered (rare) cases: a stepping item that never
// reappears after the transfer (the palindrome adversary), and two
// counters contaminated to the same value producing a fake recurring
// minimum. Both are exercised in the test suite.
class TrappingRmSbf final : public FrequencyFilter {
 public:
  explicit TrappingRmSbf(RecurringMinimumOptions options);

  void Insert(uint64_t key, uint64_t count = 1) override;
  void Remove(uint64_t key, uint64_t count = 1) override;
  [[nodiscard]] uint64_t Estimate(uint64_t key) const override;
  [[nodiscard]] size_t MemoryUsageBits() const override;
  [[nodiscard]] std::string Name() const override { return "TRM"; }

  [[nodiscard]] const SpectralBloomFilter& primary() const noexcept {
    return primary_;
  }
  [[nodiscard]] const SpectralBloomFilter& secondary() const noexcept {
    return secondary_;
  }
  // Number of trap-firing compensation events so far.
  [[nodiscard]] size_t traps_fired() const noexcept { return traps_fired_; }
  [[nodiscard]] size_t traps_armed() const noexcept {
    return traps_.PopCount();
  }

  // 'SBtm' wire frame (io/wire.h): {options, varint traps fired, embedded
  // primary and secondary SBF frames, trap bits, owner table sorted by
  // position}. The sort makes the bytes canonical — the in-memory owner
  // table is unordered.
  [[nodiscard]] std::vector<uint8_t> Serialize() const override;
  static StatusOr<TrappingRmSbf> Deserialize(wire::ByteSpan bytes);

  // Audits the trap machinery: the trap bit vector sized to primary m,
  // trap_owner_ holding exactly one entry per armed trap with in-range
  // positions, plus both embedded SBFs' own validators.
  Status CheckInvariants() const override;

 private:
  void FireTrapsHitBy(uint64_t key, const uint64_t* positions);
  void MoveToSecondary(uint64_t key, const uint64_t* primary_positions);

  RecurringMinimumOptions options_;
  SpectralBloomFilter primary_;
  SpectralBloomFilter secondary_;
  BitVector traps_;                                  // one bit per counter
  std::unordered_map<uint64_t, uint64_t> trap_owner_;  // position -> item
  size_t traps_fired_ = 0;
};

}  // namespace sbf

#endif  // SBF_CORE_TRAPPING_RM_H_
