#include "core/simd_kernels.h"

// SSE2 block kernels — the x86-64 baseline tier. SSE2 has no gathers, no
// variable shifts and no unsigned compares, so this tier derives the k
// in-block lanes scalar (one multiply-shift each) and vectorizes only the
// phases where 128-bit ops genuinely beat scalar: the 8/16-lane add with
// overflow detection and the MI lift's masked compare + blend, with
// unsigned compares emulated via sign-bias. The min reduction stays
// scalar — k direct lane loads are cheaper than sign-bias-emulated
// unsigned mins over the whole block (measured: the emulated-min variant
// lost to the scalar pipeline on fixed32). The AVX2 tier vectorizes min
// too (it has real unsigned 32-bit mins and cheap 64-bit blends); this
// tier exists so pre-AVX2 hosts still beat the scalar pipeline on the
// write path, and as a third differential point for the bit-identical
// contract (simd_kernels.h).

#if defined(__SSE2__) || (defined(_M_X64) && !defined(__clang__))

#include <emmintrin.h>

#include <cstring>

namespace sbf::simd {
namespace {

constexpr uint32_t kMaxProbes = 64;

inline uint32_t Lane64(uint64_t alpha, uint64_t mixed) {
  return static_cast<uint32_t>((alpha * mixed) >> kLaneShift64);
}

inline uint32_t Lane32(uint64_t alpha, uint64_t mixed) {
  return static_cast<uint32_t>((alpha * mixed) >> kLaneShift32);
}

inline uint32_t GetLane32(const uint64_t* block, uint32_t lane) {
  return static_cast<uint32_t>(block[lane >> 1] >> ((lane & 1u) * 32));
}

// x86 is little-endian, so 32-bit lane i of the packed block is simply
// the 4-byte load at byte offset 4*i — no word extract needed. memcpy
// keeps it aliasing-clean; GCC emits one mov.
[[gnu::always_inline]] inline uint32_t Load32(const uint64_t* block,
                                              uint32_t lane) {
  uint32_t v;
  std::memcpy(&v, reinterpret_cast<const char*>(block) + 4 * lane, 4);
  return v;
}

// mask ? a : b, bitwise.
inline __m128i Select(__m128i mask, __m128i a, __m128i b) {
  return _mm_or_si128(_mm_and_si128(mask, a), _mm_andnot_si128(mask, b));
}

// a >u b per 32-bit lane: bias the sign bit, then signed compare.
inline __m128i CmpGtU32(__m128i a, __m128i b) {
  const __m128i bias = _mm_set1_epi32(static_cast<int32_t>(0x80000000u));
  return _mm_cmpgt_epi32(_mm_xor_si128(a, bias), _mm_xor_si128(b, bias));
}

// a >u b per 64-bit lane, from biased 32-bit compares:
// hi_gt | (hi_eq & lo_gt), each half broadcast across its 64-bit lane.
inline __m128i CmpGtU64(__m128i a, __m128i b) {
  const __m128i bias = _mm_set1_epi32(static_cast<int32_t>(0x80000000u));
  const __m128i ab = _mm_xor_si128(a, bias);
  const __m128i bb = _mm_xor_si128(b, bias);
  const __m128i gt = _mm_cmpgt_epi32(ab, bb);
  const __m128i eq = _mm_cmpeq_epi32(ab, bb);
  const __m128i gt_hi = _mm_shuffle_epi32(gt, _MM_SHUFFLE(3, 3, 1, 1));
  const __m128i gt_lo = _mm_shuffle_epi32(gt, _MM_SHUFFLE(2, 2, 0, 0));
  const __m128i eq_hi = _mm_shuffle_epi32(eq, _MM_SHUFFLE(3, 3, 1, 1));
  return _mm_or_si128(gt_hi, _mm_and_si128(eq_hi, gt_lo));
}

// Expands 8 mask bytes (each 0x00 or 0xFF) into four vectors of two
// 64-bit lane masks (lanes 0..7 in order).
inline void ExpandMask64(uint64_t packed, __m128i out[4]) {
  const __m128i x = _mm_cvtsi64_si128(static_cast<int64_t>(packed));
  const __m128i b = _mm_unpacklo_epi8(x, x);
  const __m128i w_lo = _mm_unpacklo_epi16(b, b);
  const __m128i w_hi = _mm_unpackhi_epi16(b, b);
  out[0] = _mm_unpacklo_epi32(w_lo, w_lo);
  out[1] = _mm_unpackhi_epi32(w_lo, w_lo);
  out[2] = _mm_unpacklo_epi32(w_hi, w_hi);
  out[3] = _mm_unpackhi_epi32(w_hi, w_hi);
}

// Expands 16 mask bytes (lanes 0..7 in `lo`, 8..15 in `hi`, each 0x00 or
// 0xFF) into four vectors of four 32-bit lane masks.
inline void ExpandMask32(uint64_t lo, uint64_t hi, __m128i out[4]) {
  const __m128i x = _mm_set_epi64x(static_cast<int64_t>(hi),
                                   static_cast<int64_t>(lo));
  const __m128i b_lo = _mm_unpacklo_epi8(x, x);
  const __m128i b_hi = _mm_unpackhi_epi8(x, x);
  out[0] = _mm_unpacklo_epi16(b_lo, b_lo);
  out[1] = _mm_unpackhi_epi16(b_lo, b_lo);
  out[2] = _mm_unpacklo_epi16(b_hi, b_hi);
  out[3] = _mm_unpackhi_epi16(b_hi, b_hi);
}

// always_inline bodies shared with the batch kernels below (the named
// kernels are address-taken for the dispatch table, which keeps GCC from
// inlining them into the batch loops).
[[gnu::always_inline]] inline uint64_t Min64Body(const uint64_t* block,
                                                 const uint64_t* alphas,
                                                 uint32_t k, uint64_t mixed) {
  uint64_t min_value = ~uint64_t{0};
  for (uint32_t j = 0; j < k; ++j) {
    const uint64_t v = block[Lane64(alphas[j], mixed)];
    min_value = v < min_value ? v : min_value;
  }
  return min_value;
}

[[gnu::always_inline]] inline uint64_t Min32Body(const uint64_t* block,
                                                 const uint64_t* alphas,
                                                 uint32_t k, uint64_t mixed) {
  uint32_t min_value = ~uint32_t{0};
  for (uint32_t j = 0; j < k; ++j) {
    const uint32_t v = Load32(block, Lane32(alphas[j], mixed));
    min_value = v < min_value ? v : min_value;
  }
  return min_value;
}

uint64_t Sse2BlockedMin64(const uint64_t* block, const uint64_t* alphas,
                          uint32_t k, uint64_t mixed) {
  return Min64Body(block, alphas, k, mixed);
}

uint64_t Sse2BlockedMin32(const uint64_t* block, const uint64_t* alphas,
                          uint32_t k, uint64_t mixed) {
  return Min32Body(block, alphas, k, mixed);
}

int Sse2BlockedAdd64(uint64_t* block, const uint64_t* alphas, uint32_t k,
                     uint64_t mixed, uint64_t count) {
  if (count > kSimdSafeCount64) return 0;
  uint8_t mult[kBlockLanes64] = {};
  for (uint32_t j = 0; j < k; ++j) ++mult[Lane64(alphas[j], mixed)];
  __m128i sum[4];
  __m128i wrapped = _mm_setzero_si128();
  for (uint32_t p = 0; p < 4; ++p) {
    const __m128i b = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(block + 2 * p));
    const __m128i d = _mm_set_epi64x(
        static_cast<int64_t>(mult[2 * p + 1] * count),
        static_cast<int64_t>(mult[2 * p] * count));
    sum[p] = _mm_add_epi64(b, d);
    wrapped = _mm_or_si128(wrapped, CmpGtU64(b, sum[p]));
  }
  if (_mm_movemask_epi8(wrapped) != 0) return 0;
  for (uint32_t p = 0; p < 4; ++p) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(block + 2 * p), sum[p]);
  }
  return 1;
}

int Sse2BlockedAdd32(uint64_t* block, const uint64_t* alphas, uint32_t k,
                     uint64_t mixed, uint64_t count) {
  if (count > kSimdSafeCount32) return 0;
  uint8_t mult[kBlockLanes32] = {};
  for (uint32_t j = 0; j < k; ++j) ++mult[Lane32(alphas[j], mixed)];
  const uint32_t c = static_cast<uint32_t>(count);
  __m128i sum[4];
  __m128i wrapped = _mm_setzero_si128();
  for (uint32_t p = 0; p < 4; ++p) {
    const __m128i b = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(block + 2 * p));
    // mult <= 64 and count < 2^26: the 32-bit products cannot wrap.
    const __m128i d = _mm_set_epi32(
        static_cast<int32_t>(mult[4 * p + 3] * c),
        static_cast<int32_t>(mult[4 * p + 2] * c),
        static_cast<int32_t>(mult[4 * p + 1] * c),
        static_cast<int32_t>(mult[4 * p] * c));
    sum[p] = _mm_add_epi32(b, d);
    wrapped = _mm_or_si128(wrapped, CmpGtU32(b, sum[p]));
  }
  if (_mm_movemask_epi8(wrapped) != 0) return 0;
  for (uint32_t p = 0; p < 4; ++p) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(block + 2 * p), sum[p]);
  }
  return 1;
}

int Sse2BlockedLift64(uint64_t* block, const uint64_t* alphas, uint32_t k,
                      uint64_t mixed, uint64_t count) {
  uint32_t lanes[kMaxProbes];
  uint64_t selected = 0;
  uint64_t min_value = ~uint64_t{0};
  for (uint32_t j = 0; j < k; ++j) {
    lanes[j] = Lane64(alphas[j], mixed);
    selected |= uint64_t{0xFF} << (lanes[j] * 8);
    const uint64_t v = block[lanes[j]];
    min_value = v < min_value ? v : min_value;
  }
  if (count > ~uint64_t{0} - min_value) return 0;
  const __m128i target =
      _mm_set1_epi64x(static_cast<int64_t>(min_value + count));
  __m128i mask[4];
  ExpandMask64(selected, mask);
  for (uint32_t p = 0; p < 4; ++p) {
    __m128i* at = reinterpret_cast<__m128i*>(block + 2 * p);
    const __m128i b = _mm_loadu_si128(at);
    const __m128i lifted = Select(CmpGtU64(target, b), target, b);
    _mm_storeu_si128(at, Select(mask[p], lifted, b));
  }
  return 1;
}

int Sse2BlockedLift32(uint64_t* block, const uint64_t* alphas, uint32_t k,
                      uint64_t mixed, uint64_t count) {
  uint64_t sel_lo = 0;
  uint64_t sel_hi = 0;
  uint64_t min_value = ~uint64_t{0};
  for (uint32_t j = 0; j < k; ++j) {
    const uint32_t lane = Lane32(alphas[j], mixed);
    // Branchless half-split: lanes land 50/50, an if would mispredict.
    const uint64_t bits = uint64_t{0xFF} << ((lane & 7u) * 8);
    const uint64_t in_hi = 0 - static_cast<uint64_t>(lane >> 3);
    sel_lo |= bits & ~in_hi;
    sel_hi |= bits & in_hi;
    const uint64_t v = GetLane32(block, lane);
    min_value = v < min_value ? v : min_value;
  }
  if (count > ~uint64_t{0} - min_value) return 0;
  const uint64_t target = min_value + count;
  if (target > 0xFFFFFFFFull) return 0;
  const __m128i vtarget = _mm_set1_epi32(static_cast<int32_t>(target));
  __m128i mask[4];
  ExpandMask32(sel_lo, sel_hi, mask);
  for (uint32_t p = 0; p < 4; ++p) {
    __m128i* at = reinterpret_cast<__m128i*>(block + 2 * p);
    const __m128i b = _mm_loadu_si128(at);
    const __m128i lifted = Select(CmpGtU32(vtarget, b), vtarget, b);
    _mm_storeu_si128(at, Select(mask[p], lifted, b));
  }
  return 1;
}

void Sse2BatchMin64(const uint64_t* words, const uint64_t* bases,
                    const uint64_t* mixes, size_t n,
                    const uint64_t* alphas, uint32_t k, uint64_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = Min64Body(words + bases[i], alphas, k, mixes[i]);
  }
}

void Sse2BatchMin32(const uint64_t* words, const uint64_t* bases,
                    const uint64_t* mixes, size_t n,
                    const uint64_t* alphas, uint32_t k, uint64_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = Min32Body(words + bases[i], alphas, k, mixes[i]);
  }
}

// SSE2 has no gather: the scattered-position min falls back to scalar
// loads (identical to the generic reference — kept as a distinct symbol
// so the dispatch tier is complete and differentially tested).
uint64_t Sse2GatherMin64(const uint64_t* words, const uint64_t* pos,
                         uint32_t k) {
  uint64_t min_value = ~uint64_t{0};
  for (uint32_t j = 0; j < k; ++j) {
    const uint64_t v = words[pos[j]];
    min_value = v < min_value ? v : min_value;
  }
  return min_value;
}

uint64_t Sse2GatherMin32(const uint64_t* words, const uint64_t* pos,
                         uint32_t k) {
  uint32_t min_value = ~uint32_t{0};
  for (uint32_t j = 0; j < k; ++j) {
    const uint64_t p = pos[j];
    const uint32_t v =
        static_cast<uint32_t>(words[p >> 1] >> ((p & 1u) * 32));
    min_value = v < min_value ? v : min_value;
  }
  return min_value;
}

constexpr BlockKernels kSse2Table = {
    Sse2BlockedMin64, Sse2BlockedMin32,
    Sse2BlockedAdd64, Sse2BlockedAdd32,
    Sse2BlockedLift64, Sse2BlockedLift32,
    Sse2GatherMin64, Sse2GatherMin32,
    Sse2BatchMin64, Sse2BatchMin32,
    Isa::kSse2, /*enabled=*/true,
};

}  // namespace

namespace internal {
const BlockKernels* Sse2KernelTable() noexcept { return &kSse2Table; }
}  // namespace internal

}  // namespace sbf::simd

#else  // !__SSE2__

namespace sbf::simd::internal {
const BlockKernels* Sse2KernelTable() noexcept { return nullptr; }
}  // namespace sbf::simd::internal

#endif
