#include "core/sbf_algebra.h"

namespace sbf {
namespace {

bool SameShape(const SpectralBloomFilter& a, const SpectralBloomFilter& b) {
  return a.m() == b.m() && a.hash().Compatible(b.hash());
}

}  // namespace

Status UnionInto(SpectralBloomFilter* dst, const SpectralBloomFilter& src) {
  if (!SameShape(*dst, src)) {
    return Status::FailedPrecondition(
        "SBF union requires identical parameters and hash functions");
  }
  for (uint64_t i = 0; i < dst->m(); ++i) {
    const uint64_t add = src.counters().Get(i);
    if (add > 0) dst->mutable_counters().Increment(i, add);
  }
  dst->set_total_items(dst->total_items() + src.total_items());
  return Status::Ok();
}

StatusOr<SpectralBloomFilter> Multiply(const SpectralBloomFilter& a,
                                       const SpectralBloomFilter& b) {
  if (!SameShape(a, b)) {
    return Status::FailedPrecondition(
        "SBF multiplication requires identical parameters and hash functions");
  }
  SpectralBloomFilter product = a.CloneEmpty();
  uint64_t total = 0;
  for (uint64_t i = 0; i < a.m(); ++i) {
    const uint64_t value = a.counters().Get(i) * b.counters().Get(i);
    if (value > 0) product.mutable_counters().Set(i, value);
    total += value;
  }
  // The product's "total items" is the sum of its counters over k — the
  // join-size analogue used by the unbiased estimator.
  product.set_total_items(total / a.k());
  return product;
}

std::vector<uint64_t> FilterByThreshold(const SpectralBloomFilter& filter,
                                        const std::vector<uint64_t>& candidates,
                                        uint64_t threshold) {
  std::vector<uint64_t> passing;
  for (uint64_t key : candidates) {
    if (filter.Estimate(key) >= threshold) passing.push_back(key);
  }
  return passing;
}

}  // namespace sbf
