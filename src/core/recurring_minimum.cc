#include "core/recurring_minimum.h"

#include <algorithm>

#include "util/check.h"
#include "util/audit.h"

namespace sbf {
namespace {

SbfOptions PrimaryOptions(const RecurringMinimumOptions& options) {
  SbfOptions sbf;
  sbf.m = options.primary_m;
  sbf.k = options.k;
  sbf.policy = SbfPolicy::kMinimumSelection;
  sbf.backing = options.backing;
  sbf.seed = options.seed;
  sbf.hash_kind = options.hash_kind;
  return sbf;
}

SbfOptions SecondaryOptions(const RecurringMinimumOptions& options) {
  SbfOptions sbf = PrimaryOptions(options);
  sbf.m = options.secondary_m;
  // A distinct seed: the secondary must use independent hash functions so
  // its Bloom errors are uncorrelated with the primary's.
  sbf.seed = options.seed ^ 0x5EC07DA21ULL;
  return sbf;
}

constexpr uint64_t kMarkerSeedSalt = 0xB100F11;

bool SameSbfOptions(const SbfOptions& a, const SbfOptions& b) {
  return a.m == b.m && a.k == b.k && a.policy == b.policy &&
         a.backing == b.backing && a.seed == b.seed &&
         a.hash_kind == b.hash_kind;
}

}  // namespace

RecurringMinimumSbf::RecurringMinimumSbf(RecurringMinimumOptions options)
    : options_(options),
      primary_(PrimaryOptions(options)),
      secondary_(SecondaryOptions(options)) {
  SBF_CHECK_MSG(options.primary_m >= 1 && options.secondary_m >= 1,
                "RM needs primary_m and secondary_m >= 1");
  if (options.use_marker_filter) {
    marker_.emplace(options.primary_m, options.k,
                    options.seed ^ kMarkerSeedSalt, options.hash_kind);
  }
  SBF_AUDIT_INVARIANTS(*this);
}

RecurringMinimumSbf RecurringMinimumSbf::WithTotalBudget(uint64_t total_m,
                                                         uint32_t k,
                                                         uint64_t seed) {
  RecurringMinimumOptions options;
  // 4:1 split: sweeping the share empirically minimizes the shared-budget
  // error around primary = 80% (the secondary only needs room for the
  // minority of single-minimum items).
  options.primary_m = std::max<uint64_t>(1, total_m * 4 / 5);
  options.secondary_m = std::max<uint64_t>(1, total_m - options.primary_m);
  options.k = k;
  options.seed = seed;
  return RecurringMinimumSbf(options);
}

bool RecurringMinimumSbf::MarkedInSecondary(uint64_t key) const {
  return marker_.has_value() && marker_->Contains(key);
}

void RecurringMinimumSbf::Insert(uint64_t key, uint64_t count) {
  primary_.Insert(key, count);

  // An item already tracked in the secondary keeps receiving every insert
  // there ("we perform insertions both to the primary and secondary SBF",
  // Section 3.3), so its secondary value never lags behind later
  // occurrences. The membership test is the marker filter when enabled,
  // the secondary's own lookup otherwise (a spurious secondary hit merely
  // routes extra inserts there, absorbed by the min-clamped lookup — but
  // it can skip the initialization below, the marker-less variant's small
  // residual false-negative window under heavy deletion churn; enable the
  // marker filter for the strict no-false-negative configuration).
  if (MarkedInSecondary(key) || secondary_.Estimate(key) > 0) {
    secondary_.Insert(key, count);
    return;
  }
  // Recurring minimum: no suspected error, the primary alone suffices.
  if (primary_.HasRecurringMinimum(key)) return;
  // First move: add the item to the secondary "with an initial value that
  // equals its minimal value from the primary SBF" — a plain SBF insert of
  // weight m_x. The additive form (rather than raising counters to m_x)
  // leaves a concrete deposit on every counter, so later deletions of this
  // item can never dig into co-located items' counts; the cost is only a
  // benign extra overestimate for sharers.
  const uint64_t primary_min = primary_.Estimate(key);
  if (primary_min > 0) secondary_.Insert(key, primary_min);
  ++moved_to_secondary_;
  if (marker_.has_value()) marker_->Add(key);
}

void RecurringMinimumSbf::Remove(uint64_t key, uint64_t count) {
  primary_.Remove(key, count);
  // Reverse of insert ("if it has a single minimum, or if it exists in
  // B_f, decrease its counters in the secondary SBF, unless at least one
  // of them is 0"): skipping the recurring-minimum case protects moved
  // items' counters from unpaired decrements by never-moved keys — at
  // worst the secondary retains a benign overestimate. Positions can
  // repeat (two hash functions may agree), so each counter must cover
  // count times its multiplicity among the k positions.
  if (primary_.HasRecurringMinimum(key) && !MarkedInSecondary(key)) return;
  uint64_t positions[HashFamily::kMaxK];
  const uint32_t k = secondary_.hash().k();
  secondary_.hash().Positions(key, positions);
  bool can_absorb = true;
  for (uint32_t i = 0; i < k && can_absorb; ++i) {
    uint64_t multiplicity = 0;
    for (uint32_t j = 0; j < k; ++j) multiplicity += (positions[j] == positions[i]);
    can_absorb =
        secondary_.counters().Get(positions[i]) >= count * multiplicity;
  }
  if (can_absorb) secondary_.Remove(key, count);
}

uint64_t RecurringMinimumSbf::Estimate(uint64_t key) const {
  const uint64_t primary_min = primary_.Estimate(key);
  if (!MarkedInSecondary(key) && primary_.HasRecurringMinimum(key)) {
    return primary_min;
  }
  // The secondary refines the estimate for suspected-error items; the
  // primary minimum is always a valid upper bound, so never exceed it.
  const uint64_t secondary_estimate = secondary_.Estimate(key);
  if (secondary_estimate > 0) {
    return std::min(primary_min, secondary_estimate);
  }
  return primary_min;
}

size_t RecurringMinimumSbf::MemoryUsageBits() const {
  size_t bits = primary_.MemoryUsageBits() + secondary_.MemoryUsageBits();
  if (marker_.has_value()) bits += marker_->MemoryUsageBits();
  return bits;
}

FilterHealth RecurringMinimumSbf::Health() const {
  FilterHealth health = primary_.Health();
  const FilterHealth secondary = secondary_.Health();
  health.saturation_clamps += secondary.saturation_clamps;
  health.underflow_clamps += secondary.underflow_clamps;
  if (static_cast<int>(secondary.state) > static_cast<int>(health.state)) {
    health.state = secondary.state;
  }
  return health;
}

SaturationStats RecurringMinimumSbf::saturation() const {
  SaturationStats stats = primary_.saturation();
  stats += secondary_.saturation();
  return stats;
}

Status RecurringMinimumSbf::ExpandTo(uint64_t new_primary_m,
                                     uint64_t new_secondary_m) {
  if (new_primary_m < options_.primary_m ||
      new_primary_m % options_.primary_m != 0 ||
      new_secondary_m < options_.secondary_m ||
      new_secondary_m % options_.secondary_m != 0) {
    return Status::InvalidArgument(
        "RM ExpandTo needs multiples of the current primary/secondary m");
  }
  // Expand copies, then commit all three together: a failure mid-sequence
  // must not leave primary, secondary and marker at inconsistent sizes
  // (Deserialize pins marker.m == primary_m, so a half-expanded filter
  // would serialize to a frame that rejects itself).
  SpectralBloomFilter primary = primary_;
  Status status = primary.ExpandTo(new_primary_m);
  if (!status.ok()) return status;
  SpectralBloomFilter secondary = secondary_;
  status = secondary.ExpandTo(new_secondary_m);
  if (!status.ok()) return status;
  std::optional<BloomFilter> marker = marker_;
  if (marker.has_value()) {
    status = marker->ExpandTo(new_primary_m);
    if (!status.ok()) return status;
  }
  primary_ = std::move(primary);
  secondary_ = std::move(secondary);
  marker_ = std::move(marker);
  options_.primary_m = new_primary_m;
  options_.secondary_m = new_secondary_m;
  SBF_AUDIT_INVARIANTS(*this);
  return Status::Ok();
}

std::vector<uint8_t> RecurringMinimumSbf::Serialize() const {
  SBF_AUDIT_INVARIANTS(*this);
  wire::Writer payload;
  payload.PutVarint(options_.primary_m);
  payload.PutVarint(options_.secondary_m);
  payload.PutVarint(options_.k);
  payload.PutU8(static_cast<uint8_t>(options_.backing));
  payload.PutU8(options_.hash_kind == HashFamily::Kind::kModuloMultiply ? 0
                                                                        : 1);
  payload.PutU8(options_.use_marker_filter ? 1 : 0);
  payload.PutU64(options_.seed);
  payload.PutVarint(moved_to_secondary_);
  payload.PutFrame(primary_.Serialize());
  payload.PutFrame(secondary_.Serialize());
  if (marker_.has_value()) payload.PutFrame(marker_->Serialize());
  return wire::SealFrame(wire::kMagicRecurringMinimum, wire::kFormatVersion,
                         std::move(payload));
}

StatusOr<RecurringMinimumSbf> RecurringMinimumSbf::Deserialize(
    wire::ByteSpan bytes) {
  auto reader = wire::OpenFrame(bytes, wire::kMagicRecurringMinimum,
                                wire::kFormatVersion, "RM filter");
  if (!reader.ok()) return reader.status();
  wire::Reader& in = reader.value();
  RecurringMinimumOptions options;
  options.primary_m = in.ReadVarint();
  options.secondary_m = in.ReadVarint();
  const uint64_t k = in.ReadVarint();
  const uint8_t backing = in.ReadU8();
  const uint8_t kind = in.ReadU8();
  const uint8_t use_marker = in.ReadU8();
  options.seed = in.ReadU64();
  const uint64_t moved = in.ReadVarint();
  if (!in.ok()) return in.status();
  if (options.primary_m < 1 || options.secondary_m < 1 || k < 1 || k > 64 ||
      backing > static_cast<uint8_t>(CounterBacking::kSerialScan) ||
      kind > 1 || use_marker > 1) {
    return Status::DataLoss("bad RM filter header");
  }
  options.k = static_cast<uint32_t>(k);
  options.backing = static_cast<CounterBacking>(backing);
  options.hash_kind = kind == 0 ? HashFamily::Kind::kModuloMultiply
                                : HashFamily::Kind::kDoubleMix;
  options.use_marker_filter = use_marker != 0;

  const wire::ByteSpan primary_frame = in.ReadFrameSpan();
  const wire::ByteSpan secondary_frame = in.ReadFrameSpan();
  const wire::ByteSpan marker_frame =
      options.use_marker_filter ? in.ReadFrameSpan() : wire::ByteSpan();
  if (!in.ok()) return in.status();
  Status status = in.ExpectEnd("RM filter");
  if (!status.ok()) return status;

  auto primary = SpectralBloomFilter::Deserialize(primary_frame);
  if (!primary.ok()) return primary.status();
  auto secondary = SpectralBloomFilter::Deserialize(secondary_frame);
  if (!secondary.ok()) return secondary.status();
  // The embedded filters must carry exactly the parameters the RM header
  // derives (secondary seed included) — anything else is a reassembled or
  // tampered message and would silently desynchronize the two SBFs.
  if (!SameSbfOptions(primary.value().options(), PrimaryOptions(options)) ||
      !SameSbfOptions(secondary.value().options(),
                      SecondaryOptions(options))) {
    return Status::DataLoss("RM embedded SBFs inconsistent with header");
  }

  std::optional<BloomFilter> marker;
  if (options.use_marker_filter) {
    auto loaded = BloomFilter::Deserialize(marker_frame);
    if (!loaded.ok()) return loaded.status();
    const HashFamily& hash = loaded.value().hash();
    if (loaded.value().m() != options.primary_m ||
        hash.k() != options.k ||
        hash.seed() != (options.seed ^ kMarkerSeedSalt) ||
        hash.kind() != options.hash_kind) {
      return Status::DataLoss("RM marker filter inconsistent with header");
    }
    marker.emplace(std::move(loaded).value());
  }

  RecurringMinimumSbf filter(options);
  filter.primary_ = std::move(primary).value();
  filter.secondary_ = std::move(secondary).value();
  filter.marker_ = std::move(marker);
  filter.moved_to_secondary_ = moved;
  SBF_AUDIT_INVARIANTS(filter);
  return filter;
}


Status RecurringMinimumSbf::CheckInvariants() const {
  if (options_.primary_m < 1 || options_.secondary_m < 1) {
    return Status::FailedPrecondition("RM: primary_m/secondary_m < 1");
  }
  if (!SameSbfOptions(primary_.options(), PrimaryOptions(options_))) {
    return Status::FailedPrecondition(
        "RM: primary SBF options disagree with the RM options");
  }
  if (!SameSbfOptions(secondary_.options(), SecondaryOptions(options_))) {
    return Status::FailedPrecondition(
        "RM: secondary SBF options disagree with the RM options (derived "
        "seed included)");
  }
  if (marker_.has_value() != options_.use_marker_filter) {
    return Status::FailedPrecondition(
        "RM: marker filter present iff use_marker_filter");
  }
  if (marker_.has_value()) {
    if (marker_->m() != options_.primary_m || marker_->k() != options_.k ||
        marker_->hash().seed() != (options_.seed ^ kMarkerSeedSalt)) {
      return Status::FailedPrecondition(
          "RM: marker filter parameters disagree with the RM options");
    }
  }
  // Items only reach the secondary through a move event, so with no moves
  // the secondary must be empty.
  if (moved_to_secondary_ == 0 && secondary_.total_items() != 0) {
    return Status::FailedPrecondition(
        "RM: secondary SBF holds items but no move events were recorded");
  }
  Status status = primary_.CheckInvariants();
  if (!status.ok()) return status;
  status = secondary_.CheckInvariants();
  if (!status.ok()) return status;
  if (marker_.has_value()) return marker_->CheckInvariants();
  return Status::Ok();
}

}  // namespace sbf
