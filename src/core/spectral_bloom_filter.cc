#include "core/spectral_bloom_filter.h"

#include <algorithm>

#include "core/batch_kernels.h"
#include "core/simd_kernels.h"
#include "sai/compact_counter_vector.h"
#include "sai/fixed_counter_vector.h"
#include "sai/serial_scan_counter_vector.h"
#include "util/check.h"
#include "util/fault_injection.h"
#include "util/audit.h"

namespace sbf {
namespace {

constexpr uint32_t kMaxK = 64;

// Aborts on invalid options. Runs in the options_ member initializer, i.e.
// before the hash family or counter vector are constructed — neither is
// well-defined for m == 0 or k == 0, so validating in the constructor body
// would be too late.
SbfOptions ValidatedOrDie(const SbfOptions& options) {
  const Status status = ValidateSbfOptions(options);
  SBF_CHECK_MSG(status.ok(), status.message().c_str());
  return options;
}

}  // namespace

Status ValidateSbfOptions(const SbfOptions& options) {
  if (options.m < 1) {
    return Status::InvalidArgument("SBF needs m >= 1");
  }
  if (options.k < 1 || options.k > kMaxK) {
    return Status::InvalidArgument("SBF needs 1 <= k <= 64");
  }
  return Status::Ok();
}

SpectralBloomFilter::SpectralBloomFilter(SbfOptions options)
    : options_(ValidatedOrDie(options)),
      hash_(options.k, options.m, options.seed, options.hash_kind),
      counters_(MakeCounterVector(options.backing, options.m)) {
  SBF_AUDIT_INVARIANTS(*this);
}

SpectralBloomFilter::SpectralBloomFilter(uint64_t m, uint32_t k)
    : SpectralBloomFilter([&] {
        SbfOptions options;
        options.m = m;
        options.k = k;
        return options;
      }()) {}

SpectralBloomFilter::SpectralBloomFilter(const SpectralBloomFilter& other)
    : options_(other.options_),
      hash_(other.hash_),
      counters_(other.counters_->Clone()),
      total_items_(other.total_items_),
      sum_identity_intact_(other.sum_identity_intact_) {}

SpectralBloomFilter& SpectralBloomFilter::operator=(
    const SpectralBloomFilter& other) {
  if (this == &other) return *this;
  options_ = other.options_;
  hash_ = other.hash_;
  counters_ = other.counters_->Clone();
  total_items_ = other.total_items_;
  sum_identity_intact_ = other.sum_identity_intact_;
  return *this;
}

void SpectralBloomFilter::Insert(uint64_t key, uint64_t count) {
  SBF_DCHECK(count > 0);
  uint64_t positions[kMaxK];
  hash_.Positions(key, positions);
  const uint32_t k = options_.k;

  if (options_.policy == SbfPolicy::kMinimumSelection) {
    for (uint32_t i = 0; i < k; ++i) counters_->Increment(positions[i], count);
  } else {
    // Minimal Increase, batch form (Section 3.2): raise the minimal
    // counter(s) by `count` and lift every other counter to at least
    // m_x + count. Equivalent to `count` iterative single insertions.
    MinimalIncreaseProbe(*counters_, positions, k, count);
  }
  total_items_ += count;

#ifdef SBF_AUDIT
  // Key-local audit (O(k), cheap enough for every operation): both
  // policies leave each of the key's counters at `count` or above —
  // unless the backing cannot even represent `count` and clamped.
  if (count <= counters_->MaxValue()) {
    SBF_CHECK_MSG(Estimate(key) >= count,
                  "SBF audit: insert did not raise the key's minimum");
  }
#endif

  // Fault-injection site (no-op in production builds): a soft memory error
  // flips one bit of one counter under write traffic. Routed through
  // Get/Set so a flip past the backing's range clamps like any other
  // out-of-range value instead of corrupting the encoding.
  size_t flip_index;
  uint32_t flip_bit;
  if (fault::NextCounterFlip(options_.m, &flip_index, &flip_bit)) {
    counters_->Set(flip_index,
                   counters_->Get(flip_index) ^ (uint64_t{1} << flip_bit));
  }
}

void SpectralBloomFilter::Remove(uint64_t key, uint64_t count) {
  SBF_DCHECK(count > 0);
  uint64_t positions[kMaxK];
  hash_.Positions(key, positions);
  const uint32_t k = options_.k;

  if (options_.policy == SbfPolicy::kMinimumSelection) {
    // Counters of genuinely inserted data never underflow under MS;
    // Decrement checks that invariant.
    for (uint32_t i = 0; i < k; ++i) counters_->Decrement(positions[i], count);
  } else {
    // Under Minimal Increase counters may hold less than the number of
    // deletions of the keys mapped onto them; clamping at zero is what
    // makes deletions unsound for MI (false negatives, Figure 8).
    for (uint32_t i = 0; i < k; ++i) {
      const uint64_t v = counters_->Get(positions[i]);
      counters_->Set(positions[i], v >= count ? v - count : 0);
    }
  }
  total_items_ -= std::min(total_items_, count);
}

namespace {

// Devirtualized batch kernels over a concrete backing CV. Each preserves
// the scalar operation's semantics exactly; only the memory schedule
// changes (positions hashed kBatchWindow keys ahead, counters prefetched).

// kBranchFree selects the min-of-k probe: branch-free conditional moves
// for the fixed-width backings (Get is one load, the early-exit branch is
// pure misprediction cost), early-exit for the scan-based backings (Get is
// expensive, skipping probes after a zero dominates).
template <bool kBranchFree, typename CV>
void EstimateBatchImpl(const CV& cv, const HashFamily& hash, uint32_t k,
                       const uint64_t* keys, size_t n, uint64_t* out) {
  BatchPipeline(
      cv, keys, n,
      [&hash](uint64_t key, uint64_t* pos) { hash.Positions(key, pos); },
      PrefetchEachPosition{k},
      [k, out](const CV& counters, const uint64_t* pos, size_t i) {
        if constexpr (kBranchFree) {
          out[i] = BranchFreeMin(counters, pos, k);
        } else {
          out[i] = EarlyExitMin(counters, pos, k);
        }
      });
}

template <typename CV>
void InsertBatchImpl(CV& cv, const HashFamily& hash, SbfPolicy policy,
                     uint32_t k, const uint64_t* keys, size_t n,
                     uint64_t count) {
  const auto pos_of = [&hash](uint64_t key, uint64_t* pos) {
    hash.Positions(key, pos);
  };
  if (policy == SbfPolicy::kMinimumSelection) {
    BatchPipeline(cv, keys, n, pos_of, PrefetchEachPosition{k},
                  [k, count](CV& counters, const uint64_t* pos, size_t) {
                    for (uint32_t j = 0; j < k; ++j) {
                      counters.Increment(pos[j], count);
                    }
                  });
    return;
  }
  // Minimal Increase, batch form — identical to the scalar Insert: lift
  // every counter below m_x + count up to it (shared probe kernel).
  BatchPipeline(cv, keys, n, pos_of, PrefetchEachPosition{k},
                [k, count](CV& counters, const uint64_t* pos, size_t) {
                  MinimalIncreaseProbe(counters, pos, k, count);
                });
}

}  // namespace

void SpectralBloomFilter::EstimateBatch(const uint64_t* keys, size_t n,
                                        uint64_t* out) const {
  const uint32_t k = options_.k;
  switch (options_.backing) {
    case CounterBacking::kFixed64:
    case CounterBacking::kFixed32: {
      const auto& cv = static_cast<const FixedWidthCounterVector&>(*counters_);
      const simd::BlockKernels& kn = simd::Active();
      if (kn.enabled) {
        // Vectorized gathered min over the k absolute positions (the
        // non-blocked layout has no single-line locality to exploit, but
        // the min reduction itself vectorizes; see core/simd_kernels.h).
        const uint64_t* words = cv.words();
        const auto gather = options_.backing == CounterBacking::kFixed64
                                ? kn.gather_min64
                                : kn.gather_min32;
        BatchPipeline(
            cv, keys, n,
            [this](uint64_t key, uint64_t* pos) { hash_.Positions(key, pos); },
            PrefetchEachPosition{k},
            [gather, words, k, out](const FixedWidthCounterVector&,
                                    const uint64_t* pos, size_t i) {
              out[i] = gather(words, pos, k);
            });
        return;
      }
      EstimateBatchImpl<true>(cv, hash_, k, keys, n, out);
      return;
    }
    case CounterBacking::kCompact:
      EstimateBatchImpl<false>(
          static_cast<const CompactCounterVector&>(*counters_), hash_, k,
          keys, n, out);
      return;
    case CounterBacking::kSerialScan:
      EstimateBatchImpl<false>(
          static_cast<const SerialScanCounterVector&>(*counters_), hash_, k,
          keys, n, out);
      return;
  }
}

void SpectralBloomFilter::InsertBatch(const uint64_t* keys, size_t n,
                                      uint64_t count) {
  SBF_DCHECK(count > 0);
  const uint32_t k = options_.k;
  switch (options_.backing) {
    case CounterBacking::kFixed64:
    case CounterBacking::kFixed32:
      InsertBatchImpl(static_cast<FixedWidthCounterVector&>(*counters_),
                      hash_, options_.policy, k, keys, n, count);
      break;
    case CounterBacking::kCompact:
      InsertBatchImpl(static_cast<CompactCounterVector&>(*counters_), hash_,
                      options_.policy, k, keys, n, count);
      break;
    case CounterBacking::kSerialScan:
      InsertBatchImpl(static_cast<SerialScanCounterVector&>(*counters_),
                      hash_, options_.policy, k, keys, n, count);
      break;
  }
  total_items_ += n * count;
}

void SpectralBloomFilter::ApplyAddBatch(
    const std::pair<uint64_t, uint64_t>* entries, size_t n) {
  if (n == 0) return;
  // The decoded-view path pays one span decode + encode per touched span.
  // That always beats serial-scan's scalar writes (each a full group
  // re-encode), but compact's scalar Increment is an O(1) in-place bump —
  // there the view only wins once probes outnumber counters (every span
  // amortizes its decode over many hits). MI lifts depend on the current
  // minimum at apply time (no commutative bulk form), and the fixed
  // backings' Increment is an O(1) inline word op the view cannot beat;
  // all those cases keep the scalar order.
  const bool view_pays =
      options_.backing == CounterBacking::kSerialScan ||
      (options_.backing == CounterBacking::kCompact &&
       n >= counters_->size() / options_.k + 1);
  if (options_.policy != SbfPolicy::kMinimumSelection || !view_pays) {
    for (size_t e = 0; e < n; ++e) Insert(entries[e].first, entries[e].second);
    return;
  }
  const uint32_t k = options_.k;
  std::vector<std::pair<uint64_t, uint64_t>> deltas;  // (position, count)
  deltas.reserve(n * k);
  uint64_t positions[kMaxK];
  uint64_t items = 0;
  for (size_t e = 0; e < n; ++e) {
    hash_.Positions(entries[e].first, positions);
    for (uint32_t j = 0; j < k; ++j) {
      deltas.emplace_back(positions[j], entries[e].second);
    }
    items += entries[e].second;
  }
  // Cluster the increments by decoded span so the view refills each span
  // once. Only span membership matters (clamped adds within one counter
  // commute), so a dense batch uses a two-pass counting sort by span —
  // O(probes + spans) beats the comparison sort that otherwise dominates
  // the flush. A sparse batch would pay more for the span histogram than
  // the sort, so it keeps std::sort.
  const size_t spans =
      counters_->size() / DecodeView::kSpanCounters + 1;
  if (deltas.size() >= spans) {
    std::vector<uint32_t> first_in_span(spans + 1, 0);
    for (const auto& [pos, count] : deltas) {
      ++first_in_span[pos / DecodeView::kSpanCounters + 1];
    }
    for (size_t s = 1; s <= spans; ++s) {
      first_in_span[s] += first_in_span[s - 1];
    }
    std::vector<std::pair<uint64_t, uint64_t>> clustered(deltas.size());
    for (const auto& delta : deltas) {
      clustered[first_in_span[delta.first / DecodeView::kSpanCounters]++] =
          delta;
    }
    deltas.swap(clustered);
  } else {
    std::sort(deltas.begin(), deltas.end());
  }
  {
    DecodeView view(*counters_);
    for (const auto& [pos, count] : deltas) {
      view.Increment(static_cast<size_t>(pos), count);
    }
  }  // write-back + clamp-tally merge on view destruction
  total_items_ += items;
  SBF_AUDIT_INVARIANTS(*this);
}

uint64_t SpectralBloomFilter::Estimate(uint64_t key) const {
  uint64_t positions[kMaxK];
  hash_.Positions(key, positions);
  uint64_t min_value = counters_->Get(positions[0]);
  for (uint32_t i = 1; i < options_.k; ++i) {
    min_value = std::min(min_value, counters_->Get(positions[i]));
    if (min_value == 0) break;
  }
  return min_value;
}

size_t SpectralBloomFilter::MemoryUsageBits() const {
  return counters_->MemoryUsageBits();
}

std::string SpectralBloomFilter::Name() const {
  return options_.policy == SbfPolicy::kMinimumSelection ? "MS" : "MI";
}

std::vector<uint64_t> SpectralBloomFilter::CounterValues(uint64_t key) const {
  uint64_t positions[kMaxK];
  hash_.Positions(key, positions);
  std::vector<uint64_t> values(options_.k);
  for (uint32_t i = 0; i < options_.k; ++i) {
    values[i] = counters_->Get(positions[i]);
  }
  return values;
}

bool SpectralBloomFilter::HasRecurringMinimum(uint64_t key) const {
  uint64_t positions[kMaxK];
  hash_.Positions(key, positions);
  uint64_t min_value = ~0ull;
  uint32_t min_count = 0;
  for (uint32_t i = 0; i < options_.k; ++i) {
    const uint64_t v = counters_->Get(positions[i]);
    if (v < min_value) {
      min_value = v;
      min_count = 1;
    } else if (v == min_value) {
      ++min_count;
    }
  }
  return min_count >= 2;
}

SpectralBloomFilter SpectralBloomFilter::CloneEmpty() const {
  return SpectralBloomFilter(options_);
}

FilterHealth SpectralBloomFilter::Health() const {
  FilterHealth health;
  health.counters = options_.m;
  const OccupancyCounts occupancy = counters_->ScanOccupancy();
  health.nonzero_counters = occupancy.nonzero;
  health.saturated_counters = occupancy.saturated;
  health.saturation_clamps = counters_->saturation().saturation_clamps;
  health.underflow_clamps = counters_->saturation().underflow_clamps;
  FinalizeHealth(options_.k, options_.health, &health);
  return health;
}

namespace {

// Copies every old counter's value onto its c-position preimage set in the
// expanded vector (see ExpandTo's contract in the header). Both layouts
// fall out of the hash definitions for new_m = c * old_m:
//  * kModuloMultiply probes floor(frac * m): floor division by c maps new
//    position p to old position p / c, so old i owns [i*c, (i+1)*c).
//  * kDoubleMix probes (g1 + i*g2) mod m: since old_m divides new_m, new
//    positions reduce to old ones mod old_m, so old i owns {i + j*old_m}.
void FoldExpandCounters(const CounterVector& old_cv, uint64_t c,
                        HashFamily::Kind kind, CounterVector* next) {
  const size_t old_m = old_cv.size();
  constexpr size_t kChunk = 256;
  uint64_t values[kChunk];
  for (size_t base = 0; base < old_m; base += kChunk) {
    const size_t len = std::min(kChunk, old_m - base);
    old_cv.DecodeBlock(base, len, values);
    for (size_t j = 0; j < len; ++j) {
      if (values[j] == 0) continue;
      const uint64_t i = base + j;
      for (uint64_t rep = 0; rep < c; ++rep) {
        const uint64_t p = kind == HashFamily::Kind::kModuloMultiply
                               ? i * c + rep
                               : i + rep * old_m;
        next->Set(p, values[j]);
      }
    }
  }
}

}  // namespace

Status SpectralBloomFilter::ExpandTo(uint64_t new_m) {
  if (new_m == options_.m) return Status::Ok();
  if (new_m < options_.m || new_m % options_.m != 0) {
    return Status::InvalidArgument(
        "ExpandTo needs new_m to be a multiple of the current m");
  }
  if (fault::ShouldFailAllocation()) {
    return Status::ResourceExhausted("SBF expansion allocation failed");
  }
  const uint64_t c = new_m / options_.m;
  std::unique_ptr<CounterVector> next =
      MakeCounterVector(options_.backing, new_m);
  FoldExpandCounters(*counters_, c, options_.hash_kind, next.get());
  next->MergeSaturationStats(counters_->saturation());
  // Same seed, larger range: HashFamily derives all per-probe parameters
  // from the seed alone, so rebuilding it keeps the position
  // correspondence FoldExpandCounters relied on.
  hash_ = HashFamily(options_.k, new_m, options_.seed, options_.hash_kind);
  counters_ = std::move(next);
  options_.m = new_m;
  SBF_AUDIT_INVARIANTS(*this);
  return Status::Ok();
}

StatusOr<bool> SpectralBloomFilter::ExpandIfDegraded() {
  if (Health().state == HealthState::kHealthy) return false;
  const Status status = ExpandTo(options_.m * 2);
  if (!status.ok()) return status;
  return true;
}

std::vector<uint8_t> SpectralBloomFilter::Serialize() const {
  SBF_AUDIT_INVARIANTS(*this);
  wire::Writer payload;
  payload.PutVarint(options_.m);
  payload.PutVarint(options_.k);
  payload.PutU8(options_.policy == SbfPolicy::kMinimumSelection ? 0 : 1);
  payload.PutU8(static_cast<uint8_t>(options_.backing));
  payload.PutU8(options_.hash_kind == HashFamily::Kind::kModuloMultiply ? 0
                                                                        : 1);
  payload.PutU64(options_.seed);
  payload.PutVarint(total_items_);
  payload.PutFrame(counters_->Serialize());
  return wire::SealFrame(wire::kMagicSbf, wire::kFormatVersion,
                         std::move(payload));
}

StatusOr<SpectralBloomFilter> SpectralBloomFilter::Deserialize(
    wire::ByteSpan bytes) {
  auto reader =
      wire::OpenFrame(bytes, wire::kMagicSbf, wire::kFormatVersion, "SBF");
  if (!reader.ok()) return reader.status();
  wire::Reader& in = reader.value();

  SbfOptions options;
  options.m = in.ReadVarint();
  const uint64_t k = in.ReadVarint();
  const uint8_t policy = in.ReadU8();
  const uint8_t backing = in.ReadU8();
  const uint8_t kind = in.ReadU8();
  options.seed = in.ReadU64();
  const uint64_t total_items = in.ReadVarint();
  if (!in.ok()) return in.status();
  if (k > kMaxK || policy > 1 || kind > 1 ||
      backing > static_cast<uint8_t>(CounterBacking::kSerialScan)) {
    return Status::DataLoss("bad SBF header");
  }
  options.k = static_cast<uint32_t>(k);
  options.policy =
      policy == 0 ? SbfPolicy::kMinimumSelection : SbfPolicy::kMinimalIncrease;
  options.backing = static_cast<CounterBacking>(backing);
  options.hash_kind = kind == 0 ? HashFamily::Kind::kModuloMultiply
                                : HashFamily::Kind::kDoubleMix;
  const Status valid = ValidateSbfOptions(options);
  if (!valid.ok()) return Status::DataLoss(valid.message());

  // The embedded counter frame bounds its own allocations against the
  // actual message size; deserializing it *first* means a corrupted m can
  // never drive the filter allocation below (size must match), and a
  // backing mismatch can never reach the devirtualized batch kernels.
  const wire::ByteSpan counter_frame = in.ReadFrameSpan();
  if (!in.ok()) return in.status();
  Status status = in.ExpectEnd("SBF");
  if (!status.ok()) return status;
  auto cv = DeserializeCounterVector(counter_frame);
  if (!cv.ok()) return cv.status();
  if (cv.value()->size() != options.m) {
    return Status::DataLoss("SBF counter vector size disagrees with m");
  }
  if (!MatchesBacking(*cv.value(), options.backing)) {
    return Status::DataLoss("SBF counter vector backing mismatch");
  }

  SpectralBloomFilter filter(options);
  filter.counters_ = std::move(cv).value();
  filter.total_items_ = total_items;
  // The frame does not record whether the writer's accounting was ever
  // adjusted out of band, so the sum-identity audit rule cannot be
  // re-armed on a loaded filter.
  filter.sum_identity_intact_ = false;
  SBF_AUDIT_INVARIANTS(filter);
  return filter;
}


Status SpectralBloomFilter::CheckInvariants() const {
  Status status = ValidateSbfOptions(options_);
  if (!status.ok()) return status;
  if (hash_.m() != options_.m || hash_.k() != options_.k ||
      hash_.seed() != options_.seed || hash_.kind() != options_.hash_kind) {
    return Status::FailedPrecondition(
        "SBF: hash family disagrees with options");
  }
  if (counters_ == nullptr || counters_->size() != options_.m) {
    return Status::FailedPrecondition(
        "SBF: counter vector missing or size disagrees with m");
  }
  if (!MatchesBacking(*counters_, options_.backing)) {
    return Status::FailedPrecondition(
        "SBF: counter vector backing disagrees with options");
  }
  status = counters_->CheckInvariants();
  if (!status.ok()) return status;
  // Spectral sum bound: under Minimum Selection every insert raises k
  // counters by count and every remove lowers k by count, so with no clamp
  // events sum(C) >= k * total_items — expansion replicates counters and
  // can only raise the sum, a corrupted (lowered) counter breaks it.
  const SaturationStats& stats = counters_->saturation();
  if (sum_identity_intact_ &&
      options_.policy == SbfPolicy::kMinimumSelection &&
      stats.saturation_clamps == 0 && stats.underflow_clamps == 0 &&
      total_items_ <= (~uint64_t{0}) / options_.k) {
    if (counters_->Total() < total_items_ * options_.k) {
      return Status::FailedPrecondition(
          "SBF: counter sum below k * total_items (corrupted or "
          "under-counted backing)");
    }
  }
  return Status::Ok();
}

}  // namespace sbf
