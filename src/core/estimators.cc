#include "core/estimators.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace sbf {
namespace {

// Applies the Lemma 3 correction to a raw counter mean.
double Debias(double counter_mean, const SpectralBloomFilter& filter) {
  const double k = filter.k();
  const double m = static_cast<double>(filter.m());
  const double n_total = static_cast<double>(filter.total_items());
  return (counter_mean - k * n_total / m) / (1.0 - k / m);
}

}  // namespace

double UnbiasedEstimate(const SpectralBloomFilter& filter, uint64_t key) {
  SBF_CHECK_MSG(filter.m() > filter.k(), "unbiased estimator needs m > k");
  const std::vector<uint64_t> values = filter.CounterValues(key);
  double sum = 0.0;
  for (uint64_t v : values) sum += static_cast<double>(v);
  return Debias(sum / static_cast<double>(values.size()), filter);
}

double ClampedUnbiasedEstimate(const SpectralBloomFilter& filter,
                               uint64_t key) {
  const double unbiased = UnbiasedEstimate(filter, key);
  const double upper = static_cast<double>(filter.Estimate(key));
  return std::clamp(unbiased, 0.0, upper);
}

double BoostedUnbiasedEstimate(const SpectralBloomFilter& filter,
                               uint64_t key, uint32_t groups) {
  SBF_CHECK_MSG(groups >= 1, "boosted estimator needs >= 1 group");
  SBF_CHECK_MSG(filter.m() > filter.k(), "unbiased estimator needs m > k");
  const std::vector<uint64_t> values = filter.CounterValues(key);
  const uint32_t k = static_cast<uint32_t>(values.size());
  const uint32_t effective_groups = std::min(groups, k);

  // Split the k counters into nearly even contiguous groups, debias each
  // group mean, take the median of the group means.
  std::vector<double> means;
  means.reserve(effective_groups);
  uint32_t begin = 0;
  for (uint32_t g = 0; g < effective_groups; ++g) {
    const uint32_t size = (k - begin) / (effective_groups - g);
    double sum = 0.0;
    for (uint32_t i = begin; i < begin + size; ++i) {
      sum += static_cast<double>(values[i]);
    }
    means.push_back(Debias(sum / size, filter));
    begin += size;
  }
  std::nth_element(means.begin(), means.begin() + means.size() / 2,
                   means.end());
  return means[means.size() / 2];
}

double HybridRmUnbiasedEstimate(const SpectralBloomFilter& filter,
                                uint64_t key) {
  if (filter.HasRecurringMinimum(key)) {
    return static_cast<double>(filter.Estimate(key));
  }
  return ClampedUnbiasedEstimate(filter, key);
}

}  // namespace sbf
