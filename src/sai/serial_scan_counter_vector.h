#ifndef SBF_SAI_SERIAL_SCAN_COUNTER_VECTOR_H_
#define SBF_SAI_SERIAL_SCAN_COUNTER_VECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "bitstream/bit_vector.h"
#include "bitstream/steps_code.h"
#include "sai/counter_vector.h"
#include "util/prefetch.h"

namespace sbf {

// The paper's compact alternative storage (Section 4.5): counters are kept
// in a prefix-free encoding (the "steps" code escaping to Elias delta, so a
// counter of value c costs close to log c bits) and only coarse offsets are
// kept — one per group of `group_size` counters, standing in for the C1/C2
// coarse levels. A lookup seeks to the group start and serially decodes up
// to group_size codewords, i.e. O(log log N)-style scan instead of O(1),
// in exchange for dropping the per-item offset structures.
//
// Counters are stored directly under the steps code (whose first step
// already represents 0); only the Elias escape inside the code applies the
// paper's code(c+1) shift (Section 4.5, footnote 1).
//
// Updates re-encode the affected group inside its slack-padded region,
// borrowing slack from following groups when needed and refreshing the
// whole array when the slack to the right is exhausted, exactly like
// CompactCounterVector.
class SerialScanCounterVector final : public CounterVector {
 public:
  struct Options {
    size_t group_size = 16;
    double slack_per_counter = 0.5;
    // Step widths of the small-counter code; {0, 0} is the paper's
    // "0 -> '0', 1 -> '10', else '11' + Elias" example.
    std::vector<uint32_t> step_widths = {0, 0};
  };

  explicit SerialScanCounterVector(size_t m)
      : SerialScanCounterVector(m, Options()) {}
  SerialScanCounterVector(size_t m, Options options);

  [[nodiscard]] size_t size() const noexcept override { return m_; }
  [[nodiscard]] uint64_t Get(size_t i) const override;
  void Set(size_t i, uint64_t value) override;
  void Reset() override;
  size_t MemoryUsageBits() const override;
  std::unique_ptr<CounterVector> Clone() const override;
  std::string Name() const override { return "serial-scan"; }

  // 'SBss' frame: {varint m, varint group_size, u64 slack bit-pattern,
  // varint step count + per-step varint widths, Elias counter stream}.
  // Like the compact backing, values are serialized and the grouped
  // layout is rebuilt on load.
  std::vector<uint8_t> Serialize() const override;

  // Audits offset monotonicity, per-group used-bit bookkeeping vs. a
  // re-encode of the decoded values, and slice-layout bounds.
  Status CheckInvariants() const override;
  static StatusOr<std::unique_ptr<CounterVector>> Deserialize(
      wire::ByteSpan bytes);

  // Pulls in the words a lookup serially decodes from the group start.
  void PrefetchCounter(size_t i) const override {
    const size_t g = i / options_.group_size;
    const size_t word = group_start_[g] >> 6;
    SBF_PREFETCH(bits_.words() + word);
    // A second line when the group's region spans one.
    if (((group_start_[g + 1] - 1) >> 6) > word + 7) {
      SBF_PREFETCH(bits_.words() + word + 8);
    }
  }
  // Group-sorts its indices (when unsorted) and serves each group's
  // entries from one serial decode of that group — the payoff is largest
  // here, where a scalar Get re-decodes the group prefix per index.
  void GetMany(const uint64_t* idx, size_t n, uint64_t* out) const override;
  // One serial decode per overlapped group (skipping the prefix before
  // `first` in the first group).
  void DecodeBlock(size_t first, size_t n, uint64_t* out) const override;
  // Re-encodes each overlapped group once instead of once per counter.
  void EncodeBlock(size_t first, size_t n, const uint64_t* values) override;

  // Payload bits of the current encoding (sum of codeword lengths).
  size_t EncodedBits() const;
  // Bits of the base array (payload + slack).
  size_t BaseArrayBits() const { return bits_.size_bits(); }
  // Coarse-offset bookkeeping bits.
  size_t OverheadBits() const;
  size_t rebuild_count() const { return rebuilds_; }

 private:
  size_t NumItemsInGroup(size_t g) const;
  size_t RegionBits(size_t g) const {
    return group_start_[g + 1] - group_start_[g];
  }
  size_t FreeBits(size_t g) const { return RegionBits(g) - used_[g]; }
  void DecodeGroup(size_t g, uint64_t* out) const;
  // Encoded size of `count` values under the configured code.
  size_t EncodedSize(const uint64_t* values, size_t count) const;
  void EncodeGroupAt(size_t g, const uint64_t* values, size_t count);
  bool BorrowSlack(size_t g, size_t need);
  void Rebuild(std::vector<uint64_t> values);

  size_t m_;
  Options options_;
  StepsCode code_;
  size_t num_groups_;
  BitVector bits_;
  std::vector<uint64_t> group_start_;
  std::vector<uint32_t> used_;
  size_t rebuilds_ = 0;
};

}  // namespace sbf

#endif  // SBF_SAI_SERIAL_SCAN_COUNTER_VECTOR_H_
