#ifndef SBF_SAI_STRING_ARRAY_INDEX_H_
#define SBF_SAI_STRING_ARRAY_INDEX_H_

#include <cstdint>
#include <vector>

#include "bitstream/bit_vector.h"
#include "bitstream/rank_select.h"

namespace sbf {

// The String-Array Index (paper Section 4.3): a static index over an array
// of m variable-length bit strings concatenated into N bits, answering
// "where does string i start?" in O(1) time using o(N) + O(m) extra bits.
//
// Faithful three-level construction:
//
//  Level 1  A coarse offset array C1 holds the absolute offset of every
//           log N-th string (width ceil(log N) bits per entry).
//  Level 2  A level-1 group larger than log^3 N bits gets a complete
//           offset vector (absolute per-item offsets); smaller groups get
//           a level-2 coarse array C2 of chunk offsets relative to the
//           group start, chunks holding log log N items each.
//  Level 3  A chunk larger than (log log N)^3 bits gets a mini offset
//           vector of per-item offsets relative to the chunk start;
//           smaller chunks are resolved through a shared lookup table
//           keyed by the chunk's length configuration L(S'') — each chunk
//           stores only a configuration id, and each distinct
//           configuration stores its prefix-offset row once. (The paper
//           precomputes all configurations; we materialize exactly the
//           configurations that occur, which Section 4.7 endorses as the
//           practical variant.)
//
// Flag bit-vectors plus rank directories map groups/chunks to their slot
// in the packed vector-of-offset-vectors, exactly the rank-based
// translation of Section 4.7.1.
//
// The structure is static: build it over a frozen array (e.g. a refreshed
// SBF base array); the dynamic path is CompactCounterVector.
class StringArrayIndex {
 public:
  struct Options {
    // All zero values mean "derive from N as in the paper".
    size_t l1_group_items = 0;       // default: floor(log2 N)
    size_t l2_chunk_items = 0;       // default: floor(log2(l1_group_items))
    size_t l1_threshold_bits = 0;    // default: (log2 N)^3
    size_t lookup_threshold_bits = 0;  // default: (log2 log2 N)^3
  };

  struct ComponentSizes {
    size_t c1_bits = 0;              // level-1 coarse offsets
    size_t l2_offset_vector_bits = 0;  // complete vectors + C2 coarse arrays
    size_t l3_offset_vector_bits = 0;  // chunk mini offset vectors
    size_t lookup_table_bits = 0;    // config rows + per-chunk config ids
    size_t flags_and_rank_bits = 0;  // flag vectors + rank directories

    size_t TotalBits() const {
      return c1_bits + l2_offset_vector_bits + l3_offset_vector_bits +
             lookup_table_bits + flags_and_rank_bits;
    }
  };

  // Builds the index for strings with the given bit lengths. O(m) time.
  explicit StringArrayIndex(const std::vector<uint32_t>& lengths)
      : StringArrayIndex(lengths, Options()) {}
  StringArrayIndex(const std::vector<uint32_t>& lengths, Options options);

  StringArrayIndex(const StringArrayIndex&) = delete;
  StringArrayIndex& operator=(const StringArrayIndex&) = delete;

  size_t num_strings() const { return m_; }
  // Total payload bits N of the indexed string array.
  size_t total_bits() const { return total_bits_; }

  // Bit offset of string i within the concatenated array; Offset(m) == N.
  size_t Offset(size_t i) const;

  // Reads string i (must be at most 64 bits long) out of `data`, which
  // must be the concatenated string array this index was built for.
  uint64_t Read(const BitVector& data, size_t i) const {
    const size_t begin = Offset(i);
    return data.GetBits(begin, static_cast<uint32_t>(Offset(i + 1) - begin));
  }

  // Index overhead in bits (everything except the string payload).
  size_t IndexBits() const { return component_sizes().TotalBits(); }
  ComponentSizes component_sizes() const;

  // Number of distinct lookup-table configurations materialized.
  size_t num_lookup_configs() const { return num_configs_; }
  // Effective parameters (after clamping), exposed for tests.
  size_t l1_group_items() const { return b1_; }
  size_t l2_chunk_items() const { return b2_; }

 private:
  size_t m_;
  size_t total_bits_;
  size_t b1_;               // items per level-1 group
  size_t b2_;               // items per level-2 chunk
  size_t chunks_per_group_;
  size_t t1_;               // complete-offset-vector threshold (bits)
  size_t t0_;               // lookup-table threshold (bits)
  uint32_t w_abs_;          // width of absolute offsets
  uint32_t w_rel_;          // width of group-relative offsets
  uint32_t w_cfg_;          // width of in-chunk (config) offsets
  uint32_t w_id_;           // width of a config id

  BitVector c1_;            // group offsets, packed w_abs_
  BitVector group_flags_;   // 1 = group has a complete offset vector
  RankSelect group_rank_;
  BitVector complete_;      // complete vectors, stride b1_*w_abs_
  BitVector c2_;            // chunk offsets, stride chunks_per_group_*w_rel_
  BitVector chunk_flags_;   // over chunks of non-complete groups
  RankSelect chunk_rank_;
  BitVector l3_;            // mini offset vectors, stride b2_*w_rel_
  BitVector lt_ids_;        // config ids for lookup-table chunks
  BitVector configs_;       // config rows, stride b2_*w_cfg_
  size_t num_configs_ = 0;
};

}  // namespace sbf

#endif  // SBF_SAI_STRING_ARRAY_INDEX_H_
