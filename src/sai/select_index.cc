#include "sai/select_index.h"

#include "util/check.h"

namespace sbf {

SelectIndex::SelectIndex(const std::vector<uint32_t>& lengths)
    : m_(lengths.size()) {
  SBF_CHECK_MSG(m_ >= 1, "select index needs at least one string");
  total_bits_ = 0;
  for (uint32_t len : lengths) {
    // The select reduction needs one distinct marker position per string,
    // so every string must occupy at least one bit (true for SBF counter
    // fields, whose width is >= 1).
    SBF_CHECK_MSG(len >= 1, "select index requires positive lengths");
    total_bits_ += len;
  }

  markers_ = BitVector(total_bits_);
  size_t offset = 0;
  for (uint32_t len : lengths) {
    markers_.SetBit(offset, true);
    offset += len;
  }
  select_ = RankSelect(&markers_);
}

size_t SelectIndex::Offset(size_t i) const {
  SBF_DCHECK(i <= m_);
  if (i == m_) return total_bits_;
  return select_.Select1(i);
}


Status SelectIndex::CheckInvariants() const {
  if (m_ < 1) {
    return Status::FailedPrecondition("select index: no strings");
  }
  if (markers_.size_bits() != total_bits_) {
    return Status::FailedPrecondition(
        "select index: marker vector size disagrees with total bits");
  }
  // Exactly one marker per string, and string 0 starts at offset 0.
  if (markers_.PopCount() != m_) {
    return Status::FailedPrecondition(
        "select index: marker count disagrees with the string count");
  }
  if (!markers_.GetBit(0)) {
    return Status::FailedPrecondition(
        "select index: first string does not start at offset 0");
  }
  return select_.CheckInvariants();
}

}  // namespace sbf
