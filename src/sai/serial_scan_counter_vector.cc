#include "sai/serial_scan_counter_vector.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "bitstream/bit_writer.h"
#include "sai/counter_codec.h"
#include "util/bits.h"
#include "util/check.h"

namespace sbf {
namespace {

constexpr size_t kMaxGroupSize = 256;

}  // namespace

SerialScanCounterVector::SerialScanCounterVector(size_t m, Options options)
    : m_(m), options_(std::move(options)), code_(options_.step_widths) {
  SBF_CHECK_MSG(m >= 1, "counter vector needs m >= 1");
  SBF_CHECK_MSG(
      options_.group_size >= 1 && options_.group_size <= kMaxGroupSize,
      "group size out of range");
  num_groups_ = CeilDiv(m_, options_.group_size);
  Rebuild(std::vector<uint64_t>(m_, 0));
  rebuilds_ = 0;  // the constructor's initial layout is not a refresh event
}

size_t SerialScanCounterVector::NumItemsInGroup(size_t g) const {
  const size_t begin = g * options_.group_size;
  return std::min(options_.group_size, m_ - begin);
}

void SerialScanCounterVector::DecodeGroup(size_t g, uint64_t* out) const {
  BitReader reader(&bits_, group_start_[g]);
  const size_t count = NumItemsInGroup(g);
  for (size_t j = 0; j < count; ++j) out[j] = code_.Decode(&reader);
}

uint64_t SerialScanCounterVector::Get(size_t i) const {
  SBF_DCHECK(i < m_);
  const size_t g = i / options_.group_size;
  BitReader reader(&bits_, group_start_[g]);
  uint64_t value = 0;
  for (size_t j = g * options_.group_size; j <= i; ++j) {
    value = code_.Decode(&reader);
  }
  return value;
}

void SerialScanCounterVector::GetMany(const uint64_t* idx, size_t n,
                                      uint64_t* out) const {
  // Group-sorted serving: each touched group is serially decoded exactly
  // once per chunk, all of its requested entries (duplicates included)
  // are picked off that one decode — instead of re-decoding the group
  // prefix for every index the way scalar Get must.
  constexpr size_t kChunk = 256;
  uint16_t ord[kChunk];
  const size_t gs = options_.group_size;
  for (size_t base = 0; base < n; base += kChunk) {
    const size_t len = std::min(kChunk, n - base);
    const uint64_t* cidx = idx + base;
    uint64_t* cout = out + base;
    bool sorted = true;
    for (size_t j = 0; j + 1 < len; ++j) {
      if (cidx[j] > cidx[j + 1]) {
        sorted = false;
        break;
      }
    }
    for (size_t j = 0; j < len; ++j) ord[j] = static_cast<uint16_t>(j);
    if (!sorted) {
      std::sort(ord, ord + len,
                [cidx](uint16_t a, uint16_t b) { return cidx[a] < cidx[b]; });
    }
    size_t c = 0;
    while (c < len) {
      const size_t g = static_cast<size_t>(cidx[ord[c]]) / gs;
      BitReader reader(&bits_, group_start_[g]);
      size_t next = g * gs;  // index the reader decodes next
      uint64_t v = 0;
      while (c < len && static_cast<size_t>(cidx[ord[c]]) / gs == g) {
        const size_t target = static_cast<size_t>(cidx[ord[c]]);
        SBF_DCHECK(target < m_);
        for (; next <= target; ++next) v = code_.Decode(&reader);
        cout[ord[c++]] = v;
      }
    }
  }
}

void SerialScanCounterVector::DecodeBlock(size_t first, size_t n,
                                          uint64_t* out) const {
  SBF_DCHECK(first + n <= m_);
  const size_t gs = options_.group_size;
  size_t i = first;
  const size_t end = first + n;
  while (i < end) {
    const size_t g = i / gs;
    BitReader reader(&bits_, group_start_[g]);
    for (size_t j = g * gs; j < i; ++j) code_.Decode(&reader);
    const size_t gend = std::min(end, g * gs + NumItemsInGroup(g));
    for (; i < gend; ++i) out[i - first] = code_.Decode(&reader);
  }
}

void SerialScanCounterVector::EncodeBlock(size_t first, size_t n,
                                          const uint64_t* values) {
  SBF_DCHECK(first + n <= m_);
  const size_t gs = options_.group_size;
  size_t i = first;
  const size_t end = first + n;
  while (i < end) {
    const size_t g = i / gs;
    const size_t begin = g * gs;
    const size_t count = NumItemsInGroup(g);
    const size_t gend = std::min(end, begin + count);
    uint64_t group_values[kMaxGroupSize];
    DecodeGroup(g, group_values);
    for (size_t j = i; j < gend; ++j) {
      group_values[j - begin] = values[j - first];
    }
    const size_t new_bits = EncodedSize(group_values, count);
    if (new_bits > RegionBits(g)) {
      if (!BorrowSlack(g, new_bits - RegionBits(g))) {
        // No slack to the right: refresh with the whole span overlaid
        // (re-overlaying the groups already written above is idempotent).
        std::vector<uint64_t> all(m_);
        DecodeBlock(0, m_, all.data());
        for (size_t j = 0; j < n; ++j) all[first + j] = values[j];
        Rebuild(std::move(all));
        ++rebuilds_;
        return;
      }
    }
    EncodeGroupAt(g, group_values, count);
    i = gend;
  }
}

size_t SerialScanCounterVector::EncodedSize(const uint64_t* values,
                                            size_t count) const {
  size_t bits = 0;
  for (size_t j = 0; j < count; ++j) bits += code_.Length(values[j]);
  return bits;
}

void SerialScanCounterVector::EncodeGroupAt(size_t g, const uint64_t* values,
                                            size_t count) {
  BitWriter writer(&bits_, group_start_[g]);
  for (size_t j = 0; j < count; ++j) code_.Encode(values[j], &writer);
  used_[g] = static_cast<uint32_t>(writer.position() - group_start_[g]);
}

void SerialScanCounterVector::Set(size_t i, uint64_t value) {
  SBF_DCHECK(i < m_);
  const size_t g = i / options_.group_size;
  const size_t count = NumItemsInGroup(g);
  uint64_t group_values[kMaxGroupSize];
  DecodeGroup(g, group_values);
  group_values[i - g * options_.group_size] = value;

  const size_t new_bits = EncodedSize(group_values, count);
  if (new_bits > RegionBits(g)) {
    if (!BorrowSlack(g, new_bits - RegionBits(g))) {
      std::vector<uint64_t> all(m_);
      DecodeBlock(0, m_, all.data());
      all[i] = value;
      Rebuild(std::move(all));
      ++rebuilds_;
      return;
    }
  }
  EncodeGroupAt(g, group_values, count);
}

bool SerialScanCounterVector::BorrowSlack(size_t g, size_t need) {
  while (need > 0) {
    size_t h = g + 1;
    while (h < num_groups_ && FreeBits(h) == 0) ++h;
    if (h >= num_groups_) return false;
    const size_t take = std::min(FreeBits(h), need);
    const size_t span_begin = group_start_[g + 1];
    const size_t span_end = group_start_[h] + used_[h];
    bits_.ShiftRangeRight(span_begin, span_end, take);
    for (size_t j = g + 1; j <= h; ++j) group_start_[j] += take;
    need -= take;
  }
  return true;
}

void SerialScanCounterVector::Rebuild(std::vector<uint64_t> values) {
  const double per_group =
      options_.slack_per_counter * static_cast<double>(options_.group_size);
  // At least 64 bits of slack per group so a single small-to-large counter
  // jump fits without an immediate second refresh.
  const size_t slack =
      std::max<size_t>(64, static_cast<size_t>(std::ceil(per_group)));

  group_start_.assign(num_groups_ + 1, 0);
  used_.assign(num_groups_, 0);
  for (size_t g = 0; g < num_groups_; ++g) {
    const size_t begin = g * options_.group_size;
    const size_t payload = EncodedSize(values.data() + begin,
                                       NumItemsInGroup(g));
    used_[g] = static_cast<uint32_t>(payload);
    group_start_[g + 1] = group_start_[g] + payload + slack;
  }
  bits_ = BitVector(group_start_[num_groups_]);
  for (size_t g = 0; g < num_groups_; ++g) {
    EncodeGroupAt(g, values.data() + g * options_.group_size,
                  NumItemsInGroup(g));
  }
}

void SerialScanCounterVector::Reset() {
  Rebuild(std::vector<uint64_t>(m_, 0));
}

size_t SerialScanCounterVector::EncodedBits() const {
  size_t total = 0;
  for (uint32_t u : used_) total += u;
  return total;
}

size_t SerialScanCounterVector::OverheadBits() const {
  return group_start_.size() * 64 + used_.size() * 32;
}

size_t SerialScanCounterVector::MemoryUsageBits() const {
  return bits_.capacity_bits() + OverheadBits();
}

std::unique_ptr<CounterVector> SerialScanCounterVector::Clone() const {
  return std::make_unique<SerialScanCounterVector>(*this);
}

std::vector<uint8_t> SerialScanCounterVector::Serialize() const {
  wire::Writer payload;
  payload.PutVarint(m_);
  payload.PutVarint(options_.group_size);
  payload.PutU64(std::bit_cast<uint64_t>(options_.slack_per_counter));
  payload.PutVarint(options_.step_widths.size());
  for (uint32_t w : options_.step_widths) payload.PutVarint(w);
  WriteCounterStream(*this, &payload);
  return wire::SealFrame(wire::kMagicSerialScanCounters, wire::kFormatVersion,
                         std::move(payload));
}

StatusOr<std::unique_ptr<CounterVector>> SerialScanCounterVector::Deserialize(
    wire::ByteSpan bytes) {
  auto reader =
      wire::OpenFrame(bytes, wire::kMagicSerialScanCounters,
                      wire::kFormatVersion, "serial-scan counter vector");
  if (!reader.ok()) return reader.status();
  wire::Reader& in = reader.value();
  const uint64_t m = in.ReadVarint();
  const uint64_t group_size = in.ReadVarint();
  const double slack = std::bit_cast<double>(in.ReadU64());
  const uint64_t num_steps = in.ReadVarint();
  if (!in.ok()) return in.status();
  if (m < 1) {
    return Status::DataLoss("serial-scan counter vector needs m >= 1");
  }
  if (group_size < 1 || group_size > kMaxGroupSize) {
    return Status::DataLoss(
        "serial-scan counter vector group size out of range");
  }
  if (!std::isfinite(slack) || slack < 0.0 || slack > 64.0) {
    return Status::DataLoss("serial-scan counter vector slack out of range");
  }
  if (num_steps < 1 || num_steps > 16) {
    return Status::DataLoss("serial-scan counter vector step count invalid");
  }
  Options options;
  options.group_size = static_cast<size_t>(group_size);
  options.slack_per_counter = slack;
  options.step_widths.clear();
  for (uint64_t s = 0; s < num_steps; ++s) {
    const uint64_t width = in.ReadVarint();
    if (!in.ok()) return in.status();
    if (width >= 63) {
      return Status::DataLoss("serial-scan counter vector step width invalid");
    }
    options.step_widths.push_back(static_cast<uint32_t>(width));
  }
  // Bound m by the actual payload before the O(m) allocation.
  if (m > in.remaining() * 8) {
    return Status::DataLoss("serial-scan counter vector truncated");
  }
  auto cv = std::make_unique<SerialScanCounterVector>(static_cast<size_t>(m),
                                                      options);
  Status status =
      ReadCounterStream(&in, m, cv.get(), "serial-scan counter vector");
  if (!status.ok()) return status;
  status = in.ExpectEnd("serial-scan counter vector");
  if (!status.ok()) return status;
  return std::unique_ptr<CounterVector>(std::move(cv));
}


Status SerialScanCounterVector::CheckInvariants() const {
  if (group_start_.size() != num_groups_ + 1 || used_.size() != num_groups_) {
    return Status::FailedPrecondition(
        "serial-scan backing: bookkeeping vector sizes disagree with m");
  }
  if (group_start_[0] != 0 || group_start_[num_groups_] != bits_.size_bits()) {
    return Status::FailedPrecondition(
        "serial-scan backing: group offsets do not span the base array");
  }
  std::vector<uint64_t> values(options_.group_size);
  for (size_t g = 0; g < num_groups_; ++g) {
    if (group_start_[g] > group_start_[g + 1]) {
      return Status::FailedPrecondition(
          "serial-scan backing: group offsets not monotone");
    }
    if (used_[g] > RegionBits(g)) {
      return Status::FailedPrecondition(
          "serial-scan backing: group payload overflows its region");
    }
    // Decode the group and re-encode: the recorded used-bit count must be
    // exactly the encoded size of the values the group decodes to.
    const size_t count = NumItemsInGroup(g);
    DecodeGroup(g, values.data());
    if (EncodedSize(values.data(), count) != used_[g]) {
      return Status::FailedPrecondition(
          "serial-scan backing: group used-bit count disagrees with a "
          "re-encode of its decoded values");
    }
  }
  return Status::Ok();
}

}  // namespace sbf
