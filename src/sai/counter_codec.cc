#include "sai/counter_codec.h"

#include <algorithm>
#include <string>

#include "bitstream/bit_vector.h"
#include "bitstream/bit_writer.h"
#include "bitstream/elias.h"
#include "util/bits.h"

namespace sbf {
namespace {

// Elias-delta decode that rejects malformed codewords (lengths no valid
// encoder emits) instead of over-reading — deserialization must be safe
// on corrupted network input.
bool BoundedDeltaDecode(BitReader* reader, uint64_t* out) {
  uint32_t zeros = 0;
  while (!reader->ReadBit()) {
    if (++zeros > 6) return false;  // gamma(len) with len <= 64 uses <= 6
  }
  uint64_t len = 1;
  for (uint32_t i = 0; i < zeros; ++i) {
    len = (len << 1) | static_cast<uint64_t>(reader->ReadBit());
  }
  if (len > 64) return false;
  uint64_t value = 1;
  for (uint64_t i = 1; i < len; ++i) {
    value = (value << 1) | static_cast<uint64_t>(reader->ReadBit());
  }
  *out = value;
  return true;
}

}  // namespace

void WriteCounterStream(const CounterVector& cv, wire::Writer* out) {
  BitVector stream;
  BitWriter writer(&stream);
  // Sequential sweep through the decoded-view layer: one group decode per
  // group instead of one positioned Get per counter.
  constexpr size_t kChunk = 256;
  uint64_t values[kChunk];
  const size_t m = cv.size();
  for (size_t base = 0; base < m; base += kChunk) {
    const size_t len = std::min(kChunk, m - base);
    cv.DecodeBlock(base, len, values);
    for (size_t j = 0; j < len; ++j) {
      EliasDeltaEncode(values[j] + 1, &writer);
    }
  }
  writer.Finish();
  out->PutVarint(stream.size_bits());
  out->PutWords(stream.words(), stream.size_words());
}

Status ReadCounterStream(wire::Reader* in, uint64_t m, CounterVector* cv,
                         const char* what) {
  const std::string name(what);
  const uint64_t stream_bits = in->ReadVarint();
  if (!in->ok()) return in->status();
  // Every counter costs at least one bit, and the word block must fit in
  // what is left of the payload — both checks run before any allocation,
  // so a corrupted length cannot trigger a huge one.
  if (m > stream_bits) {
    return Status::DataLoss(name + " counter stream shorter than m");
  }
  const uint64_t stream_words = CeilDiv(stream_bits, 64);
  if (stream_words * 8 > in->remaining()) {
    return Status::DataLoss(name + " counter stream truncated");
  }
  // Guard words of all-ones after the stream: a corrupted codeword that
  // runs past the end terminates immediately (a 1-bit is a complete gamma
  // prefix) instead of reading out of bounds, and the overrun is then
  // detected by the position checks below.
  BitVector stream(stream_words * 64 + 128);
  in->ReadWords(stream.mutable_words(), static_cast<size_t>(stream_words));
  if (!in->ok()) return in->status();
  stream.mutable_words()[stream_words] = ~0ull;
  stream.mutable_words()[stream_words + 1] = ~0ull;

  BitReader reader(&stream);
  for (uint64_t i = 0; i < m; ++i) {
    if (reader.position() >= stream_bits) {
      return Status::DataLoss(name + " counter stream ends early");
    }
    uint64_t value = 0;
    if (!BoundedDeltaDecode(&reader, &value) ||
        reader.position() > stream_bits) {
      return Status::DataLoss(name + " counter stream corrupted");
    }
    cv->Set(i, value - 1);
  }
  if (reader.position() != stream_bits) {
    return Status::DataLoss(name + " counter stream has trailing bits");
  }
  return Status::Ok();
}

}  // namespace sbf
