#include "sai/string_array_index.h"

#include <algorithm>
#include <map>

#include "util/bits.h"
#include "util/check.h"

namespace sbf {
namespace {

size_t Cube(size_t x) { return x * x * x; }

// Packs `count` values of `width` bits each into `out` starting at slot
// `slot` (slots are width-bit fields).
void PackAt(BitVector* out, size_t slot, uint32_t width, uint64_t value) {
  out->SetBits(slot * width, width, value);
}

uint64_t UnpackAt(const BitVector& in, size_t slot, uint32_t width) {
  return in.GetBits(slot * width, width);
}

}  // namespace

StringArrayIndex::StringArrayIndex(const std::vector<uint32_t>& lengths,
                                   Options options)
    : m_(lengths.size()) {
  SBF_CHECK_MSG(m_ >= 1, "string-array index needs at least one string");
  total_bits_ = 0;
  for (uint32_t len : lengths) total_bits_ += len;

  const size_t log_n = std::max<size_t>(2, FloorLog2(std::max<uint64_t>(
                                               total_bits_, 4)));
  b1_ = options.l1_group_items != 0 ? options.l1_group_items : log_n;
  b1_ = std::max<size_t>(2, b1_);
  b2_ = options.l2_chunk_items != 0 ? options.l2_chunk_items
                                    : std::max<size_t>(2, FloorLog2(b1_));
  b2_ = std::max<size_t>(2, std::min(b2_, b1_));
  chunks_per_group_ = CeilDiv(b1_, b2_);
  t1_ = options.l1_threshold_bits != 0 ? options.l1_threshold_bits
                                       : Cube(log_n);
  const size_t log_log_n = std::max<size_t>(2, FloorLog2(log_n));
  t0_ = options.lookup_threshold_bits != 0 ? options.lookup_threshold_bits
                                           : Cube(log_log_n);
  t0_ = std::min(t0_, t1_);

  w_abs_ = std::max(1u, CeilLog2(total_bits_ + 1));
  w_rel_ = std::max(1u, CeilLog2(t1_ + 1));
  w_cfg_ = std::max(1u, CeilLog2(t0_ + 1));

  const size_t num_groups = CeilDiv(m_, b1_);
  c1_ = BitVector(num_groups * w_abs_);
  group_flags_ = BitVector(num_groups);

  // --- Pass 1: classify groups and chunks, collect lookup configs. ------
  struct ChunkRef {
    bool offset_vector;   // true -> mini offset vector, false -> lookup
    uint32_t config_id;   // valid when !offset_vector
  };
  std::vector<bool> group_complete(num_groups);
  std::vector<ChunkRef> chunk_refs;  // chunks of non-complete groups only
  std::map<std::vector<uint32_t>, uint32_t> config_ids;
  std::vector<std::vector<uint32_t>> config_rows;

  size_t num_complete_groups = 0;
  size_t offset = 0;
  for (size_t g = 0; g < num_groups; ++g) {
    const size_t begin = g * b1_;
    const size_t end = std::min(begin + b1_, m_);
    PackAt(&c1_, g, w_abs_, offset);

    size_t group_bits = 0;
    for (size_t i = begin; i < end; ++i) group_bits += lengths[i];

    const bool complete = group_bits > t1_;
    group_complete[g] = complete;
    group_flags_.SetBit(g, complete);
    if (complete) {
      ++num_complete_groups;
    } else {
      for (size_t c = 0; c < chunks_per_group_; ++c) {
        const size_t cbegin = begin + c * b2_;
        const size_t cend = std::min(cbegin + b2_, end);
        size_t chunk_bits = 0;
        for (size_t i = cbegin; i < cend && i < m_; ++i) {
          chunk_bits += lengths[i];
        }
        ChunkRef ref;
        ref.offset_vector = chunk_bits > t0_;
        ref.config_id = 0;
        if (!ref.offset_vector) {
          // The configuration is the tuple of lengths in the chunk,
          // zero-padded to b2_ (the paper's L(S'') descriptor).
          std::vector<uint32_t> config(b2_, 0);
          for (size_t i = cbegin; i < cend && i < m_; ++i) {
            config[i - cbegin] = lengths[i];
          }
          auto [it, inserted] = config_ids.emplace(
              config, static_cast<uint32_t>(config_rows.size()));
          if (inserted) config_rows.push_back(config);
          ref.config_id = it->second;
        }
        chunk_refs.push_back(ref);
      }
    }
    offset += group_bits;
  }
  SBF_CHECK(offset == total_bits_);
  num_configs_ = config_rows.size();
  w_id_ = std::max(1u, CeilLog2(num_configs_ + 1));

  // --- Allocate the packed structures now that counts are known. --------
  const size_t num_plain_groups = num_groups - num_complete_groups;
  complete_ = BitVector(num_complete_groups * b1_ * w_abs_);
  c2_ = BitVector(num_plain_groups * chunks_per_group_ * w_rel_);
  chunk_flags_ = BitVector(chunk_refs.size());
  size_t num_ov_chunks = 0;
  for (size_t c = 0; c < chunk_refs.size(); ++c) {
    chunk_flags_.SetBit(c, chunk_refs[c].offset_vector);
    if (chunk_refs[c].offset_vector) ++num_ov_chunks;
  }
  l3_ = BitVector(num_ov_chunks * b2_ * w_rel_);
  lt_ids_ = BitVector((chunk_refs.size() - num_ov_chunks) * w_id_);
  configs_ = BitVector(num_configs_ * b2_ * w_cfg_);

  for (size_t id = 0; id < num_configs_; ++id) {
    // Row entry j = offset of item j relative to the chunk start.
    size_t rel = 0;
    for (size_t j = 0; j < b2_; ++j) {
      PackAt(&configs_, id * b2_ + j, w_cfg_, rel);
      rel += config_rows[id][j];
    }
  }

  // --- Pass 2: fill offset vectors. --------------------------------------
  size_t complete_slot = 0;  // complete-group ordinal
  size_t plain_slot = 0;     // non-complete-group ordinal
  size_t ov_slot = 0;        // offset-vector chunk ordinal
  size_t lt_slot = 0;        // lookup-table chunk ordinal
  size_t chunk_counter = 0;
  offset = 0;
  for (size_t g = 0; g < num_groups; ++g) {
    const size_t begin = g * b1_;
    const size_t end = std::min(begin + b1_, m_);
    if (group_complete[g]) {
      size_t item_offset = offset;
      for (size_t i = begin; i < end; ++i) {
        PackAt(&complete_, complete_slot * b1_ + (i - begin), w_abs_,
               item_offset);
        item_offset += lengths[i];
      }
      offset = item_offset;
      ++complete_slot;
      continue;
    }
    const size_t group_base = offset;
    size_t item_offset = offset;
    size_t i = begin;
    for (size_t c = 0; c < chunks_per_group_; ++c) {
      PackAt(&c2_, plain_slot * chunks_per_group_ + c, w_rel_,
             item_offset - group_base);
      const size_t chunk_base = item_offset;
      const ChunkRef& ref = chunk_refs[chunk_counter++];
      const size_t cend = std::min(begin + (c + 1) * b2_, end);
      if (ref.offset_vector) {
        for (size_t j = 0; i < cend; ++i, ++j) {
          PackAt(&l3_, ov_slot * b2_ + j, w_rel_, item_offset - chunk_base);
          item_offset += lengths[i];
        }
        ++ov_slot;
      } else {
        PackAt(&lt_ids_, lt_slot, w_id_, ref.config_id);
        ++lt_slot;
        for (; i < cend; ++i) item_offset += lengths[i];
      }
    }
    offset = item_offset;
    ++plain_slot;
  }
  SBF_CHECK(offset == total_bits_);

  group_rank_ = RankSelect(&group_flags_);
  chunk_rank_ = RankSelect(&chunk_flags_);
}

size_t StringArrayIndex::Offset(size_t i) const {
  SBF_DCHECK(i <= m_);
  if (i == m_) return total_bits_;
  const size_t g = i / b1_;
  const size_t base = UnpackAt(c1_, g, w_abs_);
  const size_t r = i % b1_;
  if (r == 0) return base;

  if (group_flags_.GetBit(g)) {
    const size_t slot = group_rank_.Rank1(g);
    return UnpackAt(complete_, slot * b1_ + r, w_abs_);
  }

  const size_t plain_slot = g - group_rank_.Rank1(g);
  const size_t c = r / b2_;
  const size_t j = r % b2_;
  const size_t chunk_base =
      base + UnpackAt(c2_, plain_slot * chunks_per_group_ + c, w_rel_);
  if (j == 0) return chunk_base;

  const size_t chunk_index = plain_slot * chunks_per_group_ + c;
  if (chunk_flags_.GetBit(chunk_index)) {
    const size_t slot = chunk_rank_.Rank1(chunk_index);
    return chunk_base + UnpackAt(l3_, slot * b2_ + j, w_rel_);
  }
  const size_t lt_slot = chunk_index - chunk_rank_.Rank1(chunk_index);
  const size_t id = UnpackAt(lt_ids_, lt_slot, w_id_);
  return chunk_base + UnpackAt(configs_, id * b2_ + j, w_cfg_);
}

StringArrayIndex::ComponentSizes StringArrayIndex::component_sizes() const {
  ComponentSizes sizes;
  sizes.c1_bits = c1_.size_bits();
  sizes.l2_offset_vector_bits = complete_.size_bits() + c2_.size_bits();
  sizes.l3_offset_vector_bits = l3_.size_bits();
  sizes.lookup_table_bits = lt_ids_.size_bits() + configs_.size_bits();
  sizes.flags_and_rank_bits = group_flags_.size_bits() +
                              chunk_flags_.size_bits() +
                              group_rank_.OverheadBits() +
                              chunk_rank_.OverheadBits();
  return sizes;
}

}  // namespace sbf
