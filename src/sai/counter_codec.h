#ifndef SBF_SAI_COUNTER_CODEC_H_
#define SBF_SAI_COUNTER_CODEC_H_

#include <cstdint>

#include "io/wire.h"
#include "sai/counter_vector.h"

namespace sbf {

// Shared value-stream codec for the compact counter backings' wire frames:
// each counter value v is Elias-delta coded as code(v + 1) (delta cannot
// encode zero), the bit stream is padded to whole 64-bit words, and the
// wire carries {varint bit_count, words}. This is the paper's "filters are
// compressed messages" representation (Section 4.7.1): a mostly-zero
// counter vector costs about one bit per counter.

// Appends the stream of all `cv` counters to `out`.
void WriteCounterStream(const CounterVector& cv, wire::Writer* out);

// Decodes exactly `m` counters from `in` into counters [0, m) of `cv`
// (which must already have size >= m). Rejects malformed codewords,
// truncated streams and trailing garbage with a clean DataLoss status.
// `what` names the enclosing structure in error messages.
Status ReadCounterStream(wire::Reader* in, uint64_t m, CounterVector* cv,
                         const char* what);

}  // namespace sbf

#endif  // SBF_SAI_COUNTER_CODEC_H_
