#include "sai/counter_vector.h"

#include <algorithm>

#include "sai/compact_counter_vector.h"
#include "sai/fixed_counter_vector.h"
#include "sai/serial_scan_counter_vector.h"
#include "util/check.h"

namespace sbf {

void CounterVector::Decrement(size_t i, uint64_t delta) {
  const uint64_t v = Get(i);
  if (delta > v) {
    Set(i, 0);
    ++stats_.underflow_clamps;
    return;
  }
  Set(i, v - delta);
}

uint64_t CounterVector::Total() const {
  constexpr size_t kChunk = 256;
  uint64_t idx[kChunk];
  uint64_t values[kChunk];
  uint64_t total = 0;
  const size_t n = size();
  for (size_t base = 0; base < n; base += kChunk) {
    const size_t len = std::min(kChunk, n - base);
    for (size_t j = 0; j < len; ++j) idx[j] = base + j;
    GetMany(idx, len, values);
    for (size_t j = 0; j < len; ++j) total += values[j];
  }
  return total;
}

OccupancyCounts CounterVector::ScanOccupancy() const {
  constexpr size_t kChunk = 256;
  uint64_t idx[kChunk];
  uint64_t values[kChunk];
  OccupancyCounts counts;
  const uint64_t max = MaxValue();
  const size_t n = size();
  for (size_t base = 0; base < n; base += kChunk) {
    const size_t len = std::min(kChunk, n - base);
    for (size_t j = 0; j < len; ++j) idx[j] = base + j;
    GetMany(idx, len, values);
    for (size_t j = 0; j < len; ++j) {
      counts.nonzero += values[j] > 0;
      counts.saturated += values[j] == max;
    }
  }
  return counts;
}

std::unique_ptr<CounterVector> MakeCounterVector(CounterBacking backing,
                                                 size_t m) {
  switch (backing) {
    case CounterBacking::kFixed64:
      return std::make_unique<FixedWidthCounterVector>(m, 64);
    case CounterBacking::kFixed32:
      return std::make_unique<FixedWidthCounterVector>(m, 32);
    case CounterBacking::kCompact:
      return std::make_unique<CompactCounterVector>(m);
    case CounterBacking::kSerialScan:
      return std::make_unique<SerialScanCounterVector>(m);
  }
  SBF_CHECK_MSG(false, "unknown counter backing");
  return nullptr;
}

const char* CounterBackingName(CounterBacking backing) {
  switch (backing) {
    case CounterBacking::kFixed64:
      return "fixed64";
    case CounterBacking::kFixed32:
      return "fixed32";
    case CounterBacking::kCompact:
      return "compact";
    case CounterBacking::kSerialScan:
      return "serial-scan";
  }
  return "unknown";
}

StatusOr<std::unique_ptr<CounterVector>> DeserializeCounterVector(
    wire::ByteSpan bytes) {
  switch (wire::PeekMagic(bytes)) {
    case wire::kMagicFixedCounters:
      return FixedWidthCounterVector::Deserialize(bytes);
    case wire::kMagicCompactCounters:
      return CompactCounterVector::Deserialize(bytes);
    case wire::kMagicSerialScanCounters:
      return SerialScanCounterVector::Deserialize(bytes);
    default:
      return Status::DataLoss("unknown counter backing frame magic");
  }
}

bool MatchesBacking(const CounterVector& cv, CounterBacking backing) {
  switch (backing) {
    case CounterBacking::kFixed64:
    case CounterBacking::kFixed32: {
      const auto* fixed = dynamic_cast<const FixedWidthCounterVector*>(&cv);
      const uint32_t width = backing == CounterBacking::kFixed64 ? 64 : 32;
      return fixed != nullptr && fixed->width_bits() == width &&
             !fixed->sticky_saturation();
    }
    case CounterBacking::kCompact:
      return dynamic_cast<const CompactCounterVector*>(&cv) != nullptr;
    case CounterBacking::kSerialScan:
      return dynamic_cast<const SerialScanCounterVector*>(&cv) != nullptr;
  }
  return false;
}

}  // namespace sbf
