#include "sai/counter_vector.h"

#include "sai/compact_counter_vector.h"
#include "sai/fixed_counter_vector.h"
#include "sai/serial_scan_counter_vector.h"
#include "util/check.h"

namespace sbf {

void CounterVector::Decrement(size_t i, uint64_t delta) {
  const uint64_t v = Get(i);
  SBF_CHECK_MSG(v >= delta, "counter underflow");
  Set(i, v - delta);
}

uint64_t CounterVector::Total() const {
  uint64_t total = 0;
  for (size_t i = 0; i < size(); ++i) total += Get(i);
  return total;
}

std::unique_ptr<CounterVector> MakeCounterVector(CounterBacking backing,
                                                 size_t m) {
  switch (backing) {
    case CounterBacking::kFixed64:
      return std::make_unique<FixedWidthCounterVector>(m, 64);
    case CounterBacking::kFixed32:
      return std::make_unique<FixedWidthCounterVector>(m, 32);
    case CounterBacking::kCompact:
      return std::make_unique<CompactCounterVector>(m);
    case CounterBacking::kSerialScan:
      return std::make_unique<SerialScanCounterVector>(m);
  }
  SBF_CHECK_MSG(false, "unknown counter backing");
  return nullptr;
}

const char* CounterBackingName(CounterBacking backing) {
  switch (backing) {
    case CounterBacking::kFixed64:
      return "fixed64";
    case CounterBacking::kFixed32:
      return "fixed32";
    case CounterBacking::kCompact:
      return "compact";
    case CounterBacking::kSerialScan:
      return "serial-scan";
  }
  return "unknown";
}

}  // namespace sbf
