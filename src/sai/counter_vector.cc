#include "sai/counter_vector.h"

#include <algorithm>

#include "sai/compact_counter_vector.h"
#include "sai/fixed_counter_vector.h"
#include "sai/serial_scan_counter_vector.h"
#include "util/check.h"

namespace sbf {

void CounterVector::Decrement(size_t i, uint64_t delta) {
  const uint64_t v = Get(i);
  if (delta > v) {
    Set(i, 0);
    ++stats_.underflow_clamps;
    return;
  }
  Set(i, v - delta);
}

uint64_t CounterVector::Total() const {
  constexpr size_t kChunk = 256;
  uint64_t values[kChunk];
  uint64_t total = 0;
  const size_t n = size();
  for (size_t base = 0; base < n; base += kChunk) {
    const size_t len = std::min(kChunk, n - base);
    DecodeBlock(base, len, values);
    for (size_t j = 0; j < len; ++j) total += values[j];
  }
  return total;
}

OccupancyCounts CounterVector::ScanOccupancy() const {
  constexpr size_t kChunk = 256;
  uint64_t values[kChunk];
  OccupancyCounts counts;
  const uint64_t max = MaxValue();
  const size_t n = size();
  for (size_t base = 0; base < n; base += kChunk) {
    const size_t len = std::min(kChunk, n - base);
    DecodeBlock(base, len, values);
    for (size_t j = 0; j < len; ++j) {
      counts.nonzero += values[j] > 0;
      counts.saturated += values[j] == max;
    }
  }
  return counts;
}

void DecodeView::Refill(Span& s, size_t first) {
  if (s.valid && s.dirty) WriteBack(s);
  s.first = first;
  s.count = static_cast<uint32_t>(
      std::min(kSpanCounters, cv_->size() - first));
  cv_->DecodeBlock(first, s.count, s.values);
  s.valid = true;
  s.dirty = false;
  ++decodes_;
}

void DecodeView::WriteBack(Span& s) {
  // Values were clamped as they were written, so the backing's own Set
  // clamps can never fire here — the tallies in pending_stats_ are the
  // complete clamp record of the buffered ops.
  mutable_cv_->EncodeBlock(s.first, s.count, s.values);
  s.dirty = false;
}

void DecodeView::Flush() {
  for (Span& s : ways_) {
    if (s.valid && s.dirty) WriteBack(s);
  }
  if (mutable_cv_ != nullptr && (pending_stats_.saturation_clamps > 0 ||
                                 pending_stats_.underflow_clamps > 0)) {
    mutable_cv_->MergeSaturationStats(pending_stats_);
    pending_stats_ = SaturationStats{};
  }
}

std::unique_ptr<CounterVector> MakeCounterVector(CounterBacking backing,
                                                 size_t m) {
  switch (backing) {
    case CounterBacking::kFixed64:
      return std::make_unique<FixedWidthCounterVector>(m, 64);
    case CounterBacking::kFixed32:
      return std::make_unique<FixedWidthCounterVector>(m, 32);
    case CounterBacking::kCompact:
      return std::make_unique<CompactCounterVector>(m);
    case CounterBacking::kSerialScan:
      return std::make_unique<SerialScanCounterVector>(m);
  }
  SBF_CHECK_MSG(false, "unknown counter backing");
  return nullptr;
}

const char* CounterBackingName(CounterBacking backing) {
  switch (backing) {
    case CounterBacking::kFixed64:
      return "fixed64";
    case CounterBacking::kFixed32:
      return "fixed32";
    case CounterBacking::kCompact:
      return "compact";
    case CounterBacking::kSerialScan:
      return "serial-scan";
  }
  return "unknown";
}

StatusOr<std::unique_ptr<CounterVector>> DeserializeCounterVector(
    wire::ByteSpan bytes) {
  switch (wire::PeekMagic(bytes)) {
    case wire::kMagicFixedCounters:
      return FixedWidthCounterVector::Deserialize(bytes);
    case wire::kMagicCompactCounters:
      return CompactCounterVector::Deserialize(bytes);
    case wire::kMagicSerialScanCounters:
      return SerialScanCounterVector::Deserialize(bytes);
    default:
      return Status::DataLoss("unknown counter backing frame magic");
  }
}

bool MatchesBacking(const CounterVector& cv, CounterBacking backing) {
  switch (backing) {
    case CounterBacking::kFixed64:
    case CounterBacking::kFixed32: {
      const auto* fixed = dynamic_cast<const FixedWidthCounterVector*>(&cv);
      const uint32_t width = backing == CounterBacking::kFixed64 ? 64 : 32;
      return fixed != nullptr && fixed->width_bits() == width &&
             !fixed->sticky_saturation();
    }
    case CounterBacking::kCompact:
      return dynamic_cast<const CompactCounterVector*>(&cv) != nullptr;
    case CounterBacking::kSerialScan:
      return dynamic_cast<const SerialScanCounterVector*>(&cv) != nullptr;
  }
  return false;
}

}  // namespace sbf
