#ifndef SBF_SAI_COMPACT_COUNTER_VECTOR_H_
#define SBF_SAI_COMPACT_COUNTER_VECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "bitstream/bit_vector.h"
#include "sai/counter_vector.h"
#include "util/prefetch.h"

namespace sbf {

// The paper's dynamic compact counter storage (Section 4.4).
//
// Counter C_i is embedded in its current width w_i >= 1 bits (initially 1,
// grown to ceil(log C_i) as the counter grows), and counters are placed
// consecutively in one base bit array with slack bits interspersed. The
// array is organized in groups of `group_size` counters; each group's
// region holds its counters back-to-back followed by the group's remaining
// slack. Per group we keep a start offset and the used-bit count, and per
// counter its width — O(m) bits of bookkeeping on top of the
// N = sum ceil(log C_i) payload, matching the paper's N + o(N) + O(m)
// bound.
//
// A counter that widens shifts the tail of its own group into the group
// slack (O(group_size) = O(1) work). A group whose slack is exhausted
// "pushes" the following groups toward the nearest group that still has
// slack — the paper's push-to-slack scheme, whose expected push distance
// is O(1/eps) (Lemma 8). When no slack remains to the right, the whole
// array is refreshed (rebuilt with tightened widths and fresh slack),
// giving O(1) expected amortized updates.
//
// Deletions shrink values in place and never move counters (Section 4.4:
// "Delete operations only affect individual counters, and do not affect
// their positions"); widths are re-tightened on the next refresh.
class CompactCounterVector final : public CounterVector {
 public:
  struct Options {
    // Counters per group; the per-access width scan is bounded by this.
    size_t group_size = 32;
    // Slack bits allocated per counter at build/refresh time (the paper's
    // eps'). Each group additionally gets at least 64 bits so any single
    // widening fits after a refresh.
    double slack_per_counter = 0.5;
  };

  explicit CompactCounterVector(size_t m)
      : CompactCounterVector(m, Options()) {}
  CompactCounterVector(size_t m, Options options);

  [[nodiscard]] size_t size() const noexcept override { return m_; }
  [[nodiscard]] uint64_t Get(size_t i) const noexcept override;
  void Set(size_t i, uint64_t value) override;
  // Fast path for the common no-widening case: one position scan instead
  // of the two a Get+Set pair would perform.
  void Increment(size_t i, uint64_t delta = 1) override;
  void Reset() override;
  size_t MemoryUsageBits() const override;
  std::unique_ptr<CounterVector> Clone() const override;
  std::string Name() const override { return "compact"; }

  // 'SBcc' frame: {varint m, varint group_size, u64 slack bit-pattern,
  // Elias counter stream} (sai/counter_codec.h). Values are serialized,
  // not the slack layout — a loaded vector rebuilds its layout, but its
  // bytes are still determined by (options, values), so re-serialization
  // is byte-identical.
  std::vector<uint8_t> Serialize() const override;

  // Audits offset monotonicity, group bookkeeping vs. widths, and that
  // every stored value fits its recorded width (see DESIGN.md §7).
  Status CheckInvariants() const override;
  static StatusOr<std::unique_ptr<CounterVector>> Deserialize(
      wire::ByteSpan bytes);

  // Pulls in the width entries scanned by PositionOf and the group's
  // payload words — the two dependent loads a Get(i) performs.
  void PrefetchCounter(size_t i) const override {
    const size_t g = i / options_.group_size;
    SBF_PREFETCH(widths_.data() + g * options_.group_size);
    SBF_PREFETCH(bits_.words() + (group_start_[g] >> 6));
  }
  // Group-sorts its indices (when they do not already arrive sorted) and
  // serves each sorted run with one sequential width walk, so a touched
  // group is decoded at most once per chunk; duplicate indices are served
  // from the walk for free.
  void GetMany(const uint64_t* idx, size_t n, uint64_t* out) const override;
  // One O(1) seek, then a single sequential decode of the range.
  void DecodeBlock(size_t first, size_t n, uint64_t* out) const override;
  // One sequential write pass; only a widening counter re-seeks (through
  // the Set shift/rebuild machinery).
  void EncodeBlock(size_t first, size_t n, const uint64_t* values) override;

  // --- introspection for tests and the storage experiments -------------

  // Payload bits actually used by counter fields (sum of widths).
  size_t UsedBits() const;
  // Bits of the base array (payload + slack).
  size_t BaseArrayBits() const { return bits_.size_bits(); }
  // Bookkeeping bits (group offsets, used counts, widths).
  size_t OverheadBits() const;
  // Number of full refresh (rebuild) events so far.
  size_t rebuild_count() const { return rebuilds_; }
  // Total bits moved by push-to-slack shifts (excluding rebuilds).
  uint64_t pushed_bits_total() const { return pushed_bits_; }
  // Current width of counter i.
  [[nodiscard]] uint32_t WidthOf(size_t i) const { return widths_[i]; }
  // Number of groups and the configured counters per group (sbf_tool's
  // storage inspector sweeps these).
  [[nodiscard]] size_t group_count() const noexcept { return num_groups_; }
  [[nodiscard]] size_t group_size() const noexcept {
    return options_.group_size;
  }
  // Free slack bits currently left in group g.
  [[nodiscard]] size_t GroupSlackBits(size_t g) const { return FreeBits(g); }

  // Rebuilds immediately with tightened widths and fresh slack.
  void ForceRebuild() { Rebuild(); }

 private:
  // Sampling stride of the per-group prefix-sum offset table: one sample
  // per kSampleStride counters, holding the group-relative bit offset of
  // that counter. PositionOf then adds at most kSampleStride - 1 widths,
  // summed branch-free from one 8-byte load (see SumWidthsBelow in the
  // .cc), making every position O(1) instead of O(group_size).
  static constexpr size_t kSampleStride = 8;
  // Zero padding after widths_[m_ - 1] so the unaligned 8-byte width loads
  // never read past the allocation.
  static constexpr size_t kWidthPad = 8;

  size_t NumItemsInGroup(size_t g) const;
  size_t RegionBits(size_t g) const {
    return group_start_[g + 1] - group_start_[g];
  }
  size_t FreeBits(size_t g) const { return RegionBits(g) - used_[g]; }
  // Bit position of counter i inside the base array.
  size_t PositionOf(size_t i) const;
  // Makes at least `need` free bits available in group g by pushing the
  // following groups into their slack. Returns false if it had to give up
  // (no slack to the right), in which case the caller must Rebuild.
  bool BorrowSlack(size_t g, size_t need);
  void Rebuild();
  void LayoutFromValues(const std::vector<uint64_t>& values);
  // Recomputes group g's prefix-sum samples from widths_.
  void RebuildSamples(size_t g);
  // Sequentially decodes counters [first, last) starting from a resolved
  // bit position, storing into out; returns the bit position after `last`.
  size_t DecodeRun(size_t first, size_t last, size_t pos, uint64_t* out) const;

  size_t m_;
  Options options_;
  size_t num_groups_;
  size_t samples_per_group_;
  BitVector bits_;
  std::vector<uint64_t> group_start_;  // num_groups_+1 entries; last = end
  std::vector<uint32_t> used_;         // payload bits per group
  std::vector<uint8_t> widths_;        // width of each counter; kWidthPad
                                       // zero bytes of tail padding
  // Group-relative bit offsets of every kSampleStride-th counter
  // (samples_per_group_ entries per group). Group-relative, so
  // push-to-slack shifts (which move whole groups) never touch them.
  std::vector<uint32_t> offset_samples_;
  size_t rebuilds_ = 0;
  uint64_t pushed_bits_ = 0;
};

}  // namespace sbf

#endif  // SBF_SAI_COMPACT_COUNTER_VECTOR_H_
