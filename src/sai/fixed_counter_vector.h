#ifndef SBF_SAI_FIXED_COUNTER_VECTOR_H_
#define SBF_SAI_FIXED_COUNTER_VECTOR_H_

#include <memory>
#include <string>

#include "bitstream/bit_vector.h"
#include "sai/counter_vector.h"
#include "util/prefetch.h"

namespace sbf {

// Packed fixed-width counters: counter i lives in bits [i*w, (i+1)*w).
//
// With `sticky_saturation` enabled the vector implements the classic
// counting-Bloom-filter overflow policy [FCAB98]: increments clamp at the
// maximum representable value and a saturated counter is never decremented
// (a stuck counter can overestimate but never causes a false negative).
class FixedWidthCounterVector final : public CounterVector {
 public:
  FixedWidthCounterVector(size_t m, uint32_t width_bits,
                          bool sticky_saturation = false);

  [[nodiscard]] size_t size() const noexcept override { return m_; }
  // Get/Set/Increment are inline so the batched kernels — which call them
  // through a concrete (final) pointer — devirtualize AND inline the probe.
  [[nodiscard]] uint64_t Get(size_t i) const noexcept override {
    SBF_DCHECK(i < m_);
    return bits_.GetBits(i * width_, width_);
  }
  // A value past the representable range clamps at max_value_ — reachable
  // from public inputs (narrow widths under heavy traffic, Minimal
  // Increase lifts), so it must degrade gracefully, not abort. The clamp
  // keeps the one-sided guarantee: the counter reads max, never less.
  void Set(size_t i, uint64_t value) noexcept override {
    SBF_DCHECK(i < m_);
    if (value > max_value_) {
      value = max_value_;
      ++stats_.saturation_clamps;
    }
    bits_.SetBits(i * width_, width_, value);
  }
  void Increment(size_t i, uint64_t delta = 1) noexcept override {
    const uint64_t v = Get(i);
    if (delta > max_value_ - v) {
      bits_.SetBits(i * width_, width_, max_value_);
      ++stats_.saturation_clamps;
      return;
    }
    bits_.SetBits(i * width_, width_, v + delta);
  }
  void Decrement(size_t i, uint64_t delta = 1) noexcept override;
  void Reset() override;
  size_t MemoryUsageBits() const override;
  std::unique_ptr<CounterVector> Clone() const override;
  std::string Name() const override;

  void PrefetchCounter(size_t i) const noexcept override {
    SBF_PREFETCH(bits_.words() + (i * width_ >> 6));
  }
  void GetMany(const uint64_t* idx, size_t n,
               uint64_t* out) const noexcept override {
    for (size_t j = 0; j < n; ++j) out[j] = Get(idx[j]);
  }
  void DecodeBlock(size_t first, size_t n,
                   uint64_t* out) const noexcept override {
    for (size_t j = 0; j < n; ++j) out[j] = Get(first + j);
  }
  void EncodeBlock(size_t first, size_t n,
                   const uint64_t* values) noexcept override {
    for (size_t j = 0; j < n; ++j) Set(first + j, values[j]);
  }
  // A saturated sticky counter must ignore decrements; DecodeView's value
  // cache cannot reproduce that, so sticky vectors reject buffered writes.
  [[nodiscard]] bool SupportsDecodedWrites() const noexcept override {
    return !sticky_;
  }

  // 'SBfx' frame: {varint m, varint width, u8 sticky, raw packed words}.
  // The words are the in-memory layout verbatim (little-endian on the
  // wire), so this is the fast byte-exact path among the backings.
  std::vector<uint8_t> Serialize() const override;
  Status CheckInvariants() const override;
  static StatusOr<std::unique_ptr<CounterVector>> Deserialize(
      wire::ByteSpan bytes);

  [[nodiscard]] uint64_t MaxValue() const noexcept override {
    return max_value_;
  }

  [[nodiscard]] uint32_t width_bits() const noexcept { return width_; }
  [[nodiscard]] uint64_t max_value() const noexcept { return max_value_; }
  [[nodiscard]] bool sticky_saturation() const noexcept { return sticky_; }

  // Number of counters currently pinned at max_value(); nonzero only with
  // saturation enabled. Exposed so tests can observe overflow behaviour.
  [[nodiscard]] size_t SaturatedCount() const noexcept;

  // Raw backing words. For the 64-bit-wide configuration counter i is
  // exactly word i — the layout the concurrent frontend's std::atomic_ref
  // fast path relies on (core/concurrent_sbf.h).
  [[nodiscard]] const uint64_t* words() const noexcept {
    return bits_.words();
  }
  [[nodiscard]] uint64_t* mutable_words() noexcept {
    return bits_.mutable_words();
  }

 private:
  size_t m_;
  uint32_t width_;
  uint64_t max_value_;
  bool sticky_;
  BitVector bits_;
};

}  // namespace sbf

#endif  // SBF_SAI_FIXED_COUNTER_VECTOR_H_
