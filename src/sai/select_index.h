#ifndef SBF_SAI_SELECT_INDEX_H_
#define SBF_SAI_SELECT_INDEX_H_

#include <cstdint>
#include <vector>

#include "bitstream/bit_vector.h"
#include "bitstream/rank_select.h"
#include "util/status.h"

namespace sbf {

// The classic reduction of the variable-length access problem to `select`
// (paper Section 4.2): build a marker bit vector V of N bits with a 1 at
// the first bit of every string; the offset of string i is then
// select(V, i). This is the "known solution" [Jac89, Mun96] the
// string-array index competes with — simple and static, but it spends a
// full N-bit shadow vector (plus the select directory) where the
// string-array index spends o(N) + O(m), and it cannot absorb updates.
//
// Included as the baseline for the index-structure comparison
// (bench_ablation_indexes) and as a second implementation to
// differential-test StringArrayIndex against.
class SelectIndex {
 public:
  // Builds the marker vector and select directory. O(N + m) time.
  explicit SelectIndex(const std::vector<uint32_t>& lengths);

  SelectIndex(const SelectIndex&) = delete;
  SelectIndex& operator=(const SelectIndex&) = delete;

  [[nodiscard]] size_t num_strings() const noexcept { return m_; }
  [[nodiscard]] size_t total_bits() const noexcept { return total_bits_; }

  // Bit offset of string i; Offset(m) == N.
  [[nodiscard]] size_t Offset(size_t i) const;

  // Index overhead in bits: the marker vector plus the rank/select
  // directory (the base strings are not included, as in
  // StringArrayIndex::IndexBits).
  [[nodiscard]] size_t IndexBits() const noexcept {
    return markers_.capacity_bits() + select_.OverheadBits();
  }

  // Audits the marker vector (one marker per string, marker 0 set, total
  // length spanned) and the select directory's recount.
  [[nodiscard]] Status CheckInvariants() const;

 private:
  size_t m_;
  size_t total_bits_;
  BitVector markers_;
  RankSelect select_;
};

}  // namespace sbf

#endif  // SBF_SAI_SELECT_INDEX_H_
