#include "sai/fixed_counter_vector.h"

#include "util/bits.h"
#include "util/check.h"

namespace sbf {

FixedWidthCounterVector::FixedWidthCounterVector(size_t m, uint32_t width_bits,
                                                 bool sticky_saturation)
    : m_(m),
      width_(width_bits),
      max_value_(LowMask(width_bits)),
      sticky_(sticky_saturation),
      bits_(m * width_bits) {
  SBF_CHECK_MSG(width_bits >= 1 && width_bits <= 64,
                "counter width must be in [1, 64]");
}

void FixedWidthCounterVector::Decrement(size_t i, uint64_t delta) noexcept {
  const uint64_t v = Get(i);
  if (sticky_ && v == max_value_) return;  // stuck counter, never decremented
  if (delta > v) {
    bits_.SetBits(i * width_, width_, 0);
    ++stats_.underflow_clamps;
    return;
  }
  bits_.SetBits(i * width_, width_, v - delta);
}

void FixedWidthCounterVector::Reset() { bits_.Clear(); }

size_t FixedWidthCounterVector::MemoryUsageBits() const {
  return bits_.capacity_bits();
}

std::unique_ptr<CounterVector> FixedWidthCounterVector::Clone() const {
  return std::make_unique<FixedWidthCounterVector>(*this);
}

std::string FixedWidthCounterVector::Name() const {
  return "fixed" + std::to_string(width_) + (sticky_ ? "-saturating" : "");
}

std::vector<uint8_t> FixedWidthCounterVector::Serialize() const {
  wire::Writer payload;
  payload.PutVarint(m_);
  payload.PutVarint(width_);
  payload.PutU8(sticky_ ? 1 : 0);
  payload.PutWords(bits_.words(), bits_.size_words());
  return wire::SealFrame(wire::kMagicFixedCounters, wire::kFormatVersion,
                         std::move(payload));
}

StatusOr<std::unique_ptr<CounterVector>> FixedWidthCounterVector::Deserialize(
    wire::ByteSpan bytes) {
  auto reader = wire::OpenFrame(bytes, wire::kMagicFixedCounters,
                                wire::kFormatVersion, "fixed counter vector");
  if (!reader.ok()) return reader.status();
  wire::Reader& in = reader.value();
  const uint64_t m = in.ReadVarint();
  const uint64_t width = in.ReadVarint();
  const uint8_t sticky = in.ReadU8();
  if (!in.ok()) return in.status();
  if (width < 1 || width > 64) {
    return Status::DataLoss("fixed counter vector width out of range");
  }
  if (sticky > 1) {
    return Status::DataLoss("fixed counter vector has a bad sticky flag");
  }
  // Bound m by the payload that is actually present before the O(m)
  // allocation: every counter occupies `width` of the remaining bits.
  if (m > in.remaining() * 8 / width) {
    return Status::DataLoss("fixed counter vector truncated");
  }
  const uint64_t words = CeilDiv(m * width, 64);
  if (in.remaining() != words * 8) {
    return Status::DataLoss("fixed counter vector word block size mismatch");
  }
  auto cv = std::make_unique<FixedWidthCounterVector>(
      static_cast<size_t>(m), static_cast<uint32_t>(width), sticky != 0);
  in.ReadWords(cv->mutable_words(), static_cast<size_t>(words));
  Status status = in.ExpectEnd("fixed counter vector");
  if (!status.ok()) return status;
  // Reject set bits past the last counter so the encoding stays canonical
  // (re-serializing always reproduces the input bytes).
  const uint64_t used_bits = m * width;
  if (used_bits % 64 != 0 &&
      (cv->words()[words - 1] >> (used_bits % 64)) != 0) {
    return Status::DataLoss("fixed counter vector has set padding bits");
  }
  return std::unique_ptr<CounterVector>(std::move(cv));
}

size_t FixedWidthCounterVector::SaturatedCount() const noexcept {
  size_t count = 0;
  for (size_t i = 0; i < m_; ++i) {
    if (Get(i) == max_value_) ++count;
  }
  return count;
}


Status FixedWidthCounterVector::CheckInvariants() const {
  if (width_ < 1 || width_ > 64) {
    return Status::FailedPrecondition(
        "fixed backing: counter width out of [1, 64]");
  }
  const uint64_t expect_max =
      width_ == 64 ? ~uint64_t{0} : (uint64_t{1} << width_) - 1;
  if (max_value_ != expect_max) {
    return Status::FailedPrecondition(
        "fixed backing: max_value disagrees with the counter width");
  }
  if (bits_.size_bits() != m_ * width_) {
    return Status::FailedPrecondition(
        "fixed backing: bit array size disagrees with m * width");
  }
  // The packed words end mid-word unless m*width is a multiple of 64; the
  // trailing padding must stay zero (Serialize ships the words verbatim,
  // and Deserialize rejects frames with set padding).
  const size_t used = m_ * width_;
  if (used % 64 != 0 && (bits_.words()[used / 64] >> (used % 64)) != 0) {
    return Status::FailedPrecondition(
        "fixed backing: set bits in the tail padding");
  }
  return Status::Ok();
}

}  // namespace sbf
