#include "sai/fixed_counter_vector.h"

#include "util/check.h"

namespace sbf {

FixedWidthCounterVector::FixedWidthCounterVector(size_t m, uint32_t width_bits,
                                                 bool sticky_saturation)
    : m_(m),
      width_(width_bits),
      max_value_(LowMask(width_bits)),
      sticky_(sticky_saturation),
      bits_(m * width_bits) {
  SBF_CHECK_MSG(width_bits >= 1 && width_bits <= 64,
                "counter width must be in [1, 64]");
}

void FixedWidthCounterVector::Decrement(size_t i, uint64_t delta) {
  const uint64_t v = Get(i);
  if (sticky_ && v == max_value_) return;  // stuck counter, never decremented
  SBF_CHECK_MSG(v >= delta, "counter underflow in fixed-width vector");
  Set(i, v - delta);
}

void FixedWidthCounterVector::Reset() { bits_.Clear(); }

size_t FixedWidthCounterVector::MemoryUsageBits() const {
  return bits_.capacity_bits();
}

std::unique_ptr<CounterVector> FixedWidthCounterVector::Clone() const {
  return std::make_unique<FixedWidthCounterVector>(*this);
}

std::string FixedWidthCounterVector::Name() const {
  return "fixed" + std::to_string(width_) + (sticky_ ? "-saturating" : "");
}

size_t FixedWidthCounterVector::SaturatedCount() const {
  size_t count = 0;
  for (size_t i = 0; i < m_; ++i) {
    if (Get(i) == max_value_) ++count;
  }
  return count;
}

}  // namespace sbf
