#ifndef SBF_SAI_COUNTER_VECTOR_H_
#define SBF_SAI_COUNTER_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/wire.h"
#include "util/check.h"
#include "util/status.h"

namespace sbf {

// Tallies of clamp events on a counter vector. These are process-local
// diagnostics — they feed health reporting, never the wire format (the
// framed encodings are pinned by golden tests and carry only counter
// state).
struct SaturationStats {
  uint64_t saturation_clamps = 0;  // increments clamped at the backing max
  uint64_t underflow_clamps = 0;   // decrements clamped at zero

  SaturationStats& operator+=(const SaturationStats& other) {
    saturation_clamps += other.saturation_clamps;
    underflow_clamps += other.underflow_clamps;
    return *this;
  }
};

// Result of one occupancy sweep over the counters (health reporting).
struct OccupancyCounts {
  uint64_t nonzero = 0;    // counters with value > 0
  uint64_t saturated = 0;  // counters pinned at the backing's MaxValue()
};

// Abstract array of m non-negative counters — the storage substrate of the
// Spectral Bloom Filter. Implementations trade compactness for speed:
//
//  * FixedWidthCounterVector  — packed w-bit counters (plain or saturating;
//                               the 4-bit variant is the FCAB98 counting
//                               Bloom filter's storage, the 32/64-bit
//                               variant the "straightforward" baseline the
//                               paper rules out as wasteful).
//  * CompactCounterVector     — the paper's dynamic scheme (Section 4.4):
//                               each counter in ~ceil(log C_i) bits, slack
//                               bits for growth, push-to-slack expansion,
//                               amortized O(1) updates.
//  * SerialScanCounterVector  — the paper's compact alternative
//                               (Section 4.5): Elias/steps-coded groups
//                               with coarse offsets and O(log log N) serial
//                               scan lookups.
class CounterVector {
 public:
  virtual ~CounterVector() = default;

  // Number of counters (the SBF's m).
  [[nodiscard]] virtual size_t size() const = 0;

  // Value of counter i.
  [[nodiscard]] virtual uint64_t Get(size_t i) const = 0;

  // Sets counter i to `value`.
  virtual void Set(size_t i, uint64_t value) = 0;

  // Largest value a counter can hold. Increments clamp here instead of
  // wrapping or aborting (saturation governance): a clamped counter keeps
  // the SBF's one-sided guarantee — estimates may overshoot but a present
  // item is never reported below the clamp.
  [[nodiscard]] virtual uint64_t MaxValue() const noexcept { return ~uint64_t{0}; }

  // Adds `delta` to counter i, clamping at MaxValue() (the clamp is
  // tallied in saturation()). Overridable for backings with a cheaper
  // in-place path; overrides must preserve the clamp semantics.
  virtual void Increment(size_t i, uint64_t delta = 1) {
    const uint64_t v = Get(i);
    const uint64_t max = MaxValue();
    if (delta > max - v) {
      Set(i, max);
      ++stats_.saturation_clamps;
      return;
    }
    Set(i, v + delta);
  }

  // --- bulk hooks for the batched probe pipelines ------------------------
  //
  // The batched filter kernels (FrequencyFilter::EstimateBatch and friends)
  // hash a window of keys ahead, issue PrefetchCounter on the upcoming
  // probe targets, then read the current key's counters with one GetMany
  // call — one virtual dispatch per key instead of one per probe.

  // Hints the memory system to pull the words backing counter i into
  // cache. A pure performance hint; the default is a no-op.
  virtual void PrefetchCounter(size_t i) const { (void)i; }

  // Opt-in for the naive per-index default loops below. A backing whose
  // Get is O(1) and inline may rely on them; the grouped backings must
  // override GetMany/DecodeBlock/EncodeBlock with group-granular decodes
  // (re-scanning the group per index is the exact pathology the decoded-
  // view refactor removed). The SBF_DCHECKs in the defaults catch a new
  // backing that ships without either an override or an explicit opt-in;
  // scripts/sbf_lint.py enforces the same rule statically.
  [[nodiscard]] virtual bool AllowsNaiveDecode() const noexcept {
    return false;
  }

  // Fills out[j] = Get(idx[j]) for j in [0, n). Each backing overrides
  // this with a loop over its own (devirtualized) accessor so the inner
  // probe loop pays no virtual dispatch; the grouped backings additionally
  // serve sorted runs from one sequential group decode.
  virtual void GetMany(const uint64_t* idx, size_t n, uint64_t* out) const {
    SBF_DCHECK_MSG(AllowsNaiveDecode(),
                   "backing uses the naive GetMany loop without opting in");
    for (size_t j = 0; j < n; ++j) out[j] = Get(idx[j]);
  }

  // Decodes the contiguous counter range [first, first + n) into
  // out[0..n) — the span primitive of the decoded-view layer (DecodeView
  // below, the blocked layouts' block loads, Total/ScanOccupancy sweeps,
  // serialization). Unlike GetMany this names a *range*, so a backing can
  // decode a whole group in one pass instead of re-scanning per counter.
  // Overrides must be exactly equivalent to the Get loop below.
  virtual void DecodeBlock(size_t first, size_t n, uint64_t* out) const {
    SBF_DCHECK_MSG(AllowsNaiveDecode(),
                   "backing uses the naive DecodeBlock loop without opting in");
    for (size_t j = 0; j < n; ++j) out[j] = Get(first + j);
  }

  // Writes values[0..n) into the contiguous counter range
  // [first, first + n) — the write-back half of the decoded-view layer.
  // Exactly equivalent to the Set loop below (including clamp tallies for
  // backings whose Set clamps); the grouped backings override it with a
  // single sequential pass that re-seeks only when a counter widens.
  virtual void EncodeBlock(size_t first, size_t n, const uint64_t* values) {
    for (size_t j = 0; j < n; ++j) Set(first + j, values[j]);
  }

  // Whether DecodeView may buffer writes against this backing. False only
  // for backings with non-uniform scalar write semantics (the sticky-
  // saturating fixed vector, whose saturated counters must ignore
  // decrements — a plain value cache cannot reproduce that).
  [[nodiscard]] virtual bool SupportsDecodedWrites() const noexcept {
    return true;
  }

  // Subtracts `delta` from counter i, clamping at zero (the clamp is
  // tallied in saturation()). A delete of a never-inserted item — user
  // error, replayed traffic, a collided counter already clamped — degrades
  // the estimate but never wraps or aborts.
  virtual void Decrement(size_t i, uint64_t delta = 1);

  // Sets every counter to zero.
  virtual void Reset() = 0;

  // Total memory footprint in bits, including index/overhead structures.
  // This is what the storage experiments (Figures 13-15) report.
  [[nodiscard]] virtual size_t MemoryUsageBits() const = 0;

  // Deep copy preserving the concrete backing.
  [[nodiscard]] virtual std::unique_ptr<CounterVector> Clone() const = 0;

  // Short implementation name for benchmark tables.
  [[nodiscard]] virtual std::string Name() const = 0;

  // Complete self-describing wire frame (io/wire.h) for this backing:
  // {magic, version, size, crc} header + the backing's parameters and
  // counter payload. Filter-level serialization embeds this frame, so the
  // storage layer owns its own encoding. Round-trips byte-identically
  // through DeserializeCounterVector.
  [[nodiscard]] virtual std::vector<uint8_t> Serialize() const = 0;

  // Structural self-check of the backing's layout invariants — bounds,
  // offset monotonicity, width/value agreement (the SBF_AUDIT validator
  // layer; see DESIGN.md §7). Always compiled; additionally invoked at API
  // boundaries in -DSBF_AUDIT builds. Returns OK or a FailedPrecondition
  // naming the violated invariant.
  [[nodiscard]] virtual Status CheckInvariants() const { return Status::Ok(); }

  // Sum of all counters (k*M for an SBF under Minimum Selection). Routed
  // through DecodeBlock in contiguous chunks so every backing sums from
  // sequential group decodes instead of one virtual Get per counter.
  [[nodiscard]] uint64_t Total() const;

  // One sweep over the counters tallying occupancy for health reporting,
  // chunked through DecodeBlock like Total().
  [[nodiscard]] OccupancyCounts ScanOccupancy() const;

  // Clamp-event tallies since construction (clones inherit the tallies of
  // their source; deserialized vectors start at zero).
  [[nodiscard]] const SaturationStats& saturation() const noexcept {
    return stats_;
  }

  // Folds `other` into these tallies. Online expansion rebuilds the
  // backing and uses this to carry the filter's clamp history across the
  // rebuild, so "clamps since construction" stays truthful at the
  // frontend.
  void MergeSaturationStats(const SaturationStats& other) { stats_ += other; }

 protected:
  SaturationStats stats_;
};

// Caller-owned group cursor over a CounterVector: a small direct-mapped
// cache of decoded counter spans. A span (64 counters, aligned) is decoded
// once via DecodeBlock on first touch; every further access to the span is
// an array read or write against the decoded buffer, and dirty spans are
// written back in one EncodeBlock pass on eviction, Flush() or
// destruction. This is the hot-group cache of the decoded-view layer: a
// consumer whose accesses cluster by group (sorted flush streams, blocked
// probes, sequential sweeps) pays one decode + one encode per touched
// group instead of one width scan per access.
//
// Semantics are exactly those of direct scalar access in the same op
// order: Increment clamps at MaxValue() and Decrement at zero, and the
// clamp tallies are folded into the backing's SaturationStats at Flush().
// Because the cache is keyed by counter *index* and counter values never
// move logically, the backing's internal relayouts (widening shifts,
// push-to-slack, rebuilds — including ones triggered by this view's own
// write-back) never invalidate cached spans. What does invalidate them is
// any access to the backing that bypasses a dirty view, so a writable view
// requires exclusive access to its backing for its open lifetime; callers
// interleaving direct access must Flush() first.
//
// Views are cheap to construct (no decode until first access) and live on
// the stack; the backing must outlive the view.
class DecodeView {
 public:
  static constexpr size_t kSpanCounters = 64;  // counters per cached span
  static constexpr size_t kWays = 8;           // resident spans

  explicit DecodeView(const CounterVector& cv)
      : cv_(&cv), mutable_cv_(nullptr), max_value_(cv.MaxValue()) {}
  explicit DecodeView(CounterVector& cv)
      : cv_(&cv), mutable_cv_(&cv), max_value_(cv.MaxValue()) {
    SBF_CHECK_MSG(cv.SupportsDecodedWrites(),
                  "backing's scalar write semantics cannot be buffered");
  }
  DecodeView(const DecodeView&) = delete;
  DecodeView& operator=(const DecodeView&) = delete;
  ~DecodeView() { Flush(); }

  [[nodiscard]] uint64_t Get(size_t i) { return Slot(i); }

  // Mirrors CounterVector::Set, including the clamp-at-MaxValue tally of
  // the saturating backings.
  void Set(size_t i, uint64_t value) {
    if (value > max_value_) {
      value = max_value_;
      ++pending_stats_.saturation_clamps;
    }
    MutableSlot(i) = value;
  }

  void Increment(size_t i, uint64_t delta = 1) {
    uint64_t& v = MutableSlot(i);
    if (delta > max_value_ - v) {
      v = max_value_;
      ++pending_stats_.saturation_clamps;
      return;
    }
    v += delta;
  }

  void Decrement(size_t i, uint64_t delta = 1) {
    uint64_t& v = MutableSlot(i);
    if (delta > v) {
      v = 0;
      ++pending_stats_.underflow_clamps;
      return;
    }
    v -= delta;
  }

  // Writes every dirty span back (one EncodeBlock per span) and folds the
  // buffered clamp tallies into the backing. Cached spans stay resident,
  // so a flushed view remains usable.
  void Flush();

  // Spans decoded so far (cache misses) — test/bench introspection.
  [[nodiscard]] uint64_t decode_count() const noexcept { return decodes_; }

 private:
  struct Span {
    size_t first = 0;
    uint32_t count = 0;
    bool valid = false;
    bool dirty = false;
    uint64_t values[kSpanCounters];
  };

  uint64_t& Slot(size_t i) {
    SBF_DCHECK(i < cv_->size());
    Span& s = ways_[(i / kSpanCounters) % kWays];
    const size_t first = i & ~(kSpanCounters - 1);
    if (!s.valid || s.first != first) Refill(s, first);
    return s.values[i - first];
  }
  uint64_t& MutableSlot(size_t i) {
    SBF_DCHECK_MSG(mutable_cv_ != nullptr, "write through a read-only view");
    Span& s = ways_[(i / kSpanCounters) % kWays];
    const size_t first = i & ~(kSpanCounters - 1);
    if (!s.valid || s.first != first) Refill(s, first);
    s.dirty = true;
    return s.values[i - first];
  }
  // Evicts (writing back if dirty) and decodes the span at `first`.
  void Refill(Span& s, size_t first);
  void WriteBack(Span& s);

  const CounterVector* cv_;
  CounterVector* mutable_cv_;
  uint64_t max_value_;
  uint64_t decodes_ = 0;
  SaturationStats pending_stats_;
  Span ways_[kWays];
};

// Backing selector used by filter configuration structs.
enum class CounterBacking {
  kFixed64,     // 64-bit packed counters, fastest, largest
  kFixed32,     // 32-bit packed counters
  kCompact,     // CompactCounterVector (the paper's dynamic structure)
  kSerialScan,  // SerialScanCounterVector (Section 4.5 alternative)
};

// Constructs a zeroed counter vector of m counters with the given backing.
std::unique_ptr<CounterVector> MakeCounterVector(CounterBacking backing,
                                                 size_t m);

const char* CounterBackingName(CounterBacking backing);

// Reconstructs a counter vector from any backing frame, dispatching on the
// frame magic. Truncated, oversized, corrupted or unknown frames are
// rejected with a clean DataLoss status; allocations are bounded by the
// actual message size before they happen.
StatusOr<std::unique_ptr<CounterVector>> DeserializeCounterVector(
    wire::ByteSpan bytes);

// True iff `cv` is the concrete backing `backing` selects (including the
// fixed-width configuration: width 64/32, non-saturating). Deserializers
// use this to reject frames whose embedded backing contradicts the
// enclosing filter's options — the devirtualized batch kernels static_cast
// to the concrete type, so a mismatch must never be accepted.
bool MatchesBacking(const CounterVector& cv, CounterBacking backing);

}  // namespace sbf

#endif  // SBF_SAI_COUNTER_VECTOR_H_
