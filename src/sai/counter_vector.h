#ifndef SBF_SAI_COUNTER_VECTOR_H_
#define SBF_SAI_COUNTER_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/wire.h"
#include "util/status.h"

namespace sbf {

// Tallies of clamp events on a counter vector. These are process-local
// diagnostics — they feed health reporting, never the wire format (the
// framed encodings are pinned by golden tests and carry only counter
// state).
struct SaturationStats {
  uint64_t saturation_clamps = 0;  // increments clamped at the backing max
  uint64_t underflow_clamps = 0;   // decrements clamped at zero

  SaturationStats& operator+=(const SaturationStats& other) {
    saturation_clamps += other.saturation_clamps;
    underflow_clamps += other.underflow_clamps;
    return *this;
  }
};

// Result of one occupancy sweep over the counters (health reporting).
struct OccupancyCounts {
  uint64_t nonzero = 0;    // counters with value > 0
  uint64_t saturated = 0;  // counters pinned at the backing's MaxValue()
};

// Abstract array of m non-negative counters — the storage substrate of the
// Spectral Bloom Filter. Implementations trade compactness for speed:
//
//  * FixedWidthCounterVector  — packed w-bit counters (plain or saturating;
//                               the 4-bit variant is the FCAB98 counting
//                               Bloom filter's storage, the 32/64-bit
//                               variant the "straightforward" baseline the
//                               paper rules out as wasteful).
//  * CompactCounterVector     — the paper's dynamic scheme (Section 4.4):
//                               each counter in ~ceil(log C_i) bits, slack
//                               bits for growth, push-to-slack expansion,
//                               amortized O(1) updates.
//  * SerialScanCounterVector  — the paper's compact alternative
//                               (Section 4.5): Elias/steps-coded groups
//                               with coarse offsets and O(log log N) serial
//                               scan lookups.
class CounterVector {
 public:
  virtual ~CounterVector() = default;

  // Number of counters (the SBF's m).
  [[nodiscard]] virtual size_t size() const = 0;

  // Value of counter i.
  [[nodiscard]] virtual uint64_t Get(size_t i) const = 0;

  // Sets counter i to `value`.
  virtual void Set(size_t i, uint64_t value) = 0;

  // Largest value a counter can hold. Increments clamp here instead of
  // wrapping or aborting (saturation governance): a clamped counter keeps
  // the SBF's one-sided guarantee — estimates may overshoot but a present
  // item is never reported below the clamp.
  [[nodiscard]] virtual uint64_t MaxValue() const noexcept { return ~uint64_t{0}; }

  // Adds `delta` to counter i, clamping at MaxValue() (the clamp is
  // tallied in saturation()). Overridable for backings with a cheaper
  // in-place path; overrides must preserve the clamp semantics.
  virtual void Increment(size_t i, uint64_t delta = 1) {
    const uint64_t v = Get(i);
    const uint64_t max = MaxValue();
    if (delta > max - v) {
      Set(i, max);
      ++stats_.saturation_clamps;
      return;
    }
    Set(i, v + delta);
  }

  // --- bulk hooks for the batched probe pipelines ------------------------
  //
  // The batched filter kernels (FrequencyFilter::EstimateBatch and friends)
  // hash a window of keys ahead, issue PrefetchCounter on the upcoming
  // probe targets, then read the current key's counters with one GetMany
  // call — one virtual dispatch per key instead of one per probe.

  // Hints the memory system to pull the words backing counter i into
  // cache. A pure performance hint; the default is a no-op.
  virtual void PrefetchCounter(size_t i) const { (void)i; }

  // Fills out[j] = Get(idx[j]) for j in [0, n). Each backing overrides
  // this with a loop over its own (devirtualized) accessor so the inner
  // probe loop pays no virtual dispatch.
  virtual void GetMany(const uint64_t* idx, size_t n, uint64_t* out) const {
    for (size_t j = 0; j < n; ++j) out[j] = Get(idx[j]);
  }

  // Decodes the contiguous counter range [first, first + n) into
  // out[0..n) — the block-view hook of the blocked layouts. Unlike
  // GetMany this names a *range*, so a backing can decode a whole block
  // in one pass (the fixed widths read consecutive words; the compact
  // backings can decode a group once instead of re-scanning per counter —
  // the interface the ROADMAP's compact-decode item builds on). Overrides
  // must be exactly equivalent to the Get loop below.
  virtual void DecodeBlock(size_t first, size_t n, uint64_t* out) const {
    for (size_t j = 0; j < n; ++j) out[j] = Get(first + j);
  }

  // Subtracts `delta` from counter i, clamping at zero (the clamp is
  // tallied in saturation()). A delete of a never-inserted item — user
  // error, replayed traffic, a collided counter already clamped — degrades
  // the estimate but never wraps or aborts.
  virtual void Decrement(size_t i, uint64_t delta = 1);

  // Sets every counter to zero.
  virtual void Reset() = 0;

  // Total memory footprint in bits, including index/overhead structures.
  // This is what the storage experiments (Figures 13-15) report.
  [[nodiscard]] virtual size_t MemoryUsageBits() const = 0;

  // Deep copy preserving the concrete backing.
  [[nodiscard]] virtual std::unique_ptr<CounterVector> Clone() const = 0;

  // Short implementation name for benchmark tables.
  [[nodiscard]] virtual std::string Name() const = 0;

  // Complete self-describing wire frame (io/wire.h) for this backing:
  // {magic, version, size, crc} header + the backing's parameters and
  // counter payload. Filter-level serialization embeds this frame, so the
  // storage layer owns its own encoding. Round-trips byte-identically
  // through DeserializeCounterVector.
  [[nodiscard]] virtual std::vector<uint8_t> Serialize() const = 0;

  // Structural self-check of the backing's layout invariants — bounds,
  // offset monotonicity, width/value agreement (the SBF_AUDIT validator
  // layer; see DESIGN.md §7). Always compiled; additionally invoked at API
  // boundaries in -DSBF_AUDIT builds. Returns OK or a FailedPrecondition
  // naming the violated invariant.
  [[nodiscard]] virtual Status CheckInvariants() const { return Status::Ok(); }

  // Sum of all counters (k*M for an SBF under Minimum Selection). Routed
  // through GetMany in index chunks so every backing sums with its
  // devirtualized accessor instead of one virtual Get per counter.
  [[nodiscard]] uint64_t Total() const;

  // One sweep over the counters tallying occupancy for health reporting,
  // chunked through GetMany like Total().
  [[nodiscard]] OccupancyCounts ScanOccupancy() const;

  // Clamp-event tallies since construction (clones inherit the tallies of
  // their source; deserialized vectors start at zero).
  [[nodiscard]] const SaturationStats& saturation() const noexcept {
    return stats_;
  }

  // Folds `other` into these tallies. Online expansion rebuilds the
  // backing and uses this to carry the filter's clamp history across the
  // rebuild, so "clamps since construction" stays truthful at the
  // frontend.
  void MergeSaturationStats(const SaturationStats& other) { stats_ += other; }

 protected:
  SaturationStats stats_;
};

// Backing selector used by filter configuration structs.
enum class CounterBacking {
  kFixed64,     // 64-bit packed counters, fastest, largest
  kFixed32,     // 32-bit packed counters
  kCompact,     // CompactCounterVector (the paper's dynamic structure)
  kSerialScan,  // SerialScanCounterVector (Section 4.5 alternative)
};

// Constructs a zeroed counter vector of m counters with the given backing.
std::unique_ptr<CounterVector> MakeCounterVector(CounterBacking backing,
                                                 size_t m);

const char* CounterBackingName(CounterBacking backing);

// Reconstructs a counter vector from any backing frame, dispatching on the
// frame magic. Truncated, oversized, corrupted or unknown frames are
// rejected with a clean DataLoss status; allocations are bounded by the
// actual message size before they happen.
StatusOr<std::unique_ptr<CounterVector>> DeserializeCounterVector(
    wire::ByteSpan bytes);

// True iff `cv` is the concrete backing `backing` selects (including the
// fixed-width configuration: width 64/32, non-saturating). Deserializers
// use this to reject frames whose embedded backing contradicts the
// enclosing filter's options — the devirtualized batch kernels static_cast
// to the concrete type, so a mismatch must never be accepted.
bool MatchesBacking(const CounterVector& cv, CounterBacking backing);

}  // namespace sbf

#endif  // SBF_SAI_COUNTER_VECTOR_H_
