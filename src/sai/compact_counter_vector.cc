#include "sai/compact_counter_vector.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "sai/counter_codec.h"

#include "util/bits.h"
#include "util/check.h"

namespace sbf {
namespace {

size_t SlackBitsPerGroup(const CompactCounterVector::Options& options) {
  const double per_group =
      options.slack_per_counter * static_cast<double>(options.group_size);
  // At least 64 bits so that any single counter widening (at most 63 bits)
  // fits into a freshly refreshed group.
  return std::max<size_t>(64, static_cast<size_t>(std::ceil(per_group)));
}

// Sum of the n (1 <= n <= 7) width bytes at p: one 8-byte load, mask, and
// a pairwise horizontal add. Widths go up to 64, so seven of them can sum
// to 448 — past a byte — which rules out the classic single-multiply
// byte-sum; the pairwise fold keeps every lane within 16 bits. The load
// relies on the kWidthPad zero bytes after widths_[m - 1].
inline uint64_t SumWidthBytes(const uint8_t* p, size_t n) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  uint64_t x;
  std::memcpy(&x, p, sizeof(x));
  x &= ~uint64_t{0} >> ((8 - n) * 8);
  x = (x & 0x00FF00FF00FF00FFull) + ((x >> 8) & 0x00FF00FF00FF00FFull);
  x += x >> 16;
  x += x >> 32;
  return x & 0x3FF;
#else
  uint64_t sum = 0;
  for (size_t j = 0; j < n; ++j) sum += p[j];
  return sum;
#endif
}

}  // namespace

CompactCounterVector::CompactCounterVector(size_t m, Options options)
    : m_(m), options_(options) {
  SBF_CHECK_MSG(m >= 1, "counter vector needs m >= 1");
  SBF_CHECK_MSG(options_.group_size >= 1, "group size must be >= 1");
  SBF_CHECK_MSG(options_.slack_per_counter >= 0.0, "negative slack");
  num_groups_ = CeilDiv(m_, options_.group_size);
  samples_per_group_ = CeilDiv(options_.group_size, kSampleStride);
  widths_.assign(m_ + kWidthPad, 0);
  std::fill_n(widths_.begin(), m_, uint8_t{1});
  LayoutFromValues(std::vector<uint64_t>(m_, 0));
}

size_t CompactCounterVector::NumItemsInGroup(size_t g) const {
  const size_t begin = g * options_.group_size;
  return std::min(options_.group_size, m_ - begin);
}

size_t CompactCounterVector::PositionOf(size_t i) const {
  // O(1): the sampled prefix sum covers all but the last (i mod 8) widths,
  // which one branch-free byte-sum picks up.
  const size_t g = i / options_.group_size;
  const size_t j = i - g * options_.group_size;
  size_t pos = group_start_[g] +
               offset_samples_[g * samples_per_group_ + j / kSampleStride];
  const size_t tail = j & (kSampleStride - 1);
  if (tail != 0) pos += SumWidthBytes(widths_.data() + (i - tail), tail);
  return pos;
}

void CompactCounterVector::RebuildSamples(size_t g) {
  const size_t begin = g * options_.group_size;
  const size_t count = NumItemsInGroup(g);
  uint32_t* samples = offset_samples_.data() + g * samples_per_group_;
  uint32_t acc = 0;
  for (size_t j = 0; j < count; ++j) {
    if ((j & (kSampleStride - 1)) == 0) samples[j / kSampleStride] = acc;
    acc += widths_[begin + j];
  }
}

size_t CompactCounterVector::DecodeRun(size_t first, size_t last, size_t pos,
                                       uint64_t* out) const {
  for (size_t i = first; i < last; ++i) {
    const uint32_t w = widths_[i];
    out[i - first] = bits_.GetBits(pos, w);
    pos += w;
  }
  return pos;
}

uint64_t CompactCounterVector::Get(size_t i) const noexcept {
  SBF_DCHECK(i < m_);
  return bits_.GetBits(PositionOf(i), widths_[i]);
}

void CompactCounterVector::Set(size_t i, uint64_t value) {
  SBF_DCHECK(i < m_);
  const uint32_t new_width = BitWidth(value);
  uint32_t width = widths_[i];
  if (new_width <= width) {
    // In-place write; the counter keeps its current (possibly wider) field.
    bits_.SetBits(PositionOf(i), width, value);
    return;
  }

  const size_t g = i / options_.group_size;
  const uint32_t grow = new_width - width;
  if (FreeBits(g) < grow && !BorrowSlack(g, grow - FreeBits(g))) {
    Rebuild();
    Set(i, value);  // widths were tightened; redo with fresh slack
    return;
  }
  // Push this group's tail (counters after i) into the group slack.
  const size_t pos = PositionOf(i);
  const size_t tail_end = group_start_[g] + used_[g];
  bits_.ShiftRangeRight(pos + width, tail_end, grow);
  pushed_bits_ += tail_end - (pos + width);
  widths_[i] = static_cast<uint8_t>(new_width);
  used_[g] += grow;
  // Samples after i within the group shift right with the tail. Samples
  // are group-relative, so no other group's table is touched (BorrowSlack
  // moves whole groups, which leaves group-relative offsets intact).
  uint32_t* samples = offset_samples_.data() + g * samples_per_group_;
  const size_t j = i - g * options_.group_size;
  for (size_t t = j / kSampleStride + 1; t < samples_per_group_; ++t) {
    samples[t] += grow;
  }
  bits_.SetBits(pos, new_width, value);
}

bool CompactCounterVector::BorrowSlack(size_t g, size_t need) {
  while (need > 0) {
    // Nearest following group with free slack.
    size_t h = g + 1;
    while (h < num_groups_ && FreeBits(h) == 0) ++h;
    if (h >= num_groups_) return false;
    const size_t take = std::min(FreeBits(h), need);
    // Shift groups g+1..h right by `take`; group g's region grows, group
    // h's slack shrinks, groups in between move wholesale.
    const size_t span_begin = group_start_[g + 1];
    const size_t span_end = group_start_[h] + used_[h];
    bits_.ShiftRangeRight(span_begin, span_end, take);
    pushed_bits_ += span_end - span_begin;
    for (size_t j = g + 1; j <= h; ++j) group_start_[j] += take;
    need -= take;
  }
  return true;
}

void CompactCounterVector::Rebuild() {
  std::vector<uint64_t> values(m_);
  DecodeBlock(0, m_, values.data());
  for (size_t i = 0; i < m_; ++i) {
    widths_[i] = static_cast<uint8_t>(BitWidth(values[i]));
  }
  LayoutFromValues(values);
  ++rebuilds_;
}

void CompactCounterVector::LayoutFromValues(
    const std::vector<uint64_t>& values) {
  const size_t slack = SlackBitsPerGroup(options_);
  group_start_.assign(num_groups_ + 1, 0);
  used_.assign(num_groups_, 0);
  for (size_t g = 0; g < num_groups_; ++g) {
    const size_t begin = g * options_.group_size;
    const size_t end = begin + NumItemsInGroup(g);
    size_t payload = 0;
    for (size_t i = begin; i < end; ++i) payload += widths_[i];
    used_[g] = static_cast<uint32_t>(payload);
    group_start_[g + 1] = group_start_[g] + payload + slack;
  }
  bits_ = BitVector(group_start_[num_groups_]);
  size_t pos = 0;
  offset_samples_.assign(num_groups_ * samples_per_group_, 0);
  for (size_t g = 0; g < num_groups_; ++g) {
    pos = group_start_[g];
    const size_t begin = g * options_.group_size;
    const size_t end = begin + NumItemsInGroup(g);
    for (size_t i = begin; i < end; ++i) {
      bits_.SetBits(pos, widths_[i], values[i]);
      pos += widths_[i];
    }
    RebuildSamples(g);
  }
}

void CompactCounterVector::Increment(size_t i, uint64_t delta) {
  SBF_DCHECK(i < m_);
  const uint32_t width = widths_[i];
  const size_t pos = PositionOf(i);
  const uint64_t v = bits_.GetBits(pos, width);
  if (delta > ~uint64_t{0} - v) {  // 64-bit ceiling: clamp, don't wrap
    ++stats_.saturation_clamps;
    Set(i, ~uint64_t{0});
    return;
  }
  const uint64_t value = v + delta;
  if (BitWidth(value) <= width) {
    bits_.SetBits(pos, width, value);
    return;
  }
  Set(i, value);  // widening path
}

void CompactCounterVector::Reset() {
  widths_.assign(m_ + kWidthPad, 0);
  std::fill_n(widths_.begin(), m_, uint8_t{1});
  LayoutFromValues(std::vector<uint64_t>(m_, 0));
}

void CompactCounterVector::GetMany(const uint64_t* idx, size_t n,
                                   uint64_t* out) const {
  // Serve in group-sorted order: chunk, sort a permutation when the
  // indices do not already arrive sorted, then walk each sorted run with
  // one sequential decode — a touched group's widths are walked at most
  // once per chunk, duplicates are served from the walk, and a gap within
  // a group costs one O(1) re-seek instead of decoding the gap.
  constexpr size_t kChunk = 256;
  uint16_t ord[kChunk];
  const size_t gs = options_.group_size;
  for (size_t base = 0; base < n; base += kChunk) {
    const size_t len = std::min(kChunk, n - base);
    const uint64_t* cidx = idx + base;
    uint64_t* cout = out + base;
    bool sorted = true;
    for (size_t j = 0; j + 1 < len; ++j) {
      if (cidx[j] > cidx[j + 1]) {
        sorted = false;
        break;
      }
    }
    for (size_t j = 0; j < len; ++j) ord[j] = static_cast<uint16_t>(j);
    if (!sorted) {
      std::sort(ord, ord + len,
                [cidx](uint16_t a, uint16_t b) { return cidx[a] < cidx[b]; });
    }
    size_t c = 0;
    size_t prev = 0;
    size_t pos = 0;
    bool walking = false;
    while (c < len) {
      const size_t i = static_cast<size_t>(cidx[ord[c]]);
      SBF_DCHECK(i < m_);
      // The sequential walk is only valid within a group (slack separates
      // group payloads); a gap or a group boundary re-seeks in O(1).
      if (!walking || i != prev + 1 || i % gs == 0) pos = PositionOf(i);
      const uint32_t w = widths_[i];
      const uint64_t v = bits_.GetBits(pos, w);
      pos += w;
      prev = i;
      walking = true;
      do {
        cout[ord[c++]] = v;
      } while (c < len && cidx[ord[c]] == i);
    }
  }
}

void CompactCounterVector::DecodeBlock(size_t first, size_t n,
                                       uint64_t* out) const {
  SBF_DCHECK(first + n <= m_);
  size_t i = first;
  const size_t end = first + n;
  while (i < end) {
    const size_t g = i / options_.group_size;
    const size_t gend =
        std::min(end, g * options_.group_size + NumItemsInGroup(g));
    DecodeRun(i, gend, PositionOf(i), out + (i - first));
    i = gend;
  }
}

void CompactCounterVector::EncodeBlock(size_t first, size_t n,
                                       const uint64_t* values) {
  SBF_DCHECK(first + n <= m_);
  const size_t gs = options_.group_size;
  size_t pos = 0;
  bool walking = false;
  for (size_t j = 0; j < n; ++j) {
    const size_t i = first + j;
    if (!walking || i % gs == 0) {
      pos = PositionOf(i);
      walking = true;
    }
    const uint32_t w = widths_[i];
    if (BitWidth(values[j]) <= w) {
      bits_.SetBits(pos, w, values[j]);
      pos += w;
    } else {
      Set(i, values[j]);  // widening: may shift the tail or rebuild
      pos = PositionOf(i) + widths_[i];
    }
  }
}

size_t CompactCounterVector::UsedBits() const {
  size_t total = 0;
  for (size_t i = 0; i < m_; ++i) total += widths_[i];
  return total;
}

size_t CompactCounterVector::OverheadBits() const {
  return group_start_.size() * 64 + used_.size() * 32 + m_ * 8 +
         offset_samples_.size() * 32;
}

size_t CompactCounterVector::MemoryUsageBits() const {
  return bits_.capacity_bits() + OverheadBits();
}

std::unique_ptr<CounterVector> CompactCounterVector::Clone() const {
  return std::make_unique<CompactCounterVector>(*this);
}

std::vector<uint8_t> CompactCounterVector::Serialize() const {
  wire::Writer payload;
  payload.PutVarint(m_);
  payload.PutVarint(options_.group_size);
  payload.PutU64(std::bit_cast<uint64_t>(options_.slack_per_counter));
  WriteCounterStream(*this, &payload);
  return wire::SealFrame(wire::kMagicCompactCounters, wire::kFormatVersion,
                         std::move(payload));
}

StatusOr<std::unique_ptr<CounterVector>> CompactCounterVector::Deserialize(
    wire::ByteSpan bytes) {
  auto reader =
      wire::OpenFrame(bytes, wire::kMagicCompactCounters, wire::kFormatVersion,
                      "compact counter vector");
  if (!reader.ok()) return reader.status();
  wire::Reader& in = reader.value();
  const uint64_t m = in.ReadVarint();
  const uint64_t group_size = in.ReadVarint();
  const double slack = std::bit_cast<double>(in.ReadU64());
  if (!in.ok()) return in.status();
  if (m < 1) {
    return Status::DataLoss("compact counter vector needs m >= 1");
  }
  if (group_size < 1 || group_size > 4096) {
    return Status::DataLoss("compact counter vector group size out of range");
  }
  if (!std::isfinite(slack) || slack < 0.0 || slack > 64.0) {
    return Status::DataLoss("compact counter vector slack out of range");
  }
  // Every counter costs at least one stream bit, so m is bounded by the
  // payload that is actually present — checked before the O(m) allocation.
  if (m > in.remaining() * 8) {
    return Status::DataLoss("compact counter vector truncated");
  }
  Options options;
  options.group_size = static_cast<size_t>(group_size);
  options.slack_per_counter = slack;
  auto cv =
      std::make_unique<CompactCounterVector>(static_cast<size_t>(m), options);
  Status status =
      ReadCounterStream(&in, m, cv.get(), "compact counter vector");
  if (!status.ok()) return status;
  status = in.ExpectEnd("compact counter vector");
  if (!status.ok()) return status;
  return std::unique_ptr<CounterVector>(std::move(cv));
}


Status CompactCounterVector::CheckInvariants() const {
  if (group_start_.size() != num_groups_ + 1 || used_.size() != num_groups_ ||
      widths_.size() != m_ + kWidthPad ||
      offset_samples_.size() != num_groups_ * samples_per_group_) {
    return Status::FailedPrecondition(
        "compact backing: bookkeeping vector sizes disagree with m");
  }
  for (size_t i = m_; i < widths_.size(); ++i) {
    if (widths_[i] != 0) {
      return Status::FailedPrecondition(
          "compact backing: width padding bytes are not zero");
    }
  }
  if (group_start_[0] != 0 || group_start_[num_groups_] != bits_.size_bits()) {
    return Status::FailedPrecondition(
        "compact backing: group offsets do not span the base array");
  }
  for (size_t g = 0; g < num_groups_; ++g) {
    if (group_start_[g] > group_start_[g + 1]) {
      return Status::FailedPrecondition(
          "compact backing: group offsets not monotone");
    }
    uint64_t width_sum = 0;
    const size_t begin = g * options_.group_size;
    const size_t end = begin + NumItemsInGroup(g);
    for (size_t i = begin; i < end; ++i) {
      if (widths_[i] < 1 || widths_[i] > 64) {
        return Status::FailedPrecondition(
            "compact backing: counter width out of [1, 64]");
      }
      // Every sampled offset must equal the width prefix sum it stands in
      // for — the O(1) PositionOf is only as correct as this table.
      const size_t j = i - begin;
      if ((j & (kSampleStride - 1)) == 0 &&
          offset_samples_[g * samples_per_group_ + j / kSampleStride] !=
              width_sum) {
        return Status::FailedPrecondition(
            "compact backing: prefix-sum offset sample disagrees with the "
            "counter widths");
      }
      width_sum += widths_[i];
    }
    if (width_sum != used_[g]) {
      return Status::FailedPrecondition(
          "compact backing: group used-bit count disagrees with the sum of "
          "its counter widths");
    }
    if (used_[g] > RegionBits(g)) {
      return Status::FailedPrecondition(
          "compact backing: group payload overflows its region");
    }
  }
  return Status::Ok();
}

}  // namespace sbf
