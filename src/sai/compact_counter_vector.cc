#include "sai/compact_counter_vector.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "sai/counter_codec.h"

#include "util/bits.h"
#include "util/check.h"

namespace sbf {
namespace {

size_t SlackBitsPerGroup(const CompactCounterVector::Options& options) {
  const double per_group =
      options.slack_per_counter * static_cast<double>(options.group_size);
  // At least 64 bits so that any single counter widening (at most 63 bits)
  // fits into a freshly refreshed group.
  return std::max<size_t>(64, static_cast<size_t>(std::ceil(per_group)));
}

}  // namespace

CompactCounterVector::CompactCounterVector(size_t m, Options options)
    : m_(m), options_(options) {
  SBF_CHECK_MSG(m >= 1, "counter vector needs m >= 1");
  SBF_CHECK_MSG(options_.group_size >= 1, "group size must be >= 1");
  SBF_CHECK_MSG(options_.slack_per_counter >= 0.0, "negative slack");
  num_groups_ = CeilDiv(m_, options_.group_size);
  widths_.assign(m_, 1);
  LayoutFromValues(std::vector<uint64_t>(m_, 0));
}

size_t CompactCounterVector::NumItemsInGroup(size_t g) const {
  const size_t begin = g * options_.group_size;
  return std::min(options_.group_size, m_ - begin);
}

size_t CompactCounterVector::PositionOf(size_t i) const {
  const size_t g = i / options_.group_size;
  size_t pos = group_start_[g];
  for (size_t j = g * options_.group_size; j < i; ++j) pos += widths_[j];
  return pos;
}

uint64_t CompactCounterVector::Get(size_t i) const noexcept {
  SBF_DCHECK(i < m_);
  return bits_.GetBits(PositionOf(i), widths_[i]);
}

void CompactCounterVector::Set(size_t i, uint64_t value) {
  SBF_DCHECK(i < m_);
  const uint32_t new_width = BitWidth(value);
  uint32_t width = widths_[i];
  if (new_width <= width) {
    // In-place write; the counter keeps its current (possibly wider) field.
    bits_.SetBits(PositionOf(i), width, value);
    return;
  }

  const size_t g = i / options_.group_size;
  const uint32_t grow = new_width - width;
  if (FreeBits(g) < grow && !BorrowSlack(g, grow - FreeBits(g))) {
    Rebuild();
    Set(i, value);  // widths were tightened; redo with fresh slack
    return;
  }
  // Push this group's tail (counters after i) into the group slack.
  const size_t pos = PositionOf(i);
  const size_t tail_end = group_start_[g] + used_[g];
  bits_.ShiftRangeRight(pos + width, tail_end, grow);
  pushed_bits_ += tail_end - (pos + width);
  widths_[i] = static_cast<uint8_t>(new_width);
  used_[g] += grow;
  bits_.SetBits(pos, new_width, value);
}

bool CompactCounterVector::BorrowSlack(size_t g, size_t need) {
  while (need > 0) {
    // Nearest following group with free slack.
    size_t h = g + 1;
    while (h < num_groups_ && FreeBits(h) == 0) ++h;
    if (h >= num_groups_) return false;
    const size_t take = std::min(FreeBits(h), need);
    // Shift groups g+1..h right by `take`; group g's region grows, group
    // h's slack shrinks, groups in between move wholesale.
    const size_t span_begin = group_start_[g + 1];
    const size_t span_end = group_start_[h] + used_[h];
    bits_.ShiftRangeRight(span_begin, span_end, take);
    pushed_bits_ += span_end - span_begin;
    for (size_t j = g + 1; j <= h; ++j) group_start_[j] += take;
    need -= take;
  }
  return true;
}

void CompactCounterVector::Rebuild() {
  std::vector<uint64_t> values(m_);
  for (size_t i = 0; i < m_; ++i) values[i] = Get(i);
  for (size_t i = 0; i < m_; ++i) {
    widths_[i] = static_cast<uint8_t>(BitWidth(values[i]));
  }
  LayoutFromValues(values);
  ++rebuilds_;
}

void CompactCounterVector::LayoutFromValues(
    const std::vector<uint64_t>& values) {
  const size_t slack = SlackBitsPerGroup(options_);
  group_start_.assign(num_groups_ + 1, 0);
  used_.assign(num_groups_, 0);
  for (size_t g = 0; g < num_groups_; ++g) {
    const size_t begin = g * options_.group_size;
    const size_t end = begin + NumItemsInGroup(g);
    size_t payload = 0;
    for (size_t i = begin; i < end; ++i) payload += widths_[i];
    used_[g] = static_cast<uint32_t>(payload);
    group_start_[g + 1] = group_start_[g] + payload + slack;
  }
  bits_ = BitVector(group_start_[num_groups_]);
  size_t pos = 0;
  for (size_t g = 0; g < num_groups_; ++g) {
    pos = group_start_[g];
    const size_t begin = g * options_.group_size;
    const size_t end = begin + NumItemsInGroup(g);
    for (size_t i = begin; i < end; ++i) {
      bits_.SetBits(pos, widths_[i], values[i]);
      pos += widths_[i];
    }
  }
}

void CompactCounterVector::Increment(size_t i, uint64_t delta) {
  SBF_DCHECK(i < m_);
  const uint32_t width = widths_[i];
  const size_t pos = PositionOf(i);
  const uint64_t v = bits_.GetBits(pos, width);
  if (delta > ~uint64_t{0} - v) {  // 64-bit ceiling: clamp, don't wrap
    ++stats_.saturation_clamps;
    Set(i, ~uint64_t{0});
    return;
  }
  const uint64_t value = v + delta;
  if (BitWidth(value) <= width) {
    bits_.SetBits(pos, width, value);
    return;
  }
  Set(i, value);  // widening path
}

void CompactCounterVector::Reset() {
  widths_.assign(m_, 1);
  LayoutFromValues(std::vector<uint64_t>(m_, 0));
}

size_t CompactCounterVector::UsedBits() const {
  size_t total = 0;
  for (uint8_t w : widths_) total += w;
  return total;
}

size_t CompactCounterVector::OverheadBits() const {
  return group_start_.size() * 64 + used_.size() * 32 + widths_.size() * 8;
}

size_t CompactCounterVector::MemoryUsageBits() const {
  return bits_.capacity_bits() + OverheadBits();
}

std::unique_ptr<CounterVector> CompactCounterVector::Clone() const {
  return std::make_unique<CompactCounterVector>(*this);
}

std::vector<uint8_t> CompactCounterVector::Serialize() const {
  wire::Writer payload;
  payload.PutVarint(m_);
  payload.PutVarint(options_.group_size);
  payload.PutU64(std::bit_cast<uint64_t>(options_.slack_per_counter));
  WriteCounterStream(*this, &payload);
  return wire::SealFrame(wire::kMagicCompactCounters, wire::kFormatVersion,
                         std::move(payload));
}

StatusOr<std::unique_ptr<CounterVector>> CompactCounterVector::Deserialize(
    wire::ByteSpan bytes) {
  auto reader =
      wire::OpenFrame(bytes, wire::kMagicCompactCounters, wire::kFormatVersion,
                      "compact counter vector");
  if (!reader.ok()) return reader.status();
  wire::Reader& in = reader.value();
  const uint64_t m = in.ReadVarint();
  const uint64_t group_size = in.ReadVarint();
  const double slack = std::bit_cast<double>(in.ReadU64());
  if (!in.ok()) return in.status();
  if (m < 1) {
    return Status::DataLoss("compact counter vector needs m >= 1");
  }
  if (group_size < 1 || group_size > 4096) {
    return Status::DataLoss("compact counter vector group size out of range");
  }
  if (!std::isfinite(slack) || slack < 0.0 || slack > 64.0) {
    return Status::DataLoss("compact counter vector slack out of range");
  }
  // Every counter costs at least one stream bit, so m is bounded by the
  // payload that is actually present — checked before the O(m) allocation.
  if (m > in.remaining() * 8) {
    return Status::DataLoss("compact counter vector truncated");
  }
  Options options;
  options.group_size = static_cast<size_t>(group_size);
  options.slack_per_counter = slack;
  auto cv =
      std::make_unique<CompactCounterVector>(static_cast<size_t>(m), options);
  Status status =
      ReadCounterStream(&in, m, cv.get(), "compact counter vector");
  if (!status.ok()) return status;
  status = in.ExpectEnd("compact counter vector");
  if (!status.ok()) return status;
  return std::unique_ptr<CounterVector>(std::move(cv));
}


Status CompactCounterVector::CheckInvariants() const {
  if (group_start_.size() != num_groups_ + 1 || used_.size() != num_groups_ ||
      widths_.size() != m_) {
    return Status::FailedPrecondition(
        "compact backing: bookkeeping vector sizes disagree with m");
  }
  if (group_start_[0] != 0 || group_start_[num_groups_] != bits_.size_bits()) {
    return Status::FailedPrecondition(
        "compact backing: group offsets do not span the base array");
  }
  for (size_t g = 0; g < num_groups_; ++g) {
    if (group_start_[g] > group_start_[g + 1]) {
      return Status::FailedPrecondition(
          "compact backing: group offsets not monotone");
    }
    uint64_t width_sum = 0;
    const size_t begin = g * options_.group_size;
    const size_t end = begin + NumItemsInGroup(g);
    for (size_t i = begin; i < end; ++i) {
      if (widths_[i] < 1 || widths_[i] > 64) {
        return Status::FailedPrecondition(
            "compact backing: counter width out of [1, 64]");
      }
      width_sum += widths_[i];
    }
    if (width_sum != used_[g]) {
      return Status::FailedPrecondition(
          "compact backing: group used-bit count disagrees with the sum of "
          "its counter widths");
    }
    if (used_[g] > RegionBits(g)) {
      return Status::FailedPrecondition(
          "compact backing: group payload overflows its region");
    }
  }
  return Status::Ok();
}

}  // namespace sbf
