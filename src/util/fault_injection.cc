#include "util/fault_injection.h"

#ifdef SBF_FAULT_INJECTION

#include <algorithm>
#include <atomic>
#include <mutex>

#include "util/random.h"

namespace sbf {
namespace fault {
namespace {

// One process-wide injector guarded by a mutex: fault injection runs in
// test builds where determinism matters more than hot-path cost, and the
// lock makes concurrent scenarios (ExpandTo under writers) well-defined.
struct Injector {
  std::mutex mu;

  bool alloc_armed = false;
  uint64_t alloc_countdown = 0;
  uint64_t alloc_every_n = 0;

  WireFault wire_kind = WireFault::kNone;
  uint64_t wire_rng = 0;

  bool flips_armed = false;
  uint64_t flip_rng = 0;
  uint64_t flip_every_n = 0;
  uint64_t flip_tick = 0;

  FileFault file_kind = FileFault::kNone;
  uint64_t file_countdown = 0;
  uint64_t file_rng = 0;

  std::atomic<uint64_t> injected_allocs{0};
  std::atomic<uint64_t> injected_wire{0};
  std::atomic<uint64_t> injected_flips{0};
  std::atomic<uint64_t> injected_file{0};
};

Injector& Global() {
  static Injector* injector = new Injector;
  return *injector;
}

// Countdown-fire-disarm for the armed file fault of `kind`. Caller holds
// g.mu.
bool FileFaultFires(Injector& g, FileFault kind) {
  if (g.file_kind != kind) return false;
  if (g.file_countdown > 1) {
    --g.file_countdown;
    return false;
  }
  g.file_kind = FileFault::kNone;
  g.file_countdown = 0;
  g.injected_file.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace

void ArmAllocationFailure(uint64_t countdown, uint64_t every_n) {
  Injector& g = Global();
  std::lock_guard<std::mutex> lock(g.mu);
  g.alloc_armed = true;
  g.alloc_countdown = countdown;
  g.alloc_every_n = every_n;
}

void ArmWireFault(WireFault kind, uint64_t seed) {
  Injector& g = Global();
  std::lock_guard<std::mutex> lock(g.mu);
  g.wire_kind = kind;
  g.wire_rng = seed ^ 0xFA017370ull;
}

void ArmCounterFlips(uint64_t seed, uint64_t every_n) {
  Injector& g = Global();
  std::lock_guard<std::mutex> lock(g.mu);
  g.flips_armed = every_n > 0;
  g.flip_rng = seed ^ 0xB17F11Bull;
  g.flip_every_n = every_n;
  g.flip_tick = 0;
}

void ArmFileFault(FileFault kind, uint64_t countdown, uint64_t seed) {
  Injector& g = Global();
  std::lock_guard<std::mutex> lock(g.mu);
  g.file_kind = kind;
  g.file_countdown = countdown == 0 ? 1 : countdown;
  g.file_rng = seed ^ 0xD0C70F5ull;
}

void Reset() {
  Injector& g = Global();
  std::lock_guard<std::mutex> lock(g.mu);
  g.alloc_armed = false;
  g.alloc_countdown = 0;
  g.alloc_every_n = 0;
  g.wire_kind = WireFault::kNone;
  g.flips_armed = false;
  g.flip_every_n = 0;
  g.flip_tick = 0;
  g.file_kind = FileFault::kNone;
  g.file_countdown = 0;
  g.injected_allocs.store(0, std::memory_order_relaxed);
  g.injected_wire.store(0, std::memory_order_relaxed);
  g.injected_flips.store(0, std::memory_order_relaxed);
  g.injected_file.store(0, std::memory_order_relaxed);
}

bool ShouldFailAllocation() {
  Injector& g = Global();
  std::lock_guard<std::mutex> lock(g.mu);
  if (!g.alloc_armed) return false;
  if (g.alloc_countdown > 1) {
    --g.alloc_countdown;
    return false;
  }
  // Countdown hit: fail this allocation, then re-arm or disarm.
  if (g.alloc_every_n > 0) {
    g.alloc_countdown = g.alloc_every_n;
  } else {
    g.alloc_armed = false;
  }
  g.injected_allocs.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool MutateSealedFrame(std::vector<uint8_t>* frame) {
  Injector& g = Global();
  std::lock_guard<std::mutex> lock(g.mu);
  if (g.wire_kind == WireFault::kNone || frame->empty()) return false;
  const uint64_t r = SplitMix64(g.wire_rng);
  switch (g.wire_kind) {
    case WireFault::kNone:
      return false;
    case WireFault::kTruncate:
      // Keep at least one byte gone; a zero-length frame is a separate
      // (already-tested) reader case.
      frame->resize(r % frame->size());
      break;
    case WireFault::kBitFlip:
      (*frame)[(r >> 8) % frame->size()] ^=
          static_cast<uint8_t>(1u << (r & 7));
      break;
    case WireFault::kTornTail: {
      // Short write: a tail slice of up to one sector never hit storage.
      // Unlike kTruncate the header always survives, so readers see a
      // well-formed envelope whose payload stops early — exactly the shape
      // a torn append leaves in a WAL.
      const size_t cuttable = frame->size() > 20 ? frame->size() - 20 : 0;
      if (cuttable == 0) return false;
      const size_t cut = 1 + r % std::min<size_t>(cuttable, 512);
      frame->resize(frame->size() - cut);
      break;
    }
  }
  g.injected_wire.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool NextCounterFlip(size_t size, size_t* index, uint32_t* bit) {
  Injector& g = Global();
  std::lock_guard<std::mutex> lock(g.mu);
  if (!g.flips_armed || size == 0) return false;
  if (++g.flip_tick % g.flip_every_n != 0) return false;
  const uint64_t r = SplitMix64(g.flip_rng);
  *index = static_cast<size_t>(r % size);
  *bit = static_cast<uint32_t>((r >> 32) % 64);
  g.injected_flips.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool ShouldShortWrite(size_t intended, size_t* actual) {
  Injector& g = Global();
  std::lock_guard<std::mutex> lock(g.mu);
  if (intended < 2) return false;  // a 0/1-byte write cannot tear
  if (!FileFaultFires(g, FileFault::kShortWrite)) return false;
  // Persist a strict non-empty prefix: at least 1 byte lands, at least 1
  // byte is lost.
  const uint64_t r = SplitMix64(g.file_rng);
  *actual = 1 + static_cast<size_t>(r % (intended - 1));
  return true;
}

bool ShouldFailBeforeRename() {
  Injector& g = Global();
  std::lock_guard<std::mutex> lock(g.mu);
  return FileFaultFires(g, FileFault::kFailBeforeRename);
}

bool ShouldFailAfterRename() {
  Injector& g = Global();
  std::lock_guard<std::mutex> lock(g.mu);
  return FileFaultFires(g, FileFault::kFailAfterRename);
}

bool ShouldFailFsync() {
  Injector& g = Global();
  std::lock_guard<std::mutex> lock(g.mu);
  return FileFaultFires(g, FileFault::kFsyncFail);
}

uint64_t InjectedAllocationFailures() {
  return Global().injected_allocs.load(std::memory_order_relaxed);
}

uint64_t InjectedWireFaults() {
  return Global().injected_wire.load(std::memory_order_relaxed);
}

uint64_t InjectedCounterFlips() {
  return Global().injected_flips.load(std::memory_order_relaxed);
}

uint64_t InjectedFileFaults() {
  return Global().injected_file.load(std::memory_order_relaxed);
}

}  // namespace fault
}  // namespace sbf

#endif  // SBF_FAULT_INJECTION
