#include "util/fault_injection.h"

#ifdef SBF_FAULT_INJECTION

#include <atomic>
#include <mutex>

#include "util/random.h"

namespace sbf {
namespace fault {
namespace {

// One process-wide injector guarded by a mutex: fault injection runs in
// test builds where determinism matters more than hot-path cost, and the
// lock makes concurrent scenarios (ExpandTo under writers) well-defined.
struct Injector {
  std::mutex mu;

  bool alloc_armed = false;
  uint64_t alloc_countdown = 0;
  uint64_t alloc_every_n = 0;

  WireFault wire_kind = WireFault::kNone;
  uint64_t wire_rng = 0;

  bool flips_armed = false;
  uint64_t flip_rng = 0;
  uint64_t flip_every_n = 0;
  uint64_t flip_tick = 0;

  std::atomic<uint64_t> injected_allocs{0};
  std::atomic<uint64_t> injected_wire{0};
  std::atomic<uint64_t> injected_flips{0};
};

Injector& Global() {
  static Injector* injector = new Injector;
  return *injector;
}

}  // namespace

void ArmAllocationFailure(uint64_t countdown, uint64_t every_n) {
  Injector& g = Global();
  std::lock_guard<std::mutex> lock(g.mu);
  g.alloc_armed = true;
  g.alloc_countdown = countdown;
  g.alloc_every_n = every_n;
}

void ArmWireFault(WireFault kind, uint64_t seed) {
  Injector& g = Global();
  std::lock_guard<std::mutex> lock(g.mu);
  g.wire_kind = kind;
  g.wire_rng = seed ^ 0xFA017370ull;
}

void ArmCounterFlips(uint64_t seed, uint64_t every_n) {
  Injector& g = Global();
  std::lock_guard<std::mutex> lock(g.mu);
  g.flips_armed = every_n > 0;
  g.flip_rng = seed ^ 0xB17F11Bull;
  g.flip_every_n = every_n;
  g.flip_tick = 0;
}

void Reset() {
  Injector& g = Global();
  std::lock_guard<std::mutex> lock(g.mu);
  g.alloc_armed = false;
  g.alloc_countdown = 0;
  g.alloc_every_n = 0;
  g.wire_kind = WireFault::kNone;
  g.flips_armed = false;
  g.flip_every_n = 0;
  g.flip_tick = 0;
  g.injected_allocs.store(0, std::memory_order_relaxed);
  g.injected_wire.store(0, std::memory_order_relaxed);
  g.injected_flips.store(0, std::memory_order_relaxed);
}

bool ShouldFailAllocation() {
  Injector& g = Global();
  std::lock_guard<std::mutex> lock(g.mu);
  if (!g.alloc_armed) return false;
  if (g.alloc_countdown > 1) {
    --g.alloc_countdown;
    return false;
  }
  // Countdown hit: fail this allocation, then re-arm or disarm.
  if (g.alloc_every_n > 0) {
    g.alloc_countdown = g.alloc_every_n;
  } else {
    g.alloc_armed = false;
  }
  g.injected_allocs.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool MutateSealedFrame(std::vector<uint8_t>* frame) {
  Injector& g = Global();
  std::lock_guard<std::mutex> lock(g.mu);
  if (g.wire_kind == WireFault::kNone || frame->empty()) return false;
  const uint64_t r = SplitMix64(g.wire_rng);
  switch (g.wire_kind) {
    case WireFault::kNone:
      return false;
    case WireFault::kTruncate:
      // Keep at least one byte gone; a zero-length frame is a separate
      // (already-tested) reader case.
      frame->resize(r % frame->size());
      break;
    case WireFault::kBitFlip:
      (*frame)[(r >> 8) % frame->size()] ^=
          static_cast<uint8_t>(1u << (r & 7));
      break;
  }
  g.injected_wire.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool NextCounterFlip(size_t size, size_t* index, uint32_t* bit) {
  Injector& g = Global();
  std::lock_guard<std::mutex> lock(g.mu);
  if (!g.flips_armed || size == 0) return false;
  if (++g.flip_tick % g.flip_every_n != 0) return false;
  const uint64_t r = SplitMix64(g.flip_rng);
  *index = static_cast<size_t>(r % size);
  *bit = static_cast<uint32_t>((r >> 32) % 64);
  g.injected_flips.fetch_add(1, std::memory_order_relaxed);
  return true;
}

uint64_t InjectedAllocationFailures() {
  return Global().injected_allocs.load(std::memory_order_relaxed);
}

uint64_t InjectedWireFaults() {
  return Global().injected_wire.load(std::memory_order_relaxed);
}

uint64_t InjectedCounterFlips() {
  return Global().injected_flips.load(std::memory_order_relaxed);
}

}  // namespace fault
}  // namespace sbf

#endif  // SBF_FAULT_INJECTION
