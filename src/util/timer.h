#ifndef SBF_UTIL_TIMER_H_
#define SBF_UTIL_TIMER_H_

#include <chrono>

namespace sbf {

// Monotonic wall-clock stopwatch used by the experiment harness
// (the paper's Figures 11/12 report wall-clock build/update/lookup times).
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sbf

#endif  // SBF_UTIL_TIMER_H_
