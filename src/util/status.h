#ifndef SBF_UTIL_STATUS_H_
#define SBF_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace sbf {

// Lightweight status object for recoverable failures (deserialization,
// incompatible-parameter algebra). Modeled on absl::Status but
// dependency-free.
//
// The class itself is [[nodiscard]]: every function returning a Status (or
// a StatusOr below) makes the caller handle or explicitly void-cast the
// result — a silently dropped deserialization or expansion failure is
// exactly the bug class this contract exists to keep out of the tree.
class [[nodiscard]] Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument = 1,
    kOutOfRange = 2,
    kFailedPrecondition = 3,
    kDataLoss = 4,
    kUnimplemented = 5,
    kResourceExhausted = 6,
  };

  Status() : code_(Code::kOk) {}
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(Code::kDataLoss, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(Code::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }

  [[nodiscard]] bool ok() const noexcept { return code_ == Code::kOk; }
  [[nodiscard]] Code code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept {
    return message_;
  }

  // Human-readable rendering, e.g. "INVALID_ARGUMENT: mismatched k".
  [[nodiscard]] std::string ToString() const;

 private:
  Code code_;
  std::string message_;
};

// Value-or-status result. `value()` aborts if not ok; callers check `ok()`.
// T need not be default-constructible.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    SBF_CHECK_MSG(!status_.ok(), "StatusOr(Status) requires a non-OK status");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  [[nodiscard]] bool ok() const noexcept { return status_.ok(); }
  [[nodiscard]] const Status& status() const noexcept { return status_; }

  [[nodiscard]] const T& value() const& {
    SBF_CHECK_MSG(ok(), status_.message().c_str());
    return *value_;
  }
  T& value() & {
    SBF_CHECK_MSG(ok(), status_.message().c_str());
    return *value_;
  }
  T&& value() && {
    SBF_CHECK_MSG(ok(), status_.message().c_str());
    return *std::move(value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace sbf

#endif  // SBF_UTIL_STATUS_H_
