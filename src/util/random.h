#ifndef SBF_UTIL_RANDOM_H_
#define SBF_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sbf {

// xoshiro256** PRNG (Blackman & Vigna). Deterministic, fast, and seedable so
// that every experiment in the benchmark suite is reproducible; all
// randomness in libsbf flows through this generator.
class Xoshiro256 {
 public:
  using result_type = uint64_t;

  explicit Xoshiro256(uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  uint64_t Next();
  uint64_t operator()() { return Next(); }

  // Uniform integer in [0, bound); bound must be > 0. Uses Lemire's
  // multiply-shift rejection method (unbiased).
  uint64_t UniformInt(uint64_t bound);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = UniformInt(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
};

// SplitMix64 step, used for seeding and as a general-purpose 64-bit mixer.
uint64_t SplitMix64(uint64_t& state);

}  // namespace sbf

#endif  // SBF_UTIL_RANDOM_H_
