#include "util/metrics.h"

#include <algorithm>
#include <cmath>

namespace sbf {

void ErrorStats::Record(uint64_t estimate, uint64_t truth) {
  ++num_queries_;
  if (estimate != truth) {
    ++num_errors_;
    if (estimate < truth) ++num_false_negatives_;
  }
  const double diff =
      static_cast<double>(estimate) - static_cast<double>(truth);
  sum_squared_error_ += diff * diff;
  sum_signed_error_ += diff;
}

double ErrorStats::AdditiveError() const {
  if (num_queries_ == 0) return 0.0;
  return std::sqrt(sum_squared_error_ / static_cast<double>(num_queries_));
}

double ErrorStats::ErrorRatio() const {
  if (num_queries_ == 0) return 0.0;
  return static_cast<double>(num_errors_) / static_cast<double>(num_queries_);
}

double ErrorStats::FalseNegativeShare() const {
  if (num_errors_ == 0) return 0.0;
  return static_cast<double>(num_false_negatives_) /
         static_cast<double>(num_errors_);
}

double ErrorStats::MeanSignedError() const {
  if (num_queries_ == 0) return 0.0;
  return sum_signed_error_ / static_cast<double>(num_queries_);
}

void ErrorStats::Merge(const ErrorStats& other) {
  num_queries_ += other.num_queries_;
  num_errors_ += other.num_errors_;
  num_false_negatives_ += other.num_false_negatives_;
  sum_squared_error_ += other.sum_squared_error_;
  sum_signed_error_ += other.sum_signed_error_;
}

void Aggregate::Add(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  sum_ += v;
  ++count_;
}

double Aggregate::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double MeanOverRuns(int runs, uint64_t base_seed, double (*fn)(uint64_t)) {
  double sum = 0.0;
  for (int r = 0; r < runs; ++r) {
    sum += fn(base_seed + static_cast<uint64_t>(r) * 0x9E3779B9ull);
  }
  return runs == 0 ? 0.0 : sum / runs;
}

ShardMetrics::ShardMetrics(size_t num_shards)
    : num_shards_(num_shards), cells_(new Cell[num_shards]) {}

void ShardMetrics::RecordInsert(size_t shard, uint64_t keys) {
  cells_[shard].inserted_keys.fetch_add(keys, std::memory_order_relaxed);
}

void ShardMetrics::RecordRemove(size_t shard, uint64_t keys) {
  cells_[shard].removed_keys.fetch_add(keys, std::memory_order_relaxed);
}

void ShardMetrics::RecordEstimate(size_t shard, uint64_t keys) {
  cells_[shard].estimated_keys.fetch_add(keys, std::memory_order_relaxed);
}

void ShardMetrics::RecordBatch(size_t shard) {
  cells_[shard].batches.fetch_add(1, std::memory_order_relaxed);
}

void ShardMetrics::RecordDeltaMerge(size_t shard, uint64_t keys) {
  Cell& cell = cells_[shard];
  cell.delta_merges.fetch_add(1, std::memory_order_relaxed);
  cell.delta_merged_keys.fetch_add(keys, std::memory_order_relaxed);
}

void ShardMetrics::RecordDeltaBufferedPeak(size_t shard, uint64_t buffered) {
  std::atomic<uint64_t>& peak = cells_[shard].delta_buffered_peak;
  uint64_t prev = peak.load(std::memory_order_relaxed);
  // CAS-max over an advisory gauge: both orders spelled out (relaxed) so
  // the memory-order discipline check applies to the failure path too.
  while (buffered > prev &&
         !peak.compare_exchange_weak(prev, buffered,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

ShardMetrics::Snapshot ShardMetrics::Shard(size_t shard) const {
  const Cell& cell = cells_[shard];
  Snapshot snap;
  snap.inserted_keys = cell.inserted_keys.load(std::memory_order_relaxed);
  snap.removed_keys = cell.removed_keys.load(std::memory_order_relaxed);
  snap.estimated_keys = cell.estimated_keys.load(std::memory_order_relaxed);
  snap.batches = cell.batches.load(std::memory_order_relaxed);
  snap.delta_merges = cell.delta_merges.load(std::memory_order_relaxed);
  snap.delta_merged_keys =
      cell.delta_merged_keys.load(std::memory_order_relaxed);
  snap.delta_buffered_peak =
      cell.delta_buffered_peak.load(std::memory_order_relaxed);
  return snap;
}

ShardMetrics::Snapshot ShardMetrics::Totals() const {
  Snapshot total;
  for (size_t s = 0; s < num_shards_; ++s) {
    const Snapshot snap = Shard(s);
    total.inserted_keys += snap.inserted_keys;
    total.removed_keys += snap.removed_keys;
    total.estimated_keys += snap.estimated_keys;
    total.batches += snap.batches;
    total.delta_merges += snap.delta_merges;
    total.delta_merged_keys += snap.delta_merged_keys;
    total.delta_buffered_peak =
        std::max(total.delta_buffered_peak, snap.delta_buffered_peak);
  }
  return total;
}

}  // namespace sbf
