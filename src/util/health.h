#ifndef SBF_UTIL_HEALTH_H_
#define SBF_UTIL_HEALTH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sbf {

// Traffic-light verdict over a filter's live error behaviour. The paper's
// guarantees (Section 2.1 FPR, Section 3 heuristic bounds) are stated for
// the design load; these states report how far a running filter has
// drifted from it.
enum class HealthState {
  kHealthy = 0,    // within design load, error bounds hold
  kDegraded = 1,   // overloaded: observed FPR exceeds the degraded
                   // threshold — a good moment to ExpandTo a larger m
  kSaturated = 2,  // counters are clamping: estimates may be capped and
                   // deletes may no longer rebalance; expansion or rebuild
                   // required to restore bounds
};

const char* HealthStateName(HealthState state);

// Verdict thresholds. Defaults follow the usual Bloom sizing lore: a
// filter designed for gamma = m/M around 1-2 has FPR well under 10%, so
// crossing 10% means the filter has outlived its sizing by a wide margin.
struct HealthThresholds {
  // Estimated live FPR above which the filter is kDegraded.
  double degraded_fpr = 0.10;
  // Share of saturated (clamped-at-max) counters above which the filter is
  // kSaturated regardless of FPR. Any clamping at all is already a bound
  // violation, so the default trips on the first saturated counter.
  double saturated_share = 0.0;
};

// Snapshot of a filter's live health, computed from observed counter
// occupancy — no stored item set required.
struct FilterHealth {
  HealthState state = HealthState::kHealthy;

  uint64_t counters = 0;          // m (total counters across the filter)
  uint64_t nonzero_counters = 0;  // counters with value > 0
  double fill_ratio = 0.0;        // nonzero / m

  // Estimated probability that a *new* (never-inserted) key collides on
  // all k probes, i.e. the live false-positive rate: fill_ratio^k.
  // This is the paper's Section 2.1 error formula E = (1 - e^{-kM/m})^k
  // evaluated on the observed occupancy instead of the modelled one, so it
  // stays honest under skew, deletions and merges.
  double estimated_fpr = 0.0;

  uint64_t saturated_counters = 0;   // counters clamped at the backing max
  double saturated_share = 0.0;      // saturated / m
  uint64_t saturation_clamps = 0;    // increment clamps since construction
  uint64_t underflow_clamps = 0;     // decrement clamps since construction

  // Per-shard fill ratios (ConcurrentSbf only; empty otherwise). Skew is
  // max/mean — 1.0 for perfectly balanced shards.
  std::vector<double> shard_fill;
  double shard_skew = 0.0;

  // Occurrences still buffered in ConcurrentSbf's thread-local delta maps
  // when the snapshot was taken (Health() drains the buffers first, so this
  // only counts ops re-buffered by writers racing the scan). The fill
  // tallies above do not include them; the pending-op tally keeps reader
  // estimates one-sided regardless.
  uint64_t pending_delta_ops = 0;

  // One-line human-readable rendering for tools and logs.
  std::string ToString() const;
};

// Fills the derived fields (ratios, FPR, shard skew) and the verdict from
// the raw tallies already present in `health`. `k` is the filter's number
// of hash probes.
void FinalizeHealth(uint32_t k, const HealthThresholds& thresholds,
                    FilterHealth* health);

}  // namespace sbf

#endif  // SBF_UTIL_HEALTH_H_
