#include "util/status.h"

namespace sbf {
namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case Status::Code::kOutOfRange:
      return "OUT_OF_RANGE";
    case Status::Code::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case Status::Code::kDataLoss:
      return "DATA_LOSS";
    case Status::Code::kUnimplemented:
      return "UNIMPLEMENTED";
    case Status::Code::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace sbf
