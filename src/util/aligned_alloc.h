#ifndef SBF_UTIL_ALIGNED_ALLOC_H_
#define SBF_UTIL_ALIGNED_ALLOC_H_

#include <cstddef>
#include <new>

namespace sbf {

// Minimal std::allocator replacement with a fixed over-alignment. BitVector
// stores its words through this at 64-byte (cache-line) alignment so that a
// blocked filter's 512-bit block is always a single line and the SIMD block
// kernels may use aligned loads on block bases.
template <typename T, size_t Alignment>
class AlignedAllocator {
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two covering alignof(T)");

 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  explicit AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }

  void deallocate(T* p, size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

// Cache-line granularity used across the blocked hot paths.
inline constexpr size_t kCacheLineBytes = 64;

}  // namespace sbf

#endif  // SBF_UTIL_ALIGNED_ALLOC_H_
