#include "util/table_printer.h"

#include <cinttypes>
#include <cstdio>

#include "util/check.h"

namespace sbf {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SBF_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  SBF_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < cells.size(); ++c) {
      line += (c == 0) ? "| " : " | ";
      line += cells[c];
      line.append(widths[c] - cells[c].size(), ' ');
    }
    line += " |\n";
    return line;
  };

  std::string out = render_row(headers_);
  std::string sep;
  for (size_t c = 0; c < widths.size(); ++c) {
    sep += (c == 0) ? "|-" : "-|-";
    sep.append(widths[c], '-');
  }
  sep += "-|\n";
  out += sep;
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const {
  std::string s = ToString();
  std::fwrite(s.data(), 1, s.size(), stdout);
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::FmtSci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

std::string TablePrinter::FmtInt(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

}  // namespace sbf
