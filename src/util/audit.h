#ifndef SBF_UTIL_AUDIT_H_
#define SBF_UTIL_AUDIT_H_

#include "util/check.h"
#include "util/status.h"

// Boundary hook of the -DSBF_AUDIT build mode (see DESIGN.md §7).
//
// Every structure exposes a `Status CheckInvariants() const` validator that
// is *always* compiled — `sbf_tool audit <frame>` runs it on deserialized
// frames in any build, and tests call it directly. What the build mode
// changes is *when* the validators run implicitly: in audit builds,
// SBF_AUDIT_INVARIANTS(x) executes x.CheckInvariants() and aborts with the
// violated invariant's message; in normal builds it expands to nothing and
// does not evaluate its argument, so hot paths carry zero cost.
//
// Placement policy: the hook guards the *expensive* API boundaries where a
// structure's whole layout changes hands — construction, Deserialize,
// Serialize, ExpandTo, Merge — never per-operation hot loops. The
// validators are O(m)-ish sweeps; running them per Insert would turn an
// O(k) operation into an O(m) one and make audit builds useless for the
// differential suites that hammer millions of operations.

#ifdef SBF_AUDIT
#define SBF_AUDIT_INVARIANTS(obj)                                     \
  do {                                                                \
    const ::sbf::Status sbf_audit_status = (obj).CheckInvariants();   \
    SBF_CHECK_MSG(sbf_audit_status.ok(),                              \
                  sbf_audit_status.message().c_str());                \
  } while (0)
#else
#define SBF_AUDIT_INVARIANTS(obj) \
  do {                            \
  } while (0)
#endif

#endif  // SBF_UTIL_AUDIT_H_
