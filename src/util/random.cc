#include "util/random.h"

#include <bit>

#include "util/check.h"

namespace sbf {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(uint64_t seed) {
  // Expand the 64-bit seed into 256 bits of state via SplitMix64, as the
  // xoshiro authors recommend; guards against the all-zero state.
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Xoshiro256::Next() {
  const uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

uint64_t Xoshiro256::UniformInt(uint64_t bound) {
  SBF_DCHECK(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Xoshiro256::UniformDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

}  // namespace sbf
