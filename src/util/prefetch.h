#ifndef SBF_UTIL_PREFETCH_H_
#define SBF_UTIL_PREFETCH_H_

// Portable software-prefetch hints for the batched probe pipelines. A
// prefetch is purely a performance hint: issuing one for an arbitrary
// address is safe, so callers may prefetch speculative or slightly
// out-of-range addresses without affecting correctness.
#if defined(__GNUC__) || defined(__clang__)
#define SBF_PREFETCH(addr) __builtin_prefetch((const void*)(addr), 0, 3)
#define SBF_PREFETCH_WRITE(addr) __builtin_prefetch((const void*)(addr), 1, 3)
#else
#define SBF_PREFETCH(addr) ((void)(addr))
#define SBF_PREFETCH_WRITE(addr) ((void)(addr))
#endif

#endif  // SBF_UTIL_PREFETCH_H_
