// Clang thread-safety-analysis annotations and capability-annotated mutex
// wrappers.
//
// The macros expand to clang `capability` attributes when compiling with
// clang and to nothing elsewhere, so gcc builds are unaffected. The real
// enforcement happens under `-DSBF_THREAD_SAFETY=ON` (clang only), which
// adds `-Wthread-safety -Werror=thread-safety` — see DESIGN.md §11 for the
// protocol being checked and scripts/check_thread_safety.py for the gate.
//
// std::mutex / std::shared_mutex carry no capability attributes in
// libstdc++, so lock-protected state must use the `Mutex` / `SharedMutex`
// wrappers below together with the scoped guards (`MutexLock`,
// `ReaderMutexLock`, `WriterMutexLock`, `SharedMutexLockPair`). The
// wrappers are zero-overhead: one underlying std mutex, all methods
// inline.
#ifndef SBF_UTIL_THREAD_ANNOTATIONS_H_
#define SBF_UTIL_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__)
#define SBF_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SBF_THREAD_ANNOTATION(x)
#endif

// Type is a lockable capability ("mutex" shows up in diagnostics).
#define SBF_CAPABILITY(x) SBF_THREAD_ANNOTATION(capability(x))
// Type is a scoped (RAII) capability wrapper.
#define SBF_SCOPED_CAPABILITY SBF_THREAD_ANNOTATION(scoped_lockable)

// Member is protected by the given capability.
#define SBF_GUARDED_BY(x) SBF_THREAD_ANNOTATION(guarded_by(x))
// Pointee is protected by the given capability.
#define SBF_PT_GUARDED_BY(x) SBF_THREAD_ANNOTATION(pt_guarded_by(x))

// Function requires the capability held exclusively / shared on entry.
#define SBF_REQUIRES(...) \
  SBF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SBF_REQUIRES_SHARED(...) \
  SBF_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// Function acquires / releases the capability.
#define SBF_ACQUIRE(...) SBF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SBF_ACQUIRE_SHARED(...) \
  SBF_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define SBF_RELEASE(...) SBF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SBF_RELEASE_SHARED(...) \
  SBF_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define SBF_TRY_ACQUIRE(...) \
  SBF_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Function must NOT be called with the capability held (deadlock guard).
#define SBF_EXCLUDES(...) SBF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Runtime assertion that the capability is held (trusted by the analysis).
#define SBF_ASSERT_CAPABILITY(x) SBF_THREAD_ANNOTATION(assert_capability(x))

// Escape hatch for functions whose locking is correct by a protocol the
// analysis cannot express (e.g. quiescence contracts). Every use must
// carry a comment citing DESIGN.md §11.
#define SBF_NO_THREAD_SAFETY_ANALYSIS \
  SBF_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace sbf {
namespace util {

// Capability-annotated std::mutex. Lockable with MutexLock below.
class SBF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SBF_ACQUIRE() { mu_.lock(); }
  void unlock() SBF_RELEASE() { mu_.unlock(); }
  bool try_lock() SBF_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

// Capability-annotated std::shared_mutex.
class SBF_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() SBF_ACQUIRE() { mu_.lock(); }
  void unlock() SBF_RELEASE() { mu_.unlock(); }
  bool try_lock() SBF_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void lock_shared() SBF_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() SBF_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  friend class ReaderMutexLock;
  friend class WriterMutexLock;
  friend class SharedMutexLockPair;
  std::shared_mutex mu_;
};

// RAII exclusive lock over Mutex. Exposes the underlying
// std::unique_lock for condition_variable waits; the capability is
// considered held across a wait, which matches reality once the wait
// returns (waits re-acquire before returning).
class SBF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SBF_ACQUIRE(mu) : lock_(mu.mu_) {}
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() SBF_RELEASE() = default;

  std::unique_lock<std::mutex>& native() noexcept { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

// RAII shared (reader) lock over SharedMutex.
class SBF_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) SBF_ACQUIRE_SHARED(mu)
      : lock_(mu.mu_) {}
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;
  ~ReaderMutexLock() SBF_RELEASE() = default;

 private:
  std::shared_lock<std::shared_mutex> lock_;
};

// RAII exclusive (writer) lock over SharedMutex.
class SBF_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) SBF_ACQUIRE(mu) : lock_(mu.mu_) {}
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;
  ~WriterMutexLock() SBF_RELEASE() = default;

 private:
  std::unique_lock<std::shared_mutex> lock_;
};

// RAII exclusive lock over TWO SharedMutexes with std::scoped_lock's
// deadlock-avoidance ordering (used by ConcurrentSbf::Merge, where the
// two filters' shard locks have no fixed hierarchy).
class SBF_SCOPED_CAPABILITY SharedMutexLockPair {
 public:
  SharedMutexLockPair(SharedMutex& a, SharedMutex& b) SBF_ACQUIRE(a, b)
      : lock_(a.mu_, b.mu_) {}
  SharedMutexLockPair(const SharedMutexLockPair&) = delete;
  SharedMutexLockPair& operator=(const SharedMutexLockPair&) = delete;
  ~SharedMutexLockPair() SBF_RELEASE() = default;

 private:
  std::scoped_lock<std::shared_mutex, std::shared_mutex> lock_;
};

}  // namespace util
}  // namespace sbf

#endif  // SBF_UTIL_THREAD_ANNOTATIONS_H_
