#ifndef SBF_UTIL_CHECK_H_
#define SBF_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Precondition / invariant checking macros.
//
// libsbf does not use exceptions (data-structure operations cannot fail
// recoverably); violated preconditions are programming errors and abort
// with a source location. SBF_DCHECK compiles away in release builds and
// is used on hot paths.

#define SBF_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "SBF_CHECK failed: %s at %s:%d\n", #cond,        \
                   __FILE__, __LINE__);                                     \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define SBF_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "SBF_CHECK failed: %s (%s) at %s:%d\n", #cond,   \
                   msg, __FILE__, __LINE__);                                \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#ifdef NDEBUG
#define SBF_DCHECK(cond) \
  do {                   \
  } while (0)
#define SBF_DCHECK_MSG(cond, msg) \
  do {                            \
  } while (0)
#else
#define SBF_DCHECK(cond) SBF_CHECK(cond)
#define SBF_DCHECK_MSG(cond, msg) SBF_CHECK_MSG(cond, msg)
#endif

#endif  // SBF_UTIL_CHECK_H_
