#include "util/health.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace sbf {

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "HEALTHY";
    case HealthState::kDegraded:
      return "DEGRADED";
    case HealthState::kSaturated:
      return "SATURATED";
  }
  return "UNKNOWN";
}

void FinalizeHealth(uint32_t k, const HealthThresholds& thresholds,
                    FilterHealth* health) {
  const double m = health->counters > 0
                       ? static_cast<double>(health->counters)
                       : 1.0;
  health->fill_ratio = static_cast<double>(health->nonzero_counters) / m;
  health->saturated_share =
      static_cast<double>(health->saturated_counters) / m;
  // A never-inserted key is falsely reported present iff all k of its
  // probes land on nonzero counters; with observed occupancy p that is
  // p^k (the Section 2.1 formula with p measured instead of modelled).
  health->estimated_fpr =
      std::pow(std::min(health->fill_ratio, 1.0), static_cast<double>(k));

  if (!health->shard_fill.empty()) {
    double sum = 0.0, max_fill = 0.0;
    for (double f : health->shard_fill) {
      sum += f;
      max_fill = std::max(max_fill, f);
    }
    const double mean = sum / static_cast<double>(health->shard_fill.size());
    health->shard_skew = mean > 0.0 ? max_fill / mean : 0.0;
  }

  if (health->saturated_share > thresholds.saturated_share ||
      (thresholds.saturated_share == 0.0 && health->saturated_counters > 0)) {
    health->state = HealthState::kSaturated;
  } else if (health->estimated_fpr > thresholds.degraded_fpr) {
    health->state = HealthState::kDegraded;
  } else {
    health->state = HealthState::kHealthy;
  }
}

std::string FilterHealth::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s fill=%.4f est_fpr=%.6f saturated=%llu (%.4f) "
                "clamps=+%llu/-%llu",
                HealthStateName(state), fill_ratio, estimated_fpr,
                static_cast<unsigned long long>(saturated_counters),
                saturated_share,
                static_cast<unsigned long long>(saturation_clamps),
                static_cast<unsigned long long>(underflow_clamps));
  std::string out = buf;
  if (!shard_fill.empty()) {
    std::snprintf(buf, sizeof(buf), " shards=%zu skew=%.3f",
                  shard_fill.size(), shard_skew);
    out += buf;
  }
  if (pending_delta_ops > 0) {
    std::snprintf(buf, sizeof(buf), " pending_delta_ops=%llu",
                  static_cast<unsigned long long>(pending_delta_ops));
    out += buf;
  }
  return out;
}

}  // namespace sbf
