#ifndef SBF_UTIL_FAULT_INJECTION_H_
#define SBF_UTIL_FAULT_INJECTION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

// Deterministic fault-injection hooks, compiled in only under
// -DSBF_FAULT_INJECTION (the SBF_FAULT_INJECTION CMake option). Production
// builds compile every hook to a constant-false no-op, so the hot paths
// carry zero cost.
//
// The injector is a process-wide, seeded state machine: tests Arm* a fault
// schedule, run the scenario, and assert that every induced failure
// surfaced as a clean Status with the filter still queryable. The same
// seed always yields the same fault sequence, so failures replay exactly.
//
// Four fault classes:
//  * allocation   — fault::ShouldFailAllocation() fires at guarded
//                   allocation sites (expansion, deserialization); callers
//                   return Status::ResourceExhausted instead of allocating.
//  * wire         — fault::MutateSealedFrame() truncates, bit-flips or
//                   tears a frame as wire::SealFrame hands it out,
//                   modelling torn writes and storage corruption
//                   mid-Serialize.
//  * counter      — fault::NextCounterFlip() picks a (counter, bit) to
//                   flip; frontends apply it with Get/Set, modelling soft
//                   memory errors in the counter array.
//  * file I/O     — fault::ShouldShortWrite() / ShouldFailBeforeRename() /
//                   ShouldFailAfterRename() / ShouldFailFsync() fire at
//                   the durable store's crash points (io/durable_store),
//                   so every recovery path — torn WAL tail, orphaned
//                   checkpoint temp file, checkpoint without a rotated
//                   log, failed fsync — is deterministically reachable.
//
// The layer is numeric-only (indices, bytes) so util stays at the bottom
// of the dependency stack; sai/core/io decide what a fault means locally.

namespace sbf {
namespace fault {

enum class WireFault {
  kNone = 0,
  kTruncate = 1,  // drop trailing bytes from the sealed frame
  kBitFlip = 2,   // flip one bit somewhere in the sealed frame
  kTornTail = 3,  // short write: shave 1..512 bytes off the frame's tail,
                  // always leaving the header intact (a partially-synced
                  // sector, as opposed to kTruncate's arbitrary cut)
};

// File-I/O crash points, armed one at a time with a countdown: the
// `countdown`-th matching operation faults once, then the injector
// disarms. "Fail" means the caller must behave as if the process died at
// that point — abort the protocol step and surface a Status.
enum class FileFault {
  kNone = 0,
  kShortWrite = 1,        // a write persists only a prefix of its bytes
  kFailBeforeRename = 2,  // crash after the temp file, before rename
  kFailAfterRename = 3,   // crash after rename, before the log rotates
  kFsyncFail = 4,         // fsync reports failure (device error)
};

#ifdef SBF_FAULT_INJECTION

// Arms allocation-site failures: the next `countdown`-th guarded
// allocation fails, and every `every_n`-th after it (0 = only once).
void ArmAllocationFailure(uint64_t countdown, uint64_t every_n = 0);

// Arms wire-frame mutations with a deterministic byte/bit schedule.
void ArmWireFault(WireFault kind, uint64_t seed);

// Arms counter bit-flips: every `every_n`-th eligible update picks a
// deterministic (counter, bit) pair from `seed`.
void ArmCounterFlips(uint64_t seed, uint64_t every_n);

// Arms one file-I/O crash point: the `countdown`-th operation matching
// `kind` faults once, then the injector disarms (a crash happens at one
// point; re-arm for the next scenario). `seed` drives the short-write cut.
void ArmFileFault(FileFault kind, uint64_t countdown, uint64_t seed = 0);

// Disarms everything and zeroes the injected-fault tallies.
void Reset();

// True when the armed allocation schedule says this allocation fails.
bool ShouldFailAllocation();

// Applies the armed wire fault to `frame` in place. Returns true when the
// frame was mutated.
bool MutateSealedFrame(std::vector<uint8_t>* frame);

// Deterministically picks a counter index in [0, size) and a bit in
// [0, 64) to flip. Returns true when an armed flip fired.
bool NextCounterFlip(size_t size, size_t* index, uint32_t* bit);

// True when an armed kShortWrite fires for a write of `intended` bytes:
// the caller must persist only `*actual` bytes (a strict, non-empty
// prefix) and then fail the operation as if the process died mid-write.
bool ShouldShortWrite(size_t intended, size_t* actual);

// True when the armed crash point of the matching kind fires; the caller
// aborts the protocol step at exactly that point.
bool ShouldFailBeforeRename();
bool ShouldFailAfterRename();
bool ShouldFailFsync();

// Tallies of faults actually injected since the last Reset().
uint64_t InjectedAllocationFailures();
uint64_t InjectedWireFaults();
uint64_t InjectedCounterFlips();
uint64_t InjectedFileFaults();

#else  // !SBF_FAULT_INJECTION

inline void ArmAllocationFailure(uint64_t, uint64_t = 0) {}
inline void ArmWireFault(WireFault, uint64_t) {}
inline void ArmCounterFlips(uint64_t, uint64_t) {}
inline void ArmFileFault(FileFault, uint64_t, uint64_t = 0) {}
inline void Reset() {}
inline bool ShouldFailAllocation() { return false; }
inline bool MutateSealedFrame(std::vector<uint8_t>*) { return false; }
inline bool NextCounterFlip(size_t, size_t*, uint32_t*) { return false; }
inline bool ShouldShortWrite(size_t, size_t*) { return false; }
inline bool ShouldFailBeforeRename() { return false; }
inline bool ShouldFailAfterRename() { return false; }
inline bool ShouldFailFsync() { return false; }
inline uint64_t InjectedAllocationFailures() { return 0; }
inline uint64_t InjectedWireFaults() { return 0; }
inline uint64_t InjectedCounterFlips() { return 0; }
inline uint64_t InjectedFileFaults() { return 0; }

#endif  // SBF_FAULT_INJECTION

}  // namespace fault
}  // namespace sbf

#endif  // SBF_UTIL_FAULT_INJECTION_H_
