#ifndef SBF_UTIL_BITS_H_
#define SBF_UTIL_BITS_H_

#include <bit>
#include <cstdint>

namespace sbf {

// Number of bits needed to store `v` in plain binary; BitWidth(0) == 1 so
// that every counter occupies at least one bit (the paper stores counter
// C_i in ceil(log C_i) bits and represents zero/one counters in one bit).
inline uint32_t BitWidth(uint64_t v) {
  return v == 0 ? 1u : static_cast<uint32_t>(std::bit_width(v));
}

// ceil(log2(v)) for v >= 1; CeilLog2(1) == 0.
inline uint32_t CeilLog2(uint64_t v) {
  if (v <= 1) return 0;
  return static_cast<uint32_t>(std::bit_width(v - 1));
}

// floor(log2(v)) for v >= 1.
inline uint32_t FloorLog2(uint64_t v) {
  return static_cast<uint32_t>(std::bit_width(v)) - 1;
}

// Low `n` bits set; n may be 0..64.
inline uint64_t LowMask(uint32_t n) {
  return n >= 64 ? ~0ull : ((1ull << n) - 1);
}

// Ceiling division for unsigned operands.
inline uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

}  // namespace sbf

#endif  // SBF_UTIL_BITS_H_
