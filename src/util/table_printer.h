#ifndef SBF_UTIL_TABLE_PRINTER_H_
#define SBF_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace sbf {

// Fixed-width ASCII table printer used by the benchmark harness so that
// every experiment prints rows in the same layout as the paper's tables.
//
//   TablePrinter t({"gamma", "E_b", "E_RM", "gain"});
//   t.AddRow({"0.7", "0.032", "0.0017", "18.48"});
//   t.Print();
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  // Renders header + separator + rows to stdout.
  void Print() const;
  std::string ToString() const;

  // Convenience formatting helpers.
  static std::string Fmt(double v, int precision = 4);
  static std::string FmtSci(double v, int precision = 3);
  static std::string FmtInt(uint64_t v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sbf

#endif  // SBF_UTIL_TABLE_PRINTER_H_
