#ifndef SBF_UTIL_METRICS_H_
#define SBF_UTIL_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace sbf {

// Accumulates the two error metrics of the paper's Section 6.1 plus the
// false-negative breakdown used in Figure 8:
//
//   E_add   = sqrt( sum_i (fhat_i - f_i)^2 / n )   "mean squared additive error"
//   E_ratio = (# queries with fhat_i != f_i) / n   "error ratio"
//
// A false negative is an estimate strictly below the true frequency
// (possible only for Minimal Increase under deletions).
class ErrorStats {
 public:
  // Records a single query outcome: estimated vs true frequency.
  void Record(uint64_t estimate, uint64_t truth);

  size_t num_queries() const { return num_queries_; }
  size_t num_errors() const { return num_errors_; }
  size_t num_false_negatives() const { return num_false_negatives_; }

  // Root mean squared additive error over all recorded queries.
  double AdditiveError() const;
  // Fraction of queries that returned a wrong estimate.
  double ErrorRatio() const;
  // Fraction of *errors* that are false negatives (0 if no errors).
  double FalseNegativeShare() const;
  // Mean signed error (estimate - truth), useful for bias analysis.
  double MeanSignedError() const;

  // Merges another accumulator into this one (for averaging across runs).
  void Merge(const ErrorStats& other);

 private:
  size_t num_queries_ = 0;
  size_t num_errors_ = 0;
  size_t num_false_negatives_ = 0;
  double sum_squared_error_ = 0.0;
  double sum_signed_error_ = 0.0;
};

// Simple running mean/min/max helper for benchmark aggregation.
class Aggregate {
 public:
  void Add(double v);
  double mean() const;
  double min() const { return min_; }
  double max() const { return max_; }
  size_t count() const { return count_; }

 private:
  size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Averages a metric over `runs` invocations of `fn(seed)`; used by the
// benchmark harness to reproduce the paper's "average over 5 independent
// experiments" protocol.
double MeanOverRuns(int runs, uint64_t base_seed, double (*fn)(uint64_t));

// Per-shard operation counters for the concurrent sharded frontend
// (core/concurrent_sbf.h). Each shard's counters live on their own cache
// line so concurrent recording from many threads does not false-share;
// updates are relaxed atomics, so recording is wait-free and race-clean
// but totals read while threads are running are approximate. The class
// holds no lock-guarded state — every member is an independent atomic
// gauge with explicit relaxed ordering (the discipline sbf_analyze.py's
// memory-order check enforces; DESIGN.md §11), so it carries no capability
// annotations.
class ShardMetrics {
 public:
  ShardMetrics() = default;
  explicit ShardMetrics(size_t num_shards);
  ShardMetrics(ShardMetrics&&) = default;
  ShardMetrics& operator=(ShardMetrics&&) = default;

  size_t num_shards() const { return num_shards_; }

  // `keys` is the number of keys the operation touched (1 for point ops,
  // the per-shard group size for batch ops).
  void RecordInsert(size_t shard, uint64_t keys);
  void RecordRemove(size_t shard, uint64_t keys);
  void RecordEstimate(size_t shard, uint64_t keys);
  // One batch-API visit to this shard (lock acquisitions amortized over it).
  void RecordBatch(size_t shard);
  // One delta-buffer epoch merge into this shard applying `keys` distinct
  // buffered keys (core/delta_buffer.h).
  void RecordDeltaMerge(size_t shard, uint64_t keys);
  // High-water mark of distinct keys buffered for this shard in one epoch
  // (recorded as a CAS-max just before the merge drains the map).
  void RecordDeltaBufferedPeak(size_t shard, uint64_t buffered);

  struct Snapshot {
    uint64_t inserted_keys = 0;
    uint64_t removed_keys = 0;
    uint64_t estimated_keys = 0;
    uint64_t batches = 0;
    uint64_t delta_merges = 0;
    uint64_t delta_merged_keys = 0;
    // Max across epochs (and across shards, for Totals()).
    uint64_t delta_buffered_peak = 0;
  };
  Snapshot Shard(size_t shard) const;
  // Sum over all shards.
  Snapshot Totals() const;

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> inserted_keys{0};
    std::atomic<uint64_t> removed_keys{0};
    std::atomic<uint64_t> estimated_keys{0};
    std::atomic<uint64_t> batches{0};
    std::atomic<uint64_t> delta_merges{0};
    std::atomic<uint64_t> delta_merged_keys{0};
    std::atomic<uint64_t> delta_buffered_peak{0};
  };
  static_assert(sizeof(Cell) == 64,
                "one metrics cell per cache line (pad if fields are added)");

  size_t num_shards_ = 0;
  std::unique_ptr<Cell[]> cells_;
};

}  // namespace sbf

#endif  // SBF_UTIL_METRICS_H_
