#include "util/timer.h"

// Header-only; this translation unit exists so the target has a symbol and
// the header stays in the build graph for IWYU checks.
