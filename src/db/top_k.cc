#include "db/top_k.h"

#include <algorithm>

#include "util/check.h"

namespace sbf {

TopKTracker::TopKTracker(size_t capacity, SbfOptions options)
    : capacity_(capacity), filter_(std::move(options)) {
  SBF_CHECK_MSG(capacity_ >= 1, "top-k tracker needs capacity >= 1");
  candidates_.reserve(capacity_ + 1);
}

void TopKTracker::Observe(uint64_t key, uint64_t count) {
  filter_.Insert(key, count);
  const uint64_t estimate = filter_.Estimate(key);

  const auto it = candidates_.find(key);
  if (it != candidates_.end()) {
    it->second = estimate;
    return;
  }
  if (candidates_.size() < capacity_) {
    candidates_.emplace(key, estimate);
    return;
  }
  // Replace the weakest candidate if this key now outgrows it.
  auto weakest = candidates_.begin();
  for (auto c = candidates_.begin(); c != candidates_.end(); ++c) {
    if (c->second < weakest->second) weakest = c;
  }
  if (estimate > weakest->second) {
    candidates_.erase(weakest);
    candidates_.emplace(key, estimate);
  }
}

std::vector<TopKTracker::Entry> TopKTracker::Top() const {
  std::vector<Entry> entries;
  entries.reserve(candidates_.size());
  for (const auto& [key, estimate] : candidates_) {
    entries.push_back(Entry{key, estimate});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return a.estimate != b.estimate ? a.estimate > b.estimate
                                              : a.key < b.key;
            });
  return entries;
}

size_t TopKTracker::MemoryUsageBits() const {
  // SBF plus two 64-bit words per candidate.
  return filter_.MemoryUsageBits() + candidates_.size() * 128;
}

}  // namespace sbf
