#include "db/range_tree.h"

#include <bit>

#include "util/bits.h"
#include "util/check.h"

namespace sbf {

RangeTreeSbf::RangeTreeSbf(uint64_t domain_size, SbfOptions options)
    : domain_size_(std::bit_ceil(std::max<uint64_t>(domain_size, 2))),
      levels_(FloorLog2(domain_size_)),
      filter_(options) {
  SBF_CHECK_MSG(domain_size_ <= (1ull << 32),
                "range tree supports domains up to 2^32 values");
}

void RangeTreeSbf::Insert(uint64_t value, uint64_t count) {
  SBF_CHECK_MSG(value < domain_size_, "value outside the tree domain");
  // One insert per tree level: the leaf plus every enclosing dyadic range
  // up to the root.
  for (uint32_t level = 0; level <= levels_; ++level) {
    filter_.Insert(NodeKey(level, value >> level), count);
  }
}

void RangeTreeSbf::Remove(uint64_t value, uint64_t count) {
  SBF_CHECK_MSG(value < domain_size_, "value outside the tree domain");
  for (uint32_t level = 0; level <= levels_; ++level) {
    filter_.Remove(NodeKey(level, value >> level), count);
  }
}

uint64_t RangeTreeSbf::EstimatePoint(uint64_t value) const {
  SBF_CHECK_MSG(value < domain_size_, "value outside the tree domain");
  return filter_.Estimate(NodeKey(0, value));
}

RangeTreeSbf::RangeEstimate RangeTreeSbf::EstimateRange(uint64_t lo,
                                                        uint64_t hi) const {
  SBF_CHECK_MSG(lo <= hi && hi <= domain_size_, "bad range");
  RangeEstimate estimate;
  // Canonical dyadic decomposition: at most two nodes per level.
  uint32_t level = 0;
  while (lo < hi) {
    if (lo & 1) {
      estimate.count += filter_.Estimate(NodeKey(level, lo));
      ++estimate.probes;
      ++lo;
    }
    if (hi & 1) {
      --hi;
      estimate.count += filter_.Estimate(NodeKey(level, hi));
      ++estimate.probes;
    }
    lo >>= 1;
    hi >>= 1;
    ++level;
  }
  return estimate;
}

}  // namespace sbf
