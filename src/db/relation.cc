#include "db/relation.h"

namespace sbf {

std::unordered_map<uint64_t, uint64_t> Relation::FrequencyMap() const {
  std::unordered_map<uint64_t, uint64_t> freqs;
  freqs.reserve(tuples_.size());
  for (const Tuple& t : tuples_) ++freqs[t.attribute];
  return freqs;
}

std::vector<uint64_t> Relation::DistinctValues() const {
  std::unordered_map<uint64_t, bool> seen;
  seen.reserve(tuples_.size());
  std::vector<uint64_t> values;
  for (const Tuple& t : tuples_) {
    auto [it, inserted] = seen.emplace(t.attribute, true);
    if (inserted) values.push_back(t.attribute);
  }
  return values;
}

uint64_t Relation::ExactJoinSize(const Relation& other) const {
  const auto mine = FrequencyMap();
  const auto theirs = other.FrequencyMap();
  uint64_t total = 0;
  for (const auto& [value, count] : mine) {
    const auto it = theirs.find(value);
    if (it != theirs.end()) total += count * it->second;
  }
  return total;
}

}  // namespace sbf
