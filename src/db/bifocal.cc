#include "db/bifocal.h"

#include <unordered_map>

#include "util/check.h"
#include "util/random.h"

namespace sbf {

BifocalResult BifocalEstimateJoinSize(const Relation& r, const Relation& s,
                                      size_t sample_size, uint64_t seed,
                                      const MultiplicityFn& mult_s) {
  SBF_CHECK_MSG(sample_size >= 1, "bifocal needs a sample size >= 1");
  SBF_CHECK_MSG(r.size() >= 1, "bifocal needs a non-empty R");

  BifocalResult result;
  result.exact = r.ExactJoinSize(s);
  result.sample_size = sample_size;

  const auto r_freqs = r.FrequencyMap();
  const double dense_threshold =
      static_cast<double>(r.size()) / static_cast<double>(sample_size);

  // Dense-any component: dense values are at most sample_size many, so
  // enumerate them exactly and look up their S-multiplicity via the oracle.
  for (const auto& [value, count] : r_freqs) {
    if (static_cast<double>(count) >= dense_threshold) {
      ++result.dense_values;
      result.dense_component += static_cast<double>(count) *
                                static_cast<double>(mult_s(value));
    }
  }

  // Sparse-any component: uniform sample of R's tuples with replacement;
  // each sampled sparse value contributes mult_S(v), scaled by |R|/sample.
  Xoshiro256 rng(seed);
  double sparse_sum = 0.0;
  for (size_t i = 0; i < sample_size; ++i) {
    const Tuple& t = r.tuples()[rng.UniformInt(r.size())];
    const uint64_t count = r_freqs.at(t.attribute);
    if (static_cast<double>(count) < dense_threshold) {
      sparse_sum += static_cast<double>(mult_s(t.attribute));
    }
  }
  result.sparse_component = sparse_sum * static_cast<double>(r.size()) /
                            static_cast<double>(sample_size);

  result.estimate = result.dense_component + result.sparse_component;
  return result;
}

BifocalResult BifocalEstimateWithSbf(const Relation& r, const Relation& s,
                                     size_t sample_size, uint64_t m,
                                     uint32_t k, uint64_t seed) {
  SbfOptions options;
  options.m = m;
  options.k = k;
  options.seed = seed;
  SpectralBloomFilter filter(options);
  for (const Tuple& t : s.tuples()) filter.Insert(t.attribute);
  return BifocalEstimateJoinSize(
      r, s, sample_size, seed ^ 0xB1F0CA1ull,
      [&filter](uint64_t key) { return filter.Estimate(key); });
}

BifocalResult BifocalEstimateExactIndex(const Relation& r, const Relation& s,
                                        size_t sample_size, uint64_t seed) {
  const auto s_freqs = s.FrequencyMap();
  return BifocalEstimateJoinSize(
      r, s, sample_size, seed ^ 0xB1F0CA1ull, [&s_freqs](uint64_t key) {
        const auto it = s_freqs.find(key);
        return it == s_freqs.end() ? 0ull : it->second;
      });
}

}  // namespace sbf
