#ifndef SBF_DB_CHAINING_HASH_TABLE_H_
#define SBF_DB_CHAINING_HASH_TABLE_H_

#include <cstdint>
#include <vector>

#include "hashing/hash_family.h"

namespace sbf {

// A textbook chaining hash table mapping keys to counts — the stand-in for
// the LEDA hash table the paper benchmarks against in Section 6.4 (LEDA
// "uses chaining for collision resolving", and the paper plugs the SBF's
// own hash functions into it for a maximally matched comparison; this
// class does exactly that via HashFamily with k = 1).
//
// Unlike the SBF it stores the keys themselves, which is what makes it
// exact — and what the storage comparison of Figure 15 charges it for.
class ChainingHashTable {
 public:
  ChainingHashTable(size_t num_buckets, uint64_t seed = 0,
                    HashFamily::Kind kind = HashFamily::Kind::kModuloMultiply);

  void Insert(uint64_t key, uint64_t count = 1);
  // Removes occurrences; erases the node when its count reaches zero.
  void Remove(uint64_t key, uint64_t count = 1);
  uint64_t Count(uint64_t key) const;
  bool Contains(uint64_t key) const { return Count(key) > 0; }

  size_t num_buckets() const { return buckets_.size(); }
  // Number of distinct keys stored.
  size_t size() const { return num_keys_; }
  size_t MaxChainLength() const;

  // Actual memory: bucket heads + nodes (key, count, next).
  size_t MemoryUsageBits() const;
  // The paper's loose model for hash-table key storage: m * log2(m) bits.
  static double ModelBitsLoose(size_t num_keys);
  // The tighter model: sum_{i=1..m} log2(i) bits.
  static double ModelBitsTight(size_t num_keys);

 private:
  struct Node {
    uint64_t key;
    uint64_t count;
    int32_t next;
  };

  HashFamily hash_;
  std::vector<int32_t> buckets_;  // head index into nodes_, -1 if empty
  std::vector<Node> nodes_;
  std::vector<int32_t> free_list_;
  size_t num_keys_ = 0;
};

}  // namespace sbf

#endif  // SBF_DB_CHAINING_HASH_TABLE_H_
