#ifndef SBF_DB_RANGE_TREE_H_
#define SBF_DB_RANGE_TREE_H_

#include <cstdint>

#include "core/spectral_bloom_filter.h"

namespace sbf {

// Range Tree Hashing (paper Section 5.5, Theorem 11): range-count queries
// over an SBF by hashing, alongside each value, one synthetic item per
// dyadic range containing it. Inserting a value touches log r tree nodes;
// a range query [lo, hi) decomposes into at most 2*log|Q| canonical nodes,
// each answered by a single SBF lookup. Point queries remain a single
// lookup. Every estimate keeps the SBF's one-sided error guarantee, the
// property histograms cannot give.
class RangeTreeSbf {
 public:
  struct RangeEstimate {
    uint64_t count = 0;   // estimated number of values in the range
    uint32_t probes = 0;  // SBF lookups performed (<= 2*log|Q| + O(1))
  };

  // Supports values in [0, domain_size); domain_size is rounded up to a
  // power of two. `options.m` sizes the underlying SBF, which must absorb
  // up to n*log r distinct items (Claim 12) — size it accordingly.
  RangeTreeSbf(uint64_t domain_size, SbfOptions options);

  // Number of tree levels (log r), i.e. inserts per value.
  uint32_t levels() const { return levels_; }
  uint64_t domain_size() const { return domain_size_; }

  void Insert(uint64_t value, uint64_t count = 1);
  void Remove(uint64_t value, uint64_t count = 1);

  // Exact-value multiplicity estimate (one SBF lookup).
  uint64_t EstimatePoint(uint64_t value) const;

  // Estimated number of values in the half-open range [lo, hi).
  RangeEstimate EstimateRange(uint64_t lo, uint64_t hi) const;

  size_t MemoryUsageBits() const { return filter_.MemoryUsageBits(); }
  const SpectralBloomFilter& filter() const { return filter_; }

 private:
  // Synthetic key of the dyadic node at `level` covering index `index`
  // (level 0 = leaves). Disjoint from raw value keys via a high tag.
  static uint64_t NodeKey(uint32_t level, uint64_t index) {
    return (0x52A06EULL << 40) ^ (static_cast<uint64_t>(level) << 33) ^
           index;
  }

  uint64_t domain_size_;  // power of two
  uint32_t levels_;       // log2(domain_size_)
  SpectralBloomFilter filter_;
};

}  // namespace sbf

#endif  // SBF_DB_RANGE_TREE_H_
