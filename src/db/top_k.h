#ifndef SBF_DB_TOP_K_H_
#define SBF_DB_TOP_K_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/spectral_bloom_filter.h"

namespace sbf {

// Hot-list tracking over a stream (the paper's Section 1.1.2 application:
// "Bloom Filters in conjunction with hot list techniques [GM98] to
// efficiently identify popular search queries"): the SBF supplies
// approximate counts for *every* key in bounded memory, and a small exact
// candidate set keeps the current top contenders.
//
// Because SBF estimates are one-sided (never below the true count), a key
// whose true frequency belongs in the top k always has an estimate large
// enough to enter the candidate set once it outgrows the weakest
// candidate — the tracker can over-admit (false candidates from
// overestimates) but does not structurally miss heavy keys that keep
// arriving.
class TopKTracker {
 public:
  struct Entry {
    uint64_t key = 0;
    uint64_t estimate = 0;
  };

  // Tracks the top `capacity` keys; `options` sizes the backing SBF.
  TopKTracker(size_t capacity, SbfOptions options);

  // Records `count` occurrences of `key` and updates the candidate set.
  void Observe(uint64_t key, uint64_t count = 1);

  // Current candidates, most frequent first.
  std::vector<Entry> Top() const;

  // Estimated multiplicity of any key (not just candidates).
  uint64_t Estimate(uint64_t key) const { return filter_.Estimate(key); }

  size_t capacity() const { return capacity_; }
  size_t MemoryUsageBits() const;

 private:
  size_t capacity_;
  SpectralBloomFilter filter_;
  // key -> latest estimate; kept at most `capacity_` entries.
  std::unordered_map<uint64_t, uint64_t> candidates_;
};

}  // namespace sbf

#endif  // SBF_DB_TOP_K_H_
