#ifndef SBF_DB_BLOOMJOIN_H_
#define SBF_DB_BLOOMJOIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/spectral_bloom_filter.h"
#include "db/relation.h"
#include "io/wire.h"
#include "util/status.h"

namespace sbf {

// Two-site distributed join simulation (paper Section 5.3). Relations R
// and S live on different "sites"; every message between sites is a real
// serialized wire frame metered in bytes and communication rounds — the
// costs Bloomjoins exist to save.

// What one site ships to another: its relation's name, tuple count, and
// SBF over the join attribute. The 'SBjp' frame (io/wire.h) is {varint
// name length, name bytes, varint tuple count, embedded SBF frame}, so a
// receiving site can reconstruct the filter without any out-of-band
// agreement on parameters.
struct JoinPartition {
  std::string relation;  // name of the shipping relation
  uint64_t tuples = 0;   // tuple count at the shipping site
  SpectralBloomFilter filter;
};

// Builds the shipping site's SBF over `relation`.a and serializes the
// complete partition frame — the actual bytes that cross the network.
std::vector<uint8_t> ShipPartition(const Relation& relation, uint64_t m,
                                   uint32_t k, uint64_t seed = 0);

// Re-serializes an already-received partition (relay / persistence).
std::vector<uint8_t> SerializePartition(const JoinPartition& partition);

// Reconstructs a partition from its wire bytes. Truncated, oversized, or
// corrupted frames are rejected with a DataLoss status.
StatusOr<JoinPartition> ReceivePartition(wire::ByteSpan bytes);

struct NetworkStats {
  uint64_t bytes_sent = 0;
  uint32_t rounds = 0;  // one round = one site-to-site message
};

struct JoinGroup {
  uint64_t attribute = 0;
  uint64_t count = 0;  // number of join result tuples for this value
};

struct DistributedJoinResult {
  std::vector<JoinGroup> groups;  // per-value result counts
  uint64_t result_tuples = 0;     // total join cardinality reported
  NetworkStats network;
  // Validation against the exact join (computed with full knowledge):
  uint64_t exact_tuples = 0;
  uint64_t false_groups = 0;    // reported groups that aren't in the join
  uint64_t missed_groups = 0;   // true groups the method failed to report
};

// Naive baseline: S ships every tuple to R's site; exact result, maximal
// network usage, one round.
DistributedJoinResult ShipAllJoin(const Relation& r, const Relation& s);

// Classic Bloomjoin [ML86]: R sends a Bloom filter over R.a to S's site
// (round 1); S ships back only tuples passing the filter (round 2); R
// completes the join locally. Exact result; bytes saved by filtering.
DistributedJoinResult ClassicBloomjoin(const Relation& r, const Relation& s,
                                       uint64_t filter_bits, uint32_t k,
                                       uint64_t seed = 0);

// Spectral Bloomjoin, aggregate form (Section 5.3):
//
//   SELECT R.a, count(*) FROM R, S WHERE R.a = S.a GROUP BY R.a
//   [HAVING count(*) >= threshold]
//
// S ships its partition frame (ShipPartition) to R — the single message
// of the shortened scheme; the metered bytes are the frame's actual size.
// R receives the partition, multiplies S's SBF with its own, scans R
// once, and reports each value whose product estimate passes `threshold`
// (threshold 0 = no HAVING clause). Errors are one-sided false positives
// from the SBF product, quantified against the exact join in the result.
DistributedJoinResult SpectralBloomjoin(const Relation& r, const Relation& s,
                                        uint64_t m, uint32_t k,
                                        uint64_t threshold, uint64_t seed = 0);

// Spectral Bloomjoin with the "=" operator (Section 5.3):
//
//   ... HAVING count(*) = threshold
//
// Unlike ">=", equality tests against an overestimate can miss true
// groups (the estimate overshot the exact count), so errors are
// two-sided: recall is 1 - E_SBF and false alarms remain possible. Same
// single-message scheme as SpectralBloomjoin.
DistributedJoinResult SpectralBloomjoinEquals(const Relation& r,
                                              const Relation& s, uint64_t m,
                                              uint32_t k, uint64_t threshold,
                                              uint64_t seed = 0);

// Spectral Bloomjoin with result verification (the paper's note that
// one-sided errors "can be eliminated by retrieving the accurate
// frequencies for the items in the result set"): after the SBF pass, R
// sends the candidate values to S (round 2), S returns exact counts
// (round 3). Exact result; extra bytes proportional to the candidate set.
DistributedJoinResult VerifiedSpectralBloomjoin(const Relation& r,
                                                const Relation& s, uint64_t m,
                                                uint32_t k, uint64_t threshold,
                                                uint64_t seed = 0);

}  // namespace sbf

#endif  // SBF_DB_BLOOMJOIN_H_
