#include "db/bloomjoin.h"

#include <unordered_map>
#include <unordered_set>

#include "core/bloom_filter.h"
#include "core/sbf_algebra.h"
#include "util/check.h"

namespace sbf {
namespace {

// Validates `result.groups` against the exact join and fills the error
// accounting fields. A reported group is false if the value contributes no
// tuples to the true join (or, with a threshold, falls below it).
void Validate(const Relation& r, const Relation& s, uint64_t threshold,
              DistributedJoinResult* result) {
  const auto r_freqs = r.FrequencyMap();
  const auto s_freqs = s.FrequencyMap();

  std::unordered_map<uint64_t, uint64_t> exact_groups;
  uint64_t exact_tuples = 0;
  for (const auto& [value, count] : r_freqs) {
    const auto it = s_freqs.find(value);
    if (it == s_freqs.end()) continue;
    const uint64_t join_count = count * it->second;
    exact_tuples += join_count;
    if (join_count >= std::max<uint64_t>(threshold, 1)) {
      exact_groups.emplace(value, join_count);
    }
  }
  result->exact_tuples = exact_tuples;

  std::unordered_set<uint64_t> reported;
  for (const JoinGroup& group : result->groups) {
    reported.insert(group.attribute);
    if (!exact_groups.contains(group.attribute)) ++result->false_groups;
  }
  for (const auto& [value, count] : exact_groups) {
    if (!reported.contains(value)) ++result->missed_groups;
  }
}

SpectralBloomFilter BuildSbf(const Relation& relation, uint64_t m, uint32_t k,
                             uint64_t seed) {
  SbfOptions options;
  options.m = m;
  options.k = k;
  options.seed = seed;
  SpectralBloomFilter filter(options);
  for (const Tuple& t : relation.tuples()) filter.Insert(t.attribute);
  return filter;
}

}  // namespace

std::vector<uint8_t> ShipPartition(const Relation& relation, uint64_t m,
                                   uint32_t k, uint64_t seed) {
  JoinPartition partition{relation.name(), relation.size(),
                          BuildSbf(relation, m, k, seed)};
  return SerializePartition(partition);
}

std::vector<uint8_t> SerializePartition(const JoinPartition& partition) {
  wire::Writer payload;
  payload.PutVarint(partition.relation.size());
  payload.PutBytes(
      reinterpret_cast<const uint8_t*>(partition.relation.data()),
      partition.relation.size());
  payload.PutVarint(partition.tuples);
  payload.PutFrame(partition.filter.Serialize());
  return wire::SealFrame(wire::kMagicJoinPartition, wire::kFormatVersion,
                         std::move(payload));
}

StatusOr<JoinPartition> ReceivePartition(wire::ByteSpan bytes) {
  auto reader = wire::OpenFrame(bytes, wire::kMagicJoinPartition,
                                wire::kFormatVersion, "join partition");
  if (!reader.ok()) return reader.status();
  wire::Reader& in = reader.value();
  const uint64_t name_len = in.ReadVarint();
  if (!in.ok()) return in.status();
  if (name_len > in.remaining()) {
    return Status::DataLoss("join partition name out of bounds");
  }
  const wire::ByteSpan name = in.ReadSpan(static_cast<size_t>(name_len));
  const uint64_t tuples = in.ReadVarint();
  const wire::ByteSpan filter_frame = in.ReadFrameSpan();
  if (!in.ok()) return in.status();
  Status status = in.ExpectEnd("join partition");
  if (!status.ok()) return status;
  auto filter = SpectralBloomFilter::Deserialize(filter_frame);
  if (!filter.ok()) return filter.status();
  return JoinPartition{
      std::string(reinterpret_cast<const char*>(name.data()), name.size()),
      tuples, std::move(filter).value()};
}

DistributedJoinResult ShipAllJoin(const Relation& r, const Relation& s) {
  DistributedJoinResult result;
  result.network.bytes_sent = s.ShipAllBytes();
  result.network.rounds = 1;

  const auto s_freqs = s.FrequencyMap();
  std::unordered_map<uint64_t, uint64_t> groups;
  for (const Tuple& t : r.tuples()) {
    const auto it = s_freqs.find(t.attribute);
    if (it != s_freqs.end()) groups[t.attribute] += it->second;
  }
  for (const auto& [value, count] : groups) {
    result.groups.push_back(JoinGroup{value, count});
    result.result_tuples += count;
  }
  Validate(r, s, 0, &result);
  return result;
}

DistributedJoinResult ClassicBloomjoin(const Relation& r, const Relation& s,
                                       uint64_t filter_bits, uint32_t k,
                                       uint64_t seed) {
  DistributedJoinResult result;

  // Round 1: R -> S, the Bloom filter over R.a.
  BloomFilter filter(filter_bits, k, seed);
  for (const Tuple& t : r.tuples()) filter.Add(t.attribute);
  result.network.bytes_sent += filter.Serialize().size();
  result.network.rounds = 1;

  // S scans and ships only tuples passing the filter.
  std::vector<Tuple> shipped;
  for (const Tuple& t : s.tuples()) {
    if (filter.Contains(t.attribute)) shipped.push_back(t);
  }
  result.network.bytes_sent += shipped.size() * sizeof(Tuple);
  result.network.rounds = 2;

  // R completes the join locally — exact despite filter false positives,
  // because non-matching shipped tuples simply join with nothing.
  const auto r_freqs = r.FrequencyMap();
  std::unordered_map<uint64_t, uint64_t> groups;
  for (const Tuple& t : shipped) {
    const auto it = r_freqs.find(t.attribute);
    if (it != r_freqs.end()) groups[t.attribute] += it->second;
  }
  for (const auto& [value, count] : groups) {
    result.groups.push_back(JoinGroup{value, count});
    result.result_tuples += count;
  }
  Validate(r, s, 0, &result);
  return result;
}

DistributedJoinResult SpectralBloomjoin(const Relation& r, const Relation& s,
                                        uint64_t m, uint32_t k,
                                        uint64_t threshold, uint64_t seed) {
  DistributedJoinResult result;

  // Round 1 (the only one): S -> R, S's partition frame — real wire bytes.
  const std::vector<uint8_t> message = ShipPartition(s, m, k, seed);
  result.network.bytes_sent += message.size();
  result.network.rounds = 1;

  auto received = ReceivePartition(message);
  SBF_CHECK(received.ok());

  // R multiplies the SBFs and scans its side once; values are unique per
  // group because the scan deduplicates via the frequency map.
  SpectralBloomFilter r_filter = BuildSbf(r, m, k, seed);
  auto product = Multiply(r_filter, received.value().filter);
  SBF_CHECK(product.ok());

  const auto r_freqs = r.FrequencyMap();
  for (const auto& [value, r_count] : r_freqs) {
    const uint64_t estimate = product.value().Estimate(value);
    if (estimate >= std::max<uint64_t>(threshold, 1)) {
      result.groups.push_back(JoinGroup{value, estimate});
      result.result_tuples += estimate;
    }
  }
  Validate(r, s, threshold, &result);
  return result;
}

DistributedJoinResult SpectralBloomjoinEquals(const Relation& r,
                                              const Relation& s, uint64_t m,
                                              uint32_t k, uint64_t threshold,
                                              uint64_t seed) {
  DistributedJoinResult result;

  const std::vector<uint8_t> message = ShipPartition(s, m, k, seed);
  result.network.bytes_sent += message.size();
  result.network.rounds = 1;

  auto received = ReceivePartition(message);
  SBF_CHECK(received.ok());
  SpectralBloomFilter r_filter = BuildSbf(r, m, k, seed);
  auto product = Multiply(r_filter, received.value().filter);
  SBF_CHECK(product.ok());

  const auto r_freqs = r.FrequencyMap();
  for (const auto& [value, r_count] : r_freqs) {
    const uint64_t estimate = product.value().Estimate(value);
    if (estimate == threshold && threshold > 0) {
      result.groups.push_back(JoinGroup{value, estimate});
      result.result_tuples += estimate;
    }
  }

  // Validation against exact equality groups.
  const auto s_freqs = s.FrequencyMap();
  std::unordered_map<uint64_t, uint64_t> exact_groups;
  for (const auto& [value, count] : r_freqs) {
    const auto it = s_freqs.find(value);
    if (it == s_freqs.end()) continue;
    const uint64_t join_count = count * it->second;
    result.exact_tuples += join_count;
    if (join_count == threshold) exact_groups.emplace(value, join_count);
  }
  std::unordered_set<uint64_t> reported;
  for (const JoinGroup& group : result.groups) {
    reported.insert(group.attribute);
    if (!exact_groups.contains(group.attribute)) ++result.false_groups;
  }
  for (const auto& [value, count] : exact_groups) {
    if (!reported.contains(value)) ++result.missed_groups;
  }
  return result;
}

DistributedJoinResult VerifiedSpectralBloomjoin(const Relation& r,
                                                const Relation& s, uint64_t m,
                                                uint32_t k, uint64_t threshold,
                                                uint64_t seed) {
  DistributedJoinResult candidate_pass =
      SpectralBloomjoin(r, s, m, k, threshold, seed);

  DistributedJoinResult result;
  result.network = candidate_pass.network;

  // Round 2: R -> S, candidate values (8 bytes each).
  result.network.bytes_sent += candidate_pass.groups.size() * sizeof(uint64_t);
  result.network.rounds = 2;

  // Round 3: S -> R, exact counts for the candidates (16 bytes each).
  const auto s_freqs = s.FrequencyMap();
  const auto r_freqs = r.FrequencyMap();
  result.network.bytes_sent +=
      candidate_pass.groups.size() * (2 * sizeof(uint64_t));
  result.network.rounds = 3;

  for (const JoinGroup& candidate : candidate_pass.groups) {
    const auto s_it = s_freqs.find(candidate.attribute);
    const auto r_it = r_freqs.find(candidate.attribute);
    if (s_it == s_freqs.end() || r_it == r_freqs.end()) continue;
    const uint64_t exact = s_it->second * r_it->second;
    if (exact >= std::max<uint64_t>(threshold, 1)) {
      result.groups.push_back(JoinGroup{candidate.attribute, exact});
      result.result_tuples += exact;
    }
  }
  Validate(r, s, threshold, &result);
  return result;
}

}  // namespace sbf
