#ifndef SBF_DB_BIFOCAL_H_
#define SBF_DB_BIFOCAL_H_

#include <cstdint>
#include <functional>

#include "core/spectral_bloom_filter.h"
#include "db/relation.h"

namespace sbf {

// Bifocal sampling join-size estimation [GGMS96] with the SBF standing in
// for the t-index (paper Section 5.4).
//
// The estimator splits R's values into *dense* (multiplicity >= |R| /
// sample_size) and *sparse*. The sparse-any component is estimated from a
// uniform sample of R, looking up each sampled value's multiplicity in S
// through a t-index — here, an SBF over S.a, so the lookup is approximate
// but one-sided. The dense-any component enumerates the (few) dense values
// exactly. Because SBF errors are one-sided and bounded in expectation,
// the estimate satisfies A_s <= E(A_hat_s) <= A_s (1 + gamma).
struct BifocalResult {
  double estimate = 0.0;      // estimated |R join S|
  uint64_t exact = 0;         // true join size
  double dense_component = 0.0;
  double sparse_component = 0.0;
  size_t dense_values = 0;    // values classified dense in R
  size_t sample_size = 0;
};

// Multiplicity oracle for S.a: exact (hash index) or approximate (SBF).
using MultiplicityFn = std::function<uint64_t(uint64_t key)>;

// Core estimator with a pluggable oracle.
BifocalResult BifocalEstimateJoinSize(const Relation& r, const Relation& s,
                                      size_t sample_size, uint64_t seed,
                                      const MultiplicityFn& mult_s);

// Convenience: oracle backed by an SBF built over S.a with the given
// parameters (the paper's substitution).
BifocalResult BifocalEstimateWithSbf(const Relation& r, const Relation& s,
                                     size_t sample_size, uint64_t m,
                                     uint32_t k, uint64_t seed = 0);

// Convenience: exact oracle (the expensive t-index the SBF replaces).
BifocalResult BifocalEstimateExactIndex(const Relation& r, const Relation& s,
                                        size_t sample_size, uint64_t seed = 0);

}  // namespace sbf

#endif  // SBF_DB_BIFOCAL_H_
