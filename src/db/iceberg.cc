#include "db/iceberg.h"

#include <unordered_map>

#include "hashing/hash_family.h"
#include "util/check.h"

namespace sbf {

IcebergEngine::IcebergEngine(SbfOptions options)
    : filter_(std::move(options)) {}

bool IcebergEngine::Observe(uint64_t key, uint64_t trigger_threshold) {
  filter_.Insert(key);
  if (trigger_threshold == 0) return false;
  return filter_.Estimate(key) >= trigger_threshold;
}

std::vector<uint64_t> IcebergEngine::Query(
    const std::vector<uint64_t>& candidates, uint64_t threshold) const {
  std::vector<uint64_t> heavy;
  for (uint64_t key : candidates) {
    if (filter_.Estimate(key) >= threshold) heavy.push_back(key);
  }
  return heavy;
}

MultiscanIceberg::MultiscanIceberg(std::vector<Stage> stages,
                                   uint64_t threshold, uint64_t seed)
    : stages_(std::move(stages)), threshold_(threshold), seed_(seed) {
  SBF_CHECK_MSG(!stages_.empty(), "multiscan needs at least one stage");
  SBF_CHECK_MSG(threshold_ >= 1, "multiscan threshold must be >= 1");
  for (const Stage& stage : stages_) {
    SBF_CHECK_MSG(stage.buckets >= 1 && stage.k >= 1, "bad stage config");
  }
}

MultiscanIceberg::Result MultiscanIceberg::Run(const Multiset& data) {
  Result result;

  // One lossy counting filter per stage. Stage j counts only occurrences
  // of items whose buckets in every earlier stage are already heavy —
  // the shared progressive filtering of MULTISCAN-SHARED.
  std::vector<HashFamily> hashes;
  std::vector<FixedWidthCounterVector> filters;
  hashes.reserve(stages_.size());
  filters.reserve(stages_.size());
  for (size_t j = 0; j < stages_.size(); ++j) {
    hashes.emplace_back(stages_[j].k, stages_[j].buckets,
                        seed_ + 0x9E3779B9ull * (j + 1));
    filters.emplace_back(stages_[j].buckets, 32);
    result.memory_bits += filters.back().MemoryUsageBits();
  }

  auto passes_stage = [&](size_t j, uint64_t key) {
    uint64_t positions[64];
    hashes[j].Positions(key, positions);
    for (uint32_t i = 0; i < stages_[j].k; ++i) {
      if (filters[j].Get(positions[i]) < threshold_) return false;
    }
    return true;
  };

  for (size_t j = 0; j < stages_.size(); ++j) {
    ++result.scans;
    for (uint64_t key : data.stream) {
      bool passed = true;
      for (size_t prev = 0; prev < j && passed; ++prev) {
        passed = passes_stage(prev, key);
      }
      if (!passed) continue;
      uint64_t positions[64];
      hashes[j].Positions(key, positions);
      for (uint32_t i = 0; i < stages_[j].k; ++i) {
        filters[j].Increment(positions[i]);
      }
    }
  }

  // Verification scan: exact counts for the surviving candidates only.
  ++result.scans;
  std::unordered_map<uint64_t, uint64_t> exact;
  for (size_t i = 0; i < data.keys.size(); ++i) {
    const uint64_t key = data.keys[i];
    bool candidate = true;
    for (size_t j = 0; j < stages_.size() && candidate; ++j) {
      candidate = passes_stage(j, key);
    }
    if (!candidate) continue;
    ++result.candidates;
    if (data.freqs[i] >= threshold_) {
      result.heavy_keys.push_back(key);
    } else {
      ++result.false_candidates;
    }
  }
  return result;
}

}  // namespace sbf
