#ifndef SBF_DB_AGGREGATE_INDEX_H_
#define SBF_DB_AGGREGATE_INDEX_H_

#include <cstdint>

#include "core/spectral_bloom_filter.h"

namespace sbf {

// A fast approximate aggregate index over an attribute (paper Section 5.1):
//
//   SELECT count(a1) FROM R WHERE a1 = v     -> Count(v)
//   SELECT sum(x)    FROM R WHERE a1 = v     -> Sum(v)
//   SELECT avg(x)    FROM R WHERE a1 = v     -> Avg(v)
//
// The index is a pair of SBFs sharing hash functions: one counts
// occurrences of each attribute value, the other accumulates the weights
// (the aggregated measure) per value. Both estimates are one-sided upper
// bounds with error probability E_SBF — "a histogram where each item has
// its own bucket".
class AggregateIndex {
 public:
  explicit AggregateIndex(SbfOptions options);

  // Records a row with attribute value `key` carrying measure `weight`.
  void Insert(uint64_t key, uint64_t weight = 1);
  // Deletes a previously inserted row.
  void Remove(uint64_t key, uint64_t weight = 1);

  // Estimated COUNT(*) WHERE a = key.
  uint64_t Count(uint64_t key) const { return counts_.Estimate(key); }
  // Estimated SUM(weight) WHERE a = key.
  uint64_t Sum(uint64_t key) const { return sums_.Estimate(key); }
  // Estimated AVG(weight) WHERE a = key (0 when the value is absent).
  double Avg(uint64_t key) const;

  size_t MemoryUsageBits() const {
    return counts_.MemoryUsageBits() + sums_.MemoryUsageBits();
  }
  const SpectralBloomFilter& count_filter() const { return counts_; }
  const SpectralBloomFilter& sum_filter() const { return sums_; }

 private:
  SpectralBloomFilter counts_;
  SpectralBloomFilter sums_;
};

}  // namespace sbf

#endif  // SBF_DB_AGGREGATE_INDEX_H_
