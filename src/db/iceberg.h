#ifndef SBF_DB_ICEBERG_H_
#define SBF_DB_ICEBERG_H_

#include <cstdint>
#include <vector>

#include "core/spectral_bloom_filter.h"
#include "sai/fixed_counter_vector.h"
#include "workload/multiset_stream.h"

namespace sbf {

// Ad-hoc iceberg queries over an SBF (paper Section 5.2): the filter is
// built once while the data streams by; the threshold is supplied only at
// query time and can change between queries with no rescan — the ability
// the preprocessing-based methods [FSGM+98, MM02] lack.
class IcebergEngine {
 public:
  explicit IcebergEngine(SbfOptions options);

  // Stream one occurrence. Returns true if this occurrence pushed the
  // item's estimate to at least `trigger_threshold` (the paper's "alert
  // once an item with a high count is encountered" trigger); pass 0 for
  // no trigger.
  bool Observe(uint64_t key, uint64_t trigger_threshold = 0);

  // Ad-hoc query: candidates whose estimated frequency is >= threshold.
  // One-sided: every true heavy item is reported (no false negatives).
  std::vector<uint64_t> Query(const std::vector<uint64_t>& candidates,
                              uint64_t threshold) const;

  uint64_t Estimate(uint64_t key) const { return filter_.Estimate(key); }
  const SpectralBloomFilter& filter() const { return filter_; }
  size_t MemoryUsageBits() const { return filter_.MemoryUsageBits(); }

 private:
  SpectralBloomFilter filter_;
};

// The MULTISCAN-SHARED baseline in the style of [FSGM+98] (paper
// Section 5.2's comparison point): progressive filtering with a cascade of
// small lossy counter arrays, each stage only counting items that passed
// all earlier stages. The threshold must be known while scanning; changing
// it requires rebuilding from scratch — measured by the benchmark.
class MultiscanIceberg {
 public:
  struct Stage {
    size_t buckets = 0;
    uint32_t k = 1;  // hash probes per stage filter
  };

  MultiscanIceberg(std::vector<Stage> stages, uint64_t threshold,
                   uint64_t seed = 0);

  struct Result {
    std::vector<uint64_t> heavy_keys;  // exact result after the final scan
    size_t candidates = 0;             // keys surviving all filter stages
    size_t false_candidates = 0;       // candidates removed by verification
    size_t scans = 0;                  // passes over the data
    size_t memory_bits = 0;            // all stage filters
  };

  // Runs the full multiscan pipeline over the multiset (one scan per
  // stage plus one verification scan).
  Result Run(const Multiset& data);

  uint64_t threshold() const { return threshold_; }

 private:
  std::vector<Stage> stages_;
  uint64_t threshold_;
  uint64_t seed_;
};

}  // namespace sbf

#endif  // SBF_DB_ICEBERG_H_
