#ifndef SBF_DB_RELATION_H_
#define SBF_DB_RELATION_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace sbf {

// A tuple of the minimal relational substrate: a join-attribute value and
// an opaque payload (row id / rest-of-tuple stand-in). Shipping one tuple
// across the simulated network costs sizeof(Tuple) bytes.
struct Tuple {
  uint64_t attribute = 0;
  uint64_t payload = 0;

  friend bool operator==(const Tuple&, const Tuple&) = default;
};

// Minimal single-attribute relation used by the Section 5 applications
// (Bloomjoins, iceberg queries, bifocal sampling). Rows are appended;
// scans are sequential, matching the streaming/scan cost model of the
// paper's distributed-query discussion.
class Relation {
 public:
  explicit Relation(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  size_t size() const { return tuples_.size(); }
  const std::vector<Tuple>& tuples() const { return tuples_; }

  void Add(uint64_t attribute, uint64_t payload = 0) {
    tuples_.push_back(Tuple{attribute, payload});
  }

  // Exact frequency of every attribute value — ground truth for the
  // experiments (a full scan; the SBF is the cheap substitute).
  std::unordered_map<uint64_t, uint64_t> FrequencyMap() const;

  // Distinct attribute values, in first-seen order.
  std::vector<uint64_t> DistinctValues() const;

  // Exact size of the equi-join with `other` on the attribute:
  // sum_v f_this(v) * f_other(v).
  uint64_t ExactJoinSize(const Relation& other) const;

  // Bytes to ship the whole relation (the naive no-filter baseline).
  uint64_t ShipAllBytes() const { return tuples_.size() * sizeof(Tuple); }

 private:
  std::string name_;
  std::vector<Tuple> tuples_;
};

}  // namespace sbf

#endif  // SBF_DB_RELATION_H_
