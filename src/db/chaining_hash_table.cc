#include "db/chaining_hash_table.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace sbf {

ChainingHashTable::ChainingHashTable(size_t num_buckets, uint64_t seed,
                                     HashFamily::Kind kind)
    : hash_(1, num_buckets, seed, kind), buckets_(num_buckets, -1) {
  SBF_CHECK_MSG(num_buckets >= 1, "hash table needs >= 1 bucket");
}

void ChainingHashTable::Insert(uint64_t key, uint64_t count) {
  const uint64_t b = hash_.Position(key, 0);
  for (int32_t i = buckets_[b]; i != -1; i = nodes_[i].next) {
    if (nodes_[i].key == key) {
      nodes_[i].count += count;
      return;
    }
  }
  int32_t index;
  if (!free_list_.empty()) {
    index = free_list_.back();
    free_list_.pop_back();
    nodes_[index] = Node{key, count, buckets_[b]};
  } else {
    index = static_cast<int32_t>(nodes_.size());
    nodes_.push_back(Node{key, count, buckets_[b]});
  }
  buckets_[b] = index;
  ++num_keys_;
}

void ChainingHashTable::Remove(uint64_t key, uint64_t count) {
  const uint64_t b = hash_.Position(key, 0);
  int32_t prev = -1;
  for (int32_t i = buckets_[b]; i != -1; prev = i, i = nodes_[i].next) {
    if (nodes_[i].key != key) continue;
    SBF_CHECK_MSG(nodes_[i].count >= count, "hash table count underflow");
    nodes_[i].count -= count;
    if (nodes_[i].count == 0) {
      if (prev == -1) {
        buckets_[b] = nodes_[i].next;
      } else {
        nodes_[prev].next = nodes_[i].next;
      }
      free_list_.push_back(i);
      --num_keys_;
    }
    return;
  }
  SBF_CHECK_MSG(false, "removing a key absent from the hash table");
}

uint64_t ChainingHashTable::Count(uint64_t key) const {
  const uint64_t b = hash_.Position(key, 0);
  for (int32_t i = buckets_[b]; i != -1; i = nodes_[i].next) {
    if (nodes_[i].key == key) return nodes_[i].count;
  }
  return 0;
}

size_t ChainingHashTable::MaxChainLength() const {
  size_t longest = 0;
  for (int32_t head : buckets_) {
    size_t length = 0;
    for (int32_t i = head; i != -1; i = nodes_[i].next) ++length;
    longest = std::max(longest, length);
  }
  return longest;
}

size_t ChainingHashTable::MemoryUsageBits() const {
  return buckets_.size() * 8 * sizeof(int32_t) +
         nodes_.size() * 8 * sizeof(Node);
}

double ChainingHashTable::ModelBitsLoose(size_t num_keys) {
  if (num_keys < 2) return static_cast<double>(num_keys);
  return static_cast<double>(num_keys) *
         std::log2(static_cast<double>(num_keys));
}

double ChainingHashTable::ModelBitsTight(size_t num_keys) {
  double bits = 0.0;
  for (size_t i = 2; i <= num_keys; ++i) {
    bits += std::log2(static_cast<double>(i));
  }
  return bits;
}

}  // namespace sbf
