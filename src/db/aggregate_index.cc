#include "db/aggregate_index.h"

namespace sbf {

AggregateIndex::AggregateIndex(SbfOptions options)
    : counts_(options), sums_(options) {}

void AggregateIndex::Insert(uint64_t key, uint64_t weight) {
  counts_.Insert(key, 1);
  if (weight > 0) sums_.Insert(key, weight);
}

void AggregateIndex::Remove(uint64_t key, uint64_t weight) {
  counts_.Remove(key, 1);
  if (weight > 0) sums_.Remove(key, weight);
}

double AggregateIndex::Avg(uint64_t key) const {
  const uint64_t count = Count(key);
  if (count == 0) return 0.0;
  return static_cast<double>(Sum(key)) / static_cast<double>(count);
}

}  // namespace sbf
