#ifndef SBF_IO_DURABLE_STORE_H_
#define SBF_IO_DURABLE_STORE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/concurrent_sbf.h"
#include "io/delta_log.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace sbf {

// Crash-safe persistence for a ConcurrentSbf (DESIGN.md §10): a store
// directory holds periodic full-filter checkpoints plus a write-ahead
// delta log (io/delta_log.h), so a restart recovers to exactly the set of
// acknowledged updates instead of re-ingesting the stream.
//
//   <dir>/checkpoint-<G>.sbf   full 'SBcs' filter frame, generation G
//   <dir>/wal-<G>.log          deltas applied AFTER checkpoint G
//
// Invariants the protocol maintains (and recovery leans on):
//  * A checkpoint is only ever visible under its final name via
//    temp-file + atomic rename; a crash mid-write leaves only a *.tmp
//    that recovery deletes.
//  * checkpoint-G captures every record of wal-(G-1) and earlier: appends
//    are blocked for the duration of the checkpoint protocol, so the
//    record stream is cleanly partitioned by generation.
//  * Two generations are retained (current and previous). Falling back
//    from a quarantined checkpoint-G to checkpoint-(G-1) therefore always
//    finds wal-(G-1) + wal-G to replay, reconstructing the same state.
//  * wal-0 embeds (like every log header) an empty filter with the
//    store's full configuration, so a store that never checkpointed — or
//    whose checkpoints were all quarantined — rebuilds from logs alone.

// How the store came back up. Order is by increasing severity; the verdict
// reported is the worst condition encountered.
enum class RecoveryVerdict {
  kFreshStart = 0,   // empty directory: a new store was initialized
  kClean = 1,        // checkpoint + log replayed with no damage
  kTornTail = 2,     // a log ended in a torn record; truncated and resumed
  kQuarantined = 3,  // a checkpoint failed validation; renamed aside and
                     // recovered from the previous generation
  kLogOnlyRebuild = 4,  // no checkpoint usable; rebuilt by replaying logs
                        // from the embedded empty-filter configuration
  kUnrecoverable = 5,   // nothing usable in the directory (reported via
                        // status, never via a live store)
};

const char* RecoveryVerdictName(RecoveryVerdict verdict);

// Everything `DurableSbf::Stats()` reports about durability health — the
// Health()-style snapshot for the persistence layer.
struct DurabilityStats {
  // Recovery facts, frozen at Open().
  RecoveryVerdict recovery = RecoveryVerdict::kFreshStart;
  bool recovered_torn_tail = false;
  uint32_t quarantined_checkpoints = 0;
  uint64_t replayed_records = 0;

  // Live log / checkpoint state.
  uint64_t generation = 0;
  uint64_t wal_bytes = 0;            // current log size on disk
  uint64_t appended_records = 0;     // records acked since Open()
  uint64_t checkpoints_written = 0;  // successful checkpoints since Open()
  uint64_t checkpoint_retries = 0;   // backoff retries that were needed
  uint64_t checkpoint_failures = 0;  // attempts that exhausted retries
  double checkpoint_age_seconds = 0.0;  // since last checkpoint (or Open)
  bool wedged = false;  // an injected/real crash point left the store
                        // read-only; recover by reopening the directory
  std::string last_error;

  // One-line human-readable rendering for tools and logs.
  std::string ToString() const;
};

// Tuning for DurableSbf. `filter` configures a freshly initialized store;
// a recovered store keeps the configuration persisted in its files.
struct DurableOptions {
  ConcurrentSbfOptions filter;
  // fsync the log after every acked append. Turning it off trades the
  // tail of the log (one crash's worth of unsynced records) for append
  // throughput; the torn-tail recovery rule absorbs the difference.
  bool sync_each_append = true;
  // Checkpoint when the log grows past this many bytes (0 disables).
  uint64_t checkpoint_log_bytes = 8ull << 20;
  // Checkpoint when the last one is older than this (0 disables).
  uint32_t checkpoint_interval_ms = 0;
  // Run the triggers on a background thread. Off by default so tests and
  // single-shot tools control checkpoint timing explicitly.
  bool background_checkpointer = false;
  // Transient-failure policy for one checkpoint request: the first
  // attempt plus up to `checkpoint_retries` retries, sleeping an
  // exponentially growing backoff between attempts.
  uint32_t checkpoint_retries = 4;
  uint32_t backoff_initial_ms = 10;
  uint32_t backoff_max_ms = 2000;
};

// Result of recovering a store directory (exposed separately from
// DurableSbf so tooling and tests can drive recovery without standing up
// the live frontend).
struct RecoveryOutcome {
  explicit RecoveryOutcome(ConcurrentSbf f) : filter(std::move(f)) {}

  ConcurrentSbf filter;
  RecoveryVerdict verdict = RecoveryVerdict::kFreshStart;
  bool torn_tail = false;
  uint32_t quarantined = 0;
  uint64_t replayed_records = 0;
  // Where appending resumes: generation, whether wal-<generation> exists,
  // and its valid byte count (the scanner's truncation point).
  uint64_t resume_generation = 0;
  bool resume_wal_exists = false;
  uint64_t resume_wal_valid_bytes = 0;
  uint64_t next_sequence = 1;
  std::string detail;  // human-readable recovery notes
};

// Paranoid scan-forward recovery over `dir`. Loads the newest checkpoint
// that deserializes AND passes CheckInvariants(), quarantining failures
// (renamed to *.quarantined) and falling back generation by generation;
// replays the surviving log suffix with torn tails treated as clean ends;
// rebuilds from the logs' embedded configuration when no checkpoint
// survives. `fresh_options` configures a brand-new store when the
// directory is empty (pass nullptr to fail instead). Deletes leftover
// *.tmp files. Returns kUnrecoverable conditions as a non-OK status.
StatusOr<RecoveryOutcome> RecoverStore(const std::string& dir,
                                       const ConcurrentSbfOptions* fresh_options);

// Path helpers (exposed for tests/tooling).
std::string CheckpointPath(const std::string& dir, uint64_t generation);
std::string WalPath(const std::string& dir, uint64_t generation);

// Crash-safe frontend: a ConcurrentSbf whose acknowledged mutations
// survive process death. Every Insert/Remove appends a WAL record before
// touching counters (write-ahead), and a background or explicit
// Checkpoint() compacts the log into a full-filter snapshot.
//
// Mutations return Status because durability can fail; a failed append
// means the op is NOT acknowledged (it may or may not be partially on
// disk — recovery's torn-tail rule discards the partial record). After a
// crash-point failure the store wedges: reads keep serving, mutations
// fail, and the directory reopens cleanly via Open().
//
// Thread safety: reads delegate to ConcurrentSbf and are safe under
// concurrent mutators; mutations serialize on the internal log mutex
// (the WAL is one append stream). MI-policy filters additionally need
// external write serialization for replay to be order-faithful — the
// same caveat as ConcurrentSbf's delta buffering.
//
// Lock hierarchy (DESIGN.md §11, enforced by the thread-safety
// annotations below): checkpoint_mu_ -> log_mu_ -> cp_wake_mu_. The
// checkpoint mutex serializes whole checkpoint protocols and protects no
// data; the log mutex guards every mutable log/stats field; the wake
// mutex is a leaf guarding only the checkpointer wake flags.
class DurableSbf {
 public:
  // Opens (recovering) or initializes (creating) the store at `dir`.
  static StatusOr<std::unique_ptr<DurableSbf>> Open(const std::string& dir,
                                                    DurableOptions options);

  // Stops the checkpointer and syncs the log; does NOT checkpoint.
  ~DurableSbf();

  DurableSbf(const DurableSbf&) = delete;
  DurableSbf& operator=(const DurableSbf&) = delete;

  // --- mutations (write-ahead, acked only on OK) -------------------------

  Status Insert(uint64_t key, uint64_t count = 1);
  Status Remove(uint64_t key, uint64_t count = 1);
  Status InsertBatch(const uint64_t* keys, size_t n, uint64_t count = 1);

  // --- reads (thread-safe, never wedge) ----------------------------------

  [[nodiscard]] uint64_t Estimate(uint64_t key) const {
    return filter_.Estimate(key);
  }
  void EstimateBatch(const uint64_t* keys, size_t n, uint64_t* out) const {
    filter_.EstimateBatch(keys, n, out);
  }
  [[nodiscard]] FilterHealth Health() const { return filter_.Health(); }
  [[nodiscard]] Status CheckInvariants() const {
    return filter_.CheckInvariants();
  }
  [[nodiscard]] const ConcurrentSbf& filter() const noexcept {
    return filter_;
  }
  [[nodiscard]] uint64_t generation() const;

  // --- durability control ------------------------------------------------

  // Runs the checkpoint protocol now, with the configured retry/backoff
  // policy. Serializes against the background checkpointer.
  Status Checkpoint();

  // fsyncs the log (a barrier for sync_each_append = false callers).
  Status SyncLog();

  // Durability health snapshot.
  [[nodiscard]] DurabilityStats Stats() const;

 private:
  explicit DurableSbf(DurableOptions options, RecoveryOutcome outcome);

  // One acked mutation: seal a record, append it, apply it to the filter.
  Status AppendAndApply(bool is_remove, uint64_t count, const uint64_t* keys,
                        size_t n) SBF_EXCLUDES(log_mu_, cp_wake_mu_);
  // One checkpoint attempt (no retries).
  Status CheckpointOnce() SBF_REQUIRES(checkpoint_mu_) SBF_EXCLUDES(log_mu_);
  // Attempt + retries with exponential backoff.
  Status CheckpointWithRetries() SBF_REQUIRES(checkpoint_mu_)
      SBF_EXCLUDES(log_mu_, cp_wake_mu_);
  void CheckpointerLoop()
      SBF_EXCLUDES(checkpoint_mu_, log_mu_, cp_wake_mu_);
  // Serialized empty filter with the store's configuration (each new log's
  // header embeds it).
  std::vector<uint8_t> EmptyFilterFrame() const;

  DurableOptions options_;
  std::string dir_;
  ConcurrentSbf filter_;

  // Log state, guarded by log_mu_ (mutations + checkpoint rotation).
  mutable util::Mutex log_mu_;
  io::DeltaLogWriter wal_ SBF_GUARDED_BY(log_mu_);
  uint64_t generation_ SBF_GUARDED_BY(log_mu_) = 0;
  uint64_t next_sequence_ SBF_GUARDED_BY(log_mu_) = 1;
  bool wedged_ SBF_GUARDED_BY(log_mu_) = false;
  DurabilityStats stats_ SBF_GUARDED_BY(log_mu_);
  std::chrono::steady_clock::time_point last_checkpoint_
      SBF_GUARDED_BY(log_mu_);

  // Checkpointer serialization (manual + background callers). Protects no
  // data — it makes a whole checkpoint protocol (which takes and drops
  // log_mu_ internally) one critical section.
  util::Mutex checkpoint_mu_;

  // Background thread lifecycle. cp_wake_mu_ is a leaf: nothing is ever
  // acquired while it is held.
  util::Mutex cp_wake_mu_;
  std::condition_variable cp_wake_;
  bool stop_ SBF_GUARDED_BY(cp_wake_mu_) = false;
  bool size_trigger_ SBF_GUARDED_BY(cp_wake_mu_) = false;
  std::thread checkpointer_;
};

}  // namespace sbf

#endif  // SBF_IO_DURABLE_STORE_H_
