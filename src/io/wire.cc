#include "io/wire.h"

#include "util/fault_injection.h"

namespace sbf {
namespace wire {
namespace {

// Byte-at-a-time CRC32C over the reflected Castagnoli polynomial. The
// table is built once on first use; throughput is far above what the
// test/tooling paths need, and the value matches hardware crc32c.
const uint32_t* Crc32cTable() {
  static const auto* table = [] {
    auto* t = new uint32_t[256];
    constexpr uint32_t kPoly = 0x82F63B78u;  // reflected 0x1EDC6F41
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32c(const uint8_t* data, size_t size) {
  const uint32_t* table = Crc32cTable();
  uint32_t crc = ~0u;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ data[i]) & 0xFF];
  }
  return ~crc;
}

uint64_t Reader::ReadVarint() {
  uint64_t value = 0;
  for (uint32_t shift = 0; shift < 64; shift += 7) {
    if (!Need(1, "varint")) return 0;
    const uint8_t byte = *p_++;
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      // The 10th byte may only contribute the final value bit.
      if (shift == 63 && byte > 1) {
        Fail("varint overflows 64 bits");
        return 0;
      }
      return value;
    }
  }
  Fail("varint longer than 10 bytes");
  return 0;
}

std::vector<uint8_t> SealFrame(uint32_t magic, uint32_t version,
                               Writer&& payload) {
  const std::vector<uint8_t> body = payload.Take();
  Writer out;
  out.PutU32(magic);
  out.PutU32(version);
  out.PutU64(body.size());
  out.PutU32(Crc32c(body.data(), body.size()));
  out.PutBytes(body.data(), body.size());
  std::vector<uint8_t> frame = out.Take();
  // Fault-injection site (no-op in production builds): models a torn or
  // corrupted write as the serialized frame leaves the library. OpenFrame's
  // size/CRC validation must reject every mutation with a clean Status.
  fault::MutateSealedFrame(&frame);
  return frame;
}

StatusOr<FrameInfo> ProbeFrame(ByteSpan bytes) {
  if (bytes.size() < kFrameHeaderSize) {
    return Status::DataLoss("frame truncated (shorter than a header)");
  }
  Reader header(bytes.data(), kFrameHeaderSize);
  FrameInfo info;
  info.magic = header.ReadU32();
  info.version = header.ReadU32();
  info.payload_size = header.ReadU64();
  info.crc32c = header.ReadU32();
  if (info.payload_size != bytes.size() - kFrameHeaderSize) {
    return Status::DataLoss("frame payload size mismatch");
  }
  const uint32_t actual =
      Crc32c(bytes.data() + kFrameHeaderSize, bytes.size() - kFrameHeaderSize);
  if (actual != info.crc32c) {
    return Status::DataLoss("frame payload checksum mismatch");
  }
  return info;
}

StatusOr<Reader> OpenFrame(ByteSpan bytes, uint32_t magic,
                           uint32_t max_version, const char* what) {
  const std::string name(what);
  if (bytes.size() < kFrameHeaderSize) {
    return Status::DataLoss(name + " frame truncated");
  }
  Reader header(bytes.data(), kFrameHeaderSize);
  const uint32_t actual_magic = header.ReadU32();
  const uint32_t version = header.ReadU32();
  const uint64_t payload_size = header.ReadU64();
  const uint32_t crc = header.ReadU32();
  if (actual_magic != magic) {
    return Status::DataLoss("bad " + name + " frame magic");
  }
  if (version < 1 || version > max_version) {
    return Status::DataLoss("unsupported " + name + " wire version " +
                            std::to_string(version));
  }
  if (payload_size != bytes.size() - kFrameHeaderSize) {
    return Status::DataLoss(name + " frame payload size mismatch");
  }
  const uint8_t* payload = bytes.data() + kFrameHeaderSize;
  if (Crc32c(payload, static_cast<size_t>(payload_size)) != crc) {
    return Status::DataLoss(name + " frame payload checksum mismatch");
  }
  return Reader(payload, static_cast<size_t>(payload_size));
}

uint32_t PeekMagic(ByteSpan bytes) {
  if (bytes.size() < kFrameHeaderSize) return 0;
  return Reader(bytes.data(), 4).ReadU32();
}

}  // namespace wire
}  // namespace sbf
