#include "io/delta_log.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/fault_injection.h"

namespace sbf {
namespace io {

namespace {

std::string Errno(const char* op, const std::string& path) {
  return std::string(op) + " " + path + ": " + std::strerror(errno);
}

}  // namespace

// --- encode/decode ---------------------------------------------------------

std::vector<uint8_t> EncodeWalHeader(uint64_t generation,
                                     wire::ByteSpan empty_filter_frame) {
  wire::Writer payload;
  payload.PutU64(generation);
  payload.PutFrame(empty_filter_frame);
  return wire::SealFrame(wire::kMagicWalHeader, wire::kFormatVersion,
                         std::move(payload));
}

std::vector<uint8_t> EncodeWalDeltaBatch(uint64_t sequence, bool is_remove,
                                         uint64_t count, const uint64_t* keys,
                                         size_t n) {
  wire::Writer payload;
  payload.PutU64(sequence);
  payload.PutU8(static_cast<uint8_t>(WalRecordType::kDeltaBatch));
  payload.PutU8(is_remove ? 1 : 0);
  payload.PutVarint(count);
  payload.PutVarint(n);
  payload.PutWords(keys, n);
  return wire::SealFrame(wire::kMagicWalRecord, wire::kFormatVersion,
                         std::move(payload));
}

std::vector<uint8_t> EncodeWalCheckpointSeal(uint64_t sequence,
                                             uint64_t next_generation) {
  wire::Writer payload;
  payload.PutU64(sequence);
  payload.PutU8(static_cast<uint8_t>(WalRecordType::kCheckpointSeal));
  payload.PutVarint(next_generation);
  return wire::SealFrame(wire::kMagicWalRecord, wire::kFormatVersion,
                         std::move(payload));
}

StatusOr<WalRecord> DecodeWalRecord(wire::ByteSpan frame) {
  auto reader = wire::OpenFrame(frame, wire::kMagicWalRecord,
                                wire::kFormatVersion, "WAL record");
  if (!reader.ok()) return reader.status();
  wire::Reader& in = reader.value();
  WalRecord record;
  record.sequence = in.ReadU64();
  const uint8_t type = in.ReadU8();
  switch (type) {
    case static_cast<uint8_t>(WalRecordType::kDeltaBatch): {
      record.type = WalRecordType::kDeltaBatch;
      record.is_remove = in.ReadU8() != 0;
      record.count = in.ReadVarint();
      const uint64_t n = in.ReadVarint();
      if (!in.ok()) return in.status();
      if (record.count == 0) {
        return Status::DataLoss("WAL delta batch with zero count");
      }
      if (n * 8 > in.remaining()) {
        return Status::DataLoss("WAL delta batch key count out of bounds");
      }
      record.keys.resize(static_cast<size_t>(n));
      if (!in.ReadWords(record.keys.data(), record.keys.size())) {
        return in.status();
      }
      break;
    }
    case static_cast<uint8_t>(WalRecordType::kCheckpointSeal):
      record.type = WalRecordType::kCheckpointSeal;
      record.next_generation = in.ReadVarint();
      break;
    default:
      return Status::DataLoss("unknown WAL record type " +
                              std::to_string(type));
  }
  Status end = in.ExpectEnd("WAL record");
  if (!end.ok()) return end;
  return record;
}

StatusOr<WalHeader> DecodeWalHeader(wire::ByteSpan frame) {
  auto reader = wire::OpenFrame(frame, wire::kMagicWalHeader,
                                wire::kFormatVersion, "WAL header");
  if (!reader.ok()) return reader.status();
  wire::Reader& in = reader.value();
  WalHeader header;
  header.generation = in.ReadU64();
  header.empty_filter_frame = in.ReadFrameSpan();
  if (!in.ok()) return in.status();
  Status end = in.ExpectEnd("WAL header");
  if (!end.ok()) return end;
  return header;
}

// --- scanning --------------------------------------------------------------

namespace {

// Size of the complete frame starting at `bytes`, or 0 when even the
// envelope cannot be trusted (short header or declared size past EOF).
uint64_t FrameExtent(wire::ByteSpan bytes) {
  if (bytes.size() < wire::kFrameHeaderSize) return 0;
  wire::Reader header(bytes.data(), wire::kFrameHeaderSize);
  header.ReadU32();  // magic
  header.ReadU32();  // version
  const uint64_t payload_size = header.ReadU64();
  if (payload_size > bytes.size() - wire::kFrameHeaderSize) return 0;
  return wire::kFrameHeaderSize + payload_size;
}

}  // namespace

StatusOr<LogScan> ScanLog(wire::ByteSpan bytes) {
  // The header must validate completely: a file whose FIRST frame is
  // damaged is not a recoverable WAL (there is nothing to replay), so this
  // is the one place scan failure is an error rather than a torn tail.
  const uint64_t header_extent = FrameExtent(bytes);
  if (header_extent == 0) {
    return Status::DataLoss("not a WAL: missing or short header frame");
  }
  auto header = DecodeWalHeader(bytes.subspan(0, header_extent));
  if (!header.ok()) {
    return Status::DataLoss("not a WAL: " + header.status().message());
  }

  LogScan scan;
  scan.header = header.value();
  scan.valid_bytes = header_extent;

  uint64_t offset = header_extent;
  bool have_prev_seq = false;
  uint64_t prev_seq = 0;
  while (offset < bytes.size()) {
    const wire::ByteSpan rest = bytes.subspan(offset);
    const uint64_t extent = FrameExtent(rest);
    if (extent == 0) {
      scan.torn_tail = true;
      scan.tail_reason = "short frame at offset " + std::to_string(offset);
      break;
    }
    auto record = DecodeWalRecord(rest.subspan(0, extent));
    if (!record.ok()) {
      scan.torn_tail = true;
      scan.tail_reason = "invalid record at offset " + std::to_string(offset) +
                         ": " + record.status().message();
      break;
    }
    // A sequence discontinuity means the bytes from here on belong to some
    // other history (a partially recycled file, interleaved writers);
    // replaying them would be guessing. Same rule: clean end-of-log.
    if (have_prev_seq && record.value().sequence != prev_seq + 1) {
      scan.torn_tail = true;
      scan.tail_reason =
          "sequence discontinuity at offset " + std::to_string(offset);
      break;
    }
    prev_seq = record.value().sequence;
    have_prev_seq = true;
    scan.records.push_back(std::move(record).value());
    offset += extent;
    scan.valid_bytes = offset;
  }
  scan.ignored_bytes = bytes.size() - scan.valid_bytes;
  return scan;
}

// --- file-backed appender --------------------------------------------------

DeltaLogWriter::~DeltaLogWriter() { Close(); }

DeltaLogWriter::DeltaLogWriter(DeltaLogWriter&& other) noexcept
    : fd_(other.fd_),
      offset_(other.offset_),
      sync_each_append_(other.sync_each_append_),
      wedged_(other.wedged_),
      path_(std::move(other.path_)) {
  other.fd_ = -1;
}

DeltaLogWriter& DeltaLogWriter::operator=(DeltaLogWriter&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    offset_ = other.offset_;
    sync_each_append_ = other.sync_each_append_;
    wedged_ = other.wedged_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

void DeltaLogWriter::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<DeltaLogWriter> DeltaLogWriter::Create(
    const std::string& path, uint64_t generation,
    wire::ByteSpan empty_filter_frame, bool sync_each_append) {
  const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) return Status::DataLoss(Errno("create WAL", path));
  DeltaLogWriter writer;
  writer.fd_ = fd;
  writer.path_ = path;
  writer.sync_each_append_ = sync_each_append;
  Status status = writer.Append(EncodeWalHeader(generation,
                                                empty_filter_frame));
  if (!status.ok()) return status;
  // The header must be durable before any record claims to be: a log whose
  // records survive but whose header was lost is unreadable.
  status = writer.Sync();
  if (!status.ok()) return status;
  return writer;
}

StatusOr<DeltaLogWriter> DeltaLogWriter::Resume(const std::string& path,
                                                uint64_t resume_offset,
                                                bool sync_each_append) {
  const int fd = ::open(path.c_str(), O_WRONLY, 0644);
  if (fd < 0) return Status::DataLoss(Errno("open WAL", path));
  // Drop any torn tail so the next append starts at the last valid byte —
  // otherwise the garbage would mask the new records from a later scan.
  if (::ftruncate(fd, static_cast<off_t>(resume_offset)) != 0) {
    const Status status = Status::DataLoss(Errno("truncate WAL", path));
    ::close(fd);
    return status;
  }
  if (::lseek(fd, static_cast<off_t>(resume_offset), SEEK_SET) < 0) {
    const Status status = Status::DataLoss(Errno("seek WAL", path));
    ::close(fd);
    return status;
  }
  DeltaLogWriter writer;
  writer.fd_ = fd;
  writer.path_ = path;
  writer.offset_ = resume_offset;
  writer.sync_each_append_ = sync_each_append;
  return writer;
}

Status DeltaLogWriter::Append(const std::vector<uint8_t>& frame) {
  if (fd_ < 0) return Status::FailedPrecondition("WAL writer is closed");
  if (wedged_) {
    return Status::FailedPrecondition(
        "WAL writer wedged by an earlier failed append");
  }
  size_t intended = frame.size();
  size_t injected_cut = intended;
  const bool short_write = fault::ShouldShortWrite(intended, &injected_cut);
  if (short_write) intended = injected_cut;

  size_t written = 0;
  while (written < intended) {
    const ssize_t n = ::write(fd_, frame.data() + written, intended - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      wedged_ = true;
      return Status::DataLoss(Errno("append WAL", path_));
    }
    written += static_cast<size_t>(n);
  }
  if (short_write) {
    // The injected crash: a prefix of the record is on disk, the process
    // "died". Wedge the writer so the scenario cannot keep appending past
    // its own crash point.
    offset_ += written;
    wedged_ = true;
    return Status::DataLoss("injected short write tore WAL record in " +
                            path_);
  }
  offset_ += written;
  if (sync_each_append_) return Sync();
  return Status::Ok();
}

Status DeltaLogWriter::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("WAL writer is closed");
  if (fault::ShouldFailFsync()) {
    wedged_ = true;
    return Status::DataLoss("injected fsync failure on " + path_);
  }
  if (::fsync(fd_) != 0) {
    wedged_ = true;
    return Status::DataLoss(Errno("fsync WAL", path_));
  }
  return Status::Ok();
}

Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::DataLoss(Errno("read", path));
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const Status status = Status::DataLoss(Errno("stat", path));
    ::close(fd);
    return status;
  }
  out->clear();
  out->resize(static_cast<size_t>(st.st_size));
  size_t got = 0;
  while (got < out->size()) {
    const ssize_t n = ::read(fd, out->data() + got, out->size() - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = Status::DataLoss(Errno("read", path));
      ::close(fd);
      return status;
    }
    if (n == 0) break;  // concurrent truncation; take what we got
    got += static_cast<size_t>(n);
  }
  out->resize(got);
  ::close(fd);
  return Status::Ok();
}

}  // namespace io
}  // namespace sbf
