#include "io/filter_codec.h"

#include <utility>

#include "core/blocked_sbf.h"
#include "core/concurrent_sbf.h"
#include "core/counting_bloom_filter.h"
#include "core/recurring_minimum.h"
#include "core/spectral_bloom_filter.h"
#include "core/trapping_rm.h"

namespace sbf {
namespace {

// Lifts a concrete StatusOr<Filter> into the polymorphic result.
template <typename Filter>
StatusOr<std::unique_ptr<FrequencyFilter>> Lift(StatusOr<Filter> loaded) {
  if (!loaded.ok()) return loaded.status();
  return std::unique_ptr<FrequencyFilter>(
      std::make_unique<Filter>(std::move(loaded).value()));
}

}  // namespace

StatusOr<std::unique_ptr<FrequencyFilter>> DeserializeFilter(
    wire::ByteSpan bytes) {
  switch (wire::PeekMagic(bytes)) {
    case wire::kMagicSbf:
      return Lift(SpectralBloomFilter::Deserialize(bytes));
    case wire::kMagicShardedSbf:
      return Lift(ConcurrentSbf::Deserialize(bytes));
    case wire::kMagicCountingBloom:
      return Lift(CountingBloomFilter::Deserialize(bytes));
    case wire::kMagicBlockedSbf:
    case wire::kMagicBlockedSbf2:
      return Lift(BlockedSbf::Deserialize(bytes));
    case wire::kMagicRecurringMinimum:
      return Lift(RecurringMinimumSbf::Deserialize(bytes));
    case wire::kMagicTrappingRm:
      return Lift(TrappingRmSbf::Deserialize(bytes));
    default:
      return Status::DataLoss("unknown filter frame magic");
  }
}

}  // namespace sbf
