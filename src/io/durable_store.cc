#include "io/durable_store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <utility>

#include "io/wire.h"
#include "util/fault_injection.h"
#include "util/thread_annotations.h"

namespace sbf {

namespace {

std::string Errno(const char* op, const std::string& path) {
  return std::string(op) + " " + path + ": " + std::strerror(errno);
}

// Strict `<prefix><decimal generation><suffix>` filename parse; rejects
// empty digits, non-digits and overflow so stray files never masquerade as
// generations.
bool ParseGeneration(const std::string& name, const std::string& prefix,
                     const std::string& suffix, uint64_t* generation) {
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = prefix.size(); i < name.size() - suffix.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    if (value > (UINT64_MAX - static_cast<uint64_t>(c - '0')) / 10) {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *generation = value;
  return true;
}

struct DirListing {
  std::vector<uint64_t> checkpoints;  // generations, ascending
  std::vector<uint64_t> wals;         // generations, ascending
  std::vector<std::string> tmps;      // full paths of leftover *.tmp
};

StatusOr<DirListing> ListStore(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::FailedPrecondition(Errno("open store directory", dir));
  }
  DirListing listing;
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    uint64_t generation = 0;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      listing.tmps.push_back(dir + "/" + name);
    } else if (ParseGeneration(name, "checkpoint-", ".sbf", &generation)) {
      listing.checkpoints.push_back(generation);
    } else if (ParseGeneration(name, "wal-", ".log", &generation)) {
      listing.wals.push_back(generation);
    }
    // Anything else (including *.quarantined evidence) is left alone.
  }
  ::closedir(d);
  std::sort(listing.checkpoints.begin(), listing.checkpoints.end());
  std::sort(listing.wals.begin(), listing.wals.end());
  return listing;
}

// Writes `bytes` to `path` (truncating) and fsyncs, with the injected
// short-write and fsync crash points armed — the checkpoint body shares
// the WAL's failure model.
Status WriteFileWithCrashPoints(const std::string& path,
                                wire::ByteSpan bytes) {
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return Status::DataLoss(Errno("create checkpoint", path));
  size_t intended = bytes.size();
  size_t cut = intended;
  const bool short_write = fault::ShouldShortWrite(intended, &cut);
  if (short_write) intended = cut;
  size_t written = 0;
  while (written < intended) {
    const ssize_t n = ::write(fd, bytes.data() + written, intended - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = Status::DataLoss(Errno("write checkpoint", path));
      ::close(fd);
      return status;
    }
    written += static_cast<size_t>(n);
  }
  if (short_write) {
    ::close(fd);
    return Status::DataLoss("injected short write tore checkpoint " + path);
  }
  if (fault::ShouldFailFsync()) {
    ::close(fd);
    return Status::DataLoss("injected fsync failure on " + path);
  }
  if (::fsync(fd) != 0) {
    const Status status = Status::DataLoss(Errno("fsync checkpoint", path));
    ::close(fd);
    return status;
  }
  ::close(fd);
  return Status::Ok();
}

// Makes a rename in `dir` durable: without the directory fsync the new
// name itself can be lost in a crash even though the data blocks survived.
Status FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::DataLoss(Errno("open directory", dir));
  if (::fsync(fd) != 0) {
    const Status status = Status::DataLoss(Errno("fsync directory", dir));
    ::close(fd);
    return status;
  }
  ::close(fd);
  return Status::Ok();
}

void QuarantineFile(const std::string& path) {
  const std::string aside = path + ".quarantined";
  ::rename(path.c_str(), aside.c_str());
}

// Applies one replayed record to the recovering filter. Seal records carry
// no state (they only mark that a checkpoint captured everything before
// them).
void ApplyRecord(ConcurrentSbf& filter, const io::WalRecord& record) {
  if (record.type != io::WalRecordType::kDeltaBatch) return;
  if (record.keys.empty()) return;
  if (record.is_remove) {
    for (const uint64_t key : record.keys) filter.Remove(key, record.count);
  } else {
    filter.InsertBatch(record.keys.data(), record.keys.size(), record.count);
  }
}

struct ScannedWal {
  std::vector<uint8_t> bytes;  // backing storage for scan's header span
  io::LogScan scan;
  bool ok = false;
  std::string error;
};

}  // namespace

const char* RecoveryVerdictName(RecoveryVerdict verdict) {
  switch (verdict) {
    case RecoveryVerdict::kFreshStart:
      return "fresh-start";
    case RecoveryVerdict::kClean:
      return "clean";
    case RecoveryVerdict::kTornTail:
      return "torn-tail";
    case RecoveryVerdict::kQuarantined:
      return "quarantined";
    case RecoveryVerdict::kLogOnlyRebuild:
      return "log-only-rebuild";
    case RecoveryVerdict::kUnrecoverable:
      return "unrecoverable";
  }
  return "unknown";
}

std::string DurabilityStats::ToString() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "durability: recovery=%s torn_tail=%d quarantined=%u replayed=%llu "
      "gen=%llu wal_bytes=%llu appended=%llu checkpoints=%llu retries=%llu "
      "failures=%llu age=%.3fs wedged=%d",
      RecoveryVerdictName(recovery), recovered_torn_tail ? 1 : 0,
      quarantined_checkpoints,
      static_cast<unsigned long long>(replayed_records),
      static_cast<unsigned long long>(generation),
      static_cast<unsigned long long>(wal_bytes),
      static_cast<unsigned long long>(appended_records),
      static_cast<unsigned long long>(checkpoints_written),
      static_cast<unsigned long long>(checkpoint_retries),
      static_cast<unsigned long long>(checkpoint_failures),
      checkpoint_age_seconds, wedged ? 1 : 0);
  std::string out(buf);
  if (!last_error.empty()) out += " last_error=\"" + last_error + "\"";
  return out;
}

std::string CheckpointPath(const std::string& dir, uint64_t generation) {
  return dir + "/checkpoint-" + std::to_string(generation) + ".sbf";
}

std::string WalPath(const std::string& dir, uint64_t generation) {
  return dir + "/wal-" + std::to_string(generation) + ".log";
}

StatusOr<RecoveryOutcome> RecoverStore(
    const std::string& dir, const ConcurrentSbfOptions* fresh_options) {
  auto listed = ListStore(dir);
  if (!listed.ok()) return listed.status();
  DirListing ls = std::move(listed).value();

  // A *.tmp is a checkpoint that never reached its rename — pre-atomic
  // garbage by definition, deleted unconditionally.
  for (const std::string& tmp : ls.tmps) ::unlink(tmp.c_str());

  if (ls.checkpoints.empty() && ls.wals.empty()) {
    if (fresh_options == nullptr) {
      return Status::FailedPrecondition(
          "store directory " + dir +
          " holds no checkpoint or log and no fresh configuration was given");
    }
    RecoveryOutcome out{ConcurrentSbf(*fresh_options)};
    out.verdict = RecoveryVerdict::kFreshStart;
    out.detail = "empty directory: initialized a new store";
    return out;
  }

  std::string detail;
  uint32_t quarantined = 0;
  bool torn = false;
  bool log_only = false;
  const bool had_checkpoints = !ls.checkpoints.empty();

  // Appending resumes at the highest generation any file claims, loadable
  // or not — a quarantined checkpoint-G still means generation G happened.
  uint64_t resume_gen = 0;
  for (const uint64_t g : ls.checkpoints) resume_gen = std::max(resume_gen, g);
  for (const uint64_t g : ls.wals) resume_gen = std::max(resume_gen, g);

  // Newest checkpoint that deserializes AND passes its own invariant
  // audit wins; everything newer that failed is renamed aside as evidence.
  std::optional<ConcurrentSbf> base;
  uint64_t replay_from = 0;
  for (auto it = ls.checkpoints.rbegin(); it != ls.checkpoints.rend(); ++it) {
    const std::string path = CheckpointPath(dir, *it);
    std::vector<uint8_t> bytes;
    std::string why;
    const Status read = io::ReadFileBytes(path, &bytes);
    if (read.ok()) {
      auto filter = ConcurrentSbf::Deserialize(bytes);
      if (filter.ok()) {
        Status inv = filter.value().CheckInvariants();
        if (inv.ok()) {
          base.emplace(std::move(filter).value());
          replay_from = *it;
          break;
        }
        why = inv.message();
      } else {
        why = filter.status().message();
      }
    } else {
      why = read.message();
    }
    QuarantineFile(path);
    ++quarantined;
    detail += "quarantined checkpoint generation " + std::to_string(*it) +
              " (" + why + "); ";
  }

  // Scan every log up front (retention keeps at most a handful). The scan
  // struct keeps the file bytes alive because the decoded header's
  // embedded-filter span points into them.
  std::map<uint64_t, ScannedWal> scans;
  for (const uint64_t g : ls.wals) {
    ScannedWal sw;
    const Status read = io::ReadFileBytes(WalPath(dir, g), &sw.bytes);
    if (read.ok()) {
      auto scan = io::ScanLog(sw.bytes);
      if (scan.ok()) {
        sw.scan = std::move(scan).value();
        sw.ok = true;
      } else {
        sw.error = scan.status().message();
      }
    } else {
      sw.error = read.message();
    }
    scans.emplace(g, std::move(sw));
  }

  // A log whose HEADER is destroyed is not replayable at all (the torn-
  // tail rule only applies after a valid header). Rename it aside so a
  // fresh log can take its name.
  for (auto& [g, sw] : scans) {
    if (sw.ok) continue;
    QuarantineFile(WalPath(dir, g));
    ++quarantined;
    detail += "quarantined unreadable wal generation " + std::to_string(g) +
              " (" + sw.error + "); ";
  }

  if (!base.has_value()) {
    // No checkpoint survived (or none ever existed — a young store).
    // Rebuild from the lowest scannable log's embedded empty filter, which
    // carries the store's full configuration.
    for (auto& [g, sw] : scans) {
      if (!sw.ok) continue;
      auto filter = ConcurrentSbf::Deserialize(sw.scan.header.empty_filter_frame);
      if (filter.ok()) {
        Status inv = filter.value().CheckInvariants();
        if (inv.ok()) {
          base.emplace(std::move(filter).value());
          replay_from = g;
          if (had_checkpoints) {
            log_only = true;
            detail += "no usable checkpoint; rebuilt by replaying logs from "
                      "generation " +
                      std::to_string(g) + "; ";
          }
          if (g > 0) {
            detail += "state checkpointed before generation " +
                      std::to_string(g) + " could not be reconstructed; ";
          }
          break;
        }
        detail += "wal generation " + std::to_string(g) +
                  " embedded filter failed invariants (" + inv.message() +
                  "); ";
      } else {
        detail += "wal generation " + std::to_string(g) +
                  " embedded filter unusable (" + filter.status().message() +
                  "); ";
      }
    }
    if (!base.has_value()) {
      return Status::DataLoss("unrecoverable store at " + dir +
                              ": no loadable checkpoint and no scannable "
                              "log; " +
                              detail);
    }
  }

  // Replay the surviving suffix in generation order. Logs below the base
  // checkpoint's generation are already captured by it and are skipped.
  uint64_t replayed = 0;
  uint64_t max_sequence = 0;
  for (auto& [g, sw] : scans) {
    if (!sw.ok || g < replay_from) continue;
    if (sw.scan.torn_tail) {
      torn = true;
      detail += "wal generation " + std::to_string(g) + " torn tail (" +
                sw.scan.tail_reason + "; " +
                std::to_string(sw.scan.ignored_bytes) + " bytes dropped); ";
    }
    for (const io::WalRecord& record : sw.scan.records) {
      ApplyRecord(*base, record);
      ++replayed;
      max_sequence = std::max(max_sequence, record.sequence);
    }
  }

  Status inv = base->CheckInvariants();
  if (!inv.ok()) {
    return Status::DataLoss("recovered filter failed invariants: " +
                            inv.message());
  }

  RecoveryOutcome out{std::move(*base)};
  out.quarantined = quarantined;
  out.torn_tail = torn;
  out.replayed_records = replayed;
  out.next_sequence = max_sequence + 1;
  out.resume_generation = resume_gen;
  const auto resume_it = scans.find(resume_gen);
  if (resume_it != scans.end() && resume_it->second.ok) {
    out.resume_wal_exists = true;
    out.resume_wal_valid_bytes = resume_it->second.scan.valid_bytes;
  }
  out.verdict = log_only         ? RecoveryVerdict::kLogOnlyRebuild
                : quarantined > 0 ? RecoveryVerdict::kQuarantined
                : torn            ? RecoveryVerdict::kTornTail
                                  : RecoveryVerdict::kClean;
  out.detail = detail.empty() ? "clean recovery" : detail;
  return out;
}

// --- DurableSbf ------------------------------------------------------------

DurableSbf::DurableSbf(DurableOptions options, RecoveryOutcome outcome)
    : options_(std::move(options)),
      filter_(std::move(outcome.filter)),
      generation_(outcome.resume_generation),
      next_sequence_(outcome.next_sequence),
      last_checkpoint_(std::chrono::steady_clock::now()) {
  stats_.recovery = outcome.verdict;
  stats_.recovered_torn_tail = outcome.torn_tail;
  stats_.quarantined_checkpoints = outcome.quarantined;
  stats_.replayed_records = outcome.replayed_records;
  stats_.generation = generation_;
}

StatusOr<std::unique_ptr<DurableSbf>> DurableSbf::Open(const std::string& dir,
                                                       DurableOptions options) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::FailedPrecondition(Errno("create store directory", dir));
  }
  auto recovered = RecoverStore(dir, &options.filter);
  if (!recovered.ok()) return recovered.status();
  RecoveryOutcome outcome = std::move(recovered).value();
  const bool resume = outcome.resume_wal_exists;
  const uint64_t resume_gen = outcome.resume_generation;
  const uint64_t resume_bytes = outcome.resume_wal_valid_bytes;

  std::unique_ptr<DurableSbf> store(
      new DurableSbf(std::move(options), std::move(outcome)));
  store->dir_ = dir;

  const std::string wal_path = WalPath(dir, resume_gen);
  auto writer =
      resume ? io::DeltaLogWriter::Resume(wal_path, resume_bytes,
                                          store->options_.sync_each_append)
             : io::DeltaLogWriter::Create(wal_path, resume_gen,
                                          store->EmptyFilterFrame(),
                                          store->options_.sync_each_append);
  if (!writer.ok()) return writer.status();
  {
    // No other thread can reference the store yet, but installing the log
    // under its mutex keeps wal_/stats_ access provable for the analysis.
    util::MutexLock lock(store->log_mu_);
    store->wal_ = std::move(writer).value();
    store->stats_.wal_bytes = store->wal_.bytes_written();
  }

  if (store->options_.background_checkpointer &&
      (store->options_.checkpoint_interval_ms > 0 ||
       store->options_.checkpoint_log_bytes > 0)) {
    store->checkpointer_ = std::thread(&DurableSbf::CheckpointerLoop,
                                       store.get());
  }
  return store;
}

DurableSbf::~DurableSbf() {
  {
    util::MutexLock wake(cp_wake_mu_);
    stop_ = true;
  }
  cp_wake_.notify_all();
  if (checkpointer_.joinable()) checkpointer_.join();
  util::MutexLock lock(log_mu_);
  if (wal_.open() && !wedged_ && !options_.sync_each_append) {
    // Best-effort flush of unsynced appends; with sync_each_append every
    // acked record is already durable.
    (void)wal_.Sync();
  }
  wal_.Close();
}

std::vector<uint8_t> DurableSbf::EmptyFilterFrame() const {
  return ConcurrentSbf(filter_.options()).Serialize();
}

Status DurableSbf::Insert(uint64_t key, uint64_t count) {
  return AppendAndApply(/*is_remove=*/false, count, &key, 1);
}

Status DurableSbf::Remove(uint64_t key, uint64_t count) {
  return AppendAndApply(/*is_remove=*/true, count, &key, 1);
}

Status DurableSbf::InsertBatch(const uint64_t* keys, size_t n,
                               uint64_t count) {
  return AppendAndApply(/*is_remove=*/false, count, keys, n);
}

Status DurableSbf::AppendAndApply(bool is_remove, uint64_t count,
                                  const uint64_t* keys, size_t n) {
  if (n == 0) return Status::Ok();
  if (count == 0) {
    return Status::InvalidArgument("durable update count must be nonzero");
  }
  util::MutexLock lock(log_mu_);
  if (wedged_) {
    return Status::FailedPrecondition(
        "durable store is wedged after a crash point (" + stats_.last_error +
        "); reopen the directory to recover");
  }
  const std::vector<uint8_t> frame =
      io::EncodeWalDeltaBatch(next_sequence_, is_remove, count, keys, n);
  Status append = wal_.Append(frame);
  if (!append.ok()) {
    // The record may be partially on disk; recovery's torn-tail rule
    // discards it, matching the NOT-acknowledged contract.
    wedged_ = true;
    stats_.wedged = true;
    stats_.last_error = append.message();
    return append;
  }
  ++next_sequence_;
  stats_.wal_bytes = wal_.bytes_written();
  ++stats_.appended_records;

  if (is_remove) {
    for (size_t i = 0; i < n; ++i) filter_.Remove(keys[i], count);
  } else {
    filter_.InsertBatch(keys, n, count);
  }

  if (options_.background_checkpointer && options_.checkpoint_log_bytes > 0 &&
      stats_.wal_bytes >= options_.checkpoint_log_bytes) {
    {
      util::MutexLock wake(cp_wake_mu_);
      size_trigger_ = true;
    }
    cp_wake_.notify_one();
  }
  return Status::Ok();
}

Status DurableSbf::CheckpointOnce() {
  util::MutexLock lock(log_mu_);
  if (wedged_) {
    return Status::FailedPrecondition(
        "durable store is wedged (" + stats_.last_error + ")");
  }
  // Appends are blocked for the whole protocol (we hold log_mu_), so
  // checkpoint-G cleanly captures every record of wal-(G-1) and earlier —
  // the partition invariant recovery's generation math depends on.
  filter_.Flush();
  const std::vector<uint8_t> snapshot = filter_.Serialize();
  const uint64_t next_gen = generation_ + 1;
  const std::string final_path = CheckpointPath(dir_, next_gen);
  const std::string tmp_path = final_path + ".tmp";

  Status write = WriteFileWithCrashPoints(tmp_path, snapshot);
  if (!write.ok()) return write;  // *.tmp garbage; recovery deletes it

  if (fault::ShouldFailBeforeRename()) {
    // Crash point: the finished tmp never becomes visible. Nothing durable
    // changed, so the store is NOT wedged — a retry is safe and recovery
    // would simply ignore the tmp.
    return Status::DataLoss("injected crash before checkpoint rename of " +
                            tmp_path);
  }
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return Status::DataLoss(Errno("rename checkpoint", final_path));
  }
  Status dir_sync = FsyncDir(dir_);
  const bool post_rename_crash = fault::ShouldFailAfterRename();
  if (!dir_sync.ok() || post_rename_crash) {
    // Crash point: checkpoint-(G+1) may already be visible while this
    // process still holds wal-G open. Appending further records would put
    // acked state where recovery (which replays from the NEWEST
    // checkpoint) never looks, so the store wedges; reopening the
    // directory resumes cleanly at generation G+1.
    wedged_ = true;
    stats_.wedged = true;
    stats_.last_error = post_rename_crash
                            ? "injected crash after checkpoint rename of " +
                                  final_path
                            : dir_sync.message();
    return Status::DataLoss(stats_.last_error);
  }

  // Seal the old log (diagnostic breadcrumb; the checkpoint already
  // supersedes it, so a failed seal append is not fatal) and rotate.
  Status seal =
      wal_.Append(io::EncodeWalCheckpointSeal(next_sequence_, next_gen));
  if (seal.ok()) ++next_sequence_;
  wal_.Close();

  auto next_wal =
      io::DeltaLogWriter::Create(WalPath(dir_, next_gen), next_gen,
                                 EmptyFilterFrame(),
                                 options_.sync_each_append);
  if (!next_wal.ok()) {
    // The new checkpoint is live but there is no log to append to — same
    // wedge rationale as the post-rename crash.
    wedged_ = true;
    stats_.wedged = true;
    stats_.last_error = next_wal.status().message();
    return next_wal.status();
  }
  wal_ = std::move(next_wal).value();
  generation_ = next_gen;

  // Retention: current + previous generation. Generation G-1 was only
  // needed while checkpoint G could still be quarantined; now that G+1
  // exists, drop it.
  if (next_gen >= 2) {
    const uint64_t dead = next_gen - 2;
    ::unlink(CheckpointPath(dir_, dead).c_str());
    ::unlink(WalPath(dir_, dead).c_str());
  }

  stats_.wal_bytes = wal_.bytes_written();
  stats_.generation = next_gen;
  ++stats_.checkpoints_written;
  last_checkpoint_ = std::chrono::steady_clock::now();
  return Status::Ok();
}

Status DurableSbf::CheckpointWithRetries() {
  uint64_t backoff_ms = options_.backoff_initial_ms;
  Status status = Status::Ok();
  for (uint32_t attempt = 0;; ++attempt) {
    status = CheckpointOnce();
    if (status.ok()) return status;
    {
      util::MutexLock lock(log_mu_);
      if (wedged_) break;  // crash points are terminal, never retried
    }
    if (attempt >= options_.checkpoint_retries) break;
    {
      util::MutexLock lock(log_mu_);
      ++stats_.checkpoint_retries;
    }
    {
      // Predicate-free backoff nap: a CV predicate lambda is analyzed as a
      // separate function and cannot prove it holds cp_wake_mu_, so stop_
      // is checked explicitly under the lock on both sides of the wait. A
      // spurious wakeup merely shortens one backoff sleep.
      util::MutexLock wake(cp_wake_mu_);
      if (stop_) break;
      cp_wake_.wait_for(wake.native(), std::chrono::milliseconds(backoff_ms));
      if (stop_) break;
    }
    backoff_ms = std::min<uint64_t>(backoff_ms * 2 + (backoff_ms == 0),
                                    options_.backoff_max_ms);
  }
  util::MutexLock lock(log_mu_);
  ++stats_.checkpoint_failures;
  stats_.last_error = status.message();
  return status;
}

Status DurableSbf::Checkpoint() {
  util::MutexLock serialize(checkpoint_mu_);
  return CheckpointWithRetries();
}

Status DurableSbf::SyncLog() {
  util::MutexLock lock(log_mu_);
  if (wedged_) {
    return Status::FailedPrecondition(
        "durable store is wedged (" + stats_.last_error + ")");
  }
  Status status = wal_.Sync();
  if (!status.ok()) {
    wedged_ = true;
    stats_.wedged = true;
    stats_.last_error = status.message();
  }
  return status;
}

uint64_t DurableSbf::generation() const {
  util::MutexLock lock(log_mu_);
  return generation_;
}

DurabilityStats DurableSbf::Stats() const {
  util::MutexLock lock(log_mu_);
  DurabilityStats out = stats_;
  out.generation = generation_;
  out.checkpoint_age_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    last_checkpoint_)
          .count();
  return out;
}

void DurableSbf::CheckpointerLoop() {
  for (;;) {
    const auto wait = options_.checkpoint_interval_ms > 0
                          ? std::chrono::milliseconds(
                                options_.checkpoint_interval_ms)
                          : std::chrono::milliseconds(200);
    bool size_hit = false;
    {
      // Predicate-free wait (see CheckpointWithRetries): the triggers are
      // read under the lock before sleeping and re-read after. A spurious
      // wakeup just runs one cheap trigger evaluation and loops back.
      util::MutexLock wake(cp_wake_mu_);
      if (!stop_ && !size_trigger_) {
        cp_wake_.wait_for(wake.native(), wait);
      }
      if (stop_) return;
      size_hit = size_trigger_;
      size_trigger_ = false;
    }
    bool interval_hit = false;
    {
      util::MutexLock lock(log_mu_);
      if (options_.checkpoint_interval_ms > 0) {
        interval_hit = std::chrono::steady_clock::now() - last_checkpoint_ >=
                       std::chrono::milliseconds(
                           options_.checkpoint_interval_ms);
      }
      // Re-check the size trigger directly in case the notify was missed.
      if (options_.checkpoint_log_bytes > 0 &&
          stats_.wal_bytes >= options_.checkpoint_log_bytes) {
        size_hit = true;
      }
      if (wedged_) return;  // nothing further to do; mutations are dead
    }
    if (!interval_hit && !size_hit) continue;
    util::MutexLock serialize(checkpoint_mu_);
    (void)CheckpointWithRetries();  // failures land in stats_.last_error
  }
}

}  // namespace sbf
