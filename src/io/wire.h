#ifndef SBF_IO_WIRE_H_
#define SBF_IO_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace sbf {
namespace wire {

// The library's single serialization substrate. Every persistent or
// shippable object — filters, counter backings, Bloomjoin partitions —
// encodes into one self-describing *frame*:
//
//   [u32 magic][u32 version][u64 payload_size][u32 crc32c] [payload ...]
//
// All integers are little-endian on the wire regardless of host byte
// order. `magic` identifies the frame type (one constant per structure,
// below), `version` is the format version the frame was written at,
// `payload_size` is the byte length of the payload that follows, and
// `crc32c` is the Castagnoli CRC of the payload — so truncation, length
// tampering and bit flips are all detected before any payload field is
// trusted. Frames nest: a filter frame embeds its counter backing's frame
// as a varint-length-prefixed byte string inside its own payload (the
// outer CRC then also covers the inner frame).
//
// Versioning policy: readers accept any version in [1, current] for the
// frame's type and reject newer ones with a clean DataLoss status; writers
// always emit kFormatVersion. Bumping kFormatVersion without regenerating
// tests/golden/ fails CI by design.

// A read-only byte view. std::vector<uint8_t> converts implicitly.
using ByteSpan = std::span<const uint8_t>;

// Current wire format version, written into every frame header.
inline constexpr uint32_t kFormatVersion = 1;

// Frame header: magic + version + payload size + payload CRC32C.
inline constexpr size_t kFrameHeaderSize = 4 + 4 + 8 + 4;

constexpr uint32_t FourCc(char a, char b, char c, char d) {
  return static_cast<uint32_t>(static_cast<uint8_t>(a)) |
         static_cast<uint32_t>(static_cast<uint8_t>(b)) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(c)) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(d)) << 24;
}

// Frame type magics: "SB" + a two-character type tag.
inline constexpr uint32_t kMagicBloomFilter = FourCc('S', 'B', 'b', 'f');
inline constexpr uint32_t kMagicSbf = FourCc('S', 'B', 's', 'f');
inline constexpr uint32_t kMagicShardedSbf = FourCc('S', 'B', 'c', 's');
inline constexpr uint32_t kMagicCountingBloom = FourCc('S', 'B', 'c', 'b');
inline constexpr uint32_t kMagicBlockedSbf = FourCc('S', 'B', 'b', 'k');
inline constexpr uint32_t kMagicBlockedSbf2 = FourCc('S', 'B', 'b', '2');
inline constexpr uint32_t kMagicRecurringMinimum = FourCc('S', 'B', 'r', 'm');
inline constexpr uint32_t kMagicTrappingRm = FourCc('S', 'B', 't', 'm');
inline constexpr uint32_t kMagicSlidingWindow = FourCc('S', 'B', 's', 'w');
inline constexpr uint32_t kMagicFixedCounters = FourCc('S', 'B', 'f', 'x');
inline constexpr uint32_t kMagicCompactCounters = FourCc('S', 'B', 'c', 'c');
inline constexpr uint32_t kMagicSerialScanCounters = FourCc('S', 'B', 's', 's');
inline constexpr uint32_t kMagicJoinPartition = FourCc('S', 'B', 'j', 'p');
inline constexpr uint32_t kMagicWalHeader = FourCc('S', 'B', 'w', 'h');
inline constexpr uint32_t kMagicWalRecord = FourCc('S', 'B', 'w', 'r');

// CRC32C (Castagnoli, the polynomial hardware CRC instructions implement).
uint32_t Crc32c(const uint8_t* data, size_t size);
inline uint32_t Crc32c(ByteSpan bytes) {
  return Crc32c(bytes.data(), bytes.size());
}

// --- Writer ----------------------------------------------------------------

// Append-only little-endian payload builder. Build the payload with the
// Put* primitives, then wrap it into a checksummed frame with SealFrame.
class Writer {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
  // LEB128: 7 value bits per byte, high bit = continuation.
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<uint8_t>(v));
  }
  void PutBytes(const uint8_t* data, size_t size) {
    buf_.insert(buf_.end(), data, data + size);
  }
  void PutBytes(ByteSpan bytes) { PutBytes(bytes.data(), bytes.size()); }
  // `n` 64-bit words, each little-endian.
  void PutWords(const uint64_t* words, size_t n) {
    for (size_t i = 0; i < n; ++i) PutU64(words[i]);
  }
  // Embeds a complete child frame as a varint-length-prefixed byte string.
  void PutFrame(ByteSpan frame) {
    PutVarint(frame.size());
    PutBytes(frame);
  }

  size_t size() const { return buf_.size(); }
  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

// Wraps `payload` into a complete frame: header + payload, CRC computed
// over the payload bytes.
std::vector<uint8_t> SealFrame(uint32_t magic, uint32_t version,
                               Writer&& payload);

// --- Reader ----------------------------------------------------------------

// Bounds-checked little-endian payload reader. Reads past the end never
// touch out-of-bounds memory: the reader latches a failure status, returns
// zero values from then on, and callers check ok()/status() at their
// validation points. Sizes read from the payload must still be sanity-
// checked against remaining() before they drive an allocation.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : p_(data), end_(data + size) {}
  explicit Reader(ByteSpan bytes) : Reader(bytes.data(), bytes.size()) {}

  bool ok() const { return !failed_; }
  Status status() const {
    return failed_ ? Status::DataLoss(error_) : Status::Ok();
  }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

  uint8_t ReadU8() {
    if (!Need(1, "u8")) return 0;
    return *p_++;
  }
  uint32_t ReadU32() {
    if (!Need(4, "u32")) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(*p_++) << (8 * i);
    return v;
  }
  uint64_t ReadU64() {
    if (!Need(8, "u64")) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(*p_++) << (8 * i);
    return v;
  }
  uint64_t ReadVarint();
  // Fills `out` with n little-endian words; false (and failure) on overrun.
  bool ReadWords(uint64_t* out, size_t n) {
    if (!Need(n * 8, "word block")) return false;
    for (size_t i = 0; i < n; ++i) {
      uint64_t v = 0;
      for (int b = 0; b < 8; ++b) v |= static_cast<uint64_t>(*p_++) << (8 * b);
      out[i] = v;
    }
    return true;
  }
  // Zero-copy view of the next n bytes (empty + failure on overrun).
  ByteSpan ReadSpan(size_t n) {
    if (!Need(n, "byte block")) return {};
    ByteSpan view(p_, n);
    p_ += n;
    return view;
  }
  // Reads a varint-length-prefixed embedded frame written by PutFrame.
  ByteSpan ReadFrameSpan() {
    const uint64_t len = ReadVarint();
    if (failed_) return {};
    if (len > remaining()) {
      Fail("embedded frame length out of bounds");
      return {};
    }
    return ReadSpan(static_cast<size_t>(len));
  }

  // Marks the reader failed with a custom message (first failure wins).
  void Fail(std::string message) {
    if (!failed_) {
      failed_ = true;
      error_ = std::move(message);
    }
  }

  // OK iff the payload was consumed exactly; trailing bytes are an error.
  Status ExpectEnd(const char* what) const {
    if (failed_) return status();
    if (p_ != end_) {
      return Status::DataLoss(std::string(what) + " payload has trailing garbage");
    }
    return Status::Ok();
  }

 private:
  bool Need(size_t n, const char* what) {
    if (failed_) return false;
    if (remaining() < n) {
      Fail(std::string("payload truncated reading ") + what);
      return false;
    }
    return true;
  }

  const uint8_t* p_;
  const uint8_t* end_;
  bool failed_ = false;
  std::string error_;
};

// Parsed frame header, as reported by ProbeFrame (diagnostics / tooling).
struct FrameInfo {
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t payload_size = 0;
  uint32_t crc32c = 0;
};

// Validates a frame's envelope (size, declared payload length, CRC) without
// requiring a particular magic. Tooling uses this to describe unknown files.
StatusOr<FrameInfo> ProbeFrame(ByteSpan bytes);

// Validates the complete envelope of a `magic` frame — size, magic,
// version in [1, max_version], payload length, CRC — and returns a Reader
// positioned over the payload. `bytes` must outlive the Reader. `what`
// names the structure in error messages ("SBF", "Bloom filter", ...).
StatusOr<Reader> OpenFrame(ByteSpan bytes, uint32_t magic,
                           uint32_t max_version, const char* what);

// The magic of a frame (0 if `bytes` is too short to hold a header).
uint32_t PeekMagic(ByteSpan bytes);

}  // namespace wire
}  // namespace sbf

#endif  // SBF_IO_WIRE_H_
