#ifndef SBF_IO_FILTER_CODEC_H_
#define SBF_IO_FILTER_CODEC_H_

#include <memory>

#include "core/frequency_filter.h"
#include "io/wire.h"
#include "util/status.h"

namespace sbf {

// Reconstructs any FrequencyFilter frontend from its wire frame,
// dispatching on the frame magic — the polymorphic counterpart of the
// static Deserialize on each concrete filter. Used wherever the frame type
// is only known at runtime (sliding-window inner filters, tooling, files).
StatusOr<std::unique_ptr<FrequencyFilter>> DeserializeFilter(
    wire::ByteSpan bytes);

}  // namespace sbf

#endif  // SBF_IO_FILTER_CODEC_H_
