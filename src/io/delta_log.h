#ifndef SBF_IO_DELTA_LOG_H_
#define SBF_IO_DELTA_LOG_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "io/wire.h"
#include "util/status.h"

namespace sbf {
namespace io {

// Write-ahead delta log for the durable store (io/durable_store.h): an
// append-only file of CRC-framed records in the library's one wire
// envelope, so the WAL inherits the same torn-write and bit-flip detection
// as every persisted filter. A log file is
//
//   [header frame 'SBwh'] [record frame 'SBwr']*
//
// where the header pins the log's generation and embeds a serialized
// EMPTY filter carrying the store's full configuration — recovery can
// therefore rebuild from the log alone when no checkpoint survives. Each
// record frame is a batch of identical-count key deltas:
//
//   header  payload: u64 generation, embedded empty-filter frame
//   record  payload: u64 sequence, u8 type, then per type:
//     kDeltaBatch:      u8 is_remove, varint count, varint n, n x u64 key
//     kCheckpointSeal:  varint next_generation (the checkpoint that
//                       captured everything up to this point)
//
// Sequences increase by one per record within a log; the scanner treats a
// sequence discontinuity like any other malformed record — end of log.
//
// The scanner's contract is the paranoid half of the design: a torn,
// short, or bit-flipped record at the TAIL of the log is a normal crash
// artifact and is reported as a clean end-of-log (`torn_tail`), never as
// an error. Replay consumes records strictly in file order and stops at
// the first frame that fails validation; whatever bytes follow are
// reported in `ignored_bytes` so the store can truncate them before
// appending again.

// Record types inside an 'SBwr' frame. Every enumerator here must be
// exercised by tests/crash_recovery_test.cc (sbf_lint.py rule 8,
// durable-record-coverage).
enum class WalRecordType : uint8_t {
  kDeltaBatch = 1,      // n keys, each inserted/removed `count` times
  kCheckpointSeal = 2,  // a checkpoint captured all prior state
};

// One decoded 'SBwr' record.
struct WalRecord {
  uint64_t sequence = 0;
  WalRecordType type = WalRecordType::kDeltaBatch;
  // kDeltaBatch fields.
  bool is_remove = false;
  uint64_t count = 0;
  std::vector<uint64_t> keys;
  // kCheckpointSeal field.
  uint64_t next_generation = 0;
};

// --- pure encode/decode (no file I/O; golden-testable) ---------------------

// Seals a log-header frame: generation + the embedded empty-filter frame
// that lets recovery rebuild from the log alone.
std::vector<uint8_t> EncodeWalHeader(uint64_t generation,
                                     wire::ByteSpan empty_filter_frame);

// Seals one delta-batch record frame.
std::vector<uint8_t> EncodeWalDeltaBatch(uint64_t sequence, bool is_remove,
                                         uint64_t count, const uint64_t* keys,
                                         size_t n);

// Seals one checkpoint-seal record frame.
std::vector<uint8_t> EncodeWalCheckpointSeal(uint64_t sequence,
                                             uint64_t next_generation);

// Decodes a complete 'SBwr' frame (envelope + payload validation).
StatusOr<WalRecord> DecodeWalRecord(wire::ByteSpan frame);

// Decoded 'SBwh' header: the generation plus a view of the embedded
// empty-filter frame (valid only while the backing bytes live).
struct WalHeader {
  uint64_t generation = 0;
  wire::ByteSpan empty_filter_frame;
};
StatusOr<WalHeader> DecodeWalHeader(wire::ByteSpan frame);

// --- scanning --------------------------------------------------------------

// Result of a paranoid forward scan over a log file's bytes.
struct LogScan {
  WalHeader header;
  std::vector<WalRecord> records;
  // True when the file ends in an invalid frame (short, CRC-damaged, or
  // otherwise malformed) — the normal signature of a crash mid-append.
  bool torn_tail = false;
  // Why the scan stopped early (diagnostic only; a torn tail is NOT an
  // error).
  std::string tail_reason;
  // Bytes of the file covered by the header + valid records; appending
  // must resume here (truncating anything beyond it first).
  uint64_t valid_bytes = 0;
  // Bytes after `valid_bytes` that were ignored as torn.
  uint64_t ignored_bytes = 0;
};

// Scans `bytes` (a whole log file). Fails only when the file is not a WAL
// at all (missing/invalid header frame); everything after a valid header
// is handled with the torn-tail rule.
StatusOr<LogScan> ScanLog(wire::ByteSpan bytes);

// --- file-backed appender --------------------------------------------------

// Append-only writer over one log file. Not thread-safe; the durable
// store serializes appends. Fault-injection crash points (short write,
// fsync failure) fire inside Append/Sync, and a failed append leaves the
// file exactly as a crashed process would — with a torn tail the scanner
// absorbs.
class DeltaLogWriter {
 public:
  DeltaLogWriter() = default;
  ~DeltaLogWriter();
  DeltaLogWriter(const DeltaLogWriter&) = delete;
  DeltaLogWriter& operator=(const DeltaLogWriter&) = delete;
  DeltaLogWriter(DeltaLogWriter&& other) noexcept;
  DeltaLogWriter& operator=(DeltaLogWriter&& other) noexcept;

  // Creates `path` (failing if it exists) and writes the header frame.
  static StatusOr<DeltaLogWriter> Create(const std::string& path,
                                         uint64_t generation,
                                         wire::ByteSpan empty_filter_frame,
                                         bool sync_each_append);

  // Opens an existing log for appending at `resume_offset` (the scanner's
  // valid_bytes); bytes beyond it — a torn tail — are truncated away.
  static StatusOr<DeltaLogWriter> Resume(const std::string& path,
                                         uint64_t resume_offset,
                                         bool sync_each_append);

  // Appends one sealed frame. On failure (including an injected short
  // write) the frame may be partially on disk; the writer is then wedged
  // and every later Append fails, mirroring a dead process.
  Status Append(const std::vector<uint8_t>& frame);

  // Forces written bytes to storage.
  Status Sync();

  [[nodiscard]] bool open() const noexcept { return fd_ >= 0; }
  [[nodiscard]] uint64_t bytes_written() const noexcept { return offset_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  void Close();

 private:
  int fd_ = -1;
  uint64_t offset_ = 0;
  bool sync_each_append_ = false;
  bool wedged_ = false;
  std::string path_;
};

// Reads a whole file into `out`. Shared by the durable store and tooling.
Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out);

}  // namespace io
}  // namespace sbf

#endif  // SBF_IO_DELTA_LOG_H_
