#ifndef SBF_WORKLOAD_MULTISET_STREAM_H_
#define SBF_WORKLOAD_MULTISET_STREAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sbf {

// A synthetic multiset with exact ground truth: `keys[i]` appears exactly
// `freqs[i]` times; `stream` is a random interleaving of all occurrences
// (the order the experiments feed into a filter). Every experiment in the
// benchmark suite draws its data from one of the factories below.
struct Multiset {
  std::vector<uint64_t> keys;
  std::vector<uint64_t> freqs;
  std::vector<uint64_t> stream;

  size_t num_distinct() const { return keys.size(); }
  uint64_t total() const { return stream.size(); }
  // True frequency of keys[i].
  uint64_t FrequencyOf(size_t i) const { return freqs[i]; }
};

// Builds a multiset from explicit per-key frequencies; keys are 1..n
// unless `keys` is provided. The stream is shuffled with `seed`.
Multiset MultisetFromFrequencies(std::vector<uint64_t> freqs, uint64_t seed);
Multiset MultisetFromFrequencies(std::vector<uint64_t> keys,
                                 std::vector<uint64_t> freqs, uint64_t seed);

// Zipfian multiset: n distinct keys, `total` occurrences, skew z
// (Section 6.1's synthetic setup: n = 1000, M = 100,000, z swept 0..2).
Multiset MakeZipfMultiset(uint64_t n, uint64_t total, double skew,
                          uint64_t seed);

// Uniform multiset: every key appears total/n times (+1 for the first
// total%n keys).
Multiset MakeUniformMultiset(uint64_t n, uint64_t total, uint64_t seed);

// The palindrome adversary of Section 3.3.1:
//   v_1 v_2 ... v_{n} v_{n} ... v_2 v_1
// Every key appears exactly twice; traps armed by early keys never fire.
std::vector<uint64_t> MakePalindromeStream(uint64_t n);

}  // namespace sbf

#endif  // SBF_WORKLOAD_MULTISET_STREAM_H_
