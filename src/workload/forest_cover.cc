#include "workload/forest_cover.h"

#include <cmath>
#include <vector>

#include "util/check.h"
#include "util/random.h"

namespace sbf {
namespace {

// Density of a normal mixture mimicking the elevation histogram: the real
// attribute concentrates around mid elevations with a secondary shoulder.
double MixtureDensity(double x) {
  auto normal = [](double v, double mu, double sigma) {
    const double t = (v - mu) / sigma;
    return std::exp(-0.5 * t * t) / sigma;
  };
  return 0.50 * normal(x, 0.52, 0.04) + 0.30 * normal(x, 0.40, 0.10) +
         0.20 * normal(x, 0.72, 0.10);
}

}  // namespace

Multiset MakeForestCoverElevation(const ForestCoverOptions& options) {
  SBF_CHECK_MSG(options.num_distinct >= 2, "need >= 2 distinct values");
  SBF_CHECK_MSG(options.num_records >= options.num_distinct,
                "need records >= distinct values");
  const uint64_t n = options.num_distinct;

  // Deterministic expected frequencies from the mixture density, scaled to
  // the record count; every value appears at least once, like real
  // attribute domains do.
  std::vector<double> density(n);
  double density_sum = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    const double x = (static_cast<double>(i) + 0.5) / static_cast<double>(n);
    density[i] = MixtureDensity(x);
    density_sum += density[i];
  }
  std::vector<uint64_t> freqs(n);
  uint64_t assigned = 0;
  for (uint64_t i = 0; i < n; ++i) {
    freqs[i] = std::max<uint64_t>(
        1, static_cast<uint64_t>(std::llround(
               static_cast<double>(options.num_records) * density[i] /
               density_sum)));
    assigned += freqs[i];
  }
  // Settle rounding drift on the modal value.
  size_t mode = 0;
  for (size_t i = 1; i < n; ++i) {
    if (freqs[i] > freqs[mode]) mode = i;
  }
  if (assigned > options.num_records) {
    const uint64_t excess = assigned - options.num_records;
    SBF_CHECK(freqs[mode] > excess);
    freqs[mode] -= excess;
  } else {
    freqs[mode] += options.num_records - assigned;
  }

  // Keys are plausible elevation values in meters (the UCI attribute spans
  // roughly 1,859-3,858 m over 1,978 distinct readings).
  std::vector<uint64_t> keys(n);
  for (uint64_t i = 0; i < n; ++i) keys[i] = 1859 + i;
  return MultisetFromFrequencies(std::move(keys), std::move(freqs),
                                 options.seed);
}

Multiset MakeForestCoverElevation() {
  return MakeForestCoverElevation(ForestCoverOptions{});
}

}  // namespace sbf
