#include "workload/multiset_stream.h"

#include <numeric>

#include "util/check.h"
#include "util/random.h"
#include "workload/zipf.h"

namespace sbf {

Multiset MultisetFromFrequencies(std::vector<uint64_t> keys,
                                 std::vector<uint64_t> freqs, uint64_t seed) {
  SBF_CHECK_MSG(keys.size() == freqs.size(), "keys/freqs size mismatch");
  Multiset multiset;
  multiset.keys = std::move(keys);
  multiset.freqs = std::move(freqs);

  uint64_t total = 0;
  for (uint64_t f : multiset.freqs) total += f;
  multiset.stream.reserve(total);
  for (size_t i = 0; i < multiset.keys.size(); ++i) {
    for (uint64_t c = 0; c < multiset.freqs[i]; ++c) {
      multiset.stream.push_back(multiset.keys[i]);
    }
  }
  Xoshiro256 rng(seed);
  rng.Shuffle(multiset.stream);
  return multiset;
}

Multiset MultisetFromFrequencies(std::vector<uint64_t> freqs, uint64_t seed) {
  std::vector<uint64_t> keys(freqs.size());
  std::iota(keys.begin(), keys.end(), 1);
  return MultisetFromFrequencies(std::move(keys), std::move(freqs), seed);
}

Multiset MakeZipfMultiset(uint64_t n, uint64_t total, double skew,
                          uint64_t seed) {
  ZipfDistribution zipf(n, skew);
  return MultisetFromFrequencies(zipf.ExpectedFrequencies(total), seed);
}

Multiset MakeUniformMultiset(uint64_t n, uint64_t total, uint64_t seed) {
  SBF_CHECK_MSG(n >= 1 && total >= n, "need total >= n >= 1");
  std::vector<uint64_t> freqs(n, total / n);
  for (uint64_t i = 0; i < total % n; ++i) ++freqs[i];
  return MultisetFromFrequencies(std::move(freqs), seed);
}

std::vector<uint64_t> MakePalindromeStream(uint64_t n) {
  std::vector<uint64_t> stream;
  stream.reserve(2 * n);
  for (uint64_t i = 1; i <= n; ++i) stream.push_back(i);
  for (uint64_t i = n; i >= 1; --i) stream.push_back(i);
  return stream;
}

}  // namespace sbf
