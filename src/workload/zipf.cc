#include "workload/zipf.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace sbf {

ZipfDistribution::ZipfDistribution(uint64_t n, double skew)
    : n_(n), skew_(skew) {
  SBF_CHECK_MSG(n >= 1, "Zipf needs n >= 1");
  SBF_CHECK_MSG(skew >= 0.0, "Zipf skew must be >= 0");
  cdf_.resize(n_);
  double sum = 0.0;
  for (uint64_t i = 1; i <= n_; ++i) {
    sum += std::pow(static_cast<double>(i), -skew_);
    cdf_[i - 1] = sum;
  }
  for (double& c : cdf_) c /= sum;
  cdf_.back() = 1.0;
}

double ZipfDistribution::Probability(uint64_t rank) const {
  SBF_DCHECK(rank >= 1 && rank <= n_);
  if (rank == 1) return cdf_[0];
  return cdf_[rank - 1] - cdf_[rank - 2];
}

uint64_t ZipfDistribution::Sample(Xoshiro256& rng) const {
  const double u = rng.UniformDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin()) + 1;
}

std::vector<uint64_t> ZipfDistribution::ExpectedFrequencies(
    uint64_t total) const {
  SBF_CHECK_MSG(total >= n_, "need total >= n so every rank appears");
  std::vector<uint64_t> freqs(n_);
  uint64_t assigned = 0;
  for (uint64_t i = 1; i <= n_; ++i) {
    const uint64_t f = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::llround(static_cast<double>(total) * Probability(i))));
    freqs[i - 1] = f;
    assigned += f;
  }
  // Fix rounding drift on the most frequent item (largest absolute count,
  // smallest relative distortion).
  if (assigned > total) {
    uint64_t excess = assigned - total;
    for (uint64_t i = 0; i < n_ && excess > 0; ++i) {
      const uint64_t cut = std::min(excess, freqs[i] - 1);
      freqs[i] -= cut;
      excess -= cut;
    }
  } else if (assigned < total) {
    freqs[0] += total - assigned;
  }
  return freqs;
}

}  // namespace sbf
