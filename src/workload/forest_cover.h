#ifndef SBF_WORKLOAD_FOREST_COVER_H_
#define SBF_WORKLOAD_FOREST_COVER_H_

#include <cstdint>

#include "workload/multiset_stream.h"

namespace sbf {

// Synthetic substitute for the UCI KDD "Forest Cover Type" database used
// in the paper's Figure 7 experiment (the elevation attribute: 581,012
// records over 1,978 distinct values).
//
// SUBSTITUTION NOTE (see DESIGN.md): the original archive is not available
// offline. The experiment only depends on the multiset's frequency
// profile, so this generator reproduces its qualitative shape — a smooth,
// unimodal elevation histogram (a mixture of truncated normals peaking
// around 1,600-1,800 occurrences for the most frequent values, Figure 7a)
// over the same record/distinct-value counts. The SBF error behaviour is
// driven by that profile, not by the semantic values.
struct ForestCoverOptions {
  uint64_t num_records = 581012;
  uint64_t num_distinct = 1978;
  uint64_t seed = 0x0F0E57;
};

Multiset MakeForestCoverElevation(const ForestCoverOptions& options);
Multiset MakeForestCoverElevation();

}  // namespace sbf

#endif  // SBF_WORKLOAD_FOREST_COVER_H_
