#ifndef SBF_WORKLOAD_ZIPF_H_
#define SBF_WORKLOAD_ZIPF_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace sbf {

// Zipfian distribution over ranks 1..n (paper Section 2.3): the i-th most
// frequent item has probability p_i = c / i^z, with z the skew (z = 0 is
// uniform). Real data sets are commonly well described by such a law
// [Zip49], which is why every accuracy experiment in the paper sweeps z.
class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t n, double skew);

  uint64_t n() const { return n_; }
  double skew() const { return skew_; }

  // Probability of rank i (1-indexed).
  double Probability(uint64_t rank) const;

  // Samples a rank in [1, n] (inverse-CDF with binary search, O(log n)).
  uint64_t Sample(Xoshiro256& rng) const;

  // Expected frequencies for a multiset of `total` occurrences: frequency
  // of rank i is round(total * p_i), clamped so that every rank appears at
  // least once and the grand total is exactly `total`. This deterministic
  // profile is what the paper's experiments hash (exact ground truth).
  std::vector<uint64_t> ExpectedFrequencies(uint64_t total) const;

 private:
  uint64_t n_;
  double skew_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i+1)
};

}  // namespace sbf

#endif  // SBF_WORKLOAD_ZIPF_H_
