// Section 5.3 application: distributed joins. Compares the network cost
// and accuracy of (i) shipping the whole detail relation, (ii) the classic
// Bloomjoin [ML86], (iii) the one-round Spectral Bloomjoin aggregate
// query, and (iv) its verified (exact) variant — across detail-relation
// match rates.

#include <vector>

#include "common/harness.h"
#include "db/bloomjoin.h"
#include "util/random.h"

using sbf::DistributedJoinResult;
using sbf::Relation;
using sbf::TablePrinter;
using sbf::Xoshiro256;

namespace {

void AddRow(TablePrinter* table, const char* method, double match_pct,
            const DistributedJoinResult& result) {
  table->AddRow(
      {TablePrinter::Fmt(match_pct, 0), method,
       TablePrinter::FmtInt(result.network.bytes_sent),
       TablePrinter::FmtInt(result.network.rounds),
       TablePrinter::FmtInt(result.groups.size()),
       TablePrinter::FmtInt(result.false_groups),
       TablePrinter::FmtInt(result.missed_groups),
       TablePrinter::Fmt(
           static_cast<double>(result.result_tuples) /
               std::max<uint64_t>(result.exact_tuples, 1),
           3)});
}

}  // namespace

int main() {
  constexpr uint64_t kRKeys = 1000;
  constexpr uint64_t kSTuples = 50000;
  constexpr uint64_t kM = 22000;  // gamma ~ 0.7 for S's ~3000 distinct keys
  constexpr uint32_t kK = 5;

  sbf::bench::PrintHeader(
      "Section 5.3 - Bloomjoin family: network cost and accuracy",
      "R: 1000 unique keys; S: 50000 tuples, varying match rate; SBF m = "
      "22000, k = 5; HAVING count >= 25");

  TablePrinter table({"match %", "method", "bytes", "rounds", "groups",
                      "false groups", "missed groups", "tuples/exact"});

  for (double match : {0.1, 0.5, 0.9}) {
    Relation r("R"), s("S");
    for (uint64_t key = 1; key <= kRKeys; ++key) r.Add(key, key);
    Xoshiro256 rng(0xB7001ull);
    for (uint64_t i = 0; i < kSTuples; ++i) {
      if (rng.UniformDouble() < match) {
        s.Add(rng.UniformInt(kRKeys) + 1, i);
      } else {
        s.Add(kRKeys + 1 + rng.UniformInt(kRKeys * 2), i);
      }
    }

    AddRow(&table, "ship-all", match * 100, ShipAllJoin(r, s));
    AddRow(&table, "bloomjoin", match * 100,
           ClassicBloomjoin(r, s, kM, kK, 7));
    AddRow(&table, "spectral", match * 100,
           SpectralBloomjoin(r, s, kM, kK, 25, 7));
    AddRow(&table, "spectral+verify", match * 100,
           VerifiedSpectralBloomjoin(r, s, kM, kK, 25, 7));
  }
  table.Print();
  return 0;
}
