// Table 1: error rates with and without the recurring-minimum secondary
// SBF. Setup per the paper: k = 5, n = 1000 distinct keys, Zipf skew 0.5,
// secondary SBF of size m_s = m/2, gamma in {1, 0.83, 0.7, 0.625, 0.5}.
//
// The paper's table combines measured quantities (P(R_x), P(E_x|R_x)) with
// the analytic secondary Bloom error into the model
//   E_RM = P(R_x) P(E_x|R_x) + (1 - P(R_x)) E_b^s
// and reports the gain E_b / E_RM. We print that model *and* the directly
// measured RM error ratio (the model ignores late-detection inflation, so
// the measured gain is smaller — see EXPERIMENTS.md).

#include <memory>

#include "common/harness.h"
#include "core/analysis.h"
#include "core/recurring_minimum.h"
#include "workload/multiset_stream.h"

using sbf::ErrorStats;
using sbf::Multiset;
using sbf::RecurringMinimumOptions;
using sbf::RecurringMinimumSbf;
using sbf::TablePrinter;

int main() {
  constexpr uint64_t kN = 1000;
  constexpr uint64_t kTotal = 50000;
  constexpr uint32_t kK = 5;
  const double gammas[] = {1.0, 0.83, 0.7, 0.625, 0.5};

  sbf::bench::PrintHeader(
      "Table 1 - Recurring Minimum error decomposition",
      "k = 5, n = 1000, Zipf skew 0.5, secondary m_s = m/2; averaged over 5 "
      "runs");

  TablePrinter table({"gamma", "E_b", "P(R_x)", "P(E_x|R_x)", "gamma_s",
                      "E_b^s", "E_RM(model)", "E_RM(measured)",
                      "gain(model)", "gain(measured)"});

  for (double gamma : gammas) {
    const uint64_t m = static_cast<uint64_t>(kN * kK / gamma);
    double p_rx_sum = 0.0, p_ex_rx_sum = 0.0, measured_sum = 0.0;

    for (int run = 0; run < sbf::bench::kRuns; ++run) {
      const uint64_t seed = 0x7AB1Eull + run * 7919;
      const Multiset data = sbf::MakeZipfMultiset(kN, kTotal, 0.5, seed);

      RecurringMinimumOptions options;
      options.primary_m = m;
      options.secondary_m = m / 2;
      options.k = kK;
      options.seed = seed * 31;
      options.backing = sbf::CounterBacking::kFixed64;
      RecurringMinimumSbf rm(options);
      for (uint64_t key : data.stream) rm.Insert(key);

      size_t recurring = 0, recurring_errors = 0, errors = 0;
      for (size_t i = 0; i < data.keys.size(); ++i) {
        const uint64_t key = data.keys[i];
        if (rm.primary().HasRecurringMinimum(key)) {
          ++recurring;
          recurring_errors += (rm.primary().Estimate(key) != data.freqs[i]);
        }
        errors += (rm.Estimate(key) != data.freqs[i]);
      }
      p_rx_sum += static_cast<double>(recurring) / kN;
      p_ex_rx_sum += recurring == 0
                         ? 0.0
                         : static_cast<double>(recurring_errors) / recurring;
      measured_sum += static_cast<double>(errors) / kN;
    }

    const double p_rx = p_rx_sum / sbf::bench::kRuns;
    const double p_ex_rx = p_ex_rx_sum / sbf::bench::kRuns;
    const double measured = measured_sum / sbf::bench::kRuns;
    const double e_b = sbf::BloomErrorRate(gamma, kK);
    const double gamma_s = kN * (1.0 - p_rx) * kK / (m / 2.0);
    const double e_b_s = sbf::BloomErrorRate(gamma_s, kK);
    const double e_rm_model = p_rx * p_ex_rx + (1.0 - p_rx) * e_b_s;

    table.AddRow({TablePrinter::Fmt(gamma, 3), TablePrinter::Fmt(e_b, 3),
                  TablePrinter::Fmt(p_rx, 3), TablePrinter::Fmt(p_ex_rx, 4),
                  TablePrinter::Fmt(gamma_s, 3),
                  TablePrinter::FmtSci(e_b_s, 2),
                  TablePrinter::FmtSci(e_rm_model, 2),
                  TablePrinter::Fmt(measured, 4),
                  e_rm_model > 0 ? TablePrinter::Fmt(e_b / e_rm_model, 1)
                                 : "inf",
                  measured > 0 ? TablePrinter::Fmt(e_b / measured, 1)
                               : "inf"});
  }
  table.Print();
  return 0;
}
