// Figure 15: the *additional* storage (beyond the counter values) needed
// by the string-array index vs by a conventional hash table, which must
// store its keys to resolve collisions. Hash-table storage is given by the
// paper's two models — loose m*log2(m) and tight sum_{i<=m} log2(i) — plus
// the actual footprint of our chaining implementation.
//
// Paper shape: a clear advantage to the string-array index.

#include <vector>

#include "common/harness.h"
#include "db/chaining_hash_table.h"
#include "sai/compact_counter_vector.h"
#include "sai/string_array_index.h"
#include "util/random.h"

using sbf::ChainingHashTable;
using sbf::CompactCounterVector;
using sbf::StringArrayIndex;
using sbf::TablePrinter;
using sbf::Xoshiro256;

int main() {
  const std::vector<size_t> sizes{1000,  5000,   10000, 25000,
                                  50000, 100000, 250000, 500000};

  sbf::bench::PrintHeader(
      "Figure 15 - index overhead: string-array index vs hash-table keys",
      "n counters at average frequency 10 (10n uniform increments over n "
      "distinct keys); bits of storage beyond the counter values");

  TablePrinter table({"n", "SAI overhead (freq 0)", "SAI overhead (freq 10)",
                      "hash m*log2(m)", "hash sum log2(i)",
                      "chaining actual"});
  for (size_t n : sizes) {
    CompactCounterVector empty(n);
    std::vector<uint32_t> widths(n, 1);
    StringArrayIndex empty_index(widths);

    CompactCounterVector filled(n);
    Xoshiro256 rng(0x0F15ull + n);
    ChainingHashTable hash(n, 7);
    for (size_t i = 0; i < 10 * n; ++i) {
      const uint64_t key = rng.UniformInt(n);
      filled.Increment(key, 1);
      hash.Insert(key);
    }
    filled.ForceRebuild();
    for (size_t i = 0; i < n; ++i) widths[i] = filled.WidthOf(i);
    StringArrayIndex filled_index(widths);

    table.AddRow(
        {TablePrinter::FmtInt(n),
         TablePrinter::FmtInt(empty_index.IndexBits() + empty.OverheadBits()),
         TablePrinter::FmtInt(filled_index.IndexBits() +
                              filled.OverheadBits()),
         TablePrinter::FmtInt(static_cast<uint64_t>(
             ChainingHashTable::ModelBitsLoose(hash.size()))),
         TablePrinter::FmtInt(static_cast<uint64_t>(
             ChainingHashTable::ModelBitsTight(hash.size()))),
         TablePrinter::FmtInt(hash.MemoryUsageBits())});
  }
  table.Print();
  return 0;
}
