// Figure 4: iceberg-query error rates for Zipfian data of several skews
// against the threshold (as % of the maximal item frequency). Parameters
// per the paper: k = 5, gamma = 1 (a filter smaller than optimal). The
// visible shape: error rises for small T, peaks, then falls; the peak
// moves left as skew grows; the curve never exceeds the Bloom error 0.1.
//
// The analytic model (Section 5.2) is printed next to a measured column
// obtained by streaming the data into an SBF and thresholding.

#include <algorithm>
#include <vector>

#include "common/harness.h"
#include "core/analysis.h"
#include "core/spectral_bloom_filter.h"
#include "workload/multiset_stream.h"

using sbf::Multiset;
using sbf::TablePrinter;

int main() {
  constexpr uint64_t kN = 1000;
  constexpr uint64_t kTotal = 100000;
  constexpr uint32_t kK = 5;
  constexpr double kGamma = 1.0;
  const uint64_t m = static_cast<uint64_t>(kN * kK / kGamma);
  const std::vector<double> skews{0.0, 0.4, 0.8, 1.2};
  const std::vector<int> threshold_pcts{2, 5, 10, 20, 40, 60, 80};

  sbf::bench::PrintHeader(
      "Figure 4 - iceberg error rate vs threshold (analytic model)",
      "k = 5, gamma = 1, n = 1000, M = 100000; threshold as % of max "
      "frequency");

  for (double skew : skews) {
    const auto pmf = sbf::ZipfFrequencyPmf(kN, kTotal, skew);
    const uint64_t max_freq = pmf.size() - 1;

    TablePrinter table({"T (% of max)", "T (absolute)", "E model",
                        "E measured", "Bloom error"});
    for (int pct : threshold_pcts) {
      const uint64_t threshold =
          std::max<uint64_t>(1, max_freq * pct / 100);
      const double model =
          sbf::IcebergErrorRate(pmf, kGamma, kK, threshold);

      // Measured: fraction of below-threshold items wrongly reported.
      double measured_sum = 0.0;
      for (int run = 0; run < sbf::bench::kRuns; ++run) {
        const uint64_t seed = 0xF16ull + run * 6029;
        const Multiset data = sbf::MakeZipfMultiset(kN, kTotal, skew, seed);
        sbf::SbfOptions options;
        options.m = m;
        options.k = kK;
        options.seed = seed * 3;
        options.backing = sbf::CounterBacking::kFixed64;
        sbf::SpectralBloomFilter filter(options);
        for (uint64_t key : data.stream) filter.Insert(key);
        size_t false_heavy = 0;
        for (size_t i = 0; i < data.keys.size(); ++i) {
          if (data.freqs[i] < threshold &&
              filter.Estimate(data.keys[i]) >= threshold) {
            ++false_heavy;
          }
        }
        measured_sum += static_cast<double>(false_heavy) / kN;
      }

      table.AddRow({TablePrinter::FmtInt(pct),
                    TablePrinter::FmtInt(threshold),
                    TablePrinter::Fmt(model, 4),
                    TablePrinter::Fmt(measured_sum / sbf::bench::kRuns, 4),
                    TablePrinter::Fmt(sbf::BloomErrorRate(kGamma, kK), 3)});
    }
    std::printf("skew z = %.1f (max frequency %llu):\n", skew,
                static_cast<unsigned long long>(max_freq));
    table.Print();
    std::printf("\n");
  }
  return 0;
}
