// Figure 1: analytic expected relative error E'(RE_i^z) for data-set items
// ordered by decreasing frequency, for Zipfian skews z in
// {0.2, 0.6, 1.0, 1.4, 1.8, 2.0}, n = 10,000 distinct items, k = 5.
//
// Reproduces the closed-form curves of Section 2.3 (Equation (1)); the
// paper-visible properties are (a) each curve rises monotonically with the
// rank and (b) the curves cross: high skews start lower and end higher.

#include <vector>

#include "common/harness.h"
#include "core/analysis.h"
#include "util/table_printer.h"

int main() {
  constexpr uint64_t kN = 10000;
  constexpr uint32_t kK = 5;
  const std::vector<double> skews{0.2, 0.6, 1.0, 1.4, 1.8, 2.0};
  const std::vector<uint64_t> ranks{1,    500,  1000, 2000, 3000,
                                    4000, 5000, 6000, 7000, 8000,
                                    9000, 10000};

  sbf::bench::PrintHeader(
      "Figure 1 - expected relative error vs item rank (analytic)",
      "n = 10000 distinct items, k = 5; E'(RE_i^z) of Equation (1)");

  std::vector<std::string> headers{"rank"};
  for (double z : skews) {
    headers.push_back("z=" + sbf::TablePrinter::Fmt(z, 1));
  }
  sbf::TablePrinter table(headers);
  for (uint64_t rank : ranks) {
    std::vector<std::string> row{sbf::TablePrinter::FmtInt(rank)};
    for (double z : skews) {
      row.push_back(sbf::TablePrinter::Fmt(
          sbf::ZipfExpectedRelativeError(rank, kN, kK, z), 4));
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  // The crossover property the paper highlights.
  const double high_front = sbf::ZipfExpectedRelativeError(100, kN, kK, 1.8);
  const double low_front = sbf::ZipfExpectedRelativeError(100, kN, kK, 0.2);
  const double high_back = sbf::ZipfExpectedRelativeError(9999, kN, kK, 1.8);
  const double low_back = sbf::ZipfExpectedRelativeError(9999, kN, kK, 0.2);
  std::printf(
      "\ncrossover check: frequent items  z=1.8 %.4f %s z=0.2 %.4f\n"
      "                 rare items      z=1.8 %.4f %s z=0.2 %.4f\n",
      high_front, high_front < low_front ? "<" : ">=", low_front, high_back,
      high_back > low_back ? ">" : "<=", low_back);
  return 0;
}
