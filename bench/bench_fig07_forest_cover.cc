// Figure 7: the three lookup schemes on the Forest Cover Type elevation
// attribute (581,012 records, 1,978 distinct values — synthetic substitute,
// see DESIGN.md) while gamma varies via the SBF size. The paper reports
// results "consistent with the synthetic data-sets": MI and RM beat MS,
// with a slight advantage to MI.
//
// Also prints the frequency profile summary standing in for Figure 7a.

#include <algorithm>
#include <vector>

#include "common/harness.h"
#include "workload/forest_cover.h"

using sbf::ErrorStats;
using sbf::Multiset;
using sbf::TablePrinter;
using namespace sbf::bench;

int main() {
  const Multiset data = sbf::MakeForestCoverElevation();
  const uint64_t n = data.num_distinct();

  PrintHeader("Figure 7a - elevation frequency profile (synthetic)",
              "581012 records over 1978 distinct values");
  std::vector<uint64_t> sorted = data.freqs;
  std::sort(sorted.begin(), sorted.end());
  TablePrinter profile({"percentile of values", "frequency"});
  for (int pct : {0, 10, 25, 50, 75, 90, 99, 100}) {
    const size_t index =
        std::min(sorted.size() - 1, sorted.size() * pct / 100);
    profile.AddRow({TablePrinter::FmtInt(pct),
                    TablePrinter::FmtInt(sorted[index])});
  }
  profile.Print();

  PrintHeader("Figure 7b/7c - additive error and error ratio vs gamma",
              "k = 5; RM splits the same total m; single deterministic "
              "dataset, filters re-seeded over 5 runs");

  const std::vector<double> gammas{0.2, 0.4, 0.6, 0.7, 0.9, 1.1, 1.3};
  TablePrinter table({"gamma", "m", "E_add MS", "E_add MI", "E_add RM",
                      "E_ratio MS", "E_ratio MI", "E_ratio RM"});
  for (double gamma : gammas) {
    const uint64_t m = static_cast<uint64_t>(n * 5 / gamma);
    std::vector<std::string> row{TablePrinter::Fmt(gamma, 2),
                                 TablePrinter::FmtInt(m)};
    std::vector<ErrorStats> stats;
    for (Algorithm algorithm : AllAlgorithms()) {
      stats.push_back(AverageRuns([&](uint64_t seed) {
        auto filter = MakeFilter(algorithm, m, 5, seed);
        return MeasureAccuracy(*filter, data);
      }));
    }
    for (const ErrorStats& s : stats) {
      row.push_back(TablePrinter::Fmt(s.AdditiveError(), 2));
    }
    for (const ErrorStats& s : stats) {
      row.push_back(TablePrinter::Fmt(s.ErrorRatio(), 4));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
