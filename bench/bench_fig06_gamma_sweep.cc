// Figure 6: accuracy of the MS, MI and RM lookup schemes on synthetic
// Zipfian data (n = 1000 distinct values, M = 100,000 total).
//
//  (a) additive error vs gamma = nk/m, k = 5   (gamma 0.12 .. 2)
//  (b) error ratio vs gamma                     (same sweep)
//  (c) additive error vs k at fixed gamma = 0.7 (k = 1 .. 6)
//
// Paper shape: MI best and most stable; RM between MI and MS; all three
// degrade as gamma grows; MI improves sharply with k, RM needs k >= 3.
// RM charges primary + secondary against the same total m (Section 6.1).

#include <vector>

#include "common/harness.h"

using sbf::ErrorStats;
using sbf::Multiset;
using sbf::TablePrinter;
using namespace sbf::bench;

int main() {
  constexpr uint64_t kN = 1000;
  constexpr uint64_t kTotal = 100000;
  constexpr double kSkew = 0.5;

  PrintHeader("Figure 6a/6b - MS/MI/RM accuracy vs gamma",
              "n = 1000, M = 100000, Zipf 0.5, k = 5; RM splits the same "
              "total m; averaged over 5 runs");

  const std::vector<double> gammas{0.12, 0.25, 0.4, 0.5, 0.7,
                                   0.85, 1.0,  1.3, 1.6, 2.0};
  TablePrinter sweep({"gamma", "m", "E_add MS", "E_add MI", "E_add RM",
                      "E_ratio MS", "E_ratio MI", "E_ratio RM"});
  for (double gamma : gammas) {
    const uint64_t m = static_cast<uint64_t>(kN * 5 / gamma);
    std::vector<std::string> row{TablePrinter::Fmt(gamma, 2),
                                 TablePrinter::FmtInt(m)};
    std::vector<ErrorStats> stats;
    for (Algorithm algorithm : AllAlgorithms()) {
      stats.push_back(AverageRuns([&](uint64_t seed) {
        const Multiset data = sbf::MakeZipfMultiset(kN, kTotal, kSkew, seed);
        auto filter = MakeFilter(algorithm, m, 5, seed * 3);
        return MeasureAccuracy(*filter, data);
      }));
    }
    for (const ErrorStats& s : stats) {
      row.push_back(TablePrinter::Fmt(s.AdditiveError(), 2));
    }
    for (const ErrorStats& s : stats) {
      row.push_back(TablePrinter::Fmt(s.ErrorRatio(), 4));
    }
    sweep.AddRow(std::move(row));
  }
  sweep.Print();

  PrintHeader("Figure 6c - additive error vs k at gamma = 0.7",
              "n = 1000, M = 100000, Zipf 0.5; m grows with k to hold gamma");
  TablePrinter ks({"k", "m", "E_add MS", "E_add MI", "E_add RM"});
  for (uint32_t k = 1; k <= 6; ++k) {
    const uint64_t m = static_cast<uint64_t>(kN * k / 0.7);
    std::vector<std::string> row{TablePrinter::FmtInt(k),
                                 TablePrinter::FmtInt(m)};
    for (Algorithm algorithm : AllAlgorithms()) {
      const ErrorStats stats = AverageRuns([&](uint64_t seed) {
        const Multiset data = sbf::MakeZipfMultiset(kN, kTotal, kSkew, seed);
        auto filter = MakeFilter(algorithm, m, k, seed * 3);
        return MeasureAccuracy(*filter, data);
      });
      row.push_back(TablePrinter::Fmt(stats.AdditiveError(), 2));
    }
    ks.AddRow(std::move(row));
  }
  ks.Print();
  return 0;
}
