// Degradation study: how accuracy decays as an SBF overfills, how the
// live health verdict (util/health.h) tracks that decay, and what online
// expansion (ExpandTo) buys.
//
// Part 1 sweeps the load (distinct items per counter) at fixed m and
// reports, side by side, the health snapshot's *predicted* error (fill^k,
// the paper's Section 2.1 estimate on observed occupancy) and the
// *measured* error ratio / E_add — the prediction should track the
// measurement closely enough to drive ExpandIfDegraded.
//
// Part 2 takes an overloaded filter, expands it 4x, and feeds both the
// expanded filter and an unexpanded control the same second wave of fresh
// keys: expansion cannot repair the first wave's collisions (the fold
// preserves estimates exactly), but the second wave's error collapses.
//
// Emits BENCH_degradation.json (ns_per_op = per-key Estimate latency).

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bench_json.h"
#include "common/harness.h"
#include "core/spectral_bloom_filter.h"
#include "util/health.h"
#include "util/metrics.h"
#include "util/table_printer.h"
#include "workload/multiset_stream.h"

namespace {

constexpr uint64_t kM = 8192;
constexpr uint32_t kK = 5;
constexpr double kZipfSkew = 1.0;

double EstimateNsPerOp(const sbf::SpectralBloomFilter& filter,
                       const std::vector<uint64_t>& keys) {
  const auto start = std::chrono::steady_clock::now();
  uint64_t sink = 0;
  for (uint64_t key : keys) sink += filter.Estimate(key);
  const auto stop = std::chrono::steady_clock::now();
  const double ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
          .count());
  // Keep the loop from being optimized away.
  if (sink == ~uint64_t{0}) std::printf("impossible\n");
  return ns / static_cast<double>(keys.size());
}

sbf::SpectralBloomFilter MakeFilter(uint64_t m, uint64_t seed) {
  sbf::SbfOptions options;
  options.m = m;
  options.k = kK;
  options.seed = seed;
  options.backing = sbf::CounterBacking::kFixed64;
  return sbf::SpectralBloomFilter(options);
}

}  // namespace

int main() {
  using sbf::bench::BenchJson;
  sbf::bench::PrintHeader(
      "Degradation - health verdict vs measured error under overload",
      "m = 8192, k = 5, zipf 1.0; predicted fpr = fill^k from Health()");

  BenchJson json("BENCH_degradation.json");

  // --- Part 1: load sweep --------------------------------------------------
  sbf::TablePrinter table({"distinct", "fill", "pred_fpr", "err_ratio",
                           "E_add", "verdict", "est ns/op"});
  for (const uint64_t distinct : {512u, 1024u, 2048u, 4096u, 8192u, 16384u}) {
    sbf::ErrorStats stats;
    sbf::FilterHealth health;
    double ns_per_op = 0.0;
    for (int run = 0; run < sbf::bench::kRuns; ++run) {
      const uint64_t seed = 0x5BF5EEDull + static_cast<uint64_t>(run) * 7919;
      sbf::SpectralBloomFilter filter = MakeFilter(kM, seed);
      const sbf::Multiset data =
          sbf::MakeZipfMultiset(distinct, distinct * 8, kZipfSkew, seed);
      for (uint64_t key : data.stream) filter.Insert(key);
      for (size_t i = 0; i < data.keys.size(); ++i) {
        stats.Record(filter.Estimate(data.keys[i]), data.freqs[i]);
      }
      if (run == 0) health = filter.Health();
      ns_per_op += EstimateNsPerOp(filter, data.keys) / sbf::bench::kRuns;
    }
    table.AddRow({sbf::TablePrinter::FmtInt(distinct),
                  sbf::TablePrinter::Fmt(health.fill_ratio, 4),
                  sbf::TablePrinter::Fmt(health.estimated_fpr, 4),
                  sbf::TablePrinter::Fmt(stats.ErrorRatio(), 4),
                  sbf::TablePrinter::Fmt(stats.AdditiveError(), 2),
                  sbf::HealthStateName(health.state),
                  sbf::TablePrinter::Fmt(ns_per_op, 1)});
    json.Add("degradation/load_sweep",
             {{"distinct", distinct},
              {"fill", health.fill_ratio},
              {"predicted_fpr", health.estimated_fpr},
              {"error_ratio", stats.ErrorRatio()},
              {"e_add", stats.AdditiveError()},
              {"verdict", sbf::HealthStateName(health.state)}},
             ns_per_op, 1e3 / ns_per_op);
  }
  table.Print();

  // --- Part 2: expansion headroom ------------------------------------------
  // Expansion at the moment Health() first says DEGRADED (the designed
  // trigger for ExpandIfDegraded): it cannot repair the first wave's
  // collisions — the fold preserves those estimates bit-for-bit — but the
  // second wave of fresh keys spreads over the grown table.
  sbf::bench::PrintHeader(
      "Degradation - second-wave error with and without ExpandIfDegraded",
      "wave 1: 2048 distinct keys push m = 8192 to DEGRADED; wave 2: 4096 "
      "fresh keys land on the expanded (16384) or the original filter");
  sbf::TablePrinter part2({"filter", "m after", "fill", "pred_fpr",
                           "wave2 err_ratio", "wave2 E_add"});
  for (const bool expand : {false, true}) {
    sbf::ErrorStats wave2;
    sbf::FilterHealth health;
    uint64_t m_after = 0;
    for (int run = 0; run < sbf::bench::kRuns; ++run) {
      const uint64_t seed = 0xD16E5Dull + static_cast<uint64_t>(run) * 104729;
      sbf::SpectralBloomFilter filter = MakeFilter(kM, seed);
      const sbf::Multiset wave1 =
          sbf::MakeZipfMultiset(2048, 2048 * 8, kZipfSkew, seed);
      for (uint64_t key : wave1.stream) filter.Insert(key);
      if (expand) {
        auto expanded = filter.ExpandIfDegraded();
        if (!expanded.ok() || !expanded.value()) return 1;
      }
      m_after = filter.m();
      // Fresh keys disjoint from wave 1 (Multiset keys are dense ranks, so
      // offset far past them).
      const sbf::Multiset raw =
          sbf::MakeZipfMultiset(4096, 4096 * 8, kZipfSkew, seed ^ 0xBEEF);
      constexpr uint64_t kOffset = 1u << 20;
      for (uint64_t key : raw.stream) filter.Insert(key + kOffset);
      for (size_t i = 0; i < raw.keys.size(); ++i) {
        wave2.Record(filter.Estimate(raw.keys[i] + kOffset), raw.freqs[i]);
      }
      if (run == 0) health = filter.Health();
    }
    part2.AddRow({expand ? "expanded 2x" : "control",
                  sbf::TablePrinter::FmtInt(m_after),
                  sbf::TablePrinter::Fmt(health.fill_ratio, 4),
                  sbf::TablePrinter::Fmt(health.estimated_fpr, 4),
                  sbf::TablePrinter::Fmt(wave2.ErrorRatio(), 4),
                  sbf::TablePrinter::Fmt(wave2.AdditiveError(), 2)});
    json.Add("degradation/second_wave",
             {{"filter", expand ? "expanded" : "control"},
              {"m_after", m_after},
              {"fill", health.fill_ratio},
              {"predicted_fpr", health.estimated_fpr},
              {"error_ratio", wave2.ErrorRatio()},
              {"e_add", wave2.AdditiveError()}},
             0.0, 0.0);
  }
  part2.Print();

  return json.WriteFile() ? 0 : 1;
}
