// Figure 9: sliding-window scenario — M items streamed, the filter tracks
// only the most recent M/5 (expiring data explicitly deleted). Accuracy of
// MS / RM / MI against the true window contents, across Zipf skews
// (gamma = 0.7, k = 5).
//
// Paper shape: MS and RM handle the window well; MI's additive error is
// 1-2 orders of magnitude larger (false negatives from deletions).

#include <deque>
#include <unordered_map>
#include <vector>

#include "common/harness.h"
#include "core/sliding_window.h"

using sbf::ErrorStats;
using sbf::Multiset;
using sbf::SlidingWindowFilter;
using sbf::TablePrinter;
using namespace sbf::bench;

namespace {

ErrorStats RunSlidingWindow(Algorithm algorithm, uint64_t m, uint32_t k,
                            const Multiset& data, uint64_t seed) {
  const size_t window_size = data.stream.size() / 5;
  SlidingWindowFilter window(MakeFilter(algorithm, m, k, seed), window_size);

  std::unordered_map<uint64_t, uint64_t> live;
  std::deque<uint64_t> reference;
  for (uint64_t key : data.stream) {
    window.Push(key);
    reference.push_back(key);
    ++live[key];
    while (reference.size() > window_size) {
      --live[reference.front()];
      reference.pop_front();
    }
  }
  ErrorStats stats;
  for (uint64_t key : data.keys) {
    stats.Record(window.Estimate(key), live[key]);
  }
  return stats;
}

}  // namespace

int main() {
  constexpr uint64_t kN = 1000;
  constexpr uint64_t kTotal = 100000;
  constexpr uint32_t kK = 5;
  const uint64_t m = static_cast<uint64_t>(kN * kK / 0.7);
  const std::vector<double> skews{0.0, 0.4, 0.8, 1.2, 1.6, 2.0};

  PrintHeader("Figure 9 - sliding window (window = M/5): accuracy vs skew",
              "gamma = 0.7, k = 5, n = 1000, M = 100000; averaged over 5 "
              "runs");

  TablePrinter table({"skew", "E_add MS", "E_add RM", "E_add MI",
                      "E_ratio MS", "E_ratio RM", "E_ratio MI",
                      "MI FN share"});
  for (double skew : skews) {
    std::vector<ErrorStats> stats;
    for (Algorithm algorithm :
         {Algorithm::kMinimumSelection, Algorithm::kRecurringMinimum,
          Algorithm::kMinimalIncrease}) {
      stats.push_back(AverageRuns([&](uint64_t seed) {
        const Multiset data = sbf::MakeZipfMultiset(kN, kTotal, skew, seed);
        return RunSlidingWindow(algorithm, m, kK, data, seed * 3);
      }));
    }
    table.AddRow({TablePrinter::Fmt(skew, 1),
                  TablePrinter::Fmt(stats[0].AdditiveError(), 2),
                  TablePrinter::Fmt(stats[1].AdditiveError(), 2),
                  TablePrinter::Fmt(stats[2].AdditiveError(), 2),
                  TablePrinter::Fmt(stats[0].ErrorRatio(), 4),
                  TablePrinter::Fmt(stats[1].ErrorRatio(), 4),
                  TablePrinter::Fmt(stats[2].ErrorRatio(), 4),
                  TablePrinter::Fmt(stats[2].FalseNegativeShare(), 3)});
  }
  table.Print();
  return 0;
}
