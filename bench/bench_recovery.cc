// Durability economics (DESIGN.md §10): what crash recovery costs as the
// delta WAL grows, and what a checkpoint costs to write. Recovery replays
// the log suffix onto the newest good checkpoint, so its time is linear in
// the records written since that checkpoint — the sweep makes the constant
// visible (records/s replayed) and the checkpoint rows show the compaction
// cost that bounds it. A final pair contrasts recovery of a long
// uncheckpointed log against the same history compacted by one checkpoint:
// the ratio is the argument for the size-triggered background
// checkpointer.
//
// Emits BENCH_recovery.json. Numbers are wall-clock file I/O and are NOT
// gated in CI (shared runners' disks are noisy); EXPERIMENTS.md quotes a
// reference transcript.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_json.h"
#include "io/durable_store.h"
#include "util/timer.h"

namespace {

using sbf::ConcurrentSbfOptions;
using sbf::Timer;
using sbf::bench::BenchJson;
using sbf::DurableOptions;
using sbf::DurableSbf;

// A scratch store directory per sweep cell, removed on destruction.
class ScopedDir {
 public:
  ScopedDir() {
    char tmpl[] = "/tmp/sbf_bench_recovery_XXXXXX";
    char* made = mkdtemp(tmpl);
    path_ = made != nullptr ? made : "/tmp/sbf_bench_recovery_fallback";
  }
  ~ScopedDir() { std::system(("rm -rf '" + path_ + "'").c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

DurableOptions MakeOptions() {
  DurableOptions options;
  options.filter.m = 1 << 16;
  options.filter.k = 4;
  options.filter.num_shards = 8;
  options.filter.seed = 7;
  // One fsync per append would time the disk, not recovery; batch-sync on
  // close instead (the recovery path being measured is identical).
  options.sync_each_append = false;
  options.checkpoint_log_bytes = 0;  // no size trigger; explicit only
  return options;
}

// Writes `records` delta batches of `batch` keys each and returns the
// final WAL size in bytes.
uint64_t WriteLog(DurableSbf& store, uint64_t records, uint64_t batch) {
  std::vector<uint64_t> keys(batch);
  for (uint64_t r = 0; r < records; ++r) {
    for (uint64_t i = 0; i < batch; ++i) {
      keys[i] = (r * batch + i) * 2654435761u % 1000003;
    }
    if (!store.InsertBatch(keys.data(), keys.size()).ok()) std::abort();
  }
  if (!store.SyncLog().ok()) std::abort();
  return store.Stats().wal_bytes;
}

double TimedReopen(const std::string& dir, const DurableOptions& options,
                   uint64_t expect_replayed) {
  Timer timer;
  auto reopened = DurableSbf::Open(dir, options);
  const double seconds = timer.ElapsedSeconds();
  if (!reopened.ok()) std::abort();
  if (reopened.value()->Stats().replayed_records != expect_replayed) {
    std::abort();
  }
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  bool small = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) small = true;
  }
  const uint64_t batch = 16;
  std::vector<uint64_t> sweep = small
                                    ? std::vector<uint64_t>{1000, 4000}
                                    : std::vector<uint64_t>{1000, 4000,
                                                            16000, 64000};

  BenchJson out("BENCH_recovery.json");
  out.SetContext(sbf::bench::StandardContext(/*with_isa=*/false));

  // Recovery time vs log length: an uncheckpointed store replays every
  // record on reopen.
  for (uint64_t records : sweep) {
    ScopedDir dir;
    const DurableOptions options = MakeOptions();
    uint64_t wal_bytes = 0;
    {
      auto store = DurableSbf::Open(dir.path(), options);
      if (!store.ok()) std::abort();
      wal_bytes = WriteLog(*store.value(), records, batch);
    }
    const double seconds = TimedReopen(dir.path(), options, records);
    out.Add("recover_log_only",
            {{"records", records},
             {"batch", batch},
             {"wal_bytes", wal_bytes},
             {"recovery_ms", seconds * 1e3}},
            seconds * 1e9 / static_cast<double>(records),
            static_cast<double>(records) / seconds / 1e6);
  }

  // Checkpoint cost at the same sweep points: serialize + tmp write +
  // fsync + rename + log rotation.
  for (uint64_t records : sweep) {
    ScopedDir dir;
    const DurableOptions options = MakeOptions();
    auto store = DurableSbf::Open(dir.path(), options);
    if (!store.ok()) std::abort();
    WriteLog(*store.value(), records, batch);
    Timer timer;
    if (!store.value()->Checkpoint().ok()) std::abort();
    const double seconds = timer.ElapsedSeconds();
    out.Add("checkpoint",
            {{"records_compacted", records},
             {"batch", batch},
             {"checkpoint_ms", seconds * 1e3}},
            seconds * 1e9 / static_cast<double>(records),
            static_cast<double>(records) / seconds / 1e6);
  }

  // The payoff: the same history with one checkpoint plus a short tail
  // replays only the tail. This ratio is what the size-triggered
  // background checkpointer buys.
  {
    const uint64_t records = sweep.back();
    const uint64_t tail = records / 100;
    ScopedDir dir;
    const DurableOptions options = MakeOptions();
    {
      auto store = DurableSbf::Open(dir.path(), options);
      if (!store.ok()) std::abort();
      WriteLog(*store.value(), records, batch);
      if (!store.value()->Checkpoint().ok()) std::abort();
      WriteLog(*store.value(), tail, batch);
    }
    const double seconds = TimedReopen(dir.path(), options, tail);
    out.Add("recover_checkpointed",
            {{"records_total", records + tail},
             {"records_replayed", tail},
             {"batch", batch},
             {"recovery_ms", seconds * 1e3}},
            seconds * 1e9 / static_cast<double>(tail),
            static_cast<double>(tail) / seconds / 1e6);
  }

  return out.WriteFile() ? 0 : 1;
}
