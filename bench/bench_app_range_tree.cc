// Section 5.5 application: range queries via Range Tree Hashing
// (Theorem 11). Verifies the probe bound (<= 2 log|Q| SBF lookups), the
// insert amplification (log r inserts per value), and the one-sided
// accuracy across range widths.

#include <cmath>
#include <vector>

#include "common/harness.h"
#include "db/range_tree.h"
#include "util/random.h"

using sbf::RangeTreeSbf;
using sbf::TablePrinter;
using sbf::Xoshiro256;

int main() {
  constexpr uint64_t kDomain = 1 << 16;
  constexpr int kValues = 20000;

  sbf::bench::PrintHeader(
      "Section 5.5 - range tree hashing over an SBF",
      "domain 65536, 20000 random values inserted; 200 random queries per "
      "width bucket");

  sbf::SbfOptions options;
  options.m = 4 * kValues * 17;  // n log r items (Claim 12), gamma ~ 0.3
  options.k = 5;
  options.seed = 11;
  options.backing = sbf::CounterBacking::kCompact;
  RangeTreeSbf tree(kDomain, options);
  std::printf("tree levels (inserts per value): %u\n", tree.levels() + 1);

  std::vector<uint64_t> counts(kDomain, 0);
  Xoshiro256 rng(0x7A6Eull);
  for (int i = 0; i < kValues; ++i) {
    const uint64_t value = rng.UniformInt(kDomain);
    tree.Insert(value);
    ++counts[value];
  }
  std::vector<uint64_t> prefix(kDomain + 1, 0);
  for (uint64_t v = 0; v < kDomain; ++v) prefix[v + 1] = prefix[v] + counts[v];

  TablePrinter table({"range width", "avg probes", "2*log2(width) bound",
                      "exact hits", "overestimates", "avg rel error"});
  for (uint64_t width : {16ull, 256ull, 4096ull, 32768ull}) {
    double probes = 0, rel_error = 0;
    int exact = 0, over = 0;
    constexpr int kQueries = 200;
    for (int q = 0; q < kQueries; ++q) {
      const uint64_t lo = rng.UniformInt(kDomain - width);
      const auto estimate = tree.EstimateRange(lo, lo + width);
      const uint64_t truth = prefix[lo + width] - prefix[lo];
      probes += estimate.probes;
      if (estimate.count == truth) {
        ++exact;
      } else {
        ++over;
        rel_error += truth == 0
                         ? 1.0
                         : static_cast<double>(estimate.count - truth) / truth;
      }
    }
    table.AddRow(
        {TablePrinter::FmtInt(width), TablePrinter::Fmt(probes / kQueries, 1),
         TablePrinter::Fmt(2.0 * std::log2(static_cast<double>(width)), 1),
         TablePrinter::FmtInt(exact), TablePrinter::FmtInt(over),
         TablePrinter::Fmt(over == 0 ? 0.0 : rel_error / over, 4)});
  }
  table.Print();
  std::printf("\nSBF memory: %zu KB for %u values x %u tree levels\n",
              tree.MemoryUsageBits() / 8192, kValues, tree.levels() + 1);
  return 0;
}
