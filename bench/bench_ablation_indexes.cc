// Ablation over the static access structures of Section 4: the
// string-array index (Section 4.3) against the classic select reduction
// (Section 4.2) — index bits, build time, and lookup time over counter
// arrays at average frequency 10.
//
// The paper's framing: select solves the static problem in o(N) bits and
// O(1) time but "the solutions given to the select problem are rather
// complicated"; the string-array index is the practical alternative. Our
// select baseline additionally pays an N-bit marker vector.

#include <vector>

#include "common/harness.h"
#include "sai/compact_counter_vector.h"
#include "sai/select_index.h"
#include "sai/string_array_index.h"
#include "util/random.h"
#include "util/timer.h"

using sbf::CompactCounterVector;
using sbf::SelectIndex;
using sbf::StringArrayIndex;
using sbf::TablePrinter;
using sbf::Timer;
using sbf::Xoshiro256;

int main() {
  const std::vector<size_t> sizes{10000, 50000, 100000, 500000};

  sbf::bench::PrintHeader(
      "Ablation - string-array index vs select reduction (static access)",
      "counter arrays at average frequency 10; lookup = offsets of all m "
      "strings");

  TablePrinter table({"m", "payload bits", "SAI bits", "select bits",
                      "SAI build ms", "select build ms", "SAI lookup ms",
                      "select lookup ms"});
  for (size_t m : sizes) {
    CompactCounterVector counters(m);
    Xoshiro256 rng(0x1DEAull + m);
    for (size_t i = 0; i < 10 * m; ++i) {
      counters.Increment(rng.UniformInt(m), 1);
    }
    counters.ForceRebuild();
    std::vector<uint32_t> lengths(m);
    size_t payload = 0;
    for (size_t i = 0; i < m; ++i) {
      lengths[i] = counters.WidthOf(i);
      payload += lengths[i];
    }

    Timer timer;
    StringArrayIndex sai(lengths);
    const double sai_build = timer.ElapsedMillis();

    timer.Restart();
    SelectIndex select(lengths);
    const double select_build = timer.ElapsedMillis();

    timer.Restart();
    size_t sink = 0;
    for (size_t i = 0; i < m; ++i) sink += sai.Offset(i);
    const double sai_lookup = timer.ElapsedMillis();

    timer.Restart();
    for (size_t i = 0; i < m; ++i) sink += select.Offset(i);
    const double select_lookup = timer.ElapsedMillis();
    if (sink == 42) std::printf("!");

    table.AddRow({TablePrinter::FmtInt(m), TablePrinter::FmtInt(payload),
                  TablePrinter::FmtInt(sai.IndexBits()),
                  TablePrinter::FmtInt(select.IndexBits()),
                  TablePrinter::Fmt(sai_build, 2),
                  TablePrinter::Fmt(select_build, 2),
                  TablePrinter::Fmt(sai_lookup, 2),
                  TablePrinter::Fmt(select_lookup, 2)});
  }
  table.Print();
  return 0;
}
