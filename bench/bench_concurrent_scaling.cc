// Thread x shard scaling sweep for the concurrent sharded SBF frontend.
// Emits rows in the shared bench JSON schema (common/bench_json.h), one
// per line on stdout and collected into BENCH_concurrent_scaling.json.
//
// Harness discipline (the part this file exists to get right):
//
//  * Key streams are pre-partitioned into contiguous per-thread slices
//    BEFORE the clock starts, and workers feed raw-pointer chunks straight
//    into InsertBatch/EstimateBatch — no allocation, copying or slicing
//    arithmetic inside the timed region.
//  * Every worker runs its own Timer; the per-thread timings are
//    aggregated after the join (max = critical path, sum = total CPU).
//    The reported wall time spans thread creation through join, so thread
//    startup cost is on the books rather than hidden.
//  * Each (threads, shards) cell reports `speedup_vs_1t` against the
//    1-thread wall time of the same (backing, delta, shards) cell
//    (bench::SpeedupBaseline); scripts/check_scaling.py gates CI on the
//    8-thread fixed64+MS insert cell.
//
// The estimate phase queries a mixed stream: half known (Zipf-drawn) keys,
// half never-inserted probes, interleaved, so the branch profile covers
// both the hit and the early-exit miss path.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_json.h"
#include "core/concurrent_sbf.h"
#include "util/random.h"
#include "util/timer.h"
#include "workload/multiset_stream.h"

namespace sbf {
namespace {

constexpr size_t kBatchChunk = 4096;

ConcurrentSbfOptions Options(CounterBacking backing, uint32_t shards,
                             bool delta) {
  ConcurrentSbfOptions options;
  options.m = 1 << 20;
  options.k = 5;
  options.backing = backing;
  options.num_shards = shards;
  options.seed = 7;
  options.delta.enabled = delta;
  return options;
}

// Contiguous slice bounds: thread t owns [starts[t], starts[t + 1]).
std::vector<size_t> SliceStarts(size_t n, int threads) {
  std::vector<size_t> starts(threads + 1);
  for (int t = 0; t <= threads; ++t) starts[t] = n * t / threads;
  return starts;
}

// Runs `threads` workers over pre-partitioned slices of `keys`, timing
// each worker independently. `work(begin, end)` processes one chunk.
// Returns wall seconds spanning create -> join; fills `timings`.
template <typename WorkFn>
double RunWorkers(const std::vector<uint64_t>& keys, int threads,
                  std::vector<bench::ThreadTiming>* timings, WorkFn&& work) {
  const std::vector<size_t> starts = SliceStarts(keys.size(), threads);
  timings->assign(threads, {});
  Timer wall;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Timer own;
      const uint64_t* base = keys.data();
      for (size_t at = starts[t]; at < starts[t + 1]; at += kBatchChunk) {
        const size_t stop = std::min(at + kBatchChunk, starts[t + 1]);
        work(base + at, stop - at);
      }
      (*timings)[t].seconds = own.ElapsedSeconds();
      (*timings)[t].ops = starts[t + 1] - starts[t];
    });
  }
  for (auto& w : workers) w.join();
  return wall.ElapsedSeconds();
}

void EmitRow(bench::BenchJson& json, bench::SpeedupBaseline& baselines,
             const std::string& op, CounterBacking backing, bool delta,
             int threads, uint32_t shards, size_t keys, double wall_seconds,
             const std::vector<bench::ThreadTiming>& timings) {
  const std::string cell = op + "/" + CounterBackingName(backing) +
                           (delta ? "/delta" : "/direct") +
                           "/S=" + std::to_string(shards);
  if (threads == 1) baselines.Set(cell, wall_seconds);
  const double mops = static_cast<double>(keys) / wall_seconds / 1e6;
  json.Add(op,
           {{"backing", CounterBackingName(backing)},
            {"delta", delta ? "on" : "off"},
            {"threads", threads},
            {"shards", static_cast<uint64_t>(shards)},
            {"keys", static_cast<uint64_t>(keys)},
            {"thread_seconds_max", bench::MaxSeconds(timings)},
            {"thread_seconds_sum", bench::SumSeconds(timings)},
            {"speedup_vs_1t", baselines.Speedup(cell, wall_seconds)}},
           wall_seconds / static_cast<double>(keys) * 1e9, mops);
}

// Half known keys, half never-inserted probes, interleaved.
std::vector<uint64_t> MixedQueries(const Multiset& data, size_t n,
                                   uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<uint64_t> queries(n);
  for (size_t i = 0; i < n; ++i) {
    queries[i] = (i % 2 == 0)
                     ? data.stream[rng.UniformInt(data.stream.size())]
                     : (rng.Next() | (uint64_t{1} << 63));
  }
  return queries;
}

void Sweep(bench::BenchJson& json, bench::SpeedupBaseline& baselines,
           CounterBacking backing, bool delta, size_t stream_len) {
  const Multiset data =
      MakeZipfMultiset(/*distinct=*/1 << 16, stream_len, 1.0, 11);
  const std::vector<uint64_t> queries =
      MixedQueries(data, stream_len, /*seed=*/13);
  std::vector<bench::ThreadTiming> timings;
  for (const uint32_t shards : {1u, 4u, 16u}) {
    for (const int threads : {1, 2, 4, 8}) {
      ConcurrentSbf filter(Options(backing, shards, delta));
      const double insert_wall = RunWorkers(
          data.stream, threads, &timings,
          [&filter](const uint64_t* chunk, size_t n) {
            filter.InsertBatch(chunk, n);
          });
      EmitRow(json, baselines, "insert_batch", backing, delta, threads,
              shards, data.stream.size(), insert_wall, timings);
      filter.Flush();
      const double estimate_wall = RunWorkers(
          queries, threads, &timings,
          [&filter](const uint64_t* chunk, size_t n) {
            uint64_t out[kBatchChunk];
            filter.EstimateBatch(chunk, n, out);
            uint64_t sink = 0;
            for (size_t i = 0; i < n; ++i) sink += out[i];
            asm volatile("" : : "r"(sink));
          });
      EmitRow(json, baselines, "estimate_batch", backing, delta, threads,
              shards, queries.size(), estimate_wall, timings);
    }
  }
}

}  // namespace
}  // namespace sbf

int main() {
  sbf::bench::BenchJson json("BENCH_concurrent_scaling.json");
  sbf::bench::SpeedupBaseline baselines;
  // fixed64 exercises the lock-free path — with and without the delta
  // buffers, so the write-combining win is measurable in isolation;
  // compact exercises the striped-lock path.
  sbf::Sweep(json, baselines, sbf::CounterBacking::kFixed64, /*delta=*/true,
             size_t{1} << 21);
  sbf::Sweep(json, baselines, sbf::CounterBacking::kFixed64, /*delta=*/false,
             size_t{1} << 21);
  sbf::Sweep(json, baselines, sbf::CounterBacking::kCompact, /*delta=*/true,
             size_t{1} << 19);
  return json.WriteFile() ? 0 : 1;
}
