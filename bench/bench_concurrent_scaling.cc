// Thread x shard scaling sweep for the concurrent sharded SBF frontend.
// Emits rows in the shared bench JSON schema (common/bench_json.h), one
// per line on stdout and collected into BENCH_concurrent_scaling.json.
//
// Each thread owns a disjoint slice of a Zipf stream and pushes it through
// the batch API in chunks (the intended server ingestion pattern); the
// estimate phase queries a mixed known/unknown key set. Single-threaded
// throughput at the same shard count is the speedup baseline.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_json.h"
#include "core/concurrent_sbf.h"
#include "util/timer.h"
#include "workload/multiset_stream.h"

namespace sbf {
namespace {

constexpr size_t kBatchChunk = 4096;

ConcurrentSbfOptions Options(CounterBacking backing, uint32_t shards) {
  ConcurrentSbfOptions options;
  options.m = 1 << 20;
  options.k = 5;
  options.backing = backing;
  options.num_shards = shards;
  options.seed = 7;
  return options;
}

// Runs `threads` workers, each feeding its slice of `keys` through
// InsertBatch in kBatchChunk chunks. Returns wall seconds.
double TimedInsert(ConcurrentSbf& filter, const std::vector<uint64_t>& keys,
                   int threads) {
  Timer timer;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const size_t begin = keys.size() * t / threads;
      const size_t end = keys.size() * (t + 1) / threads;
      for (size_t at = begin; at < end; at += kBatchChunk) {
        const size_t stop = std::min(at + kBatchChunk, end);
        std::vector<uint64_t> chunk(keys.begin() + at, keys.begin() + stop);
        filter.InsertBatch(chunk);
      }
    });
  }
  for (auto& w : workers) w.join();
  return timer.ElapsedSeconds();
}

double TimedEstimate(const ConcurrentSbf& filter,
                     const std::vector<uint64_t>& keys, int threads) {
  Timer timer;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const size_t begin = keys.size() * t / threads;
      const size_t end = keys.size() * (t + 1) / threads;
      uint64_t sink = 0;
      for (size_t at = begin; at < end; at += kBatchChunk) {
        const size_t stop = std::min(at + kBatchChunk, end);
        std::vector<uint64_t> chunk(keys.begin() + at, keys.begin() + stop);
        for (uint64_t v : filter.EstimateBatch(chunk)) sink += v;
      }
      // Keep the estimates observable so the loop cannot be elided.
      asm volatile("" : : "r"(sink));
    });
  }
  for (auto& w : workers) w.join();
  return timer.ElapsedSeconds();
}

void EmitRow(bench::BenchJson& json, const char* op, CounterBacking backing,
             int threads, uint32_t shards, size_t keys, double seconds,
             double baseline_seconds) {
  const double mops = static_cast<double>(keys) / seconds / 1e6;
  json.Add(op,
           {{"backing", CounterBackingName(backing)},
            {"threads", threads},
            {"shards", static_cast<uint64_t>(shards)},
            {"keys", static_cast<uint64_t>(keys)},
            {"speedup_vs_1t", baseline_seconds / seconds}},
           seconds / static_cast<double>(keys) * 1e9, mops);
}

void Sweep(bench::BenchJson& json, CounterBacking backing, size_t stream_len) {
  const Multiset data =
      MakeZipfMultiset(/*distinct=*/1 << 16, stream_len, 1.0, 11);
  for (const uint32_t shards : {1u, 4u, 16u}) {
    double insert_baseline = 0.0, estimate_baseline = 0.0;
    for (const int threads : {1, 2, 4, 8}) {
      ConcurrentSbf filter(Options(backing, shards));
      const double insert_s = TimedInsert(filter, data.stream, threads);
      if (threads == 1) insert_baseline = insert_s;
      EmitRow(json, "insert_batch", backing, threads, shards,
              data.stream.size(), insert_s, insert_baseline);
      const double estimate_s = TimedEstimate(filter, data.stream, threads);
      if (threads == 1) estimate_baseline = estimate_s;
      EmitRow(json, "estimate_batch", backing, threads, shards,
              data.stream.size(), estimate_s, estimate_baseline);
    }
  }
}

}  // namespace
}  // namespace sbf

int main() {
  sbf::bench::BenchJson json("BENCH_concurrent_scaling.json");
  // fixed64 exercises the lock-free path; compact the striped-lock path.
  sbf::Sweep(json, sbf::CounterBacking::kFixed64, size_t{1} << 21);
  sbf::Sweep(json, sbf::CounterBacking::kCompact, size_t{1} << 19);
  return json.WriteFile() ? 0 : 1;
}
