// Batched vs scalar throughput for the hash-ahead + prefetch pipelines
// (core/batch_kernels.h) across the filter frontends and counter backings.
//
// For each configuration the scalar loop (Insert/Estimate per key) is the
// baseline; the batched run pushes the same keys through
// InsertBatch/EstimateBatch in chunks of the sweep's batch size. Filters
// are sized so the counter array is far larger than L2 (64 MiB for the
// fixed64 configuration) — the regime the pipeline targets, where every
// probe is a likely cache miss and hashing W keys ahead overlaps the
// misses. Rows land in BENCH_batch_pipeline.json via the shared schema
// (common/bench_json.h); `speedup_vs_scalar` is in params.
//
// Usage: bench_batch_pipeline [--small]
//   --small: CI smoke configuration (filters fit in cache, seconds of
//   runtime; the speedups are not meaningful at this size).

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_json.h"
#include "core/blocked_sbf.h"
#include "core/concurrent_sbf.h"
#include "core/counting_bloom_filter.h"
#include "core/frequency_filter.h"
#include "core/spectral_bloom_filter.h"
#include "util/random.h"
#include "util/timer.h"

namespace sbf {
namespace {

constexpr size_t kBatchSizes[] = {64, 256, 1024, 4096};

struct Config {
  std::string name;
  std::function<std::unique_ptr<FrequencyFilter>()> make;
};

std::vector<uint64_t> RandomKeys(size_t n, uint64_t seed) {
  std::vector<uint64_t> keys(n);
  Xoshiro256 rng(seed);
  for (auto& key : keys) key = rng.Next();
  return keys;
}

double TimeScalarInsert(FrequencyFilter& filter,
                        const std::vector<uint64_t>& keys) {
  Timer timer;
  for (uint64_t key : keys) filter.Insert(key);
  return timer.ElapsedSeconds();
}

double TimeBatchInsert(FrequencyFilter& filter,
                       const std::vector<uint64_t>& keys, size_t batch) {
  Timer timer;
  for (size_t at = 0; at < keys.size(); at += batch) {
    const size_t n = std::min(batch, keys.size() - at);
    filter.InsertBatch(keys.data() + at, n);
  }
  return timer.ElapsedSeconds();
}

double TimeScalarEstimate(const FrequencyFilter& filter,
                          const std::vector<uint64_t>& keys) {
  uint64_t sink = 0;
  Timer timer;
  for (uint64_t key : keys) sink += filter.Estimate(key);
  const double seconds = timer.ElapsedSeconds();
  asm volatile("" : : "r"(sink));
  return seconds;
}

double TimeBatchEstimate(const FrequencyFilter& filter,
                         const std::vector<uint64_t>& keys, size_t batch,
                         std::vector<uint64_t>* out) {
  uint64_t sink = 0;
  Timer timer;
  for (size_t at = 0; at < keys.size(); at += batch) {
    const size_t n = std::min(batch, keys.size() - at);
    filter.EstimateBatch(keys.data() + at, n, out->data());
    sink += (*out)[0];
  }
  const double seconds = timer.ElapsedSeconds();
  asm volatile("" : : "r"(sink));
  return seconds;
}

void Emit(bench::BenchJson& json, const std::string& config,
          const char* op, size_t batch, size_t keys, double seconds,
          double scalar_seconds) {
  json.Add(op,
           {{"config", config},
            {"batch", static_cast<uint64_t>(batch)},  // 0 = scalar baseline
            {"keys", static_cast<uint64_t>(keys)},
            {"speedup_vs_scalar", scalar_seconds / seconds}},
           seconds / static_cast<double>(keys) * 1e9,
           static_cast<double>(keys) / seconds / 1e6);
}

void RunConfig(bench::BenchJson& json, const Config& config,
               size_t num_keys) {
  const std::vector<uint64_t> fill = RandomKeys(num_keys, 0xF111);
  const std::vector<uint64_t> queries = RandomKeys(num_keys, 0x9E37);
  std::vector<uint64_t> out(num_keys < 4096 ? 4096 : num_keys);

  // --- estimate: one warm filter, scalar baseline, then the batch sweep.
  auto filter = config.make();
  filter->InsertBatch(fill.data(), fill.size());
  const double scalar_estimate = TimeScalarEstimate(*filter, queries);
  Emit(json, config.name, "estimate", 0, queries.size(), scalar_estimate,
       scalar_estimate);
  for (size_t batch : kBatchSizes) {
    const double s = TimeBatchEstimate(*filter, queries, batch, &out);
    Emit(json, config.name, "estimate", batch, queries.size(), s,
         scalar_estimate);
  }

  // --- insert: fresh filter per run so every run writes into the same
  // (empty) state.
  auto scalar_filter = config.make();
  const double scalar_insert = TimeScalarInsert(*scalar_filter, fill);
  Emit(json, config.name, "insert", 0, fill.size(), scalar_insert,
       scalar_insert);
  for (size_t batch : kBatchSizes) {
    auto batch_filter = config.make();
    const double s = TimeBatchInsert(*batch_filter, fill, batch);
    Emit(json, config.name, "insert", batch, fill.size(), s, scalar_insert);
  }
}

SbfOptions Options(uint64_t m, SbfPolicy policy, CounterBacking backing) {
  SbfOptions options;
  options.m = m;
  options.k = 5;
  options.policy = policy;
  options.backing = backing;
  options.seed = 42;
  return options;
}

}  // namespace
}  // namespace sbf

int main(int argc, char** argv) {
  using namespace sbf;
  bool small = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) small = true;
  }

  // Large: 2^23 counters (64 MiB of fixed64) — far out of cache, the
  // memory-bound regime the pipeline targets. Small: CI smoke only.
  const uint64_t m = small ? uint64_t{1} << 16 : uint64_t{1} << 23;
  const size_t num_keys = small ? size_t{1} << 15 : size_t{1} << 21;

  std::vector<Config> configs;
  configs.push_back(
      {"sbf_ms_fixed64", [m] {
         return std::make_unique<SpectralBloomFilter>(Options(
             m, SbfPolicy::kMinimumSelection, CounterBacking::kFixed64));
       }});
  configs.push_back(
      {"sbf_ms_fixed32", [m] {
         return std::make_unique<SpectralBloomFilter>(Options(
             m, SbfPolicy::kMinimumSelection, CounterBacking::kFixed32));
       }});
  configs.push_back(
      {"sbf_mi_fixed64", [m] {
         return std::make_unique<SpectralBloomFilter>(Options(
             m, SbfPolicy::kMinimalIncrease, CounterBacking::kFixed64));
       }});
  configs.push_back(
      {"sbf_ms_compact", [m] {
         return std::make_unique<SpectralBloomFilter>(Options(
             m, SbfPolicy::kMinimumSelection, CounterBacking::kCompact));
       }});
  configs.push_back(
      {"sbf_ms_serialscan", [m] {
         return std::make_unique<SpectralBloomFilter>(Options(
             m, SbfPolicy::kMinimumSelection, CounterBacking::kSerialScan));
       }});
  configs.push_back({"blocked_fixed64_b8", [m] {
                       BlockedSbfOptions options;
                       options.m = m;
                       options.k = 5;
                       // 8 x 64-bit counters: each key's probes in one
                       // cache line.
                       options.block_size = 8;
                       options.backing = CounterBacking::kFixed64;
                       options.seed = 42;
                       return std::make_unique<BlockedSbf>(options);
                     }});
  configs.push_back({"cbf_4bit", [m] {
                       return std::make_unique<CountingBloomFilter>(m, 5, 4,
                                                                    42);
                     }});
  configs.push_back({"concurrent_fixed64_s16", [m] {
                       ConcurrentSbfOptions options;
                       options.m = m;
                       options.k = 5;
                       options.backing = CounterBacking::kFixed64;
                       options.num_shards = 16;
                       options.seed = 42;
                       return std::make_unique<ConcurrentSbf>(options);
                     }});

  bench::BenchJson json("BENCH_batch_pipeline.json");
  // Every row carries the active SIMD ISA and build flags: the batched
  // fixed-width paths dispatch to the block kernels, so rows from the
  // generic-only and AVX2 CI legs are different measurements.
  json.SetContext(bench::StandardContext());
  for (const Config& config : configs) {
    std::printf("# %s (m=%llu, keys=%zu)\n", config.name.c_str(),
                static_cast<unsigned long long>(m), num_keys);
    RunConfig(json, config, num_keys);
  }
  return json.WriteFile() ? 0 : 1;
}
