// Micro-benchmarks (google-benchmark) for the hot paths: hash position
// generation, bit-vector field access, counter get/increment across all
// backings, and SBF insert/estimate per policy.

#include <benchmark/benchmark.h>

#include "bitstream/bit_vector.h"
#include "core/recurring_minimum.h"
#include "core/spectral_bloom_filter.h"
#include "hashing/hash_family.h"
#include "sai/counter_vector.h"
#include "util/random.h"

namespace sbf {
namespace {

void BM_HashPositions(benchmark::State& state) {
  const auto kind = static_cast<HashFamily::Kind>(state.range(0));
  HashFamily family(5, 1 << 20, 42, kind);
  uint64_t positions[8];
  uint64_t key = 0;
  for (auto _ : state) {
    family.Positions(++key, positions);
    benchmark::DoNotOptimize(positions[4]);
  }
}
BENCHMARK(BM_HashPositions)
    ->Arg(static_cast<int>(HashFamily::Kind::kModuloMultiply))
    ->Arg(static_cast<int>(HashFamily::Kind::kDoubleMix));

void BM_BitVectorFieldRoundTrip(benchmark::State& state) {
  const uint32_t width = static_cast<uint32_t>(state.range(0));
  BitVector bits(1 << 20);
  Xoshiro256 rng(1);
  size_t pos = 0;
  for (auto _ : state) {
    pos = (pos + 127 * width) % ((1 << 20) - 64);
    bits.SetBits(pos, width, rng.Next() & LowMask(width));
    benchmark::DoNotOptimize(bits.GetBits(pos, width));
  }
}
BENCHMARK(BM_BitVectorFieldRoundTrip)->Arg(4)->Arg(13)->Arg(32)->Arg(61);

void BM_CounterIncrement(benchmark::State& state) {
  const auto backing = static_cast<CounterBacking>(state.range(0));
  auto counters = MakeCounterVector(backing, 1 << 16);
  Xoshiro256 rng(7);
  for (auto _ : state) {
    counters->Increment(rng.UniformInt(1 << 16), 1);
  }
  state.SetLabel(counters->Name());
}
BENCHMARK(BM_CounterIncrement)
    ->Arg(static_cast<int>(CounterBacking::kFixed64))
    ->Arg(static_cast<int>(CounterBacking::kCompact))
    ->Arg(static_cast<int>(CounterBacking::kSerialScan));

void BM_CounterGet(benchmark::State& state) {
  const auto backing = static_cast<CounterBacking>(state.range(0));
  auto counters = MakeCounterVector(backing, 1 << 16);
  Xoshiro256 rng(9);
  for (int i = 0; i < (1 << 18); ++i) {
    counters->Increment(rng.UniformInt(1 << 16), 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(counters->Get(rng.UniformInt(1 << 16)));
  }
  state.SetLabel(counters->Name());
}
BENCHMARK(BM_CounterGet)
    ->Arg(static_cast<int>(CounterBacking::kFixed64))
    ->Arg(static_cast<int>(CounterBacking::kCompact))
    ->Arg(static_cast<int>(CounterBacking::kSerialScan));

SbfOptions MicroOptions(SbfPolicy policy, CounterBacking backing) {
  SbfOptions options;
  options.m = 1 << 16;
  options.k = 5;
  options.policy = policy;
  options.backing = backing;
  options.seed = 3;
  return options;
}

void BM_SbfInsert(benchmark::State& state) {
  const auto policy = static_cast<SbfPolicy>(state.range(0));
  SpectralBloomFilter filter(
      MicroOptions(policy, CounterBacking::kCompact));
  Xoshiro256 rng(11);
  for (auto _ : state) {
    filter.Insert(rng.UniformInt(1 << 14));
  }
  state.SetLabel(filter.Name());
}
BENCHMARK(BM_SbfInsert)
    ->Arg(static_cast<int>(SbfPolicy::kMinimumSelection))
    ->Arg(static_cast<int>(SbfPolicy::kMinimalIncrease));

void BM_SbfEstimate(benchmark::State& state) {
  SpectralBloomFilter filter(MicroOptions(SbfPolicy::kMinimumSelection,
                                          CounterBacking::kCompact));
  Xoshiro256 rng(13);
  for (int i = 0; i < (1 << 17); ++i) filter.Insert(rng.UniformInt(1 << 14));
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.Estimate(rng.UniformInt(1 << 15)));
  }
}
BENCHMARK(BM_SbfEstimate);

void BM_RecurringMinimumInsert(benchmark::State& state) {
  auto filter = RecurringMinimumSbf::WithTotalBudget(1 << 16, 5, 17);
  Xoshiro256 rng(17);
  for (auto _ : state) {
    filter.Insert(rng.UniformInt(1 << 14));
  }
}
BENCHMARK(BM_RecurringMinimumInsert);

}  // namespace
}  // namespace sbf

BENCHMARK_MAIN();
