// Micro-benchmarks (google-benchmark) for the hot paths: hash position
// generation, bit-vector field access, counter get/increment across all
// backings, and SBF insert/estimate per policy.

#include <benchmark/benchmark.h>

#include <vector>

#include "bitstream/bit_vector.h"
#include "bitstream/rank_select.h"
#include "core/concurrent_sbf.h"
#include "core/recurring_minimum.h"
#include "core/spectral_bloom_filter.h"
#include "hashing/hash_family.h"
#include "sai/counter_vector.h"
#include "util/random.h"

namespace sbf {
namespace {

void BM_HashPositions(benchmark::State& state) {
  const auto kind = static_cast<HashFamily::Kind>(state.range(0));
  HashFamily family(5, 1 << 20, 42, kind);
  uint64_t positions[8];
  uint64_t key = 0;
  for (auto _ : state) {
    family.Positions(++key, positions);
    benchmark::DoNotOptimize(positions[4]);
  }
}
BENCHMARK(BM_HashPositions)
    ->Arg(static_cast<int>(HashFamily::Kind::kModuloMultiply))
    ->Arg(static_cast<int>(HashFamily::Kind::kDoubleMix));

void BM_BitVectorFieldRoundTrip(benchmark::State& state) {
  const uint32_t width = static_cast<uint32_t>(state.range(0));
  BitVector bits(1 << 20);
  Xoshiro256 rng(1);
  size_t pos = 0;
  for (auto _ : state) {
    pos = (pos + 127 * width) % ((1 << 20) - 64);
    bits.SetBits(pos, width, rng.Next() & LowMask(width));
    benchmark::DoNotOptimize(bits.GetBits(pos, width));
  }
}
BENCHMARK(BM_BitVectorFieldRoundTrip)->Arg(4)->Arg(13)->Arg(32)->Arg(61);

void BM_CounterIncrement(benchmark::State& state) {
  const auto backing = static_cast<CounterBacking>(state.range(0));
  auto counters = MakeCounterVector(backing, 1 << 16);
  Xoshiro256 rng(7);
  for (auto _ : state) {
    counters->Increment(rng.UniformInt(1 << 16), 1);
  }
  state.SetLabel(counters->Name());
}
BENCHMARK(BM_CounterIncrement)
    ->Arg(static_cast<int>(CounterBacking::kFixed64))
    ->Arg(static_cast<int>(CounterBacking::kCompact))
    ->Arg(static_cast<int>(CounterBacking::kSerialScan));

void BM_CounterGet(benchmark::State& state) {
  const auto backing = static_cast<CounterBacking>(state.range(0));
  auto counters = MakeCounterVector(backing, 1 << 16);
  Xoshiro256 rng(9);
  for (int i = 0; i < (1 << 18); ++i) {
    counters->Increment(rng.UniformInt(1 << 16), 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(counters->Get(rng.UniformInt(1 << 16)));
  }
  state.SetLabel(counters->Name());
}
BENCHMARK(BM_CounterGet)
    ->Arg(static_cast<int>(CounterBacking::kFixed64))
    ->Arg(static_cast<int>(CounterBacking::kCompact))
    ->Arg(static_cast<int>(CounterBacking::kSerialScan));

SbfOptions MicroOptions(SbfPolicy policy, CounterBacking backing) {
  SbfOptions options;
  options.m = 1 << 16;
  options.k = 5;
  options.policy = policy;
  options.backing = backing;
  options.seed = 3;
  return options;
}

void BM_SbfInsert(benchmark::State& state) {
  const auto policy = static_cast<SbfPolicy>(state.range(0));
  SpectralBloomFilter filter(
      MicroOptions(policy, CounterBacking::kCompact));
  Xoshiro256 rng(11);
  for (auto _ : state) {
    filter.Insert(rng.UniformInt(1 << 14));
  }
  state.SetLabel(filter.Name());
}
BENCHMARK(BM_SbfInsert)
    ->Arg(static_cast<int>(SbfPolicy::kMinimumSelection))
    ->Arg(static_cast<int>(SbfPolicy::kMinimalIncrease));

void BM_SbfEstimate(benchmark::State& state) {
  SpectralBloomFilter filter(MicroOptions(SbfPolicy::kMinimumSelection,
                                          CounterBacking::kCompact));
  Xoshiro256 rng(13);
  for (int i = 0; i < (1 << 17); ++i) filter.Insert(rng.UniformInt(1 << 14));
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.Estimate(rng.UniformInt(1 << 15)));
  }
}
BENCHMARK(BM_SbfEstimate);

void BM_RankSelectSelect1(benchmark::State& state) {
  // Density via range(0): one set bit in every `stride` bits.
  const size_t stride = static_cast<size_t>(state.range(0));
  constexpr size_t kBits = size_t{1} << 22;
  BitVector bits(kBits);
  Xoshiro256 rng(37);
  for (size_t i = 0; i < kBits; i += stride) {
    bits.SetBit(i + rng.UniformInt(stride), true);
  }
  RankSelect rs(&bits);
  const size_t ones = rs.num_ones();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.Select1(rng.UniformInt(ones)));
  }
}
BENCHMARK(BM_RankSelectSelect1)->Arg(2)->Arg(16)->Arg(512);

void BM_RecurringMinimumInsert(benchmark::State& state) {
  auto filter = RecurringMinimumSbf::WithTotalBudget(1 << 16, 5, 17);
  Xoshiro256 rng(17);
  for (auto _ : state) {
    filter.Insert(rng.UniformInt(1 << 14));
  }
}
BENCHMARK(BM_RecurringMinimumInsert);

// --- concurrent sharded frontend -----------------------------------------

ConcurrentSbfOptions ConcurrentMicroOptions(CounterBacking backing) {
  ConcurrentSbfOptions options;
  options.m = 1 << 18;
  options.k = 5;
  options.backing = backing;
  options.num_shards = 16;
  options.seed = 19;
  return options;
}

// One shared filter per backing; function-local statics give race-free
// initialization under google-benchmark's multi-threaded runner.
ConcurrentSbf& SharedConcurrentSbf(CounterBacking backing) {
  static ConcurrentSbf fixed64(
      ConcurrentMicroOptions(CounterBacking::kFixed64));
  static ConcurrentSbf compact(
      ConcurrentMicroOptions(CounterBacking::kCompact));
  return backing == CounterBacking::kFixed64 ? fixed64 : compact;
}

void BM_ConcurrentSbfInsert(benchmark::State& state) {
  const auto backing = static_cast<CounterBacking>(state.range(0));
  ConcurrentSbf& filter = SharedConcurrentSbf(backing);
  Xoshiro256 rng(23 + state.thread_index());
  for (auto _ : state) {
    filter.Insert(rng.UniformInt(1 << 16));
  }
  state.SetLabel(filter.Name());
}
BENCHMARK(BM_ConcurrentSbfInsert)
    ->Arg(static_cast<int>(CounterBacking::kFixed64))
    ->Arg(static_cast<int>(CounterBacking::kCompact))
    ->Threads(1)
    ->Threads(4);

void BM_ConcurrentSbfEstimate(benchmark::State& state) {
  const auto backing = static_cast<CounterBacking>(state.range(0));
  ConcurrentSbf& filter = SharedConcurrentSbf(backing);
  Xoshiro256 rng(29 + state.thread_index());
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.Estimate(rng.UniformInt(1 << 17)));
  }
  state.SetLabel(filter.Name());
}
BENCHMARK(BM_ConcurrentSbfEstimate)
    ->Arg(static_cast<int>(CounterBacking::kFixed64))
    ->Arg(static_cast<int>(CounterBacking::kCompact))
    ->Threads(1)
    ->Threads(4);

void BM_ConcurrentSbfInsertBatch(benchmark::State& state) {
  const auto backing = static_cast<CounterBacking>(state.range(0));
  ConcurrentSbf& filter = SharedConcurrentSbf(backing);
  Xoshiro256 rng(31 + state.thread_index());
  std::vector<uint64_t> batch(4096);
  for (auto _ : state) {
    for (auto& key : batch) key = rng.UniformInt(1 << 16);
    filter.InsertBatch(batch);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
  state.SetLabel(filter.Name());
}
BENCHMARK(BM_ConcurrentSbfInsertBatch)
    ->Arg(static_cast<int>(CounterBacking::kFixed64))
    ->Arg(static_cast<int>(CounterBacking::kCompact))
    ->Threads(1)
    ->Threads(4);

}  // namespace
}  // namespace sbf

BENCHMARK_MAIN();
