// Per-ISA throughput of the SIMD block kernels (core/simd_kernels.h) on
// the single-cache-line blocked SBF geometries, against the scalar batch
// pipeline as baseline.
//
// For each {regime, geometry, policy} cell the kDisabled run — kernels
// off, the legacy scalar hash-ahead pipeline — is the baseline; the same
// keys then run with each supported ISA forced (generic, SSE2, AVX2) and
// every row's `speedup_vs_scalar_pipeline` is baseline-seconds / own-
// seconds. Two regimes: `hot` (m = 2^16, counters L2-resident — the
// compute-bound regime where vectorization shows) and `dram` (m = 2^23,
// every block a likely cache miss — the memory-bound regime, where the
// kernels mostly cut instruction count). scripts/check_simd.py gates CI
// on the hot-regime AVX2 estimate rows.
//
// Rows land in BENCH_simd_blocked.json via the shared schema
// (common/bench_json.h): per-row `isa` param + compiler-flag context.
//
// Usage: bench_simd_blocked [--small]
//   --small: CI smoke configuration (hot regime only, fewer keys).

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/bench_json.h"
#include "core/blocked_sbf.h"
#include "core/simd_kernels.h"
#include "util/random.h"
#include "util/timer.h"

namespace sbf {
namespace {

constexpr size_t kBatch = 1024;
// Each measurement is the best of this many timed trials: the min is the
// right estimator under one-sided scheduler/interference noise, and the
// speedup gate (scripts/check_simd.py) needs stable ratios.
constexpr int kTrials = 5;

struct Geometry {
  const char* name;
  CounterBacking backing;
  uint64_t block_size;
};

struct Regime {
  const char* name;
  uint64_t m;
  size_t num_keys;
  int reps;  // timed passes over the key set (hot regime needs several)
};

std::vector<uint64_t> RandomKeys(size_t n, uint64_t seed) {
  std::vector<uint64_t> keys(n);
  Xoshiro256 rng(seed);
  for (auto& key : keys) key = rng.Next();
  return keys;
}

BlockedSbf MakeFilter(const Geometry& g, SbfPolicy policy, uint64_t m) {
  BlockedSbfOptions options;
  options.m = m;
  options.block_size = g.block_size;
  options.k = 5;
  options.seed = 42;
  options.backing = g.backing;
  options.policy = policy;
  return BlockedSbf(options);
}

// One timed estimate pass (reps sweeps over the key set).
double TimeEstimate(const BlockedSbf& filter,
                    const std::vector<uint64_t>& keys, int reps,
                    std::vector<uint64_t>* out) {
  uint64_t sink = 0;
  Timer timer;
  for (int r = 0; r < reps; ++r) {
    for (size_t at = 0; at < keys.size(); at += kBatch) {
      const size_t n = std::min(kBatch, keys.size() - at);
      filter.EstimateBatch(keys.data() + at, n, out->data());
      sink += (*out)[0];
    }
  }
  const double seconds = timer.ElapsedSeconds();
  asm volatile("" : : "r"(sink));
  return seconds;
}

// One timed insert pass. Later trials re-insert the same keys on grown
// counters — identical probe work, so passes stay comparable.
double TimeInsert(BlockedSbf& filter, const std::vector<uint64_t>& keys,
                  int reps) {
  Timer timer;
  for (int r = 0; r < reps; ++r) {
    for (size_t at = 0; at < keys.size(); at += kBatch) {
      const size_t n = std::min(kBatch, keys.size() - at);
      filter.InsertBatch(keys.data() + at, n);
    }
  }
  return timer.ElapsedSeconds();
}

void Emit(bench::BenchJson& json, const char* op, const Regime& regime,
          const Geometry& g, const char* policy, simd::Isa isa,
          double seconds, double scalar_seconds, uint64_t ops) {
  json.Add(op,
           {{"regime", regime.name},
            {"shape", g.name},
            {"policy", policy},
            {"isa", simd::IsaName(isa)},
            {"m", regime.m},
            {"keys", static_cast<uint64_t>(regime.num_keys)},
            {"speedup_vs_scalar_pipeline", scalar_seconds / seconds}},
           seconds / static_cast<double>(ops) * 1e9,
           static_cast<double>(ops) / seconds / 1e6);
}

void RunCell(bench::BenchJson& json, const Regime& regime, const Geometry& g,
             SbfPolicy policy, const std::vector<simd::Isa>& isas) {
  const char* policy_name =
      policy == SbfPolicy::kMinimumSelection ? "ms" : "mi";
  const std::vector<uint64_t> fill = RandomKeys(regime.num_keys, 0xF111);
  const std::vector<uint64_t> queries = RandomKeys(regime.num_keys, 0x9E37);
  std::vector<uint64_t> out(kBatch);
  const uint64_t ops =
      static_cast<uint64_t>(regime.num_keys) * regime.reps;

  // Paired measurement: each trial times every ISA back to back, and each
  // ISA keeps its best trial. Interference that would skew a ratio when
  // baseline and kernel run seconds apart hits adjacent samples instead,
  // and min-of-trials discards it from both sides of the ratio.
  struct IsaRun {
    simd::Isa isa;
    BlockedSbf filter;
    double insert_s = 0.0;
    double estimate_s = 0.0;
  };
  std::vector<IsaRun> runs;
  runs.reserve(isas.size());
  for (simd::Isa isa : isas) {
    runs.push_back({isa, MakeFilter(g, policy, regime.m)});
  }
  for (int trial = 0; trial < kTrials; ++trial) {
    for (IsaRun& run : runs) {
      simd::ForceIsa(run.isa);
      const double s = TimeInsert(run.filter, fill, regime.reps);
      if (trial == 0 || s < run.insert_s) run.insert_s = s;
    }
  }
  for (int trial = 0; trial < kTrials; ++trial) {
    for (IsaRun& run : runs) {
      simd::ForceIsa(run.isa);
      const double s = TimeEstimate(run.filter, queries, regime.reps, &out);
      if (trial == 0 || s < run.estimate_s) run.estimate_s = s;
    }
  }
  // runs[0] is kDisabled: the scalar-pipeline baseline.
  for (const IsaRun& run : runs) {
    Emit(json, "insert", regime, g, policy_name, run.isa, run.insert_s,
         runs[0].insert_s, ops);
    Emit(json, "estimate", regime, g, policy_name, run.isa, run.estimate_s,
         runs[0].estimate_s, ops);
  }
}

}  // namespace
}  // namespace sbf

int main(int argc, char** argv) {
  using namespace sbf;
  bool small = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) small = true;
  }

  std::vector<Regime> regimes;
  if (small) {
    regimes.push_back({"hot", uint64_t{1} << 16, size_t{1} << 14, 8});
  } else {
    regimes.push_back({"hot", uint64_t{1} << 16, size_t{1} << 16, 64});
    regimes.push_back({"dram", uint64_t{1} << 23, size_t{1} << 21, 2});
  }

  const Geometry geometries[] = {
      {"fixed64_b8", CounterBacking::kFixed64, 8},
      {"fixed32_b16", CounterBacking::kFixed32, 16},
  };

  // kDisabled (the scalar-pipeline baseline) first, then every variant
  // this build + host can execute.
  std::vector<simd::Isa> isas = {simd::Isa::kDisabled};
  for (simd::Isa isa :
       {simd::Isa::kGeneric, simd::Isa::kSse2, simd::Isa::kAvx2}) {
    if (simd::IsaSupported(isa)) isas.push_back(isa);
  }

  bench::BenchJson json("BENCH_simd_blocked.json");
  json.SetContext(bench::StandardContext(/*with_isa=*/false));
  for (const Regime& regime : regimes) {
    for (const Geometry& g : geometries) {
      for (SbfPolicy policy :
           {SbfPolicy::kMinimumSelection, SbfPolicy::kMinimalIncrease}) {
        std::printf("# %s %s %s\n", regime.name, g.name,
                    policy == SbfPolicy::kMinimumSelection ? "ms" : "mi");
        RunCell(json, regime, g, policy, isas);
      }
    }
  }
  simd::ForceIsa(simd::BestSupportedIsa());
  return json.WriteFile() ? 0 : 1;
}
