// Table 2: what to do with extra memory — grow the primary SBF (Minimum
// Selection, re-optimizing k to keep gamma ~ 0.7) or attach a secondary
// SBF of that size (Recurring Minimum)?
//
// Base configuration: n = 1000, k0 = 5, primary m0 at gamma = 0.7. Extra
// memory of {1, 0.5, 0.33, 0.25, 0.2, 0.1} * m0. The table reports the
// error ratio MS_error / RM_error (> 1 means RM wins) and the modified k
// the grown MS filter uses — the paper's row shows RM winning for the
// intermediate fractions and losing at the extremes.

#include <algorithm>
#include <cmath>

#include "common/harness.h"
#include "core/recurring_minimum.h"
#include "core/spectral_bloom_filter.h"
#include "workload/multiset_stream.h"

using sbf::ErrorStats;
using sbf::Multiset;
using sbf::TablePrinter;

int main() {
  constexpr uint64_t kN = 1000;
  constexpr uint64_t kTotal = 50000;
  constexpr uint32_t kK0 = 5;
  const uint64_t m0 = static_cast<uint64_t>(kN * kK0 / 0.7);
  const double fractions[] = {1.0, 0.5, 0.33, 0.25, 0.2, 0.1};

  sbf::bench::PrintHeader(
      "Table 2 - extra memory: grow MS (re-optimized k) vs add RM secondary",
      "n = 1000, Zipf 0.5, base primary at gamma = 0.7 (m0 = 7143, k0 = 5); "
      "averaged over 5 runs");

  TablePrinter table({"mem increase", "MS err ratio", "RM err ratio",
                      "MS/RM (>1: RM wins)", "modified k"});

  for (double fraction : fractions) {
    const uint64_t extra = static_cast<uint64_t>(fraction * m0);
    const uint64_t ms_m = m0 + extra;
    // Keep gamma at ~0.7 for the grown MS filter by raising k, as the
    // paper does ("so as to have maximum impact of the additional space").
    const uint32_t ms_k = std::max<uint32_t>(
        kK0, static_cast<uint32_t>(std::lround(0.7 * ms_m / kN)));

    ErrorStats ms_stats, rm_stats;
    for (int run = 0; run < sbf::bench::kRuns; ++run) {
      const uint64_t seed = 0x7AB2Eull + run * 104729;
      const Multiset data = sbf::MakeZipfMultiset(kN, kTotal, 0.5, seed);

      sbf::SbfOptions ms_options;
      ms_options.m = ms_m;
      ms_options.k = ms_k;
      ms_options.seed = seed * 13;
      ms_options.backing = sbf::CounterBacking::kFixed64;
      sbf::SpectralBloomFilter ms(ms_options);

      sbf::RecurringMinimumOptions rm_options;
      rm_options.primary_m = m0;
      rm_options.secondary_m = std::max<uint64_t>(1, extra);
      rm_options.k = kK0;
      rm_options.seed = seed * 13;
      rm_options.backing = sbf::CounterBacking::kFixed64;
      sbf::RecurringMinimumSbf rm(rm_options);

      for (uint64_t key : data.stream) {
        ms.Insert(key);
        rm.Insert(key);
      }
      for (size_t i = 0; i < data.keys.size(); ++i) {
        ms_stats.Record(ms.Estimate(data.keys[i]), data.freqs[i]);
        rm_stats.Record(rm.Estimate(data.keys[i]), data.freqs[i]);
      }
    }
    const double ms_ratio = ms_stats.ErrorRatio();
    const double rm_ratio = rm_stats.ErrorRatio();
    table.AddRow({TablePrinter::Fmt(fraction, 2),
                  TablePrinter::Fmt(ms_ratio, 4),
                  TablePrinter::Fmt(rm_ratio, 4),
                  rm_ratio > 0 ? TablePrinter::Fmt(ms_ratio / rm_ratio, 3)
                               : "inf",
                  TablePrinter::FmtInt(ms_k)});
  }
  table.Print();
  return 0;
}
