// Figure 10: storage of the counter encoding methods of Section 4.5 as the
// average item frequency grows — Elias delta vs two "steps" configurations
// ({1,2} and {2,3}, plus the {0,0} example), compared against the optimal
// "log of counters" baseline sum(ceil(log C_i)).
//
// Paper shape: near average frequency 1 ("almost set") the steps methods
// win thanks to their 1-2 bit small-counter codes; as the average
// frequency grows, Elias overtakes them.

#include <vector>

#include "bitstream/elias.h"
#include "bitstream/steps_code.h"
#include "common/harness.h"
#include "util/bits.h"
#include "workload/multiset_stream.h"

using sbf::Multiset;
using sbf::StepsCode;
using sbf::TablePrinter;

namespace {

// Encoded size of the counter array of an SBF-like vector where the
// counters hold the given multiset's frequencies hashed k=1 ways (i.e. the
// frequency histogram itself — the encoding question is independent of the
// hashing).
uint64_t LogCounterBits(const std::vector<uint64_t>& counters) {
  uint64_t bits = 0;
  for (uint64_t c : counters) bits += sbf::BitWidth(c);
  return bits;
}

uint64_t EliasBits(const std::vector<uint64_t>& counters) {
  uint64_t bits = 0;
  for (uint64_t c : counters) bits += sbf::EliasDeltaLength(c + 1);
  return bits;
}

uint64_t StepsBits(const StepsCode& code,
                   const std::vector<uint64_t>& counters) {
  uint64_t bits = 0;
  for (uint64_t c : counters) bits += code.Length(c);
  return bits;
}

}  // namespace

int main() {
  constexpr uint64_t kM = 100000;  // counters in the array
  const std::vector<double> avg_freqs{0.5, 1, 2, 5, 10, 25, 50, 100};
  const StepsCode steps00({0, 0});
  const StepsCode steps12({1, 2});
  const StepsCode steps23({2, 3});

  sbf::bench::PrintHeader(
      "Figure 10 - encoded array size vs average counter value",
      "m = 100000 counters, Zipf 0.5 multiplicities scaled to the average; "
      "sizes in bits");

  TablePrinter table({"avg freq", "log counters", "Elias delta",
                      "steps {0,0}", "steps {1,2}", "steps {2,3}"});
  for (double avg : avg_freqs) {
    // Counter values: a Zipfian multiset of n = m/2 distinct keys hashed
    // into m counters with k = 1 (half the counters stay 0, like a filter
    // at gamma = 0.5).
    const uint64_t distinct = kM / 2;
    const uint64_t total = static_cast<uint64_t>(avg * kM);
    const Multiset data = sbf::MakeZipfMultiset(
        distinct, std::max<uint64_t>(total, distinct), 0.5, 42);
    std::vector<uint64_t> counters(kM, 0);
    for (size_t i = 0; i < data.keys.size(); ++i) {
      counters[(data.keys[i] * 0x9E3779B97F4A7C15ull) % kM] += data.freqs[i];
    }

    table.AddRow({TablePrinter::Fmt(avg, 1),
                  TablePrinter::FmtInt(LogCounterBits(counters)),
                  TablePrinter::FmtInt(EliasBits(counters)),
                  TablePrinter::FmtInt(StepsBits(steps00, counters)),
                  TablePrinter::FmtInt(StepsBits(steps12, counters)),
                  TablePrinter::FmtInt(StepsBits(steps23, counters))});
  }
  table.Print();
  return 0;
}
