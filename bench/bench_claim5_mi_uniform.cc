// Ablation for Claim 5 (Section 3.2): on uniform data the Minimal
// Increase algorithm reduces the expected error *size* by a factor of
// about k relative to Minimum Selection. We sweep k and report the
// additive-error ratio MS/MI, which should track k.

#include <vector>

#include "common/harness.h"

using sbf::ErrorStats;
using sbf::Multiset;
using sbf::TablePrinter;
using namespace sbf::bench;

int main() {
  constexpr uint64_t kN = 1000;
  constexpr uint64_t kTotal = 100000;

  PrintHeader("Claim 5 ablation - MI error reduction vs k on uniform data",
              "n = 1000 uniform keys, M = 100000, gamma = 1.0; averaged "
              "over 5 runs");

  TablePrinter table({"k", "E_add MS", "E_add MI", "MS/MI (expect ~k)"});
  for (uint32_t k = 2; k <= 6; ++k) {
    const uint64_t m = kN * k;  // gamma = 1
    ErrorStats ms_stats, mi_stats;
    for (int run = 0; run < kRuns; ++run) {
      const uint64_t seed = 0xC1A15ull + run * 17;
      const Multiset data = sbf::MakeUniformMultiset(kN, kTotal, seed);
      auto ms = MakeFilter(Algorithm::kMinimumSelection, m, k, seed * 3);
      auto mi = MakeFilter(Algorithm::kMinimalIncrease, m, k, seed * 3);
      ms_stats.Merge(MeasureAccuracy(*ms, data));
      mi_stats.Merge(MeasureAccuracy(*mi, data));
    }
    const double ms_err = ms_stats.AdditiveError();
    const double mi_err = mi_stats.AdditiveError();
    table.AddRow({TablePrinter::FmtInt(k), TablePrinter::Fmt(ms_err, 3),
                  TablePrinter::Fmt(mi_err, 3),
                  mi_err > 0 ? TablePrinter::Fmt(ms_err / mi_err, 2) : "inf"});
  }
  table.Print();
  return 0;
}
