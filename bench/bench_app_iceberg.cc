// Section 5.2 application: ad-hoc iceberg queries. The SBF engine builds
// once and answers any threshold; the MULTISCAN-SHARED baseline must know
// the threshold up front and rescans the data per threshold. We compare
// result quality, scans over the data, and memory.

#include <set>
#include <vector>

#include "common/harness.h"
#include "db/iceberg.h"

using sbf::IcebergEngine;
using sbf::Multiset;
using sbf::MultiscanIceberg;
using sbf::TablePrinter;

int main() {
  constexpr uint64_t kN = 2000;
  constexpr uint64_t kTotal = 200000;
  const Multiset data = sbf::MakeZipfMultiset(kN, kTotal, 1.1, 0x1CEBE6);

  sbf::bench::PrintHeader(
      "Section 5.2 - ad-hoc iceberg queries: SBF vs MULTISCAN-SHARED",
      "n = 2000, M = 200000, Zipf 1.1; thresholds changed after the data "
      "was seen");

  sbf::SbfOptions options;
  options.m = 12000;
  options.k = 5;
  options.seed = 3;
  options.backing = sbf::CounterBacking::kCompact;
  IcebergEngine engine(options);
  size_t engine_scans = 1;  // streaming build: the data is seen once
  for (uint64_t key : data.stream) engine.Observe(key);

  TablePrinter table({"threshold", "method", "reported", "true heavy",
                      "false pos", "scans of data", "memory KB"});

  size_t multiscan_scans = 0;
  for (uint64_t threshold : {500ull, 200ull, 80ull, 30ull}) {
    size_t truly_heavy = 0;
    std::set<uint64_t> heavy_keys;
    for (size_t i = 0; i < data.keys.size(); ++i) {
      if (data.freqs[i] >= threshold) {
        ++truly_heavy;
        heavy_keys.insert(data.keys[i]);
      }
    }

    const auto reported = engine.Query(data.keys, threshold);
    size_t false_pos = 0;
    for (uint64_t key : reported) false_pos += !heavy_keys.contains(key);
    table.AddRow({TablePrinter::FmtInt(threshold), "SBF (ad-hoc)",
                  TablePrinter::FmtInt(reported.size()),
                  TablePrinter::FmtInt(truly_heavy),
                  TablePrinter::FmtInt(false_pos),
                  TablePrinter::FmtInt(engine_scans),
                  TablePrinter::FmtInt(engine.MemoryUsageBits() / 8192)});

    // The baseline rebuilds its cascade for every new threshold.
    MultiscanIceberg multiscan(
        {{.buckets = 1024, .k = 1}, {.buckets = 512, .k = 1}}, threshold,
        0xA5C + threshold);
    const auto result = multiscan.Run(data);
    multiscan_scans += result.scans;
    table.AddRow({TablePrinter::FmtInt(threshold), "MULTISCAN-SHARED",
                  TablePrinter::FmtInt(result.heavy_keys.size()),
                  TablePrinter::FmtInt(truly_heavy),
                  TablePrinter::FmtInt(0),  // exact after verification scan
                  TablePrinter::FmtInt(multiscan_scans),
                  TablePrinter::FmtInt(result.memory_bits / 8192)});
  }
  table.Print();
  std::printf(
      "\nThe SBF engine answered all four thresholds from one pass over the "
      "data;\nMULTISCAN re-scanned for every threshold change (cumulative "
      "scan column).\n");
  return 0;
}
