// Ablation for the external-memory SBF (Section 2.2 / [MW94]): how much
// accuracy does hash-domain segmentation cost as the block shrinks?
//
// Paper claim: "for large enough segments, the difference is negligible".
// We sweep the block size from the whole array down to 64 counters and
// report error ratio and additive error against the unsegmented SBF —
// plus the locality payoff: blocks touched per operation is always 1,
// versus up to k scattered accesses for the flat filter.

#include <vector>

#include "common/harness.h"
#include "core/blocked_sbf.h"

using sbf::BlockedSbf;
using sbf::BlockedSbfOptions;
using sbf::ErrorStats;
using sbf::Multiset;
using sbf::TablePrinter;

int main() {
  constexpr uint64_t kM = 8192;
  constexpr uint32_t kK = 5;
  constexpr uint64_t kN = 1000;
  constexpr uint64_t kTotal = 50000;

  sbf::bench::PrintHeader(
      "Ablation - blocked (external-memory) SBF vs block size",
      "m = 8192, k = 5, n = 1000, M = 50000, Zipf 0.5 (gamma = 0.61); "
      "averaged over 5 runs; block = m is the unsegmented filter");

  TablePrinter table({"block size", "blocks", "E_ratio", "E_add",
                      "blocks touched/op"});
  for (uint64_t block_size : {kM, kM / 2, kM / 8, kM / 32, kM / 128}) {
    ErrorStats stats;
    for (int run = 0; run < sbf::bench::kRuns; ++run) {
      const uint64_t seed = 0xB10Cull + run * 37;
      const Multiset data = sbf::MakeZipfMultiset(kN, kTotal, 0.5, seed);
      BlockedSbfOptions options;
      options.m = kM;
      options.block_size = block_size;
      options.k = kK;
      options.seed = seed * 3;
      options.backing = sbf::CounterBacking::kFixed64;
      BlockedSbf filter(options);
      for (uint64_t key : data.stream) filter.Insert(key);
      for (size_t i = 0; i < data.keys.size(); ++i) {
        stats.Record(filter.Estimate(data.keys[i]), data.freqs[i]);
      }
    }
    table.AddRow({TablePrinter::FmtInt(block_size),
                  TablePrinter::FmtInt(kM / block_size),
                  TablePrinter::Fmt(stats.ErrorRatio(), 4),
                  TablePrinter::Fmt(stats.AdditiveError(), 2),
                  block_size == kM ? "k (unsegmented)" : "1"});
  }
  table.Print();
  return 0;
}
