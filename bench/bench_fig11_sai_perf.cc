// Figure 11: string-array index (dynamic compact counter storage)
// performance over array sizes 1,000 .. 1,000,000:
//   (i) static build (all zeros), (ii) 10n random increments,
//   (iii) n lookups — total time and time per action.
//
// Paper shape: all three are linear in n; per-action times are flat
// (O(1) / O(1) amortized), with updates noisier than lookups.

#include <vector>

#include "common/harness.h"
#include "sai/compact_counter_vector.h"
#include "util/random.h"
#include "util/timer.h"

using sbf::CompactCounterVector;
using sbf::TablePrinter;
using sbf::Timer;
using sbf::Xoshiro256;

int main() {
  const std::vector<size_t> sizes{1000,   5000,   10000,  50000,
                                  100000, 500000, 1000000};

  sbf::bench::PrintHeader(
      "Figure 11 - dynamic string-array storage performance",
      "build with zeros; 10n random increments; n lookups; times in ms "
      "(averaged over 5 runs)");

  TablePrinter table({"n", "build ms", "update ms (10n/10)", "lookup ms",
                      "build us/op", "update us/op", "lookup us/op",
                      "rebuilds"});
  for (size_t n : sizes) {
    double build_ms = 0, update_ms = 0, lookup_ms = 0;
    size_t rebuilds = 0;
    for (int run = 0; run < sbf::bench::kRuns; ++run) {
      Xoshiro256 rng(0x5A1ull + run * 13);
      Timer timer;
      CompactCounterVector counters(n);
      build_ms += timer.ElapsedMillis();

      timer.Restart();
      for (size_t i = 0; i < 10 * n; ++i) {
        counters.Increment(rng.UniformInt(n), 1);
      }
      // Divided by 10 so the columns are comparable (the paper does the
      // same: "dividing the time of stage (ii) by 10").
      update_ms += timer.ElapsedMillis() / 10.0;
      rebuilds += counters.rebuild_count();

      timer.Restart();
      uint64_t sink = 0;
      for (size_t i = 0; i < n; ++i) sink += counters.Get(i);
      lookup_ms += timer.ElapsedMillis();
      if (sink == 0xDEAD) std::printf("!");  // keep the loop alive
    }
    build_ms /= sbf::bench::kRuns;
    update_ms /= sbf::bench::kRuns;
    lookup_ms /= sbf::bench::kRuns;
    table.AddRow(
        {TablePrinter::FmtInt(n), TablePrinter::Fmt(build_ms, 2),
         TablePrinter::Fmt(update_ms, 2), TablePrinter::Fmt(lookup_ms, 2),
         TablePrinter::Fmt(build_ms * 1e3 / n, 4),
         TablePrinter::Fmt(update_ms * 1e3 / n, 4),
         TablePrinter::Fmt(lookup_ms * 1e3 / n, 4),
         TablePrinter::FmtInt(rebuilds / sbf::bench::kRuns)});
  }
  table.Print();
  return 0;
}
