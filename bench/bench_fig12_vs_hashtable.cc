// Figure 12: the full SBF (compact storage, k = 5) against a chaining
// hash table with the same number of buckets and the same hash family
// (the LEDA comparison of Section 6.4). Build, 10n updates, n lookups.
//
// Paper shape: the hash table is faster, but only ~2x at large sizes —
// much less than the naive kx expectation — because chains grow while SBF
// operation counts stay fixed.

#include <vector>

#include "common/harness.h"
#include "core/spectral_bloom_filter.h"
#include "db/chaining_hash_table.h"
#include "util/random.h"
#include "util/timer.h"

using sbf::ChainingHashTable;
using sbf::SpectralBloomFilter;
using sbf::TablePrinter;
using sbf::Timer;
using sbf::Xoshiro256;

int main() {
  const std::vector<size_t> sizes{1000, 10000, 100000, 1000000};

  sbf::bench::PrintHeader(
      "Figure 12 - SBF (compact, k = 5) vs chaining hash table",
      "same table size m, same hash construction; 10m random key updates "
      "drawn from m/2 distinct keys; times in ms over 5 runs");

  TablePrinter table({"m", "SBF build", "SBF update", "SBF lookup",
                      "hash build", "hash update", "hash lookup",
                      "update ratio", "lookup ratio"});
  for (size_t m : sizes) {
    double sbf_build = 0, sbf_update = 0, sbf_lookup = 0;
    double hash_build = 0, hash_update = 0, hash_lookup = 0;
    const size_t updates = 10 * m;
    const size_t distinct = m / 2;

    for (int run = 0; run < sbf::bench::kRuns; ++run) {
      Xoshiro256 rng(0xF12ull + run * 31);
      std::vector<uint64_t> keys(updates);
      for (auto& key : keys) key = rng.UniformInt(distinct);

      Timer timer;
      sbf::SbfOptions options;
      options.m = m;
      options.k = 5;
      options.seed = run;
      options.backing = sbf::CounterBacking::kCompact;
      SpectralBloomFilter filter(options);
      sbf_build += timer.ElapsedMillis();

      timer.Restart();
      for (uint64_t key : keys) filter.Insert(key);
      sbf_update += timer.ElapsedMillis();

      timer.Restart();
      uint64_t sink = 0;
      for (size_t i = 0; i < distinct; ++i) sink += filter.Estimate(i);
      sbf_lookup += timer.ElapsedMillis();

      timer.Restart();
      ChainingHashTable hash(m, run);
      hash_build += timer.ElapsedMillis();

      timer.Restart();
      for (uint64_t key : keys) hash.Insert(key);
      hash_update += timer.ElapsedMillis();

      timer.Restart();
      for (size_t i = 0; i < distinct; ++i) sink += hash.Count(i);
      hash_lookup += timer.ElapsedMillis();
      if (sink == 0xDEAD) std::printf("!");
    }
    const double r = sbf::bench::kRuns;
    table.AddRow({TablePrinter::FmtInt(m),
                  TablePrinter::Fmt(sbf_build / r, 2),
                  TablePrinter::Fmt(sbf_update / r, 2),
                  TablePrinter::Fmt(sbf_lookup / r, 2),
                  TablePrinter::Fmt(hash_build / r, 2),
                  TablePrinter::Fmt(hash_update / r, 2),
                  TablePrinter::Fmt(hash_lookup / r, 2),
                  TablePrinter::Fmt(sbf_update / std::max(hash_update, 1e-9), 2),
                  TablePrinter::Fmt(sbf_lookup / std::max(hash_lookup, 1e-9), 2)});
  }
  table.Print();
  return 0;
}
