// Figure 14: breakdown of the string-array index storage into its
// components — base array, level-1 coarse offsets (C1), level-2 offset
// vectors (complete vectors + C2), level-3 mini offset vectors, and the
// lookup table — for the empty array and after 10n random increments.
//
// Paper shape: the empty array needs almost no level-3 offset vectors
// (every chunk fits the lookup table); the filled array pushes a sizable
// share of chunks past the lookup-table threshold.

#include <vector>

#include "common/harness.h"
#include "sai/compact_counter_vector.h"
#include "sai/string_array_index.h"
#include "util/random.h"

using sbf::CompactCounterVector;
using sbf::StringArrayIndex;
using sbf::TablePrinter;
using sbf::Xoshiro256;

namespace {

void Report(TablePrinter* table, size_t n, double avg_freq,
            const CompactCounterVector& counters) {
  std::vector<uint32_t> widths(counters.size());
  for (size_t i = 0; i < counters.size(); ++i) {
    widths[i] = counters.WidthOf(i);
  }
  StringArrayIndex index(widths);
  const auto sizes = index.component_sizes();
  table->AddRow({TablePrinter::FmtInt(n), TablePrinter::Fmt(avg_freq, 0),
                 TablePrinter::FmtInt(counters.UsedBits()),
                 TablePrinter::FmtInt(sizes.c1_bits),
                 TablePrinter::FmtInt(sizes.l2_offset_vector_bits),
                 TablePrinter::FmtInt(sizes.l3_offset_vector_bits),
                 TablePrinter::FmtInt(sizes.lookup_table_bits),
                 TablePrinter::FmtInt(sizes.flags_and_rank_bits),
                 TablePrinter::FmtInt(index.num_lookup_configs())});
}

}  // namespace

int main() {
  const std::vector<size_t> sizes{1000,  5000,   10000, 25000,
                                  50000, 100000, 250000, 500000};

  sbf::bench::PrintHeader(
      "Figure 14 - string-array index storage breakdown (bits)",
      "components for average frequency 0 and 10");

  TablePrinter table({"n", "avg freq", "base array", "C1",
                      "L2 offset vectors", "L3 offset vectors",
                      "lookup table", "flags+rank", "LT configs"});
  for (size_t n : sizes) {
    CompactCounterVector empty(n);
    Report(&table, n, 0, empty);

    CompactCounterVector filled(n);
    Xoshiro256 rng(0xB8EAull + n);
    for (size_t i = 0; i < 10 * n; ++i) {
      filled.Increment(rng.UniformInt(n), 1);
    }
    filled.ForceRebuild();
    Report(&table, n, 10, filled);
  }
  table.Print();
  return 0;
}
