#ifndef SBF_BENCH_COMMON_HARNESS_H_
#define SBF_BENCH_COMMON_HARNESS_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/frequency_filter.h"
#include "core/recurring_minimum.h"
#include "core/spectral_bloom_filter.h"
#include "core/trapping_rm.h"
#include "util/metrics.h"
#include "util/table_printer.h"
#include "workload/multiset_stream.h"

namespace sbf::bench {

// The paper's experimental protocol (Section 6.1): every reported number
// is the average over 5 independent runs with different seeds.
inline constexpr int kRuns = 5;

// The three lookup schemes compared throughout Section 6.
enum class Algorithm { kMinimumSelection, kMinimalIncrease, kRecurringMinimum };

inline const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kMinimumSelection:
      return "MS";
    case Algorithm::kMinimalIncrease:
      return "MI";
    case Algorithm::kRecurringMinimum:
      return "RM";
  }
  return "?";
}

inline std::vector<Algorithm> AllAlgorithms() {
  return {Algorithm::kMinimumSelection, Algorithm::kMinimalIncrease,
          Algorithm::kRecurringMinimum};
}

// Builds a filter with `total_m` counters overall — for RM the budget is
// split 2:1 between primary and secondary, the paper's fair-comparison
// setup ("the sizes of the primary and the secondary SBFs together being
// m", Section 6.1).
inline std::unique_ptr<FrequencyFilter> MakeFilter(Algorithm algorithm,
                                                   uint64_t total_m,
                                                   uint32_t k, uint64_t seed) {
  switch (algorithm) {
    case Algorithm::kMinimumSelection:
    case Algorithm::kMinimalIncrease: {
      SbfOptions options;
      options.m = total_m;
      options.k = k;
      options.policy = algorithm == Algorithm::kMinimumSelection
                           ? SbfPolicy::kMinimumSelection
                           : SbfPolicy::kMinimalIncrease;
      options.seed = seed;
      options.backing = CounterBacking::kFixed64;
      return std::make_unique<SpectralBloomFilter>(options);
    }
    case Algorithm::kRecurringMinimum:
      return std::make_unique<RecurringMinimumSbf>(
          RecurringMinimumSbf::WithTotalBudget(total_m, k, seed));
  }
  return nullptr;
}

// Inserts the stream and queries every distinct key, returning the error
// statistics the paper reports (E_add, E_ratio, FN share).
inline ErrorStats MeasureAccuracy(FrequencyFilter& filter,
                                  const Multiset& data) {
  for (uint64_t key : data.stream) filter.Insert(key);
  ErrorStats stats;
  for (size_t i = 0; i < data.keys.size(); ++i) {
    stats.Record(filter.Estimate(data.keys[i]), data.freqs[i]);
  }
  return stats;
}

// Runs `fn(seed)` kRuns times with distinct seeds and merges the stats.
inline ErrorStats AverageRuns(
    const std::function<ErrorStats(uint64_t seed)>& fn) {
  ErrorStats merged;
  for (int run = 0; run < kRuns; ++run) {
    merged.Merge(fn(0x5BF5EEDull + static_cast<uint64_t>(run) * 7919));
  }
  return merged;
}

inline void PrintHeader(const std::string& title, const std::string& setup) {
  std::printf("\n=== %s ===\n%s\n\n", title.c_str(), setup.c_str());
}

}  // namespace sbf::bench

#endif  // SBF_BENCH_COMMON_HARNESS_H_
