#ifndef SBF_BENCH_COMMON_BENCH_JSON_H_
#define SBF_BENCH_COMMON_BENCH_JSON_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/simd_kernels.h"

namespace sbf::bench {

// Shared result schema for every BENCH_*.json artifact the bench binaries
// emit. Each row is
//
//   {"name": "<kernel>", "params": {...}, "ns_per_op": <double>,
//    "throughput_mops": <double>}
//
// where `name` identifies the measured operation and `params` pins the
// sweep point (backing, batch size, threads, ...). One schema across all
// benchmarks means CI and the EXPERIMENTS.md tables can consume any
// benchmark's artifact with the same parser. Rows are also printed to
// stdout as they are added, so interactive runs stream results.
//
// Context params (SetContext / StandardContext below) are appended to
// every row's params: build-level facts — the active SIMD ISA, the
// compiler and its flags — that distinguish artifacts produced by
// different CI legs of the same benchmark.
class BenchJson {
 public:
  // One params entry; values render as JSON strings or numbers.
  struct Param {
    Param(std::string k, const char* v)
        : key(std::move(k)), rendered('"' + std::string(v) + '"') {}
    Param(std::string k, const std::string& v)
        : key(std::move(k)), rendered('"' + v + '"') {}
    Param(std::string k, uint64_t v)
        : key(std::move(k)), rendered(std::to_string(v)) {}
    Param(std::string k, int v)
        : key(std::move(k)), rendered(std::to_string(v)) {}
    Param(std::string k, double v) : key(std::move(k)), rendered(Num(v)) {}

    std::string key;
    std::string rendered;
  };

  // `path` is where WriteFile() lands the artifact (e.g.
  // "BENCH_batch_pipeline.json").
  explicit BenchJson(std::string path) : path_(std::move(path)) {}

  // Params appended to every subsequent row (keys must not collide with
  // per-row params). Typically StandardContext().
  void SetContext(std::vector<Param> context) {
    context_ = std::move(context);
  }

  void Add(const std::string& name, const std::vector<Param>& params,
           double ns_per_op, double throughput_mops) {
    std::string row = "{\"name\":\"" + name + "\",\"params\":{";
    bool first = true;
    const std::vector<Param>* groups[] = {&params, &context_};
    for (const std::vector<Param>* group : groups) {
      for (const Param& param : *group) {
        if (!first) row += ',';
        first = false;
        row += '"' + param.key + "\":" + param.rendered;
      }
    }
    row += "},\"ns_per_op\":" + Num(ns_per_op) +
           ",\"throughput_mops\":" + Num(throughput_mops) + "}";
    std::printf("%s\n", row.c_str());
    std::fflush(stdout);
    rows_.push_back(std::move(row));
  }

  // Writes all accumulated rows as one JSON array. Returns false (and
  // complains on stderr) if the file cannot be written.
  bool WriteFile() const {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return false;
    }
    std::fputs("[\n", f);
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "  %s%s\n", rows_[i].c_str(),
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fputs("]\n", f);
    std::fclose(f);
    return true;
  }

  const std::string& path() const { return path_; }

 private:
  static std::string Num(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", v);
    return buf;
  }

  std::string path_;
  std::vector<Param> context_;
  std::vector<std::string> rows_;
};

// The standard row context: the SIMD ISA the process dispatched to (after
// CPU detection and any SBF_FORCE_ISA override) plus the compiler identity
// and flags the benchmark was built with (SBF_BENCH_CXX_FLAGS is injected
// by bench/CMakeLists.txt). Benchmarks that sweep ForceIsa() themselves
// should omit the "isa" entry and emit a per-row param instead.
inline std::vector<BenchJson::Param> StandardContext(bool with_isa = true) {
  std::vector<BenchJson::Param> context;
  if (with_isa) {
    context.emplace_back("isa", simd::IsaName(simd::Active().isa));
  }
  context.emplace_back("compiler", __VERSION__);
#ifdef SBF_BENCH_CXX_FLAGS
  context.emplace_back("cxx_flags", SBF_BENCH_CXX_FLAGS);
#else
  context.emplace_back("cxx_flags", "");
#endif
  return context;
}

// Baseline bookkeeping for scaling sweeps: every multi-threaded bench that
// reports `speedup_vs_1t` records its 1-thread wall time per sweep cell
// here and divides later runs of the same cell by it. Keying by the full
// cell label (e.g. "insert/fixed64/S=16") rather than positionally keeps
// the speedup honest when sweep loops are reordered; scripts/
// check_scaling.py consumes the resulting field to gate perf-smoke CI.
class SpeedupBaseline {
 public:
  // Records `seconds` as the baseline for `cell` (call at threads == 1).
  void Set(const std::string& cell, double seconds) {
    entries_.emplace_back(cell, seconds);
  }

  // Baseline / current: > 1 means faster than one thread. Returns 1.0 for
  // an unknown cell (the 1-thread row itself, by construction).
  double Speedup(const std::string& cell, double seconds) const {
    for (const auto& [key, baseline] : entries_) {
      if (key == cell) return seconds > 0.0 ? baseline / seconds : 0.0;
    }
    return 1.0;
  }

 private:
  std::vector<std::pair<std::string, double>> entries_;
};

// One worker's timing of its pre-partitioned slice. Aggregating completed
// per-thread timers after the join (instead of one shared timer read
// inside the loop, or per-chunk vector copies inside the timed region)
// keeps measurement overhead out of the contended path; the max across
// workers approximates the critical path and is what the wall clock
// should roughly reproduce.
struct ThreadTiming {
  double seconds = 0.0;
  uint64_t ops = 0;
};

inline double MaxSeconds(const std::vector<ThreadTiming>& timings) {
  double max_s = 0.0;
  for (const ThreadTiming& t : timings) max_s = std::max(max_s, t.seconds);
  return max_s;
}

inline double SumSeconds(const std::vector<ThreadTiming>& timings) {
  double sum = 0.0;
  for (const ThreadTiming& t : timings) sum += t.seconds;
  return sum;
}

}  // namespace sbf::bench

#endif  // SBF_BENCH_COMMON_BENCH_JSON_H_
