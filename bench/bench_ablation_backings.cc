// Ablation over the counter storage backings (DESIGN.md's storage
// polymorphism): with identical filter logic, how do the paper's compact
// structure (Section 4.4), the serial-scan alternative (Section 4.5) and
// plain fixed-width counters trade memory for speed? Estimates are
// identical across backings by construction — only footprint and
// throughput differ.

#include <vector>

#include "common/harness.h"
#include "core/spectral_bloom_filter.h"
#include "util/timer.h"

using sbf::Multiset;
using sbf::TablePrinter;
using sbf::Timer;

int main() {
  constexpr uint64_t kN = 5000;
  constexpr uint64_t kTotal = 250000;
  constexpr uint32_t kK = 5;
  const uint64_t m = static_cast<uint64_t>(kN * kK / 0.7);

  sbf::bench::PrintHeader(
      "Ablation - counter backings under identical SBF logic",
      "n = 5000, M = 250000, Zipf 0.8, gamma = 0.7, k = 5; single run");

  const Multiset data = sbf::MakeZipfMultiset(kN, kTotal, 0.8, 0xABC);

  TablePrinter table({"backing", "memory bits", "bits/counter",
                      "insert ms", "lookup ms", "estimate sum (identical)"});
  for (sbf::CounterBacking backing :
       {sbf::CounterBacking::kFixed64, sbf::CounterBacking::kFixed32,
        sbf::CounterBacking::kCompact, sbf::CounterBacking::kSerialScan}) {
    sbf::SbfOptions options;
    options.m = m;
    options.k = kK;
    options.seed = 7;
    options.backing = backing;
    sbf::SpectralBloomFilter filter(options);

    Timer timer;
    for (uint64_t key : data.stream) filter.Insert(key);
    const double insert_ms = timer.ElapsedMillis();

    timer.Restart();
    uint64_t estimate_sum = 0;
    for (uint64_t key : data.keys) estimate_sum += filter.Estimate(key);
    const double lookup_ms = timer.ElapsedMillis();

    table.AddRow({sbf::CounterBackingName(backing),
                  TablePrinter::FmtInt(filter.MemoryUsageBits()),
                  TablePrinter::Fmt(
                      static_cast<double>(filter.MemoryUsageBits()) / m, 1),
                  TablePrinter::Fmt(insert_ms, 1),
                  TablePrinter::Fmt(lookup_ms, 1),
                  TablePrinter::FmtInt(estimate_sum)});
  }
  table.Print();
  std::printf(
      "\nThe 'estimate sum' column is identical by construction: the "
      "backings are\nbehaviourally equivalent, trading only bits for "
      "nanoseconds.\n");
  return 0;
}
