// Shard-contention microbench: isolates WHERE the cycles go when several
// threads hammer the concurrent frontend — metadata coherence traffic vs
// actual counter contention — so a scaling regression in
// bench_concurrent_scaling can be attributed instead of guessed at.
// perf-friendly: each mode is a single tight loop per thread (annotate
// with `perf record -e cache-misses`), emitting one JSON row per
// (mode, threads) cell into BENCH_shard_contention.json.
//
// Modes:
//   counters_shared_line — fetch_adds on adjacent words of ONE cache line
//                          (the worst case padding exists to avoid);
//   counters_padded      — fetch_adds on 64-byte-strided words (what the
//                          per-shard counter arrays actually look like);
//   metadata_shared      — op tallies in an unpadded atomic array (the
//                          false-sharing layout ShardMetrics replaced);
//   metadata_padded      — op tallies through ShardMetrics' padded cells;
//   insert_direct        — ConcurrentSbf inserts, delta buffers off: every
//                          op touches the shard's shared atomics/locks;
//   insert_delta         — same keys through the delta buffers: shared
//                          state is touched once per epoch, not per op.
//
// All insert modes route EVERY key to shard 0 of an 8-shard filter — the
// adversarial single-hot-shard trace — so the numbers bound contention,
// not shard parallelism.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_json.h"
#include "core/concurrent_sbf.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/timer.h"

namespace sbf {
namespace {

constexpr size_t kOpsPerThread = 1 << 18;
constexpr size_t kSlots = 8;  // distinct words the threads spread over

struct alignas(64) PaddedCounter {
  std::atomic<uint64_t> value{0};
};

// Runs `threads` workers over `fn(thread_index)`, returns wall seconds.
template <typename Fn>
double RunThreads(int threads, Fn&& fn) {
  Timer wall;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) workers.emplace_back([&fn, t] { fn(t); });
  for (auto& w : workers) w.join();
  return wall.ElapsedSeconds();
}

void Emit(bench::BenchJson& json, bench::SpeedupBaseline& baselines,
          const std::string& mode, int threads, double wall_seconds) {
  const uint64_t total_ops = kOpsPerThread * static_cast<uint64_t>(threads);
  if (threads == 1) baselines.Set(mode, wall_seconds);
  json.Add("shard_contention",
           {{"mode", mode},
            {"threads", threads},
            {"ops", total_ops},
            {"speedup_vs_1t", baselines.Speedup(mode, wall_seconds)}},
           wall_seconds / static_cast<double>(total_ops) * 1e9,
           static_cast<double>(total_ops) / wall_seconds / 1e6);
}

void BenchCountersSharedLine(bench::BenchJson& json,
                             bench::SpeedupBaseline& baselines, int threads) {
  // kSlots adjacent words: every fetch_add bounces the same line between
  // the contending cores.
  auto words = std::make_unique<std::atomic<uint64_t>[]>(kSlots);
  const double wall = RunThreads(threads, [&](int t) {
    std::atomic<uint64_t>& word = words[static_cast<size_t>(t) % kSlots];
    for (size_t i = 0; i < kOpsPerThread; ++i) {
      word.fetch_add(1, std::memory_order_relaxed);
    }
  });
  Emit(json, baselines, "counters_shared_line", threads, wall);
}

void BenchCountersPadded(bench::BenchJson& json,
                         bench::SpeedupBaseline& baselines, int threads) {
  auto cells = std::make_unique<PaddedCounter[]>(kSlots);
  const double wall = RunThreads(threads, [&](int t) {
    std::atomic<uint64_t>& word = cells[static_cast<size_t>(t) % kSlots].value;
    for (size_t i = 0; i < kOpsPerThread; ++i) {
      word.fetch_add(1, std::memory_order_relaxed);
    }
  });
  Emit(json, baselines, "counters_padded", threads, wall);
}

void BenchMetadataShared(bench::BenchJson& json,
                         bench::SpeedupBaseline& baselines, int threads) {
  // The layout ShardMetrics replaced: per-shard tallies packed back to
  // back, so two shards' counters share a line and independent threads
  // false-share.
  auto tallies = std::make_unique<std::atomic<uint64_t>[]>(kSlots);
  const double wall = RunThreads(threads, [&](int t) {
    const size_t shard = static_cast<size_t>(t) % kSlots;
    for (size_t i = 0; i < kOpsPerThread; ++i) {
      tallies[shard].fetch_add(1, std::memory_order_relaxed);
    }
  });
  Emit(json, baselines, "metadata_shared", threads, wall);
}

void BenchMetadataPadded(bench::BenchJson& json,
                         bench::SpeedupBaseline& baselines, int threads) {
  ShardMetrics metrics(kSlots);
  const double wall = RunThreads(threads, [&](int t) {
    const size_t shard = static_cast<size_t>(t) % kSlots;
    for (size_t i = 0; i < kOpsPerThread; ++i) {
      metrics.RecordInsert(shard, 1);
    }
  });
  Emit(json, baselines, "metadata_padded", threads, wall);
}

void BenchInsert(bench::BenchJson& json, bench::SpeedupBaseline& baselines,
                 int threads, bool delta) {
  ConcurrentSbfOptions options;
  options.m = 1 << 18;
  options.k = 5;
  options.backing = CounterBacking::kFixed64;
  options.num_shards = 8;
  options.seed = 17;
  options.delta.enabled = delta;
  ConcurrentSbf filter(options);

  // Single hot shard: rejection-sample keys until all route to shard 0.
  Xoshiro256 rng(23);
  std::vector<uint64_t> keys;
  keys.reserve(kOpsPerThread);
  while (keys.size() < kOpsPerThread) {
    const uint64_t key = rng.Next();
    if (filter.ShardOf(key) == 0) keys.push_back(key);
  }

  const double wall = RunThreads(threads, [&](int t) {
    // Each thread walks the hot-shard keys at its own offset so the
    // threads collide on the shard, not on one single key's counters.
    const size_t offset = static_cast<size_t>(t) * 7919;
    for (size_t i = 0; i < kOpsPerThread; ++i) {
      filter.Insert(keys[(i + offset) % keys.size()]);
    }
  });
  filter.Flush();
  Emit(json, baselines, delta ? "insert_delta" : "insert_direct", threads,
       wall);
}

}  // namespace
}  // namespace sbf

int main() {
  sbf::bench::BenchJson json("BENCH_shard_contention.json");
  sbf::bench::SpeedupBaseline baselines;
  for (const int threads : {1, 2, 4, 8}) {
    sbf::BenchCountersSharedLine(json, baselines, threads);
    sbf::BenchCountersPadded(json, baselines, threads);
    sbf::BenchMetadataShared(json, baselines, threads);
    sbf::BenchMetadataPadded(json, baselines, threads);
    sbf::BenchInsert(json, baselines, threads, /*delta=*/false);
    sbf::BenchInsert(json, baselines, threads, /*delta=*/true);
  }
  return json.WriteFile() ? 0 : 1;
}
