// Figure 8: MS / RM / MI accuracy across Zipf skews with and without
// deletion phases (gamma = 0.7, k = 5). Protocol per the paper: a series
// of insertions interleaved with deletion phases; in each deletion phase
// 5% of the items are chosen at random and deleted entirely.
//
// Paper shape: without deletions MI is best; with deletions MI collapses —
// its additive error jumps 1-2 orders of magnitude and nearly all of its
// errors are false negatives, while MS and RM have none.

#include <unordered_map>
#include <vector>

#include "common/harness.h"
#include "util/random.h"

using sbf::ErrorStats;
using sbf::Multiset;
using sbf::TablePrinter;
using sbf::Xoshiro256;
using namespace sbf::bench;

namespace {

// Runs the insert/delete-phase protocol and returns the error stats
// against the post-deletion ground truth.
ErrorStats RunWithDeletions(sbf::FrequencyFilter& filter, const Multiset& data,
                            uint64_t seed) {
  constexpr int kPhases = 4;
  std::unordered_map<uint64_t, uint64_t> live;
  Xoshiro256 rng(seed ^ 0xDE1E7E5);

  const size_t chunk = data.stream.size() / kPhases;
  for (int phase = 0; phase < kPhases; ++phase) {
    const size_t begin = phase * chunk;
    const size_t end =
        phase == kPhases - 1 ? data.stream.size() : begin + chunk;
    for (size_t i = begin; i < end; ++i) {
      filter.Insert(data.stream[i]);
      ++live[data.stream[i]];
    }
    // Delete 5% of the currently present items entirely.
    std::vector<uint64_t> present;
    present.reserve(live.size());
    for (const auto& [key, count] : live) {
      if (count > 0) present.push_back(key);
    }
    rng.Shuffle(present);
    const size_t victims = present.size() / 20;
    for (size_t v = 0; v < victims; ++v) {
      const uint64_t key = present[v];
      filter.Remove(key, live[key]);
      live[key] = 0;
    }
  }

  ErrorStats stats;
  for (uint64_t key : data.keys) {
    stats.Record(filter.Estimate(key), live[key]);
  }
  return stats;
}

}  // namespace

int main() {
  constexpr uint64_t kN = 1000;
  constexpr uint64_t kTotal = 100000;
  constexpr uint32_t kK = 5;
  const uint64_t m = static_cast<uint64_t>(kN * kK / 0.7);
  const std::vector<double> skews{0.0, 0.4, 0.8, 1.2, 1.6, 2.0};

  PrintHeader("Figure 8 - deletions: accuracy vs skew",
              "gamma = 0.7, k = 5, n = 1000, M = 100000; 4 insert phases, "
              "5% of items fully deleted per phase; averaged over 5 runs");

  TablePrinter table({"skew", "mode", "E_add MS", "E_add RM", "E_add MI",
                      "E_ratio MS", "E_ratio RM", "E_ratio MI",
                      "MI FN share"});

  for (double skew : skews) {
    for (bool with_deletions : {false, true}) {
      std::vector<ErrorStats> stats;
      for (Algorithm algorithm :
           {Algorithm::kMinimumSelection, Algorithm::kRecurringMinimum,
            Algorithm::kMinimalIncrease}) {
        stats.push_back(AverageRuns([&](uint64_t seed) {
          const Multiset data = sbf::MakeZipfMultiset(kN, kTotal, skew, seed);
          auto filter = MakeFilter(algorithm, m, kK, seed * 3);
          if (!with_deletions) return MeasureAccuracy(*filter, data);
          return RunWithDeletions(*filter, data, seed);
        }));
      }
      table.AddRow({TablePrinter::Fmt(skew, 1),
                    with_deletions ? "with-del" : "insert-only",
                    TablePrinter::Fmt(stats[0].AdditiveError(), 2),
                    TablePrinter::Fmt(stats[1].AdditiveError(), 2),
                    TablePrinter::Fmt(stats[2].AdditiveError(), 2),
                    TablePrinter::Fmt(stats[0].ErrorRatio(), 4),
                    TablePrinter::Fmt(stats[1].ErrorRatio(), 4),
                    TablePrinter::Fmt(stats[2].ErrorRatio(), 4),
                    TablePrinter::Fmt(stats[2].FalseNegativeShare(), 3)});
    }
  }
  table.Print();
  return 0;
}
