// Figure 13: storage of the counter array — raw payload (the N bits of the
// counters themselves, plus slack) vs the full structure including the
// string-array index — for array sizes 1,000 .. 500,000, in the empty
// state (average frequency 0) and after 10n random increments (average
// frequency 10).
//
// Paper shape: the indexed structure costs ~1.5N bits when empty and
// settles around 2-2.5N bits at average frequency 10.

#include <vector>

#include "common/harness.h"
#include "sai/compact_counter_vector.h"
#include "sai/string_array_index.h"
#include "util/random.h"

using sbf::CompactCounterVector;
using sbf::StringArrayIndex;
using sbf::TablePrinter;
using sbf::Xoshiro256;

namespace {

std::vector<uint32_t> WidthsOf(const CompactCounterVector& counters) {
  std::vector<uint32_t> widths(counters.size());
  for (size_t i = 0; i < counters.size(); ++i) {
    widths[i] = counters.WidthOf(i);
  }
  return widths;
}

void Report(TablePrinter* table, size_t n, double avg_freq,
            const CompactCounterVector& counters) {
  StringArrayIndex index(WidthsOf(counters));
  const size_t payload = counters.UsedBits();
  // Once the static index is built over the frozen array, it subsumes the
  // dynamic structure's bookkeeping: total = base array + index.
  const size_t total = counters.BaseArrayBits() + index.IndexBits();
  table->AddRow({TablePrinter::FmtInt(n), TablePrinter::Fmt(avg_freq, 0),
                 TablePrinter::FmtInt(payload),
                 TablePrinter::FmtInt(counters.BaseArrayBits()),
                 TablePrinter::FmtInt(index.IndexBits()),
                 TablePrinter::FmtInt(total),
                 // The paper's Figure 13 comparison: index size relative to
                 // the raw (slack-padded) bit vector — ~1.5x empty, ~2x at
                 // average frequency 10 in the paper.
                 TablePrinter::Fmt(static_cast<double>(index.IndexBits()) /
                                       counters.BaseArrayBits(),
                                   2)});
}

}  // namespace

int main() {
  const std::vector<size_t> sizes{1000,  5000,   10000, 25000,
                                  50000, 100000, 250000, 500000};

  sbf::bench::PrintHeader(
      "Figure 13 - raw counter payload vs indexed structure size",
      "slack 0.5 bits/counter; avg freq 10 = 10n uniform random "
      "increments; bits");

  TablePrinter table({"n", "avg freq", "payload N", "base array (N+slack)",
                      "index bits", "total", "index/base"});
  for (size_t n : sizes) {
    CompactCounterVector empty(n);
    empty.ForceRebuild();
    Report(&table, n, 0, empty);

    CompactCounterVector filled(n);
    Xoshiro256 rng(0x513Eull + n);
    for (size_t i = 0; i < 10 * n; ++i) {
      filled.Increment(rng.UniformInt(n), 1);
    }
    filled.ForceRebuild();  // freeze with tight widths, as for indexing
    Report(&table, n, 10, filled);
  }
  table.Print();
  return 0;
}
