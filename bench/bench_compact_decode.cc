// Decoded-view refactor economics (the "close the compact-backing gap"
// ROADMAP item): what a compact-backed batch estimate costs now that
// PositionOf is O(1) and GetMany serves each touched group from one
// sequential width walk, against (a) the current scalar path and (b) a
// faithful replica of the pre-refactor per-access path that re-scanned the
// group's widths on every probe. Also times the full-vector DecodeBlock
// sweep vs a scalar Get sweep and the ApplyAddBatch flush path vs scalar
// inserts.
//
// Emits BENCH_compact_decode.json; scripts/check_compact.py gates the
// `speedup_vs_per_access` param of the compact batched-estimate row.

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/bench_json.h"
#include "common/harness.h"
#include "core/spectral_bloom_filter.h"
#include "sai/compact_counter_vector.h"
#include "util/timer.h"

namespace {

using sbf::CompactCounterVector;
using sbf::CounterBacking;
using sbf::Multiset;
using sbf::SbfOptions;
using sbf::SpectralBloomFilter;
using sbf::Timer;
using sbf::bench::BenchJson;

// Keeps the replicated width scans observable so the optimizer cannot
// delete the pre-refactor baseline's extra work.
volatile uint64_t g_sink = 0;

// The pre-refactor per-access estimate: before the sampled prefix-offset
// table, every compact Get(i) re-derived counter i's bit position by
// summing the widths from the group start (O(group_size) per probe). The
// width scan is reproduced against the live layout through the public
// WidthOf accessor, on top of today's Get — the same memory traffic the
// old PositionOf paid — so the artifact keeps an honest baseline even
// after the slow path is gone from the library.
uint64_t PreRefactorEstimate(const SpectralBloomFilter& filter,
                             const CompactCounterVector& cv, uint64_t key) {
  uint64_t positions[64];
  filter.hash().Positions(key, positions);
  const size_t group_size = cv.group_size();
  uint64_t best = ~uint64_t{0};
  for (uint32_t j = 0; j < filter.k(); ++j) {
    const size_t i = static_cast<size_t>(positions[j]);
    uint64_t scan = 0;
    for (size_t b = i - i % group_size; b < i; ++b) scan += cv.WidthOf(b);
    g_sink = g_sink + scan;
    best = std::min(best, cv.Get(i));
  }
  return best;
}

SpectralBloomFilter BuildFilter(CounterBacking backing, uint64_t m,
                                const Multiset& data) {
  SbfOptions options;
  options.m = m;
  options.k = 5;
  options.seed = 7;
  options.backing = backing;
  SpectralBloomFilter filter(options);
  for (uint64_t key : data.stream) filter.Insert(key);
  return filter;
}

}  // namespace

int main(int argc, char** argv) {
  bool small = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) small = true;
  }
  const uint64_t n = small ? 2000 : 5000;
  const uint64_t total = small ? 60000 : 250000;
  const int rounds = small ? 20 : 80;
  const uint64_t m = static_cast<uint64_t>(n * 5 / 0.7);

  sbf::bench::PrintHeader(
      "Decoded group views - compact batch estimate vs per-access decode",
      "Zipf 0.8 build, gamma = 0.7, k = 5; estimate sweep over all keys");

  const Multiset data = sbf::MakeZipfMultiset(n, total, 0.8, 0xDECD);
  const size_t q = data.keys.size();
  std::vector<uint64_t> out(q);

  BenchJson json("BENCH_compact_decode.json");
  json.SetContext(sbf::bench::StandardContext(/*with_isa=*/false));

  double compact_per_access_ns = 0.0;
  for (CounterBacking backing :
       {CounterBacking::kCompact, CounterBacking::kFixed64,
        CounterBacking::kSerialScan}) {
    const char* name = sbf::CounterBackingName(backing);
    SpectralBloomFilter filter = BuildFilter(backing, m, data);

    // Pre-refactor replica (compact only; the fixed backings never paid a
    // positional scan). Timed first so its ns/op can ride along as a
    // param of the batched row below.
    if (backing == CounterBacking::kCompact) {
      const auto& cv =
          static_cast<const CompactCounterVector&>(filter.counters());
      uint64_t checksum = 0;
      Timer timer;
      for (int r = 0; r < rounds; ++r) {
        for (uint64_t key : data.keys) {
          checksum += PreRefactorEstimate(filter, cv, key);
        }
      }
      const double seconds = timer.ElapsedSeconds();
      compact_per_access_ns = seconds * 1e9 / (rounds * q);
      json.Add("estimate_per_access_prerefactor",
               {{"backing", name}, {"checksum", checksum % 1000003}},
               compact_per_access_ns, rounds * q / (seconds * 1e6));
    }

    // Current scalar path (O(1) PositionOf, one virtual Get per probe).
    {
      uint64_t checksum = 0;
      Timer timer;
      for (int r = 0; r < rounds; ++r) {
        for (uint64_t key : data.keys) checksum += filter.Estimate(key);
      }
      const double seconds = timer.ElapsedSeconds();
      json.Add("estimate_scalar",
               {{"backing", name}, {"checksum", checksum % 1000003}},
               seconds * 1e9 / (rounds * q), rounds * q / (seconds * 1e6));
    }

    // Batched pipeline (hash-ahead + prefetch + group-granular GetMany).
    {
      uint64_t checksum = 0;
      Timer timer;
      for (int r = 0; r < rounds; ++r) {
        filter.EstimateBatch(data.keys.data(), q, out.data());
        for (size_t i = 0; i < q; ++i) checksum += out[i];
      }
      const double seconds = timer.ElapsedSeconds();
      const double ns = seconds * 1e9 / (rounds * q);
      std::vector<BenchJson::Param> params = {
          {"backing", name}, {"checksum", checksum % 1000003}};
      if (backing == CounterBacking::kCompact) {
        params.emplace_back("speedup_vs_per_access",
                            compact_per_access_ns / ns);
      }
      json.Add("estimate_batched", params, ns, rounds * q / (seconds * 1e6));
    }

    // Full-vector sweep: the DecodeBlock chunk walk Total()/serialization
    // use vs one virtual Get per counter.
    {
      const auto& cv = filter.counters();
      uint64_t checksum = 0;
      Timer timer;
      for (int r = 0; r < rounds; ++r) {
        for (size_t i = 0; i < cv.size(); ++i) checksum += cv.Get(i);
      }
      const double scalar_s = timer.ElapsedSeconds();
      json.Add("sweep_scalar_get",
               {{"backing", name}, {"checksum", checksum % 1000003}},
               scalar_s * 1e9 / (rounds * cv.size()),
               rounds * cv.size() / (scalar_s * 1e6));

      constexpr size_t kChunk = 256;
      uint64_t values[kChunk];
      checksum = 0;
      timer.Restart();
      for (int r = 0; r < rounds; ++r) {
        for (size_t base = 0; base < cv.size(); base += kChunk) {
          const size_t len = std::min(kChunk, cv.size() - base);
          cv.DecodeBlock(base, len, values);
          for (size_t j = 0; j < len; ++j) checksum += values[j];
        }
      }
      const double block_s = timer.ElapsedSeconds();
      json.Add("sweep_decode_block",
               {{"backing", name},
                {"checksum", checksum % 1000003},
                {"speedup_vs_scalar_get", scalar_s / block_s}},
               block_s * 1e9 / (rounds * cv.size()),
               rounds * cv.size() / (block_s * 1e6));
    }

    // The flush path: ApplyAddBatch (position-sorted, one decode + one
    // write-back per touched group) vs a loop of scalar inserts — what the
    // concurrent frontend's shard drain now pays vs what it paid before.
    {
      std::vector<std::pair<uint64_t, uint64_t>> entries;
      entries.reserve(data.keys.size());
      for (size_t i = 0; i < data.keys.size(); ++i) {
        entries.emplace_back(data.keys[i], 1 + i % 3);
      }
      SpectralBloomFilter scalar_target = filter.CloneEmpty();
      Timer timer;
      for (int r = 0; r < rounds / 4 + 1; ++r) {
        for (const auto& [key, count] : entries) {
          scalar_target.Insert(key, count);
        }
      }
      const double scalar_s = timer.ElapsedSeconds();
      const uint64_t ops = (rounds / 4 + 1) * entries.size();
      json.Add("flush_insert_scalar", {{"backing", name}},
               scalar_s * 1e9 / ops, ops / (scalar_s * 1e6));

      SpectralBloomFilter batch_target = filter.CloneEmpty();
      timer.Restart();
      for (int r = 0; r < rounds / 4 + 1; ++r) {
        batch_target.ApplyAddBatch(entries.data(), entries.size());
      }
      const double batch_s = timer.ElapsedSeconds();
      json.Add("flush_apply_add_batch",
               {{"backing", name},
                {"speedup_vs_scalar_insert", scalar_s / batch_s}},
               batch_s * 1e9 / ops, ops / (batch_s * 1e6));
    }
  }

  return json.WriteFile() ? 0 : 1;
}
