#include <gtest/gtest.h>

#include "core/trapping_rm.h"
#include "util/metrics.h"
#include "workload/multiset_stream.h"

namespace sbf {
namespace {

RecurringMinimumOptions MakeOptions(uint64_t primary_m, uint64_t secondary_m,
                                    uint32_t k, uint64_t seed = 1) {
  RecurringMinimumOptions options;
  options.primary_m = primary_m;
  options.secondary_m = secondary_m;
  options.k = k;
  options.seed = seed;
  options.backing = CounterBacking::kFixed64;
  return options;
}

TEST(TrappingRmTest, ExactUnderLightLoad) {
  TrappingRmSbf filter(MakeOptions(50000, 25000, 5, 3));
  for (uint64_t key = 1; key <= 40; ++key) filter.Insert(key, key);
  for (uint64_t key = 1; key <= 40; ++key) {
    ASSERT_EQ(filter.Estimate(key), key);
  }
}

TEST(TrappingRmTest, LoneItemNeverArmsTraps) {
  TrappingRmSbf filter(MakeOptions(4000, 2000, 5, 5));
  filter.Insert(9, 100);
  EXPECT_EQ(filter.traps_armed(), 0u);
  EXPECT_EQ(filter.traps_fired(), 0u);
}

TEST(TrappingRmTest, TrapsArmOnCrowdedFilter) {
  TrappingRmSbf filter(MakeOptions(200, 100, 5, 7));
  const Multiset data = MakeZipfMultiset(300, 6000, 0.5, 9);
  for (uint64_t key : data.stream) filter.Insert(key);
  // At gamma 7.5 single minima abound: traps must have been armed, and
  // with this much traffic some must have fired.
  EXPECT_GT(filter.traps_armed() + filter.traps_fired(), 0u);
}

TEST(TrappingRmTest, AccuracyComparableOnTypicalStream) {
  // The refinement must not blow up error on a normal Zipf stream.
  TrappingRmSbf filter(MakeOptions(1400, 700, 5, 11));
  const Multiset data = MakeZipfMultiset(400, 12000, 0.7, 13);
  for (uint64_t key : data.stream) filter.Insert(key);
  ErrorStats stats;
  for (size_t i = 0; i < data.keys.size(); ++i) {
    stats.Record(filter.Estimate(data.keys[i]), data.freqs[i]);
  }
  // Loose sanity: well under half the keys in error, small RMS error.
  EXPECT_LT(stats.ErrorRatio(), 0.5);
  EXPECT_LT(stats.AdditiveError(), 50.0);
}

TEST(TrappingRmTest, PalindromeAdversary) {
  // The paper's pathological sequence: traps armed in the first half are
  // never triggered in the second, so compensation never happens — the
  // structure must stay consistent (estimates remain upper bounds).
  TrappingRmSbf filter(MakeOptions(300, 150, 3, 17));
  const auto stream = MakePalindromeStream(500);
  for (uint64_t key : stream) filter.Insert(key);
  size_t false_negatives = 0;
  for (uint64_t key = 1; key <= 500; ++key) {
    if (filter.Estimate(key) < 2) ++false_negatives;
  }
  // Every key appears exactly twice; trapping compensation can rarely
  // over-correct, but the bulk must remain >= 2.
  EXPECT_LE(false_negatives, 25u);
}

TEST(TrappingRmTest, DeletionsSupported) {
  TrappingRmSbf filter(MakeOptions(1500, 750, 5, 19));
  const Multiset data = MakeZipfMultiset(200, 5000, 0.5, 21);
  for (uint64_t key : data.stream) filter.Insert(key);
  for (size_t i = 0; i < data.keys.size(); ++i) {
    filter.Remove(data.keys[i], data.freqs[i] / 2);
  }
  size_t false_negatives = 0;
  for (size_t i = 0; i < data.keys.size(); ++i) {
    const uint64_t remaining = data.freqs[i] - data.freqs[i] / 2;
    if (filter.Estimate(data.keys[i]) < remaining) ++false_negatives;
  }
  EXPECT_LE(false_negatives, data.keys.size() / 25);
}

TEST(TrappingRmTest, MemoryAccountsForTraps) {
  TrappingRmSbf filter(MakeOptions(1000, 500, 5, 23));
  const size_t before = filter.MemoryUsageBits();
  EXPECT_GE(before, 1000u + 500u + 1000u);  // two SBFs + trap bits
}

}  // namespace
}  // namespace sbf
