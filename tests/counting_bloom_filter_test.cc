#include <gtest/gtest.h>

#include "core/counting_bloom_filter.h"
#include "util/random.h"

namespace sbf {
namespace {

TEST(CountingBloomFilterTest, MembershipAfterInsert) {
  CountingBloomFilter filter(10000, 5);
  for (uint64_t key = 0; key < 500; ++key) filter.Insert(key);
  for (uint64_t key = 0; key < 500; ++key) {
    ASSERT_TRUE(filter.Contains(key)) << key;
  }
}

TEST(CountingBloomFilterTest, DeletionRemovesMembership) {
  CountingBloomFilter filter(10000, 5, 4, 3);
  filter.Insert(42);
  EXPECT_TRUE(filter.Contains(42));
  filter.Remove(42);
  EXPECT_FALSE(filter.Contains(42));
}

TEST(CountingBloomFilterTest, DeletionKeepsOtherKeys) {
  CountingBloomFilter filter(10000, 4, 4, 1);
  for (uint64_t key = 0; key < 300; ++key) filter.Insert(key);
  for (uint64_t key = 0; key < 300; key += 2) filter.Remove(key);
  for (uint64_t key = 1; key < 300; key += 2) {
    ASSERT_TRUE(filter.Contains(key)) << key;
  }
}

TEST(CountingBloomFilterTest, FourBitCountersSaturate) {
  CountingBloomFilter filter(100, 2);
  EXPECT_EQ(filter.max_count(), 15u);
  filter.Insert(7, 100);  // way past 15
  EXPECT_EQ(filter.Estimate(7), 15u);
  EXPECT_GT(filter.SaturatedCount(), 0u);
}

TEST(CountingBloomFilterTest, SaturatedCountersSurviveDeletes) {
  // The sticky policy: a saturated counter is never decremented, so
  // deleting cannot create false negatives for other keys.
  CountingBloomFilter filter(64, 1, 4, 9);
  filter.Insert(1, 15);
  filter.Insert(2, 15);  // may share the counter; both saturate
  filter.Remove(1, 15);
  // Key 2 must still be present (upper-bound property preserved).
  EXPECT_TRUE(filter.Contains(2));
}

TEST(CountingBloomFilterTest, CannotRepresentLargeMultiplicities) {
  // The paper's core criticism: multiplicities clamp at 15, useless for
  // multi-sets where items appear thousands of times.
  CountingBloomFilter filter(10000, 5);
  filter.Insert(99, 5000);
  EXPECT_EQ(filter.Estimate(99), 15u);
}

TEST(CountingBloomFilterTest, MemoryIsFourBitsPerCounter) {
  CountingBloomFilter filter(1000, 5);
  EXPECT_LE(filter.MemoryUsageBits(), 4 * 1000 + 64u);
}

TEST(CountingBloomFilterTest, MultisetInsertRemoveStress) {
  CountingBloomFilter filter(5000, 3, 4, 17);
  Xoshiro256 rng(2);
  std::vector<uint64_t> counts(100, 0);
  for (int iter = 0; iter < 3000; ++iter) {
    const uint64_t key = rng.UniformInt(100);
    if ((rng.Next() & 1) || counts[key] == 0) {
      filter.Insert(key);
      ++counts[key];
    } else {
      filter.Remove(key);
      --counts[key];
    }
  }
  // No false negatives: every key with a positive count must be present.
  for (uint64_t key = 0; key < 100; ++key) {
    if (counts[key] > 0) {
      ASSERT_TRUE(filter.Contains(key)) << key;
    }
  }
}

}  // namespace
}  // namespace sbf
