// Crash matrix for the durable store (io/durable_store.h): every injected
// crash point — torn WAL append (mid-record), torn checkpoint write
// (mid-checkpoint), crash before/after the checkpoint rename, fsync
// failure — crossed with every counter backing, plus file-level damage
// (truncated tails, bit flips, deleted checkpoints) that needs no fault
// hooks at all. After every scenario the reopened store must pass
// CheckInvariants() and estimate exactly like a never-crashed reference
// over the acknowledged operations; anything a failed Append did NOT ack
// must be gone. Fault-hook cases skip without SBF_FAULT_INJECTION; the
// file-level cases always run, in normal and SBF_AUDIT builds alike.
//
// WalRecordType coverage (sbf_lint rule 8): kDeltaBatch records carry the
// replayed state; CheckpointSealLandsInOldLog pins kCheckpointSeal.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/concurrent_sbf.h"
#include "io/delta_log.h"
#include "io/durable_store.h"
#include "io/wire.h"
#include "util/fault_injection.h"
#include "util/status.h"

namespace sbf {
namespace {

constexpr CounterBacking kBackings[] = {
    CounterBacking::kFixed64, CounterBacking::kCompact,
    CounterBacking::kSerialScan};

const char* BackingName(CounterBacking backing) {
  switch (backing) {
    case CounterBacking::kFixed64:
      return "fixed64";
    case CounterBacking::kCompact:
      return "compact";
    case CounterBacking::kSerialScan:
      return "serial-scan";
    default:
      return "?";
  }
}

// Fresh unique store directory under the test tmpdir, removed on scope
// exit (quarantine evidence included).
class ScopedStoreDir {
 public:
  ScopedStoreDir() {
    std::string tmpl = ::testing::TempDir() + "sbf-store-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    path_ = ::mkdtemp(buf.data());
  }
  ~ScopedStoreDir() {
    const std::string cmd = "rm -rf '" + path_ + "'";
    [[maybe_unused]] const int rc = std::system(cmd.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// Deterministic, delta-buffering-off options so a single-threaded replay
// is bit-faithful to the original ack order (Minimum Selection updates
// commute, and with buffering off both sides apply ops identically).
DurableOptions MakeOptions(CounterBacking backing) {
  DurableOptions options;
  options.filter.m = 1024;
  options.filter.k = 3;
  options.filter.num_shards = 4;
  options.filter.seed = 77;
  options.filter.backing = backing;
  options.filter.policy = SbfPolicy::kMinimumSelection;
  options.filter.delta.enabled = false;
  options.checkpoint_log_bytes = 0;     // tests checkpoint explicitly
  options.checkpoint_interval_ms = 0;
  options.background_checkpointer = false;
  options.checkpoint_retries = 0;       // crash scenarios must not retry
  options.backoff_initial_ms = 1;
  options.backoff_max_ms = 2;
  return options;
}

// The never-crashed reference: the same ops applied to a plain
// ConcurrentSbf with identical configuration.
struct Scenario {
  explicit Scenario(CounterBacking backing)
      : options(MakeOptions(backing)),
        reference(options.filter) {}

  // Applies one acked op to the reference (call only when the store op
  // succeeded).
  void Ack(bool is_remove, const std::vector<uint64_t>& keys,
           uint64_t count) {
    if (is_remove) {
      for (const uint64_t key : keys) reference.Remove(key, count);
    } else {
      reference.InsertBatch(keys.data(), keys.size(), count);
    }
  }

  // Every estimate over the probe range must match the reference exactly.
  void ExpectMatches(const DurableSbf& store, const char* where) const {
    ASSERT_TRUE(store.CheckInvariants().ok()) << where;
    for (uint64_t key = 0; key < 400; ++key) {
      ASSERT_EQ(store.Estimate(key), reference.Estimate(key))
          << where << " key " << key << " backing "
          << BackingName(options.filter.backing);
    }
  }

  DurableOptions options;
  ConcurrentSbf reference;
};

std::vector<uint64_t> KeyRange(uint64_t first, uint64_t n) {
  std::vector<uint64_t> keys(n);
  for (uint64_t i = 0; i < n; ++i) keys[i] = first + i;
  return keys;
}

using StorePtr = std::unique_ptr<DurableSbf>;

StorePtr MustOpen(const std::string& dir, const DurableOptions& options) {
  auto opened = DurableSbf::Open(dir, options);
  EXPECT_TRUE(opened.ok()) << opened.status().message();
  return opened.ok() ? std::move(opened).value() : nullptr;
}

// Flips one bit at `offset` — non-negative counts from the start of the
// file, negative from the end.
void FlipBitAt(const std::string& path, int64_t offset) {
  FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset),
                       offset >= 0 ? SEEK_SET : SEEK_END),
            0);
  const long pos = std::ftell(f);
  int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, pos, SEEK_SET), 0);
  std::fputc(c ^ 0x10, f);
  std::fclose(f);
}

void TruncateBy(const std::string& path, uint64_t cut) {
  FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_GT(static_cast<uint64_t>(size), cut);
  ASSERT_EQ(::truncate(path.c_str(), size - static_cast<off_t>(cut)), 0);
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Reset(); }
  void TearDown() override { fault::Reset(); }
};

// --- baseline lifecycle (no faults, all builds) ----------------------------

TEST_F(CrashRecoveryTest, FreshStartThenCleanReopen) {
  for (const CounterBacking backing : kBackings) {
    ScopedStoreDir dir;
    Scenario s(backing);
    {
      StorePtr store = MustOpen(dir.path(), s.options);
      ASSERT_NE(store, nullptr);
      EXPECT_EQ(store->Stats().recovery, RecoveryVerdict::kFreshStart);
      const auto keys = KeyRange(0, 200);
      ASSERT_TRUE(store->InsertBatch(keys.data(), keys.size(), 2).ok());
      s.Ack(false, keys, 2);
      ASSERT_TRUE(store->Insert(7, 5).ok());
      s.Ack(false, {7}, 5);
      ASSERT_TRUE(store->Remove(7, 1).ok());
      s.Ack(true, {7}, 1);
      s.ExpectMatches(*store, "live");
    }
    StorePtr reopened = MustOpen(dir.path(), s.options);
    ASSERT_NE(reopened, nullptr);
    const DurabilityStats stats = reopened->Stats();
    EXPECT_EQ(stats.recovery, RecoveryVerdict::kClean);
    EXPECT_FALSE(stats.recovered_torn_tail);
    EXPECT_EQ(stats.quarantined_checkpoints, 0u);
    EXPECT_EQ(stats.replayed_records, 3u);
    s.ExpectMatches(*reopened, "reopened");
  }
}

TEST_F(CrashRecoveryTest, CheckpointThenReplayTail) {
  for (const CounterBacking backing : kBackings) {
    ScopedStoreDir dir;
    Scenario s(backing);
    {
      StorePtr store = MustOpen(dir.path(), s.options);
      ASSERT_NE(store, nullptr);
      const auto before = KeyRange(0, 150);
      ASSERT_TRUE(store->InsertBatch(before.data(), before.size(), 1).ok());
      s.Ack(false, before, 1);
      ASSERT_TRUE(store->Checkpoint().ok());
      EXPECT_EQ(store->generation(), 1u);
      const auto after = KeyRange(150, 80);
      ASSERT_TRUE(store->InsertBatch(after.data(), after.size(), 3).ok());
      s.Ack(false, after, 3);
    }
    StorePtr reopened = MustOpen(dir.path(), s.options);
    ASSERT_NE(reopened, nullptr);
    EXPECT_EQ(reopened->Stats().recovery, RecoveryVerdict::kClean);
    EXPECT_EQ(reopened->generation(), 1u);
    // Only the post-checkpoint tail replays; the bulk loads from the
    // checkpoint.
    EXPECT_EQ(reopened->Stats().replayed_records, 1u);
    s.ExpectMatches(*reopened, "checkpoint+tail");
  }
}

TEST_F(CrashRecoveryTest, CheckpointSealLandsInOldLog) {
  ScopedStoreDir dir;
  Scenario s(CounterBacking::kCompact);
  {
    StorePtr store = MustOpen(dir.path(), s.options);
    ASSERT_NE(store, nullptr);
    ASSERT_TRUE(store->Insert(11, 1).ok());
    ASSERT_TRUE(store->Checkpoint().ok());
  }
  // The rotated-away log must end in a kCheckpointSeal record naming the
  // generation that superseded it.
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(io::ReadFileBytes(WalPath(dir.path(), 0), &bytes).ok());
  auto scan = io::ScanLog(bytes);
  ASSERT_TRUE(scan.ok()) << scan.status().message();
  ASSERT_FALSE(scan.value().records.empty());
  const io::WalRecord& last = scan.value().records.back();
  EXPECT_EQ(last.type, io::WalRecordType::kCheckpointSeal);
  EXPECT_EQ(last.next_generation, 1u);
  EXPECT_EQ(scan.value().records.front().type,
            io::WalRecordType::kDeltaBatch);
}

TEST_F(CrashRecoveryTest, RetentionKeepsTwoGenerations) {
  ScopedStoreDir dir;
  Scenario s(CounterBacking::kFixed64);
  StorePtr store = MustOpen(dir.path(), s.options);
  ASSERT_NE(store, nullptr);
  for (uint64_t round = 0; round < 3; ++round) {
    const auto keys = KeyRange(round * 50, 50);
    ASSERT_TRUE(store->InsertBatch(keys.data(), keys.size(), 1).ok());
    s.Ack(false, keys, 1);
    ASSERT_TRUE(store->Checkpoint().ok());
  }
  EXPECT_EQ(store->generation(), 3u);
  // Generations 3 (current) and 2 (previous) survive; 0 and 1 are pruned.
  EXPECT_EQ(::access(CheckpointPath(dir.path(), 3).c_str(), F_OK), 0);
  EXPECT_EQ(::access(CheckpointPath(dir.path(), 2).c_str(), F_OK), 0);
  EXPECT_EQ(::access(WalPath(dir.path(), 3).c_str(), F_OK), 0);
  EXPECT_EQ(::access(WalPath(dir.path(), 2).c_str(), F_OK), 0);
  EXPECT_NE(::access(CheckpointPath(dir.path(), 1).c_str(), F_OK), 0);
  EXPECT_NE(::access(WalPath(dir.path(), 1).c_str(), F_OK), 0);
  EXPECT_NE(::access(WalPath(dir.path(), 0).c_str(), F_OK), 0);
  store.reset();
  StorePtr reopened = MustOpen(dir.path(), s.options);
  ASSERT_NE(reopened, nullptr);
  s.ExpectMatches(*reopened, "after retention pruning");
}

// --- file-level damage (no fault hooks; runs in every build) ---------------

TEST_F(CrashRecoveryTest, ManuallyTruncatedTailDropsOnlyLastRecord) {
  for (const CounterBacking backing : kBackings) {
    ScopedStoreDir dir;
    Scenario s(backing);
    {
      StorePtr store = MustOpen(dir.path(), s.options);
      ASSERT_NE(store, nullptr);
      const auto keys = KeyRange(0, 100);
      ASSERT_TRUE(store->InsertBatch(keys.data(), keys.size(), 2).ok());
      s.Ack(false, keys, 2);
      // The victim: acked, then torn off below — exactly what a crash
      // between write() and fsync() leaves with sync_each_append off.
      ASSERT_TRUE(store->Insert(999, 4).ok());
    }
    TruncateBy(WalPath(dir.path(), 0), 5);
    StorePtr reopened = MustOpen(dir.path(), s.options);
    ASSERT_NE(reopened, nullptr);
    const DurabilityStats stats = reopened->Stats();
    EXPECT_EQ(stats.recovery, RecoveryVerdict::kTornTail);
    EXPECT_TRUE(stats.recovered_torn_tail);
    EXPECT_EQ(stats.replayed_records, 1u);
    s.ExpectMatches(*reopened, "truncated tail");
    // Appending after the truncation must work (the tail was cut away).
    ASSERT_TRUE(reopened->Insert(5, 1).ok());
  }
}

TEST_F(CrashRecoveryTest, BitFlippedTailRecordIsCleanEndOfLog) {
  ScopedStoreDir dir;
  Scenario s(CounterBacking::kCompact);
  {
    StorePtr store = MustOpen(dir.path(), s.options);
    ASSERT_NE(store, nullptr);
    const auto keys = KeyRange(0, 64);
    ASSERT_TRUE(store->InsertBatch(keys.data(), keys.size(), 1).ok());
    s.Ack(false, keys, 1);
    ASSERT_TRUE(store->Insert(424242, 9).ok());
  }
  // Flip a payload bit inside the final record: CRC kills it, recovery
  // treats it as a torn tail, earlier records survive.
  FlipBitAt(WalPath(dir.path(), 0), -4);
  StorePtr reopened = MustOpen(dir.path(), s.options);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->Stats().recovery, RecoveryVerdict::kTornTail);
  EXPECT_EQ(reopened->Stats().replayed_records, 1u);
  s.ExpectMatches(*reopened, "bit-flipped tail");
}

TEST_F(CrashRecoveryTest, CorruptCheckpointQuarantinesAndFallsBack) {
  for (const CounterBacking backing : kBackings) {
    ScopedStoreDir dir;
    Scenario s(backing);
    {
      StorePtr store = MustOpen(dir.path(), s.options);
      ASSERT_NE(store, nullptr);
      const auto a = KeyRange(0, 120);
      ASSERT_TRUE(store->InsertBatch(a.data(), a.size(), 1).ok());
      s.Ack(false, a, 1);
      ASSERT_TRUE(store->Checkpoint().ok());
      const auto b = KeyRange(120, 60);
      ASSERT_TRUE(store->InsertBatch(b.data(), b.size(), 2).ok());
      s.Ack(false, b, 2);
      ASSERT_TRUE(store->Checkpoint().ok());
      const auto c = KeyRange(180, 30);
      ASSERT_TRUE(store->InsertBatch(c.data(), c.size(), 1).ok());
      s.Ack(false, c, 1);
    }
    // Damage the newest checkpoint's payload. CRC validation rejects it
    // long before any field is trusted, so this is safe under SBF_AUDIT
    // too; recovery must fall back to generation 1 and replay wal-1 +
    // wal-2 to reach the same state.
    FlipBitAt(CheckpointPath(dir.path(), 2), -8);
    StorePtr reopened = MustOpen(dir.path(), s.options);
    ASSERT_NE(reopened, nullptr);
    const DurabilityStats stats = reopened->Stats();
    EXPECT_EQ(stats.recovery, RecoveryVerdict::kQuarantined);
    EXPECT_EQ(stats.quarantined_checkpoints, 1u);
    s.ExpectMatches(*reopened, "quarantined checkpoint");
    // The damaged file is kept aside as evidence, not deleted.
    EXPECT_EQ(::access((CheckpointPath(dir.path(), 2) + ".quarantined").c_str(),
                       F_OK),
              0);
    EXPECT_NE(::access(CheckpointPath(dir.path(), 2).c_str(), F_OK), 0);
  }
}

TEST_F(CrashRecoveryTest, AllCheckpointsLostRebuildsFromLogsAlone) {
  ScopedStoreDir dir;
  Scenario s(CounterBacking::kFixed64);
  {
    StorePtr store = MustOpen(dir.path(), s.options);
    ASSERT_NE(store, nullptr);
    const auto a = KeyRange(0, 90);
    ASSERT_TRUE(store->InsertBatch(a.data(), a.size(), 1).ok());
    s.Ack(false, a, 1);
    ASSERT_TRUE(store->Checkpoint().ok());
    const auto b = KeyRange(90, 40);
    ASSERT_TRUE(store->InsertBatch(b.data(), b.size(), 1).ok());
    s.Ack(false, b, 1);
  }
  // The only checkpoint dies; wal-0 (with its embedded empty-filter
  // configuration) plus wal-1 still reconstruct everything.
  FlipBitAt(CheckpointPath(dir.path(), 1), -8);
  StorePtr reopened = MustOpen(dir.path(), s.options);
  ASSERT_NE(reopened, nullptr);
  const DurabilityStats stats = reopened->Stats();
  EXPECT_EQ(stats.recovery, RecoveryVerdict::kLogOnlyRebuild);
  EXPECT_EQ(stats.quarantined_checkpoints, 1u);
  s.ExpectMatches(*reopened, "log-only rebuild");
}

TEST_F(CrashRecoveryTest, NothingUsableIsUnrecoverable) {
  ScopedStoreDir dir;
  Scenario s(CounterBacking::kCompact);
  {
    StorePtr store = MustOpen(dir.path(), s.options);
    ASSERT_NE(store, nullptr);
    ASSERT_TRUE(store->Insert(1, 1).ok());
    ASSERT_TRUE(store->Checkpoint().ok());
  }
  // Kill the checkpoint AND both log headers: no base state survives
  // anywhere, which must surface as a clean error, not a crash or an
  // empty filter pretending to be the store.
  FlipBitAt(CheckpointPath(dir.path(), 1), -8);
  FlipBitAt(WalPath(dir.path(), 0), 25);   // inside the header frame
  FlipBitAt(WalPath(dir.path(), 1), 25);
  auto opened = DurableSbf::Open(dir.path(), s.options);
  EXPECT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), Status::Code::kDataLoss);
}

TEST_F(CrashRecoveryTest, LeftoverTmpFilesAreDeletedOnOpen) {
  ScopedStoreDir dir;
  Scenario s(CounterBacking::kCompact);
  {
    StorePtr store = MustOpen(dir.path(), s.options);
    ASSERT_NE(store, nullptr);
    ASSERT_TRUE(store->Insert(3, 2).ok());
    s.Ack(false, {3}, 2);
  }
  // A crashed checkpoint leaves checkpoint-1.sbf.tmp; recovery must sweep
  // it without ever considering it a checkpoint.
  const std::string tmp = CheckpointPath(dir.path(), 1) + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("partial garbage", f);
  std::fclose(f);
  StorePtr reopened = MustOpen(dir.path(), s.options);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->Stats().recovery, RecoveryVerdict::kClean);
  EXPECT_NE(::access(tmp.c_str(), F_OK), 0);
  s.ExpectMatches(*reopened, "tmp swept");
}

// --- injected crash points (need SBF_FAULT_INJECTION) ----------------------

class CrashPointTest : public CrashRecoveryTest {
 protected:
  void SetUp() override {
#ifndef SBF_FAULT_INJECTION
    GTEST_SKIP() << "built without SBF_FAULT_INJECTION";
#endif
    CrashRecoveryTest::SetUp();
  }
};

TEST_F(CrashPointTest, TornAppendMidRecordIsNotAcked) {
  for (const CounterBacking backing : kBackings) {
    for (uint64_t seed = 0; seed < 4; ++seed) {
      ScopedStoreDir dir;
      Scenario s(backing);
      {
        StorePtr store = MustOpen(dir.path(), s.options);
        ASSERT_NE(store, nullptr);
        const auto keys = KeyRange(0, 80);
        ASSERT_TRUE(store->InsertBatch(keys.data(), keys.size(), 1).ok());
        s.Ack(false, keys, 1);
        // Crash point: the next append persists only a prefix of its
        // record. The op fails (never acked) and the store wedges like a
        // dead process.
        fault::ArmFileFault(fault::FileFault::kShortWrite, 1, seed);
        const auto doomed = KeyRange(500, 16);
        const Status torn =
            store->InsertBatch(doomed.data(), doomed.size(), 7);
        EXPECT_FALSE(torn.ok());
        EXPECT_EQ(fault::InjectedFileFaults(), 1u);
        EXPECT_TRUE(store->Stats().wedged);
        // Wedged: mutations fail, reads keep serving.
        EXPECT_FALSE(store->Insert(1, 1).ok());
        EXPECT_EQ(store->Estimate(0), s.reference.Estimate(0));
      }
      fault::Reset();
      StorePtr reopened = MustOpen(dir.path(), s.options);
      ASSERT_NE(reopened, nullptr);
      const DurabilityStats stats = reopened->Stats();
      EXPECT_EQ(stats.recovery, RecoveryVerdict::kTornTail)
          << BackingName(backing) << " seed " << seed;
      s.ExpectMatches(*reopened, "torn append");
      ASSERT_TRUE(reopened->Insert(5, 1).ok());  // tail truncated; append ok
    }
  }
}

TEST_F(CrashPointTest, TornCheckpointWriteLeavesOldStateIntact) {
  for (const CounterBacking backing : kBackings) {
    ScopedStoreDir dir;
    Scenario s(backing);
    {
      StorePtr store = MustOpen(dir.path(), s.options);
      ASSERT_NE(store, nullptr);
      const auto keys = KeyRange(0, 70);
      ASSERT_TRUE(store->InsertBatch(keys.data(), keys.size(), 2).ok());
      s.Ack(false, keys, 2);
      // Crash point: the checkpoint tmp is torn mid-write. The rename
      // never happens, so nothing durable changed; the store is NOT
      // wedged and the WAL still carries everything.
      fault::ArmFileFault(fault::FileFault::kShortWrite, 1, 3);
      const Status crashed = store->Checkpoint();
      EXPECT_FALSE(crashed.ok());
      EXPECT_FALSE(store->Stats().wedged);
      EXPECT_EQ(store->generation(), 0u);
      fault::Reset();
      // The same store can still append and even checkpoint afterwards.
      ASSERT_TRUE(store->Insert(901, 1).ok());
      s.Ack(false, {901}, 1);
    }
    StorePtr reopened = MustOpen(dir.path(), s.options);
    ASSERT_NE(reopened, nullptr);
    EXPECT_EQ(reopened->Stats().recovery, RecoveryVerdict::kClean);
    s.ExpectMatches(*reopened, "torn checkpoint write");
  }
}

TEST_F(CrashPointTest, CrashBeforeRenameKeepsPreviousGeneration) {
  for (const CounterBacking backing : kBackings) {
    ScopedStoreDir dir;
    Scenario s(backing);
    {
      StorePtr store = MustOpen(dir.path(), s.options);
      ASSERT_NE(store, nullptr);
      const auto keys = KeyRange(0, 60);
      ASSERT_TRUE(store->InsertBatch(keys.data(), keys.size(), 1).ok());
      s.Ack(false, keys, 1);
      fault::ArmFileFault(fault::FileFault::kFailBeforeRename, 1);
      const Status crashed = store->Checkpoint();
      EXPECT_FALSE(crashed.ok());
      EXPECT_EQ(fault::InjectedFileFaults(), 1u);
      EXPECT_EQ(store->generation(), 0u);
      EXPECT_FALSE(store->Stats().wedged);
    }
    fault::Reset();
    // checkpoint-1.sbf must not exist (only its tmp, which Open sweeps).
    EXPECT_NE(::access(CheckpointPath(dir.path(), 1).c_str(), F_OK), 0);
    StorePtr reopened = MustOpen(dir.path(), s.options);
    ASSERT_NE(reopened, nullptr);
    EXPECT_EQ(reopened->Stats().recovery, RecoveryVerdict::kClean);
    EXPECT_EQ(reopened->generation(), 0u);
    s.ExpectMatches(*reopened, "crash before rename");
  }
}

TEST_F(CrashPointTest, CrashAfterRenameResumesAtNewGeneration) {
  for (const CounterBacking backing : kBackings) {
    ScopedStoreDir dir;
    Scenario s(backing);
    {
      StorePtr store = MustOpen(dir.path(), s.options);
      ASSERT_NE(store, nullptr);
      const auto keys = KeyRange(0, 60);
      ASSERT_TRUE(store->InsertBatch(keys.data(), keys.size(), 3).ok());
      s.Ack(false, keys, 3);
      // Crash point: the new checkpoint became visible but the process
      // died before rotating logs. The store must wedge — appending more
      // to wal-0 would hide acked records from recovery, which replays
      // from the newest checkpoint.
      fault::ArmFileFault(fault::FileFault::kFailAfterRename, 1);
      const Status crashed = store->Checkpoint();
      EXPECT_FALSE(crashed.ok());
      EXPECT_TRUE(store->Stats().wedged);
      EXPECT_FALSE(store->Insert(1, 1).ok());
    }
    fault::Reset();
    EXPECT_EQ(::access(CheckpointPath(dir.path(), 1).c_str(), F_OK), 0);
    StorePtr reopened = MustOpen(dir.path(), s.options);
    ASSERT_NE(reopened, nullptr);
    EXPECT_EQ(reopened->Stats().recovery, RecoveryVerdict::kClean);
    // Recovery adopts generation 1 and creates the missing wal-1.
    EXPECT_EQ(reopened->generation(), 1u);
    EXPECT_EQ(::access(WalPath(dir.path(), 1).c_str(), F_OK), 0);
    s.ExpectMatches(*reopened, "crash after rename");
    ASSERT_TRUE(reopened->Insert(77, 1).ok());
  }
}

TEST_F(CrashPointTest, FsyncFailureDuringCheckpointIsClean) {
  for (const CounterBacking backing : kBackings) {
    ScopedStoreDir dir;
    Scenario s(backing);
    s.options.sync_each_append = false;  // appends skip fsync; the armed
                                         // fault hits the checkpoint body
    {
      StorePtr store = MustOpen(dir.path(), s.options);
      ASSERT_NE(store, nullptr);
      const auto keys = KeyRange(0, 50);
      ASSERT_TRUE(store->InsertBatch(keys.data(), keys.size(), 1).ok());
      s.Ack(false, keys, 1);
      fault::ArmFileFault(fault::FileFault::kFsyncFail, 1);
      const Status crashed = store->Checkpoint();
      EXPECT_FALSE(crashed.ok());
      EXPECT_EQ(store->generation(), 0u);
      fault::Reset();
      ASSERT_TRUE(store->SyncLog().ok());  // records still reach disk
    }
    StorePtr reopened = MustOpen(dir.path(), s.options);
    ASSERT_NE(reopened, nullptr);
    EXPECT_EQ(reopened->Stats().recovery, RecoveryVerdict::kClean);
    s.ExpectMatches(*reopened, "fsync failure");
  }
}

TEST_F(CrashPointTest, TransientFsyncFailureIsRetriedWithBackoff) {
  ScopedStoreDir dir;
  Scenario s(CounterBacking::kCompact);
  s.options.sync_each_append = false;
  s.options.checkpoint_retries = 3;  // transient faults may retry
  StorePtr store = MustOpen(dir.path(), s.options);
  ASSERT_NE(store, nullptr);
  const auto keys = KeyRange(0, 40);
  ASSERT_TRUE(store->InsertBatch(keys.data(), keys.size(), 1).ok());
  s.Ack(false, keys, 1);
  // One-shot fault: the first attempt fails, the backoff retry succeeds.
  fault::ArmFileFault(fault::FileFault::kFsyncFail, 1);
  ASSERT_TRUE(store->Checkpoint().ok());
  const DurabilityStats stats = store->Stats();
  EXPECT_EQ(stats.checkpoints_written, 1u);
  EXPECT_EQ(stats.checkpoint_retries, 1u);
  EXPECT_EQ(stats.checkpoint_failures, 0u);
  EXPECT_EQ(store->generation(), 1u);
  s.ExpectMatches(*store, "retried checkpoint");
}

// --- background checkpointer ------------------------------------------------

TEST_F(CrashRecoveryTest, BackgroundCheckpointerFiresOnLogSize) {
  ScopedStoreDir dir;
  Scenario s(CounterBacking::kFixed64);
  s.options.background_checkpointer = true;
  s.options.checkpoint_log_bytes = 2048;  // a few hundred records
  {
    StorePtr store = MustOpen(dir.path(), s.options);
    ASSERT_NE(store, nullptr);
    for (uint64_t key = 0; key < 200; ++key) {
      ASSERT_TRUE(store->Insert(key, 1).ok());
      s.Ack(false, {key}, 1);
    }
    // The size trigger should fire without any explicit Checkpoint().
    for (int spin = 0; spin < 500; ++spin) {
      if (store->Stats().checkpoints_written > 0) break;
      ::usleep(10 * 1000);
    }
    EXPECT_GT(store->Stats().checkpoints_written, 0u);
    EXPECT_GE(store->generation(), 1u);
  }
  StorePtr reopened = MustOpen(dir.path(), s.options);
  ASSERT_NE(reopened, nullptr);
  s.ExpectMatches(*reopened, "background checkpointer");
}

// --- stats rendering --------------------------------------------------------

TEST_F(CrashRecoveryTest, StatsRenderOneLine) {
  ScopedStoreDir dir;
  Scenario s(CounterBacking::kCompact);
  StorePtr store = MustOpen(dir.path(), s.options);
  ASSERT_NE(store, nullptr);
  ASSERT_TRUE(store->Insert(1, 1).ok());
  const std::string line = store->Stats().ToString();
  EXPECT_NE(line.find("recovery=fresh-start"), std::string::npos) << line;
  EXPECT_NE(line.find("wal_bytes="), std::string::npos) << line;
  EXPECT_NE(line.find("wedged=0"), std::string::npos) << line;
  EXPECT_STREQ(RecoveryVerdictName(RecoveryVerdict::kUnrecoverable),
               "unrecoverable");
}

}  // namespace
}  // namespace sbf
