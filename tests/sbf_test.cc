#include <gtest/gtest.h>

#include <unordered_map>

#include "core/spectral_bloom_filter.h"
#include "util/metrics.h"
#include "util/random.h"
#include "workload/multiset_stream.h"

namespace sbf {
namespace {

SbfOptions MakeOptions(uint64_t m, uint32_t k, SbfPolicy policy,
                       CounterBacking backing, uint64_t seed = 1) {
  SbfOptions options;
  options.m = m;
  options.k = k;
  options.policy = policy;
  options.backing = backing;
  options.seed = seed;
  return options;
}

struct SbfConfig {
  SbfPolicy policy;
  CounterBacking backing;
};

std::string ConfigName(const ::testing::TestParamInfo<SbfConfig>& info) {
  std::string name =
      info.param.policy == SbfPolicy::kMinimumSelection ? "MS" : "MI";
  name += "_";
  name += CounterBackingName(info.param.backing);
  // gtest names must be alphanumeric.
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

class SbfPolicyBackingTest : public ::testing::TestWithParam<SbfConfig> {
 protected:
  SpectralBloomFilter Make(uint64_t m, uint32_t k, uint64_t seed = 1) {
    return SpectralBloomFilter(
        MakeOptions(m, k, GetParam().policy, GetParam().backing, seed));
  }
};

TEST_P(SbfPolicyBackingTest, EstimateIsUpperBound) {
  // Claim 1 / Claim 4: m_x >= f_x for every key, under both policies.
  auto filter = Make(2000, 4);
  const Multiset data = MakeZipfMultiset(300, 9000, 1.0, 5);
  for (uint64_t key : data.stream) filter.Insert(key);
  for (size_t i = 0; i < data.keys.size(); ++i) {
    ASSERT_GE(filter.Estimate(data.keys[i]), data.freqs[i]) << i;
  }
}

TEST_P(SbfPolicyBackingTest, ExactUnderLightLoad) {
  // With gamma tiny, collisions are almost impossible: estimates exact.
  auto filter = Make(100000, 5);
  for (uint64_t key = 1; key <= 50; ++key) filter.Insert(key, key);
  for (uint64_t key = 1; key <= 50; ++key) {
    ASSERT_EQ(filter.Estimate(key), key);
  }
}

TEST_P(SbfPolicyBackingTest, AbsentKeysMostlyZero) {
  auto filter = Make(20000, 5);
  for (uint64_t key = 0; key < 1000; ++key) filter.Insert(key);
  size_t nonzero = 0;
  for (uint64_t key = 1000000; key < 1010000; ++key) {
    nonzero += (filter.Estimate(key) > 0);
  }
  // Bloom error at gamma = 0.25 with k = 5 is ~5e-4.
  EXPECT_LT(nonzero, 100u);
}

TEST_P(SbfPolicyBackingTest, ThresholdQueriesHaveNoFalseNegatives) {
  auto filter = Make(3000, 5);
  const Multiset data = MakeZipfMultiset(500, 20000, 0.8, 9);
  for (uint64_t key : data.stream) filter.Insert(key);
  for (uint64_t threshold : {1ull, 5ull, 50ull, 500ull}) {
    for (size_t i = 0; i < data.keys.size(); ++i) {
      if (data.freqs[i] >= threshold) {
        ASSERT_TRUE(filter.Contains(data.keys[i], threshold))
            << "threshold " << threshold << " key " << i;
      }
    }
  }
}

TEST_P(SbfPolicyBackingTest, BatchInsertEqualsIterated) {
  auto batch = Make(500, 5, 3);
  auto iterated = Make(500, 5, 3);
  Xoshiro256 rng(8);
  for (int i = 0; i < 200; ++i) {
    const uint64_t key = rng.UniformInt(80);
    const uint64_t count = rng.UniformInt(5) + 1;
    batch.Insert(key, count);
    for (uint64_t c = 0; c < count; ++c) iterated.Insert(key);
  }
  for (uint64_t key = 0; key < 80; ++key) {
    ASSERT_EQ(batch.Estimate(key), iterated.Estimate(key)) << key;
  }
}

TEST_P(SbfPolicyBackingTest, TotalItemsTracksNetInserts) {
  auto filter = Make(1000, 3);
  filter.Insert(1, 10);
  filter.Insert(2, 5);
  EXPECT_EQ(filter.total_items(), 15u);
  filter.Remove(1, 4);
  EXPECT_EQ(filter.total_items(), 11u);
}

TEST_P(SbfPolicyBackingTest, SerializeRoundTrip) {
  auto filter = Make(700, 4, 21);
  const Multiset data = MakeZipfMultiset(100, 3000, 1.2, 2);
  for (uint64_t key : data.stream) filter.Insert(key);

  const auto bytes = filter.Serialize();
  auto restored = SpectralBloomFilter::Deserialize(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().m(), filter.m());
  EXPECT_EQ(restored.value().k(), filter.k());
  EXPECT_EQ(restored.value().total_items(), filter.total_items());
  for (uint64_t key = 0; key < 200; ++key) {
    ASSERT_EQ(restored.value().Estimate(key), filter.Estimate(key)) << key;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SbfPolicyBackingTest,
    ::testing::Values(
        SbfConfig{SbfPolicy::kMinimumSelection, CounterBacking::kFixed64},
        SbfConfig{SbfPolicy::kMinimumSelection, CounterBacking::kCompact},
        SbfConfig{SbfPolicy::kMinimumSelection, CounterBacking::kSerialScan},
        SbfConfig{SbfPolicy::kMinimalIncrease, CounterBacking::kFixed64},
        SbfConfig{SbfPolicy::kMinimalIncrease, CounterBacking::kCompact}),
    ConfigName);

// --- Minimum Selection specifics ------------------------------------------------

TEST(SbfMsTest, DeletionsAreExactInverses) {
  SpectralBloomFilter filter(MakeOptions(2000, 5, SbfPolicy::kMinimumSelection,
                                         CounterBacking::kCompact));
  const Multiset data = MakeZipfMultiset(200, 5000, 0.5, 3);
  for (uint64_t key : data.stream) filter.Insert(key);
  const auto snapshot = [&] {
    std::vector<uint64_t> v;
    for (uint64_t key = 0; key < 300; ++key) v.push_back(filter.Estimate(key));
    return v;
  }();

  // Insert then fully delete an extra batch; estimates must return.
  for (uint64_t key = 1000; key < 1050; ++key) filter.Insert(key, 7);
  for (uint64_t key = 1000; key < 1050; ++key) filter.Remove(key, 7);
  for (uint64_t key = 0; key < 300; ++key) {
    ASSERT_EQ(filter.Estimate(key), snapshot[key]) << key;
  }
}

TEST(SbfMsTest, FullDeletionEmptiesFilter) {
  SpectralBloomFilter filter(MakeOptions(500, 4, SbfPolicy::kMinimumSelection,
                                         CounterBacking::kFixed64));
  const Multiset data = MakeZipfMultiset(100, 2000, 1.0, 4);
  for (uint64_t key : data.stream) filter.Insert(key);
  for (uint64_t key : data.stream) filter.Remove(key);
  EXPECT_EQ(filter.counters().Total(), 0u);
  EXPECT_EQ(filter.total_items(), 0u);
}

TEST(SbfMsTest, CounterValuesAndRecurringMinimum) {
  SpectralBloomFilter filter(MakeOptions(1000, 5, SbfPolicy::kMinimumSelection,
                                         CounterBacking::kFixed64));
  filter.Insert(77, 10);
  const auto values = filter.CounterValues(77);
  ASSERT_EQ(values.size(), 5u);
  // Alone in the filter: all counters equal 10 -> recurring minimum.
  for (uint64_t v : values) EXPECT_EQ(v, 10u);
  EXPECT_TRUE(filter.HasRecurringMinimum(77));
}

TEST(SbfMsTest, MembershipMatchesBloomFilterSemantics) {
  // Threshold-1 queries: one-sided, same guarantees as a Bloom filter.
  SpectralBloomFilter filter(MakeOptions(8000, 5, SbfPolicy::kMinimumSelection,
                                         CounterBacking::kCompact));
  for (uint64_t key = 0; key < 800; ++key) filter.Insert(key);
  for (uint64_t key = 0; key < 800; ++key) {
    ASSERT_TRUE(filter.Contains(key, 1));
  }
}

// --- Minimal Increase specifics ------------------------------------------------

TEST(SbfMiTest, NeverWorseThanMsPointwise) {
  // Claim 4: for every item, MI's estimate <= MS's estimate (same hashes).
  SpectralBloomFilter ms(MakeOptions(1500, 5, SbfPolicy::kMinimumSelection,
                                     CounterBacking::kFixed64, 11));
  SpectralBloomFilter mi(MakeOptions(1500, 5, SbfPolicy::kMinimalIncrease,
                                     CounterBacking::kFixed64, 11));
  const Multiset data = MakeZipfMultiset(400, 12000, 0.7, 6);
  for (uint64_t key : data.stream) {
    ms.Insert(key);
    mi.Insert(key);
  }
  for (size_t i = 0; i < data.keys.size(); ++i) {
    const uint64_t key = data.keys[i];
    ASSERT_LE(mi.Estimate(key), ms.Estimate(key)) << key;
    ASSERT_GE(mi.Estimate(key), data.freqs[i]) << key;
  }
}

TEST(SbfMiTest, StrictlyBetterErrorOnCollidingData) {
  // Statistical: over a loaded filter, MI's total error is lower than MS's.
  SpectralBloomFilter ms(MakeOptions(800, 5, SbfPolicy::kMinimumSelection,
                                     CounterBacking::kFixed64, 13));
  SpectralBloomFilter mi(MakeOptions(800, 5, SbfPolicy::kMinimalIncrease,
                                     CounterBacking::kFixed64, 13));
  const Multiset data = MakeZipfMultiset(600, 30000, 0.5, 8);
  for (uint64_t key : data.stream) {
    ms.Insert(key);
    mi.Insert(key);
  }
  ErrorStats ms_stats, mi_stats;
  for (size_t i = 0; i < data.keys.size(); ++i) {
    ms_stats.Record(ms.Estimate(data.keys[i]), data.freqs[i]);
    mi_stats.Record(mi.Estimate(data.keys[i]), data.freqs[i]);
  }
  EXPECT_LT(mi_stats.AdditiveError(), ms_stats.AdditiveError());
  EXPECT_LE(mi_stats.ErrorRatio(), ms_stats.ErrorRatio());
}

TEST(SbfMiTest, DeletionsCreateFalseNegatives) {
  // The documented failure mode (Section 3.2): after deletions, MI can
  // underestimate. We assert the mechanism is reproducible at scale.
  SpectralBloomFilter mi(MakeOptions(600, 5, SbfPolicy::kMinimalIncrease,
                                     CounterBacking::kFixed64, 17));
  const Multiset data = MakeZipfMultiset(400, 20000, 0.5, 10);
  for (uint64_t key : data.stream) mi.Insert(key);

  // Fully delete half the keys. Under MI a shared counter holds roughly
  // the max (not the sum) of the sharing keys' frequencies, so deleting
  // one key can drag a surviving key's counter below its true count.
  for (size_t i = 0; i < data.keys.size(); i += 2) {
    mi.Remove(data.keys[i], data.freqs[i]);
  }
  size_t false_negatives = 0;
  for (size_t i = 1; i < data.keys.size(); i += 2) {
    if (mi.Estimate(data.keys[i]) < data.freqs[i]) ++false_negatives;
  }
  EXPECT_GT(false_negatives, 0u);
}

// --- misc -----------------------------------------------------------------------

TEST(SbfTest, CopySemanticsAreDeep) {
  SpectralBloomFilter a(1000, 4);
  a.Insert(5, 9);
  SpectralBloomFilter b = a;
  b.Insert(5, 1);
  EXPECT_EQ(a.Estimate(5), 9u);
  EXPECT_EQ(b.Estimate(5), 10u);
}

TEST(SbfTest, CloneEmptySharesParameters) {
  SpectralBloomFilter a(1000, 4);
  a.Insert(5, 9);
  SpectralBloomFilter b = a.CloneEmpty();
  EXPECT_EQ(b.Estimate(5), 0u);
  EXPECT_TRUE(a.hash().Compatible(b.hash()));
}

TEST(SbfTest, StringKeysRoute) {
  SpectralBloomFilter filter(10000, 4);
  filter.InsertBytes("query-term", 3);
  EXPECT_EQ(filter.EstimateBytes("query-term"), 3u);
  EXPECT_EQ(filter.EstimateBytes("other-term"), 0u);
}

TEST(SbfTest, GammaComputation) {
  SpectralBloomFilter filter(1000, 5);
  EXPECT_DOUBLE_EQ(filter.Gamma(140), 0.7);
}

TEST(SbfTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(SpectralBloomFilter::Deserialize({}).ok());
  std::vector<uint8_t> junk(72, 0xAB);
  EXPECT_FALSE(SpectralBloomFilter::Deserialize(junk).ok());
}

TEST(SbfTest, ValidateSbfOptionsFlagsDegenerateParameters) {
  SbfOptions options;
  options.m = 1000;
  options.k = 4;
  EXPECT_TRUE(ValidateSbfOptions(options).ok());

  options.m = 0;
  EXPECT_EQ(ValidateSbfOptions(options).code(),
            Status::Code::kInvalidArgument);
  options.m = 1000;
  options.k = 0;
  EXPECT_EQ(ValidateSbfOptions(options).code(),
            Status::Code::kInvalidArgument);
  options.k = 65;
  EXPECT_EQ(ValidateSbfOptions(options).code(),
            Status::Code::kInvalidArgument);
}

TEST(SbfDeathTest, ConstructorRejectsDegenerateParameters) {
  // Regression: the constructor used to build the hash family and counter
  // vector from unvalidated options before checking them, so m == 0 or
  // k == 0 reached those constructors (division-free but ill-defined: a
  // zero-range hash and an empty counter vector). Validation now aborts
  // before any member is constructed.
  EXPECT_DEATH(SpectralBloomFilter(/*m=*/0, /*k=*/4), "m >= 1");
  EXPECT_DEATH(SpectralBloomFilter(/*m=*/1000, /*k=*/0), "1 <= k <= 64");
  EXPECT_DEATH(SpectralBloomFilter(/*m=*/1000, /*k=*/65), "1 <= k <= 64");
  SbfOptions options;  // defaults leave m == 0 (required field)
  EXPECT_DEATH(SpectralBloomFilter{options}, "m >= 1");
}

}  // namespace
}  // namespace sbf
