// Compiled with NDEBUG forcibly undefined (see tests/CMakeLists.txt): the
// debug-only macros expand to their aborting CHECK forms here.

#ifdef NDEBUG
#undef NDEBUG
#endif

#include "check_test_paths.h"
#include "util/check.h"

namespace sbf::check_test {

void DebugDcheckFails() { SBF_DCHECK(1 + 1 == 3); }

void DebugDcheckMsgFails() { SBF_DCHECK_MSG(false, "armed dcheck message"); }

}  // namespace sbf::check_test
