// Differential tests for the batched query/update kernels: for every
// frontend and backing, InsertBatch/EstimateBatch must be *exactly*
// equivalent to a loop of the scalar ops — same estimates, same final
// state — over random, duplicate-heavy and clustered/shard-skewed key
// sets. Duplicate-heavy batches are the interesting case: the pipeline
// hashes W keys ahead, so a window can hold several copies of one key and
// the probes must still observe each other's writes in input order.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/blocked_sbf.h"
#include "core/concurrent_sbf.h"
#include "core/counting_bloom_filter.h"
#include "core/frequency_filter.h"
#include "core/recurring_minimum.h"
#include "core/spectral_bloom_filter.h"
#include "util/random.h"

namespace sbf {
namespace {

constexpr uint64_t kM = 1 << 12;
constexpr uint32_t kK = 5;
constexpr size_t kStream = 2048;

std::vector<uint64_t> RandomKeys(size_t n, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<uint64_t> keys(n);
  for (auto& key : keys) key = rng.Next();
  return keys;
}

// ~16 distinct keys repeated throughout the stream: several copies of one
// key can share a pipeline window, stressing read-after-write ordering.
std::vector<uint64_t> DuplicateHeavyKeys(size_t n, uint64_t seed) {
  Xoshiro256 rng(seed);
  const std::vector<uint64_t> distinct = RandomKeys(16, seed ^ 0xD0D0);
  std::vector<uint64_t> keys(n);
  for (auto& key : keys) key = distinct[rng.UniformInt(distinct.size())];
  return keys;
}

// Low-entropy keys from a tiny range: hammers a handful of blocks (blocked
// layout) and a few shards (sharded frontend).
std::vector<uint64_t> ClusteredKeys(size_t n, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<uint64_t> keys(n);
  for (auto& key : keys) key = 1'000'000 + rng.UniformInt(64);
  return keys;
}

using Factory = std::function<std::unique_ptr<FrequencyFilter>()>;

// Inserts `keys` scalar-wise into one filter and batch-wise (chunk sizes
// straddling the W=8 pipeline window) into a second, then checks that
// batched estimates match the scalar filter and the batched filter's own
// scalar reads — i.e. both the query kernel and the final state agree.
void ExpectBatchEqualsScalar(const Factory& make,
                             const std::vector<uint64_t>& keys,
                             uint64_t count = 1) {
  auto scalar = make();
  auto batched = make();
  for (uint64_t key : keys) scalar->Insert(key, count);
  constexpr size_t kChunks[] = {3, 8, 37, 1024};  // < W, == W, > W, large
  size_t at = 0;
  int c = 0;
  while (at < keys.size()) {
    const size_t n = std::min(kChunks[c++ % 4], keys.size() - at);
    batched->InsertBatch(keys.data() + at, n, count);
    at += n;
  }

  std::vector<uint64_t> queries = keys;
  const std::vector<uint64_t> probes = RandomKeys(256, 0xABBA);
  queries.insert(queries.end(), probes.begin(), probes.end());
  std::vector<uint64_t> got(queries.size());
  batched->EstimateBatch(queries.data(), queries.size(), got.data());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(scalar->Estimate(queries[i]), got[i])
        << "state diverged at key " << queries[i];
    ASSERT_EQ(batched->Estimate(queries[i]), got[i])
        << "batch estimate != scalar estimate for key " << queries[i];
  }
}

void RunAllKeySets(const std::string& label, const Factory& make) {
  {
    SCOPED_TRACE(label + " / random");
    ExpectBatchEqualsScalar(make, RandomKeys(kStream, 1));
  }
  {
    SCOPED_TRACE(label + " / duplicate-heavy");
    ExpectBatchEqualsScalar(make, DuplicateHeavyKeys(kStream, 2));
  }
  {
    SCOPED_TRACE(label + " / clustered");
    ExpectBatchEqualsScalar(make, ClusteredKeys(kStream, 3));
  }
  {
    SCOPED_TRACE(label + " / random count=3");
    ExpectBatchEqualsScalar(make, RandomKeys(kStream / 4, 4), /*count=*/3);
  }
}

Factory SbfFactory(SbfPolicy policy, CounterBacking backing) {
  return [policy, backing] {
    SbfOptions options;
    options.m = kM;
    options.k = kK;
    options.policy = policy;
    options.backing = backing;
    options.seed = 99;
    return std::make_unique<SpectralBloomFilter>(options);
  };
}

TEST(BatchPipelineTest, SpectralBloomFilterAllBackingsAndPolicies) {
  for (const auto backing :
       {CounterBacking::kFixed64, CounterBacking::kFixed32,
        CounterBacking::kCompact, CounterBacking::kSerialScan}) {
    for (const auto policy :
         {SbfPolicy::kMinimumSelection, SbfPolicy::kMinimalIncrease}) {
      const std::string label =
          std::string("SBF/") + CounterBackingName(backing) +
          (policy == SbfPolicy::kMinimumSelection ? "/MS" : "/MI");
      RunAllKeySets(label, SbfFactory(policy, backing));
    }
  }
}

TEST(BatchPipelineTest, BlockedSbfAllBackings) {
  for (const auto backing :
       {CounterBacking::kFixed64, CounterBacking::kFixed32,
        CounterBacking::kCompact, CounterBacking::kSerialScan}) {
    for (const uint64_t block_size : {8u, 64u}) {
      const auto make = [backing, block_size] {
        BlockedSbfOptions options;
        options.m = kM;
        options.k = kK;
        options.block_size = block_size;
        options.backing = backing;
        options.seed = 7;
        return std::make_unique<BlockedSbf>(options);
      };
      RunAllKeySets(std::string("Blocked/") + CounterBackingName(backing) +
                        "/b" + std::to_string(block_size),
                    make);
    }
  }
}

TEST(BatchPipelineTest, CountingBloomFilterSaturates) {
  // Duplicate-heavy streams push 4-bit counters past 15: scalar and batch
  // must saturate (and stay sticky) identically.
  RunAllKeySets("CBF/4bit", [] {
    return std::make_unique<CountingBloomFilter>(kM, kK, 4, 5);
  });
}

TEST(BatchPipelineTest, RecurringMinimumDefaultLoops) {
  // RM inherits the FrequencyFilter default batch loops; the differential
  // harness pins their contract too.
  RunAllKeySets("RM", [] {
    return std::make_unique<RecurringMinimumSbf>(
        RecurringMinimumSbf::WithTotalBudget(kM, kK, 17));
  });
}

Factory ConcurrentFactory(SbfPolicy policy, CounterBacking backing) {
  return [policy, backing] {
    ConcurrentSbfOptions options;
    options.m = kM;
    options.k = kK;
    options.policy = policy;
    options.backing = backing;
    options.num_shards = 8;
    options.seed = 23;
    return std::make_unique<ConcurrentSbf>(options);
  };
}

TEST(BatchPipelineTest, ConcurrentSbfLockFreeAndLocked) {
  // fixed64 + MS is the lock-free atomic pipeline; the others take the
  // per-shard locks around the SpectralBloomFilter kernels.
  RunAllKeySets("CSBF/fixed64/MS (lock-free)",
                ConcurrentFactory(SbfPolicy::kMinimumSelection,
                                  CounterBacking::kFixed64));
  RunAllKeySets("CSBF/compact/MS (locked)",
                ConcurrentFactory(SbfPolicy::kMinimumSelection,
                                  CounterBacking::kCompact));
  RunAllKeySets("CSBF/fixed64/MI (locked)",
                ConcurrentFactory(SbfPolicy::kMinimalIncrease,
                                  CounterBacking::kFixed64));
}

TEST(BatchPipelineTest, ConcurrentSbfShardSkewedKeys) {
  // ~90% of keys land in shard 0: exercises the grouped scatter/gather
  // with wildly uneven per-shard slices (including empty shards).
  const auto make = ConcurrentFactory(SbfPolicy::kMinimumSelection,
                                      CounterBacking::kFixed64);
  auto probe = make();
  const auto& router = static_cast<const ConcurrentSbf&>(*probe);
  Xoshiro256 rng(31);
  std::vector<uint64_t> keys;
  keys.reserve(kStream);
  while (keys.size() < kStream) {
    const uint64_t key = rng.Next();
    if (router.ShardOf(key) == 0 || rng.UniformInt(10) == 0) {
      keys.push_back(key);
    }
  }
  ExpectBatchEqualsScalar(make, keys);
}

TEST(BatchPipelineTest, ConcurrentSbfAdversarialAllKeysOneShard) {
  // The adversarial extreme of the skew test: EVERY key routes to shard 0,
  // so 8 threads contend on one shard's delta maps, epoch merges and
  // counters while 7 shards stay empty. With a tiny buffer capacity the
  // epoch machinery fires constantly; the filter must degrade gracefully —
  // same bytes as the direct path, no lost occurrences, sane skew report.
  ConcurrentSbfOptions options;
  options.m = kM;
  options.k = kK;
  options.policy = SbfPolicy::kMinimumSelection;
  options.backing = CounterBacking::kFixed64;
  options.num_shards = 8;
  options.seed = 23;
  options.delta.capacity = 64;
  options.delta.merge_keys = 16;
  ConcurrentSbf buffered(options);

  Xoshiro256 rng(37);
  std::vector<uint64_t> keys;
  keys.reserve(kStream);
  while (keys.size() < kStream) {
    const uint64_t key = rng.Next();
    if (buffered.ShardOf(key) == 0) keys.push_back(key);
  }

  constexpr int kThreads = 8;
  std::vector<std::thread> writers;
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&, w] {
      const size_t begin = keys.size() * w / kThreads;
      const size_t end = keys.size() * (w + 1) / kThreads;
      buffered.InsertBatch(keys.data() + begin, end - begin);
    });
  }
  for (auto& t : writers) t.join();
  buffered.Flush();

  auto no_delta = options;
  no_delta.delta.enabled = false;
  ConcurrentSbf direct(no_delta);
  direct.InsertBatch(keys);
  EXPECT_EQ(buffered.Serialize(), direct.Serialize());
  EXPECT_EQ(buffered.TotalItems(), keys.size());
  // The skew shows up where it should: the health report, not lost data.
  const FilterHealth health = buffered.Health();
  EXPECT_GT(health.shard_skew, 4.0);
  EXPECT_GT(buffered.metrics().Shard(0).delta_merges, 0u);
}

TEST(BatchPipelineTest, ConcurrentSbfSaturationClampUnderConcurrency) {
  // Counters parked near the backing's MaxValue() must clamp — never wrap —
  // when 8 threads keep incrementing through the delta path, and the clamp
  // events must be tallied. fixed32 clamps at 2^32 - 1.
  ConcurrentSbfOptions options;
  options.m = 1024;
  options.k = kK;
  options.policy = SbfPolicy::kMinimumSelection;
  options.backing = CounterBacking::kFixed32;
  options.num_shards = 4;
  options.seed = 29;
  ConcurrentSbf filter(options);
  const uint64_t max_value = filter.shard(0).counters().MaxValue();
  ASSERT_EQ(max_value, (uint64_t{1} << 32) - 1);

  // Park 16 keys a hair below saturation, then race 8 threads adding 64
  // occurrences each on top.
  std::vector<uint64_t> keys(16);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = 0xABCD00 + i;
  for (uint64_t key : keys) filter.Insert(key, max_value - 32);
  constexpr int kThreads = 8;
  std::vector<std::thread> writers;
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&] {
      for (uint64_t key : keys) filter.Insert(key, 64);
    });
  }
  for (auto& t : writers) t.join();
  filter.Flush();

  for (uint64_t key : keys) {
    // Clamped at the max — a wrapped counter would read near zero and
    // break the one-sided guarantee.
    ASSERT_EQ(filter.Estimate(key), max_value) << "key " << key;
  }
  EXPECT_GT(filter.saturation().saturation_clamps, 0u);
  EXPECT_GT(filter.Health().saturated_counters, 0u);
}

TEST(BatchPipelineTest, VectorConveniencesMatchPointerForm) {
  const auto make = SbfFactory(SbfPolicy::kMinimumSelection,
                               CounterBacking::kCompact);
  auto a = make();
  auto b = make();
  const std::vector<uint64_t> keys = RandomKeys(500, 41);
  a->InsertBatch(keys.data(), keys.size());
  b->InsertBatch(keys);  // vector convenience
  const std::vector<uint64_t> via_vector = b->EstimateBatch(keys);
  std::vector<uint64_t> via_pointer(keys.size());
  a->EstimateBatch(keys.data(), keys.size(), via_pointer.data());
  EXPECT_EQ(via_vector, via_pointer);
}

TEST(BatchPipelineTest, EmptyAndTinyBatches) {
  const auto make = SbfFactory(SbfPolicy::kMinimumSelection,
                               CounterBacking::kFixed64);
  auto filter = make();
  filter->InsertBatch(nullptr, 0);  // no-op, must not crash
  uint64_t key = 123;
  filter->InsertBatch(&key, 1);
  uint64_t estimate = 0;
  filter->EstimateBatch(&key, 1, &estimate);
  EXPECT_EQ(estimate, 1u);
  filter->EstimateBatch(nullptr, 0, nullptr);
}

}  // namespace
}  // namespace sbf
