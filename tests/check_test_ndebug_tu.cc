// Compiled with NDEBUG forcibly defined (see tests/CMakeLists.txt): the
// debug-only macros expand to no-ops here and must neither abort nor
// evaluate their arguments.

#ifndef NDEBUG
#define NDEBUG
#endif

#include "check_test_paths.h"
#include "util/check.h"

namespace sbf::check_test {

void NdebugDcheckIsNoOp() { SBF_DCHECK(false); }

void NdebugDcheckMsgIsNoOp() { SBF_DCHECK_MSG(false, "disarmed message"); }

uint64_t NdebugDcheckEvaluations() {
  uint64_t evaluations = 0;
  SBF_DCHECK(++evaluations > 0);
  SBF_DCHECK_MSG(++evaluations > 0, "must not run");
  return evaluations;
}

}  // namespace sbf::check_test
