// Differential and stress suite for the epoch-merged delta-buffer write
// path of the sharded SBF frontend (core/delta_buffer.h). The ground rule
// under test: buffering must be invisible — N threads writing through the
// delta path converge (after Flush(), a join, or a whole-filter op) to the
// byte-exact state of the same multiset applied through the direct path,
// and estimates never under-report a completed insert even mid-epoch.
// Every test here must be race-clean under ThreadSanitizer (the dedicated
// tsan-concurrency CI leg runs this binary with -DSBF_SANITIZE=thread).

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "core/concurrent_sbf.h"
#include "core/spectral_bloom_filter.h"
#include "workload/multiset_stream.h"

namespace sbf {
namespace {

constexpr int kWriters = 8;
constexpr int kReaders = 8;

ConcurrentSbfOptions MakeDeltaOptions(CounterBacking backing,
                                      uint32_t num_shards,
                                      uint64_t seed = 42) {
  ConcurrentSbfOptions options;
  options.m = 8192;
  options.k = 4;
  options.policy = SbfPolicy::kMinimumSelection;
  options.backing = backing;
  options.num_shards = num_shards;
  options.seed = seed;
  options.delta.enabled = true;
  return options;
}

ConcurrentSbfOptions WithoutDelta(ConcurrentSbfOptions options) {
  options.delta.enabled = false;
  return options;
}

std::vector<size_t> SliceStarts(size_t n, int parts) {
  std::vector<size_t> starts(parts + 1);
  for (int i = 0; i <= parts; ++i) starts[i] = n * i / parts;
  return starts;
}

// Drives `data.stream` through `filter` with `kWriters` threads, odd
// writers batching and even writers issuing point inserts (both buffered
// paths are exercised and proven mutually race-clean).
void InsertConcurrently(ConcurrentSbf& filter, const Multiset& data) {
  const auto starts = SliceStarts(data.stream.size(), kWriters);
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      if (w % 2 == 1) {
        std::vector<uint64_t> slice(data.stream.begin() + starts[w],
                                    data.stream.begin() + starts[w + 1]);
        filter.InsertBatch(slice);
      } else {
        for (size_t i = starts[w]; i < starts[w + 1]; ++i) {
          filter.Insert(data.stream[i]);
        }
      }
    });
  }
  for (auto& t : writers) t.join();
}

class ConcurrentDeltaBackingTest
    : public ::testing::TestWithParam<CounterBacking> {};

std::string BackingName(const ::testing::TestParamInfo<CounterBacking>& info) {
  std::string name = CounterBackingName(info.param);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

TEST_P(ConcurrentDeltaBackingTest, ThreadedDeltaMatchesDirectPathAfterFlush) {
  // The differential heart of the suite: the delta path must be invisible.
  // Across shard counts, 8 threads buffering through delta maps must
  // converge to the byte-exact wire image of the direct (unbuffered) path
  // fed the same multiset serially.
  const Multiset data = MakeZipfMultiset(400, 20000, 1.0, 7);
  for (uint32_t num_shards : {1u, 4u, 16u}) {
    const auto options = MakeDeltaOptions(GetParam(), num_shards);
    ConcurrentSbf buffered(options);
    ConcurrentSbf direct(WithoutDelta(options));
    ASSERT_TRUE(buffered.IsDeltaBuffered());
    ASSERT_FALSE(direct.IsDeltaBuffered());
    direct.InsertBatch(data.stream);

    InsertConcurrently(buffered, data);
    buffered.Flush();
    EXPECT_EQ(buffered.PendingDeltaOps(), 0u) << num_shards << " shards";
    EXPECT_EQ(buffered.Serialize(), direct.Serialize())
        << num_shards << " shards";
    EXPECT_EQ(buffered.TotalItems(), data.stream.size());
    EXPECT_GT(buffered.metrics().Totals().delta_merges, 0u);
  }
}

TEST_P(ConcurrentDeltaBackingTest, TinyCapacityForcedMergesStayExact) {
  // A 64-slot map with a 16-key merge threshold forces both epoch triggers
  // (size threshold and map-full retry) thousands of times; the result
  // must still be byte-exact.
  auto options = MakeDeltaOptions(GetParam(), 4);
  options.delta.capacity = 64;
  options.delta.merge_keys = 16;
  const Multiset data = MakeZipfMultiset(500, 15000, 1.0, 13);
  ConcurrentSbf buffered(options);
  ConcurrentSbf direct(WithoutDelta(options));
  direct.InsertBatch(data.stream);

  InsertConcurrently(buffered, data);
  buffered.Flush();
  EXPECT_EQ(buffered.Serialize(), direct.Serialize());
}

TEST_P(ConcurrentDeltaBackingTest, SingleShardDeltaDegeneratesToPlainSbf) {
  // With one shard and one thread, the buffered frontend IS a plain SBF:
  // the self-drain discipline (estimates drain the caller's own buffer)
  // plus the flush-on-serialize boundary make the wire images identical.
  const auto options = MakeDeltaOptions(GetParam(), 1);
  ConcurrentSbf sharded(options);
  SpectralBloomFilter plain(ShardOptions(options, 0));
  const Multiset data = MakeZipfMultiset(200, 8000, 1.0, 17);
  for (uint64_t key : data.stream) {
    sharded.Insert(key);
    plain.Insert(key);
  }
  for (size_t i = 0; i < data.keys.size(); ++i) {
    ASSERT_EQ(sharded.Estimate(data.keys[i]), plain.Estimate(data.keys[i]));
  }
  EXPECT_EQ(sharded.SnapshotShard(0).Serialize(), plain.Serialize());
}

TEST_P(ConcurrentDeltaBackingTest, MinimalIncreaseBypassesDeltaBuffers) {
  // MI reads counters before lifting them — order-dependent updates cannot
  // be buffered commutatively — so the delta path must deactivate itself
  // even when explicitly enabled, and the pending tally must stay zero.
  auto options = MakeDeltaOptions(GetParam(), 4);
  options.policy = SbfPolicy::kMinimalIncrease;
  options.delta.enabled = true;
  ConcurrentSbf filter(options);
  EXPECT_FALSE(filter.IsDeltaBuffered());

  const Multiset data = MakeZipfMultiset(200, 8000, 1.0, 19);
  const auto starts = SliceStarts(data.stream.size(), kWriters);
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (size_t i = starts[w]; i < starts[w + 1]; ++i) {
        filter.Insert(data.stream[i]);
        ASSERT_EQ(filter.PendingDeltaOps(), 0u);
      }
    });
  }
  for (auto& t : writers) t.join();
  // One-sidedness still holds for insert-only MI streams.
  for (size_t i = 0; i < data.keys.size(); ++i) {
    ASSERT_GE(filter.Estimate(data.keys[i]), data.freqs[i]);
  }
}

TEST_P(ConcurrentDeltaBackingTest, ThreadExitDrainsWithoutExplicitFlush) {
  // A joined writer must leave nothing behind: the TLS destructor drains
  // its buffers into the shard counters, so after the join the estimates
  // are exact with no Flush() call anywhere.
  auto options = MakeDeltaOptions(GetParam(), 4);
  options.delta.merge_keys = 1u << 20;   // never size-triggered
  options.delta.max_epoch_micros = 0;    // never clock-triggered
  options.delta.capacity = 4096;
  ConcurrentSbf filter(options);
  const Multiset data = MakeZipfMultiset(100, 4000, 1.0, 23);
  std::thread writer([&] {
    for (uint64_t key : data.stream) filter.Insert(key);
  });
  writer.join();
  EXPECT_EQ(filter.PendingDeltaOps(), 0u);
  for (size_t i = 0; i < data.keys.size(); ++i) {
    ASSERT_GE(filter.Estimate(data.keys[i]), data.freqs[i]);
  }
  EXPECT_EQ(filter.TotalItems(), data.stream.size());
}

TEST_P(ConcurrentDeltaBackingTest, CrossThreadMidEpochEstimateIsOneSided) {
  // The core one-sided guarantee, deterministically: a writer buffers
  // inserts and parks WITHOUT merging (thresholds disabled); a different
  // thread — whose own buffers are empty — estimates. The pending tally
  // must cover the parked occurrences, so the estimate is >= the true
  // frequency even though no counter carries it yet.
  auto options = MakeDeltaOptions(GetParam(), 2);
  options.delta.merge_keys = 1u << 20;
  options.delta.max_epoch_micros = 0;
  options.delta.capacity = 1024;
  ConcurrentSbf filter(options);

  constexpr uint64_t kKey = 0xFEEDFACEull;
  constexpr uint64_t kTimes = 37;
  std::mutex mu;
  std::condition_variable cv;
  int stage = 0;  // 0: writer buffering, 1: reader may probe, 2: done
  std::thread writer([&] {
    for (uint64_t i = 0; i < kTimes; ++i) filter.Insert(kKey);
    {
      std::lock_guard<std::mutex> lock(mu);
      stage = 1;
    }
    cv.notify_all();
    // Park (keeping the thread alive so the TLS drain cannot run) until
    // the reader finished probing mid-epoch state.
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return stage == 2; });
  });
  std::thread reader([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return stage == 1; });
    lock.unlock();
    EXPECT_GT(filter.PendingDeltaOps(), 0u);
    EXPECT_GE(filter.Estimate(kKey), kTimes);
    lock.lock();
    stage = 2;
    lock.unlock();
    cv.notify_all();
  });
  writer.join();
  reader.join();
  EXPECT_EQ(filter.PendingDeltaOps(), 0u);
  EXPECT_GE(filter.Estimate(kKey), kTimes);
}

TEST_P(ConcurrentDeltaBackingTest, MergeMidEpochObservesUnflushedDeltas) {
  // Regression for the latent bug this PR fixes: Merge() used to read the
  // operands' counters directly, silently dropping any deltas still
  // buffered mid-epoch. Merging with buffers full must now equal merging
  // the explicitly flushed filters.
  auto options = MakeDeltaOptions(GetParam(), 4);
  options.delta.merge_keys = 1u << 20;
  options.delta.max_epoch_micros = 0;
  options.delta.capacity = 4096;
  const Multiset left = MakeZipfMultiset(150, 6000, 1.0, 29);
  const Multiset right = MakeZipfMultiset(150, 6000, 1.0, 31);

  // Mid-epoch merge: both operands still hold every insert in buffers.
  ConcurrentSbf a(options), b(options);
  for (uint64_t key : left.stream) a.Insert(key);
  for (uint64_t key : right.stream) b.Insert(key);
  EXPECT_GT(a.PendingDeltaOps() + b.PendingDeltaOps(), 0u);
  ASSERT_TRUE(a.Merge(b).ok());

  // Flushed reference: same streams, explicit epoch boundary, then merge.
  ConcurrentSbf ra(options), rb(options);
  for (uint64_t key : left.stream) ra.Insert(key);
  for (uint64_t key : right.stream) rb.Insert(key);
  ra.Flush();
  rb.Flush();
  ASSERT_TRUE(ra.Merge(rb).ok());

  EXPECT_EQ(a.Serialize(), ra.Serialize());
  EXPECT_EQ(a.TotalItems(), left.stream.size() + right.stream.size());
}

TEST_P(ConcurrentDeltaBackingTest, HealthMidEpochObservesUnflushedDeltas) {
  // Health() must not report an empty filter while every insert sits in a
  // buffer: it drains first, so the fill scan sees the mid-epoch inserts.
  auto options = MakeDeltaOptions(GetParam(), 2);
  options.delta.merge_keys = 1u << 20;
  options.delta.max_epoch_micros = 0;
  options.delta.capacity = 4096;
  ConcurrentSbf filter(options);
  const Multiset data = MakeZipfMultiset(200, 5000, 1.0, 37);
  for (uint64_t key : data.stream) filter.Insert(key);
  EXPECT_GT(filter.PendingDeltaOps(), 0u);
  const FilterHealth health = filter.Health();
  EXPECT_GT(health.nonzero_counters, 0u);
  EXPECT_GT(health.fill_ratio, 0.0);
  // No writers are racing, so nothing was re-buffered during the drain.
  EXPECT_EQ(health.pending_delta_ops, 0u);
  EXPECT_EQ(filter.PendingDeltaOps(), 0u);
}

TEST_P(ConcurrentDeltaBackingTest, WritersAndReadersRaceMidEpoch) {
  // The TSan stress centerpiece: kWriters re-insert a pre-loaded multiset
  // through the delta path while kReaders hammer estimates. At EVERY
  // observation point an estimate must be >= the pre-loaded baseline
  // frequency (counters plus pending tally never under-report), and the
  // final state must again match the direct path byte for byte.
  const Multiset data = MakeZipfMultiset(256, 12000, 1.0, 41);
  const auto options = MakeDeltaOptions(GetParam(), 8);
  ConcurrentSbf filter(options);
  filter.InsertBatch(data.stream);
  filter.Flush();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> violations{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      uint64_t local = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const size_t i = (local++ * 31 + static_cast<size_t>(r)) %
                         data.keys.size();
        if (filter.Estimate(data.keys[i]) < data.freqs[i]) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  InsertConcurrently(filter, data);
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0u);

  filter.Flush();
  ConcurrentSbf direct(WithoutDelta(options));
  direct.InsertBatch(data.stream);
  direct.InsertBatch(data.stream);
  EXPECT_EQ(filter.Serialize(), direct.Serialize());
}

INSTANTIATE_TEST_SUITE_P(Backings, ConcurrentDeltaBackingTest,
                         ::testing::Values(CounterBacking::kFixed64,
                                           CounterBacking::kFixed32,
                                           CounterBacking::kCompact,
                                           CounterBacking::kSerialScan),
                         BackingName);

TEST(ConcurrentDeltaTest, LockFreeRemoveCancellationNetsOutInBuffer) {
  // Insert-then-remove of the same occurrences through one thread's buffer
  // nets to zero before any counter is touched; the flushed image equals a
  // filter that saw only the surviving inserts.
  auto options = MakeDeltaOptions(CounterBacking::kFixed64, 4);
  options.delta.merge_keys = 1u << 20;
  options.delta.max_epoch_micros = 0;
  options.delta.capacity = 4096;
  const Multiset data = MakeZipfMultiset(100, 3000, 1.0, 43);
  ConcurrentSbf buffered(options);
  ConcurrentSbf direct(WithoutDelta(options));
  for (uint64_t key : data.stream) buffered.Insert(key);
  // Remove one occurrence of every key, still buffered.
  for (uint64_t key : data.keys) buffered.Remove(key);
  buffered.Flush();
  direct.InsertBatch(data.stream);
  for (uint64_t key : data.keys) direct.Remove(key);
  EXPECT_EQ(buffered.Serialize(), direct.Serialize());
  EXPECT_EQ(buffered.TotalItems(), data.stream.size() - data.keys.size());
}

TEST(ConcurrentDeltaTest, ClampedBackingRemovesFlushThenApplyDirectly) {
  // On clamped backings removes are order-sensitive (a remove merged ahead
  // of its insert clamps at zero), so Remove() flushes every buffer first
  // and applies directly — including inserts still buffered by OTHER
  // threads, the exact interleaving that used to lose occurrences.
  auto options = MakeDeltaOptions(CounterBacking::kCompact, 4);
  options.delta.merge_keys = 1u << 20;
  options.delta.max_epoch_micros = 0;
  options.delta.capacity = 4096;
  const Multiset data = MakeZipfMultiset(100, 3000, 1.0, 47);
  ConcurrentSbf buffered(options);
  std::thread writer([&] {
    for (uint64_t key : data.stream) buffered.Insert(key);
  });
  writer.join();  // inserts drained by thread exit
  // Re-buffer a second copy from this thread, then remove mid-epoch: the
  // removes must observe both the drained and the still-buffered copies.
  for (uint64_t key : data.stream) buffered.Insert(key);
  for (uint64_t key : data.keys) buffered.Remove(key);
  buffered.Flush();

  ConcurrentSbf direct(WithoutDelta(options));
  direct.InsertBatch(data.stream);
  direct.InsertBatch(data.stream);
  for (uint64_t key : data.keys) direct.Remove(key);
  EXPECT_EQ(buffered.Serialize(), direct.Serialize());
  EXPECT_EQ(buffered.TotalItems(), 2 * data.stream.size() - data.keys.size());
}

TEST(ConcurrentDeltaTest, MoveCarriesBufferedStateAcrossInstances) {
  // Moving a filter re-points the delta registry: deltas buffered against
  // the source drain into the destination (moves flush first), and new
  // writes through the moved-to instance keep buffering.
  auto options = MakeDeltaOptions(CounterBacking::kFixed64, 2);
  options.delta.merge_keys = 1u << 20;
  options.delta.max_epoch_micros = 0;
  ConcurrentSbf source(options);
  for (uint64_t key = 1; key <= 64; ++key) source.Insert(key);
  ConcurrentSbf moved(std::move(source));
  EXPECT_TRUE(moved.IsDeltaBuffered());
  for (uint64_t key = 1; key <= 64; ++key) moved.Insert(key);
  moved.Flush();
  for (uint64_t key = 1; key <= 64; ++key) {
    ASSERT_GE(moved.Estimate(key), 2u) << "key " << key;
  }
  EXPECT_EQ(moved.TotalItems(), 128u);
}

TEST(ConcurrentDeltaTest, DeltaDisabledConfigTakesDirectPath) {
  auto options = MakeDeltaOptions(CounterBacking::kFixed64, 4);
  options.delta.enabled = false;
  ConcurrentSbf filter(options);
  EXPECT_FALSE(filter.IsDeltaBuffered());
  filter.Insert(1, 5);
  EXPECT_EQ(filter.PendingDeltaOps(), 0u);
  EXPECT_EQ(filter.Estimate(1), 5u);
  // Flush is a harmless no-op without buffers.
  filter.Flush();
  EXPECT_EQ(filter.Estimate(1), 5u);
}

TEST(ConcurrentDeltaTest, MetricsTrackMergesAndBufferedPeak) {
  auto options = MakeDeltaOptions(CounterBacking::kFixed64, 2);
  options.delta.capacity = 64;
  options.delta.merge_keys = 8;
  ConcurrentSbf filter(options);
  for (uint64_t key = 0; key < 512; ++key) filter.Insert(key);
  filter.Flush();
  const auto totals = filter.metrics().Totals();
  EXPECT_GT(totals.delta_merges, 0u);
  EXPECT_GT(totals.delta_merged_keys, 0u);
  EXPECT_GE(totals.delta_buffered_peak, 8u);
  EXPECT_EQ(totals.inserted_keys, 512u);
}

}  // namespace
}  // namespace sbf
