#include <gtest/gtest.h>

#include <vector>

#include "bitstream/bit_writer.h"
#include "bitstream/elias.h"
#include "bitstream/steps_code.h"
#include "util/bits.h"
#include "util/random.h"

namespace sbf {
namespace {

// --- Elias gamma --------------------------------------------------------------

TEST(EliasGammaTest, KnownCodewords) {
  // gamma(1) = "1", gamma(2) = "010", gamma(3) = "011", gamma(4) = "00100".
  BitVector out;
  BitWriter writer(&out);
  EliasGammaEncode(1, &writer);
  EliasGammaEncode(2, &writer);
  EliasGammaEncode(3, &writer);
  EliasGammaEncode(4, &writer);
  writer.Finish();
  EXPECT_EQ(out.size_bits(), 1u + 3 + 3 + 5);

  BitReader reader(&out);
  EXPECT_EQ(EliasGammaDecode(&reader), 1u);
  EXPECT_EQ(EliasGammaDecode(&reader), 2u);
  EXPECT_EQ(EliasGammaDecode(&reader), 3u);
  EXPECT_EQ(EliasGammaDecode(&reader), 4u);
}

TEST(EliasGammaTest, RoundTripExhaustiveSmall) {
  BitVector out;
  BitWriter writer(&out);
  for (uint64_t n = 1; n <= 2000; ++n) EliasGammaEncode(n, &writer);
  writer.Finish();
  BitReader reader(&out);
  for (uint64_t n = 1; n <= 2000; ++n) {
    ASSERT_EQ(EliasGammaDecode(&reader), n);
  }
  EXPECT_TRUE(reader.AtEnd());
}

TEST(EliasGammaTest, RoundTripRandomLarge) {
  Xoshiro256 rng(1);
  std::vector<uint64_t> values;
  BitVector out;
  BitWriter writer(&out);
  for (int i = 0; i < 500; ++i) {
    const uint64_t v = (rng.Next() >> (rng.UniformInt(63))) | 1;
    values.push_back(v);
    EliasGammaEncode(v, &writer);
  }
  writer.Finish();
  BitReader reader(&out);
  for (uint64_t v : values) ASSERT_EQ(EliasGammaDecode(&reader), v);
}

TEST(EliasGammaTest, LengthMatchesEncoding) {
  for (uint64_t n : {1ull, 2ull, 3ull, 4ull, 100ull, 12345ull, 1ull << 40}) {
    BitVector out;
    BitWriter writer(&out);
    EliasGammaEncode(n, &writer);
    writer.Finish();
    EXPECT_EQ(out.size_bits(), EliasGammaLength(n)) << n;
  }
}

// --- Elias delta ----------------------------------------------------------------

TEST(EliasDeltaTest, KnownCodewords) {
  // delta(1) = "1" (gamma(1)), delta(2) = gamma(2) + "0" = "0100".
  EXPECT_EQ(EliasDeltaLength(1), 1u);
  EXPECT_EQ(EliasDeltaLength(2), 4u);
  EXPECT_EQ(EliasDeltaLength(3), 4u);
  EXPECT_EQ(EliasDeltaLength(4), 5u);
}

TEST(EliasDeltaTest, RoundTripExhaustiveSmall) {
  BitVector out;
  BitWriter writer(&out);
  for (uint64_t n = 1; n <= 2000; ++n) EliasDeltaEncode(n, &writer);
  writer.Finish();
  BitReader reader(&out);
  for (uint64_t n = 1; n <= 2000; ++n) {
    ASSERT_EQ(EliasDeltaDecode(&reader), n);
  }
}

TEST(EliasDeltaTest, RoundTripPowersOfTwo) {
  BitVector out;
  BitWriter writer(&out);
  for (uint32_t p = 0; p < 64; ++p) EliasDeltaEncode(1ull << p, &writer);
  writer.Finish();
  BitReader reader(&out);
  for (uint32_t p = 0; p < 64; ++p) {
    ASSERT_EQ(EliasDeltaDecode(&reader), 1ull << p) << p;
  }
}

TEST(EliasDeltaTest, LengthMatchesEncodingAndPaperFormula) {
  for (uint64_t n : {1ull, 2ull, 5ull, 17ull, 100ull, 65535ull, 1ull << 50}) {
    BitVector out;
    BitWriter writer(&out);
    EliasDeltaEncode(n, &writer);
    writer.Finish();
    EXPECT_EQ(out.size_bits(), EliasDeltaLength(n)) << n;
    // L2(n) = floor(log2 n) + 2 floor(log2(floor(log2 n)+1)) + 1.
    const uint32_t log_n = FloorLog2(n);
    EXPECT_EQ(EliasDeltaLength(n), log_n + 2 * FloorLog2(log_n + 1) + 1) << n;
  }
}

TEST(EliasDeltaTest, AsymptoticallySmallerThanGamma) {
  EXPECT_LT(EliasDeltaLength(1ull << 40), EliasGammaLength(1ull << 40));
}

// --- steps code --------------------------------------------------------------

TEST(StepsCodeTest, PaperExampleConfiguration) {
  // {0, 0}: 0 -> '0' (1 bit), 1 -> '10' (2 bits), else '11' + Elias.
  StepsCode code({0, 0});
  EXPECT_EQ(code.Length(0), 1u);
  EXPECT_EQ(code.Length(1), 2u);
  EXPECT_EQ(code.Length(2), 2u + EliasDeltaLength(1));

  BitVector out;
  BitWriter writer(&out);
  code.Encode(0, &writer);
  code.Encode(1, &writer);
  writer.Finish();
  EXPECT_EQ(out.size_bits(), 3u);
  EXPECT_FALSE(out.GetBit(0));  // '0'
  EXPECT_TRUE(out.GetBit(1));   // '1'
  EXPECT_FALSE(out.GetBit(2));  // '0'
}

class StepsConfigTest
    : public ::testing::TestWithParam<std::vector<uint32_t>> {};

TEST_P(StepsConfigTest, RoundTripSmallValues) {
  StepsCode code(GetParam());
  BitVector out;
  BitWriter writer(&out);
  for (uint64_t v = 0; v <= 300; ++v) code.Encode(v, &writer);
  writer.Finish();
  BitReader reader(&out);
  for (uint64_t v = 0; v <= 300; ++v) {
    ASSERT_EQ(code.Decode(&reader), v) << v;
  }
  EXPECT_TRUE(reader.AtEnd());
}

TEST_P(StepsConfigTest, RoundTripRandomLargeValues) {
  StepsCode code(GetParam());
  Xoshiro256 rng(99);
  std::vector<uint64_t> values;
  BitVector out;
  BitWriter writer(&out);
  for (int i = 0; i < 300; ++i) {
    const uint64_t v = rng.Next() >> rng.UniformInt(60);
    values.push_back(v);
    code.Encode(v, &writer);
  }
  writer.Finish();
  BitReader reader(&out);
  for (uint64_t v : values) ASSERT_EQ(code.Decode(&reader), v);
}

TEST_P(StepsConfigTest, LengthMatchesEncoding) {
  StepsCode code(GetParam());
  for (uint64_t v : {0ull, 1ull, 2ull, 3ull, 7ull, 8ull, 100ull, 5000ull,
                     1ull << 33}) {
    BitVector out;
    BitWriter writer(&out);
    code.Encode(v, &writer);
    writer.Finish();
    EXPECT_EQ(out.size_bits(), code.Length(v)) << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, StepsConfigTest,
    ::testing::Values(std::vector<uint32_t>{0, 0}, std::vector<uint32_t>{1, 2},
                      std::vector<uint32_t>{2, 3}, std::vector<uint32_t>{1},
                      std::vector<uint32_t>{4, 4, 4}));

TEST(StepsCodeTest, CheaperThanEliasForCountersOfOne) {
  // The paper's motivation: in an "almost set" (most counters 1, stored as
  // code(c+1)=code(2)), steps beat Elias delta.
  StepsCode code({0, 0});
  EXPECT_LT(code.Length(1 + 1), EliasDeltaLength(1 + 1) + 0u);
}

TEST(StepsCodeTest, MixedStreamWithEliasInterleaved) {
  // Codecs must compose on one stream.
  StepsCode code({1, 2});
  BitVector out;
  BitWriter writer(&out);
  code.Encode(7, &writer);
  EliasDeltaEncode(42, &writer);
  code.Encode(0, &writer);
  EliasGammaEncode(5, &writer);
  writer.Finish();
  BitReader reader(&out);
  EXPECT_EQ(code.Decode(&reader), 7u);
  EXPECT_EQ(EliasDeltaDecode(&reader), 42u);
  EXPECT_EQ(code.Decode(&reader), 0u);
  EXPECT_EQ(EliasGammaDecode(&reader), 5u);
}

}  // namespace
}  // namespace sbf
