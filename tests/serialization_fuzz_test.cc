// Robustness of the wire formats: deserialization of corrupted, truncated
// or random bytes must fail cleanly with a Status (never crash or read out
// of bounds), and valid round-trips must be byte-stable.

#include <gtest/gtest.h>

#include <vector>

#include "core/bloom_filter.h"
#include "core/spectral_bloom_filter.h"
#include "util/random.h"
#include "workload/multiset_stream.h"

namespace sbf {
namespace {

SpectralBloomFilter MakeLoadedSbf(uint64_t seed) {
  SbfOptions options;
  options.m = 500;
  options.k = 4;
  options.seed = seed;
  options.backing = CounterBacking::kFixed64;
  SpectralBloomFilter filter(options);
  const Multiset data = MakeZipfMultiset(150, 4000, 1.0, seed);
  for (uint64_t key : data.stream) filter.Insert(key);
  return filter;
}

TEST(SerializationFuzzTest, SbfRoundTripIsByteStable) {
  const auto filter = MakeLoadedSbf(1);
  const auto bytes = filter.Serialize();
  auto restored = SpectralBloomFilter::Deserialize(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().Serialize(), bytes);
}

TEST(SerializationFuzzTest, SbfTruncationsNeverCrash) {
  const auto bytes = MakeLoadedSbf(2).Serialize();
  for (size_t len = 0; len < bytes.size(); len += 7) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + len);
    const auto result = SpectralBloomFilter::Deserialize(truncated);
    EXPECT_FALSE(result.ok()) << "length " << len;
  }
}

TEST(SerializationFuzzTest, SbfSingleByteCorruptions) {
  const auto filter = MakeLoadedSbf(3);
  const auto bytes = filter.Serialize();
  Xoshiro256 rng(5);
  size_t rejected = 0, accepted = 0;
  for (int trial = 0; trial < 500; ++trial) {
    auto corrupted = bytes;
    const size_t at = rng.UniformInt(corrupted.size());
    corrupted[at] ^= static_cast<uint8_t>(rng.UniformInt(255) + 1);
    const auto result = SpectralBloomFilter::Deserialize(corrupted);
    // Either cleanly rejected, or decoded into *some* well-formed filter
    // (payload corruption can produce a different valid counter stream);
    // the requirement is no crash and no out-of-bounds access.
    if (result.ok()) {
      ++accepted;
      EXPECT_EQ(result.value().m(), filter.m());
    } else {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ(rejected + accepted, 500u);
}

TEST(SerializationFuzzTest, SbfRandomGarbageRejected) {
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> garbage(rng.UniformInt(300));
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.Next());
    EXPECT_FALSE(SpectralBloomFilter::Deserialize(garbage).ok());
  }
}

TEST(SerializationFuzzTest, SbfHeaderFieldCorruptionsRejectedOrBounded) {
  const auto bytes = MakeLoadedSbf(9).Serialize();
  // Set validated header words (m, k, kind, policy, backing, payload size)
  // to an extreme value; the header/size checks must reject each. The
  // seed and total-items words are free-form and legitimately accepted.
  for (size_t word : {1, 2, 4, 5, 6, 8}) {
    auto corrupted = bytes;
    for (int b = 0; b < 8; ++b) corrupted[word * 8 + b] = 0xFF;
    EXPECT_FALSE(SpectralBloomFilter::Deserialize(corrupted).ok())
        << "header word " << word;
  }
}

TEST(SerializationFuzzTest, BloomFilterTruncationsNeverCrash) {
  BloomFilter filter(777, 3, 11);
  for (uint64_t key = 0; key < 200; ++key) filter.Add(key);
  const auto bytes = filter.Serialize();
  for (size_t len = 0; len < bytes.size(); len += 5) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + len);
    EXPECT_FALSE(BloomFilter::Deserialize(truncated).ok());
  }
}

TEST(SerializationFuzzTest, BloomFilterBitFlipsKeepShape) {
  BloomFilter filter(512, 4, 13);
  for (uint64_t key = 0; key < 100; ++key) filter.Add(key);
  const auto bytes = filter.Serialize();
  Xoshiro256 rng(15);
  for (int trial = 0; trial < 200; ++trial) {
    auto corrupted = bytes;
    corrupted[rng.UniformInt(corrupted.size())] ^= 0x40;
    const auto result = BloomFilter::Deserialize(corrupted);
    if (result.ok()) {
      EXPECT_EQ(result.value().m(), 512u);
    }
  }
}

}  // namespace
}  // namespace sbf
