// Robustness of the wire formats: deserialization of corrupted, truncated
// or random bytes must fail cleanly with a Status (never crash or read out
// of bounds), and valid round-trips must be byte-stable.

#include <gtest/gtest.h>

#include <vector>

#include "core/bloom_filter.h"
#include "core/concurrent_sbf.h"
#include "core/spectral_bloom_filter.h"
#include "util/random.h"
#include "workload/multiset_stream.h"

namespace sbf {
namespace {

SpectralBloomFilter MakeLoadedSbf(uint64_t seed) {
  SbfOptions options;
  options.m = 500;
  options.k = 4;
  options.seed = seed;
  options.backing = CounterBacking::kFixed64;
  SpectralBloomFilter filter(options);
  const Multiset data = MakeZipfMultiset(150, 4000, 1.0, seed);
  for (uint64_t key : data.stream) filter.Insert(key);
  return filter;
}

TEST(SerializationFuzzTest, SbfRoundTripIsByteStable) {
  const auto filter = MakeLoadedSbf(1);
  const auto bytes = filter.Serialize();
  auto restored = SpectralBloomFilter::Deserialize(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().Serialize(), bytes);
}

TEST(SerializationFuzzTest, SbfTruncationsNeverCrash) {
  const auto bytes = MakeLoadedSbf(2).Serialize();
  for (size_t len = 0; len < bytes.size(); len += 7) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + len);
    const auto result = SpectralBloomFilter::Deserialize(truncated);
    EXPECT_FALSE(result.ok()) << "length " << len;
  }
}

TEST(SerializationFuzzTest, SbfSingleByteCorruptions) {
  const auto filter = MakeLoadedSbf(3);
  const auto bytes = filter.Serialize();
  Xoshiro256 rng(5);
  size_t rejected = 0, accepted = 0;
  for (int trial = 0; trial < 500; ++trial) {
    auto corrupted = bytes;
    const size_t at = rng.UniformInt(corrupted.size());
    corrupted[at] ^= static_cast<uint8_t>(rng.UniformInt(255) + 1);
    const auto result = SpectralBloomFilter::Deserialize(corrupted);
    // Either cleanly rejected, or decoded into *some* well-formed filter
    // (payload corruption can produce a different valid counter stream);
    // the requirement is no crash and no out-of-bounds access.
    if (result.ok()) {
      ++accepted;
      EXPECT_EQ(result.value().m(), filter.m());
    } else {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ(rejected + accepted, 500u);
}

TEST(SerializationFuzzTest, SbfRandomGarbageRejected) {
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> garbage(rng.UniformInt(300));
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.Next());
    EXPECT_FALSE(SpectralBloomFilter::Deserialize(garbage).ok());
  }
}

TEST(SerializationFuzzTest, SbfHeaderFieldCorruptionsRejectedOrBounded) {
  const auto bytes = MakeLoadedSbf(9).Serialize();
  // Set validated header words (m, k, kind, policy, backing, payload size)
  // to an extreme value; the header/size checks must reject each. The
  // seed and total-items words are free-form and legitimately accepted.
  for (size_t word : {1, 2, 4, 5, 6, 8}) {
    auto corrupted = bytes;
    for (int b = 0; b < 8; ++b) corrupted[word * 8 + b] = 0xFF;
    EXPECT_FALSE(SpectralBloomFilter::Deserialize(corrupted).ok())
        << "header word " << word;
  }
}

// --- sharded (ConcurrentSbf) wire format ----------------------------------

ConcurrentSbf MakeLoadedShardedSbf(CounterBacking backing, uint64_t seed) {
  ConcurrentSbfOptions options;
  options.m = 2000;
  options.k = 4;
  options.num_shards = 4;
  options.seed = seed;
  options.backing = backing;
  ConcurrentSbf filter(options);
  const Multiset data = MakeZipfMultiset(150, 4000, 1.0, seed);
  filter.InsertBatch(data.stream);
  return filter;
}

const std::vector<CounterBacking>& AllBackings() {
  static const std::vector<CounterBacking> backings = {
      CounterBacking::kFixed64, CounterBacking::kFixed32,
      CounterBacking::kCompact, CounterBacking::kSerialScan};
  return backings;
}

TEST(SerializationFuzzTest, ShardedRoundTripIsByteStableAcrossBackings) {
  for (const auto backing : AllBackings()) {
    const auto filter = MakeLoadedShardedSbf(backing, 21);
    const auto bytes = filter.Serialize();
    auto restored = ConcurrentSbf::Deserialize(bytes);
    ASSERT_TRUE(restored.ok()) << CounterBackingName(backing);
    EXPECT_EQ(restored.value().Serialize(), bytes)
        << CounterBackingName(backing);
    EXPECT_EQ(restored.value().TotalItems(), filter.TotalItems());
  }
}

TEST(SerializationFuzzTest, ShardedTruncationsNeverCrash) {
  const auto bytes =
      MakeLoadedShardedSbf(CounterBacking::kFixed64, 23).Serialize();
  for (size_t len = 0; len < bytes.size(); len += 9) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + len);
    EXPECT_FALSE(ConcurrentSbf::Deserialize(truncated).ok())
        << "length " << len;
  }
}

TEST(SerializationFuzzTest, ShardedShardCountMismatchRejected) {
  const auto filter = MakeLoadedShardedSbf(CounterBacking::kCompact, 25);
  const auto bytes = filter.Serialize();
  // Header word 1 is the shard count. Claiming more shards than blobs, or
  // fewer (leaving trailing blobs), must both be rejected.
  for (const uint64_t claimed : {0ull, 1ull, 3ull, 5ull, 4096ull, ~0ull}) {
    auto corrupted = bytes;
    for (int b = 0; b < 8; ++b) {
      corrupted[8 + b] = static_cast<uint8_t>(claimed >> (8 * b));
    }
    EXPECT_FALSE(ConcurrentSbf::Deserialize(corrupted).ok())
        << "claimed shard count " << claimed;
  }
}

TEST(SerializationFuzzTest, ShardedCorruptedShardHeadersRejected) {
  const auto bytes =
      MakeLoadedShardedSbf(CounterBacking::kFixed64, 27).Serialize();
  constexpr size_t kFrontendHeader = 4 * 8;
  // The first shard's length prefix, then validated fields of its embedded
  // SBF header (magic, m, k) — each smashed to all-ones must be rejected.
  for (const size_t offset :
       {kFrontendHeader, kFrontendHeader + 8, kFrontendHeader + 16,
        kFrontendHeader + 24}) {
    auto corrupted = bytes;
    for (int b = 0; b < 8; ++b) corrupted[offset + b] = 0xFF;
    EXPECT_FALSE(ConcurrentSbf::Deserialize(corrupted).ok())
        << "offset " << offset;
  }
}

TEST(SerializationFuzzTest, ShardedShardSeedTamperingRejected) {
  // Swapping two shard blobs (or re-seeding one) breaks the deterministic
  // per-shard seed schedule; Deserialize must notice, because routing
  // queries to a shard with foreign hash functions silently breaks the
  // one-sided guarantee.
  const auto filter = MakeLoadedShardedSbf(CounterBacking::kFixed64, 29);
  auto a = filter.SnapshotShard(0).Serialize();
  auto b = filter.SnapshotShard(1).Serialize();
  std::vector<uint8_t> swapped;
  const auto bytes = filter.Serialize();
  swapped.insert(swapped.end(), bytes.begin(), bytes.begin() + 32);
  for (const auto* blob : {&b, &a}) {  // shards 0 and 1 swapped
    uint64_t len = blob->size();
    for (int i = 0; i < 8; ++i) {
      swapped.push_back(static_cast<uint8_t>(len >> (8 * i)));
    }
    swapped.insert(swapped.end(), blob->begin(), blob->end());
  }
  for (uint32_t s = 2; s < filter.num_shards(); ++s) {
    const auto blob = filter.SnapshotShard(s).Serialize();
    uint64_t len = blob.size();
    for (int i = 0; i < 8; ++i) {
      swapped.push_back(static_cast<uint8_t>(len >> (8 * i)));
    }
    swapped.insert(swapped.end(), blob.begin(), blob.end());
  }
  EXPECT_FALSE(ConcurrentSbf::Deserialize(swapped).ok());
}

TEST(SerializationFuzzTest, ShardedSingleByteCorruptions) {
  for (const auto backing :
       {CounterBacking::kFixed64, CounterBacking::kCompact}) {
    const auto filter = MakeLoadedShardedSbf(backing, 31);
    const auto bytes = filter.Serialize();
    Xoshiro256 rng(33);
    size_t rejected = 0, accepted = 0;
    for (int trial = 0; trial < 300; ++trial) {
      auto corrupted = bytes;
      const size_t at = rng.UniformInt(corrupted.size());
      corrupted[at] ^= static_cast<uint8_t>(rng.UniformInt(255) + 1);
      const auto result = ConcurrentSbf::Deserialize(corrupted);
      // As with the flat format: either a clean Status or a well-formed
      // filter decoded from a corrupted-but-valid counter stream. Never a
      // crash or out-of-bounds access.
      if (result.ok()) {
        ++accepted;
        EXPECT_EQ(result.value().num_shards(), filter.num_shards());
      } else {
        ++rejected;
      }
    }
    EXPECT_GT(rejected, 0u);
    EXPECT_EQ(rejected + accepted, 300u);
  }
}

TEST(SerializationFuzzTest, ShardedRandomGarbageRejected) {
  Xoshiro256 rng(35);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> garbage(rng.UniformInt(400));
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.Next());
    EXPECT_FALSE(ConcurrentSbf::Deserialize(garbage).ok());
  }
}

TEST(SerializationFuzzTest, BloomFilterTruncationsNeverCrash) {
  BloomFilter filter(777, 3, 11);
  for (uint64_t key = 0; key < 200; ++key) filter.Add(key);
  const auto bytes = filter.Serialize();
  for (size_t len = 0; len < bytes.size(); len += 5) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + len);
    EXPECT_FALSE(BloomFilter::Deserialize(truncated).ok());
  }
}

TEST(SerializationFuzzTest, BloomFilterBitFlipsKeepShape) {
  BloomFilter filter(512, 4, 13);
  for (uint64_t key = 0; key < 100; ++key) filter.Add(key);
  const auto bytes = filter.Serialize();
  Xoshiro256 rng(15);
  for (int trial = 0; trial < 200; ++trial) {
    auto corrupted = bytes;
    corrupted[rng.UniformInt(corrupted.size())] ^= 0x40;
    const auto result = BloomFilter::Deserialize(corrupted);
    if (result.ok()) {
      EXPECT_EQ(result.value().m(), 512u);
    }
  }
}

}  // namespace
}  // namespace sbf
