// Robustness of the unified wire format (io/wire.h): deserialization of
// corrupted, truncated or random bytes must fail cleanly with a Status
// (never crash or read out of bounds), valid round-trips must be
// byte-stable and estimate-preserving, and structure-aware mutations —
// payload fields rewritten *with a recomputed CRC*, so the checksum is not
// what saves us — must be rejected by the structural validation paths.
//
// Every FrequencyFilter frontend, every CounterVector backing, the sliding
// window wrapper and the Bloomjoin partition frame are covered.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/blocked_sbf.h"
#include "core/bloom_filter.h"
#include "core/concurrent_sbf.h"
#include "core/counting_bloom_filter.h"
#include "core/recurring_minimum.h"
#include "core/sliding_window.h"
#include "core/spectral_bloom_filter.h"
#include "core/trapping_rm.h"
#include "db/bloomjoin.h"
#include "io/filter_codec.h"
#include "io/wire.h"
#include "sai/counter_vector.h"
#include "sai/fixed_counter_vector.h"
#include "util/fault_injection.h"
#include "util/random.h"
#include "workload/multiset_stream.h"

namespace sbf {
namespace {

constexpr uint64_t kProbeKeys = 10000;  // probe set for estimate equality

using Bytes = std::vector<uint8_t>;
using Decoder = std::function<bool(const Bytes&)>;
using Mutator = std::function<void(Bytes*)>;

// Unseals a valid frame, lets `mutate` rewrite the payload, and re-seals
// it with a recomputed CRC. The result has a pristine envelope, so any
// rejection comes from the structural checks, not the checksum.
Bytes Reframe(const Bytes& frame, const Mutator& mutate) {
  const auto info = wire::ProbeFrame(frame);
  EXPECT_TRUE(info.ok());
  Bytes payload(frame.begin() + wire::kFrameHeaderSize, frame.end());
  mutate(&payload);
  wire::Writer writer;
  writer.PutBytes(payload.data(), payload.size());
  return wire::SealFrame(wire::PeekMagic(frame), info.value().version,
                         std::move(writer));
}

// Every prefix of a frame must be rejected.
void ExpectTruncationsRejected(const Bytes& bytes, const Decoder& decode) {
  for (size_t len = 0; len < bytes.size(); len += 3) {
    Bytes truncated(bytes.begin(), bytes.begin() + len);
    EXPECT_FALSE(decode(truncated)) << "length " << len;
  }
}

// Any single-byte change anywhere in a frame must be rejected outright:
// header damage fails the envelope checks and payload damage fails the
// CRC, so — unlike the pre-CRC format — there is no "decoded into some
// other valid filter" outcome to tolerate.
void ExpectCorruptionsRejected(const Bytes& bytes, const Decoder& decode,
                               uint64_t seed) {
  Xoshiro256 rng(seed);
  for (int trial = 0; trial < 300; ++trial) {
    Bytes corrupted = bytes;
    const size_t at = rng.UniformInt(corrupted.size());
    corrupted[at] ^= static_cast<uint8_t>(rng.UniformInt(255) + 1);
    EXPECT_FALSE(decode(corrupted)) << "byte " << at;
  }
}

void ExpectGarbageRejected(const Decoder& decode, uint64_t seed) {
  Xoshiro256 rng(seed);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes garbage(rng.UniformInt(400));
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.Next());
    EXPECT_FALSE(decode(garbage)) << "trial " << trial;
  }
}

// Version 0 and any version above kFormatVersion must be rejected. The
// version word is bytes [4,8) of the header (not CRC-covered).
void ExpectVersionDriftRejected(const Bytes& bytes, const Decoder& decode) {
  for (const uint32_t version : {0u, wire::kFormatVersion + 1, 0x7F000000u}) {
    Bytes drifted = bytes;
    for (int b = 0; b < 4; ++b) {
      drifted[4 + b] = static_cast<uint8_t>(version >> (8 * b));
    }
    EXPECT_FALSE(decode(drifted)) << "version " << version;
  }
}

template <typename FilterA, typename FilterB>
void ExpectEqualEstimatesOnProbeSet(const FilterA& a, const FilterB& b) {
  for (uint64_t key = 0; key < kProbeKeys; ++key) {
    ASSERT_EQ(a.Estimate(key), b.Estimate(key)) << "key " << key;
  }
}

const std::vector<CounterBacking>& AllBackings() {
  static const std::vector<CounterBacking> backings = {
      CounterBacking::kFixed64, CounterBacking::kFixed32,
      CounterBacking::kCompact, CounterBacking::kSerialScan};
  return backings;
}

// --- counter backings ------------------------------------------------------

bool DecodeCounters(const Bytes& bytes) {
  return DeserializeCounterVector(bytes).ok();
}

std::unique_ptr<CounterVector> MakeLoadedCounters(CounterBacking backing,
                                                  uint64_t seed) {
  auto counters = MakeCounterVector(backing, 300);
  Xoshiro256 rng(seed);
  for (size_t i = 0; i < counters->size(); ++i) {
    if (rng.UniformDouble() < 0.6) counters->Set(i, rng.UniformInt(500));
  }
  return counters;
}

TEST(SerializationFuzzTest, CounterBackingRoundTripIsByteStable) {
  for (const auto backing : AllBackings()) {
    const auto counters = MakeLoadedCounters(backing, 41);
    const Bytes bytes = counters->Serialize();
    auto restored = DeserializeCounterVector(bytes);
    ASSERT_TRUE(restored.ok()) << CounterBackingName(backing);
    ASSERT_EQ(restored.value()->size(), counters->size());
    for (size_t i = 0; i < counters->size(); ++i) {
      ASSERT_EQ(restored.value()->Get(i), counters->Get(i))
          << CounterBackingName(backing) << " index " << i;
    }
    EXPECT_EQ(restored.value()->Total(), counters->Total());
    EXPECT_EQ(restored.value()->Serialize(), bytes)
        << CounterBackingName(backing);
  }
}

TEST(SerializationFuzzTest, CounterBackingTruncationsNeverCrash) {
  for (const auto backing : AllBackings()) {
    ExpectTruncationsRejected(MakeLoadedCounters(backing, 43)->Serialize(),
                              DecodeCounters);
  }
}

TEST(SerializationFuzzTest, CounterBackingCorruptionsAlwaysRejected) {
  for (const auto backing : AllBackings()) {
    ExpectCorruptionsRejected(MakeLoadedCounters(backing, 45)->Serialize(),
                              DecodeCounters, 46);
  }
}

TEST(SerializationFuzzTest, CounterBackingGarbageAndForeignFramesRejected) {
  ExpectGarbageRejected(DecodeCounters, 47);
  // A valid frame of a non-backing type must fail the magic dispatch.
  BloomFilter bloom(128, 3, 1);
  EXPECT_FALSE(DeserializeCounterVector(bloom.Serialize()).ok());
}

TEST(SerializationFuzzTest, CounterBackingVersionDriftRejected) {
  for (const auto backing : AllBackings()) {
    ExpectVersionDriftRejected(MakeLoadedCounters(backing, 49)->Serialize(),
                               DecodeCounters);
  }
}

TEST(SerializationFuzzTest, FixedCounterStructuralMutationsRejected) {
  // 'SBfx' payload: varint m (300: 2 bytes), varint width (64: 1 byte at
  // [2]), u8 sticky at [3], then the packed words.
  const Bytes bytes = MakeLoadedCounters(CounterBacking::kFixed64, 51)
                          ->Serialize();
  for (const uint8_t bad_width : {0, 65, 255}) {
    const Bytes mutated =
        Reframe(bytes, [bad_width](Bytes* p) { (*p)[2] = bad_width; });
    EXPECT_FALSE(DecodeCounters(mutated)) << "width " << int(bad_width);
  }
  // sticky flag must be 0 or 1.
  EXPECT_FALSE(DecodeCounters(Reframe(bytes, [](Bytes* p) { (*p)[3] = 2; })));
  // m = 0 via a non-canonical two-byte varint (0x80 0x00).
  EXPECT_FALSE(DecodeCounters(Reframe(bytes, [](Bytes* p) {
    (*p)[0] = 0x80;
    (*p)[1] = 0x00;
  })));
  // An absurd m claim must fail the size bound, not attempt an allocation.
  EXPECT_FALSE(DecodeCounters(Reframe(bytes, [](Bytes* p) {
    const Bytes huge_m = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F};
    p->erase(p->begin(), p->begin() + 2);
    p->insert(p->begin(), huge_m.begin(), huge_m.end());
  })));
}

TEST(SerializationFuzzTest, FixedCounterSetPaddingBitsRejected) {
  // m = 100 one-bit counters -> 2 words, 28 padding bits; the final
  // payload byte is the top of word 1, entirely padding.
  FixedWidthCounterVector bits(100, 1);
  for (size_t i = 0; i < 100; i += 3) bits.Set(i, 1);
  const Bytes bytes = bits.Serialize();
  ASSERT_TRUE(DecodeCounters(bytes));
  const Bytes mutated =
      Reframe(bytes, [](Bytes* p) { p->back() |= 0x80; });
  EXPECT_FALSE(DecodeCounters(mutated));
}

TEST(SerializationFuzzTest, CounterTotalMatchesManualSum) {
  // Total() goes through GetMany chunks; it must agree with a per-index
  // virtual-Get sum on every backing, including a non-multiple-of-chunk
  // size.
  for (const auto backing : AllBackings()) {
    const auto counters = MakeLoadedCounters(backing, 53);
    uint64_t manual = 0;
    for (size_t i = 0; i < counters->size(); ++i) manual += counters->Get(i);
    EXPECT_EQ(counters->Total(), manual) << CounterBackingName(backing);
  }
}

// --- flat SBF --------------------------------------------------------------

bool DecodeSbf(const Bytes& bytes) {
  return SpectralBloomFilter::Deserialize(bytes).ok();
}

SpectralBloomFilter MakeLoadedSbf(CounterBacking backing, uint64_t seed) {
  SbfOptions options;
  options.m = 500;
  options.k = 4;
  options.seed = seed;
  options.backing = backing;
  SpectralBloomFilter filter(options);
  const Multiset data = MakeZipfMultiset(150, 4000, 1.0, seed);
  for (uint64_t key : data.stream) filter.Insert(key);
  return filter;
}

TEST(SerializationFuzzTest, SbfRoundTripIsByteStableAcrossBackings) {
  for (const auto backing : AllBackings()) {
    const auto filter = MakeLoadedSbf(backing, 1);
    const Bytes bytes = filter.Serialize();
    auto restored = SpectralBloomFilter::Deserialize(bytes);
    ASSERT_TRUE(restored.ok()) << CounterBackingName(backing);
    EXPECT_EQ(restored.value().Serialize(), bytes)
        << CounterBackingName(backing);
    ExpectEqualEstimatesOnProbeSet(filter, restored.value());
  }
}

TEST(SerializationFuzzTest, SbfTruncationsNeverCrash) {
  ExpectTruncationsRejected(
      MakeLoadedSbf(CounterBacking::kCompact, 2).Serialize(), DecodeSbf);
}

TEST(SerializationFuzzTest, SbfSingleByteCorruptionsAlwaysRejected) {
  ExpectCorruptionsRejected(
      MakeLoadedSbf(CounterBacking::kFixed64, 3).Serialize(), DecodeSbf, 5);
}

TEST(SerializationFuzzTest, SbfRandomGarbageRejected) {
  ExpectGarbageRejected(DecodeSbf, 7);
}

TEST(SerializationFuzzTest, SbfVersionDriftRejected) {
  ExpectVersionDriftRejected(
      MakeLoadedSbf(CounterBacking::kCompact, 8).Serialize(), DecodeSbf);
}

TEST(SerializationFuzzTest, SbfStructuralHeaderMutationsRejected) {
  // 'SBsf' payload: varint m (500: 2 bytes), varint k at [2], u8 policy at
  // [3], u8 backing at [4], u8 hash kind at [5], u64 seed, varint total,
  // embedded counter frame. Each mutation below re-seals with a valid CRC,
  // so only the header validation can reject it.
  const Bytes bytes = MakeLoadedSbf(CounterBacking::kFixed64, 9).Serialize();
  const auto mutated_at = [&bytes](size_t index, uint8_t value) {
    return Reframe(bytes, [index, value](Bytes* p) { (*p)[index] = value; });
  };
  // m = 0 (non-canonical varint spelling keeps the field width).
  EXPECT_FALSE(DecodeSbf(Reframe(bytes, [](Bytes* p) {
    (*p)[0] = 0x80;
    (*p)[1] = 0x00;
  })));
  // m disagreeing with the embedded counter vector's size.
  EXPECT_FALSE(DecodeSbf(Reframe(bytes, [](Bytes* p) {
    (*p)[0] = 0xF5;  // 501 instead of 500
    (*p)[1] = 0x03;
  })));
  EXPECT_FALSE(DecodeSbf(mutated_at(2, 0)));     // k = 0
  EXPECT_FALSE(DecodeSbf(mutated_at(2, 65)));    // k > 64
  EXPECT_FALSE(DecodeSbf(mutated_at(3, 2)));     // unknown policy
  EXPECT_FALSE(DecodeSbf(mutated_at(4, 9)));     // unknown backing
  EXPECT_FALSE(DecodeSbf(mutated_at(5, 7)));     // unknown hash kind
  // Backing byte claiming kCompact over an embedded fixed64 frame: the
  // frame parses, but MatchesBacking must notice the lie (a wrong static
  // downcast in the batch kernels would otherwise be UB).
  EXPECT_FALSE(DecodeSbf(
      mutated_at(4, static_cast<uint8_t>(CounterBacking::kCompact))));
}

// --- sharded (ConcurrentSbf) -----------------------------------------------

bool DecodeSharded(const Bytes& bytes) {
  return ConcurrentSbf::Deserialize(bytes).ok();
}

ConcurrentSbf MakeLoadedShardedSbf(CounterBacking backing, uint64_t seed) {
  ConcurrentSbfOptions options;
  options.m = 2000;
  options.k = 4;
  options.num_shards = 4;
  options.seed = seed;
  options.backing = backing;
  ConcurrentSbf filter(options);
  const Multiset data = MakeZipfMultiset(150, 4000, 1.0, seed);
  filter.InsertBatch(data.stream);
  return filter;
}

TEST(SerializationFuzzTest, ShardedRoundTripIsByteStableAcrossBackings) {
  for (const auto backing : AllBackings()) {
    const auto filter = MakeLoadedShardedSbf(backing, 21);
    const Bytes bytes = filter.Serialize();
    auto restored = ConcurrentSbf::Deserialize(bytes);
    ASSERT_TRUE(restored.ok()) << CounterBackingName(backing);
    EXPECT_EQ(restored.value().Serialize(), bytes)
        << CounterBackingName(backing);
    EXPECT_EQ(restored.value().TotalItems(), filter.TotalItems());
    ExpectEqualEstimatesOnProbeSet(filter, restored.value());
  }
}

TEST(SerializationFuzzTest, ShardedTruncationsNeverCrash) {
  ExpectTruncationsRejected(
      MakeLoadedShardedSbf(CounterBacking::kFixed64, 23).Serialize(),
      DecodeSharded);
}

TEST(SerializationFuzzTest, ShardedShardCountMismatchRejected) {
  // 'SBcs' payload: varint num_shards at [0] (4 fits one byte), varint m,
  // u64 seed, embedded shard frames. Claiming fewer shards leaves trailing
  // frames; claiming more runs out of payload; zero is invalid outright.
  const Bytes bytes =
      MakeLoadedShardedSbf(CounterBacking::kCompact, 25).Serialize();
  for (const uint8_t claimed : {0, 1, 3, 5, 100}) {
    const Bytes mutated =
        Reframe(bytes, [claimed](Bytes* p) { (*p)[0] = claimed; });
    EXPECT_FALSE(DecodeSharded(mutated)) << "claimed " << int(claimed);
  }
}

TEST(SerializationFuzzTest, ShardedCorruptedShardFramesRejected) {
  // Smash bytes inside the first embedded shard frame; the outer CRC is
  // recomputed, so the rejection must come from the embedded frame's own
  // envelope (magic/CRC) validation.
  const Bytes bytes =
      MakeLoadedShardedSbf(CounterBacking::kFixed64, 27).Serialize();
  // Payload prefix: 1 (shard count) + 2 (m = 2000) + 8 (seed) bytes, then
  // the first shard's varint length prefix and its frame.
  for (const size_t offset : {11u, 13u, 16u, 40u}) {
    const Bytes mutated = Reframe(bytes, [offset](Bytes* p) {
      for (size_t i = 0; i < 8; ++i) (*p)[offset + i] ^= 0xFF;
    });
    EXPECT_FALSE(DecodeSharded(mutated)) << "offset " << offset;
  }
}

TEST(SerializationFuzzTest, ShardedShardSeedTamperingRejected) {
  // Swapping two shard frames breaks the deterministic per-shard seed
  // schedule. The forged message has a pristine envelope and valid
  // embedded frames, so only the seed-schedule validation can catch it —
  // and it must, because routing queries to a shard with foreign hash
  // functions silently breaks the one-sided guarantee.
  const auto filter = MakeLoadedShardedSbf(CounterBacking::kFixed64, 29);
  wire::Writer payload;
  payload.PutVarint(filter.num_shards());
  payload.PutVarint(2000);
  payload.PutU64(29);
  for (const uint32_t s : {1u, 0u, 2u, 3u}) {  // shards 0 and 1 swapped
    payload.PutFrame(filter.SnapshotShard(s).Serialize());
  }
  const Bytes swapped = wire::SealFrame(
      wire::kMagicShardedSbf, wire::kFormatVersion, std::move(payload));
  EXPECT_FALSE(DecodeSharded(swapped));
}

TEST(SerializationFuzzTest, ShardedSingleByteCorruptionsAlwaysRejected) {
  for (const auto backing :
       {CounterBacking::kFixed64, CounterBacking::kCompact}) {
    ExpectCorruptionsRejected(MakeLoadedShardedSbf(backing, 31).Serialize(),
                              DecodeSharded, 33);
  }
}

TEST(SerializationFuzzTest, ShardedRandomGarbageRejected) {
  ExpectGarbageRejected(DecodeSharded, 35);
}

// --- plain Bloom filter ----------------------------------------------------

bool DecodeBloom(const Bytes& bytes) {
  return BloomFilter::Deserialize(bytes).ok();
}

TEST(SerializationFuzzTest, BloomFilterRoundTripPreservesMembership) {
  BloomFilter filter(777, 3, 11);
  for (uint64_t key = 0; key < 200; ++key) filter.Add(key);
  const Bytes bytes = filter.Serialize();
  auto restored = BloomFilter::Deserialize(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().Serialize(), bytes);
  for (uint64_t key = 0; key < kProbeKeys; ++key) {
    ASSERT_EQ(filter.Contains(key), restored.value().Contains(key));
  }
}

TEST(SerializationFuzzTest, BloomFilterTruncationsNeverCrash) {
  BloomFilter filter(777, 3, 11);
  for (uint64_t key = 0; key < 200; ++key) filter.Add(key);
  ExpectTruncationsRejected(filter.Serialize(), DecodeBloom);
}

TEST(SerializationFuzzTest, BloomFilterBitFlipsAlwaysRejected) {
  BloomFilter filter(512, 4, 13);
  for (uint64_t key = 0; key < 100; ++key) filter.Add(key);
  ExpectCorruptionsRejected(filter.Serialize(), DecodeBloom, 15);
}

// --- counting Bloom filter -------------------------------------------------

bool DecodeCbf(const Bytes& bytes) {
  return CountingBloomFilter::Deserialize(bytes).ok();
}

CountingBloomFilter MakeLoadedCbf(uint64_t seed) {
  CountingBloomFilter filter(512, 4, 4, seed);
  const Multiset data = MakeZipfMultiset(100, 3000, 1.2, seed);
  for (uint64_t key : data.stream) filter.Insert(key);
  return filter;
}

TEST(SerializationFuzzTest, CountingBloomRoundTripPreservesSaturation) {
  const auto filter = MakeLoadedCbf(61);
  const Bytes bytes = filter.Serialize();
  auto restored = CountingBloomFilter::Deserialize(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().Serialize(), bytes);
  EXPECT_EQ(restored.value().SaturatedCount(), filter.SaturatedCount());
  ExpectEqualEstimatesOnProbeSet(filter, restored.value());
}

TEST(SerializationFuzzTest, CountingBloomCorruptionAndTruncationRejected) {
  const Bytes bytes = MakeLoadedCbf(63).Serialize();
  ExpectTruncationsRejected(bytes, DecodeCbf);
  ExpectCorruptionsRejected(bytes, DecodeCbf, 65);
  ExpectGarbageRejected(DecodeCbf, 67);
  ExpectVersionDriftRejected(bytes, DecodeCbf);
}

TEST(SerializationFuzzTest, CountingBloomStructuralMutationsRejected) {
  // 'SBcb' payload: varint m (512: 2 bytes), varint k at [2], u8 kind at
  // [3], u64 seed at [4,12), varint counter width at [12], embedded fixed
  // counter frame.
  const Bytes bytes = MakeLoadedCbf(69).Serialize();
  for (const uint8_t bad_width : {0, 65}) {
    EXPECT_FALSE(DecodeCbf(Reframe(
        bytes, [bad_width](Bytes* p) { (*p)[12] = bad_width; })))
        << "width " << int(bad_width);
  }
  // Width byte disagreeing with the embedded counter frame's own width.
  EXPECT_FALSE(DecodeCbf(Reframe(bytes, [](Bytes* p) { (*p)[12] = 5; })));
  EXPECT_FALSE(DecodeCbf(Reframe(bytes, [](Bytes* p) { (*p)[2] = 0; })));
}

// --- blocked SBF -----------------------------------------------------------

bool DecodeBlocked(const Bytes& bytes) {
  return BlockedSbf::Deserialize(bytes).ok();
}

BlockedSbf MakeLoadedBlockedSbf(CounterBacking backing, uint64_t seed) {
  BlockedSbfOptions options;
  options.m = 4096;
  options.block_size = 256;
  options.k = 4;
  options.backing = backing;
  options.seed = seed;
  BlockedSbf filter(options);
  const Multiset data = MakeZipfMultiset(150, 4000, 1.0, seed);
  for (uint64_t key : data.stream) filter.Insert(key);
  return filter;
}

TEST(SerializationFuzzTest, BlockedSbfRoundTripIsByteStable) {
  for (const auto backing :
       {CounterBacking::kFixed64, CounterBacking::kCompact}) {
    const auto filter = MakeLoadedBlockedSbf(backing, 71);
    const Bytes bytes = filter.Serialize();
    auto restored = BlockedSbf::Deserialize(bytes);
    ASSERT_TRUE(restored.ok()) << CounterBackingName(backing);
    EXPECT_EQ(restored.value().Serialize(), bytes);
    ExpectEqualEstimatesOnProbeSet(filter, restored.value());
  }
}

TEST(SerializationFuzzTest, BlockedSbfCorruptionAndTruncationRejected) {
  const Bytes bytes =
      MakeLoadedBlockedSbf(CounterBacking::kFixed64, 73).Serialize();
  ExpectTruncationsRejected(bytes, DecodeBlocked);
  ExpectCorruptionsRejected(bytes, DecodeBlocked, 75);
  ExpectGarbageRejected(DecodeBlocked, 77);
}

TEST(SerializationFuzzTest, BlockedSbfStructuralMutationsRejected) {
  // 'SBbk' payload: varint m (4096: 2 bytes), varint block_size (256: 2
  // bytes at [2,4)), varint k at [4], u8 backing at [5], u8 kind at [6].
  const Bytes bytes =
      MakeLoadedBlockedSbf(CounterBacking::kFixed64, 79).Serialize();
  // block_size = 0 (non-canonical two-byte varint).
  EXPECT_FALSE(DecodeBlocked(Reframe(bytes, [](Bytes* p) {
    (*p)[2] = 0x80;
    (*p)[3] = 0x00;
  })));
  // block_size = 255, which does not divide m = 4096.
  EXPECT_FALSE(DecodeBlocked(Reframe(bytes, [](Bytes* p) {
    (*p)[2] = 0xFF;
    (*p)[3] = 0x01;
  })));
  EXPECT_FALSE(DecodeBlocked(Reframe(bytes, [](Bytes* p) { (*p)[4] = 0; })));
}

// --- recurring minimum -----------------------------------------------------

bool DecodeRm(const Bytes& bytes) {
  return RecurringMinimumSbf::Deserialize(bytes).ok();
}

RecurringMinimumSbf MakeLoadedRm(bool use_marker, uint64_t seed) {
  RecurringMinimumOptions options;
  options.primary_m = 600;
  options.secondary_m = 150;
  options.k = 4;
  options.seed = seed;
  options.use_marker_filter = use_marker;
  RecurringMinimumSbf filter(options);
  const Multiset data = MakeZipfMultiset(150, 4000, 1.0, seed);
  for (uint64_t key : data.stream) filter.Insert(key);
  return filter;
}

TEST(SerializationFuzzTest, RecurringMinimumRoundTripWithAndWithoutMarker) {
  for (const bool use_marker : {false, true}) {
    const auto filter = MakeLoadedRm(use_marker, 81);
    const Bytes bytes = filter.Serialize();
    auto restored = RecurringMinimumSbf::Deserialize(bytes);
    ASSERT_TRUE(restored.ok()) << "marker " << use_marker;
    EXPECT_EQ(restored.value().Serialize(), bytes);
    EXPECT_EQ(restored.value().moved_to_secondary(),
              filter.moved_to_secondary());
    EXPECT_EQ(restored.value().marker().has_value(), use_marker);
    ExpectEqualEstimatesOnProbeSet(filter, restored.value());
  }
}

TEST(SerializationFuzzTest, RecurringMinimumCorruptionAndTruncationRejected) {
  const Bytes bytes = MakeLoadedRm(true, 83).Serialize();
  ExpectTruncationsRejected(bytes, DecodeRm);
  ExpectCorruptionsRejected(bytes, DecodeRm, 85);
  ExpectGarbageRejected(DecodeRm, 87);
}

TEST(SerializationFuzzTest, RecurringMinimumMarkerFlagMutationsRejected) {
  // 'SBrm' payload: varint primary_m (600: 2 bytes), varint secondary_m
  // (150: 2 bytes), varint k at [4], u8 backing at [5], u8 kind at [6],
  // u8 use_marker at [7]. Flipping the flag strands the marker frame (or
  // claims one that is not there); both directions must be rejected.
  const Bytes with_marker = MakeLoadedRm(true, 89).Serialize();
  const Bytes without_marker = MakeLoadedRm(false, 89).Serialize();
  EXPECT_FALSE(
      DecodeRm(Reframe(with_marker, [](Bytes* p) { (*p)[7] = 0; })));
  EXPECT_FALSE(
      DecodeRm(Reframe(without_marker, [](Bytes* p) { (*p)[7] = 1; })));
  EXPECT_FALSE(
      DecodeRm(Reframe(with_marker, [](Bytes* p) { (*p)[7] = 2; })));
}

TEST(SerializationFuzzTest, RecurringMinimumSeedScheduleTamperingRejected) {
  // A forged message whose secondary frame is actually a copy of the
  // primary (wrong m, wrong derived seed) with a pristine envelope: only
  // the embedded-options consistency check can reject it.
  RecurringMinimumOptions options;
  options.primary_m = 600;
  options.secondary_m = 150;
  options.k = 4;
  options.seed = 91;
  const RecurringMinimumSbf filter(options);
  wire::Writer payload;
  payload.PutVarint(options.primary_m);
  payload.PutVarint(options.secondary_m);
  payload.PutVarint(options.k);
  payload.PutU8(static_cast<uint8_t>(options.backing));
  payload.PutU8(0);  // hash kind
  payload.PutU8(0);  // no marker
  payload.PutU64(options.seed);
  payload.PutVarint(0);  // moved count
  payload.PutFrame(filter.primary().Serialize());
  payload.PutFrame(filter.primary().Serialize());  // wrong: not secondary
  const Bytes forged = wire::SealFrame(
      wire::kMagicRecurringMinimum, wire::kFormatVersion, std::move(payload));
  EXPECT_FALSE(DecodeRm(forged));
}

// --- trapping RM -----------------------------------------------------------

bool DecodeTrm(const Bytes& bytes) {
  return TrappingRmSbf::Deserialize(bytes).ok();
}

TrappingRmSbf MakeLoadedTrm(uint64_t seed) {
  RecurringMinimumOptions options;
  options.primary_m = 600;
  options.secondary_m = 150;
  options.k = 4;
  options.seed = seed;
  TrappingRmSbf filter(options);
  const Multiset data = MakeZipfMultiset(150, 4000, 1.0, seed);
  for (uint64_t key : data.stream) filter.Insert(key);
  return filter;
}

TEST(SerializationFuzzTest, TrappingRmRoundTripPreservesTrapState) {
  const auto filter = MakeLoadedTrm(93);
  ASSERT_GT(filter.traps_armed(), 0u);  // the workload must arm traps
  const Bytes bytes = filter.Serialize();
  auto restored = TrappingRmSbf::Deserialize(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().Serialize(), bytes);
  EXPECT_EQ(restored.value().traps_armed(), filter.traps_armed());
  EXPECT_EQ(restored.value().traps_fired(), filter.traps_fired());
  ExpectEqualEstimatesOnProbeSet(filter, restored.value());
}

TEST(SerializationFuzzTest, TrappingRmCorruptionAndTruncationRejected) {
  const Bytes bytes = MakeLoadedTrm(95).Serialize();
  ExpectTruncationsRejected(bytes, DecodeTrm);
  ExpectCorruptionsRejected(bytes, DecodeTrm, 97);
  ExpectGarbageRejected(DecodeTrm, 99);
}

TEST(SerializationFuzzTest, TrappingRmOwnerTableMutationsRejected) {
  // An *empty* TRM serializes zeroed trap words followed by a one-byte
  // owner count of 0 at the payload's very end. Claiming an owner entry
  // that is not there, or arming a trap bit with no owner, must both be
  // rejected — they desynchronize the trap bitmap from the lookup table.
  RecurringMinimumOptions options;
  options.primary_m = 128;
  options.secondary_m = 64;
  options.k = 3;
  options.seed = 101;
  const TrappingRmSbf empty(options);
  const Bytes bytes = empty.Serialize();
  ASSERT_TRUE(DecodeTrm(bytes));
  // Owner count 1 with no entry bytes: truncated.
  EXPECT_FALSE(DecodeTrm(Reframe(bytes, [](Bytes* p) { p->back() = 1; })));
  // Set trap bit with owner count 0: bitmap/table popcount mismatch. The
  // trap words are the 16 bytes before the final count byte.
  EXPECT_FALSE(DecodeTrm(Reframe(bytes, [](Bytes* p) {
    (*p)[p->size() - 2] |= 0x01;
  })));
}

// --- sliding window --------------------------------------------------------

bool DecodeWindow(const Bytes& bytes) {
  return SlidingWindowFilter::Deserialize(bytes).ok();
}

SlidingWindowFilter MakeLoadedWindow(uint64_t seed) {
  SbfOptions options;
  options.m = 400;
  options.k = 4;
  options.seed = seed;
  SlidingWindowFilter window(
      std::make_unique<SpectralBloomFilter>(options), 64);
  Xoshiro256 rng(seed);
  for (int i = 0; i < 500; ++i) window.Push(rng.UniformInt(100));
  return window;
}

TEST(SerializationFuzzTest, SlidingWindowRoundTripPreservesWindowState) {
  auto window = MakeLoadedWindow(103);
  const Bytes bytes = window.Serialize();
  auto restored = SlidingWindowFilter::Deserialize(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().Serialize(), bytes);
  EXPECT_EQ(restored.value().window_size(), window.window_size());
  EXPECT_EQ(restored.value().current_fill(), window.current_fill());
  ExpectEqualEstimatesOnProbeSet(window, restored.value());
  // The restored window must keep *evicting* identically: pushes drive the
  // same deletions because the in-window keys were restored verbatim.
  Xoshiro256 rng(104);
  for (int i = 0; i < 200; ++i) {
    const uint64_t key = rng.UniformInt(100);
    window.Push(key);
    restored.value().Push(key);
  }
  ExpectEqualEstimatesOnProbeSet(window, restored.value());
}

TEST(SerializationFuzzTest, SlidingWindowCorruptionAndTruncationRejected) {
  const Bytes bytes = MakeLoadedWindow(105).Serialize();
  ExpectTruncationsRejected(bytes, DecodeWindow);
  ExpectCorruptionsRejected(bytes, DecodeWindow, 107);
  ExpectGarbageRejected(DecodeWindow, 109);
}

TEST(SerializationFuzzTest, SlidingWindowFillMutationsRejected) {
  // 'SBsw' payload: varint window size (64: 1 byte), varint fill at [1]
  // (64 after 500 pushes). Fill beyond the window size is inconsistent;
  // fill beyond the payload is an unbounded-allocation attempt.
  const Bytes bytes = MakeLoadedWindow(111).Serialize();
  EXPECT_FALSE(DecodeWindow(Reframe(bytes, [](Bytes* p) { (*p)[1] = 65; })));
  EXPECT_FALSE(DecodeWindow(Reframe(bytes, [](Bytes* p) { (*p)[0] = 0; })));
}

// --- Bloomjoin partition ---------------------------------------------------

bool DecodePartition(const Bytes& bytes) {
  return ReceivePartition(bytes).ok();
}

Relation MakeOrdersRelation(uint64_t seed) {
  Relation orders("orders");
  Xoshiro256 rng(seed);
  for (uint64_t i = 0; i < 2000; ++i) {
    orders.Add(rng.UniformInt(300), i);
  }
  return orders;
}

TEST(SerializationFuzzTest, JoinPartitionRoundTripIsByteStable) {
  const Relation orders = MakeOrdersRelation(113);
  const Bytes bytes = ShipPartition(orders, 1000, 4, 113);
  auto received = ReceivePartition(bytes);
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(received.value().relation, "orders");
  EXPECT_EQ(received.value().tuples, orders.size());
  EXPECT_EQ(SerializePartition(received.value()), bytes);
  // The received filter answers like one built locally from the relation.
  const auto freqs = orders.FrequencyMap();
  for (const auto& [value, count] : freqs) {
    ASSERT_GE(received.value().filter.Estimate(value), count);
  }
}

TEST(SerializationFuzzTest, JoinPartitionCorruptionAndTruncationRejected) {
  const Bytes bytes = ShipPartition(MakeOrdersRelation(115), 1000, 4, 115);
  ExpectTruncationsRejected(bytes, DecodePartition);
  ExpectCorruptionsRejected(bytes, DecodePartition, 117);
  ExpectGarbageRejected(DecodePartition, 119);
  ExpectVersionDriftRejected(bytes, DecodePartition);
}

TEST(SerializationFuzzTest, JoinPartitionNameLengthMutationRejected) {
  // 'SBjp' payload: varint name length at [0] ("orders": 6), the name
  // bytes, varint tuple count, embedded SBF frame. Continuing the varint
  // into the name bytes yields a length far beyond the payload, which must
  // be rejected before any allocation.
  const Bytes bytes = ShipPartition(MakeOrdersRelation(121), 200, 4, 121);
  EXPECT_FALSE(
      DecodePartition(Reframe(bytes, [](Bytes* p) { (*p)[0] = 0xFF; })));
}

// --- polymorphic filter codec ----------------------------------------------

TEST(SerializationFuzzTest, DeserializeFilterDispatchesEveryFrontend) {
  const std::vector<std::pair<std::string, Bytes>> frames = {
      {"SBF", MakeLoadedSbf(CounterBacking::kCompact, 131).Serialize()},
      {"sharded",
       MakeLoadedShardedSbf(CounterBacking::kFixed64, 133).Serialize()},
      {"CBF", MakeLoadedCbf(135).Serialize()},
      {"blocked",
       MakeLoadedBlockedSbf(CounterBacking::kCompact, 137).Serialize()},
      {"RM", MakeLoadedRm(true, 139).Serialize()},
      {"TRM", MakeLoadedTrm(141).Serialize()},
  };
  for (const auto& [label, bytes] : frames) {
    auto restored = DeserializeFilter(bytes);
    ASSERT_TRUE(restored.ok()) << label;
    EXPECT_EQ(restored.value()->Serialize(), bytes) << label;
  }
  // Valid frames of non-filter types must fail the dispatch cleanly.
  EXPECT_FALSE(DeserializeFilter(
                   MakeLoadedCounters(CounterBacking::kCompact, 143)
                       ->Serialize())
                   .ok());
  BloomFilter bloom(128, 3, 1);
  EXPECT_FALSE(DeserializeFilter(bloom.Serialize()).ok());
}

// --- fault-armed wire sweep ------------------------------------------------

// With SBF_FAULT_INJECTION compiled in, re-run the frontend sweep with the
// injector corrupting frames *inside* Serialize (including the embedded
// frames, before the outer envelope is sealed). Deterministic seeds, every
// frontend, both fault kinds: nothing decodes, nothing crashes.
TEST(SerializationFuzzTest, FaultArmedFramesNeverDecode) {
#ifndef SBF_FAULT_INJECTION
  GTEST_SKIP() << "built without SBF_FAULT_INJECTION";
#else
  fault::Reset();
  const std::vector<std::unique_ptr<FrequencyFilter>> filters = [] {
    std::vector<std::unique_ptr<FrequencyFilter>> out;
    out.push_back(std::make_unique<SpectralBloomFilter>(
        MakeLoadedSbf(CounterBacking::kCompact, 151)));
    out.push_back(std::make_unique<ConcurrentSbf>(
        MakeLoadedShardedSbf(CounterBacking::kFixed64, 153)));
    out.push_back(std::make_unique<CountingBloomFilter>(MakeLoadedCbf(155)));
    out.push_back(std::make_unique<BlockedSbf>(
        MakeLoadedBlockedSbf(CounterBacking::kCompact, 157)));
    out.push_back(std::make_unique<RecurringMinimumSbf>(
        MakeLoadedRm(true, 159)));
    out.push_back(std::make_unique<TrappingRmSbf>(MakeLoadedTrm(161)));
    return out;
  }();
  for (const auto& filter : filters) {
    for (const auto kind :
         {fault::WireFault::kTruncate, fault::WireFault::kBitFlip,
          fault::WireFault::kTornTail}) {
      for (uint64_t seed = 0; seed < 32; ++seed) {
        fault::ArmWireFault(kind, seed);
        const Bytes bytes = filter->Serialize();
        EXPECT_FALSE(DeserializeFilter(bytes).ok())
            << filter->Name() << " kind " << static_cast<int>(kind)
            << " seed " << seed;
      }
    }
    // Serialization faults never touch the source filter: disarmed, the
    // same object still emits a decodable frame.
    fault::Reset();
    EXPECT_TRUE(DeserializeFilter(filter->Serialize()).ok())
        << filter->Name();
  }
#endif
}

}  // namespace
}  // namespace sbf
