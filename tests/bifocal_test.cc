#include <gtest/gtest.h>

#include "db/bifocal.h"
#include "util/random.h"
#include "workload/multiset_stream.h"

namespace sbf {
namespace {

// R and S share a Zipfian value domain so the join has meaningful size.
void FillRelations(Relation* r, Relation* s, uint64_t seed) {
  const Multiset r_data = MakeZipfMultiset(300, 12000, 1.0, seed);
  const Multiset s_data = MakeZipfMultiset(300, 15000, 0.8, seed + 1);
  for (uint64_t key : r_data.stream) r->Add(key);
  for (uint64_t key : s_data.stream) s->Add(key);
}

TEST(BifocalTest, ExactOracleEstimateIsClose) {
  Relation r("R"), s("S");
  FillRelations(&r, &s, 3);
  const auto result = BifocalEstimateExactIndex(r, s, 2000, 5);
  EXPECT_GT(result.exact, 0u);
  // Sampling estimator: within 35% of truth at this sample size.
  EXPECT_NEAR(result.estimate, static_cast<double>(result.exact),
              0.35 * static_cast<double>(result.exact));
}

TEST(BifocalTest, SbfOracleCloseToExactOracle) {
  Relation r("R"), s("S");
  FillRelations(&r, &s, 7);
  const auto exact_oracle = BifocalEstimateExactIndex(r, s, 2000, 9);
  const auto sbf_oracle = BifocalEstimateWithSbf(r, s, 2000, 4000, 5, 9);
  // Same sample (same seed): the only difference is SBF lookup error,
  // which is one-sided and small -> estimate >= exact-oracle estimate but
  // within (1 + gamma)-ish of it.
  EXPECT_GE(sbf_oracle.estimate, exact_oracle.estimate * 0.999);
  EXPECT_LE(sbf_oracle.estimate, exact_oracle.estimate * 1.5);
}

TEST(BifocalTest, DenseValuesAreFew) {
  Relation r("R"), s("S");
  FillRelations(&r, &s, 11);
  const auto result = BifocalEstimateExactIndex(r, s, 500, 13);
  // Dense = multiplicity >= |R|/sample = 24: only the head of the Zipf.
  EXPECT_LT(result.dense_values, 150u);
  EXPECT_GT(result.dense_values, 0u);
}

TEST(BifocalTest, ComponentsSumToEstimate) {
  Relation r("R"), s("S");
  FillRelations(&r, &s, 17);
  const auto result = BifocalEstimateExactIndex(r, s, 1000, 19);
  EXPECT_DOUBLE_EQ(result.estimate,
                   result.dense_component + result.sparse_component);
}

TEST(BifocalTest, DisjointRelationsEstimateNearZero) {
  Relation r("R"), s("S");
  for (uint64_t key = 1; key <= 1000; ++key) r.Add(key);
  for (uint64_t key = 100001; key <= 101000; ++key) s.Add(key);
  const auto result = BifocalEstimateWithSbf(r, s, 500, 8000, 5, 21);
  EXPECT_EQ(result.exact, 0u);
  // SBF false positives can contribute a sliver, no more.
  EXPECT_LT(result.estimate, 100.0);
}

TEST(BifocalTest, OneToManyJoin) {
  // R unique keys, S references them many times: classic foreign-key join.
  Relation r("R"), s("S");
  for (uint64_t key = 1; key <= 500; ++key) r.Add(key);
  Xoshiro256 rng(23);
  for (int i = 0; i < 20000; ++i) s.Add(rng.UniformInt(500) + 1);
  const auto result = BifocalEstimateExactIndex(r, s, 400, 25);
  EXPECT_NEAR(result.estimate, static_cast<double>(result.exact),
              0.35 * static_cast<double>(result.exact));
}

}  // namespace
}  // namespace sbf
