#include <gtest/gtest.h>

#include <cmath>

#include "core/estimators.h"
#include "workload/multiset_stream.h"

namespace sbf {
namespace {

SpectralBloomFilter MakeLoadedFilter(uint64_t m, uint32_t k, uint64_t seed,
                                     const Multiset& data) {
  SbfOptions options;
  options.m = m;
  options.k = k;
  options.seed = seed;
  options.backing = CounterBacking::kFixed64;
  SpectralBloomFilter filter(options);
  for (uint64_t key : data.stream) filter.Insert(key);
  return filter;
}

TEST(UnbiasedEstimatorTest, MeanErrorNearZeroAcrossKeys) {
  // The estimator is unbiased: averaged over many keys, the signed error
  // should be near zero even on a heavily loaded filter where the Minimum
  // Selection estimate is systematically high.
  const Multiset data = MakeZipfMultiset(2000, 60000, 0.5, 3);
  const auto filter = MakeLoadedFilter(4000, 5, 7, data);

  double signed_error_sum = 0.0;
  double ms_error_sum = 0.0;
  for (size_t i = 0; i < data.keys.size(); ++i) {
    signed_error_sum += UnbiasedEstimate(filter, data.keys[i]) -
                        static_cast<double>(data.freqs[i]);
    ms_error_sum += static_cast<double>(filter.Estimate(data.keys[i])) -
                    static_cast<double>(data.freqs[i]);
  }
  const double n = static_cast<double>(data.keys.size());
  EXPECT_LT(std::abs(signed_error_sum / n), 2.5);
  EXPECT_GT(ms_error_sum / n, signed_error_sum / n);
}

TEST(UnbiasedEstimatorTest, ExactFilterStaysNearTruth) {
  const Multiset data = MakeZipfMultiset(50, 500, 0.5, 5);
  const auto filter = MakeLoadedFilter(50000, 5, 9, data);
  for (size_t i = 0; i < data.keys.size(); ++i) {
    EXPECT_NEAR(UnbiasedEstimate(filter, data.keys[i]),
                static_cast<double>(data.freqs[i]), 1.0);
  }
}

TEST(UnbiasedEstimatorTest, CanProduceFalseNegatives) {
  // The paper's criticism: items without Bloom error get an unneeded
  // correction, dipping below their true count.
  const Multiset data = MakeZipfMultiset(1000, 50000, 1.0, 7);
  const auto filter = MakeLoadedFilter(2000, 5, 11, data);
  size_t below_truth = 0;
  for (size_t i = 0; i < data.keys.size(); ++i) {
    if (UnbiasedEstimate(filter, data.keys[i]) <
        static_cast<double>(data.freqs[i])) {
      ++below_truth;
    }
  }
  EXPECT_GT(below_truth, 0u);
}

TEST(ClampedUnbiasedTest, StaysWithinCertainBounds) {
  const Multiset data = MakeZipfMultiset(800, 30000, 0.8, 9);
  const auto filter = MakeLoadedFilter(1500, 5, 13, data);
  for (size_t i = 0; i < data.keys.size(); i += 7) {
    const double clamped = ClampedUnbiasedEstimate(filter, data.keys[i]);
    EXPECT_GE(clamped, 0.0);
    EXPECT_LE(clamped, static_cast<double>(filter.Estimate(data.keys[i])));
  }
}

TEST(BoostedEstimatorTest, SingleGroupEqualsUnbiased) {
  const Multiset data = MakeZipfMultiset(300, 9000, 0.5, 15);
  const auto filter = MakeLoadedFilter(1000, 6, 17, data);
  for (uint64_t key = 1; key <= 50; ++key) {
    EXPECT_DOUBLE_EQ(BoostedUnbiasedEstimate(filter, key, 1),
                     UnbiasedEstimate(filter, key));
  }
}

TEST(BoostedEstimatorTest, MedianOfGroupsIsFinite) {
  const Multiset data = MakeZipfMultiset(300, 9000, 0.5, 19);
  const auto filter = MakeLoadedFilter(1000, 6, 21, data);
  for (uint32_t groups : {2u, 3u, 6u, 10u}) {
    const double estimate = BoostedUnbiasedEstimate(filter, 5, groups);
    EXPECT_TRUE(std::isfinite(estimate));
  }
}

TEST(HybridEstimatorTest, RecurringMinimumKeysUseMinimum) {
  SbfOptions options;
  options.m = 10000;
  options.k = 5;
  options.backing = CounterBacking::kFixed64;
  SpectralBloomFilter filter(options);
  filter.Insert(42, 17);  // alone: recurring minimum, exact min
  EXPECT_DOUBLE_EQ(HybridRmUnbiasedEstimate(filter, 42), 17.0);
}

TEST(HybridEstimatorTest, NoWorseRmsThanPureUnbiased) {
  const Multiset data = MakeZipfMultiset(1000, 40000, 0.6, 23);
  const auto filter = MakeLoadedFilter(2500, 5, 25, data);
  double hybrid_sq = 0.0, unbiased_sq = 0.0;
  for (size_t i = 0; i < data.keys.size(); ++i) {
    const double truth = static_cast<double>(data.freqs[i]);
    const double h = HybridRmUnbiasedEstimate(filter, data.keys[i]) - truth;
    const double u = UnbiasedEstimate(filter, data.keys[i]) - truth;
    hybrid_sq += h * h;
    unbiased_sq += u * u;
  }
  EXPECT_LE(hybrid_sq, unbiased_sq);
}

}  // namespace
}  // namespace sbf
