#include <gtest/gtest.h>

#include <cmath>

#include "core/bloom_filter.h"
#include "util/random.h"

namespace sbf {
namespace {

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter filter(10000, 5, 1);
  for (uint64_t key = 0; key < 1000; ++key) filter.Add(key);
  for (uint64_t key = 0; key < 1000; ++key) {
    ASSERT_TRUE(filter.Contains(key)) << key;
  }
}

TEST(BloomFilterTest, EmptyFilterContainsNothing) {
  BloomFilter filter(1000, 5);
  for (uint64_t key = 0; key < 100; ++key) EXPECT_FALSE(filter.Contains(key));
}

TEST(BloomFilterTest, FalsePositiveRateNearTheory) {
  // m = 8n, optimal k -> ~2% FP rate (the paper's c = 8 example).
  constexpr uint64_t kN = 5000;
  constexpr uint64_t kM = 8 * kN;
  const uint32_t k = BloomFilter::OptimalK(kM, kN);
  BloomFilter filter(kM, k, 7);
  for (uint64_t key = 0; key < kN; ++key) filter.Add(key);

  size_t false_positives = 0;
  constexpr size_t kProbes = 50000;
  for (uint64_t key = kN; key < kN + kProbes; ++key) {
    false_positives += filter.Contains(key);
  }
  const double observed =
      static_cast<double>(false_positives) / static_cast<double>(kProbes);
  const double expected = filter.ExpectedFpRate();
  EXPECT_NEAR(observed, expected, expected);  // within 2x of theory
  EXPECT_LT(observed, 0.05);
}

TEST(BloomFilterTest, OptimalKFormula) {
  // k = ln 2 * m/n; for m/n = 8 -> 5.5 -> 6 (rounds).
  EXPECT_EQ(BloomFilter::OptimalK(8000, 1000), 6u);
  EXPECT_EQ(BloomFilter::OptimalK(1000, 1000), 1u);
  EXPECT_EQ(BloomFilter::OptimalK(1000, 0), 1u);
  EXPECT_EQ(BloomFilter::OptimalK(10000, 693), 10u);
}

TEST(BloomFilterTest, WithBitsPerKeyBuildsReasonableFilter) {
  BloomFilter filter = BloomFilter::WithBitsPerKey(1000, 10.0);
  EXPECT_EQ(filter.m(), 10000u);
  EXPECT_EQ(filter.k(), 7u);  // ln2*10 = 6.93
}

TEST(BloomFilterTest, FillRatioNearHalfAtOptimal) {
  constexpr uint64_t kN = 2000;
  BloomFilter filter = BloomFilter::WithBitsPerKey(kN, 9.6);
  for (uint64_t key = 0; key < kN; ++key) filter.Add(key);
  EXPECT_NEAR(filter.FillRatio(), 0.5, 0.05);
}

TEST(BloomFilterTest, TheoreticalFpRateMatchesPaperExample) {
  // Optimal configuration: error = (0.6185)^{m/n}.
  const double rate = BloomFilter::TheoreticalFpRate(8000, 6, 1000);
  EXPECT_NEAR(rate, std::pow(0.6185, 8.0), 0.01);
}

TEST(BloomFilterTest, UnionRepresentsSetUnion) {
  BloomFilter a(4000, 4, 3), b(4000, 4, 3);
  for (uint64_t key = 0; key < 100; ++key) a.Add(key);
  for (uint64_t key = 100; key < 200; ++key) b.Add(key);
  ASSERT_TRUE(a.UnionWith(b).ok());
  for (uint64_t key = 0; key < 200; ++key) EXPECT_TRUE(a.Contains(key));
  EXPECT_EQ(a.num_added(), 200u);
}

TEST(BloomFilterTest, UnionRejectsIncompatibleFilters) {
  BloomFilter a(4000, 4, 3);
  BloomFilter b(4000, 4, 4);  // different seed
  EXPECT_FALSE(a.UnionWith(b).ok());
  BloomFilter c(4001, 4, 3);  // different m
  EXPECT_FALSE(a.UnionWith(c).ok());
}

TEST(BloomFilterTest, SerializeRoundTrip) {
  BloomFilter filter(1234, 3, 99, HashFamily::Kind::kDoubleMix);
  for (uint64_t key = 0; key < 500; key += 3) filter.Add(key);
  const auto bytes = filter.Serialize();

  auto restored = BloomFilter::Deserialize(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().m(), 1234u);
  EXPECT_EQ(restored.value().k(), 3u);
  EXPECT_EQ(restored.value().num_added(), filter.num_added());
  for (uint64_t key = 0; key < 600; ++key) {
    ASSERT_EQ(restored.value().Contains(key), filter.Contains(key)) << key;
  }
}

TEST(BloomFilterTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(BloomFilter::Deserialize({}).ok());
  EXPECT_FALSE(BloomFilter::Deserialize(std::vector<uint8_t>(48, 0)).ok());
  auto bytes = BloomFilter(64, 2).Serialize();
  bytes.pop_back();
  EXPECT_FALSE(BloomFilter::Deserialize(bytes).ok());
}

TEST(BloomFilterTest, StringKeys) {
  BloomFilter filter(1000, 4);
  filter.AddBytes("alpha");
  filter.AddBytes("beta");
  EXPECT_TRUE(filter.ContainsBytes("alpha"));
  EXPECT_TRUE(filter.ContainsBytes("beta"));
  EXPECT_FALSE(filter.ContainsBytes("gamma"));
}

TEST(BloomFilterTest, MembershipEquivalentToSbfThresholdOne) {
  // The paper's Claim 1 corollary: an SBF queried with threshold 1 gives
  // identical functionality to a Bloom filter (checked in sbf_test too;
  // here we just confirm the Bloom filter's one-sidedness at scale).
  Xoshiro256 rng(5);
  BloomFilter filter(20000, 5, 11);
  std::vector<uint64_t> members;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t key = rng.Next();
    members.push_back(key);
    filter.Add(key);
  }
  for (uint64_t key : members) ASSERT_TRUE(filter.Contains(key));
}

}  // namespace
}  // namespace sbf
