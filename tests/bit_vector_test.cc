#include <gtest/gtest.h>

#include <vector>

#include "bitstream/bit_vector.h"
#include "bitstream/bit_writer.h"
#include "util/random.h"

namespace sbf {
namespace {

TEST(BitVectorTest, StartsZeroed) {
  BitVector v(200);
  EXPECT_EQ(v.size_bits(), 200u);
  for (size_t i = 0; i < 200; ++i) EXPECT_FALSE(v.GetBit(i));
  EXPECT_EQ(v.PopCount(), 0u);
}

TEST(BitVectorTest, SetAndGetSingleBits) {
  BitVector v(130);
  v.SetBit(0, true);
  v.SetBit(63, true);
  v.SetBit(64, true);
  v.SetBit(129, true);
  EXPECT_TRUE(v.GetBit(0));
  EXPECT_TRUE(v.GetBit(63));
  EXPECT_TRUE(v.GetBit(64));
  EXPECT_TRUE(v.GetBit(129));
  EXPECT_FALSE(v.GetBit(1));
  EXPECT_EQ(v.PopCount(), 4u);
  v.SetBit(63, false);
  EXPECT_FALSE(v.GetBit(63));
  EXPECT_EQ(v.PopCount(), 3u);
}

TEST(BitVectorTest, FieldRoundTripWithinWord) {
  BitVector v(256);
  v.SetBits(10, 16, 0xBEEF);
  EXPECT_EQ(v.GetBits(10, 16), 0xBEEFull);
  EXPECT_EQ(v.GetBits(0, 10), 0ull);
  EXPECT_EQ(v.GetBits(26, 16), 0ull);
}

TEST(BitVectorTest, FieldRoundTripAcrossWordBoundary) {
  BitVector v(256);
  v.SetBits(60, 20, 0xABCDE);
  EXPECT_EQ(v.GetBits(60, 20), 0xABCDEull);
  v.SetBits(120, 64, 0x0123456789ABCDEFull);
  EXPECT_EQ(v.GetBits(120, 64), 0x0123456789ABCDEFull);
}

TEST(BitVectorTest, ZeroWidthFieldIsNoop) {
  BitVector v(64);
  v.SetBits(10, 0, 0);
  EXPECT_EQ(v.GetBits(10, 0), 0ull);
  EXPECT_EQ(v.PopCount(), 0u);
}

TEST(BitVectorTest, SetBitsDoesNotDisturbNeighbors) {
  BitVector v(192);
  for (size_t i = 0; i < 192; ++i) v.SetBit(i, true);
  v.SetBits(70, 12, 0);
  for (size_t i = 0; i < 192; ++i) {
    EXPECT_EQ(v.GetBit(i), i < 70 || i >= 82) << i;
  }
}

// Property sweep: random field writes at random positions/widths match a
// reference byte-wise model.
class BitVectorFieldTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BitVectorFieldTest, RandomFieldsMatchReferenceModel) {
  const uint32_t width = GetParam();
  constexpr size_t kBits = 4096;
  BitVector v(kBits);
  std::vector<bool> model(kBits, false);
  Xoshiro256 rng(width * 977 + 1);

  for (int iter = 0; iter < 500; ++iter) {
    const size_t pos = rng.UniformInt(kBits - width);
    const uint64_t value = rng.Next() & LowMask(width);
    v.SetBits(pos, width, value);
    for (uint32_t b = 0; b < width; ++b) {
      model[pos + b] = (value >> b) & 1;
    }
  }
  for (size_t i = 0; i < kBits; ++i) {
    ASSERT_EQ(v.GetBit(i), model[i]) << "bit " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitVectorFieldTest,
                         ::testing::Values(1, 2, 3, 7, 8, 13, 31, 32, 33, 48,
                                           63, 64));

TEST(BitVectorTest, ShiftRangeRightSmall) {
  BitVector v(64);
  v.SetBits(0, 8, 0b10110101);
  v.ShiftRangeRight(0, 8, 3);
  EXPECT_EQ(v.GetBits(3, 8), 0b10110101ull);
}

TEST(BitVectorTest, ShiftRangeRightOverlapping) {
  BitVector v(512);
  Xoshiro256 rng(3);
  std::vector<bool> model(512, false);
  for (size_t i = 0; i < 300; ++i) {
    const bool bit = rng.Next() & 1;
    v.SetBit(i, bit);
    model[i] = bit;
  }
  // Shift [10, 300) right by 100: overlap of 190 bits.
  v.ShiftRangeRight(10, 300, 100);
  for (size_t i = 10; i < 300; ++i) {
    ASSERT_EQ(v.GetBit(i + 100), model[i]) << i;
  }
}

TEST(BitVectorTest, ShiftRangeLeftOverlapping) {
  BitVector v(512);
  Xoshiro256 rng(5);
  std::vector<bool> model(512, false);
  for (size_t i = 100; i < 400; ++i) {
    const bool bit = rng.Next() & 1;
    v.SetBit(i, bit);
    model[i] = bit;
  }
  v.ShiftRangeLeft(100, 400, 37);
  for (size_t i = 100; i < 400; ++i) {
    ASSERT_EQ(v.GetBit(i - 37), model[i]) << i;
  }
}

TEST(BitVectorTest, ShiftByZeroOrEmptyRangeIsNoop) {
  BitVector v(64);
  v.SetBits(0, 16, 0xFFFF);
  v.ShiftRangeRight(0, 16, 0);
  v.ShiftRangeRight(8, 8, 4);  // empty range [8,8)
  EXPECT_EQ(v.GetBits(0, 16), 0xFFFFull);
}

TEST(BitVectorTest, CopyFromOtherVector) {
  BitVector src(256), dst(256);
  Xoshiro256 rng(9);
  for (size_t i = 0; i < 256; ++i) src.SetBit(i, rng.Next() & 1);
  dst.CopyFrom(src, 13, 77, 150);
  for (size_t i = 0; i < 150; ++i) {
    ASSERT_EQ(dst.GetBit(77 + i), src.GetBit(13 + i)) << i;
  }
}

TEST(BitVectorTest, ResizeGrowsWithZeros) {
  BitVector v(10);
  v.SetBit(9, true);
  v.Resize(100);
  EXPECT_TRUE(v.GetBit(9));
  for (size_t i = 10; i < 100; ++i) EXPECT_FALSE(v.GetBit(i));
}

TEST(BitVectorTest, ResizeShrinkClearsTail) {
  BitVector v(100);
  for (size_t i = 0; i < 100; ++i) v.SetBit(i, true);
  v.Resize(37);
  EXPECT_EQ(v.PopCount(), 37u);
  v.Resize(100);
  for (size_t i = 37; i < 100; ++i) EXPECT_FALSE(v.GetBit(i)) << i;
}

TEST(BitVectorTest, EqualityComparesContentAndSize) {
  BitVector a(65), b(65);
  EXPECT_EQ(a, b);
  b.SetBit(64, true);
  EXPECT_FALSE(a == b);
}

TEST(BitVectorTest, ClearZeroesEverything) {
  BitVector v(130);
  for (size_t i = 0; i < 130; i += 3) v.SetBit(i, true);
  v.Clear();
  EXPECT_EQ(v.PopCount(), 0u);
  EXPECT_EQ(v.size_bits(), 130u);
}

// --- BitWriter / BitReader ---------------------------------------------------

TEST(BitWriterTest, AppendsAndFinishes) {
  BitVector out;
  BitWriter writer(&out);
  writer.WriteBit(true);
  writer.WriteBits(0b1011, 4);
  writer.WriteZeros(3);
  writer.WriteBit(true);
  writer.Finish();
  EXPECT_EQ(out.size_bits(), 9u);
  BitReader reader(&out);
  EXPECT_TRUE(reader.ReadBit());
  EXPECT_EQ(reader.ReadBits(4), 0b1011ull);
  EXPECT_EQ(reader.ReadBits(3), 0ull);
  EXPECT_TRUE(reader.ReadBit());
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BitWriterTest, PositionedOverwrite) {
  BitVector out(64);
  out.SetBits(0, 64, ~0ull);
  BitWriter writer(&out, 8);
  writer.WriteBits(0, 16);
  writer.WriteZeros(8);
  EXPECT_EQ(out.GetBits(0, 8), 0xFFull);
  EXPECT_EQ(out.GetBits(8, 24), 0ull);
  EXPECT_EQ(out.GetBits(32, 32), 0xFFFFFFFFull);
}

TEST(BitWriterTest, GrowsOnDemand) {
  BitVector out;
  BitWriter writer(&out);
  for (int i = 0; i < 1000; ++i) writer.WriteBits(i & 0xFF, 8);
  writer.Finish();
  EXPECT_EQ(out.size_bits(), 8000u);
  BitReader reader(&out);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(reader.ReadBits(8), static_cast<uint64_t>(i & 0xFF));
  }
}

}  // namespace
}  // namespace sbf
