#include <gtest/gtest.h>

#include <unordered_map>

#include "db/aggregate_index.h"
#include "util/random.h"

namespace sbf {
namespace {

SbfOptions MakeOptions(uint64_t m, uint32_t k, uint64_t seed) {
  SbfOptions options;
  options.m = m;
  options.k = k;
  options.seed = seed;
  options.backing = CounterBacking::kFixed64;
  return options;
}

TEST(AggregateIndexTest, CountSumAvgExactUnderLightLoad) {
  AggregateIndex index(MakeOptions(50000, 5, 1));
  // Value 10: rows with weights 5, 7, 9.
  index.Insert(10, 5);
  index.Insert(10, 7);
  index.Insert(10, 9);
  EXPECT_EQ(index.Count(10), 3u);
  EXPECT_EQ(index.Sum(10), 21u);
  EXPECT_DOUBLE_EQ(index.Avg(10), 7.0);
  EXPECT_EQ(index.Count(11), 0u);
  EXPECT_DOUBLE_EQ(index.Avg(11), 0.0);
}

TEST(AggregateIndexTest, EstimatesAreUpperBounds) {
  AggregateIndex index(MakeOptions(3000, 5, 3));
  Xoshiro256 rng(5);
  std::unordered_map<uint64_t, uint64_t> counts, sums;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t key = rng.UniformInt(400);
    const uint64_t weight = rng.UniformInt(10) + 1;
    index.Insert(key, weight);
    ++counts[key];
    sums[key] += weight;
  }
  for (const auto& [key, count] : counts) {
    ASSERT_GE(index.Count(key), count);
    ASSERT_GE(index.Sum(key), sums[key]);
  }
}

TEST(AggregateIndexTest, DeletesReverseInserts) {
  AggregateIndex index(MakeOptions(20000, 5, 7));
  index.Insert(5, 100);
  index.Insert(5, 50);
  index.Remove(5, 100);
  EXPECT_EQ(index.Count(5), 1u);
  EXPECT_EQ(index.Sum(5), 50u);
}

TEST(AggregateIndexTest, ZeroWeightRowsCountButDontSum) {
  AggregateIndex index(MakeOptions(10000, 5, 9));
  index.Insert(3, 0);
  index.Insert(3, 0);
  EXPECT_EQ(index.Count(3), 2u);
  EXPECT_EQ(index.Sum(3), 0u);
  EXPECT_DOUBLE_EQ(index.Avg(3), 0.0);
}

TEST(AggregateIndexTest, ErrorRatioSmallAtModerateLoad) {
  AggregateIndex index(MakeOptions(8000, 5, 11));  // gamma = 0.25
  Xoshiro256 rng(13);
  std::unordered_map<uint64_t, uint64_t> counts;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t key = rng.UniformInt(400);
    index.Insert(key, 1);
    ++counts[key];
  }
  size_t errors = 0;
  for (const auto& [key, count] : counts) {
    errors += (index.Count(key) != count);
  }
  EXPECT_LT(static_cast<double>(errors) / counts.size(), 0.02);
}

}  // namespace
}  // namespace sbf
