// Deterministic fault-injection suite (util/fault_injection.h): with
// SBF_FAULT_INJECTION compiled in, every induced failure — failed
// allocations during expansion, corrupted or truncated wire frames handed
// out of Serialize, soft bit-flips in the counter array — must surface as
// a clean Status (never an abort or sanitizer report) and leave the filter
// queryable. Without the flag every test skips; the hooks are no-ops.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/bloom_filter.h"
#include "core/concurrent_sbf.h"
#include "core/recurring_minimum.h"
#include "core/spectral_bloom_filter.h"
#include "io/filter_codec.h"
#include "util/fault_injection.h"
#include "util/status.h"

namespace sbf {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
#ifndef SBF_FAULT_INJECTION
    GTEST_SKIP() << "built without SBF_FAULT_INJECTION";
#endif
    fault::Reset();
  }
  void TearDown() override { fault::Reset(); }
};

SpectralBloomFilter MakeLoadedSbf(CounterBacking backing, SbfPolicy policy) {
  SbfOptions options;
  options.m = 256;
  options.k = 4;
  options.seed = 5;
  options.backing = backing;
  options.policy = policy;
  SpectralBloomFilter filter(options);
  for (uint64_t key = 0; key < 300; ++key) filter.Insert(key, 1 + key % 3);
  return filter;
}

// --- allocation faults -----------------------------------------------------

TEST_F(FaultInjectionTest, SbfExpansionAllocationFailureIsClean) {
  SpectralBloomFilter filter =
      MakeLoadedSbf(CounterBacking::kCompact, SbfPolicy::kMinimumSelection);
  std::vector<uint64_t> pre(500);
  for (uint64_t key = 0; key < 500; ++key) pre[key] = filter.Estimate(key);

  fault::ArmAllocationFailure(1);
  const Status status = filter.ExpandTo(1024);
  EXPECT_EQ(status.code(), Status::Code::kResourceExhausted);
  EXPECT_EQ(fault::InjectedAllocationFailures(), 1u);

  // Untouched and fully usable.
  EXPECT_EQ(filter.m(), 256u);
  for (uint64_t key = 0; key < 500; ++key) {
    EXPECT_EQ(filter.Estimate(key), pre[key]);
  }
  fault::Reset();
  EXPECT_TRUE(filter.ExpandTo(1024).ok());
  for (uint64_t key = 0; key < 500; ++key) {
    EXPECT_EQ(filter.Estimate(key), pre[key]);
  }
}

TEST_F(FaultInjectionTest, BloomExpansionAllocationFailureIsClean) {
  BloomFilter filter(128, 3);
  for (uint64_t key = 0; key < 40; ++key) filter.Add(key);
  fault::ArmAllocationFailure(1);
  EXPECT_EQ(filter.ExpandTo(512).code(), Status::Code::kResourceExhausted);
  EXPECT_EQ(filter.m(), 128u);
  for (uint64_t key = 0; key < 40; ++key) EXPECT_TRUE(filter.Contains(key));
}

TEST_F(FaultInjectionTest, ConcurrentExpansionFailsBeforeAnyShardMigrates) {
  ConcurrentSbfOptions options;
  options.m = 1024;
  options.k = 4;
  options.num_shards = 8;
  ConcurrentSbf filter(options);
  for (uint64_t key = 0; key < 400; ++key) filter.Insert(key);

  // Fail the 5th per-shard allocation: shards 0-3 already allocated, yet
  // the filter must come back fully unexpanded (allocate-all-first).
  fault::ArmAllocationFailure(5);
  EXPECT_EQ(filter.ExpandTo(4096).code(), Status::Code::kResourceExhausted);
  EXPECT_EQ(filter.options().m, 1024u);
  EXPECT_EQ(filter.shard_m(), 128u);
  for (size_t s = 0; s < 8; ++s) {
    EXPECT_EQ(filter.shard(s).m(), 128u) << "shard " << s;
  }
  for (uint64_t key = 0; key < 400; ++key) {
    EXPECT_GE(filter.Estimate(key), 1u);
  }
  fault::Reset();
  EXPECT_TRUE(filter.ExpandTo(4096).ok());
}

TEST_F(FaultInjectionTest, RmExpansionAllocationFailureIsTransactional) {
  RecurringMinimumOptions options;
  options.primary_m = 200;
  options.secondary_m = 50;
  options.k = 3;
  options.use_marker_filter = true;
  // The expansion touches three allocation sites (primary, secondary,
  // marker); failing each in turn must leave the whole filter untouched
  // and self-consistent on the wire.
  for (uint64_t site = 1; site <= 3; ++site) {
    RecurringMinimumSbf filter(options);
    for (uint64_t key = 0; key < 150; ++key) filter.Insert(key);
    fault::ArmAllocationFailure(site);
    EXPECT_EQ(filter.ExpandTo(400, 100).code(),
              Status::Code::kResourceExhausted)
        << "site " << site;
    fault::Reset();
    auto loaded = RecurringMinimumSbf::Deserialize(filter.Serialize());
    ASSERT_TRUE(loaded.ok()) << "site " << site;
    for (uint64_t key = 0; key < 150; ++key) {
      EXPECT_EQ(loaded.value().Estimate(key), filter.Estimate(key));
    }
  }
}

// --- wire faults -----------------------------------------------------------

TEST_F(FaultInjectionTest, TruncatedFramesAlwaysRejected) {
  SpectralBloomFilter filter =
      MakeLoadedSbf(CounterBacking::kCompact, SbfPolicy::kMinimumSelection);
  for (uint64_t seed = 0; seed < 64; ++seed) {
    fault::ArmWireFault(fault::WireFault::kTruncate, seed);
    const std::vector<uint8_t> bytes = filter.Serialize();
    auto decoded = DeserializeFilter(bytes);
    EXPECT_FALSE(decoded.ok()) << "seed " << seed;
  }
  // Serialize seals nested frames (the embedded counter vector), so each
  // pass injects at least one fault.
  EXPECT_GE(fault::InjectedWireFaults(), 64u);
  // The source filter itself is unharmed by serialization faults.
  fault::Reset();
  auto decoded = DeserializeFilter(filter.Serialize());
  ASSERT_TRUE(decoded.ok());
}

TEST_F(FaultInjectionTest, BitFlippedFramesAlwaysRejected) {
  // Sweep frontends: a single flipped bit anywhere in the sealed frame —
  // header or payload — must be caught by the envelope checks or the CRC.
  std::vector<std::unique_ptr<FrequencyFilter>> filters;
  filters.push_back(std::make_unique<SpectralBloomFilter>(MakeLoadedSbf(
      CounterBacking::kFixed64, SbfPolicy::kMinimalIncrease)));
  {
    ConcurrentSbfOptions options;
    options.m = 512;
    options.num_shards = 4;
    auto concurrent = std::make_unique<ConcurrentSbf>(options);
    for (uint64_t key = 0; key < 200; ++key) concurrent->Insert(key);
    filters.push_back(std::move(concurrent));
  }
  {
    RecurringMinimumOptions options;
    options.primary_m = 160;
    options.secondary_m = 40;
    auto rm = std::make_unique<RecurringMinimumSbf>(options);
    for (uint64_t key = 0; key < 100; ++key) rm->Insert(key);
    filters.push_back(std::move(rm));
  }
  for (const auto& filter : filters) {
    for (uint64_t seed = 0; seed < 48; ++seed) {
      fault::ArmWireFault(fault::WireFault::kBitFlip, seed);
      const std::vector<uint8_t> bytes = filter->Serialize();
      auto decoded = DeserializeFilter(bytes);
      EXPECT_FALSE(decoded.ok())
          << filter->Name() << " seed " << seed;
    }
  }
}

TEST_F(FaultInjectionTest, WireFaultsReplayDeterministically) {
  SpectralBloomFilter filter =
      MakeLoadedSbf(CounterBacking::kSerialScan, SbfPolicy::kMinimumSelection);
  fault::ArmWireFault(fault::WireFault::kBitFlip, 1234);
  const std::vector<uint8_t> first = filter.Serialize();
  fault::ArmWireFault(fault::WireFault::kBitFlip, 1234);
  const std::vector<uint8_t> second = filter.Serialize();
  EXPECT_EQ(first, second);

  fault::ArmWireFault(fault::WireFault::kTruncate, 77);
  const std::vector<uint8_t> third = filter.Serialize();
  fault::ArmWireFault(fault::WireFault::kTruncate, 77);
  const std::vector<uint8_t> fourth = filter.Serialize();
  EXPECT_EQ(third, fourth);
  EXPECT_NE(first.size(), third.size());
}

// --- counter faults --------------------------------------------------------

TEST_F(FaultInjectionTest, CounterFlipsKeepFilterQueryable) {
  for (CounterBacking backing :
       {CounterBacking::kFixed64, CounterBacking::kCompact}) {
    for (SbfPolicy policy :
         {SbfPolicy::kMinimumSelection, SbfPolicy::kMinimalIncrease}) {
      fault::Reset();
      fault::ArmCounterFlips(/*seed=*/99, /*every_n=*/7);
      SbfOptions options;
      options.m = 512;
      options.k = 4;
      options.backing = backing;
      options.policy = policy;
      SpectralBloomFilter filter(options);
      for (uint64_t key = 0; key < 800; ++key) filter.Insert(key % 300);
      EXPECT_GT(fault::InjectedCounterFlips(), 0u);

      // Soft errors corrupt estimates (that is the point) but must never
      // corrupt the structure: every query answers, and the filter still
      // serializes into a decodable frame once the fault is disarmed.
      fault::Reset();
      for (uint64_t key = 0; key < 600; ++key) {
        (void)filter.Estimate(key);
      }
      auto loaded = SpectralBloomFilter::Deserialize(filter.Serialize());
      ASSERT_TRUE(loaded.ok())
          << CounterBackingName(backing) << " "
          << (policy == SbfPolicy::kMinimumSelection ? "MS" : "MI");
      for (uint64_t key = 0; key < 300; ++key) {
        EXPECT_EQ(loaded.value().Estimate(key), filter.Estimate(key));
      }
    }
  }
}

TEST_F(FaultInjectionTest, CounterFlipSchedulesReplayDeterministically) {
  auto run = [] {
    fault::ArmCounterFlips(/*seed=*/4321, /*every_n=*/5);
    SpectralBloomFilter filter(256, 4);
    for (uint64_t key = 0; key < 500; ++key) filter.Insert(key);
    std::vector<uint64_t> estimates(600);
    for (uint64_t key = 0; key < 600; ++key) {
      estimates[key] = filter.Estimate(key);
    }
    return estimates;
  };
  const std::vector<uint64_t> first = run();
  const std::vector<uint64_t> second = run();
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace sbf
