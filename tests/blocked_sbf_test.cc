#include <gtest/gtest.h>

#include <algorithm>

#include "core/blocked_sbf.h"
#include "core/spectral_bloom_filter.h"
#include "util/metrics.h"
#include "workload/multiset_stream.h"

namespace sbf {
namespace {

BlockedSbfOptions MakeOptions(uint64_t m, uint64_t block_size, uint32_t k,
                              uint64_t seed = 1) {
  BlockedSbfOptions options;
  options.m = m;
  options.block_size = block_size;
  options.k = k;
  options.seed = seed;
  options.backing = CounterBacking::kFixed64;
  return options;
}

TEST(BlockedSbfTest, EstimateIsUpperBound) {
  BlockedSbf filter(MakeOptions(4096, 256, 5, 3));
  const Multiset data = MakeZipfMultiset(400, 10000, 0.8, 5);
  for (uint64_t key : data.stream) filter.Insert(key);
  for (size_t i = 0; i < data.keys.size(); ++i) {
    ASSERT_GE(filter.Estimate(data.keys[i]), data.freqs[i]) << i;
  }
}

TEST(BlockedSbfTest, ExactUnderLightLoad) {
  BlockedSbf filter(MakeOptions(1 << 17, 1 << 10, 5, 7));
  for (uint64_t key = 1; key <= 50; ++key) filter.Insert(key, key);
  for (uint64_t key = 1; key <= 50; ++key) {
    ASSERT_EQ(filter.Estimate(key), key);
  }
}

TEST(BlockedSbfTest, DeletionsAreExactInverses) {
  BlockedSbf filter(MakeOptions(4096, 512, 4, 9));
  const Multiset data = MakeZipfMultiset(200, 4000, 0.5, 11);
  for (uint64_t key : data.stream) filter.Insert(key);
  for (uint64_t key : data.stream) filter.Remove(key);
  for (uint64_t key : data.keys) {
    EXPECT_EQ(filter.Estimate(key), 0u) << key;
  }
}

TEST(BlockedSbfTest, AllProbesStayWithinOneBlock) {
  // The locality property the structure exists for: inserting a key
  // changes counters in exactly one block.
  constexpr uint64_t kBlock = 128;
  BlockedSbf filter(MakeOptions(4096, kBlock, 5, 13));
  for (uint64_t key = 0; key < 500; ++key) {
    BlockedSbf probe(MakeOptions(4096, kBlock, 5, 13));
    probe.Insert(key, 3);
    const uint64_t expected_block = probe.BlockOf(key);
    for (uint64_t b = 0; b < probe.num_blocks(); ++b) {
      if (b == expected_block) {
        ASSERT_GT(probe.BlockLoad(b), 0u) << key;
      } else {
        ASSERT_EQ(probe.BlockLoad(b), 0u) << key << " block " << b;
      }
    }
    if (key >= 20) break;  // 20 keys suffice; the loop body is O(m)
  }
}

TEST(BlockedSbfTest, BlockLoadsRoughlyBalanced) {
  BlockedSbf filter(MakeOptions(8192, 512, 5, 17));
  const Multiset data = MakeUniformMultiset(1000, 20000, 19);
  for (uint64_t key : data.stream) filter.Insert(key);
  const uint64_t total = 20000 * 5;
  const double expected = static_cast<double>(total) / filter.num_blocks();
  for (uint64_t b = 0; b < filter.num_blocks(); ++b) {
    EXPECT_NEAR(filter.BlockLoad(b), expected, expected * 0.5) << b;
  }
}

TEST(BlockedSbfTest, RejectsIndivisibleBlockSize) {
  EXPECT_DEATH(BlockedSbf(MakeOptions(1000, 300, 5)), "multiple");
}

class BlockSizeAccuracyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BlockSizeAccuracyTest, AccuracyDegradesGracefully) {
  // [MW94]'s claim, inherited by Section 2.2: for large enough blocks the
  // segmentation penalty is negligible. We assert the blocked filter's
  // error ratio stays within a modest factor of the unsegmented SBF.
  const uint64_t block_size = GetParam();
  constexpr uint64_t kM = 8192;
  constexpr uint32_t kK = 5;

  ErrorStats blocked_stats, flat_stats;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const Multiset data = MakeZipfMultiset(1000, 30000, 0.5, seed * 101);
    BlockedSbf blocked(MakeOptions(kM, block_size, kK, seed));
    SbfOptions flat_options;
    flat_options.m = kM;
    flat_options.k = kK;
    flat_options.seed = seed;
    flat_options.backing = CounterBacking::kFixed64;
    SpectralBloomFilter flat(flat_options);
    for (uint64_t key : data.stream) {
      blocked.Insert(key);
      flat.Insert(key);
    }
    for (size_t i = 0; i < data.keys.size(); ++i) {
      blocked_stats.Record(blocked.Estimate(data.keys[i]), data.freqs[i]);
      flat_stats.Record(flat.Estimate(data.keys[i]), data.freqs[i]);
    }
  }
  EXPECT_EQ(blocked_stats.num_false_negatives(), 0u);
  EXPECT_LE(blocked_stats.ErrorRatio(),
            std::max(0.02, 4.0 * flat_stats.ErrorRatio()))
      << "block size " << block_size;
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, BlockSizeAccuracyTest,
                         ::testing::Values(256, 512, 1024, 2048, 4096));

}  // namespace
}  // namespace sbf
