#include <gtest/gtest.h>

#include "db/bloomjoin.h"
#include "db/relation.h"
#include "util/random.h"
#include "workload/multiset_stream.h"

namespace sbf {
namespace {

// Builds the one-to-many join scenario of Section 5.3: R holds unique
// customer ids (the "one" side), S holds orders referencing a subset of
// them with repetition plus ids unknown to R.
struct JoinScenario {
  Relation r{"R"};
  Relation s{"S"};
};

JoinScenario MakeScenario(uint64_t r_keys, uint64_t s_tuples,
                          double match_fraction, uint64_t seed) {
  JoinScenario scenario;
  for (uint64_t key = 1; key <= r_keys; ++key) scenario.r.Add(key, key);
  Xoshiro256 rng(seed);
  for (uint64_t i = 0; i < s_tuples; ++i) {
    if (rng.UniformDouble() < match_fraction) {
      scenario.s.Add(rng.UniformInt(r_keys) + 1, i);
    } else {
      scenario.s.Add(r_keys + 1 + rng.UniformInt(r_keys * 10), i);
    }
  }
  return scenario;
}

TEST(RelationTest, FrequencyMapAndJoinSize) {
  Relation r("R"), s("S");
  r.Add(1);
  r.Add(1);
  r.Add(2);
  s.Add(1);
  s.Add(2);
  s.Add(2);
  s.Add(3);
  EXPECT_EQ(r.FrequencyMap().at(1), 2u);
  EXPECT_EQ(r.ExactJoinSize(s), 2 * 1 + 1 * 2u);
  EXPECT_EQ(r.DistinctValues().size(), 2u);
  EXPECT_EQ(s.ShipAllBytes(), 4 * sizeof(Tuple));
}

TEST(BloomjoinTest, ShipAllIsExact) {
  const auto scenario = MakeScenario(200, 2000, 0.3, 1);
  const auto result = ShipAllJoin(scenario.r, scenario.s);
  EXPECT_EQ(result.result_tuples, result.exact_tuples);
  EXPECT_EQ(result.false_groups, 0u);
  EXPECT_EQ(result.missed_groups, 0u);
  EXPECT_EQ(result.network.rounds, 1u);
}

TEST(BloomjoinTest, ClassicBloomjoinExactWithFewerBytes) {
  const auto scenario = MakeScenario(500, 10000, 0.2, 3);
  const auto ship_all = ShipAllJoin(scenario.r, scenario.s);
  const auto bloomjoin =
      ClassicBloomjoin(scenario.r, scenario.s, 8 * 500, 5, 7);

  EXPECT_EQ(bloomjoin.result_tuples, bloomjoin.exact_tuples);
  EXPECT_EQ(bloomjoin.false_groups, 0u);
  EXPECT_EQ(bloomjoin.missed_groups, 0u);
  EXPECT_EQ(bloomjoin.network.rounds, 2u);
  // 80% of S doesn't match: the filter should save a lot of traffic.
  EXPECT_LT(bloomjoin.network.bytes_sent, ship_all.network.bytes_sent / 2);
}

TEST(BloomjoinTest, SpectralBloomjoinOneRoundNoMissedGroups) {
  const auto scenario = MakeScenario(300, 5000, 0.5, 5);
  const auto result = SpectralBloomjoin(scenario.r, scenario.s, 3000, 5, 0, 9);
  EXPECT_EQ(result.network.rounds, 1u);
  // One-sided SBF errors: every true group reported, counts upper-bounded.
  EXPECT_EQ(result.missed_groups, 0u);
  EXPECT_GE(result.result_tuples, result.exact_tuples);
}

TEST(BloomjoinTest, SpectralBloomjoinWithHavingThreshold) {
  const auto scenario = MakeScenario(300, 8000, 0.6, 7);
  const auto result =
      SpectralBloomjoin(scenario.r, scenario.s, 4000, 5, 10, 11);
  // HAVING count >= 10: still no false negatives.
  EXPECT_EQ(result.missed_groups, 0u);
}

TEST(BloomjoinTest, SpectralUsesLessTrafficThanClassicOnAggregates) {
  // For the GROUP BY query the classic scheme must ship matched tuples
  // back; the spectral scheme ships one SBF. With a large S the SBF wins.
  const auto scenario = MakeScenario(500, 40000, 0.8, 13);
  const auto classic =
      ClassicBloomjoin(scenario.r, scenario.s, 8 * 500, 5, 15);
  const auto spectral =
      SpectralBloomjoin(scenario.r, scenario.s, 4000, 5, 0, 15);
  EXPECT_LT(spectral.network.bytes_sent, classic.network.bytes_sent);
  EXPECT_LT(spectral.network.rounds, classic.network.rounds);
}

TEST(BloomjoinTest, VerifiedSpectralBloomjoinIsExact) {
  const auto scenario = MakeScenario(400, 6000, 0.4, 17);
  const auto result =
      VerifiedSpectralBloomjoin(scenario.r, scenario.s, 3000, 5, 5, 19);
  EXPECT_EQ(result.false_groups, 0u);
  EXPECT_EQ(result.missed_groups, 0u);
  EXPECT_EQ(result.network.rounds, 3u);
  for (const JoinGroup& group : result.groups) {
    EXPECT_GE(group.count, 5u);
  }
}

TEST(BloomjoinTest, EqualityOperatorHasBoundedTwoSidedErrors) {
  // HAVING count(*) = T: recall 1 - E_SBF (overestimated groups are
  // missed), small false-alarm fraction.
  Relation r("R"), s("S");
  for (uint64_t key = 1; key <= 400; ++key) r.Add(key);
  // Key i appears i%7+1 times in S: join count per key = i%7+1.
  for (uint64_t key = 1; key <= 400; ++key) {
    for (uint64_t c = 0; c <= key % 7; ++c) s.Add(key, c);
  }
  const auto result = SpectralBloomjoinEquals(r, s, 8000, 5, 4, 23);
  size_t exact_groups = 0;
  for (uint64_t key = 1; key <= 400; ++key) exact_groups += (key % 7 == 3);
  // Recall: misses only where the product overestimated — a small slice.
  EXPECT_LE(result.missed_groups, exact_groups / 10 + 2);
  // Precision: false alarms only where an estimate landed exactly on T.
  EXPECT_LE(result.false_groups, 10u);
  EXPECT_EQ(result.network.rounds, 1u);
}

TEST(BloomjoinTest, EmptyIntersectionYieldsNoGroups) {
  Relation r("R"), s("S");
  for (uint64_t key = 1; key <= 100; ++key) r.Add(key);
  for (uint64_t key = 10001; key <= 10100; ++key) s.Add(key);
  const auto result = SpectralBloomjoin(r, s, 4000, 5, 0, 21);
  EXPECT_EQ(result.exact_tuples, 0u);
  // SBF false positives may leak a stray group, but not many.
  EXPECT_LE(result.groups.size(), 2u);
}

}  // namespace
}  // namespace sbf
