// Live health reporting (util/health.h): the FilterHealth snapshot must
// track observed occupancy, derive the live FPR from it (the paper's
// Section 2.1 error evaluated on actual fill), tally clamp events from the
// saturation-safe backings, and issue the kHealthy/kDegraded/kSaturated
// verdict that drives ExpandIfDegraded.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>

#include "core/blocked_sbf.h"
#include "core/concurrent_sbf.h"
#include "core/counting_bloom_filter.h"
#include "core/recurring_minimum.h"
#include "core/spectral_bloom_filter.h"
#include "util/health.h"

namespace sbf {
namespace {

// --- FinalizeHealth math ---------------------------------------------------

TEST(FinalizeHealthTest, DerivesRatiosFprAndSkew) {
  FilterHealth health;
  health.counters = 1000;
  health.nonzero_counters = 250;
  health.saturated_counters = 0;
  health.shard_fill = {0.2, 0.3};
  FinalizeHealth(3, HealthThresholds{}, &health);

  EXPECT_DOUBLE_EQ(health.fill_ratio, 0.25);
  EXPECT_NEAR(health.estimated_fpr, 0.25 * 0.25 * 0.25, 1e-12);
  EXPECT_NEAR(health.shard_skew, 0.3 / 0.25, 1e-12);
  EXPECT_EQ(health.state, HealthState::kHealthy);
}

TEST(FinalizeHealthTest, VerdictLadder) {
  // Degraded: fill^k above the threshold.
  FilterHealth degraded;
  degraded.counters = 100;
  degraded.nonzero_counters = 90;
  FinalizeHealth(2, HealthThresholds{}, &degraded);
  EXPECT_EQ(degraded.state, HealthState::kDegraded);

  // Saturation dominates the FPR verdict.
  FilterHealth saturated = degraded;
  saturated.state = HealthState::kHealthy;
  saturated.saturated_counters = 1;
  FinalizeHealth(2, HealthThresholds{}, &saturated);
  EXPECT_EQ(saturated.state, HealthState::kSaturated);

  // A nonzero saturated-share threshold tolerates a few stuck counters.
  HealthThresholds lenient;
  lenient.saturated_share = 0.05;
  lenient.degraded_fpr = 2.0;  // never degraded
  FilterHealth tolerated = saturated;
  tolerated.state = HealthState::kHealthy;
  FinalizeHealth(2, lenient, &tolerated);
  EXPECT_EQ(tolerated.state, HealthState::kHealthy);
}

TEST(FinalizeHealthTest, NamesAndToString) {
  EXPECT_STREQ(HealthStateName(HealthState::kHealthy), "HEALTHY");
  EXPECT_STREQ(HealthStateName(HealthState::kDegraded), "DEGRADED");
  EXPECT_STREQ(HealthStateName(HealthState::kSaturated), "SATURATED");

  FilterHealth health;
  health.counters = 10;
  health.nonzero_counters = 3;  // fill 0.3, fpr 0.09 < 0.10 threshold
  FinalizeHealth(2, HealthThresholds{}, &health);
  const std::string line = health.ToString();
  EXPECT_NE(line.find("HEALTHY"), std::string::npos);
  EXPECT_NE(line.find("fill=0.3"), std::string::npos);
}

// --- SpectralBloomFilter ---------------------------------------------------

TEST(SbfHealthTest, EmptyFilterIsHealthy) {
  SpectralBloomFilter filter(256, 5);
  const FilterHealth health = filter.Health();
  EXPECT_EQ(health.state, HealthState::kHealthy);
  EXPECT_EQ(health.counters, 256u);
  EXPECT_EQ(health.nonzero_counters, 0u);
  EXPECT_DOUBLE_EQ(health.estimated_fpr, 0.0);
  EXPECT_TRUE(health.shard_fill.empty());
}

TEST(SbfHealthTest, OverloadReportsDegraded) {
  SbfOptions options;
  options.m = 64;
  options.k = 2;
  SpectralBloomFilter filter(options);
  for (uint64_t key = 0; key < 300; ++key) filter.Insert(key);

  const FilterHealth health = filter.Health();
  EXPECT_GT(health.fill_ratio, 0.5);
  EXPECT_GT(health.estimated_fpr, 0.10);
  EXPECT_EQ(health.state, HealthState::kDegraded);
  EXPECT_NEAR(health.estimated_fpr,
              std::pow(health.fill_ratio, options.k), 1e-12);
}

TEST(SbfHealthTest, ThresholdsComeFromOptions) {
  SbfOptions options;
  options.m = 64;
  options.k = 2;
  options.health.degraded_fpr = 1.5;  // unreachable: FPR <= 1
  SpectralBloomFilter filter(options);
  for (uint64_t key = 0; key < 300; ++key) filter.Insert(key);
  EXPECT_EQ(filter.Health().state, HealthState::kHealthy);
}

TEST(SbfHealthTest, OverflowClampsReportSaturated) {
  SbfOptions options;
  options.m = 64;
  options.k = 3;
  options.backing = CounterBacking::kFixed32;
  SpectralBloomFilter filter(options);
  const uint64_t kHuge = uint64_t{3} << 30;  // > 2^32 after two inserts
  filter.Insert(1, kHuge);
  filter.Insert(1, kHuge);

  const FilterHealth health = filter.Health();
  EXPECT_EQ(health.state, HealthState::kSaturated);
  EXPECT_GT(health.saturated_counters, 0u);
  EXPECT_GT(health.saturation_clamps, 0u);
  EXPECT_GT(filter.saturation().saturation_clamps, 0u);
}

TEST(SbfHealthTest, RemoveBelowZeroClampsAndTallies) {
  // Regression for the underflow abort: deleting never-inserted keys (or
  // over-deleting) clamps at zero, tallies the event, and keeps the filter
  // fully usable.
  for (CounterBacking backing :
       {CounterBacking::kFixed64, CounterBacking::kFixed32,
        CounterBacking::kCompact, CounterBacking::kSerialScan}) {
    SbfOptions options;
    options.m = 128;
    options.k = 4;
    options.backing = backing;
    SpectralBloomFilter filter(options);
    filter.Insert(7, 2);
    filter.Remove(99, 5);  // never inserted
    filter.Remove(7, 50);  // over-delete

    EXPECT_GT(filter.Health().underflow_clamps, 0u)
        << CounterBackingName(backing);
    EXPECT_EQ(filter.Estimate(99), 0u);
    filter.Insert(11);
    EXPECT_GE(filter.Estimate(11), 1u);
  }
}

// --- other frontends -------------------------------------------------------

TEST(CountingBloomHealthTest, StickySaturationReportsSaturated) {
  // 4-bit sticky counters are the designed overflow policy [FCAB98]; heavy
  // reuse of one key pins its counters at 15 and Health surfaces it.
  CountingBloomFilter filter(128, 4);
  EXPECT_EQ(filter.Health().state, HealthState::kHealthy);
  for (int i = 0; i < 30; ++i) filter.Insert(42);
  const FilterHealth health = filter.Health();
  EXPECT_EQ(health.state, HealthState::kSaturated);
  EXPECT_GT(health.saturated_counters, 0u);
  EXPECT_GT(filter.saturation().saturation_clamps, 0u);
}

TEST(BlockedSbfHealthTest, TracksOccupancy) {
  BlockedSbfOptions options;
  options.m = 512;
  options.block_size = 64;
  options.k = 4;
  BlockedSbf filter(options);
  for (uint64_t key = 0; key < 100; ++key) filter.Insert(key);
  const FilterHealth health = filter.Health();
  EXPECT_EQ(health.counters, 512u);
  EXPECT_GT(health.nonzero_counters, 0u);
  EXPECT_NEAR(health.fill_ratio,
              static_cast<double>(health.nonzero_counters) / 512.0, 1e-12);
}

TEST(RmHealthTest, EscalatesWorstComponentVerdict) {
  RecurringMinimumOptions options;
  options.primary_m = 4096;  // primary stays healthy
  options.secondary_m = 256;
  options.k = 3;
  options.backing = CounterBacking::kFixed32;
  RecurringMinimumSbf filter(options);

  EXPECT_EQ(filter.Health().state, HealthState::kHealthy);

  // Counts past the 32-bit backing's range clamp the primary's counters;
  // the combined verdict escalates to the worst component state and the
  // clamp tallies aggregate across both SBFs.
  const uint64_t kHuge = uint64_t{3} << 30;
  filter.Insert(5, kHuge);
  filter.Insert(5, kHuge);
  const FilterHealth health = filter.Health();
  EXPECT_EQ(health.state, HealthState::kSaturated);
  EXPECT_GT(filter.saturation().saturation_clamps, 0u);
}

// --- ConcurrentSbf ---------------------------------------------------------

TEST(ConcurrentHealthTest, ReportsPerShardFillAndSkew) {
  for (CounterBacking backing :
       {CounterBacking::kFixed64, CounterBacking::kCompact}) {
    ConcurrentSbfOptions options;
    options.m = 4096;
    options.k = 4;
    options.num_shards = 8;
    options.backing = backing;
    ConcurrentSbf filter(options);

    FilterHealth health = filter.Health();
    EXPECT_EQ(health.state, HealthState::kHealthy);
    EXPECT_EQ(health.counters, 4096u);
    ASSERT_EQ(health.shard_fill.size(), 8u);

    for (uint64_t key = 0; key < 600; ++key) filter.Insert(key);
    health = filter.Health();
    EXPECT_GT(health.nonzero_counters, 0u);
    EXPECT_GE(health.shard_skew, 1.0);
    double sum = 0.0;
    for (double fill : health.shard_fill) sum += fill;
    EXPECT_NEAR(sum / 8.0, health.fill_ratio, 1e-9);
  }
}

TEST(ConcurrentHealthTest, ExpandIfDegradedDoublesOverloadedFilter) {
  ConcurrentSbfOptions options;
  options.m = 128;
  options.k = 2;
  options.num_shards = 4;
  ConcurrentSbf filter(options);
  for (uint64_t key = 0; key < 800; ++key) filter.Insert(key);
  ASSERT_NE(filter.Health().state, HealthState::kHealthy);

  auto expanded = filter.ExpandIfDegraded();
  ASSERT_TRUE(expanded.ok());
  EXPECT_TRUE(expanded.value());
  EXPECT_EQ(filter.options().m, 256u);

  ConcurrentSbfOptions light_options;
  light_options.m = 8192;
  light_options.k = 4;
  ConcurrentSbf light(light_options);
  light.Insert(1);
  auto untouched = light.ExpandIfDegraded();
  ASSERT_TRUE(untouched.ok());
  EXPECT_FALSE(untouched.value());
}

}  // namespace
}  // namespace sbf
